// The balancer's HTTP admin surface: /control (state + smoothed loads as
// JSON) via control::install_admin_routes, and the control_* gauges showing
// up in a Prometheus /metrics scrape of the host registry.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sstream>
#include <string>

#include "control/control_admin.h"
#include "control/scenario_control.h"
#include "core/scenario.h"
#include "pubsub/workload.h"

namespace tmps {
namespace {

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the raw
/// response (status line + headers + body), empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  for (std::size_t off = 0; off < req.size();) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

/// A short balancer-enabled skewed run whose registry and balancer the admin
/// server then serves.
struct BalancedRun {
  std::shared_ptr<control::BalancerHandle> handle;
  std::unique_ptr<Scenario> scenario;

  BalancedRun() {
    ScenarioConfig cfg;
    cfg.broker.subscription_covering = false;
    cfg.broker.advertisement_covering = false;
    cfg.workload = WorkloadKind::Distinct;
    cfg.total_clients = 30;
    cfg.mover_override = [](std::uint32_t) { return false; };
    const auto homes = zipf_broker_placement(30, 14, 1.5, 5);
    cfg.home_override = [homes](std::uint32_t k) { return homes[k]; };
    cfg.publish_interval = 0.25;
    cfg.duration = 40.0;
    cfg.warmup = 10.0;
    cfg.broker.control.enabled = true;
    cfg.broker.control.sample_interval = 1.0;
    cfg.broker.control.start_delay = 6.0;
    cfg.broker.control.imbalance_high = 1.3;
    cfg.broker.control.imbalance_low = 1.1;
    cfg.broker.control.client_cooldown = 5.0;
    handle = control::install_balancer(cfg);
    scenario = std::make_unique<Scenario>(std::move(cfg));
    scenario->run();
  }
};

TEST(ControlAdmin, ControlRouteServesStateAndLoads) {
  BalancedRun run;
  ASSERT_NE(run.handle->balancer, nullptr);

  HttpAdminServer server;
  control::install_admin_routes(server, *run.handle->balancer);
  ASSERT_TRUE(server.start(0));

  const std::string resp = http_get(server.port(), "/control");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"imbalance_ratio\":"), std::string::npos);
  EXPECT_NE(resp.find("\"loads\":{"), std::string::npos);
  // Per-broker load entries exist once the estimator has sampled twice.
  EXPECT_NE(resp.find("\"1\":"), std::string::npos);
  server.stop();
}

TEST(ControlAdmin, MetricsScrapeCarriesBalancerGauges) {
  BalancedRun run;
  obs::MetricsRegistry* mr = run.scenario->net().metrics();

  HttpAdminServer server;
  server.add_route("/metrics", [mr] {
    std::ostringstream os;
    mr->write_prometheus(os);
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = os.str();
    return resp;
  });
  ASSERT_TRUE(server.start(0));

  const std::string body = http_get(server.port(), "/metrics");
  EXPECT_NE(body.find("control_imbalance_ratio"), std::string::npos);
  EXPECT_NE(body.find("control_movements_initiated_total"), std::string::npos);
  EXPECT_NE(body.find("control_movements_committed_total"), std::string::npos);
  EXPECT_NE(body.find("control_cooldown_suppressions_total"),
            std::string::npos);
  EXPECT_NE(body.find("control_broker_load{broker=\"1\"}"), std::string::npos);
  server.stop();
}

TEST(ControlAdmin, ControlJsonIsWellFormedWithoutTicks) {
  // A balancer that never ticked still serves a valid (empty-loads) body.
  Overlay overlay = Overlay::chain(3);
  SimNetwork net(overlay);
  std::map<BrokerId, MobilityEngine*> engines;
  control::Balancer balancer(ControlConfig{}, net, overlay, engines);
  const std::string json = control::control_json(balancer);
  EXPECT_EQ(json.find("{\"state\":{"), 0u);
  EXPECT_NE(json.find("\"loads\":{}"), std::string::npos);
}

}  // namespace
}  // namespace tmps
