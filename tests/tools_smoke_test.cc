// Smoke tests of the command-line observability tools: generate a real
// trace/snapshot pair with the scenario driver, then run the installed
// trace_inspect and tmps_audit binaries on it and check their output.
// Binary locations are injected by CMake (TMPS_TRACE_INSPECT_BIN /
// TMPS_AUDIT_BIN).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/scenario.h"
#include "obs/introspect.h"
#include "obs/trace.h"
#include "pubsub/workload.h"
#include "transport/tcp_transport.h"

namespace tmps {
namespace {

/// Runs `cmd`, capturing stdout+stderr into `out`; returns the exit code
/// (-1 when the shell could not run it).
int run_capture(const std::string& cmd, const std::string& out_file,
                std::string& out) {
  const int rc = std::system((cmd + " > " + out_file + " 2>&1").c_str());
  std::ifstream is(out_file);
  std::stringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  if (rc == -1) return -1;
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

class ToolsSmoke : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/tools_smoke");
    std::system(("mkdir -p " + *dir_).c_str());
    ScenarioConfig cfg;
    cfg.mobility.protocol = MobilityProtocol::Reconfiguration;
    cfg.broker.subscription_covering = false;
    cfg.broker.advertisement_covering = false;
    cfg.total_clients = 40;
    cfg.duration = 60.0;
    cfg.warmup = 20.0;
    cfg.pause_between_moves = 5.0;
    cfg.publish_interval = 2.0;
    cfg.seed = 11;
    cfg.run_label = "tools-smoke";
    cfg.trace_path = *dir_ + "/trace.jsonl";
    cfg.metrics_path = *dir_ + "/metrics.jsonl";
    cfg.snapshot_path = *dir_ + "/snapshots.jsonl";
    Scenario s(cfg);
    s.run();
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static std::string* dir_;
};

std::string* ToolsSmoke::dir_ = nullptr;

TEST_F(ToolsSmoke, TraceInspectRendersWaterfall) {
#if !TMPS_TRACING_ENABLED
  GTEST_SKIP() << "instrumentation sites compiled out (TMPS_TRACING=OFF)";
#endif
  std::string out;
  const int rc = run_capture(std::string(TMPS_TRACE_INSPECT_BIN) + " " +
                                 *dir_ + "/trace.jsonl " + *dir_ +
                                 "/metrics.jsonl --limit 3",
                             *dir_ + "/inspect.out", out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("movement txn="), std::string::npos) << out;
  EXPECT_NE(out.find("outcome=commit"), std::string::npos) << out;
}

TEST_F(ToolsSmoke, AuditCliIsGreenOnCleanRun) {
  std::string out;
  const int rc = run_capture(std::string(TMPS_AUDIT_BIN) + " " + *dir_ +
                                 "/trace.jsonl --snapshots " + *dir_ +
                                 "/snapshots.jsonl",
                             *dir_ + "/audit.out", out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("0 violation(s)"), std::string::npos) << out;
}

TEST(ToolsSmokeTop, TopPollsLiveAdminEndpoints) {
  // A real TCP transport with admin + timeseries on, then one tmps_top
  // --once round against every broker's endpoint.
  const Overlay overlay = Overlay::chain(2);
  BrokerConfig bc;
  bc.subscription_covering = false;
  bc.advertisement_covering = false;
  bc.admin.enabled = true;
  bc.obs.timeseries_interval = 0.1;
  bc.obs.profile = true;  // --stages pane reads GET /profile
  bc.obs.profile_rate = 1;
  TcpTransport net(overlay, 0, bc, MobilityConfig{});
  ASSERT_TRUE(net.start());
  net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(600);
    e.advertise(600, full_space_advertisement(), out);
  });
  for (std::uint32_t seq = 1; seq <= 10; ++seq) {
    const Publication p = make_publication({600, seq}, 100, 0);
    net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(600, Publication(p), out);
    });
  }
  net.drain();
  // Give the timer thread a chance to close at least one window.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  std::string cmd = std::string(TMPS_TOP_BIN) + " --once --stages";
  for (BrokerId b = 1; b <= 2; ++b) {
    cmd += " 127.0.0.1:" + std::to_string(net.admin_port_of(b));
  }
  const std::string dir = ::testing::TempDir();
  std::string out;
  const int rc = run_capture(cmd, dir + "/top.out", out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("BROKER"), std::string::npos) << out;
  EXPECT_EQ(out.find("unreachable"), std::string::npos) << out;
  // The stage pane lists broker 1's hot stages. Matching is index-backed
  // and falls below the pane's half-percent share cutoff on a table this
  // small, so assert on the route-update stage (the advertise/flood work),
  // which dominates this workload's profiled walks.
  EXPECT_NE(out.find("STAGES"), std::string::npos) << out;
  EXPECT_NE(out.find("route_update"), std::string::npos) << out;
  net.stop();

  // With every endpoint down, --once must exit non-zero.
  const int rc_down = run_capture(cmd, dir + "/top_down.out", out);
  EXPECT_EQ(rc_down, 1) << out;
}

/// Writes a minimal bench-JSON artifact in the shape bench_json.h emits.
/// `samples` controls whether the latency percentiles are considered
/// powered; `seed` lands in the config block (a mismatch axis).
std::string write_bench_json(const std::string& path, double lat_p95_ms,
                             int samples, int seed) {
  std::ofstream os(path);
  os << "{\"bench\":\"synthetic\",\"mode\":\"quick\",\"config\":{\"seed\":"
     << seed << "},\"rows\":[\n"
     << "{\"protocol\":\"reconfig\",\"samples\":" << samples
     << ",\"lat_p95_ms\":" << lat_p95_ms
     << ",\"movements\":" << samples << ",\"duplicates\":0}\n]}";
  return path;
}

TEST(ToolsSmokeBenchdiff, CleanDiffExitsZero) {
  const std::string dir = ::testing::TempDir();
  const auto base = write_bench_json(dir + "/bd_base.json", 100.0, 100, 7);
  const auto cur = write_bench_json(dir + "/bd_same.json", 100.0, 100, 7);
  std::string out;
  const int rc = run_capture(
      std::string(TMPS_BENCHDIFF_BIN) + " " + base + " " + cur,
      dir + "/bd_same.out", out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("clean"), std::string::npos) << out;
}

TEST(ToolsSmokeBenchdiff, TenPercentLatencyRegressionFails) {
  const std::string dir = ::testing::TempDir();
  const auto base = write_bench_json(dir + "/bd_base2.json", 100.0, 100, 7);
  const auto cur = write_bench_json(dir + "/bd_reg.json", 110.0, 100, 7);
  std::string out;
  const int rc = run_capture(
      std::string(TMPS_BENCHDIFF_BIN) + " " + base + " " + cur,
      dir + "/bd_reg.out", out);
  EXPECT_EQ(rc, 1) << out;
  EXPECT_NE(out.find("REGRESSION"), std::string::npos) << out;
  EXPECT_NE(out.find("lat_p95_ms"), std::string::npos) << out;
}

TEST(ToolsSmokeBenchdiff, UnderpoweredLatencyRowIsAdvisoryOnly) {
  // One movement: p95 == the single sample; a big delta proves nothing,
  // so the row is reported but must not fail the diff.
  const std::string dir = ::testing::TempDir();
  const auto base = write_bench_json(dir + "/bd_base3.json", 100.0, 1, 7);
  const auto cur = write_bench_json(dir + "/bd_weak.json", 150.0, 1, 7);
  std::string out;
  const int rc = run_capture(
      std::string(TMPS_BENCHDIFF_BIN) + " " + base + " " + cur,
      dir + "/bd_weak.out", out);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("advisory"), std::string::npos) << out;
  EXPECT_NE(out.find("underpowered"), std::string::npos) << out;
}

TEST(ToolsSmokeBenchdiff, ConfigMismatchRefusesToCompare) {
  const std::string dir = ::testing::TempDir();
  const auto base = write_bench_json(dir + "/bd_base4.json", 100.0, 100, 7);
  const auto cur = write_bench_json(dir + "/bd_seed.json", 100.0, 100, 8);
  std::string out;
  const int rc = run_capture(
      std::string(TMPS_BENCHDIFF_BIN) + " " + base + " " + cur,
      dir + "/bd_seed.out", out);
  EXPECT_EQ(rc, 2) << out;
  EXPECT_NE(out.find("mismatch"), std::string::npos) << out;
  // --force overrides the refusal; identical metrics then diff clean.
  const int rc_forced = run_capture(
      std::string(TMPS_BENCHDIFF_BIN) + " --force " + base + " " + cur,
      dir + "/bd_seed_forced.out", out);
  EXPECT_EQ(rc_forced, 0) << out;
}

TEST_F(ToolsSmoke, AuditCliFlagsDoctoredSnapshots) {
  // Append a forged final snapshot carrying shadow state: the CLI must
  // exit non-zero and name the orphan.
  {
    std::ofstream os(*dir_ + "/bad_snaps.jsonl");
    std::ifstream is(*dir_ + "/snapshots.jsonl");
    os << is.rdbuf();
    obs::BrokerSnapshot forged;
    forged.run = "tools-smoke";
    forged.broker = 4;
    forged.time = 1e6;  // later than the run's real final snapshots
    forged.final_snapshot = true;
    obs::EntrySnap e;
    e.id = "1001:1";
    e.filter = "f";
    e.lasthop = "B1";
    e.has_shadow = true;
    e.shadow_lasthop = "B5";
    e.shadow_txn = 9999;
    forged.prt.push_back(e);
    forged.write_jsonl(os);
  }
  std::string out;
  const int rc = run_capture(std::string(TMPS_AUDIT_BIN) + " " + *dir_ +
                                 "/trace.jsonl --snapshots " + *dir_ +
                                 "/bad_snaps.jsonl",
                             *dir_ + "/audit_bad.out", out);
  EXPECT_EQ(rc, 1) << out;
  EXPECT_NE(out.find("orphan-state"), std::string::npos) << out;
  EXPECT_NE(out.find("9999"), std::string::npos) << out;
}

}  // namespace
}  // namespace tmps
