#include "pubsub/workload.h"

#include <gtest/gtest.h>

#include <map>

namespace tmps {
namespace {

/// Direct + transitive covering count: how many other members of the family
/// does subscription i cover?
int covered_count(WorkloadKind k, int i) {
  const Filter f = workload_filter(k, i);
  int n = 0;
  for (int j = 1; j <= 10; ++j) {
    if (j == i) continue;
    if (f.covers(workload_filter(k, j))) ++n;
  }
  return n;
}

TEST(Workload, CoveredRootCoversAllNine) {
  EXPECT_EQ(covered_count(WorkloadKind::Covered, 1), 9);
  for (int i = 2; i <= 10; ++i) {
    EXPECT_EQ(covered_count(WorkloadKind::Covered, i), 0) << i;
  }
}

TEST(Workload, CoveredLeavesAreDisjoint) {
  for (int i = 2; i <= 10; ++i) {
    for (int j = i + 1; j <= 10; ++j) {
      EXPECT_FALSE(workload_filter(WorkloadKind::Covered, i)
                       .overlaps(workload_filter(WorkloadKind::Covered, j)))
          << i << "," << j;
    }
  }
}

TEST(Workload, ChainedIsNested) {
  // Subscription i covers exactly the 10-i later ones (transitively).
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(covered_count(WorkloadKind::Chained, i), 10 - i) << i;
  }
}

TEST(Workload, TreeStructure) {
  // 1 covers everything below it; 2 and 3 cover their three children.
  EXPECT_EQ(covered_count(WorkloadKind::Tree, 1), 9);
  EXPECT_EQ(covered_count(WorkloadKind::Tree, 2), 3);
  EXPECT_EQ(covered_count(WorkloadKind::Tree, 3), 3);
  for (int i = 4; i <= 10; ++i) {
    EXPECT_EQ(covered_count(WorkloadKind::Tree, i), 0) << i;
  }
}

TEST(Workload, DistinctHasNoCoveringAndNoOverlap) {
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(covered_count(WorkloadKind::Distinct, i), 0) << i;
    for (int j = i + 1; j <= 10; ++j) {
      EXPECT_FALSE(workload_filter(WorkloadKind::Distinct, i)
                       .overlaps(workload_filter(WorkloadKind::Distinct, j)));
    }
  }
}

TEST(Workload, CoveringDegreesMatchPaperAxis) {
  EXPECT_EQ(covering_degree(WorkloadKind::Distinct), 0);
  EXPECT_EQ(covering_degree(WorkloadKind::Chained), 1);
  EXPECT_EQ(covering_degree(WorkloadKind::Tree), 3);
  EXPECT_EQ(covering_degree(WorkloadKind::Covered), 9);
}

TEST(Workload, GroupsAreIsolated) {
  // The same member in different groups must not cover or overlap: every
  // client's subscription is distinct and families are independent.
  const auto a = workload_filter(WorkloadKind::Covered, 1, 0);
  const auto b = workload_filter(WorkloadKind::Covered, 1, 1);
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
  EXPECT_FALSE(a.overlaps(b));
  // Root of group 3 covers leaves of group 3 but not of group 4.
  const auto root3 = workload_filter(WorkloadKind::Covered, 1, 3);
  EXPECT_TRUE(root3.covers(workload_filter(WorkloadKind::Covered, 5, 3)));
  EXPECT_FALSE(root3.covers(workload_filter(WorkloadKind::Covered, 5, 4)));
}

TEST(Workload, FullSpaceAdvIntersectsAllGroups) {
  const Filter adv = full_space_advertisement();
  for (std::int64_t g : {0L, 1L, 39L, 999L}) {
    for (int i = 1; i <= 10; ++i) {
      EXPECT_TRUE(workload_filter(WorkloadKind::Tree, i, g)
                      .intersects_advertisement(adv));
    }
  }
}

TEST(Workload, PublicationsMatchTheRightGroup) {
  const Publication p = make_publication({1, 1}, 150, /*group=*/2);
  EXPECT_TRUE(workload_filter(WorkloadKind::Covered, 1, 2).matches(p));
  EXPECT_FALSE(workload_filter(WorkloadKind::Covered, 1, 3).matches(p));
}

TEST(Workload, RandomDrawsFromConcreteKinds) {
  const auto filters = workload_filters(WorkloadKind::Random, /*seed=*/7);
  ASSERT_EQ(filters.size(), 10u);
  // Deterministic for a fixed seed.
  const auto again = workload_filters(WorkloadKind::Random, /*seed=*/7);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(filters[i] == again[i]);
}

TEST(Workload, CoveringIndicesConsistent) {
  for (auto k : {WorkloadKind::Covered, WorkloadKind::Chained,
                 WorkloadKind::Tree, WorkloadKind::Distinct}) {
    for (int idx : covering_indices(k)) {
      EXPECT_GT(covered_count(k, idx + 1), 0) << to_string(k) << " " << idx;
    }
    for (int idx : covered_indices(k)) {
      const Filter f = workload_filter(k, idx + 1);
      bool covered = false;
      for (int j = 1; j <= 10; ++j) {
        if (j != idx + 1 && workload_filter(k, j).covers(f)) covered = true;
      }
      EXPECT_TRUE(covered) << to_string(k) << " " << idx;
    }
  }
}

TEST(Workload, ZipfPlacementDeterministicAndInRange) {
  const auto a = zipf_broker_placement(200, 14, 1.5, 7);
  const auto b = zipf_broker_placement(200, 14, 1.5, 7);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 200u);
  for (const BrokerId h : a) {
    EXPECT_GE(h, 1u);
    EXPECT_LE(h, 14u);
  }
  EXPECT_NE(a, zipf_broker_placement(200, 14, 1.5, 8));
}

TEST(Workload, ZipfPlacementSkewsTowardLowRanks) {
  const auto homes = zipf_broker_placement(400, 14, 1.5, 1);
  std::map<BrokerId, int> count;
  for (const BrokerId h : homes) ++count[h];
  // Broker 1 carries rank 1: with skew 1.5 it should hold far more than the
  // uniform share (400/14 ~ 29) and dominate the tail broker.
  EXPECT_GT(count[1], 2 * 400 / 14);
  EXPECT_GT(count[1], 4 * count[14]);
}

TEST(Workload, ZipfZeroSkewIsRoughlyUniform) {
  const auto homes = zipf_broker_placement(1400, 14, 0.0, 3);
  std::map<BrokerId, int> count;
  for (const BrokerId h : homes) ++count[h];
  for (BrokerId b = 1; b <= 14; ++b) {
    EXPECT_GT(count[b], 100 / 2) << "broker " << b;
    EXPECT_LT(count[b], 100 * 2) << "broker " << b;
  }
}

}  // namespace
}  // namespace tmps
