#include "pubsub/filter.h"

#include <gtest/gtest.h>

#include "pubsub/workload.h"

namespace tmps {
namespace {

Publication pub(std::initializer_list<std::pair<const std::string, Value>> kv) {
  return Publication({1, 1}, kv);
}

TEST(Filter, MatchRequiresAllPredicates) {
  const Filter f{eq("class", "STOCK"), ge("x", 10), le("x", 20)};
  EXPECT_TRUE(f.matches(pub({{"class", "STOCK"}, {"x", 15}})));
  EXPECT_FALSE(f.matches(pub({{"class", "STOCK"}, {"x", 25}})));
  EXPECT_FALSE(f.matches(pub({{"class", "BOND"}, {"x", 15}})));
}

TEST(Filter, MissingAttributeFailsMatch) {
  const Filter f{eq("class", "STOCK"), ge("x", 10)};
  EXPECT_FALSE(f.matches(pub({{"class", "STOCK"}})));
}

TEST(Filter, ExtraPublicationAttributesIgnored) {
  const Filter f{eq("class", "STOCK")};
  EXPECT_TRUE(f.matches(pub({{"class", "STOCK"}, {"volume", 100}})));
}

TEST(Filter, EmptyFilterMatchesEverything) {
  const Filter f;
  EXPECT_TRUE(f.matches(pub({{"a", 1}})));
  EXPECT_TRUE(f.matches(pub({})));
}

TEST(Filter, UnsatisfiableNeverMatches) {
  Filter f;
  f.add(eq("x", 1));
  EXPECT_FALSE(f.add(eq("x", 2)));
  EXPECT_FALSE(f.satisfiable());
  EXPECT_FALSE(f.matches(pub({{"x", 1}})));
}

// --- covering ---------------------------------------------------------------

TEST(FilterCovers, WiderCoversNarrower) {
  const Filter wide{eq("class", "STOCK"), ge("x", 0), le("x", 100)};
  const Filter narrow{eq("class", "STOCK"), ge("x", 10), le("x", 20)};
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
}

TEST(FilterCovers, FewerAttributesCoverMore) {
  // A filter constraining fewer attributes accepts a superset.
  const Filter loose{eq("class", "STOCK")};
  const Filter tight{eq("class", "STOCK"), ge("x", 10)};
  EXPECT_TRUE(loose.covers(tight));
  EXPECT_FALSE(tight.covers(loose));
}

TEST(FilterCovers, IdenticalFiltersCoverMutually) {
  const Filter a{eq("class", "STOCK"), ge("x", 0), le("x", 10)};
  const Filter b{eq("class", "STOCK"), ge("x", 0), le("x", 10)};
  EXPECT_TRUE(a.covers(b));
  EXPECT_TRUE(b.covers(a));
}

TEST(FilterCovers, DisjointConstraintsDoNotCover) {
  const Filter a{eq("class", "STOCK"), ge("x", 0), le("x", 10)};
  const Filter b{eq("class", "STOCK"), ge("x", 20), le("x", 30)};
  EXPECT_FALSE(a.covers(b));
  EXPECT_FALSE(b.covers(a));
}

TEST(FilterCovers, CoveringIsTransitiveOnWorkloads) {
  // Chained workload: each subscription covers the next.
  for (int i = 1; i < 10; ++i) {
    const auto outer = workload_filter(WorkloadKind::Chained, i);
    const auto inner = workload_filter(WorkloadKind::Chained, i + 1);
    EXPECT_TRUE(outer.covers(inner)) << "chained " << i;
    EXPECT_FALSE(inner.covers(outer)) << "chained " << i;
  }
}

// --- intersection with advertisements ----------------------------------------

TEST(FilterIntersect, SubscriptionNeedsAllAttrsInAdv) {
  const Filter sub{eq("class", "STOCK"), ge("x", 10), le("x", 20)};
  const Filter adv_full{eq("class", "STOCK"), ge("x", 0), le("x", 100)};
  const Filter adv_no_x{eq("class", "STOCK")};
  EXPECT_TRUE(sub.intersects_advertisement(adv_full));
  // The advertisement does not declare x, so publications may lack it.
  EXPECT_FALSE(sub.intersects_advertisement(adv_no_x));
}

TEST(FilterIntersect, DisjointRangesDoNotIntersect) {
  const Filter sub{eq("class", "STOCK"), ge("x", 10), le("x", 20)};
  const Filter adv{eq("class", "STOCK"), ge("x", 30), le("x", 40)};
  EXPECT_FALSE(sub.intersects_advertisement(adv));
}

TEST(FilterIntersect, WorkloadSubsIntersectFullSpaceAdv) {
  const Filter adv = full_space_advertisement();
  for (auto kind : {WorkloadKind::Covered, WorkloadKind::Chained,
                    WorkloadKind::Tree, WorkloadKind::Distinct}) {
    for (int i = 1; i <= 10; ++i) {
      EXPECT_TRUE(workload_filter(kind, i, 7).intersects_advertisement(adv))
          << to_string(kind) << " #" << i;
    }
  }
}

TEST(FilterOverlap, SymmetricOverlap) {
  const Filter a{ge("x", 0), le("x", 10)};
  const Filter b{ge("x", 5), le("x", 15)};
  const Filter c{ge("x", 11), le("x", 15)};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

}  // namespace
}  // namespace tmps
