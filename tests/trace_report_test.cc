// The trace-inspector report renderer (obs/trace_report.h) over in-memory
// streams: a traced scenario run must yield movement waterfalls.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/scenario.h"
#include "obs/trace.h"
#include "obs/trace_report.h"

namespace tmps {
namespace {

ScenarioConfig traced_small(const std::string& dir) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = MobilityProtocol::Reconfiguration;
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  cfg.total_clients = 40;
  cfg.duration = 60.0;
  cfg.warmup = 20.0;
  cfg.pause_between_moves = 5.0;
  cfg.publish_interval = 2.0;
  cfg.seed = 11;
  cfg.run_label = "trace-report-test";
  cfg.trace_path = dir + "/trace.jsonl";
  cfg.metrics_path = dir + "/metrics.jsonl";
  return cfg;
}

TEST(TraceReport, RendersWaterfallsFromScenarioTrace) {
#if !TMPS_TRACING_ENABLED
  GTEST_SKIP() << "instrumentation sites compiled out (TMPS_TRACING=OFF)";
#endif
  const std::string dir = ::testing::TempDir();
  Scenario s(traced_small(dir));
  s.run();
  ASSERT_GT(s.movements(), 0u);

  std::ifstream trace(dir + "/trace.jsonl");
  ASSERT_TRUE(trace.good());
  std::ifstream metrics(dir + "/metrics.jsonl");
  ASSERT_TRUE(metrics.good());

  std::ostringstream os;
  obs::TraceReportOptions opts;
  opts.waterfall_limit = 3;
  const std::size_t n = obs::write_trace_report(trace, &metrics, os, opts);
  EXPECT_GT(n, 0u);

  const std::string report = os.str();
  EXPECT_NE(report.find("movement txn="), std::string::npos) << report;
  EXPECT_NE(report.find("protocol=reconfig"), std::string::npos) << report;
  EXPECT_NE(report.find("outcome=commit"), std::string::npos) << report;
}

TEST(TraceReport, EmptyStreamYieldsNoMovements) {
  std::istringstream trace("");
  std::ostringstream os;
  EXPECT_EQ(obs::write_trace_report(trace, nullptr, os, {}), 0u);
}

}  // namespace
}  // namespace tmps
