// Acceptance tests: the paper's headline experimental claims, asserted at
// reduced scale so the reproduction cannot silently regress. Each test maps
// to a figure (see EXPERIMENTS.md for the full-scale numbers).
#include <gtest/gtest.h>

#include "core/scenario.h"

namespace tmps {
namespace {

ScenarioConfig base(MobilityProtocol proto, WorkloadKind wl) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = proto;
  cfg.broker.subscription_covering = proto == MobilityProtocol::Traditional;
  cfg.broker.advertisement_covering = proto == MobilityProtocol::Traditional;
  cfg.workload = wl;
  cfg.total_clients = 200;
  cfg.duration = 90.0;
  cfg.warmup = 30.0;
  cfg.seed = 13;
  return cfg;
}

double latency_of(MobilityProtocol proto, WorkloadKind wl,
                  std::uint32_t clients = 200) {
  auto cfg = base(proto, wl);
  cfg.total_clients = clients;
  Scenario s(cfg);
  s.run();
  EXPECT_GT(s.latency().count(), 0u);
  return s.latency().mean();
}

// Fig. 8: "the reconfiguration protocol is more than an order of magnitude
// faster than the covering one" (asserted at >= 5x at this reduced scale).
TEST(PaperClaims, Fig8ReconfigMuchFasterThanCovering) {
  const double r = latency_of(MobilityProtocol::Reconfiguration,
                              WorkloadKind::Covered);
  const double c = latency_of(MobilityProtocol::Traditional,
                              WorkloadKind::Covered);
  EXPECT_GT(c, 5.0 * r) << "reconfig " << r << "s vs covering " << c << "s";
}

// Fig. 9(a): the reconfiguration protocol "exhibits little variation in
// latency" across subscription workloads.
TEST(PaperClaims, Fig9ReconfigLatencyFlatAcrossWorkloads) {
  double lo = 1e300, hi = 0;
  for (auto wl : {WorkloadKind::Distinct, WorkloadKind::Chained,
                  WorkloadKind::Tree, WorkloadKind::Covered}) {
    const double l = latency_of(MobilityProtocol::Reconfiguration, wl);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  EXPECT_LT(hi / lo, 1.25) << "lo=" << lo << " hi=" << hi;
}

// Fig. 9(a): the covering protocol "performs worse when more covering is
// present" — covering-heavy workloads beat chained by a clear factor.
TEST(PaperClaims, Fig9CoveringSensitiveToWorkload) {
  // The workload separation needs the paper's client count (congestion is
  // the mechanism); 200 clients are too few to differentiate.
  const double chained = latency_of(MobilityProtocol::Traditional,
                                    WorkloadKind::Chained, 400);
  const double tree =
      latency_of(MobilityProtocol::Traditional, WorkloadKind::Tree, 400);
  const double covered = latency_of(MobilityProtocol::Traditional,
                                    WorkloadKind::Covered, 400);
  EXPECT_GT(std::max(tree, covered), 1.2 * chained)
      << "chained=" << chained << " tree=" << tree << " covered=" << covered;
}

// Fig. 9(b): the reconfiguration protocol "maintains a stable message
// overhead regardless of workload" — exactly 4 legs x path length.
TEST(PaperClaims, Fig9ReconfigMessageOverheadExact) {
  for (auto wl : {WorkloadKind::Distinct, WorkloadKind::Covered}) {
    auto cfg = base(MobilityProtocol::Reconfiguration, wl);
    Scenario s(cfg);
    s.run();
    // Paths 1<->13 and 2<->14 are both 5 hops in the Fig. 6 overlay.
    EXPECT_DOUBLE_EQ(s.messages_per_movement(), 20.0) << to_string(wl);
  }
}

// Fig. 10: reconfiguration latency stays flat as the number of moving
// clients grows; the covering protocol degrades.
TEST(PaperClaims, Fig10ScalabilityInClients) {
  const double r200 =
      latency_of(MobilityProtocol::Reconfiguration, WorkloadKind::Covered,
                 200);
  const double r500 =
      latency_of(MobilityProtocol::Reconfiguration, WorkloadKind::Covered,
                 500);
  EXPECT_LT(r500 / r200, 1.3) << r200 << " -> " << r500;

  const double c200 = latency_of(MobilityProtocol::Traditional,
                                 WorkloadKind::Covered, 200);
  const double c500 = latency_of(MobilityProtocol::Traditional,
                                 WorkloadKind::Covered, 500);
  EXPECT_GT(c500 / c200, 1.5) << c200 << " -> " << c500;
}

// Fig. 11: moving only the covering root is far more expensive for the
// covering protocol, in messages and latency.
TEST(PaperClaims, Fig11RootMovePathology) {
  auto rcfg = base(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
  rcfg.moving_clients = 1;
  Scenario r(rcfg);
  r.run();
  auto ccfg = base(MobilityProtocol::Traditional, WorkloadKind::Covered);
  ccfg.moving_clients = 1;
  Scenario c(ccfg);
  c.run();
  EXPECT_GT(c.messages_per_movement(), 4.0 * r.messages_per_movement());
  EXPECT_GT(c.latency().mean(), 2.0 * r.latency().mean());
}

// Fig. 13: neither protocol's performance is drastically affected by
// topology size when the movement path length is constant.
TEST(PaperClaims, Fig13TopologyInsensitivity) {
  for (auto proto :
       {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
    double lo = 1e300, hi = 0;
    for (std::uint32_t n : {14u, 20u, 26u}) {
      auto cfg = base(proto, WorkloadKind::Covered);
      cfg.overlay = Overlay::fig13_topology(n);
      cfg.move_pairs = {{1, 12}, {2, 14}};
      Scenario s(cfg);
      s.run();
      const double l = s.latency().mean();
      lo = std::min(lo, l);
      hi = std::max(hi, l);
    }
    EXPECT_LT(hi / lo, 1.2) << to_string(proto) << " lo=" << lo
                            << " hi=" << hi;
  }
}

// Fig. 14: the wide-area profile preserves the ordering with longer
// latencies.
TEST(PaperClaims, Fig14WanPreservesOrdering) {
  auto rcfg = base(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
  rcfg.net = NetworkProfile::planetlab();
  rcfg.total_clients = 100;
  Scenario r(rcfg);
  r.run();
  auto ccfg = base(MobilityProtocol::Traditional, WorkloadKind::Covered);
  ccfg.net = NetworkProfile::planetlab();
  ccfg.total_clients = 100;
  Scenario c(ccfg);
  c.run();
  ASSERT_GT(r.latency().count(), 0u);
  ASSERT_GT(c.latency().count(), 0u);
  EXPECT_LT(r.latency().mean(), c.latency().mean());
  // WAN latencies dwarf the LAN ones.
  EXPECT_GT(r.latency().mean(),
            10 * latency_of(MobilityProtocol::Reconfiguration,
                            WorkloadKind::Covered));
}

// Sec. 3.4 consistency: the reconfiguration protocol never loses a moving
// client's notifications; the traditional protocol's hand-off window does.
TEST(PaperClaims, GuaranteeReconfigLossFreeCoveringLossy) {
  auto run_losses = [](MobilityProtocol proto) {
    auto cfg = base(proto, WorkloadKind::Covered);
    cfg.total_clients = 400;
    cfg.mover_override = [](std::uint32_t k) { return k % 10 == 0; };
    cfg.publish_interval = 0.5;
    Scenario s(cfg);
    s.run();
    EXPECT_GT(s.audit().mover_expected, 100u);
    EXPECT_EQ(s.audit().duplicates, 0u);
    EXPECT_EQ(s.audit().stationary_losses, 0u);
    return s.audit().mover_losses;
  };
  EXPECT_EQ(run_losses(MobilityProtocol::Reconfiguration), 0u);
  EXPECT_GT(run_losses(MobilityProtocol::Traditional), 0u);
}

// Throughput: the covering protocol saturates; reconfiguration scales with
// offered movement rate.
TEST(PaperClaims, ThroughputSaturation) {
  auto fast = [](MobilityProtocol proto, double pause) {
    auto cfg = base(proto, WorkloadKind::Covered);
    cfg.pause_between_moves = pause;
    Scenario s(cfg);
    s.run();
    return static_cast<double>(s.movements()) /
           (cfg.duration - cfg.warmup);
  };
  const double r10 = fast(MobilityProtocol::Reconfiguration, 10.0);
  const double r2 = fast(MobilityProtocol::Reconfiguration, 2.0);
  EXPECT_GT(r2, 3.0 * r10) << "reconfig must scale with offered rate";
  const double c10 = fast(MobilityProtocol::Traditional, 10.0);
  const double c2 = fast(MobilityProtocol::Traditional, 2.0);
  EXPECT_LT(c2, 2.5 * c10) << "covering must saturate";
}

}  // namespace
}  // namespace tmps
