// Conformance of the movement transaction to the paper's global reachable
// state graph (Fig. 5). The DES is stepped one event at a time and the
// (source coordinator, target coordinator) pair is sampled after every step;
// the observed set must be contained in Fig. 5's reachable set and end in
// the right terminal state.
#include <gtest/gtest.h>

#include <set>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;

/// Global state label, e.g. "wS,iT". A coordinator with no transaction
/// record yet is in init.
std::string global_state(const MobilityEngine& src, const MobilityEngine& tgt,
                         TxnId txn) {
  const auto s = src.source_state(txn);
  const auto t = tgt.target_state(txn);
  std::string out;
  out += s ? std::string(1, to_string(*s)[0]) : "i";
  out += "S,";
  out += t ? std::string(1, to_string(*t)[0]) : "i";
  out += "T";
  return out;
}

struct Fixture {
  Fixture() : overlay(Overlay::chain(3)), net(overlay) {
    for (BrokerId b = 1; b <= 3; ++b) {
      engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
    }
    engines[0]->connect_client(kMover);
    Broker::Outputs out;
    engines[0]->subscribe(kMover, workload_filter(WorkloadKind::Covered, 1),
                          out);
    net.transmit(1, std::move(out));
    net.run();
  }

  std::set<std::string> observe_move(BrokerId target) {
    Broker::Outputs out;
    txn = engines[0]->initiate_move(kMover, target, out);
    net.transmit(1, std::move(out));
    std::set<std::string> seen;
    seen.insert(global_state(*engines[0], *engines[2], txn));
    while (net.events().step()) {
      seen.insert(global_state(*engines[0], *engines[2], txn));
    }
    return seen;
  }

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  TxnId txn = kNoTxn;
};

// Fig. 5 reachable global states (initials of Fig. 4 coordinator states).
const std::set<std::string> kFig5States = {
    "iS,iT",  // before/at initiation
    "wS,iT",  // negotiate in flight
    "wS,pT",  // target approved
    "wS,aT",  // target rejected (abort at target side is terminal)
    "aS,aT",  // source learned of the reject
    "pS,pT",  // source prepared, state in flight
    "pS,cT",  // target committed, ack in flight
    "cS,cT",  // committed
    "aS,pT",  // source aborted while target prepared (timeout path)
};

TEST(GlobalStates, CommitPathStaysWithinFig5) {
  Fixture f;
  const auto seen = f.observe_move(3);
  for (const auto& s : seen) {
    EXPECT_TRUE(kFig5States.contains(s)) << "unexpected global state " << s;
  }
  // The commit path must actually traverse the protocol's spine.
  EXPECT_TRUE(seen.contains("wS,iT"));
  EXPECT_TRUE(seen.contains("wS,pT"));
  EXPECT_TRUE(seen.contains("pS,pT") || seen.contains("pS,cT"));
  EXPECT_TRUE(seen.contains("cS,cT"));
  // Terminal state: committed on both sides.
  EXPECT_EQ(f.engines[0]->source_state(f.txn), SourceCoordState::Commit);
  EXPECT_EQ(f.engines[2]->target_state(f.txn), TargetCoordState::Commit);
}

TEST(GlobalStates, RejectPathStaysWithinFig5) {
  Fixture f;
  f.engines[2]->mutable_config().accept_clients = false;
  const auto seen = f.observe_move(3);
  for (const auto& s : seen) {
    EXPECT_TRUE(kFig5States.contains(s)) << "unexpected global state " << s;
  }
  EXPECT_TRUE(seen.contains("wS,iT"));
  EXPECT_TRUE(seen.contains("aS,iT") || seen.contains("aS,aT") ||
              seen.contains("wS,aT"))
      << "reject path must reach an abort state";
  EXPECT_EQ(f.engines[0]->source_state(f.txn), SourceCoordState::Abort);
}

TEST(GlobalStates, AtMostOneClientStartedThroughoutCommit) {
  // Fig. 4's table: in any intermediate global state at most one client copy
  // is started; in the final state exactly one is started, the other clean.
  Fixture f;
  Broker::Outputs out;
  f.txn = f.engines[0]->initiate_move(kMover, 3, out);
  f.net.transmit(1, std::move(out));

  auto started_copies = [&] {
    int n = 0;
    for (auto& e : f.engines) {
      const ClientStub* stub = e->find_client(kMover);
      if (stub && stub->state() == ClientState::Started) ++n;
    }
    return n;
  };

  EXPECT_LE(started_copies(), 1);
  while (f.net.events().step()) {
    ASSERT_LE(started_copies(), 1);
  }
  EXPECT_EQ(started_copies(), 1);
  // Exactly one copy exists at all (the other was cleaned).
  int copies = 0;
  for (auto& e : f.engines) {
    if (e->find_client(kMover)) ++copies;
  }
  EXPECT_EQ(copies, 1);
}

TEST(GlobalStates, RejectLeavesSourceStartedOnly) {
  Fixture f;
  f.engines[2]->mutable_config().accept_clients = false;
  f.observe_move(3);
  const ClientStub* stub = f.engines[0]->find_client(kMover);
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(stub->state(), ClientState::Started);
  EXPECT_EQ(f.engines[2]->find_client(kMover), nullptr);
}

}  // namespace
}  // namespace tmps
