#include "txn/three_pc.h"

#include <gtest/gtest.h>

#include <deque>

namespace tmps {
namespace {

/// A little message bus that lets tests control delivery order and drop
/// messages selectively.
class Bus {
 public:
  void to_participant(int id, const TpcMsg& m) { down_.push_back({id, m}); }
  void to_coordinator(const TpcMsg& m) { up_.push_back(m); }

  /// Delivers everything currently queued (and whatever that triggers).
  void run(TpcCoordinator& coord, std::map<int, TpcParticipant*>& parts) {
    while (!down_.empty() || !up_.empty()) {
      if (!down_.empty()) {
        auto [id, m] = down_.front();
        down_.pop_front();
        if (!drop_to_participants_) parts.at(id)->on_message(m);
      } else {
        auto m = up_.front();
        up_.pop_front();
        if (!drop_to_coordinator_) coord.on_message(m);
      }
    }
  }

  bool drop_to_participants_ = false;
  bool drop_to_coordinator_ = false;

 private:
  std::deque<std::pair<int, TpcMsg>> down_;
  std::deque<TpcMsg> up_;
};

struct Harness {
  explicit Harness(int n, std::function<bool(int, TxnId)> vote = nullptr) {
    std::vector<int> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    coord = std::make_unique<TpcCoordinator>(
        1, ids, [this](int id, const TpcMsg& m) { bus.to_participant(id, m); });
    for (int i = 0; i < n; ++i) {
      parts_store.push_back(std::make_unique<TpcParticipant>(
          i, [this](const TpcMsg& m) { bus.to_coordinator(m); },
          [vote, i](TxnId t) { return vote ? vote(i, t) : true; }));
      parts[i] = parts_store.back().get();
    }
  }
  void run() { bus.run(*coord, parts); }

  Bus bus;
  std::unique_ptr<TpcCoordinator> coord;
  std::vector<std::unique_ptr<TpcParticipant>> parts_store;
  std::map<int, TpcParticipant*> parts;
};

TEST(ThreePc, UnanimousYesCommits) {
  Harness h(3);
  h.coord->start();
  h.run();
  EXPECT_EQ(h.coord->state(), TpcCoordState::Committed);
  EXPECT_EQ(h.coord->decision(), TpcDecision::Commit);
  for (auto& [id, p] : h.parts) {
    EXPECT_EQ(p->state(), TpcPartState::Committed) << id;
  }
}

TEST(ThreePc, SingleNoAborts) {
  Harness h(3, [](int id, TxnId) { return id != 1; });
  h.coord->start();
  h.run();
  EXPECT_EQ(h.coord->state(), TpcCoordState::Aborted);
  for (auto& [id, p] : h.parts) {
    EXPECT_EQ(p->state(), TpcPartState::Aborted) << id;
  }
}

TEST(ThreePc, NoParticipantsCommitsTrivially) {
  Harness h(0);
  h.coord->start();
  EXPECT_EQ(h.coord->decision(), TpcDecision::Commit);
}

TEST(ThreePc, CoordinatorTimeoutInWaitingAborts) {
  Harness h(2);
  h.bus.drop_to_coordinator_ = true;  // votes never arrive
  h.coord->start();
  h.run();
  EXPECT_EQ(h.coord->state(), TpcCoordState::Waiting);
  h.coord->on_timeout();
  EXPECT_EQ(h.coord->decision(), TpcDecision::Abort);
  // Participants voted yes and are uncertain; their own timeout aborts —
  // consistent with the coordinator.
  h.bus.drop_to_participants_ = true;
  for (auto& [id, p] : h.parts) {
    EXPECT_EQ(p->state(), TpcPartState::Ready);
    p->on_timeout();
    EXPECT_EQ(p->state(), TpcPartState::Aborted) << id;
  }
}

TEST(ThreePc, ParticipantTimeoutAfterPreCommitCommits) {
  Harness h(2);
  h.coord->start();
  h.run();  // full run: everyone committed
  // Re-create the situation manually: a fresh participant that saw
  // canCommit and preCommit but whose doCommit was lost.
  Bus bus;
  TpcParticipant p(0, [&](const TpcMsg& m) { bus.to_coordinator(m); },
                   [](TxnId) { return true; });
  p.on_message({TpcMsg::Kind::CanCommit, 1, -1});
  p.on_message({TpcMsg::Kind::PreCommit, 1, -1});
  EXPECT_EQ(p.state(), TpcPartState::PreCommitted);
  p.on_timeout();
  EXPECT_EQ(p.state(), TpcPartState::Committed);
}

TEST(ThreePc, CoordinatorTimeoutInPreCommitCommits) {
  Harness h(2);
  h.coord->start();
  // Deliver canCommit + votes, but drop the acks.
  h.run();
  // Everything already delivered; emulate lost acks by rebuilding:
  Harness h2(2);
  h2.coord->start();
  h2.bus.drop_to_coordinator_ = false;
  // run only until votes processed: deliver all; coordinator reaches
  // PreCommit and gets acks... instead drop acks:
  // simpler: drive states manually.
  TpcCoordinator coord(9, {0, 1}, [](int, const TpcMsg&) {});
  coord.start();
  coord.on_message({TpcMsg::Kind::VoteYes, 9, 0});
  coord.on_message({TpcMsg::Kind::VoteYes, 9, 1});
  EXPECT_EQ(coord.state(), TpcCoordState::PreCommit);
  coord.on_timeout();
  EXPECT_EQ(coord.decision(), TpcDecision::Commit);
}

TEST(ThreePc, DuplicateMessagesAreIdempotent) {
  TpcCoordinator coord(9, {0}, [](int, const TpcMsg&) {});
  coord.start();
  coord.on_message({TpcMsg::Kind::VoteYes, 9, 0});
  coord.on_message({TpcMsg::Kind::VoteYes, 9, 0});
  EXPECT_EQ(coord.state(), TpcCoordState::PreCommit);
  coord.on_message({TpcMsg::Kind::AckPreCommit, 9, 0});
  EXPECT_EQ(coord.state(), TpcCoordState::Committed);
  coord.on_message({TpcMsg::Kind::AckPreCommit, 9, 0});
  EXPECT_EQ(coord.state(), TpcCoordState::Committed);
}

TEST(ThreePc, WrongTxnIgnored) {
  TpcCoordinator coord(9, {0}, [](int, const TpcMsg&) {});
  coord.start();
  coord.on_message({TpcMsg::Kind::VoteYes, 8, 0});  // foreign transaction
  EXPECT_EQ(coord.state(), TpcCoordState::Waiting);
}

TEST(ThreePc, DecisionCallbackFiresOnce) {
  int calls = 0;
  TpcCoordinator coord(9, {0}, [](int, const TpcMsg&) {},
                       [&](TpcDecision) { ++calls; });
  coord.start();
  coord.on_message({TpcMsg::Kind::VoteYes, 9, 0});
  coord.on_message({TpcMsg::Kind::AckPreCommit, 9, 0});
  coord.on_timeout();  // after decision: no-op
  EXPECT_EQ(calls, 1);
}

TEST(ThreePc, AbortAfterReadyViaCoordinatorMessage) {
  TpcParticipant p(0, [](const TpcMsg&) {}, [](TxnId) { return true; });
  p.on_message({TpcMsg::Kind::CanCommit, 1, -1});
  EXPECT_EQ(p.state(), TpcPartState::Ready);
  p.on_message({TpcMsg::Kind::Abort, 1, -1});
  EXPECT_EQ(p.state(), TpcPartState::Aborted);
}

TEST(ThreePc, BlockingVariantJustWaits) {
  // Without timeouts a Ready participant stays Ready forever — safe.
  TpcParticipant p(0, [](const TpcMsg&) {}, [](TxnId) { return true; });
  p.on_message({TpcMsg::Kind::CanCommit, 1, -1});
  EXPECT_EQ(p.state(), TpcPartState::Ready);
  EXPECT_FALSE(p.decision().has_value());
}

}  // namespace
}  // namespace tmps
