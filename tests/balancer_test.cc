// End-to-end control-plane tests: a Zipf-skewed stationary population on the
// paper's 14-broker topology, with the balancer migrating clients off the
// hot broker through real movement transactions. Asserts the load-skew
// reduction, convergence (per-client move budget), transactional safety
// (zero stationary losses, clean movement-invariant audit) and the
// metrics/trace surfaces.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "control/scenario_control.h"
#include "core/scenario.h"
#include "pubsub/workload.h"

namespace tmps {
namespace {

constexpr std::uint32_t kBrokers = 14;
constexpr std::uint32_t kClients = 60;

struct SkewedRun {
  std::shared_ptr<control::BalancerHandle> handle;
  std::unique_ptr<Scenario> scenario;
  /// Per-broker publication loads over the steady window [warmup, end).
  std::map<BrokerId, std::uint64_t> window_loads;

  LoadSkew skew() const { return load_skew(window_loads, kBrokers); }
};

ScenarioConfig skewed_config(bool balance) {
  ScenarioConfig cfg;
  // The reconfiguration protocol is exercised without covering (the
  // quenching optimization is unsound under reconfiguration mobility).
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  cfg.workload = WorkloadKind::Distinct;
  cfg.total_clients = kClients;
  cfg.mover_override = [](std::uint32_t) { return false; };  // all stationary
  const auto homes = zipf_broker_placement(kClients, kBrokers, 1.5, 5);
  cfg.home_override = [homes](std::uint32_t k) { return homes[k]; };
  cfg.publish_interval = 0.25;
  cfg.duration = 90.0;
  cfg.warmup = 30.0;
  cfg.audit = true;  // movement-invariant auditor over every balancer move

  cfg.broker.control.enabled = balance;
  cfg.broker.control.sample_interval = 1.0;
  cfg.broker.control.start_delay = 8.0;  // let joins settle
  cfg.broker.control.imbalance_high = 1.3;
  cfg.broker.control.imbalance_low = 1.1;
  cfg.broker.control.client_cooldown = 10.0;
  cfg.broker.control.max_moves_per_client = 2;
  return cfg;
}

SkewedRun run_skewed(bool balance) {
  SkewedRun run;
  ScenarioConfig cfg = skewed_config(balance);
  run.handle = control::install_balancer(cfg);

  // Snapshot loads at warmup; the steady window is (final - baseline).
  auto baseline = std::make_shared<std::map<BrokerId, std::uint64_t>>();
  const double warmup = cfg.warmup;
  cfg.post_build = [baseline, warmup](SimNetwork& net) {
    net.events().schedule_at(warmup, [baseline, &net] {
      *baseline = net.stats().broker_pub_loads();
    });
  };

  run.scenario = std::make_unique<Scenario>(std::move(cfg));
  run.scenario->run();

  run.window_loads = run.scenario->stats().broker_pub_loads();
  for (auto& [b, n] : run.window_loads) {
    const auto it = baseline->find(b);
    if (it != baseline->end()) n -= std::min(n, it->second);
  }
  return run;
}

TEST(Balancer, ReducesLoadSkewOfZipfPlacementWithoutLosses) {
  const SkewedRun off = run_skewed(false);
  const SkewedRun on = run_skewed(true);

  ASSERT_EQ(off.handle->balancer, nullptr) << "disabled config built one";
  ASSERT_NE(on.handle->balancer, nullptr);
  const control::Balancer& bal = *on.handle->balancer;

  // The placement is genuinely skewed and the balancer worked on it.
  EXPECT_GT(off.skew().ratio(), 1.8) << "placement not skewed enough";
  EXPECT_GT(bal.state().initiated, 0u);
  EXPECT_GT(bal.state().committed, 0u);

  // Migrations moved the hotspot's publication load: the steady-window
  // max/mean ratio must drop materially (the bench asserts the full 2x on
  // the longer paper-scale run).
  EXPECT_LT(on.skew().ratio(), off.skew().ratio() / 1.3)
      << "off ratio " << off.skew().ratio() << " on ratio "
      << on.skew().ratio();

  // Convergence: the per-client budget held.
  for (const auto& [client, moves] : bal.moves_per_client()) {
    EXPECT_LE(moves, 2u) << "client " << client << " oscillated";
  }

  // Transactional safety under migration of "stationary" clients.
  EXPECT_EQ(on.scenario->audit().stationary_losses, 0u);
  EXPECT_EQ(on.scenario->audit().duplicates, 0u);
  EXPECT_TRUE(on.scenario->audit_report().clean())
      << on.scenario->audit_report().summary();

  // The balancer's series landed in the registry.
  obs::MetricsRegistry& mr = *on.scenario->net().metrics();
  EXPECT_EQ(mr.counter_value("control_movements_initiated_total"),
            bal.state().initiated);
  EXPECT_EQ(mr.counter_value("control_movements_committed_total"),
            bal.state().committed);
}

TEST(Balancer, StaysIdleWithoutLoad) {
  ScenarioConfig cfg = skewed_config(true);
  cfg.publish_interval = 0;  // no publications: all load scores are zero
  cfg.audit = false;
  cfg.duration = 40.0;
  auto handle = control::install_balancer(cfg);
  Scenario s(std::move(cfg));
  s.run();
  ASSERT_NE(handle->balancer, nullptr);
  EXPECT_GT(handle->balancer->state().ticks, 0u);
  EXPECT_EQ(handle->balancer->state().initiated, 0u);
  EXPECT_FALSE(handle->balancer->policy().engaged());
}

TEST(Balancer, StateJsonCarriesTheControlSeries) {
  ScenarioConfig cfg = skewed_config(true);
  cfg.duration = 50.0;
  cfg.audit = false;
  auto handle = control::install_balancer(cfg);
  Scenario s(std::move(cfg));
  s.run();
  ASSERT_NE(handle->balancer, nullptr);
  const std::string json = handle->balancer->state_json();
  EXPECT_NE(json.find("\"imbalance_ratio\":"), std::string::npos);
  EXPECT_NE(json.find("\"initiated\":"), std::string::npos);
  EXPECT_NE(json.find("\"inflight\":"), std::string::npos);
}

}  // namespace
}  // namespace tmps
