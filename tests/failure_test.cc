// Movement guarantees under failure injection. The fault model (Sec. 3.5)
// masks crashes as delays — messages are never lost — so the transactional
// properties must hold through broker crashes and link failures.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "failure/failure_injector.h"
#include "pubsub/workload.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;
constexpr ClientId kPublisher = 600;

struct MoveFixture {
  MoveFixture() : overlay(Overlay::chain(5)), net(overlay) {
    for (BrokerId b = 1; b <= 5; ++b) {
      engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
      engines.back()->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            deliveries.emplace_back(c, p.id());
          });
    }
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kPublisher);
      e.advertise(kPublisher, full_space_advertisement(), out);
    });
    run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kMover);
      e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2), out);
    });
  }

  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
    net.run();
  }

  int delivered(ClientId c, PublicationId id) const {
    int n = 0;
    for (const auto& [cc, pid] : deliveries) {
      if (cc == c && pid == id) ++n;
    }
    return n;
  }

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::vector<std::pair<ClientId, PublicationId>> deliveries;
};

TEST(FailureInjector, DeterministicPlanForSeed) {
  Overlay o = Overlay::paper_default();
  SimNetwork n1(o), n2(o);
  FailurePlan plan;
  plan.broker_crash_rate = 0.5;
  plan.link_failure_rate = 0.5;
  plan.seed = 3;
  FailureInjector a(n1, plan), b(n2, plan);
  a.schedule_until(100);
  b.schedule_until(100);
  ASSERT_EQ(a.log().size(), b.log().size());
  ASSERT_GT(a.log().size(), 10u);
  for (std::size_t i = 0; i < a.log().size(); ++i) {
    EXPECT_EQ(a.log()[i].at, b.log()[i].at);
    EXPECT_EQ(a.log()[i].broker, b.log()[i].broker);
  }
}

TEST(FailureInjector, ZeroRatesScheduleNothing) {
  Overlay o = Overlay::chain(3);
  SimNetwork net(o);
  FailureInjector inj(net, {});
  inj.schedule_until(1000);
  EXPECT_TRUE(inj.log().empty());
}

TEST(FailureMovement, MoveCompletesThroughMidPathBrokerCrash) {
  MoveFixture f;
  FailureInjector inj(f.net, {});
  // Broker 3 (mid-path) crashes just as the movement starts and stays down
  // for a second; the transaction must still commit afterwards.
  inj.crash_broker_at(3, 0.0005, 1.0);
  TxnId txn = kNoTxn;
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 5, out);
  });
  EXPECT_EQ(f.engines[1]->source_state(txn), SourceCoordState::Commit);
  ASSERT_NE(f.engines[4]->find_client(kMover), nullptr);
  EXPECT_EQ(f.engines[4]->find_client(kMover)->state(), ClientState::Started);
  EXPECT_GE(f.net.now(), 1.0) << "the crash must actually have delayed things";
}

TEST(FailureMovement, MoveCompletesThroughLinkFailure) {
  MoveFixture f;
  FailureInjector inj(f.net, {});
  inj.fail_link_at(3, 4, 0.0005, 2.0);
  TxnId txn = kNoTxn;
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 5, out);
  });
  EXPECT_EQ(f.engines[1]->source_state(txn), SourceCoordState::Commit);
  EXPECT_GE(f.net.now(), 2.0);
}

TEST(FailureMovement, NoLossNoDuplicatesThroughCrashesDuringMove) {
  MoveFixture f;
  FailureInjector inj(f.net, {});
  inj.crash_broker_at(3, 0.001, 0.5);
  inj.crash_broker_at(4, 0.2, 0.5);

  Broker::Outputs out;
  f.engines[1]->initiate_move(kMover, 5, out);
  f.net.transmit(2, std::move(out));
  // Publications land while brokers are down and the move is in flight.
  std::vector<PublicationId> ids;
  for (int i = 0; i < 30; ++i) {
    f.net.events().schedule_at(0.05 * i, [&f, i] {
      Broker::Outputs o;
      f.engines[0]->publish(
          kPublisher,
          make_publication({kPublisher, static_cast<std::uint32_t>(100 + i)},
                           50, 0),
          o);
      f.net.transmit(1, std::move(o));
    });
    ids.push_back({kPublisher, static_cast<std::uint32_t>(100 + i)});
  }
  f.net.run();
  for (const auto& id : ids) {
    EXPECT_EQ(f.delivered(kMover, id), 1) << to_string(id);
  }
}

TEST(FailureMovement, RandomizedFailureStorm) {
  // Repeated moves under a storm of random crashes and link failures: the
  // client must end as exactly one started copy and never miss or double-
  // deliver a publication.
  MoveFixture f;
  FailurePlan plan;
  plan.broker_crash_rate = 0.8;
  plan.broker_downtime_mean = 0.3;
  plan.link_failure_rate = 0.8;
  plan.link_downtime_mean = 0.3;
  plan.seed = 17;
  FailureInjector inj(f.net, plan);
  inj.schedule_until(30.0);

  // Alternate moves 2 <-> 5 every 2 simulated seconds.
  for (int round = 0; round < 10; ++round) {
    const BrokerId from = (round % 2 == 0) ? 2 : 5;
    const BrokerId to = (round % 2 == 0) ? 5 : 2;
    f.net.events().schedule_at(2.0 * round + 0.5, [&f, from, to] {
      Broker::Outputs o;
      f.engines[from - 1]->initiate_move(kMover, to, o);
      f.net.transmit(from, std::move(o));
    });
  }
  std::vector<PublicationId> ids;
  for (int i = 0; i < 50; ++i) {
    f.net.events().schedule_at(0.4 * i, [&f, i] {
      Broker::Outputs o;
      f.engines[0]->publish(
          kPublisher,
          make_publication({kPublisher, static_cast<std::uint32_t>(500 + i)},
                           100, 0),
          o);
      f.net.transmit(1, std::move(o));
    });
    ids.push_back({kPublisher, static_cast<std::uint32_t>(500 + i)});
  }
  f.net.run();

  int copies = 0;
  for (auto& e : f.engines) {
    const ClientStub* stub = e->find_client(kMover);
    if (stub) {
      ++copies;
      EXPECT_EQ(stub->state(), ClientState::Started);
    }
  }
  EXPECT_EQ(copies, 1);
  for (const auto& id : ids) {
    EXPECT_EQ(f.delivered(kMover, id), 1) << to_string(id);
  }
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_FALSE(f.net.broker(b).tables().has_pending_shadows()) << b;
  }
}

}  // namespace
}  // namespace tmps
