// Broker busy-time accounting in the simulator.
#include <gtest/gtest.h>

#include "sim/network.h"

namespace tmps {
namespace {

Message unicast(Broker& from, BrokerId dest) {
  Message m;
  m.id = from.next_message_id();
  m.unicast_dest = dest;
  m.payload = MoveAckMsg{};
  return m;
}

TEST(Utilization, BusyTimeAccumulatesPerProcessedMessage) {
  Overlay o = Overlay::chain(3);
  NetworkProfile p;
  p.control_proc = 0.01;
  SimNetwork net(o, {}, p);
  EXPECT_DOUBLE_EQ(net.broker_busy_seconds(2), 0.0);
  for (int i = 0; i < 5; ++i) {
    net.transmit(1, {{2, unicast(net.broker(1), 3)}});
  }
  net.run();
  // Broker 2 relayed 5 messages at 10 ms each; broker 3 processed 5.
  EXPECT_NEAR(net.broker_busy_seconds(2), 0.05, 1e-9);
  EXPECT_NEAR(net.broker_busy_seconds(3), 0.05, 1e-9);
  EXPECT_DOUBLE_EQ(net.broker_busy_seconds(1), 0.0) << "sender does not pay";
}

TEST(Utilization, RoutingMessagesPayTheirClassCost) {
  Overlay o = Overlay::chain(2);
  NetworkProfile p;
  p.pub_proc = 0.004;
  p.sub_proc = 0.016;
  SimNetwork net(o, {}, p);
  Message pub;
  pub.id = net.broker(1).next_message_id();
  pub.payload = PublishMsg{};
  Message sub;
  sub.id = net.broker(1).next_message_id();
  sub.payload = SubscribeMsg{};
  net.transmit(1, {{2, pub}});
  net.run();
  EXPECT_NEAR(net.broker_busy_seconds(2), 0.004, 1e-9);
  net.transmit(1, {{2, sub}});
  net.run();
  EXPECT_NEAR(net.broker_busy_seconds(2), 0.020, 1e-9);
}

}  // namespace
}  // namespace tmps
