// Randomized property tests over random overlays, workloads and movement
// schedules (parameterized on the RNG seed).
//
// Invariants checked after every run (reconfiguration protocol):
//  * exactly-once: every publication reaches every client whose subscription
//    matches it exactly once — no loss, no duplicates — regardless of the
//    interleaving of movements and publications (Sec. 3.4 atomicity +
//    consistency);
//  * single instance: each client ends as exactly one started copy
//    (Sec. 3.3 atomicity + consistency);
//  * no shadow routing state survives transaction resolution (Sec. 3.5
//    atomicity);
//  * routing isolation: stationary clients' tables entries are untouched by
//    others' movements.
// For the traditional protocol only no-duplicates is asserted (the paper's
// point is precisely that it lacks the stronger guarantees).
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "routing/auditor.h"
#include "sim/network.h"

namespace tmps {
namespace {

BrokerConfig broker_config_for(MobilityProtocol proto) {
  // Covering quenching is only sound under the covering (traditional)
  // protocol: a subscription quenched by another loses its delivery path
  // when the coverer moves away via hop-by-hop reconfiguration.
  BrokerConfig bc;
  bc.subscription_covering = proto == MobilityProtocol::Traditional;
  bc.advertisement_covering = proto == MobilityProtocol::Traditional;
  return bc;
}

struct World {
  explicit World(std::uint64_t seed, MobilityProtocol proto)
      : rng(seed),
        overlay(Overlay::random_tree(
            8 + static_cast<std::uint32_t>(seed % 9), seed ^ 0xABCD)),
        net(overlay, broker_config_for(proto)) {
    MobilityConfig cfg;
    cfg.protocol = proto;
    for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
      engines.push_back(
          std::make_unique<MobilityEngine>(net.broker(b), net, cfg));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
      engines.back()->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            ++delivered[{c, p.id()}];
          });
    }
  }

  BrokerId random_broker() {
    std::uniform_int_distribution<BrokerId> d(1, overlay.broker_count());
    return d(rng);
  }

  MobilityEngine* engine_hosting(ClientId c) {
    for (auto& e : engines) {
      if (e->find_client(c)) return e.get();
    }
    return nullptr;
  }

  std::mt19937_64 rng;
  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::map<std::pair<ClientId, PublicationId>, int> delivered;
  std::map<ClientId, Filter> filters;
  std::vector<Publication> pubs;
};

/// Populates a world and runs a random schedule of interleaved movements
/// and publications, leaving it quiesced.
void run_schedule(World& w) {

  // Publishers at 2-3 random brokers.
  std::uniform_int_distribution<int> npubs(2, 3);
  const int publishers = npubs(w.rng);
  for (int p = 0; p < publishers; ++p) {
    const BrokerId b = w.random_broker();
    const ClientId id = 1 + p;
    Broker::Outputs out;
    w.engines[b - 1]->connect_client(id);
    w.engines[b - 1]->advertise(id, full_space_advertisement(), out);
    w.net.transmit(b, std::move(out));
  }
  w.net.run();

  // 20-40 subscribers with random workload filters at random brokers.
  std::uniform_int_distribution<int> nsubs(20, 40);
  std::uniform_int_distribution<int> member(1, 10);
  std::uniform_int_distribution<int> kind(0, 3);
  constexpr WorkloadKind kinds[] = {WorkloadKind::Covered,
                                    WorkloadKind::Chained, WorkloadKind::Tree,
                                    WorkloadKind::Distinct};
  const int subscribers = nsubs(w.rng);
  for (int s = 0; s < subscribers; ++s) {
    const ClientId id = 1000 + s;
    const BrokerId b = w.random_broker();
    const Filter f =
        workload_filter(kinds[kind(w.rng)], member(w.rng), s / 10);
    w.filters[id] = f;
    Broker::Outputs out;
    w.engines[b - 1]->connect_client(id);
    w.engines[b - 1]->subscribe(id, f, out);
    w.net.transmit(b, std::move(out));
  }
  w.net.run();

  // Random schedule: 60 steps of move-or-publish at random times.
  std::uniform_real_distribution<double> when(0.0, 20.0);
  std::uniform_int_distribution<int> coin(0, 2);
  std::uniform_int_distribution<std::int64_t> x(kSpaceLo, kSpaceHi);
  std::uniform_int_distribution<std::int64_t> g(0, subscribers / 10);
  std::uint32_t pub_seq = 0;
  for (int step = 0; step < 60; ++step) {
    const double t = when(w.rng);
    if (coin(w.rng) == 0) {
      // Publish from a random publisher.
      const ClientId pid = 1 + static_cast<ClientId>(
                                   w.rng() % static_cast<unsigned>(publishers));
      Publication pub = make_publication({pid, ++pub_seq}, x(w.rng), g(w.rng));
      w.pubs.push_back(pub);
      w.net.events().schedule_at(t, [&w, pid, pub] {
        MobilityEngine* e = w.engine_hosting(pid);
        if (!e) return;
        Broker::Outputs out;
        e->publish(pid, Publication(pub), out);
        w.net.transmit(e->broker_id(), std::move(out));
      });
    } else {
      // Move a random subscriber to a random broker.
      const ClientId cid =
          1000 + static_cast<ClientId>(
                     w.rng() % static_cast<unsigned>(subscribers));
      const BrokerId to = w.random_broker();
      w.net.events().schedule_at(t, [&w, cid, to] {
        MobilityEngine* e = w.engine_hosting(cid);
        if (!e || e->broker_id() == to) return;
        Broker::Outputs out;
        e->initiate_move(cid, to, out);
        w.net.transmit(e->broker_id(), std::move(out));
      });
    }
  }
  w.net.run();
}

class ReconfigProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReconfigProperty, ExactlyOnceDeliveryAndSingleInstance) {
  World w(GetParam(), MobilityProtocol::Reconfiguration);
  run_schedule(w);

  // Exactly-once delivery to every matching subscriber.
  for (const auto& pub : w.pubs) {
    for (const auto& [cid, filter] : w.filters) {
      const int n = [&] {
        auto it = w.delivered.find({cid, pub.id()});
        return it == w.delivered.end() ? 0 : it->second;
      }();
      if (filter.matches(pub)) {
        EXPECT_EQ(n, 1) << "client " << cid << " pub " << to_string(pub.id());
      } else {
        EXPECT_EQ(n, 0) << "client " << cid << " pub " << to_string(pub.id());
      }
    }
  }

  // Exactly one started instance of every client.
  for (const auto& [cid, filter] : w.filters) {
    int copies = 0;
    for (auto& e : w.engines) {
      const ClientStub* stub = e->find_client(cid);
      if (stub) {
        ++copies;
        EXPECT_EQ(stub->state(), ClientState::Started) << cid;
      }
    }
    EXPECT_EQ(copies, 1) << cid;
  }

  // No shadow state survives.
  for (BrokerId b = 1; b <= w.overlay.broker_count(); ++b) {
    EXPECT_FALSE(w.net.broker(b).tables().has_pending_shadows()) << b;
  }

  // Routing consistency (Sec. 3.5): every (publisher, subscription) pair
  // has an intact delivery path wherever the clients ended up.
  RoutingAuditor auditor(w.overlay,
                         [&](BrokerId b) -> const RoutingTables& {
                           return w.net.broker(b).tables();
                         });
  for (const auto& [cid, filter] : w.filters) {
    MobilityEngine* host = w.engine_hosting(cid);
    ASSERT_NE(host, nullptr) << cid;
    const ClientStub* stub = host->find_client(cid);
    for (const auto& s : stub->subscriptions()) {
      auditor.expect_subscriber(s.id, s.filter, host->broker_id());
    }
  }
  for (ClientId pid = 1; pid <= 3; ++pid) {
    MobilityEngine* host = w.engine_hosting(pid);
    if (!host) continue;
    for (const auto& a : host->find_client(pid)->advertisements()) {
      auditor.expect_publisher(a.id, a.filter, host->broker_id());
    }
  }
  const auto violations = auditor.audit();
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations, first: "
      << (violations.empty() ? "" : violations[0].to_string());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

class TraditionalProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraditionalProperty, NoDuplicatesAndSingleInstance) {
  World w(GetParam(), MobilityProtocol::Traditional);
  run_schedule(w);

  for (const auto& [key, n] : w.delivered) {
    EXPECT_LE(n, 1) << "client " << key.first << " pub "
                    << to_string(key.second);
  }
  for (const auto& [cid, filter] : w.filters) {
    int copies = 0;
    for (auto& e : w.engines) {
      if (e->find_client(cid)) ++copies;
    }
    EXPECT_EQ(copies, 1) << cid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraditionalProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

/// Routing isolation (Sec. 3.5): a movement only updates routing entries of
/// the moving client; other clients' entries are bit-identical before and
/// after.
TEST(RoutingIsolation, OtherClientsEntriesUntouchedByMove) {
  World w(42, MobilityProtocol::Reconfiguration);
  // One publisher, two subscribers; one of them moves.
  Broker::Outputs out;
  w.engines[0]->connect_client(1);
  w.engines[0]->advertise(1, full_space_advertisement(), out);
  w.net.transmit(1, std::move(out));
  w.net.run();

  const BrokerId b_stationary = w.overlay.broker_count();
  Broker::Outputs o2;
  w.engines[b_stationary - 1]->connect_client(1000);
  w.engines[b_stationary - 1]->subscribe(
      1000, workload_filter(WorkloadKind::Covered, 1, 0), o2);
  w.net.transmit(b_stationary, std::move(o2));
  Broker::Outputs o3;
  w.engines[1]->connect_client(1001);
  w.engines[1]->subscribe(1001, workload_filter(WorkloadKind::Covered, 1, 1),
                          o3);
  w.net.transmit(2, std::move(o3));
  w.net.run();

  // Snapshot stationary client's entries at every broker.
  auto snapshot = [&] {
    std::map<BrokerId, std::pair<Hop, std::set<Hop>>> snap;
    for (BrokerId b = 1; b <= w.overlay.broker_count(); ++b) {
      const SubEntry* e = w.net.broker(b).tables().find_sub({1000, 1});
      if (e) {
        snap[b] = {e->lasthop,
                   std::set<Hop>(e->forwarded_to.begin(),
                                 e->forwarded_to.end())};
      }
    }
    return snap;
  };
  const auto before = snapshot();

  // Move client 1001 somewhere else.
  Broker::Outputs o4;
  w.engines[1]->initiate_move(1001, w.overlay.broker_count() > 2 ? 3 : 1, o4);
  w.net.transmit(2, std::move(o4));
  w.net.run();

  EXPECT_EQ(snapshot(), before);
}

}  // namespace
}  // namespace tmps
