// Regression tests documenting the covering/reconfiguration interaction
// found while building this system (see DESIGN.md):
//
//   With the covering optimization enabled, a subscription quenched by a
//   covering subscription depends on the coverer's routing entries for its
//   own deliveries. If the coverer then moves via the hop-by-hop
//   reconfiguration protocol, its entries flip towards its new location and
//   the quenched subscription silently loses its delivery path — violating
//   the notification-consistency property of Sec. 3.4.
//
// The paper frames covering as the *traditional* protocol's optimization;
// these tests pin down (a) that the hazard is real with covering on, and
// (b) that disabling covering restores the guarantee — the configuration
// every reconfiguration deployment in this repository uses.
#include <gtest/gtest.h>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

constexpr ClientId kPublisher = 1;
constexpr ClientId kCoverer = 10;   // holds the covering root, moves
constexpr ClientId kQuenched = 11;  // holds a covered leaf, stationary

struct Rig {
  explicit Rig(bool covering_enabled)
      : overlay(Overlay::chain(5)),
        net(overlay,
            [&] {
              BrokerConfig bc;
              bc.subscription_covering = covering_enabled;
              bc.advertisement_covering = covering_enabled;
              return bc;
            }()) {
    for (BrokerId b = 1; b <= 5; ++b) {
      engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
      engines.back()->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            deliveries.emplace_back(c, p.id());
          });
    }
    // Publisher at broker 5; both subscribers co-located at broker 1.
    run_op(5, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kPublisher);
      e.advertise(kPublisher, full_space_advertisement(), out);
    });
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kCoverer);
      e.subscribe(kCoverer, workload_filter(WorkloadKind::Covered, 1), out);
    });
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kQuenched);
      e.subscribe(kQuenched, workload_filter(WorkloadKind::Covered, 2), out);
    });
  }

  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
    net.run();
  }

  int delivered(ClientId c, PublicationId id) const {
    int n = 0;
    for (const auto& [cc, pid] : deliveries) {
      if (cc == c && pid == id) ++n;
    }
    return n;
  }

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::vector<std::pair<ClientId, PublicationId>> deliveries;
};

TEST(CoveringMobility, QuenchingActuallyHappensWithCoveringOn) {
  Rig s(/*covering_enabled=*/true);
  // The leaf's subscription was quenched at broker 1: brokers 2..4 only
  // carry the root.
  EXPECT_EQ(s.net.broker(3).tables().find_sub({kQuenched, 1}), nullptr);
  ASSERT_NE(s.net.broker(3).tables().find_sub({kCoverer, 1}), nullptr);
  // Delivery works for both while the coverer is in place.
  const Publication p = make_publication({kPublisher, 1}, 100, 0);
  s.run_op(5, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  EXPECT_EQ(s.delivered(kCoverer, p.id()), 1);
  EXPECT_EQ(s.delivered(kQuenched, p.id()), 1);
}

TEST(CoveringMobility, HazardQuenchedSubscriberLosesDeliveryWhenCovererMoves) {
  Rig s(/*covering_enabled=*/true);
  s.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.initiate_move(kCoverer, 5, out);
  });
  const Publication p = make_publication({kPublisher, 2}, 100, 0);
  s.run_op(5, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  // The mover still receives (now locally at broker 5)...
  EXPECT_EQ(s.delivered(kCoverer, p.id()), 1);
  // ...but the quenched subscriber's path is gone: THIS IS THE HAZARD.
  // If this expectation ever starts failing, the engine has gained an
  // un-quench step and DESIGN.md's guidance should be revisited.
  EXPECT_EQ(s.delivered(kQuenched, p.id()), 0)
      << "hazard no longer reproduces; covering+reconfig guidance stale";
}

TEST(CoveringMobility, CoveringOffRestoresGuarantee) {
  Rig s(/*covering_enabled=*/false);
  s.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.initiate_move(kCoverer, 5, out);
  });
  const Publication p = make_publication({kPublisher, 2}, 100, 0);
  s.run_op(5, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  EXPECT_EQ(s.delivered(kCoverer, p.id()), 1);
  EXPECT_EQ(s.delivered(kQuenched, p.id()), 1);
}

TEST(CoveringMobility, TraditionalProtocolUnquenchesCorrectly) {
  // The traditional protocol's unsubscription un-quenches the leaf, so the
  // guarantee survives a coverer move under covering — at the message cost
  // the paper measures.
  Rig s(/*covering_enabled=*/true);
  for (auto& e : s.engines) {
    // switch every engine to the traditional protocol for this test
    e->mutable_config().protocol = MobilityProtocol::Traditional;
  }
  s.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.initiate_move(kCoverer, 5, out);
  });
  const Publication p = make_publication({kPublisher, 2}, 100, 0);
  s.run_op(5, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  EXPECT_EQ(s.delivered(kCoverer, p.id()), 1);
  EXPECT_EQ(s.delivered(kQuenched, p.id()), 1);
}

}  // namespace
}  // namespace tmps
