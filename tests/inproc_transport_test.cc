// Live integration tests: the same broker/engine stack running on real
// threads with the in-process transport.
#include <gtest/gtest.h>

#include <atomic>

#include "pubsub/workload.h"
#include "transport/inproc_transport.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;
constexpr ClientId kPublisher = 600;

BrokerConfig no_covering() {
  // Reconfiguration mobility requires covering off (see DESIGN.md).
  BrokerConfig bc;
  bc.subscription_covering = false;
  bc.advertisement_covering = false;
  return bc;
}

class InprocTest : public ::testing::Test {
 protected:
  InprocTest() : overlay_(Overlay::paper_default()), net_(overlay_, no_covering()) {
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      net_.engine(b).set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            std::lock_guard lock(mu_);
            deliveries_.emplace_back(c, p.id());
          });
    }
    net_.start();
  }
  ~InprocTest() override { net_.stop(); }

  int delivered(ClientId c, PublicationId id) {
    std::lock_guard lock(mu_);
    int n = 0;
    for (const auto& [cc, pid] : deliveries_) {
      if (cc == c && pid == id) ++n;
    }
    return n;
  }

  Overlay overlay_;
  InprocTransport net_;
  std::mutex mu_;
  std::vector<std::pair<ClientId, PublicationId>> deliveries_;
};

TEST_F(InprocTest, EndToEndPubSub) {
  net_.run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  net_.drain();
  net_.run_on(13, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kMover);
    e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 1), out);
  });
  net_.drain();
  const Publication p = make_publication({kPublisher, 1}, 500, 0);
  net_.run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  net_.drain();
  EXPECT_EQ(delivered(kMover, p.id()), 1);
}

TEST_F(InprocTest, LiveMovementCommits) {
  net_.run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kMover);
    e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2), out);
  });
  net_.drain();

  std::atomic<TxnId> txn{kNoTxn};
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 13, out);
  });
  net_.drain();

  ASSERT_NE(txn.load(), kNoTxn);
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs&) {
    EXPECT_EQ(e.source_state(txn), SourceCoordState::Commit);
    EXPECT_EQ(e.find_client(kMover), nullptr);
  });
  net_.run_on(13, [&](MobilityEngine& e, Broker::Outputs&) {
    ASSERT_NE(e.find_client(kMover), nullptr);
    EXPECT_EQ(e.find_client(kMover)->state(), ClientState::Started);
  });

  // Delivery continues at the new location.
  const Publication p = make_publication({kPublisher, 9}, 100, 0);
  net_.run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  net_.drain();
  EXPECT_EQ(delivered(kMover, p.id()), 1);
}

TEST_F(InprocTest, ConcurrentPublishersAndMovers) {
  // Two publishers and four movers churning concurrently from the test
  // thread while workers route — a thread-safety smoke with assertions on
  // exactly-once delivery.
  net_.run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  net_.run_on(10, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher + 1);
    e.advertise(kPublisher + 1, full_space_advertisement(), out);
  });
  for (int i = 0; i < 4; ++i) {
    const ClientId c = kMover + i;
    net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(c);
      e.subscribe(c, workload_filter(WorkloadKind::Covered, 1, i), out);
    });
  }
  net_.drain();

  std::vector<PublicationId> ids;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 4; ++i) {
      const ClientId c = kMover + i;
      const BrokerId from = (round % 2 == 0) ? 1 : 13;
      const BrokerId to = (round % 2 == 0) ? 13 : 1;
      net_.run_on(from, [&](MobilityEngine& e, Broker::Outputs& out) {
        e.initiate_move(c, to, out);
      });
    }
    for (int i = 0; i < 4; ++i) {
      const auto seq = static_cast<std::uint32_t>(100 + round * 4 + i);
      ids.push_back({kPublisher, seq});
      net_.run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
        e.publish(kPublisher,
                  make_publication({kPublisher, seq}, 100,
                                   /*group=*/round % 4),
                  out);
      });
    }
    net_.drain();
  }
  net_.drain();

  // Exactly one live copy per mover, all started.
  for (int i = 0; i < 4; ++i) {
    const ClientId c = kMover + i;
    int copies = 0;
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      net_.run_on(b, [&](MobilityEngine& e, Broker::Outputs&) {
        if (e.find_client(c)) ++copies;
      });
    }
    EXPECT_EQ(copies, 1) << "mover " << i;
  }
  // No duplicate deliveries anywhere.
  std::lock_guard lock(mu_);
  std::set<std::pair<ClientId, PublicationId>> uniq(deliveries_.begin(),
                                                    deliveries_.end());
  EXPECT_EQ(uniq.size(), deliveries_.size());
}

TEST_F(InprocTest, WallClockAdvances) {
  const double t0 = net_.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GT(net_.now(), t0 + 0.01);
}

TEST_F(InprocTest, TimersFire) {
  std::atomic<bool> fired{false};
  net_.schedule(0.02, [&] { fired = true; });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(fired.load());
}

}  // namespace
}  // namespace tmps
