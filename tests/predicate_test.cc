#include "pubsub/predicate.h"

#include <gtest/gtest.h>

namespace tmps {
namespace {

TEST(Predicate, Eq) {
  const Predicate p = eq("x", 5);
  EXPECT_TRUE(p.satisfied_by(Value{5}));
  EXPECT_TRUE(p.satisfied_by(Value{5.0}));
  EXPECT_FALSE(p.satisfied_by(Value{6}));
  EXPECT_FALSE(p.satisfied_by(Value{"5"}));
}

TEST(Predicate, Ne) {
  const Predicate p = ne("x", 5);
  EXPECT_FALSE(p.satisfied_by(Value{5}));
  EXPECT_TRUE(p.satisfied_by(Value{6}));
  // Incomparable domains do not satisfy ordered predicates.
  EXPECT_FALSE(p.satisfied_by(Value{"a"}));
}

TEST(Predicate, OrderedOps) {
  EXPECT_TRUE(lt("x", 5).satisfied_by(Value{4}));
  EXPECT_FALSE(lt("x", 5).satisfied_by(Value{5}));
  EXPECT_TRUE(le("x", 5).satisfied_by(Value{5}));
  EXPECT_FALSE(le("x", 5).satisfied_by(Value{6}));
  EXPECT_TRUE(gt("x", 5).satisfied_by(Value{6}));
  EXPECT_FALSE(gt("x", 5).satisfied_by(Value{5}));
  EXPECT_TRUE(ge("x", 5).satisfied_by(Value{5}));
  EXPECT_FALSE(ge("x", 5).satisfied_by(Value{4}));
}

TEST(Predicate, OrderedOpsOnStrings) {
  EXPECT_TRUE(lt("s", "m").satisfied_by(Value{"a"}));
  EXPECT_FALSE(lt("s", "m").satisfied_by(Value{"z"}));
  EXPECT_TRUE(ge("s", "m").satisfied_by(Value{"m"}));
}

TEST(Predicate, Present) {
  const Predicate p = present("x");
  EXPECT_TRUE(p.satisfied_by(Value{1}));
  EXPECT_TRUE(p.satisfied_by(Value{"anything"}));
}

TEST(Predicate, Prefix) {
  const Predicate p = prefix("s", "foo");
  EXPECT_TRUE(p.satisfied_by(Value{"foo"}));
  EXPECT_TRUE(p.satisfied_by(Value{"foobar"}));
  EXPECT_FALSE(p.satisfied_by(Value{"fo"}));
  EXPECT_FALSE(p.satisfied_by(Value{"bar"}));
  EXPECT_FALSE(p.satisfied_by(Value{42}));
}

TEST(Predicate, ToStringMentionsParts) {
  const auto s = ge("price", 100).to_string();
  EXPECT_NE(s.find("price"), std::string::npos);
  EXPECT_NE(s.find("ge"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

}  // namespace
}  // namespace tmps
