// End-to-end tests of the reconfiguration movement protocol on the simulated
// network: transactional properties (Sec. 3), routing-table shape after
// moves (Sec. 4.4 claims), message cost, and abort paths.
#include <gtest/gtest.h>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;
constexpr ClientId kPublisher = 600;

class ReconfigFixture : public ::testing::Test {
 protected:
  explicit ReconfigFixture(Overlay overlay = Overlay::chain(5))
      : overlay_(std::move(overlay)), net_(overlay_) {
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      MobilityConfig cfg;
      engines_.push_back(
          std::make_unique<MobilityEngine>(net_.broker(b), net_, cfg));
      auto* eng = engines_.back().get();
      eng->set_transmit(
          [this, b](Broker::Outputs out) { net_.transmit(b, std::move(out)); });
      eng->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            deliveries_.emplace_back(c, p.id());
          });
    }
  }

  MobilityEngine& engine(BrokerId b) { return *engines_[b - 1]; }

  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(engine(b), out);
    net_.transmit(b, std::move(out));
    net_.run();
  }

  /// Counts deliveries of a given publication to a given client.
  int delivered(ClientId c, PublicationId id) const {
    int n = 0;
    for (const auto& [cc, pid] : deliveries_) {
      if (cc == c && pid == id) ++n;
    }
    return n;
  }

  Overlay overlay_;
  SimNetwork net_;
  std::vector<std::unique_ptr<MobilityEngine>> engines_;
  std::vector<std::pair<ClientId, PublicationId>> deliveries_;
};

class ReconfigChain : public ReconfigFixture {
 protected:
  ReconfigChain() {
    // Publisher at broker 1 advertising the full space; mover at broker 2
    // subscribed to part of it.
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kPublisher);
      e.advertise(kPublisher, full_space_advertisement(), out);
    });
    run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kMover);
      // Covered workload subscription #2: x in [0, 500].
      sub_id_ = e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2),
                            out);
    });
  }

  TxnId move(BrokerId from, BrokerId to) {
    TxnId txn = kNoTxn;
    run_op(from, [&](MobilityEngine& e, Broker::Outputs& out) {
      txn = e.initiate_move(kMover, to, out);
    });
    return txn;
  }

  Publication publish(std::uint32_t seq, std::int64_t x = 100) {
    Publication p = make_publication({kPublisher, seq}, x, 0);
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(kPublisher, Publication(p), out);
    });
    return p;
  }

  SubscriptionId sub_id_;
};

TEST_F(ReconfigChain, MoveCommitsAndTransfersClient) {
  const TxnId txn = move(2, 5);
  ASSERT_NE(txn, kNoTxn);
  EXPECT_EQ(engine(2).source_state(txn), SourceCoordState::Commit);
  EXPECT_EQ(engine(5).target_state(txn), TargetCoordState::Commit);
  EXPECT_EQ(engine(2).find_client(kMover), nullptr);
  ASSERT_NE(engine(5).find_client(kMover), nullptr);
  EXPECT_EQ(engine(5).find_client(kMover)->state(), ClientState::Started);
}

TEST_F(ReconfigChain, ExactlyOneClientInstanceAfterMove) {
  move(2, 5);
  int instances = 0;
  for (BrokerId b = 1; b <= 5; ++b) {
    if (engine(b).find_client(kMover)) ++instances;
  }
  EXPECT_EQ(instances, 1);
}

TEST_F(ReconfigChain, RoutingEntriesFlipAlongPathOnly) {
  move(2, 5);
  // Post-move: subscription last hops must point towards broker 5.
  // Broker 1 (off the move path 2..5? broker 1 is off-path).
  const auto* e1 = net_.broker(1).tables().find_sub(sub_id_);
  ASSERT_NE(e1, nullptr);
  EXPECT_EQ(e1->lasthop, Hop::of_broker(2)) << "off-path broker unchanged";
  for (BrokerId b = 2; b <= 4; ++b) {
    const auto* e = net_.broker(b).tables().find_sub(sub_id_);
    ASSERT_NE(e, nullptr) << b;
    EXPECT_EQ(e->lasthop, Hop::of_broker(b + 1)) << b;
    EXPECT_FALSE(e->shadow_lasthop.has_value()) << b;
  }
  const auto* e5 = net_.broker(5).tables().find_sub(sub_id_);
  ASSERT_NE(e5, nullptr);
  EXPECT_EQ(e5->lasthop, Hop::of_client(kMover));
}

TEST_F(ReconfigChain, NoShadowStateLeaksAfterCommit) {
  move(2, 5);
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_FALSE(net_.broker(b).tables().has_pending_shadows()) << b;
  }
}

TEST_F(ReconfigChain, DeliveryBeforeAndAfterMove) {
  const auto p1 = publish(1);
  EXPECT_EQ(delivered(kMover, p1.id()), 1);
  move(2, 5);
  const auto p2 = publish(2);
  EXPECT_EQ(delivered(kMover, p2.id()), 1);
  const auto p3 = publish(3, /*x=*/9999);  // outside the subscription
  EXPECT_EQ(delivered(kMover, p3.id()), 0);
}

TEST_F(ReconfigChain, RepeatedMovesStayConsistent) {
  for (int round = 0; round < 4; ++round) {
    const BrokerId from = (round % 2 == 0) ? 2 : 5;
    const BrokerId to = (round % 2 == 0) ? 5 : 2;
    move(from, to);
    const auto p = publish(100 + round);
    EXPECT_EQ(delivered(kMover, p.id()), 1) << "round " << round;
  }
  int instances = 0;
  for (BrokerId b = 1; b <= 5; ++b) {
    if (engine(b).find_client(kMover)) ++instances;
  }
  EXPECT_EQ(instances, 1);
}

TEST_F(ReconfigChain, MessageCostIsPathLocal) {
  net_.stats().reset_traffic();
  const TxnId txn = move(2, 5);
  // negotiate + approve + state + ack, each over the 3-hop path 2..5,
  // plus nothing else: 12 messages total.
  EXPECT_EQ(net_.stats().messages_for_cause(txn), 12u);
  // No traffic on the off-path link 1-2.
  auto it = net_.stats().link_counts().find({2, 1});
  const std::uint64_t off =
      it == net_.stats().link_counts().end() ? 0 : it->second;
  EXPECT_EQ(off, 0u);
}

TEST_F(ReconfigChain, NotificationsDuringMoveNeitherLostNorDuplicated) {
  // Stop the network mid-move: inject publications while the movement
  // messages are in flight, then let everything drain.
  Broker::Outputs out;
  engine(2).initiate_move(kMover, 5, out);
  net_.transmit(2, std::move(out));

  // Interleave publications with the protocol's progress.
  std::vector<PublicationId> pubs;
  for (int i = 0; i < 20; ++i) {
    net_.events().schedule_at(0.0005 * i, [this, i] {
      Broker::Outputs o;
      Publication p = make_publication({kPublisher, static_cast<std::uint32_t>(1000 + i)}, 50, 0);
      engine(1).publish(kPublisher, std::move(p), o);
      net_.transmit(1, std::move(o));
    });
    pubs.push_back({kPublisher, static_cast<std::uint32_t>(1000 + i)});
  }
  net_.run();

  for (const auto& id : pubs) {
    EXPECT_EQ(delivered(kMover, id), 1) << "pub " << to_string(id);
  }
}

TEST_F(ReconfigChain, RejectedMoveKeepsClientAtSource) {
  engine(5).mutable_config().accept_clients = false;
  const TxnId txn = move(2, 5);
  EXPECT_EQ(engine(2).source_state(txn), SourceCoordState::Abort);
  ASSERT_NE(engine(2).find_client(kMover), nullptr);
  EXPECT_EQ(engine(2).find_client(kMover)->state(), ClientState::Started);
  EXPECT_EQ(engine(5).find_client(kMover), nullptr);
  // Delivery continues at the source as if nothing happened.
  const auto p = publish(7);
  EXPECT_EQ(delivered(kMover, p.id()), 1);
  // No shadow state anywhere (the target never approved).
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_FALSE(net_.broker(b).tables().has_pending_shadows()) << b;
  }
}

TEST_F(ReconfigChain, NotificationsBufferedDuringRejectedMoveAreDelivered) {
  engine(5).mutable_config().accept_clients = false;
  Broker::Outputs out;
  engine(2).initiate_move(kMover, 5, out);
  net_.transmit(2, std::move(out));
  // Publication lands while the (doomed) negotiation is in flight.
  Broker::Outputs o;
  Publication p = make_publication({kPublisher, 42}, 50, 0);
  engine(1).publish(kPublisher, Publication(p), o);
  net_.transmit(1, std::move(o));
  net_.run();
  EXPECT_EQ(delivered(kMover, p.id()), 1);
}

TEST_F(ReconfigChain, AdmissionCapacityLimit) {
  engine(5).mutable_config().max_hosted_clients = 0;
  const TxnId txn = move(2, 5);
  EXPECT_EQ(engine(2).source_state(txn), SourceCoordState::Abort);
  EXPECT_NE(engine(2).find_client(kMover), nullptr);
}

TEST_F(ReconfigChain, MoveToSelfOrUnknownBrokerRefusedLocally) {
  Broker::Outputs out;
  EXPECT_EQ(engine(2).initiate_move(kMover, 2, out), kNoTxn);
  EXPECT_EQ(engine(2).initiate_move(kMover, 99, out), kNoTxn);
  EXPECT_EQ(engine(2).initiate_move(999, 5, out), kNoTxn);  // unknown client
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(engine(2).find_client(kMover)->state(), ClientState::Started);
}

TEST_F(ReconfigChain, ConcurrentSecondMoveRefusedWhileMoving) {
  Broker::Outputs out;
  const TxnId t1 = engine(2).initiate_move(kMover, 5, out);
  ASSERT_NE(t1, kNoTxn);
  Broker::Outputs out2;
  EXPECT_EQ(engine(2).initiate_move(kMover, 4, out2), kNoTxn);
  net_.transmit(2, std::move(out));
  net_.run();
  EXPECT_EQ(engine(2).source_state(t1), SourceCoordState::Commit);
}

TEST_F(ReconfigChain, PublishWhileMovingIsQueuedAndReplayedAtTarget) {
  // Make the mover a publisher too.
  run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.advertise(kMover, full_space_advertisement(), out);
  });
  // A stationary subscriber at broker 1 listens to everything.
  run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(700);
    e.subscribe(700, workload_filter(WorkloadKind::Covered, 1), out);
  });

  Broker::Outputs out;
  engine(2).initiate_move(kMover, 5, out);
  // Publish before transmitting the movement traffic: the stub must queue.
  Broker::Outputs o2;
  Publication p = make_publication({0, 0}, 77, 0);  // id assigned by stub
  engine(2).publish(kMover, std::move(p), o2);
  EXPECT_TRUE(o2.empty()) << "publish while moving must be queued";
  net_.transmit(2, std::move(out));
  net_.run();

  // The queued publication was replayed from the target after the move.
  int got = 0;
  for (const auto& [c, id] : deliveries_) {
    if (c == 700 && id.client == kMover) ++got;
  }
  EXPECT_EQ(got, 1);
}

// --- moving a publisher (advertisement reconfiguration, Sec. 4.4) ------------

class ReconfigPublisherMove : public ReconfigFixture {
 protected:
  ReconfigPublisherMove() {
    // Mover is a publisher at broker 2; subscribers at brokers 1 and 4.
    run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kMover);
      adv_id_ = e.advertise(kMover, full_space_advertisement(), out);
    });
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(701);
      e.subscribe(701, workload_filter(WorkloadKind::Covered, 1), out);
    });
    run_op(4, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(704);
      e.subscribe(704, workload_filter(WorkloadKind::Covered, 1), out);
    });
  }
  AdvertisementId adv_id_;
};

TEST_F(ReconfigPublisherMove, AdvLastHopsFlipAlongPath) {
  run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.initiate_move(kMover, 5, out);
  });
  // Brokers 2..4 now see the advertisement coming from the target side.
  for (BrokerId b = 2; b <= 4; ++b) {
    const auto* e = net_.broker(b).tables().find_adv(adv_id_);
    ASSERT_NE(e, nullptr) << b;
    EXPECT_EQ(e->lasthop, Hop::of_broker(b + 1)) << b;
  }
  const auto* e5 = net_.broker(5).tables().find_adv(adv_id_);
  ASSERT_NE(e5, nullptr);
  EXPECT_EQ(e5->lasthop, Hop::of_client(kMover));
  // Off-path broker 1 unchanged.
  EXPECT_EQ(net_.broker(1).tables().find_adv(adv_id_)->lasthop,
            Hop::of_broker(2));
}

TEST_F(ReconfigPublisherMove, PublisherDeliversFromNewLocation) {
  run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.initiate_move(kMover, 5, out);
  });
  run_op(5, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kMover, make_publication({0, 0}, 100, 0), out);
  });
  int got1 = 0, got4 = 0;
  for (const auto& [c, id] : deliveries_) {
    if (id.client != kMover) continue;
    if (c == 701) ++got1;
    if (c == 704) ++got4;
  }
  EXPECT_EQ(got1, 1);
  EXPECT_EQ(got4, 1);
}

}  // namespace
}  // namespace tmps
