// Routing-state introspection (obs/introspect.h): JSONL round-trips,
// version gating, and live snapshots taken from a full scenario run.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/scenario.h"
#include "obs/introspect.h"

namespace tmps {
namespace {

obs::BrokerSnapshot sample_snapshot() {
  obs::BrokerSnapshot snap;
  snap.run = "unit:introspect";
  snap.broker = 3;
  snap.time = 12.5;
  snap.final_snapshot = true;
  snap.sub_covering = true;
  snap.adv_covering = false;
  snap.neighbors = {1, 4, 7};

  obs::EntrySnap sub;
  sub.id = "1005:2";
  sub.filter = "[class = A, x > 10]";
  sub.lasthop = "B1";
  sub.forwarded_to = {"B4", "C1005"};
  sub.has_shadow = true;
  sub.shadow_lasthop = "B4";
  sub.shadow_txn = 42;
  sub.shadow_only = false;
  snap.prt.push_back(sub);

  obs::EntrySnap adv;
  adv.id = "7:1";
  adv.filter = "[class = *]";
  adv.lasthop = "C7";
  snap.srt.push_back(adv);

  obs::TxnSnap txn;
  txn.txn = 42;
  txn.role = "source";
  txn.state = "Prepare";
  txn.client = 1005;
  txn.peer = 9;
  snap.txns.push_back(txn);

  obs::ClientSnap client;
  client.id = 1005;
  client.state = "PauseMove";
  client.buffered_notifications = 3;
  client.queued_commands = 1;
  client.subscriptions = 2;
  client.advertisements = 0;
  snap.clients.push_back(client);
  return snap;
}

TEST(Introspect, JsonlRoundTrip) {
  const obs::BrokerSnapshot in = sample_snapshot();
  const std::string line = in.to_jsonl();
  const auto out = obs::BrokerSnapshot::from_jsonl(line);
  ASSERT_TRUE(out.has_value()) << line;

  EXPECT_EQ(out->version, obs::kSnapshotVersion);
  EXPECT_EQ(out->run, in.run);
  EXPECT_EQ(out->broker, in.broker);
  EXPECT_DOUBLE_EQ(out->time, in.time);
  EXPECT_EQ(out->final_snapshot, in.final_snapshot);
  EXPECT_EQ(out->sub_covering, in.sub_covering);
  EXPECT_EQ(out->adv_covering, in.adv_covering);
  EXPECT_EQ(out->neighbors, in.neighbors);

  ASSERT_EQ(out->prt.size(), 1u);
  const obs::EntrySnap& sub = out->prt[0];
  EXPECT_EQ(sub.id, "1005:2");
  EXPECT_EQ(sub.filter, in.prt[0].filter);
  EXPECT_EQ(sub.lasthop, "B1");
  EXPECT_EQ(sub.forwarded_to, in.prt[0].forwarded_to);
  EXPECT_TRUE(sub.has_shadow);
  EXPECT_EQ(sub.shadow_lasthop, "B4");
  EXPECT_EQ(sub.shadow_txn, 42u);
  EXPECT_FALSE(sub.shadow_only);

  ASSERT_EQ(out->srt.size(), 1u);
  EXPECT_EQ(out->srt[0].id, "7:1");
  EXPECT_FALSE(out->srt[0].has_shadow);

  ASSERT_EQ(out->txns.size(), 1u);
  EXPECT_EQ(out->txns[0].txn, 42u);
  EXPECT_EQ(out->txns[0].role, "source");
  EXPECT_EQ(out->txns[0].state, "Prepare");
  EXPECT_EQ(out->txns[0].client, 1005u);
  EXPECT_EQ(out->txns[0].peer, 9u);

  ASSERT_EQ(out->clients.size(), 1u);
  EXPECT_EQ(out->clients[0].id, 1005u);
  EXPECT_EQ(out->clients[0].state, "PauseMove");
  EXPECT_EQ(out->clients[0].buffered_notifications, 3u);
  EXPECT_EQ(out->clients[0].queued_commands, 1u);
  EXPECT_EQ(out->clients[0].subscriptions, 2u);

  EXPECT_TRUE(out->has_pending_shadows());
}

TEST(Introspect, RejectsNewerVersion) {
  obs::BrokerSnapshot snap = sample_snapshot();
  snap.version = obs::kSnapshotVersion + 1;
  EXPECT_FALSE(obs::BrokerSnapshot::from_jsonl(snap.to_jsonl()).has_value());
}

TEST(Introspect, RejectsGarbage) {
  EXPECT_FALSE(obs::BrokerSnapshot::from_jsonl("not json").has_value());
  EXPECT_FALSE(obs::BrokerSnapshot::from_jsonl("{}").has_value());
}

TEST(Introspect, ReadSnapshotsSkipsForeignLines) {
  std::stringstream ss;
  ss << "{\"kind\":\"span\",\"trace\":1}\n";  // a trace record, not a snapshot
  sample_snapshot().write_jsonl(ss);
  ss << "\n";  // blank line
  sample_snapshot().write_jsonl(ss);
  const auto snaps = obs::read_snapshots(ss);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].broker, 3u);
}

TEST(Introspect, ScenarioWritesFinalSnapshotsPerBroker) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = MobilityProtocol::Reconfiguration;
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  cfg.total_clients = 40;
  cfg.duration = 60.0;
  cfg.warmup = 20.0;
  cfg.pause_between_moves = 5.0;
  cfg.publish_interval = 2.0;
  cfg.seed = 11;
  cfg.run_label = "introspect-test";
  cfg.snapshot_path = ::testing::TempDir() + "/introspect_snaps.jsonl";

  Scenario s(cfg);
  s.run();

  std::ifstream is(cfg.snapshot_path);
  ASSERT_TRUE(is.good());
  const auto snaps = obs::read_snapshots(is);
  ASSERT_EQ(snaps.size(), 14u);  // one per paper-topology broker

  std::size_t prt_entries = 0, clients = 0;
  for (const obs::BrokerSnapshot& snap : snaps) {
    EXPECT_TRUE(snap.final_snapshot);
    EXPECT_EQ(snap.run, "introspect-test");
    EXPECT_FALSE(snap.neighbors.empty());
    // A clean run leaves no shadow state behind.
    EXPECT_FALSE(snap.has_pending_shadows()) << "broker " << snap.broker;
    EXPECT_TRUE(snap.txns.empty()) << "broker " << snap.broker;
    prt_entries += snap.prt.size();
    clients += snap.clients.size();
  }
  EXPECT_GT(prt_entries, 0u);
  EXPECT_GE(clients, 40u);  // every subscriber is hosted somewhere
}

}  // namespace
}  // namespace tmps
