#include "pubsub/value.h"

#include <gtest/gtest.h>

namespace tmps {
namespace {

TEST(Value, KindsAreDetected) {
  EXPECT_EQ(Value{std::int64_t{3}}.kind(), Value::Kind::Int);
  EXPECT_EQ(Value{3.5}.kind(), Value::Kind::Real);
  EXPECT_EQ(Value{"abc"}.kind(), Value::Kind::String);
}

TEST(Value, IntAndRealCompareNumerically) {
  EXPECT_TRUE(Value{3}.equals(Value{3.0}));
  EXPECT_EQ(Value{2}.compare(Value{2.5}), std::partial_ordering::less);
  EXPECT_EQ(Value{3.5}.compare(Value{3}), std::partial_ordering::greater);
}

TEST(Value, IntIntComparesExactly) {
  // Large int64 values that would lose precision as doubles.
  const std::int64_t big = (1LL << 62) + 1;
  EXPECT_EQ(Value{big}.compare(Value{big + 1}), std::partial_ordering::less);
  EXPECT_TRUE(Value{big}.equals(Value{big}));
}

TEST(Value, StringsCompareLexicographically) {
  EXPECT_EQ(Value{"abc"}.compare(Value{"abd"}), std::partial_ordering::less);
  EXPECT_TRUE(Value{"x"}.equals(Value{"x"}));
  EXPECT_EQ(Value{"b"}.compare(Value{"a"}), std::partial_ordering::greater);
}

TEST(Value, CrossDomainNeverEquals) {
  EXPECT_FALSE(Value{3}.equals(Value{"3"}));
  EXPECT_FALSE(Value{"3"}.equals(Value{3}));
  EXPECT_FALSE(Value{3}.comparable_with(Value{"3"}));
}

TEST(Value, CrossDomainOrderIsDeterministic) {
  // Numerics sort before strings (container tie-break).
  EXPECT_EQ(Value{100}.compare(Value{"a"}), std::partial_ordering::less);
  EXPECT_EQ(Value{"a"}.compare(Value{100}), std::partial_ordering::greater);
}

TEST(Value, NumericWidening) {
  EXPECT_DOUBLE_EQ(Value{7}.numeric(), 7.0);
  EXPECT_DOUBLE_EQ(Value{7.25}.numeric(), 7.25);
}

TEST(Value, ToStringRendersAllKinds) {
  EXPECT_EQ(Value{42}.to_string(), "42");
  EXPECT_EQ(Value{"hi"}.to_string(), "\"hi\"");
  EXPECT_NE(Value{1.5}.to_string().find("1.5"), std::string::npos);
}

TEST(Value, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.kind(), Value::Kind::Int);
  EXPECT_EQ(v.as_int(), 0);
}

TEST(Value, OperatorLessMatchesCompare) {
  EXPECT_LT(Value{1}, Value{2});
  EXPECT_LT(Value{"a"}, Value{"b"});
  EXPECT_FALSE(Value{2} < Value{1});
}

}  // namespace
}  // namespace tmps
