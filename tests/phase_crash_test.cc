// Crash-restart at every movement phase, healed by the repair loop: a
// phase-targeted crash (failure/failure_injector.h PhaseCrash) wipes the
// victim's volatile 3PC conversation — source, target or an intermediate
// broker, at each protocol phase — with every coordinator timeout disabled,
// so the anti-entropy sweeps are the only healer. The run must end
// auditor-clean with exactly-once delivery and zero residual shadow state.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/scenario.h"
#include "failure/failure_injector.h"
#include "repair/scenario_repair.h"

namespace tmps {
namespace {

// The auditor reconstructs movement windows from tracer spans, which
// -DTMPS_TRACING=OFF removes.
#if TMPS_TRACING_ENABLED
#define TMPS_REQUIRE_TRACING()
#else
#define TMPS_REQUIRE_TRACING() \
  GTEST_SKIP() << "instrumentation sites compiled out (TMPS_TRACING=OFF)"
#endif

struct PhaseCase {
  const char* role;    // for test naming
  BrokerId victim;     // 1 = source end, 13 = target end, 8 = mid-path
  const char* phase;   // triggering control message type
};

// Fig. 6 topology, move pair 1 <-> 13 (path 1-3-4-8-12-13): broker 1 is the
// movement source end, 13 the target end, 8 an intermediate relay.
ScenarioConfig chaos_config() {
  ScenarioConfig cfg;
  cfg.mobility.protocol = MobilityProtocol::Reconfiguration;
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  cfg.workload = WorkloadKind::Covered;
  cfg.total_clients = 24;
  cfg.moving_clients = 4;
  cfg.duration = 90.0;
  cfg.warmup = 20.0;
  cfg.pause_between_moves = 6.0;
  cfg.publish_interval = 2.0;
  cfg.seed = 11;
  cfg.audit = true;
  // Coordinator timeouts stay at their default 0 (disabled): only the
  // repair sweeps can unstick a movement the crash interrupted.
  cfg.broker.repair.enabled = true;
  cfg.broker.repair.sweep_interval = 1.0;
  cfg.broker.repair.stale_after = 2.5;
  cfg.broker.repair.confirm_rounds = 2;
  return cfg;
}

class PhaseCrashRepair : public ::testing::TestWithParam<PhaseCase> {};

TEST_P(PhaseCrashRepair, RepairConvergesAuditClean) {
  TMPS_REQUIRE_TRACING();
  const PhaseCase& pc = GetParam();
  ScenarioConfig cfg = chaos_config();
  auto repair = repair::install_repair(cfg);
  std::unique_ptr<FailureInjector> inj;
  cfg.post_build = [&](SimNetwork& net) {
    FailurePlan plan;
    plan.seed = cfg.seed;  // one seed reproduces workload and faults
    inj = std::make_unique<FailureInjector>(net, plan);
    PhaseCrash crash;
    crash.victim = pc.victim;
    crash.phase = pc.phase;
    crash.outage = 1.5;
    crash.count = 1;
    inj->crash_at_phase(crash);
  };
  Scenario s(cfg);
  s.run();

  ASSERT_FALSE(inj->fault_hits().empty())
      << pc.role << " never saw " << pc.phase;
  const obs::AuditReport& report = s.audit_report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(s.audit().duplicates, 0u);
  EXPECT_EQ(s.audit().mover_losses, 0u);
  for (const auto& [b, engine] : s.engines()) {
    EXPECT_FALSE(engine->broker().tables().has_pending_shadows())
        << "residual shadow state at broker " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRolesAllPhases, PhaseCrashRepair,
    ::testing::Values(
        PhaseCase{"source", 1, "move-negotiate"},
        PhaseCase{"source", 1, "move-approve"},
        PhaseCase{"source", 1, "move-state"},
        PhaseCase{"source", 1, "move-ack"},
        PhaseCase{"target", 13, "move-negotiate"},
        PhaseCase{"target", 13, "move-approve"},
        PhaseCase{"target", 13, "move-state"},
        PhaseCase{"target", 13, "move-ack"},
        PhaseCase{"intermediate", 8, "move-negotiate"},
        PhaseCase{"intermediate", 8, "move-approve"},
        PhaseCase{"intermediate", 8, "move-state"},
        PhaseCase{"intermediate", 8, "move-ack"}),
    [](const ::testing::TestParamInfo<PhaseCase>& info) {
      std::string phase = info.param.phase;
      for (char& c : phase) {
        if (c == '-') c = '_';
      }
      return std::string(info.param.role) + "_" + phase;
    });

// Negative control: the same mid-path crash with the repair loop disabled
// must leave attributed violations — the healer, not luck, is what makes the
// parameterized suite green.
TEST(PhaseCrashRepair, DisabledRepairLeavesViolations) {
  TMPS_REQUIRE_TRACING();
  ScenarioConfig cfg = chaos_config();
  cfg.broker.repair.enabled = false;
  std::unique_ptr<FailureInjector> inj;
  cfg.post_build = [&](SimNetwork& net) {
    FailurePlan plan;
    plan.seed = cfg.seed;
    inj = std::make_unique<FailureInjector>(net, plan);
    PhaseCrash crash;
    crash.victim = 8;
    crash.phase = "move-state";
    crash.outage = 1.5;
    crash.count = 1;
    inj->crash_at_phase(crash);
  };
  Scenario s(cfg);
  s.run();

  ASSERT_FALSE(inj->fault_hits().empty());
  EXPECT_FALSE(s.audit_report().clean())
      << "dropping move-state with timeouts disabled and no repair loop "
         "should strand the movement";
}

}  // namespace
}  // namespace tmps
