#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace tmps {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesRunInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double fired = -1;
  q.schedule_at(5.0, [&] {
    q.schedule_in(2.5, [&] { fired = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired, 7.5);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.schedule_at(3.0, [&] { ++count; });
  q.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) q.schedule_in(0.1, recurse);
  };
  q.schedule_at(0.0, recurse);
  q.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(q.executed(), 100u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(1.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

}  // namespace
}  // namespace tmps
