#include "sim/stats.h"

#include <gtest/gtest.h>

namespace tmps {
namespace {

TEST(Stats, CountsTotalsPerLinkAndPerType) {
  Stats s;
  s.count_message(1, 2, "sub", kNoTxn);
  s.count_message(1, 2, "sub", kNoTxn);
  s.count_message(2, 3, "pub", kNoTxn);
  EXPECT_EQ(s.total_messages(), 3u);
  EXPECT_EQ(s.link_counts().at({1, 2}), 2u);
  EXPECT_EQ(s.link_counts().at({2, 3}), 1u);
  EXPECT_EQ(s.messages_by_type("sub"), 2u);
  EXPECT_EQ(s.messages_by_type("pub"), 1u);
  EXPECT_EQ(s.messages_by_type("unknown"), 0u);
}

TEST(Stats, CauseAttribution) {
  Stats s;
  s.count_message(1, 2, "sub", 42);
  s.count_message(2, 3, "sub", 42);
  s.count_message(1, 2, "pub", kNoTxn);
  EXPECT_EQ(s.messages_for_cause(42), 2u);
  EXPECT_EQ(s.messages_for_cause(43), 0u);
}

TEST(Stats, MovementRecordSnapshotsCauseCount) {
  Stats s;
  s.count_message(1, 2, "move-negotiate", 7);
  s.count_message(2, 3, "move-negotiate", 7);
  MovementRecord rec;
  rec.txn = 7;
  rec.client = 100;
  rec.start = 1.0;
  rec.end = 1.5;
  rec.committed = true;
  s.record_movement(rec);
  ASSERT_EQ(s.movements().size(), 1u);
  EXPECT_EQ(s.movements()[0].messages, 2u);
  EXPECT_DOUBLE_EQ(s.movements()[0].duration(), 0.5);
}

TEST(Stats, WindowedSummaries) {
  Stats s;
  auto rec = [&](TxnId txn, double start, double dur, bool committed) {
    MovementRecord r;
    r.txn = txn;
    r.start = start;
    r.end = start + dur;
    r.committed = committed;
    s.record_movement(r);
  };
  rec(1, 5.0, 0.1, true);    // before warmup window
  rec(2, 15.0, 0.2, true);   // in window
  rec(3, 20.0, 0.4, true);   // in window
  rec(4, 25.0, 9.9, false);  // aborted: excluded
  rec(5, 95.0, 0.3, true);   // after window

  const Summary w = s.latency_summary(10.0, 90.0);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_NEAR(w.mean(), 0.3, 1e-9);
  EXPECT_EQ(s.committed_movements(10.0, 90.0), 2u);
  EXPECT_EQ(s.committed_movements(), 4u);
}

TEST(Stats, MessagesPerMovementAveragesOverWindow) {
  Stats s;
  s.count_message(1, 2, "x", 1);
  s.count_message(1, 2, "x", 1);
  s.count_message(1, 2, "x", 2);
  auto rec = [&](TxnId txn, double start) {
    MovementRecord r;
    r.txn = txn;
    r.start = start;
    r.end = start + 0.1;
    r.committed = true;
    s.record_movement(r);
  };
  rec(1, 10.0);
  rec(2, 20.0);
  EXPECT_DOUBLE_EQ(s.messages_per_movement(0.0, 100.0), 1.5);
  EXPECT_DOUBLE_EQ(s.messages_per_movement(15.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(s.messages_per_movement(50.0, 100.0), 0.0);
}

TEST(Stats, ResetTrafficClearsCountsButKeepsMovements) {
  Stats s;
  s.count_message(1, 2, "x", 1);
  MovementRecord r;
  r.txn = 1;
  r.committed = true;
  s.record_movement(r);
  s.reset_traffic();
  EXPECT_EQ(s.total_messages(), 0u);
  EXPECT_TRUE(s.link_counts().empty());
  EXPECT_EQ(s.messages_for_cause(1), 0u);
  EXPECT_EQ(s.movements().size(), 1u);
}

TEST(Stats, DeliveryCounter) {
  Stats s;
  s.count_delivery(1);
  s.count_delivery(2);
  EXPECT_EQ(s.deliveries(), 2u);
}

TEST(Summary, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace tmps
