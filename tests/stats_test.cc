#include "sim/stats.h"

#include <gtest/gtest.h>

namespace tmps {
namespace {

TEST(Stats, CountsTotalsPerLinkAndPerType) {
  Stats s;
  s.count_message(1, 2, "sub", kNoTxn);
  s.count_message(1, 2, "sub", kNoTxn);
  s.count_message(2, 3, "pub", kNoTxn);
  EXPECT_EQ(s.total_messages(), 3u);
  EXPECT_EQ(s.link_counts().at({1, 2}), 2u);
  EXPECT_EQ(s.link_counts().at({2, 3}), 1u);
  EXPECT_EQ(s.messages_by_type("sub"), 2u);
  EXPECT_EQ(s.messages_by_type("pub"), 1u);
  EXPECT_EQ(s.messages_by_type("unknown"), 0u);
}

TEST(Stats, CauseAttribution) {
  Stats s;
  s.count_message(1, 2, "sub", 42);
  s.count_message(2, 3, "sub", 42);
  s.count_message(1, 2, "pub", kNoTxn);
  EXPECT_EQ(s.messages_for_cause(42), 2u);
  EXPECT_EQ(s.messages_for_cause(43), 0u);
}

TEST(Stats, MovementRecordSnapshotsCauseCount) {
  Stats s;
  s.count_message(1, 2, "move-negotiate", 7);
  s.count_message(2, 3, "move-negotiate", 7);
  MovementRecord rec;
  rec.txn = 7;
  rec.client = 100;
  rec.start = 1.0;
  rec.end = 1.5;
  rec.committed = true;
  s.record_movement(rec);
  ASSERT_EQ(s.movements().size(), 1u);
  EXPECT_EQ(s.movements()[0].messages, 2u);
  EXPECT_DOUBLE_EQ(s.movements()[0].duration(), 0.5);
}

TEST(Stats, CauseMessagesAfterRecordCaptureReachTheRecord) {
  // Regression: covering-induced (un)subscriptions tagged with the movement's
  // TxnId can still be cascading at brokers off the movement path when the
  // movement record is captured. Those late messages must land in the
  // record's message count, not vanish.
  Stats s;
  s.count_message(1, 2, "move-negotiate", 7);
  MovementRecord rec;
  rec.txn = 7;
  rec.committed = true;
  s.record_movement(rec);
  EXPECT_EQ(s.movements()[0].messages, 1u);

  s.count_message(3, 4, "sub", 7);  // arrives after the record was captured
  s.count_message(4, 5, "unsub", 7);
  EXPECT_EQ(s.messages_for_cause(7), 3u);
  EXPECT_EQ(s.movements()[0].messages, 3u)
      << "late cause-tagged messages must join the movement record";
  // Unrelated causes stay unaffected.
  s.count_message(1, 2, "sub", 8);
  EXPECT_EQ(s.movements()[0].messages, 3u);
}

TEST(Stats, WindowedSummaries) {
  Stats s;
  auto rec = [&](TxnId txn, double start, double dur, bool committed) {
    MovementRecord r;
    r.txn = txn;
    r.start = start;
    r.end = start + dur;
    r.committed = committed;
    s.record_movement(r);
  };
  rec(1, 5.0, 0.1, true);    // before warmup window
  rec(2, 15.0, 0.2, true);   // in window
  rec(3, 20.0, 0.4, true);   // in window
  rec(4, 25.0, 9.9, false);  // aborted: excluded
  rec(5, 95.0, 0.3, true);   // after window

  const Summary w = s.latency_summary(10.0, 90.0);
  EXPECT_EQ(w.count(), 2u);
  EXPECT_NEAR(w.mean(), 0.3, 1e-9);
  EXPECT_EQ(s.committed_movements(10.0, 90.0), 2u);
  EXPECT_EQ(s.committed_movements(), 4u);
}

TEST(Stats, MessagesPerMovementAveragesOverWindow) {
  Stats s;
  s.count_message(1, 2, "x", 1);
  s.count_message(1, 2, "x", 1);
  s.count_message(1, 2, "x", 2);
  auto rec = [&](TxnId txn, double start) {
    MovementRecord r;
    r.txn = txn;
    r.start = start;
    r.end = start + 0.1;
    r.committed = true;
    s.record_movement(r);
  };
  rec(1, 10.0);
  rec(2, 20.0);
  EXPECT_DOUBLE_EQ(s.messages_per_movement(0.0, 100.0), 1.5);
  EXPECT_DOUBLE_EQ(s.messages_per_movement(15.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(s.messages_per_movement(50.0, 100.0), 0.0);
}

TEST(Stats, ResetTrafficClearsCountsButKeepsMovements) {
  Stats s;
  s.count_message(1, 2, "x", 1);
  MovementRecord r;
  r.txn = 1;
  r.committed = true;
  s.record_movement(r);
  s.reset_traffic();
  EXPECT_EQ(s.total_messages(), 0u);
  EXPECT_TRUE(s.link_counts().empty());
  EXPECT_EQ(s.messages_for_cause(1), 0u);
  EXPECT_EQ(s.movements().size(), 1u);
}

TEST(Stats, DeliveryCounter) {
  Stats s;
  s.count_delivery(3, 1);
  s.count_delivery(3, 2);
  s.count_delivery(5, 1);
  EXPECT_EQ(s.deliveries(), 3u);
}

TEST(Stats, BrokerPubLoadsCombinePublicationsAndDeliveries) {
  Stats s;
  s.count_broker_message(1, /*publication=*/true);
  s.count_broker_message(1, /*publication=*/false);  // routing msg: no load
  s.count_broker_message(2, /*publication=*/true);
  s.count_delivery(1, 1001);
  s.count_delivery(1, 1002);
  const auto loads = s.broker_pub_loads();
  EXPECT_EQ(loads.at(1), 3u);  // 1 matching pass + 2 deliveries
  EXPECT_EQ(loads.at(2), 1u);
  EXPECT_EQ(s.broker_messages().at(1), 2u);
}

TEST(Stats, LoadSkewRatioAndArgmax) {
  std::map<BrokerId, std::uint64_t> loads = {{1, 90}, {2, 10}};
  // Mean over 4 brokers (two idle): (90+10+0+0)/4 = 25 -> ratio 3.6.
  const LoadSkew skew = load_skew(loads, 4);
  EXPECT_DOUBLE_EQ(skew.max, 90.0);
  EXPECT_DOUBLE_EQ(skew.mean, 25.0);
  EXPECT_EQ(skew.argmax, 1u);
  EXPECT_NEAR(skew.ratio(), 3.6, 1e-9);
}

TEST(Stats, LoadSkewOfEmptyOrUniformIsOne) {
  EXPECT_DOUBLE_EQ(load_skew({}, 4).ratio(), 1.0);
  std::map<BrokerId, std::uint64_t> even = {{1, 5}, {2, 5}, {3, 5}};
  EXPECT_DOUBLE_EQ(load_skew(even, 3).ratio(), 1.0);
}

TEST(Stats, ResetTrafficClearsBrokerLoads) {
  Stats s;
  s.count_broker_message(1, true);
  s.count_delivery(1, 1001);
  s.reset_traffic();
  EXPECT_EQ(s.deliveries(), 0u);
  EXPECT_TRUE(s.broker_messages().empty());
  EXPECT_TRUE(s.broker_pub_loads().empty());
}

TEST(Summary, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  // With one sample every quantile clamps to that sample.
  EXPECT_DOUBLE_EQ(s.p50(), 3.5);
  EXPECT_DOUBLE_EQ(s.p99(), 3.5);
}

TEST(Summary, PercentilesTrackTheDistributionTail) {
  // 99 fast samples at 10ms plus one 1s outlier: the median must stay near
  // 10ms (within the ±9% bucket quantization) while p99+ sees the tail.
  Summary s;
  for (int i = 0; i < 99; ++i) s.add(0.010);
  s.add(1.0);
  EXPECT_NEAR(s.p50(), 0.010, 0.010 * 0.10);
  EXPECT_NEAR(s.p95(), 0.010, 0.010 * 0.10);
  EXPECT_GT(s.percentile(0.995), 0.5);
  // Quantiles are clamped to the observed range.
  EXPECT_GE(s.percentile(0.0), s.min());
  EXPECT_LE(s.percentile(1.0), s.max());
}

TEST(Summary, PercentilesAreMonotonic) {
  Summary s;
  for (int i = 1; i <= 1000; ++i) s.add(i * 0.001);  // 1ms..1s
  double prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = s.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, s.min());
    EXPECT_LE(v, s.max());
    prev = v;
  }
  // Bucket resolution keeps the estimate within ~±9% of the true quantile.
  EXPECT_NEAR(s.p50(), 0.5, 0.5 * 0.10);
  EXPECT_NEAR(s.p95(), 0.95, 0.95 * 0.10);
}

}  // namespace
}  // namespace tmps
