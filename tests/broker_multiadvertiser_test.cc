// Routing with multiple advertisers in different directions of the overlay:
// subscription fan-out, per-direction delivery, stale-entry tolerance after
// unadvertisement, and re-advertisement pulling subscriptions back.
#include <gtest/gtest.h>

#include "broker/broker.h"
#include "pubsub/workload.h"
#include "test_util.h"

namespace tmps {
namespace {

using testing::SyncNet;

Subscription sub(ClientId c, Filter f) { return {{c, 1}, std::move(f)}; }
Advertisement adv(ClientId c, Filter f) { return {{c, 1}, std::move(f)}; }

BrokerConfig plain_routing() {
  // Covering off: these tests pin down the pure advertisement-based routing
  // semantics; covering interactions are tested in covering_test.cc and
  // covering_soak_test.cc.
  BrokerConfig bc;
  bc.subscription_covering = false;
  bc.advertisement_covering = false;
  return bc;
}

class MultiAdvertiser : public ::testing::Test {
 protected:
  // Star with centre 1 and leaves 2..5.
  MultiAdvertiser() : overlay_(Overlay::star(5)), net_(overlay_, plain_routing()) {
    for (BrokerId b = 1; b <= 5; ++b) {
      net_.broker(b).set_notify_sink(
          [this, b](ClientId c, const Publication& p) {
            deliveries_.push_back({b, c, p.id()});
          });
    }
  }
  struct Delivery {
    BrokerId broker;
    ClientId client;
    PublicationId pub;
  };
  int count(ClientId c, PublicationId id) const {
    int n = 0;
    for (const auto& d : deliveries_) {
      if (d.client == c && d.pub == id) ++n;
    }
    return n;
  }

  Overlay overlay_;
  SyncNet net_;
  std::vector<Delivery> deliveries_;
};

TEST_F(MultiAdvertiser, SubscriptionFansTowardsEveryAdvertiser) {
  // Advertisers at leaves 2 and 3; subscriber at leaf 4.
  net_.run(2, [&](Broker& b) {
    return b.client_advertise(102, adv(102, full_space_advertisement()));
  });
  net_.run(3, [&](Broker& b) {
    return b.client_advertise(103, adv(103, full_space_advertisement()));
  });
  net_.run(4, [&](Broker& b) {
    return b.client_subscribe(204,
                              sub(204, workload_filter(WorkloadKind::Covered,
                                                       1)));
  });
  // The subscription sits at 4, at the hub (lasthop 4), and at both
  // advertiser leaves.
  EXPECT_NE(net_.broker(2).tables().find_sub({204, 1}), nullptr);
  EXPECT_NE(net_.broker(3).tables().find_sub({204, 1}), nullptr);
  EXPECT_EQ(net_.broker(5).tables().find_sub({204, 1}), nullptr)
      << "no advertiser beyond leaf 5";

  // Publications from both advertisers arrive exactly once each.
  net_.run(2, [&](Broker& b) {
    return b.client_publish(102, make_publication({102, 2}, 100, 0));
  });
  net_.run(3, [&](Broker& b) {
    return b.client_publish(103, make_publication({103, 2}, 200, 0));
  });
  EXPECT_EQ(count(204, {102, 2}), 1);
  EXPECT_EQ(count(204, {103, 2}), 1);
}

TEST_F(MultiAdvertiser, UnadvertiseLeavesOtherDirectionWorking) {
  net_.run(2, [&](Broker& b) {
    return b.client_advertise(102, adv(102, full_space_advertisement()));
  });
  net_.run(3, [&](Broker& b) {
    return b.client_advertise(103, adv(103, full_space_advertisement()));
  });
  net_.run(4, [&](Broker& b) {
    return b.client_subscribe(204,
                              sub(204, workload_filter(WorkloadKind::Covered,
                                                       1)));
  });
  net_.run(2, [&](Broker& b) { return b.client_unadvertise(102, {102, 1}); });
  // Advertiser 3 still delivers.
  net_.run(3, [&](Broker& b) {
    return b.client_publish(103, make_publication({103, 9}, 100, 0));
  });
  EXPECT_EQ(count(204, {103, 9}), 1);
}

TEST_F(MultiAdvertiser, ReadvertiseAfterUnadvertisePullsSubscriptionAgain) {
  net_.run(2, [&](Broker& b) {
    return b.client_advertise(102, adv(102, full_space_advertisement()));
  });
  net_.run(4, [&](Broker& b) {
    return b.client_subscribe(204,
                              sub(204, workload_filter(WorkloadKind::Covered,
                                                       1)));
  });
  net_.run(2, [&](Broker& b) { return b.client_unadvertise(102, {102, 1}); });
  // A new advertisement (fresh id) from leaf 5 pulls the subscription there.
  net_.run(5, [&](Broker& b) {
    return b.client_advertise(105, adv(105, full_space_advertisement()));
  });
  EXPECT_NE(net_.broker(5).tables().find_sub({204, 1}), nullptr);
  net_.run(5, [&](Broker& b) {
    return b.client_publish(105, make_publication({105, 1}, 100, 0));
  });
  EXPECT_EQ(count(204, {105, 1}), 1);
}

TEST_F(MultiAdvertiser, PartialSpaceAdvertisersSplitTheSubscription) {
  // Advertiser 2 covers x in [0,4000], advertiser 3 covers [6000,10000];
  // a subscriber to [0,10000] reaches both, a subscriber to [0,1000] only 2.
  Filter low = Filter::build()
                   .attr("class").eq("STOCK")
                   .attr("g").ge(0).le(10)
                   .attr("x").ge(0).le(4000);
  Filter high = Filter::build()
                    .attr("class").eq("STOCK")
                    .attr("g").ge(0).le(10)
                    .attr("x").ge(6000).le(10000);
  net_.run(2, [&](Broker& b) { return b.client_advertise(102, adv(102, low)); });
  net_.run(3, [&](Broker& b) {
    return b.client_advertise(103, adv(103, high));
  });

  net_.run(4, [&](Broker& b) {
    return b.client_subscribe(204,
                              sub(204, workload_filter(WorkloadKind::Covered,
                                                       1)));  // full space
  });
  Filter narrow = Filter::build()
                      .attr("class").eq("STOCK")
                      .attr("g").eq(0)
                      .attr("x").ge(0).le(1000);
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(205, sub(205, narrow));
  });

  EXPECT_NE(net_.broker(2).tables().find_sub({204, 1}), nullptr);
  EXPECT_NE(net_.broker(3).tables().find_sub({204, 1}), nullptr);
  EXPECT_NE(net_.broker(2).tables().find_sub({205, 1}), nullptr);
  EXPECT_EQ(net_.broker(3).tables().find_sub({205, 1}), nullptr)
      << "narrow subscription must not reach the non-overlapping advertiser";
}

TEST_F(MultiAdvertiser, AdvertiserAndSubscriberSwapRolesCleanly) {
  // One client both advertises and subscribes; another at a different leaf
  // does the same; both receive each other's publications but not their own.
  const Filter space = full_space_advertisement();
  const Filter all = workload_filter(WorkloadKind::Covered, 1);
  net_.run(2, [&](Broker& b) {
    auto out = b.client_advertise(102, adv(102, space));
    for (auto& o : b.client_subscribe(102, sub(102, all))) {
      out.push_back(std::move(o));
    }
    return out;
  });
  net_.run(3, [&](Broker& b) {
    auto out = b.client_advertise(103, adv(103, space));
    for (auto& o : b.client_subscribe(103, sub(103, all))) {
      out.push_back(std::move(o));
    }
    return out;
  });
  net_.run(2, [&](Broker& b) {
    return b.client_publish(102, make_publication({102, 5}, 100, 0));
  });
  net_.run(3, [&](Broker& b) {
    return b.client_publish(103, make_publication({103, 5}, 100, 0));
  });
  EXPECT_EQ(count(103, {102, 5}), 1);
  EXPECT_EQ(count(102, {103, 5}), 1);
  EXPECT_EQ(count(102, {102, 5}), 0) << "no self-delivery (same origin hop)";
  EXPECT_EQ(count(103, {103, 5}), 0);
}

}  // namespace
}  // namespace tmps
