#include "routing/overlay.h"

#include <gtest/gtest.h>

#include <set>

namespace tmps {
namespace {

TEST(Overlay, PaperDefaultShape) {
  const Overlay o = Overlay::paper_default();
  EXPECT_EQ(o.broker_count(), 14u);
  EXPECT_EQ(o.edges().size(), 13u);
  // The two movement pairs of Fig. 8 share the spine.
  const auto p1 = o.path(1, 13);
  const auto p2 = o.path(2, 14);
  EXPECT_EQ(p1.size(), p2.size());
  EXPECT_EQ(p1.front(), 1u);
  EXPECT_EQ(p1.back(), 13u);
  std::set<BrokerId> s1(p1.begin(), p1.end()), s2(p2.begin(), p2.end());
  std::set<BrokerId> shared;
  for (BrokerId b : s1) {
    if (s2.contains(b)) shared.insert(b);
  }
  EXPECT_GE(shared.size(), 3u) << "pairs must share the spine";
}

TEST(Overlay, NextHopWalksThePath) {
  const Overlay o = Overlay::paper_default();
  BrokerId at = 1;
  const auto path = o.path(1, 13);
  for (std::size_t i = 1; i < path.size(); ++i) {
    at = o.next_hop(at, 13);
    EXPECT_EQ(at, path[i]);
  }
  EXPECT_EQ(at, 13u);
}

TEST(Overlay, PathIsSymmetric) {
  const Overlay o = Overlay::paper_default();
  auto fwd = o.path(2, 11);
  auto bwd = o.path(11, 2);
  std::reverse(bwd.begin(), bwd.end());
  EXPECT_EQ(fwd, bwd);
}

TEST(Overlay, DistanceMatchesPathLength) {
  const Overlay o = Overlay::paper_default();
  for (BrokerId a = 1; a <= 14; ++a) {
    for (BrokerId b = 1; b <= 14; ++b) {
      if (a == b) continue;
      EXPECT_EQ(o.distance(a, b), o.path(a, b).size() - 1);
    }
  }
}

TEST(Overlay, NeighborsAreMutual) {
  const Overlay o = Overlay::paper_default();
  for (BrokerId a = 1; a <= 14; ++a) {
    for (BrokerId b : o.neighbors(a)) {
      EXPECT_TRUE(o.are_neighbors(b, a));
    }
  }
}

TEST(Overlay, RejectsNonTrees) {
  // Too few edges (disconnected).
  EXPECT_THROW(Overlay(3, {{1, 2}}), std::invalid_argument);
  // A cycle with n-1 edges must be disconnected elsewhere.
  EXPECT_THROW(Overlay(4, {{1, 2}, {2, 1}, {3, 4}}), std::invalid_argument);
  // Out-of-range endpoint.
  EXPECT_THROW(Overlay(2, {{1, 5}}), std::invalid_argument);
  // Self-loop.
  EXPECT_THROW(Overlay(2, {{1, 1}}), std::invalid_argument);
}

TEST(Overlay, Fig13FamilyKeepsPathLengthsConstant) {
  std::uint32_t d_1_12 = 0, d_2_14 = 0;
  for (std::uint32_t n = 14; n <= 26; n += 2) {
    const Overlay o = Overlay::fig13_topology(n);
    EXPECT_EQ(o.broker_count(), n);
    if (n == 14) {
      d_1_12 = o.distance(1, 12);
      d_2_14 = o.distance(2, 14);
    } else {
      EXPECT_EQ(o.distance(1, 12), d_1_12) << n;
      EXPECT_EQ(o.distance(2, 14), d_2_14) << n;
    }
  }
  EXPECT_THROW(Overlay::fig13_topology(12), std::invalid_argument);
}

TEST(Overlay, RandomTreeIsValidAndSeedStable) {
  for (std::uint64_t seed : {1ull, 2ull, 99ull}) {
    const Overlay a = Overlay::random_tree(20, seed);
    const Overlay b = Overlay::random_tree(20, seed);
    EXPECT_EQ(a.edges(), b.edges());
    // Connectivity: constructor validates; also spot-check a path.
    EXPECT_FALSE(a.path(1, 20).empty());
  }
  EXPECT_NE(Overlay::random_tree(20, 1).edges(),
            Overlay::random_tree(20, 2).edges());
}

TEST(Overlay, ChainAndStar) {
  const Overlay c = Overlay::chain(5);
  EXPECT_EQ(c.distance(1, 5), 4u);
  const Overlay s = Overlay::star(5);
  EXPECT_EQ(s.distance(2, 5), 2u);
  EXPECT_EQ(s.next_hop(2, 5), 1u);
}

TEST(Overlay, SingleBroker) {
  const Overlay o(1, {});
  EXPECT_EQ(o.broker_count(), 1u);
  EXPECT_TRUE(o.neighbors(1).empty());
}

}  // namespace
}  // namespace tmps
