// At-least-once link delivery: every protocol handler must be idempotent,
// so duplicated frames (retransmissions) never violate the guarantees.
#include <gtest/gtest.h>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;
constexpr ClientId kPublisher = 600;

struct Rig {
  explicit Rig(double dup_prob, MobilityProtocol proto, std::uint64_t seed)
      : overlay(Overlay::chain(5)),
        net(overlay,
            [&] {
              BrokerConfig bc;
              bc.subscription_covering =
                  proto == MobilityProtocol::Traditional;
              bc.advertisement_covering = bc.subscription_covering;
              return bc;
            }(),
            [&] {
              NetworkProfile p;
              p.duplicate_prob = dup_prob;
              p.seed = seed;
              return p;
            }()) {
    MobilityConfig mc;
    mc.protocol = proto;
    for (BrokerId b = 1; b <= 5; ++b) {
      engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net, mc));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
      engines.back()->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            ++delivered[{c, p.id()}];
          });
    }
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kPublisher);
      e.advertise(kPublisher, full_space_advertisement(), out);
    });
    run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kMover);
      e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2), out);
    });
  }

  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
    net.run();
  }

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::map<std::pair<ClientId, PublicationId>, int> delivered;
};

class Duplication : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Duplication, ReconfigMoveSurvivesDuplicatedFrames) {
  Rig r(0.3, MobilityProtocol::Reconfiguration, GetParam());
  TxnId txn = kNoTxn;
  r.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 5, out);
  });
  EXPECT_EQ(r.engines[1]->source_state(txn), SourceCoordState::Commit);
  ASSERT_NE(r.engines[4]->find_client(kMover), nullptr);
  EXPECT_EQ(r.engines[4]->find_client(kMover)->state(), ClientState::Started);
  // One live copy, no shadow residue.
  int copies = 0;
  for (auto& e : r.engines) {
    if (e->find_client(kMover)) ++copies;
  }
  EXPECT_EQ(copies, 1);
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_FALSE(r.net.broker(b).tables().has_pending_shadows()) << b;
  }
  // Exactly-once delivery still holds after the move.
  const Publication p = make_publication({kPublisher, 7}, 100, 0);
  r.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  EXPECT_EQ((r.delivered[{kMover, p.id()}]), 1);
}

TEST_P(Duplication, TraditionalMoveSurvivesDuplicatedFrames) {
  Rig r(0.3, MobilityProtocol::Traditional, GetParam());
  r.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.initiate_move(kMover, 5, out);
  });
  int copies = 0;
  for (auto& e : r.engines) {
    const ClientStub* stub = e->find_client(kMover);
    if (stub) {
      ++copies;
      EXPECT_EQ(stub->state(), ClientState::Started);
    }
  }
  EXPECT_EQ(copies, 1);
  // No duplicate deliveries even with duplicated publish frames.
  const Publication p = make_publication({kPublisher, 7}, 100, 0);
  r.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  EXPECT_LE((r.delivered[{kMover, p.id()}]), 1);
}

TEST_P(Duplication, RepeatedMovesUnderDuplication) {
  Rig r(0.25, MobilityProtocol::Reconfiguration, GetParam());
  for (int round = 0; round < 4; ++round) {
    const BrokerId from = (round % 2 == 0) ? 2 : 5;
    const BrokerId to = (round % 2 == 0) ? 5 : 2;
    TxnId txn = kNoTxn;
    r.run_op(from, [&](MobilityEngine& e, Broker::Outputs& out) {
      txn = e.initiate_move(kMover, to, out);
    });
    ASSERT_NE(txn, kNoTxn) << round;
    const Publication p =
        make_publication({kPublisher, static_cast<std::uint32_t>(50 + round)},
                         100, 0);
    r.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(kPublisher, Publication(p), out);
    });
    EXPECT_EQ((r.delivered[{kMover, p.id()}]), 1) << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Duplication,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace tmps
