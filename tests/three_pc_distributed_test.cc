// Three-phase commit driven through the discrete-event scheduler with
// message delays, timeout-driven termination and crash windows: across
// randomized runs every participant that decides must decide the same way,
// and with the non-blocking timeouts everyone eventually decides.
#include <gtest/gtest.h>

#include <random>

#include "sim/event_queue.h"
#include "txn/three_pc.h"

namespace tmps {
namespace {

struct DistributedRun {
  explicit DistributedRun(int n, std::uint64_t seed)
      : rng(seed), delay(0.001, 0.05) {
    std::vector<int> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i);
    coord = std::make_unique<TpcCoordinator>(
        1, ids,
        [this](int to, const TpcMsg& m) {
          if (coord_crashed) return;
          events.schedule_in(delay(rng), [this, to, m] {
            if (!part_crashed[to]) parts[to]->on_message(m);
          });
        });
    for (int i = 0; i < n; ++i) {
      part_crashed.push_back(false);
      parts.push_back(std::make_unique<TpcParticipant>(
          i,
          [this](const TpcMsg& m) {
            events.schedule_in(delay(rng), [this, m] {
              if (!coord_crashed) coord->on_message(m);
            });
          },
          [](TxnId) { return true; }));
    }
  }

  /// Drives timeouts: every 0.5 s of simulated time, fire the timeout hook
  /// of every live party until everyone has decided.
  void drive_timeouts(double horizon) {
    for (double t = 0.5; t < horizon; t += 0.5) {
      events.schedule_at(t, [this] {
        if (!coord_crashed) coord->on_timeout();
        for (std::size_t i = 0; i < parts.size(); ++i) {
          if (!part_crashed[i]) parts[i]->on_timeout();
        }
      });
    }
  }

  EventQueue events;
  std::mt19937_64 rng;
  std::uniform_real_distribution<double> delay;
  std::unique_ptr<TpcCoordinator> coord;
  std::vector<std::unique_ptr<TpcParticipant>> parts;
  std::vector<bool> part_crashed;
  bool coord_crashed = false;
};

class ThreePcDistributed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreePcDistributed, FailureFreeRunsCommitUnanimously) {
  DistributedRun run(4, GetParam());
  run.coord->start();
  run.events.run();
  EXPECT_EQ(run.coord->decision(), TpcDecision::Commit);
  for (auto& p : run.parts) {
    EXPECT_EQ(p->decision(), TpcDecision::Commit);
  }
}

TEST_P(ThreePcDistributed, ParticipantCrashBeforeVoteAbortsConsistently) {
  DistributedRun run(4, GetParam());
  // Participant 2 is dead from the start: its vote never arrives, the
  // coordinator times out in Waiting and aborts; the rest follow (directly
  // or via their own Ready-timeout).
  run.part_crashed[2] = true;
  run.drive_timeouts(10.0);
  run.coord->start();
  run.events.run();
  EXPECT_EQ(run.coord->decision(), TpcDecision::Abort);
  for (std::size_t i = 0; i < run.parts.size(); ++i) {
    if (run.part_crashed[i]) continue;
    EXPECT_EQ(run.parts[i]->decision(), TpcDecision::Abort) << i;
  }
}

TEST_P(ThreePcDistributed, CoordinatorCrashAfterPreCommitStillCommits) {
  DistributedRun run(3, GetParam());
  // Let the protocol reach PreCommit, then kill the coordinator: the
  // participants have seen preCommit and their timeouts must drive them to
  // commit (3PC's non-blocking property).
  run.coord->start();
  // Deliver events until every participant is at least Ready or
  // PreCommitted, then crash the coordinator at a random point after its
  // own PreCommit transition.
  while (run.events.step()) {
    if (run.coord->state() == TpcCoordState::PreCommit) {
      run.coord_crashed = true;
      break;
    }
  }
  ASSERT_TRUE(run.coord_crashed) << "run never reached PreCommit";
  run.drive_timeouts(10.0);
  run.events.run();
  for (auto& p : run.parts) {
    // Participants in PreCommitted commit; any still Ready (preCommit lost
    // with the crash) abort — but 3PC guarantees this split cannot happen:
    // preCommit was sent to everyone before the crash.
    EXPECT_EQ(p->decision(), TpcDecision::Commit)
        << to_string(p->state());
  }
}

TEST_P(ThreePcDistributed, AllDecisionsAgreeUnderRandomSingleCrash) {
  // Crash one random party at a random simulated time; whatever happens,
  // no two live parties may decide differently.
  DistributedRun run(4, GetParam());
  std::uniform_real_distribution<double> when(0.0, 0.2);
  std::uniform_int_distribution<int> who(-1, 3);  // -1 = coordinator
  const int victim = who(run.rng);
  run.events.schedule_at(when(run.rng), [&run, victim] {
    if (victim < 0) {
      run.coord_crashed = true;
    } else {
      run.part_crashed[victim] = true;
    }
  });
  run.drive_timeouts(10.0);
  run.coord->start();
  run.events.run();

  std::optional<TpcDecision> agreed;
  if (!run.coord_crashed && run.coord->decision()) {
    agreed = run.coord->decision();
  }
  for (std::size_t i = 0; i < run.parts.size(); ++i) {
    if (run.part_crashed[i]) continue;
    const auto d = run.parts[i]->decision();
    ASSERT_TRUE(d.has_value()) << "live participant " << i << " undecided";
    if (!agreed) agreed = d;
    EXPECT_EQ(*d, *agreed) << "participant " << i << " disagrees";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreePcDistributed,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace tmps
