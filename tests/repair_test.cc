// Anti-entropy repair loop (src/repair): each corrective-op class is
// demonstrated by surgically corrupting live routing state mid-run and
// asserting the sweeps heal it — orphaned client entries are retracted,
// digest exchange re-issues lost forwards, quench reconciliation restores
// missing forwarded_to links — plus the negative control showing the same
// corruption persists with repair disabled.
#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.h"
#include "repair/repair_admin.h"
#include "repair/scenario_repair.h"

namespace tmps {
namespace {

// Small stationary population: subscribers at brokers 1/2, publishers
// advertising the full space at the leaves. No movements — every suspect the
// sweeps find is one we planted.
ScenarioConfig stationary() {
  ScenarioConfig cfg;
  cfg.mobility.protocol = MobilityProtocol::Reconfiguration;
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  cfg.workload = WorkloadKind::Covered;
  cfg.total_clients = 20;
  cfg.moving_clients = 0;
  cfg.duration = 40.0;
  cfg.warmup = 10.0;
  cfg.publish_interval = 2.0;
  cfg.seed = 7;
  cfg.broker.repair.enabled = true;
  cfg.broker.repair.sweep_interval = 0.5;
  cfg.broker.repair.stale_after = 2.0;
  cfg.broker.repair.confirm_rounds = 2;
  return cfg;
}

TEST(Repair, OrphanedClientEntryIsRetracted) {
  ScenarioConfig cfg = stationary();
  auto repair = repair::install_repair(cfg);
  const SubscriptionId orphan_id{9999, 1};
  cfg.post_build = [&](SimNetwork& net) {
    net.events().schedule_at(15.0, [&net, orphan_id] {
      // A subscription whose lasthop claims a locally attached client that
      // no engine hosts: the residue of a crash-interrupted hand-off.
      Subscription orphan{orphan_id, workload_filter(WorkloadKind::Covered, 1)};
      net.broker(4).tables().apply(
          RoutingMutation::add_sub(orphan, Hop::of_client(9999)));
    });
  };
  Scenario s(cfg);
  s.run();

  EXPECT_EQ(s.net().broker(4).tables().find_sub(orphan_id), nullptr);
  ASSERT_NE(repair->engine_of(4), nullptr);
  EXPECT_GE(repair->engine_of(4)->stats().orphans_retracted, 1u);
}

TEST(Repair, DisabledRepairLeavesOrphan) {
  ScenarioConfig cfg = stationary();
  cfg.broker.repair.enabled = false;
  auto repair = repair::install_repair(cfg);
  const SubscriptionId orphan_id{9999, 1};
  cfg.post_build = [&](SimNetwork& net) {
    net.events().schedule_at(15.0, [&net, orphan_id] {
      Subscription orphan{orphan_id, workload_filter(WorkloadKind::Covered, 1)};
      net.broker(4).tables().apply(
          RoutingMutation::add_sub(orphan, Hop::of_client(9999)));
    });
  };
  Scenario s(cfg);
  s.run();

  EXPECT_NE(s.net().broker(4).tables().find_sub(orphan_id), nullptr);
  EXPECT_TRUE(repair->engines.empty());
}

TEST(Repair, DigestExchangeReissuesLostForward) {
  ScenarioConfig cfg = stationary();
  auto repair = repair::install_repair(cfg);
  SubscriptionId lost{};
  bool corrupted = false;
  cfg.post_build = [&](SimNetwork& net) {
    net.events().schedule_at(15.0, [&net, &lost, &corrupted] {
      // Broker 8 forwards subscriber state (homed at 1/2) towards the
      // publishers behind 9; erase one such entry at 9 as if the forward
      // had been lost, leaving 8's forwarded_to claim dangling.
      RoutingTables& rt = net.broker(9).tables();
      for (const auto& [id, e] : rt.prt()) {
        if (e.lasthop != Hop::of_broker(8)) continue;
        lost = id;
        rt.apply(RoutingMutation::remove_sub(id, e.lasthop));
        corrupted = true;
        break;
      }
    });
  };
  Scenario s(cfg);
  s.run();

  ASSERT_TRUE(corrupted) << "no forwarded entry found to corrupt";
  EXPECT_NE(s.net().broker(9).tables().find_sub(lost), nullptr)
      << "digest/request/reissue should reinstall the lost entry";
  ASSERT_NE(repair->engine_of(9), nullptr);
  EXPECT_GE(repair->engine_of(9)->stats().reissues_requested, 1u);
  ASSERT_NE(repair->engine_of(8), nullptr);
  EXPECT_GE(repair->engine_of(8)->stats().reissues_served, 1u);
}

TEST(Repair, QuenchReconcileRestoresMissingForward) {
  ScenarioConfig cfg = stationary();
  auto repair = repair::install_repair(cfg);
  SubscriptionId quenched{};
  bool corrupted = false;
  cfg.post_build = [&](SimNetwork& net) {
    net.events().schedule_at(15.0, [&net, &quenched, &corrupted] {
      // Forget that a subscription was forwarded towards the advertisers
      // behind 9 — quench drift: the SRT still says the link is needed.
      RoutingTables& rt = net.broker(8).tables();
      for (auto& [id, e] : rt.prt()) {
        if (!e.forwarded_to.contains(Hop::of_broker(9))) continue;
        e.forwarded_to.erase(Hop::of_broker(9));
        quenched = id;
        corrupted = true;
        break;
      }
    });
  };
  Scenario s(cfg);
  s.run();

  ASSERT_TRUE(corrupted) << "no forwarded entry found to corrupt";
  const SubEntry* e = s.net().broker(8).tables().find_sub(quenched);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->forwarded_to.contains(Hop::of_broker(9)));
  ASSERT_NE(repair->engine_of(8), nullptr);
  EXPECT_GE(repair->engine_of(8)->stats().unquenches, 1u);
}

TEST(Repair, AdminJsonExposesActivity) {
  ScenarioConfig cfg = stationary();
  auto repair = repair::install_repair(cfg);
  Scenario s(cfg);
  s.run();

  repair::RepairEngine* e = repair->engine_of(1);
  ASSERT_NE(e, nullptr);
  EXPECT_GT(e->stats().rounds, 0u);
  const std::string json = repair::repair_json(*e);
  EXPECT_NE(json.find("\"broker\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rounds\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ops_total\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"suspect_shadows\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace tmps
