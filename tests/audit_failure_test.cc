// Failure injection against the movement-invariant auditor: targeted
// unmasked message faults (outside the paper's delay-only fault model) must
// surface as attributed invariant violations — the auditor is the detector
// of record, so each violation class is demonstrated end-to-end.
#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.h"
#include "failure/failure_injector.h"
#include "obs/trace.h"

namespace tmps {
namespace {

// Violation attribution joins fault hits against movement windows
// reconstructed from tracer spans, which -DTMPS_TRACING=OFF removes.
#if TMPS_TRACING_ENABLED
#define TMPS_REQUIRE_TRACING()
#else
#define TMPS_REQUIRE_TRACING() \
  GTEST_SKIP() << "instrumentation sites compiled out (TMPS_TRACING=OFF)"
#endif

using obs::InvariantKind;

ScenarioConfig small(MobilityProtocol proto) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = proto;
  cfg.broker.subscription_covering = proto == MobilityProtocol::Traditional;
  cfg.broker.advertisement_covering = proto == MobilityProtocol::Traditional;
  cfg.workload = WorkloadKind::Covered;
  cfg.total_clients = 40;
  cfg.duration = 60.0;
  cfg.warmup = 20.0;
  cfg.pause_between_moves = 5.0;
  cfg.publish_interval = 2.0;
  cfg.seed = 11;
  cfg.audit = true;
  return cfg;
}

const obs::InvariantViolation* find_kind(const obs::AuditReport& r,
                                         InvariantKind kind) {
  for (const auto& v : r.violations) {
    if (v.kind == kind) return &v;
  }
  return nullptr;
}

// Violation class 1: orphaned routing state. Dropping one "move-state"
// message stalls the three-phase commit mid-path: brokers past the drop
// point keep their shadow entries forever, and the movement span never
// closes. The auditor must attribute both to the stalled transaction.
TEST(AuditFailure, DroppedStateMessageLeavesAttributedOrphans) {
  TMPS_REQUIRE_TRACING();
  ScenarioConfig cfg = small(MobilityProtocol::Reconfiguration);
  std::unique_ptr<FailureInjector> inj;
  cfg.post_build = [&](SimNetwork& net) {
    inj = std::make_unique<FailureInjector>(net, FailurePlan{});
    MessageFault f;
    f.action = MessageFault::Action::Drop;
    f.type = "move-state";
    f.after = 25.0;
    f.count = 1;
    inj->arm(f);
  };
  Scenario s(cfg);
  s.run();

  ASSERT_EQ(inj->fault_hits().size(), 1u);
  const TxnId txn = inj->fault_hits()[0].cause;
  ASSERT_NE(txn, kNoTxn);

  const obs::AuditReport& report = s.audit_report();
  EXPECT_FALSE(report.clean());

  bool orphan_attributed = false, quiescence_attributed = false;
  for (const auto& v : report.violations) {
    if (v.kind == InvariantKind::OrphanState && v.txn == txn) {
      orphan_attributed = true;
      EXPECT_NE(v.broker, 0u);
    }
    if (v.kind == InvariantKind::Quiescence && v.txn == txn) {
      quiescence_attributed = true;
    }
  }
  EXPECT_TRUE(orphan_attributed) << report.summary();
  EXPECT_TRUE(quiescence_attributed) << report.summary();
}

// Violation class 2: lost delivery. Dropping publications on the link into
// broker 1 starves the subscribers hosted there; the reconfiguration
// protocol promises exactly-once to movers, so the auditor must flag the
// losses against the nearest movement window of the starved client.
TEST(AuditFailure, DroppedPublicationsAreAttributedAsLostDeliveries) {
  TMPS_REQUIRE_TRACING();
  ScenarioConfig cfg = small(MobilityProtocol::Reconfiguration);
  std::unique_ptr<FailureInjector> inj;
  cfg.post_build = [&](SimNetwork& net) {
    inj = std::make_unique<FailureInjector>(net, FailurePlan{});
    MessageFault f;
    f.action = MessageFault::Action::Drop;
    f.type = "pub";
    f.to = 1;
    f.after = 30.0;
    f.count = -1;  // every publication entering broker 1 from t=30 on
    inj->arm(f);
  };
  Scenario s(cfg);
  s.run();

  ASSERT_FALSE(inj->fault_hits().empty());
  const obs::AuditReport& report = s.audit_report();
  const auto* v = find_kind(report, InvariantKind::LostDelivery);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_GE(v->client, 1000u);  // a subscriber
  EXPECT_NE(v->txn, kNoTxn);   // pinned to one of the client's movements
}

// Violation class 3: duplicate delivery. Under the traditional protocol a
// move re-subscribes with a fresh incarnation, so a late duplicate of a
// publication the client already received before moving slips past the new
// stub's de-duplication — exactly the hand-off hazard of Sec. 2.
TEST(AuditFailure, LateDuplicateAcrossIncarnationsIsFlagged) {
  TMPS_REQUIRE_TRACING();
  ScenarioConfig cfg = small(MobilityProtocol::Traditional);
  std::unique_ptr<FailureInjector> inj;
  cfg.post_build = [&](SimNetwork& net) {
    inj = std::make_unique<FailureInjector>(net, FailurePlan{});
    MessageFault f;
    f.action = MessageFault::Action::Duplicate;
    f.type = "pub";
    f.to = 1;
    f.after = 25.0;
    f.count = -1;
    f.delay = 6.5;  // longer than the 5 s pause: the mover has moved on
    inj->arm(f);
  };
  Scenario s(cfg);
  s.run();

  ASSERT_FALSE(inj->fault_hits().empty());
  const obs::AuditReport& report = s.audit_report();
  const auto* v = find_kind(report, InvariantKind::DuplicateDelivery);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_GE(v->client, 1000u);
}

// Masked failures (the paper's fault model: crash = pause + retransmit) are
// absorbed by the protocol — the auditor must stay silent.
TEST(AuditFailure, MaskedBrokerCrashKeepsAuditGreen) {
  ScenarioConfig cfg = small(MobilityProtocol::Reconfiguration);
  std::unique_ptr<FailureInjector> inj;
  cfg.post_build = [&](SimNetwork& net) {
    inj = std::make_unique<FailureInjector>(net, FailurePlan{});
    inj->crash_broker_at(3, 30.0, 2.0);
  };
  Scenario s(cfg);
  s.run();
  EXPECT_TRUE(s.audit_report().clean()) << s.audit_report().summary();
}

}  // namespace
}  // namespace tmps
