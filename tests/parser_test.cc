#include "pubsub/parser.h"

#include <gtest/gtest.h>

#include <random>

#include "pubsub/workload.h"

namespace tmps {
namespace {

Filter must_parse(std::string_view text) {
  auto r = parse_filter(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.error;
  return r.value.value_or(Filter{});
}

TEST(ParseFilter, BasicSubscription) {
  const Filter f =
      must_parse("[class,eq,'STOCK'],[price,>,100],[volume,<=,5000]");
  EXPECT_EQ(f.predicates().size(), 3u);
  Publication hit({1, 1}, {{"class", "STOCK"},
                           {"price", std::int64_t{150}},
                           {"volume", std::int64_t{100}}});
  Publication miss({1, 2}, {{"class", "STOCK"},
                            {"price", std::int64_t{50}},
                            {"volume", std::int64_t{100}}});
  EXPECT_TRUE(f.matches(hit));
  EXPECT_FALSE(f.matches(miss));
}

TEST(ParseFilter, NamedAndSymbolicOperatorsEquivalent) {
  const Filter sym = must_parse("[x,>=,5],[x,<,10],[y,!=,3]");
  const Filter named = must_parse("[x,ge,5],[x,lt,10],[y,neq,3]");
  EXPECT_TRUE(sym.covers(named));
  EXPECT_TRUE(named.covers(sym));
}

TEST(ParseFilter, IsPresentHasNoValue) {
  const Filter f = must_parse("[sym,isPresent],[price,>,0]");
  EXPECT_TRUE(f.matches(Publication{
      {1, 1}, {{"sym", "A"}, {"price", std::int64_t{1}}}}));
  EXPECT_FALSE(f.matches(Publication{{1, 2}, {{"price", std::int64_t{1}}}}));
}

TEST(ParseFilter, QuotedStringsWithEscapes) {
  const Filter f = must_parse("[name,eq,'O''Brien & Co']");
  EXPECT_TRUE(
      f.matches(Publication{{1, 1}, {{"name", "O'Brien & Co"}}}));
}

TEST(ParseFilter, RealsAndScientific) {
  const Filter f = must_parse("[p,>,1.5],[p,<,2.5e2]");
  EXPECT_TRUE(f.matches(Publication{{1, 1}, {{"p", 100.0}}}));
  EXPECT_FALSE(f.matches(Publication{{1, 2}, {{"p", 300.0}}}));
}

TEST(ParseFilter, WhitespaceTolerated) {
  const Filter f = must_parse("  [ class , eq , 'X' ] ,\n [ x , > , 1 ]  ");
  EXPECT_EQ(f.predicates().size(), 2u);
}

TEST(ParseFilter, PrefixOperator) {
  const Filter f = must_parse("[topic,str-prefix,'sports/']");
  EXPECT_TRUE(f.matches(Publication{{1, 1}, {{"topic", "sports/nba"}}}));
  EXPECT_FALSE(f.matches(Publication{{1, 2}, {{"topic", "news/x"}}}));
}

TEST(ParseFilter, Errors) {
  EXPECT_FALSE(parse_filter("").ok());
  EXPECT_FALSE(parse_filter("[x,>,1").ok());           // missing ]
  EXPECT_FALSE(parse_filter("x,>,1]").ok());           // missing [
  EXPECT_FALSE(parse_filter("[x,wat,1]").ok());        // unknown op
  EXPECT_FALSE(parse_filter("[x,>,'unclosed]").ok());  // bad string
  EXPECT_FALSE(parse_filter("[x,>]").ok());            // missing value
  EXPECT_FALSE(parse_filter("[x,>,1][y,<,2]").ok());   // missing comma
  EXPECT_FALSE(parse_filter("[x,>,abc]").ok());        // malformed number
  EXPECT_FALSE(parse_filter("[,>,1]").ok());           // missing attribute
  // Unsatisfiable conjunctions are rejected with a clear message.
  const auto r = parse_filter("[x,>,5],[x,<,3]");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unsatisfiable"), std::string::npos);
}

TEST(ParsePublication, Basic) {
  auto r = parse_publication("[class,'STOCK'],[price,120],[w,1.25]");
  ASSERT_TRUE(r.ok()) << r.error;
  const Publication& p = *r.value;
  EXPECT_EQ(p.find("class")->as_string(), "STOCK");
  EXPECT_EQ(p.find("price")->as_int(), 120);
  EXPECT_DOUBLE_EQ(p.find("w")->as_real(), 1.25);
}

TEST(ParsePublication, Errors) {
  EXPECT_FALSE(parse_publication("").ok());
  EXPECT_FALSE(parse_publication("[x]").ok());
  EXPECT_FALSE(parse_publication("[x,1,2]").ok());
  EXPECT_FALSE(parse_publication("[x,oops]").ok());
}

TEST(ParseRoundTrip, FormatThenParsePreservesSemantics) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> member(1, 10);
  std::uniform_int_distribution<std::int64_t> grp(0, 5);
  for (auto kind : {WorkloadKind::Covered, WorkloadKind::Chained,
                    WorkloadKind::Tree, WorkloadKind::Distinct}) {
    for (int i = 0; i < 10; ++i) {
      const Filter f = workload_filter(kind, member(rng), grp(rng));
      const std::string text = format_filter(f);
      const Filter back = must_parse(text);
      EXPECT_TRUE(f.covers(back) && back.covers(f)) << text;
    }
  }
}

TEST(ParseRoundTrip, PublicationFormatThenParse) {
  const Publication p = make_publication({3, 9}, 1234, 7);
  auto r = parse_publication(format_publication(p));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value->attrs(), p.attrs());
}

TEST(ParseRoundTrip, StringEscapingSurvives) {
  Publication p;
  p.set("s", Value{"it's 'quoted', twice''"});
  auto r = parse_publication(format_publication(p));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value->find("s")->as_string(), "it's 'quoted', twice''");
}

TEST(ParseFuzz, RandomBytesNeverCrash) {
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> len(0, 60);
  const std::string alphabet = "[],'<>=!abcx0129. \t";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  for (int i = 0; i < 3000; ++i) {
    std::string junk;
    const int n = len(rng);
    for (int j = 0; j < n; ++j) junk.push_back(alphabet[pick(rng)]);
    (void)parse_filter(junk);
    (void)parse_publication(junk);
  }
  SUCCEED();
}

}  // namespace
}  // namespace tmps
