// Tests of the metrics registry: log-bucket edge behaviour around the
// 2^-30 anchor and power-of-two boundaries, percentile bounds, registry
// identity (stable references), concurrent increments from several threads,
// and population of the tcp_transport wire metrics over real sockets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log_buckets.h"
#include "obs/metrics.h"
#include "pubsub/workload.h"
#include "transport/tcp_transport.h"

namespace tmps {
namespace {

using obs::bucket_index;
using obs::bucket_lower;
using obs::bucket_upper;
using obs::Histogram;
using obs::kBucketAnchor;
using obs::kNumBuckets;
using obs::kSubBucketsPerOctave;
using obs::MetricsRegistry;

TEST(LogBuckets, AnchorAndBelowLandInBucketZero) {
  EXPECT_EQ(bucket_index(0.0), 0);
  EXPECT_EQ(bucket_index(-1.0), 0);
  EXPECT_EQ(bucket_index(std::nan("")), 0);
  EXPECT_EQ(bucket_index(kBucketAnchor), 0);
  EXPECT_EQ(bucket_index(kBucketAnchor / 2), 0);
  // Just above the anchor starts the grid proper.
  EXPECT_EQ(bucket_index(kBucketAnchor * 1.0001), 0);
  EXPECT_EQ(bucket_index(kBucketAnchor * 1.2), 1);
}

TEST(LogBuckets, PowerOfTwoBoundaries) {
  // Each octave above the anchor spans exactly kSubBucketsPerOctave buckets:
  // 2^-30 * 2^k falls at bucket k * 4 (the left edge of that bucket).
  for (int k = 1; k < 30; ++k) {
    const double v = kBucketAnchor * std::exp2(k);
    const int i = bucket_index(v);
    EXPECT_TRUE(i == k * kSubBucketsPerOctave ||
                i == k * kSubBucketsPerOctave - 1)
        << "v=2^-30 * 2^" << k << " -> bucket " << i;
    // Slightly inside the bucket is unambiguous.
    EXPECT_EQ(bucket_index(v * 1.01), k * kSubBucketsPerOctave);
  }
  // 1.0 = anchor * 2^30 -> bucket 120.
  EXPECT_EQ(bucket_index(1.001), 30 * kSubBucketsPerOctave);
}

TEST(LogBuckets, ValuesBeyondGridClampToLastBucket) {
  EXPECT_EQ(bucket_index(1e300), kNumBuckets - 1);
  EXPECT_LT(bucket_lower(kNumBuckets - 1), bucket_upper(kNumBuckets - 1));
}

TEST(LogBuckets, BoundsNestAndCoverEveryValue) {
  for (int i = 0; i < kNumBuckets; ++i) {
    EXPECT_LT(bucket_lower(i), bucket_upper(i));
    if (i > 0) {
      EXPECT_DOUBLE_EQ(bucket_upper(i - 1), bucket_lower(i));
    }
    // A value strictly inside the bucket maps back to it.
    const double mid = (bucket_lower(i) + bucket_upper(i)) / 2;
    EXPECT_EQ(bucket_index(mid), i) << "bucket " << i;
  }
}

TEST(Histogram, PercentilesBoundedByBucketEdges) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.observe(0.010);  // 10 ms
  h.observe(1.0);
  EXPECT_EQ(h.count(), 101u);
  EXPECT_NEAR(h.sum(), 2.0, 1e-9);
  // p50 must land inside 10ms's bucket (±9% quantization), p99+ may reach
  // into the outlier's bucket but never past its upper edge.
  const int b10 = bucket_index(0.010);
  EXPECT_GE(h.p50(), bucket_lower(b10));
  EXPECT_LE(h.p50(), bucket_upper(b10));
  EXPECT_LE(h.percentile(1.0), bucket_upper(bucket_index(1.0)));
  EXPECT_GE(h.percentile(0.0), 0.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableIdentity) {
  MetricsRegistry mr;
  obs::Counter& a = mr.counter("msgs", {{"broker", "1"}});
  obs::Counter& b = mr.counter("msgs", {{"broker", "1"}});
  obs::Counter& c = mr.counter("msgs", {{"broker", "2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(mr.counter_value("msgs", {{"broker", "1"}}), 3u);
  EXPECT_EQ(mr.counter_value("never-registered"), 0u);
  EXPECT_EQ(mr.size(), 2u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry mr;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mr] {
      // Registration races on the mutex; increments race on the atomics.
      obs::Counter& c = mr.counter("shared_total");
      obs::Gauge& g = mr.gauge("shared_gauge");
      obs::Histogram& h = mr.histogram("shared_hist");
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1.0);
        h.observe(0.001);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mr.counter_value("shared_total"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(mr.gauge("shared_gauge").value(),
                   static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(mr.histogram("shared_hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(LogBuckets, HoistedAnchorLog2MatchesTheRealThing) {
  // kBucketAnchorLog2 replaces a per-observe std::log2(kBucketAnchor); the
  // anchor is a power of two, so the hoisted constant must be bit-exact.
  EXPECT_DOUBLE_EQ(obs::kBucketAnchorLog2, std::log2(kBucketAnchor));
}

TEST(MetricsRegistry, SnapshotAndSamplePercentileMatchLiveObjects) {
  MetricsRegistry mr;
  mr.counter("c_total").inc(9);
  mr.gauge("g").set(-1.5);
  obs::Histogram& h = mr.histogram("h");
  for (int i = 0; i < 50; ++i) h.observe(0.020);
  const std::vector<obs::MetricSample> samples = mr.snapshot();
  ASSERT_EQ(samples.size(), 3u);
  for (const obs::MetricSample& s : samples) {
    if (s.name == "c_total") {
      EXPECT_EQ(s.kind, obs::MetricKind::Counter);
      EXPECT_EQ(s.count, 9u);
    } else if (s.name == "g") {
      EXPECT_EQ(s.kind, obs::MetricKind::Gauge);
      EXPECT_DOUBLE_EQ(s.value, -1.5);
    } else {
      EXPECT_EQ(s.kind, obs::MetricKind::Histogram);
      EXPECT_EQ(s.count, 50u);
      ASSERT_EQ(s.buckets.size(), 1u);
      EXPECT_DOUBLE_EQ(obs::sample_percentile(s, 0.5), h.p50());
      EXPECT_DOUBLE_EQ(obs::sample_percentile(s, 0.99), h.p99());
    }
  }
}

TEST(MetricsRegistry, GoldenPrometheusExposition) {
  MetricsRegistry mr;
  // Registration order deliberately differs from output order: the registry
  // map sorts by name (then labels), which is what groups the # TYPE lines.
  mr.counter("pubs_total").inc(7);
  mr.counter("msgs_total", {{"broker", "2"}}).inc(4);
  mr.counter("msgs_total", {{"broker", "1"}}).inc(3);
  mr.gauge("queue_depth").set(2.5);
  obs::Histogram& h = mr.histogram("lat_seconds", {{"broker", "1"}});
  h.observe(0.125);
  h.observe(0.125);
  h.observe(0.5);

  // The le edges come from the same bucket grid the histogram uses; the
  // golden pins the surrounding exposition structure, not the grid itself.
  const auto le = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", bucket_upper(bucket_index(v)));
    return std::string(buf);
  };
  ASSERT_NE(bucket_index(0.125), bucket_index(0.5));

  const std::string expected =
      "# TYPE lat_seconds histogram\n"
      "lat_seconds_bucket{broker=\"1\",le=\"" + le(0.125) + "\"} 2\n"
      "lat_seconds_bucket{broker=\"1\",le=\"" + le(0.5) + "\"} 3\n"
      "lat_seconds_bucket{broker=\"1\",le=\"+Inf\"} 3\n"
      "lat_seconds_sum{broker=\"1\"} 0.75\n"
      "lat_seconds_count{broker=\"1\"} 3\n"
      "# TYPE msgs_total counter\n"
      "msgs_total{broker=\"1\"} 3\n"
      "msgs_total{broker=\"2\"} 4\n"
      "# TYPE pubs_total counter\n"
      "pubs_total 7\n"
      "# TYPE queue_depth gauge\n"
      "queue_depth 2.5\n";
  std::ostringstream os;
  mr.write_prometheus(os);
  EXPECT_EQ(os.str(), expected);
}

TEST(MetricsRegistry, WriteJsonlEmitsEveryMetric) {
  MetricsRegistry mr;
  mr.counter("c_total", {{"broker", "1"}}).inc(5);
  mr.gauge("g").set(2.5);
  mr.histogram("h").observe(0.25);
  std::ostringstream os;
  mr.write_jsonl(os, "runA");
  const std::string out = os.str();
  EXPECT_NE(out.find("\"metric\":\"c_total\""), std::string::npos);
  EXPECT_NE(out.find("\"broker\":\"1\""), std::string::npos);
  EXPECT_NE(out.find("\"run\":\"runA\""), std::string::npos);
  EXPECT_NE(out.find("\"metric\":\"g\""), std::string::npos);
  EXPECT_NE(out.find("\"metric\":\"h\""), std::string::npos);
}

// --- tcp_transport populates the wire metrics under real concurrency ------

TEST(TcpTransportMetrics, WireCountersPopulate) {
  constexpr ClientId kSubscriber = 500;
  constexpr ClientId kPublisher = 600;
  Overlay overlay = Overlay::chain(3);
  TcpTransport net(overlay);
  ASSERT_TRUE(net.start());
  net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  net.drain();
  net.run_on(3, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kSubscriber);
    e.subscribe(kSubscriber, workload_filter(WorkloadKind::Covered, 2), out);
  });
  net.drain();
  const Publication p = make_publication({kPublisher, 1}, 100, 0);
  net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  net.drain();
  net.stop();

  obs::MetricsRegistry* mr = net.metrics();
  ASSERT_NE(mr, nullptr);
  const std::uint64_t sent = mr->counter_value("tcp_frames_sent_total");
  const std::uint64_t received = mr->counter_value("tcp_frames_received_total");
  EXPECT_GT(sent, 0u);
  EXPECT_GT(received, 0u);
  EXPECT_GT(mr->counter_value("tcp_bytes_sent_total"), sent)
      << "every frame is more than one byte";
  EXPECT_EQ(mr->counter_value("tcp_decode_failures_total"), 0u);
  EXPECT_EQ(mr->counter_value("tcp_send_failures_total"), 0u);
  // The same traffic was counted per broker by the broker-level counters.
  std::uint64_t processed = 0;
  for (BrokerId b = 1; b <= 3; ++b) {
    processed += mr->counter_value("broker_messages_processed_total",
                                   {{"broker", std::to_string(b)}});
  }
  EXPECT_GT(processed, 0u);
}

}  // namespace
}  // namespace tmps
