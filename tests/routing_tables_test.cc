#include "routing/routing_tables.h"

#include <gtest/gtest.h>

#include "pubsub/workload.h"

namespace tmps {
namespace {

Subscription sub(std::uint32_t seq, std::int64_t lo, std::int64_t hi) {
  return {{10, seq},
          Filter::build().attr("class").eq("STOCK").attr("x").ge(lo).le(hi)};
}
Advertisement adv(std::uint32_t seq) {
  return {{20, seq}, full_space_advertisement()};
}

TEST(RoutingTables, UpsertAndFind) {
  RoutingTables rt;
  rt.upsert_sub(sub(1, 0, 100), Hop::of_broker(2));
  EXPECT_EQ(rt.sub_count(), 1u);
  auto* e = rt.find_sub({10, 1});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->lasthop, Hop::of_broker(2));
  // Upsert with a new hop updates in place.
  rt.upsert_sub(sub(1, 0, 100), Hop::of_broker(3));
  EXPECT_EQ(rt.sub_count(), 1u);
  EXPECT_EQ(rt.find_sub({10, 1})->lasthop, Hop::of_broker(3));
  rt.erase_sub({10, 1});
  EXPECT_EQ(rt.find_sub({10, 1}), nullptr);
}

TEST(RoutingTables, MatchDedupsLinks) {
  RoutingTables rt;
  rt.upsert_sub(sub(1, 0, 100), Hop::of_broker(2));
  rt.upsert_sub(sub(2, 0, 50), Hop::of_broker(2));
  rt.upsert_sub(sub(3, 0, 50), Hop::of_broker(4));
  const auto mr = rt.match(Publication{{1, 1}, {{"class", "STOCK"},
                                                {"x", 25}}});
  EXPECT_EQ(mr.links.size(), 2u);
  EXPECT_EQ(mr.matched, 3u);  // every matching entry counted, links deduped
  EXPECT_EQ(mr.version, rt.version());
}

TEST(RoutingTables, MatchSkipsNonMatching) {
  RoutingTables rt;
  rt.upsert_sub(sub(1, 0, 10), Hop::of_broker(2));
  const auto mr = rt.match(Publication{{1, 1}, {{"class", "STOCK"},
                                                {"x", 25}}});
  EXPECT_TRUE(mr.links.empty());
  EXPECT_EQ(mr.matched, 0u);
}

TEST(RoutingTables, ShadowInstallCommit) {
  RoutingTables rt;
  rt.upsert_sub(sub(1, 0, 100), Hop::of_client(10));
  rt.install_sub_shadow(sub(1, 0, 100), Hop::of_broker(5), /*txn=*/77);

  // Both hops are live while the transaction is in flight.
  const auto hops = rt.match(Publication{{1, 1}, {{"class", "STOCK"},
                                                  {"x", 25}}}).links;
  EXPECT_EQ(hops.size(), 2u);
  EXPECT_TRUE(rt.has_pending_shadows());

  rt.commit_shadow({10, 1}, 77);
  auto* e = rt.find_sub({10, 1});
  EXPECT_EQ(e->lasthop, Hop::of_broker(5));
  EXPECT_FALSE(e->shadow_lasthop.has_value());
  EXPECT_FALSE(rt.has_pending_shadows());
}

TEST(RoutingTables, ShadowAbortRestoresOriginal) {
  RoutingTables rt;
  rt.upsert_sub(sub(1, 0, 100), Hop::of_client(10));
  rt.install_sub_shadow(sub(1, 0, 100), Hop::of_broker(5), 77);
  rt.abort_shadow({10, 1}, 77);
  auto* e = rt.find_sub({10, 1});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->lasthop, Hop::of_client(10));
  EXPECT_FALSE(rt.has_pending_shadows());
}

TEST(RoutingTables, ShadowOnlyEntryVanishesOnAbort) {
  RoutingTables rt;
  rt.install_sub_shadow(sub(1, 0, 100), Hop::of_broker(5), 77);
  EXPECT_EQ(rt.sub_count(), 1u);
  EXPECT_TRUE(rt.find_sub({10, 1})->shadow_only);
  rt.abort_shadow({10, 1}, 77);
  EXPECT_EQ(rt.sub_count(), 0u);
}

TEST(RoutingTables, ShadowOnlyEntryBecomesRealOnCommit) {
  RoutingTables rt;
  rt.install_sub_shadow(sub(1, 0, 100), Hop::of_broker(5), 77);
  rt.commit_shadow({10, 1}, 77);
  auto* e = rt.find_sub({10, 1});
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->shadow_only);
  EXPECT_EQ(e->lasthop, Hop::of_broker(5));
}

TEST(RoutingTables, CommitWithWrongTxnIsNoop) {
  RoutingTables rt;
  rt.upsert_sub(sub(1, 0, 100), Hop::of_client(10));
  rt.install_sub_shadow(sub(1, 0, 100), Hop::of_broker(5), 77);
  rt.commit_shadow({10, 1}, 78);  // different transaction
  EXPECT_TRUE(rt.has_pending_shadows());
  rt.abort_shadow({10, 1}, 78);  // also a no-op
  EXPECT_TRUE(rt.has_pending_shadows());
}

TEST(RoutingTables, ShadowOnlyEntryDoesNotRouteViaPrimary) {
  RoutingTables rt;
  rt.install_sub_shadow(sub(1, 0, 100), Hop::of_broker(5), 77);
  const auto mr = rt.match(Publication{{1, 1}, {{"class", "STOCK"},
                                                {"x", 25}}});
  ASSERT_EQ(mr.links.size(), 1u);
  EXPECT_EQ(mr.links[0], Hop::of_broker(5));
  EXPECT_EQ(mr.matched, 1u);  // shadow-only entries still count as matched
}

TEST(RoutingTables, AdvShadowLifecycle) {
  RoutingTables rt;
  rt.upsert_adv(adv(1), Hop::of_client(20));
  rt.install_adv_shadow(adv(1), Hop::of_broker(3), 5);
  EXPECT_TRUE(rt.has_pending_shadows());
  rt.commit_adv_shadow({20, 1}, 5);
  EXPECT_EQ(rt.find_adv({20, 1})->lasthop, Hop::of_broker(3));
  rt.install_adv_shadow(adv(1), Hop::of_broker(4), 6);
  rt.abort_adv_shadow({20, 1}, 6);
  EXPECT_EQ(rt.find_adv({20, 1})->lasthop, Hop::of_broker(3));
}

TEST(RoutingTables, IntersectionQueries) {
  RoutingTables rt;
  rt.upsert_adv(adv(1), Hop::of_broker(2));
  rt.upsert_sub(sub(1, 0, 100), Hop::of_broker(3));
  EXPECT_EQ(rt.intersecting_advs(sub(1, 0, 100).filter).size(), 1u);
  EXPECT_EQ(rt.subs_intersecting(adv(1).filter).size(), 1u);
  Filter narrow = Filter::build().attr("class").eq("BOND");
  EXPECT_TRUE(rt.intersecting_advs(narrow).empty());
}

}  // namespace
}  // namespace tmps
