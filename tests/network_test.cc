// Tests of the queueing-network simulator: delays, FIFO links, congestion,
// cause tracking, failure injection.
#include <gtest/gtest.h>

#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

Message unicast(Broker& from, BrokerId dest) {
  Message m;
  m.id = from.next_message_id();
  m.unicast_dest = dest;
  m.payload = MoveAckMsg{};  // any pure-unicast control payload
  return m;
}

TEST(SimNetwork, DeliveryTakesLinkDelayAndProcessing) {
  Overlay o = Overlay::chain(2);
  SimNetwork net(o);
  // Relay brokers forward unicasts without a control handler; send 1 -> 2.
  net.transmit(1, {{2, unicast(net.broker(1), 2)}});
  net.run();
  // service + delay + processing.
  const auto& p = NetworkProfile::lan();
  EXPECT_NEAR(net.now(), p.link_service + p.link_delay + p.control_proc, 1e-9);
  EXPECT_EQ(net.stats().total_messages(), 1u);
}

TEST(SimNetwork, MultiHopForwarding) {
  Overlay o = Overlay::chain(4);
  SimNetwork net(o);
  net.transmit(1, {{2, unicast(net.broker(1), 4)}});
  net.run();
  // Forwarded hop-by-hop: 3 link transmissions counted.
  EXPECT_EQ(net.stats().total_messages(), 3u);
  const auto& p = NetworkProfile::lan();
  EXPECT_NEAR(net.now(), 3 * (p.link_service + p.link_delay + p.control_proc),
              1e-9);
}

TEST(SimNetwork, LinkQueueingSerializesBursts) {
  Overlay o = Overlay::chain(2);
  NetworkProfile p;
  p.link_service = 0.01;  // slow link to expose queueing
  SimNetwork net(o, {}, p);
  Broker::Outputs burst;
  for (int i = 0; i < 10; ++i) burst.push_back({2, unicast(net.broker(1), 2)});
  net.transmit(1, std::move(burst));
  net.run();
  // The last message waits behind nine service times.
  EXPECT_GE(net.now(), 10 * p.link_service + p.link_delay);
}

TEST(SimNetwork, BrokerProcessingQueues) {
  Overlay o = Overlay::star(3);
  NetworkProfile p;
  p.control_proc = 0.01;
  SimNetwork net(o, {}, p);
  // Two messages arrive at broker 1 from different links at the same time;
  // processing is serialized.
  net.transmit(2, {{1, unicast(net.broker(2), 1)}});
  net.transmit(3, {{1, unicast(net.broker(3), 1)}});
  net.run();
  EXPECT_GE(net.now(), p.link_service + p.link_delay + 2 * p.control_proc);
}

TEST(SimNetwork, CauseTrackingDrains) {
  Overlay o = Overlay::chain(3);
  SimNetwork net(o);
  Message m = unicast(net.broker(1), 3);
  m.cause = 42;
  bool drained = false;
  net.transmit(1, {{2, m}});
  EXPECT_EQ(net.outstanding(42), 1u);
  net.on_cause_drained(42, [&] { drained = true; });
  EXPECT_FALSE(drained);
  net.run();
  EXPECT_TRUE(drained);
  EXPECT_EQ(net.outstanding(42), 0u);
}

TEST(SimNetwork, CauseDrainFiresImmediatelyWhenIdle) {
  Overlay o = Overlay::chain(2);
  SimNetwork net(o);
  bool fired = false;
  net.on_cause_drained(7, [&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(SimNetwork, PausedBrokerDelaysButDelivers) {
  Overlay o = Overlay::chain(2);
  SimNetwork net(o);
  net.pause_broker(2, 5.0);  // crash masked as a long pause (Sec. 3.5)
  net.transmit(1, {{2, unicast(net.broker(1), 2)}});
  net.run();
  EXPECT_GE(net.now(), 5.0);
  EXPECT_EQ(net.stats().total_messages(), 1u);
}

TEST(SimNetwork, PausedLinkDelaysTransmission) {
  Overlay o = Overlay::chain(2);
  SimNetwork net(o);
  net.pause_link(1, 2, 3.0);
  net.transmit(1, {{2, unicast(net.broker(1), 2)}});
  net.run();
  EXPECT_GE(net.now(), 3.0);
}

TEST(SimNetwork, JitterNeverReordersALink) {
  Overlay o = Overlay::chain(2);
  NetworkProfile p = NetworkProfile::planetlab();
  p.seed = 9;
  SimNetwork net(o, {}, p);
  // Tag messages with increasing causes; record processing order via drain.
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    Message m = unicast(net.broker(1), 2);
    m.cause = 100 + i;
    net.transmit(1, {{2, m}});
    net.on_cause_drained(100 + i, [&order, i] { order.push_back(i); });
  }
  net.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimNetwork, PlanetlabLinksAreHeterogeneous) {
  Overlay o = Overlay::chain(5);
  NetworkProfile p = NetworkProfile::planetlab();
  p.delay_jitter = 0;  // isolate per-link base delays
  SimNetwork a(o, {}, p);
  // Measure per-hop times by sending a unicast across and reading now().
  a.transmit(1, {{2, unicast(a.broker(1), 2)}});
  a.run();
  const double hop1 = a.now();
  a.transmit(4, {{5, unicast(a.broker(4), 5)}});
  const double before = a.now();
  a.run();
  const double hop4 = a.now() - before;
  EXPECT_NE(hop1, hop4);
}

TEST(SimNetwork, StatsPerTypeAndLink) {
  Overlay o = Overlay::chain(3);
  SimNetwork net(o);
  Message m = unicast(net.broker(1), 3);
  net.transmit(1, {{2, m}});
  net.run();
  EXPECT_EQ(net.stats().messages_by_type("move-ack"), 2u);
  EXPECT_EQ(net.stats().link_counts().at({1, 2}), 1u);
  EXPECT_EQ(net.stats().link_counts().at({2, 3}), 1u);
}

TEST(Summary, Moments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.1180, 1e-3);
}

}  // namespace
}  // namespace tmps
