// Crash-recovery tests for the durable broker node (Sec. 3.5's persistence
// recipe): routing state is rebuilt from the journal, unprocessed messages
// replay, and the exactly-once client guard absorbs at-least-once replays.
#include "txn/durable_node.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "pubsub/workload.h"

namespace tmps {
namespace {

namespace fs = std::filesystem;

Message subscribe_msg(Broker& origin, const Subscription& s) {
  Message m;
  m.id = origin.next_message_id();
  m.payload = SubscribeMsg{s};
  return m;
}
Message publish_msg(Broker& origin, const Publication& p) {
  Message m;
  m.id = origin.next_message_id();
  m.payload = PublishMsg{p};
  return m;
}

class DurableNodeTest : public ::testing::Test {
 protected:
  DurableNodeTest() : overlay_(Overlay::chain(3)), origin_(1, &overlay_) {
    dir_ = fs::temp_directory_path() /
           ("tmps_dn_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  ~DurableNodeTest() override { fs::remove_all(dir_); }

  Subscription sub(std::uint32_t seq) {
    return {{100, seq}, workload_filter(WorkloadKind::Covered, 2)};
  }

  Overlay overlay_;
  Broker origin_;  // a plain broker used to mint well-formed messages
  fs::path dir_;
};

TEST_F(DurableNodeTest, ProcessesAndForwardsLikePlainBroker) {
  DurableNode node(2, &overlay_, dir_);
  // An advertisement from broker 3 floods through node 2 towards broker 1.
  Message adv;
  adv.id = origin_.next_message_id();
  adv.payload = AdvertiseMsg{{{200, 1}, full_space_advertisement()}};
  const auto out = node.deliver(3, adv);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 1u);
  EXPECT_EQ(node.backlog(), 0u);
}

TEST_F(DurableNodeTest, RoutingStateSurvivesRestart) {
  {
    DurableNode node(2, &overlay_, dir_);
    Message adv;
    adv.id = origin_.next_message_id();
    adv.payload = AdvertiseMsg{{{200, 1}, full_space_advertisement()}};
    node.deliver(3, adv);
    node.deliver(1, subscribe_msg(origin_, sub(1)));
    EXPECT_EQ(node.broker().tables().sub_count(), 1u);
    EXPECT_EQ(node.broker().tables().adv_count(), 1u);
  }
  // "Restart": a fresh node over the same directory rebuilds its tables.
  DurableNode node(2, &overlay_, dir_);
  EXPECT_EQ(node.broker().tables().sub_count(), 0u) << "before recovery";
  const auto out = node.recover();
  EXPECT_TRUE(out.empty()) << "fully processed history re-emits nothing";
  EXPECT_EQ(node.broker().tables().sub_count(), 1u);
  EXPECT_EQ(node.broker().tables().adv_count(), 1u);
  const SubEntry* e = node.broker().tables().find_sub({100, 1});
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->lasthop, Hop::of_broker(1));
}

TEST_F(DurableNodeTest, UnprocessedTailReplaysWithOutputs) {
  {
    DurableNode node(2, &overlay_, dir_);
    Message adv;
    adv.id = origin_.next_message_id();
    adv.payload = AdvertiseMsg{{{200, 1}, full_space_advertisement()}};
    node.deliver(3, adv);
    // Crash window: the subscription was journaled but never processed.
    node.journal_only(1, subscribe_msg(origin_, sub(1)));
    EXPECT_EQ(node.backlog(), 1u);
  }
  DurableNode node(2, &overlay_, dir_);
  const auto out = node.recover();
  // The subscription replays and is forwarded towards the advertiser (3).
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 3u);
  EXPECT_EQ(node.backlog(), 0u);
  EXPECT_EQ(node.broker().tables().sub_count(), 1u);
}

TEST_F(DurableNodeTest, PublicationInTailRedelivers) {
  std::vector<PublicationId> delivered;
  {
    DurableNode node(2, &overlay_, dir_);
    Message adv;
    adv.id = origin_.next_message_id();
    adv.payload = AdvertiseMsg{{{200, 1}, full_space_advertisement()}};
    node.deliver(3, adv);
    // A local client subscribes directly at node 2.
    node.broker().client_subscribe(500, sub(1));
    node.journal_only(3, publish_msg(origin_, make_publication({200, 9},
                                                               100, 0)));
  }
  DurableNode node(2, &overlay_, dir_);
  node.broker().set_notify_sink(
      [&](ClientId, const Publication& p) { delivered.push_back(p.id()); });
  // NOTE: client_subscribe was not journaled (local op) — re-issue it as the
  // client stub would on reconnect, then recover.
  node.broker().client_subscribe(500, sub(1));
  node.recover();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], (PublicationId{200, 9}));
}

TEST_F(DurableNodeTest, RepeatedRestartsAreIdempotent) {
  {
    DurableNode node(2, &overlay_, dir_);
    Message adv;
    adv.id = origin_.next_message_id();
    adv.payload = AdvertiseMsg{{{200, 1}, full_space_advertisement()}};
    node.deliver(3, adv);
    node.deliver(1, subscribe_msg(origin_, sub(1)));
  }
  for (int round = 0; round < 3; ++round) {
    DurableNode node(2, &overlay_, dir_);
    node.recover();
    EXPECT_EQ(node.broker().tables().sub_count(), 1u) << round;
    EXPECT_EQ(node.broker().tables().adv_count(), 1u) << round;
  }
}

TEST_F(DurableNodeTest, CorruptJournalEntrySkipped) {
  {
    DurableNode node(2, &overlay_, dir_);
    Message adv;
    adv.id = origin_.next_message_id();
    adv.payload = AdvertiseMsg{{{200, 1}, full_space_advertisement()}};
    node.deliver(3, adv);
  }
  // Append garbage through a raw queue (valid record framing, junk inside).
  {
    PersistentQueue q(dir_);
    q.push("this is not a message envelope");
  }
  DurableNode node(2, &overlay_, dir_);
  node.recover();  // must not crash; junk skipped, real history replayed
  EXPECT_EQ(node.broker().tables().adv_count(), 1u);
}

}  // namespace
}  // namespace tmps
