// Publication provenance: deterministic hash sampling, tag stamping at the
// origin broker, per-hop propagation through the wire messages, end-to-end
// latency histograms, pub:* trace events, the routing-state version counter
// the per-hop records carry, and histogram/summary percentile agreement at
// scenario scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "core/scenario.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "pubsub/workload.h"
#include "routing/overlay.h"

namespace tmps {
namespace {

using obs::kPubTraceBit;
using obs::make_provenance;
using obs::ProvenanceTag;
using obs::pub_sampled;
using obs::pub_trace_id;

TEST(Provenance, TraceIdsAreDeterministicDistinctAndTagged) {
  const PublicationId a{42, 1}, b{42, 2}, c{43, 1};
  EXPECT_EQ(pub_trace_id(a), pub_trace_id(a));
  EXPECT_NE(pub_trace_id(a), pub_trace_id(b));
  EXPECT_NE(pub_trace_id(a), pub_trace_id(c));
  // The top bit separates publication traces from movement TxnIds in the
  // shared tracer.
  EXPECT_NE(pub_trace_id(a) & kPubTraceBit, 0u);
  EXPECT_NE(pub_trace_id(b) & kPubTraceBit, 0u);
}

TEST(Provenance, SamplingRateSemantics) {
  const std::uint64_t id = pub_trace_id({7, 9});
  EXPECT_FALSE(pub_sampled(id, 0));  // 0 = never
  EXPECT_TRUE(pub_sampled(id, 1));   // 1 = always
  // 1/64: deterministic per id, and roughly 1/64 of a large population.
  int sampled = 0;
  for (std::uint32_t seq = 1; seq <= 6400; ++seq) {
    if (pub_sampled(pub_trace_id({1, seq}), 64)) ++sampled;
  }
  EXPECT_GT(sampled, 20);
  EXPECT_LT(sampled, 400);
}

TEST(Provenance, MakeProvenanceStampsOriginFields) {
  const ProvenanceTag tag = make_provenance({5, 17}, 12.5, 1);
  EXPECT_EQ(tag.trace, pub_trace_id({5, 17}));
  EXPECT_DOUBLE_EQ(tag.origin_time, 12.5);
  EXPECT_DOUBLE_EQ(tag.last_hop_time, 12.5);
  EXPECT_EQ(tag.hops, 0);
  EXPECT_TRUE(tag.sampled);
  EXPECT_FALSE(make_provenance({5, 17}, 12.5, 0).sampled);
}

TEST(RoutingVersion, BumpsOnEveryTableMutation) {
  RoutingTables rt;
  std::uint64_t last = rt.version();
  const Subscription sub{{100, 1}, workload_filter(WorkloadKind::Covered, 2)};
  rt.upsert_sub(sub, Hop::of_broker(2));
  EXPECT_GT(rt.version(), last);
  last = rt.version();
  rt.install_sub_shadow(sub, Hop::of_broker(3), 99);
  EXPECT_GT(rt.version(), last);
  last = rt.version();
  rt.commit_shadow(sub.id, 99);
  EXPECT_GT(rt.version(), last);
  last = rt.version();
  rt.erase_sub(sub.id);
  EXPECT_GT(rt.version(), last);
}

/// Two brokers wired by hand: the origin stamps a tag, the forwarded wire
/// message carries it with the hop count bumped, and the edge broker
/// observes the end-to-end latency and emits the pub:* events.
class ProvenanceChainTest : public ::testing::Test {
 protected:
  ProvenanceChainTest() : overlay_(Overlay::chain(2)) {}

  void wire(std::uint32_t trace_rate) {
    BrokerConfig cfg;
    cfg.subscription_covering = false;
    cfg.advertisement_covering = false;
    cfg.obs.pub_trace_rate = trace_rate;
    b1_ = std::make_unique<Broker>(1, &overlay_, cfg);
    b2_ = std::make_unique<Broker>(2, &overlay_, cfg);
    tracer_.set_enabled(true);
    for (Broker* b : {b1_.get(), b2_.get()}) {
      b->set_observability(&tracer_, &metrics_);
      b->set_notify_sink([this](ClientId c, const Publication&) {
        delivered_.push_back(c);
      });
    }
    b1_->set_clock([] { return 1.0; });
    b2_->set_clock([] { return 1.25; });

    // Advertisement at broker 1, subscription at broker 2's local client.
    Broker::Outputs out = b1_->client_advertise(
        7, {{7, 1}, full_space_advertisement()});
    for (auto& [to, msg] : out) b2_->on_message(1, msg);
    out = b2_->client_subscribe(
        42, {{42, 1}, workload_filter(WorkloadKind::Covered, 1)});
    for (auto& [to, msg] : out) b1_->on_message(2, msg);
  }

  Overlay overlay_;
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<Broker> b1_, b2_;
  std::vector<ClientId> delivered_;
};

TEST_F(ProvenanceChainTest, TagRidesTheWireAndLatencyIsObserved) {
  wire(/*trace_rate=*/1);
  const Publication pub = make_publication({7, 1}, 100, 0);
  Broker::Outputs out = b1_->client_publish(7, pub);
  ASSERT_EQ(out.size(), 1u);
  const Message& wire_msg = out[0].second;
  ASSERT_TRUE(wire_msg.prov.has_value());
  EXPECT_EQ(wire_msg.prov->trace, pub_trace_id(pub.id()));
  EXPECT_EQ(wire_msg.prov->hops, 1);  // one forwarding hop taken
  EXPECT_DOUBLE_EQ(wire_msg.prov->origin_time, 1.0);
  EXPECT_TRUE(wire_msg.prov->sampled);

  b2_->on_message(1, wire_msg);
  ASSERT_EQ(delivered_, std::vector<ClientId>{42});

  // End-to-end latency = delivery at b2 (t=1.25) - origin at b1 (t=1.0).
  const obs::Histogram& h =
      metrics_.histogram("pub_delivery_latency_seconds");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.sum(), 0.25, 1e-9);
  EXPECT_EQ(metrics_.histogram("broker_delivery_latency_seconds",
                               {{"broker", "2"}})
                .count(),
            1u);

  // The sampled publication produced origin, hop and deliver events under
  // its own trace id, with the per-hop context attributes.
  std::set<std::string> names;
  bool saw_prt_version = false, saw_move_open = false;
  for (const obs::TraceRecord& r : tracer_.records()) {
    if (r.trace != pub_trace_id(pub.id())) continue;
    names.insert(r.name);
    for (const auto& [k, v] : r.attrs) {
      if (k == "prt_version") saw_prt_version = true;
      if (k == "move_open") saw_move_open = true;
    }
  }
  EXPECT_TRUE(names.contains("pub:origin")) << "got " << names.size();
  EXPECT_TRUE(names.contains("pub:hop"));
  EXPECT_TRUE(names.contains("pub:deliver"));
  EXPECT_TRUE(saw_prt_version);
  EXPECT_TRUE(saw_move_open);
}

TEST_F(ProvenanceChainTest, RateZeroStampsTagsButEmitsNoEvents) {
  wire(/*trace_rate=*/0);
  const Publication pub = make_publication({7, 1}, 100, 0);
  Broker::Outputs out = b1_->client_publish(7, pub);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_TRUE(out[0].second.prov.has_value());
  EXPECT_FALSE(out[0].second.prov->sampled);
  b2_->on_message(1, out[0].second);

  // Histograms observe every delivery regardless of sampling...
  EXPECT_EQ(metrics_.histogram("pub_delivery_latency_seconds").count(), 1u);
  // ...but no pub:* trace records exist.
  for (const obs::TraceRecord& r : tracer_.records()) {
    EXPECT_NE(r.name.substr(0, 4), "pub:") << r.name;
  }
}

TEST_F(ProvenanceChainTest, ProvenanceOffLeavesMessagesBare) {
  BrokerConfig cfg;
  cfg.obs.pub_provenance = false;
  Broker b(1, &overlay_, cfg);
  b.set_observability(nullptr, &metrics_);
  Broker::Outputs out =
      b.client_advertise(7, {{7, 1}, full_space_advertisement()});
  out = b.client_publish(7, make_publication({7, 1}, 100, 0));
  for (const auto& [to, msg] : out) {
    EXPECT_FALSE(msg.prov.has_value());
  }
}

/// The acceptance cross-check: at scenario scale, the histogram percentiles
/// (pub_delivery_latency_seconds) and the Stats Summary — fed from the same
/// call site through the broker latency sink — agree on count exactly and on
/// quantiles within log-bucket quantization.
TEST(ProvenanceScenario, HistogramAndSummaryPercentilesAgree) {
  ScenarioConfig cfg;
  cfg.total_clients = 60;
  cfg.moving_clients = 6;
  cfg.duration = 60.0;
  cfg.warmup = 0.0;
  cfg.publish_interval = 0.5;
  cfg.seed = 11;
  Scenario s(cfg);
  s.run();

  const Summary& sum = s.stats().delivery_latency_summary();
  ASSERT_GT(sum.count(), 100u);

  obs::MetricSample hist;
  for (const obs::MetricSample& ms : s.net().metrics()->snapshot()) {
    if (ms.name == "pub_delivery_latency_seconds") hist = ms;
  }
  ASSERT_EQ(hist.count, sum.count())
      << "histogram and summary must see identical samples";

  for (const double q : {0.50, 0.95, 0.99}) {
    const double h = obs::sample_percentile(hist, q);
    const double m = sum.percentile(q);
    ASSERT_GT(h, 0.0);
    // Both interpolate the same 2^(1/4) log buckets; the Summary clamps to
    // the observed [min, max]. Allow one bucket of relative slack.
    EXPECT_NEAR(h, m, 0.30 * std::max(h, m))
        << "q=" << q << " hist=" << h << " summary=" << m;
  }
}

}  // namespace
}  // namespace tmps
