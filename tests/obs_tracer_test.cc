// Tests of the movement-transaction tracer: span nesting and lifecycle at
// the unit level, the disabled toggle producing zero output, and cause-tag
// propagation through an end-to-end simulated movement (the trace must join
// the Stats message attribution by TxnId).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/mobility_engine.h"
#include "obs/trace.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

using obs::Attrs;
using obs::SpanId;
using obs::TraceRecord;
using obs::Tracer;

TEST(Tracer, SpanNestingAndAttrs) {
  Tracer t;
  t.set_enabled(true);
  double now = 0;
  t.set_clock([&now] { return now; });

  const SpanId root = t.begin_span(7, "movement", obs::kNoSpan,
                                   {{"source", "1"}, {"target", "3"}});
  ASSERT_NE(root, obs::kNoSpan);
  now = 1.0;
  const SpanId child = t.begin_span(7, "phase:prepare", root);
  ASSERT_NE(child, obs::kNoSpan);
  EXPECT_NE(child, root);
  now = 2.0;
  t.event(7, "hop:approve", {{"broker", "2"}}, child);
  now = 3.0;
  t.end_span(child, {{"outcome", "approved"}});
  now = 4.0;
  t.end_span(root, {{"outcome", "commit"}});

  const auto recs = t.records();
  ASSERT_EQ(recs.size(), 3u);

  const TraceRecord& r = recs[0];
  EXPECT_TRUE(r.is_span);
  EXPECT_EQ(r.trace, 7u);
  EXPECT_EQ(r.parent, obs::kNoSpan);
  EXPECT_FALSE(r.open);
  EXPECT_DOUBLE_EQ(r.t0, 0.0);
  EXPECT_DOUBLE_EQ(r.t1, 4.0);
  ASSERT_EQ(r.attrs.size(), 3u);  // two at begin + outcome at end
  EXPECT_EQ(r.attrs[2].first, "outcome");
  EXPECT_EQ(r.attrs[2].second, "commit");

  const TraceRecord& c = recs[1];
  EXPECT_TRUE(c.is_span);
  EXPECT_EQ(c.parent, root);
  EXPECT_DOUBLE_EQ(c.t0, 1.0);
  EXPECT_DOUBLE_EQ(c.t1, 3.0);

  const TraceRecord& e = recs[2];
  EXPECT_FALSE(e.is_span);
  EXPECT_EQ(e.trace, 7u);
  EXPECT_EQ(e.parent, child);
  EXPECT_DOUBLE_EQ(e.t0, 2.0);
}

TEST(Tracer, EndSpanIgnoresUnknownAndNoSpanIds) {
  Tracer t;
  t.set_enabled(true);
  t.end_span(obs::kNoSpan);
  t.end_span(12345);  // never opened
  EXPECT_EQ(t.record_count(), 0u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer t;  // disabled by default
  EXPECT_FALSE(t.enabled());
  const SpanId s = t.begin_span(1, "movement");
  EXPECT_EQ(s, obs::kNoSpan);
  t.event(1, "hop:approve");
  t.end_span(s);
  EXPECT_EQ(t.record_count(), 0u);

  // The macro forms short-circuit the same way, including on a null tracer.
  Tracer* null_tracer = nullptr;
  const SpanId m = TMPS_SPAN_BEGIN(null_tracer, 1, "movement", obs::kNoSpan);
  EXPECT_EQ(m, obs::kNoSpan);
  TMPS_EVENT(null_tracer, 1, "hop:approve");
  TMPS_SPAN_END(null_tracer, m);
  const SpanId d = TMPS_SPAN_BEGIN(&t, 1, "movement", obs::kNoSpan,
                                   {{"source", "1"}});
  EXPECT_EQ(d, obs::kNoSpan);
  TMPS_EVENT(&t, 1, "hop:approve", {{"broker", "2"}});
  EXPECT_EQ(t.record_count(), 0u);

  std::ostringstream os;
  t.write_jsonl(os);
  EXPECT_TRUE(os.str().empty());
}

TEST(Tracer, ToggleMidRunDropsOnlyDisabledWindow) {
  Tracer t;
  t.set_enabled(true);
  t.event(1, "a");
  t.set_enabled(false);
  t.event(1, "b");
  t.set_enabled(true);
  t.event(1, "c");
  const auto recs = t.records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].name, "a");
  EXPECT_EQ(recs[1].name, "c");
}

TEST(Tracer, WriteJsonlFlushesAndClears) {
  Tracer t;
  t.set_enabled(true);
  const SpanId s = t.begin_span(9, "movement");
  t.end_span(s);
  const SpanId open = t.begin_span(9, "phase:prepare", s);
  (void)open;  // left open: must be emitted with "open":true

  std::ostringstream os;
  t.write_jsonl(os, "runA");
  const std::string out = os.str();
  EXPECT_NE(out.find("\"kind\":\"span\""), std::string::npos);
  EXPECT_NE(out.find("\"run\":\"runA\""), std::string::npos);
  EXPECT_NE(out.find("\"trace\":9"), std::string::npos);
  EXPECT_NE(out.find("\"open\":true"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_EQ(t.record_count(), 0u);
}

// --- end-to-end: a simulated movement produces a joined trace --------------

class TracedMovement : public ::testing::Test {
 protected:
  TracedMovement() : overlay_(Overlay::chain(3)), net_(overlay_) {
    net_.tracer()->set_enabled(true);
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      MobilityConfig cfg;
      engines_.push_back(
          std::make_unique<MobilityEngine>(net_.broker(b), net_, cfg));
      auto* eng = engines_.back().get();
      eng->set_transmit(
          [this, b](Broker::Outputs out) { net_.transmit(b, std::move(out)); });
    }
  }

  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(*engines_[b - 1], out);
    net_.transmit(b, std::move(out));
    net_.run();
  }

  Overlay overlay_;
  SimNetwork net_;
  std::vector<std::unique_ptr<MobilityEngine>> engines_;
};

TEST_F(TracedMovement, MovementSpansJoinStatsByTxnId) {
#if !TMPS_TRACING_ENABLED
  GTEST_SKIP() << "instrumentation sites compiled out (TMPS_TRACING=OFF)";
#endif
  constexpr ClientId kMover = 500;
  constexpr ClientId kPublisher = 600;
  run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kMover);
    e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2), out);
  });

  TxnId txn = kNoTxn;
  run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 3, out);
  });
  ASSERT_NE(txn, kNoTxn);

  const auto recs = net_.tracer()->records();
  auto find_span = [&](std::string_view name) -> const TraceRecord* {
    for (const auto& r : recs) {
      if (r.is_span && r.name == name && r.trace == txn) return &r;
    }
    return nullptr;
  };

  // Root movement span: closed, committed, TxnId == the cause tag used for
  // message attribution in Stats.
  const TraceRecord* movement = find_span("movement");
  ASSERT_NE(movement, nullptr);
  EXPECT_EQ(movement->parent, obs::kNoSpan);
  EXPECT_FALSE(movement->open);
  const auto outcome =
      std::find_if(movement->attrs.begin(), movement->attrs.end(),
                   [](const auto& kv) { return kv.first == "outcome"; });
  ASSERT_NE(outcome, movement->attrs.end());
  EXPECT_EQ(outcome->second, "commit");

  // Phase child spans nest under the movement span.
  const TraceRecord* prepare = find_span("phase:prepare");
  const TraceRecord* commit = find_span("phase:commit");
  ASSERT_NE(prepare, nullptr);
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(prepare->parent, movement->span);
  EXPECT_EQ(commit->parent, movement->span);
  EXPECT_FALSE(prepare->open);
  EXPECT_FALSE(commit->open);
  EXPECT_LE(prepare->t1, commit->t1);

  // The target side opened a precommit span in the same trace.
  const TraceRecord* precommit = find_span("phase:precommit");
  ASSERT_NE(precommit, nullptr);
  EXPECT_FALSE(precommit->open);

  // Hop events carry the same TxnId, so the trace joins the Stats message
  // attribution for this movement.
  bool saw_hop = false;
  for (const auto& r : recs) {
    if (!r.is_span && r.trace == txn && r.name.rfind("hop:", 0) == 0) {
      saw_hop = true;
    }
  }
  EXPECT_TRUE(saw_hop);
  EXPECT_GT(net_.stats().messages_for_cause(txn), 0u);
}

TEST_F(TracedMovement, DisabledNetworkTracerEmitsNothing) {
  net_.tracer()->set_enabled(false);
  constexpr ClientId kMover = 500;
  run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kMover);
    e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2), out);
  });
  TxnId txn = kNoTxn;
  run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 3, out);
  });
  ASSERT_NE(txn, kNoTxn);
  EXPECT_EQ(net_.tracer()->record_count(), 0u);
}

}  // namespace
}  // namespace tmps
