#include "core/client_stub.h"

#include <gtest/gtest.h>

namespace tmps {
namespace {

Publication pub(std::uint32_t seq) {
  Publication p;
  p.set_id({99, seq});
  p.set("x", 1);
  return p;
}

class ClientStubTest : public ::testing::Test {
 protected:
  ClientStubTest() : stub_(7) {
    stub_.set_delivery_fn([this](const Publication& p) {
      delivered_.push_back(p.id().seq);
    });
  }
  ClientStub stub_;
  std::vector<std::uint32_t> delivered_;
};

TEST_F(ClientStubTest, HappyPathLifecycle) {
  EXPECT_EQ(stub_.state(), ClientState::Init);
  stub_.create();
  EXPECT_EQ(stub_.state(), ClientState::Created);
  stub_.start();
  EXPECT_EQ(stub_.state(), ClientState::Started);
  EXPECT_TRUE(stub_.can_publish());
}

TEST_F(ClientStubTest, IllegalTransitionsThrow) {
  EXPECT_THROW(stub_.start(), IllegalTransition);
  stub_.create();
  EXPECT_THROW(stub_.create(), IllegalTransition);
  EXPECT_THROW(stub_.begin_move(), IllegalTransition);
  stub_.start();
  EXPECT_THROW(stub_.resume(), IllegalTransition);
  EXPECT_THROW(stub_.prepare_stop(), IllegalTransition);
  EXPECT_THROW(stub_.clean(), IllegalTransition);
}

TEST_F(ClientStubTest, MoveStatePath) {
  stub_.create();
  stub_.start();
  stub_.begin_move();
  EXPECT_EQ(stub_.state(), ClientState::PauseMove);
  EXPECT_FALSE(stub_.can_publish());
  stub_.prepare_stop();
  EXPECT_EQ(stub_.state(), ClientState::PrepareStop);
  stub_.clean();
  EXPECT_EQ(stub_.state(), ClientState::Clean);
}

TEST_F(ClientStubTest, RejectResumesClient) {
  stub_.create();
  stub_.start();
  stub_.begin_move();
  stub_.resume_from_reject();
  EXPECT_EQ(stub_.state(), ClientState::Started);
}

TEST_F(ClientStubTest, PauseOperCanStartMove) {
  stub_.create();
  stub_.start();
  stub_.pause();
  EXPECT_EQ(stub_.state(), ClientState::PauseOper);
  stub_.begin_move();
  EXPECT_EQ(stub_.state(), ClientState::PauseMove);
}

TEST_F(ClientStubTest, NotificationsDeliverWhenStarted) {
  stub_.create();
  stub_.start();
  stub_.on_notification(pub(1));
  EXPECT_EQ(delivered_, (std::vector<std::uint32_t>{1}));
}

TEST_F(ClientStubTest, NotificationsBufferWhileMoving) {
  stub_.create();
  stub_.start();
  stub_.begin_move();
  stub_.on_notification(pub(1));
  stub_.on_notification(pub(2));
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(stub_.buffered_count(), 2u);
}

TEST_F(ClientStubTest, BufferFlushedOnResume) {
  stub_.create();
  stub_.start();
  stub_.begin_move();
  stub_.on_notification(pub(1));
  stub_.resume_from_reject();
  EXPECT_EQ(delivered_, (std::vector<std::uint32_t>{1}));
}

TEST_F(ClientStubTest, DuplicatesSuppressed) {
  stub_.create();
  stub_.start();
  stub_.on_notification(pub(1));
  stub_.on_notification(pub(1));
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(ClientStubTest, DuplicateAcrossBufferAndDeliverySuppressed) {
  stub_.create();
  stub_.start();
  stub_.begin_move();
  stub_.on_notification(pub(1));
  stub_.resume_from_reject();
  stub_.on_notification(pub(1));
  EXPECT_EQ(delivered_.size(), 1u);
}

TEST_F(ClientStubTest, TakeBufferEmptiesIt) {
  stub_.create();
  stub_.start();
  stub_.begin_move();
  stub_.on_notification(pub(1));
  stub_.on_notification(pub(2));
  auto buf = stub_.take_buffer();
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(stub_.buffered_count(), 0u);
}

TEST_F(ClientStubTest, MergePutsShippedBeforeLocalAndDedups) {
  // Target-side copy: created, receiving live traffic while the shipped
  // buffer is in flight.
  stub_.create();
  stub_.on_notification(pub(3));  // arrives via the new route
  stub_.on_notification(pub(4));
  std::vector<Publication> shipped{pub(1), pub(2), pub(3)};  // 3 duplicates
  stub_.merge_notifications(shipped);
  EXPECT_TRUE(delivered_.empty());
  stub_.start();
  EXPECT_EQ(delivered_, (std::vector<std::uint32_t>{1, 2, 3, 4}));
}

TEST_F(ClientStubTest, CommandsQueueWhileMoving) {
  stub_.create();
  stub_.start();
  stub_.begin_move();
  Publication p;
  p.set_id({7, 10});
  stub_.queue_command(p);
  auto cmds = stub_.take_commands();
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].id().seq, 10u);
  EXPECT_TRUE(stub_.take_commands().empty());
}

TEST_F(ClientStubTest, ProfileBookkeeping) {
  const auto id1 = stub_.allocate_id();
  const auto id2 = stub_.allocate_id();
  EXPECT_NE(id1.seq, id2.seq);
  stub_.remember_subscription({id1, Filter::build().attr("x").ge(1)});
  stub_.remember_advertisement({id2, Filter::build().attr("x").ge(0)});
  EXPECT_EQ(stub_.subscriptions().size(), 1u);
  EXPECT_EQ(stub_.advertisements().size(), 1u);
  EXPECT_TRUE(stub_.forget_subscription(id1));
  EXPECT_FALSE(stub_.forget_subscription(id1));
  EXPECT_TRUE(stub_.forget_advertisement(id2));
}

TEST_F(ClientStubTest, CleanDropsBuffer) {
  stub_.create();
  stub_.on_notification(pub(1));
  EXPECT_EQ(stub_.buffered_count(), 1u);
  stub_.clean();
  EXPECT_EQ(stub_.buffered_count(), 0u);
  // Notifications to a clean stub are dropped silently.
  stub_.on_notification(pub(2));
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(ClientStubTest, ResumeFromAbortWorksFromPrepareStop) {
  stub_.create();
  stub_.start();
  stub_.begin_move();
  stub_.prepare_stop();
  stub_.on_notification(pub(5));
  stub_.resume_from_abort();
  EXPECT_EQ(stub_.state(), ClientState::Started);
  EXPECT_EQ(delivered_, (std::vector<std::uint32_t>{5}));
}

}  // namespace
}  // namespace tmps
