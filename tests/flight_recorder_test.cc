// The per-broker flight recorder: ring semantics (capacity rounding, wrap,
// oldest-first snapshots), the JSONL dump format, kind names, concurrent
// writers, and the broker integration (events recorded on message
// processing, dump_flight writing to trace_dir).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "obs/flight_recorder.h"
#include "pubsub/workload.h"
#include "routing/overlay.h"

namespace tmps {
namespace {

using obs::FlightKind;
using obs::FlightRecorder;

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(0).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(8).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(9).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(256).capacity(), 256u);
}

TEST(FlightRecorder, SnapshotReturnsEventsOldestFirst) {
  FlightRecorder fr(8);
  for (int i = 0; i < 5; ++i) {
    fr.record(FlightKind::kPublish, i * 0.5, 3, 100 + i, 200 + i);
  }
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(events[i].time, i * 0.5);
    EXPECT_EQ(events[i].kind, FlightKind::kPublish);
    EXPECT_EQ(events[i].from, 3u);
    EXPECT_EQ(events[i].cause, 100u + i);
    EXPECT_EQ(events[i].detail, 200u + i);
  }
}

TEST(FlightRecorder, RingKeepsOnlyTheLastCapacityEvents) {
  FlightRecorder fr(8);
  for (int i = 0; i < 100; ++i) {
    fr.record(FlightKind::kDeliver, i, 0, 0, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(fr.recorded(), 100u);
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The last 8 of 100, oldest first: details 92..99.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].detail, 92u + i);
  }
}

TEST(FlightRecorder, WriteJsonlEmitsHeaderAndOneObjectPerEvent) {
  FlightRecorder fr(8);
  fr.record(FlightKind::kMoveNegotiate, 1.5, 2, 77, 5);
  fr.record(FlightKind::kDeliver, 2.0, 0, 0, 1042);
  std::ostringstream os;
  fr.write_jsonl(os, /*broker=*/4, "unit-test");
  const std::string out = os.str();
  EXPECT_NE(out.find("\"flight\":true"), std::string::npos) << out;
  EXPECT_NE(out.find("\"broker\":4"), std::string::npos) << out;
  EXPECT_NE(out.find("\"reason\":\"unit-test\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"kind\":\"move-negotiate\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"kind\":\"deliver\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"detail\":1042"), std::string::npos) << out;
  // Header + 2 events = 3 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(FlightRecorder, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(FlightKind::kClientOp); ++k) {
    EXPECT_FALSE(obs::flight_kind_name(static_cast<FlightKind>(k)).empty())
        << "kind " << k;
  }
}

TEST(FlightRecorder, ConcurrentWritersAndReadersStayConsistent) {
  FlightRecorder fr(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&fr, t] {
      for (int i = 0; i < 20000; ++i) {
        fr.record(FlightKind::kPublish, i, static_cast<std::uint32_t>(t),
                  static_cast<std::uint64_t>(t), static_cast<std::uint64_t>(i));
      }
    });
  }
  std::thread reader([&fr, &stop] {
    while (!stop.load()) {
      const auto events = fr.snapshot();
      EXPECT_LE(events.size(), fr.capacity());
      for (const auto& e : events) {
        // A consistent slot: the detail (iteration) is a plausible pairing
        // for the writer in `from` — never a torn mix of two writers.
        EXPECT_LT(e.from, 4u);
        EXPECT_EQ(e.cause, e.from);
      }
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(fr.recorded(), 4u * 20000u);
  EXPECT_EQ(fr.snapshot().size(), fr.capacity());
}

TEST(FlightBroker, BrokerRecordsProtocolAndDeliveryEvents) {
  Overlay overlay = Overlay::chain(2);
  BrokerConfig cfg;
  cfg.obs.flight_capacity = 32;
  Broker b1(1, &overlay, cfg);
  Broker b2(2, &overlay, cfg);
  ASSERT_NE(b1.flight(), nullptr);

  Broker::Outputs out =
      b1.client_advertise(7, {{7, 1}, full_space_advertisement()});
  for (auto& [to, msg] : out) b2.on_message(1, msg);
  out = b2.client_subscribe(
      42, {{42, 1}, workload_filter(WorkloadKind::Covered, 1)});
  for (auto& [to, msg] : out) b1.on_message(2, msg);
  out = b1.client_publish(7, make_publication({7, 1}, 100, 0));
  for (auto& [to, msg] : out) b2.on_message(1, msg);

  // b1 saw local client ops plus the subscribe from broker 2.
  bool b1_client_op = false, b1_subscribe = false;
  for (const auto& e : b1.flight()->snapshot()) {
    if (e.kind == obs::FlightKind::kClientOp) b1_client_op = true;
    if (e.kind == obs::FlightKind::kSubscribe && e.from == 2) {
      b1_subscribe = true;
    }
  }
  EXPECT_TRUE(b1_client_op);
  EXPECT_TRUE(b1_subscribe);
  // b2 saw the publish arrive from broker 1 and the local delivery.
  bool b2_publish = false, b2_deliver = false;
  for (const auto& e : b2.flight()->snapshot()) {
    if (e.kind == obs::FlightKind::kPublish && e.from == 1) b2_publish = true;
    if (e.kind == obs::FlightKind::kDeliver && e.detail == 42) {
      b2_deliver = true;
    }
  }
  EXPECT_TRUE(b2_publish);
  EXPECT_TRUE(b2_deliver);
}

TEST(FlightBroker, DisabledWhenCapacityZeroAndDumpWritesToTraceDir) {
  Overlay overlay = Overlay::chain(3);
  BrokerConfig off;
  off.obs.flight_capacity = 0;
  EXPECT_EQ(Broker(1, &overlay, off).flight(), nullptr);

  const std::string dir =
      std::filesystem::temp_directory_path() / "tmps_flight_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  BrokerConfig cfg;
  cfg.obs.trace_dir = dir;
  Broker b(3, &overlay, cfg);
  b.client_advertise(7, {{7, 1}, full_space_advertisement()});
  b.dump_flight("test-reason");
  std::ifstream is(dir + "/flight_b3.jsonl");
  ASSERT_TRUE(is.good());
  std::string first;
  std::getline(is, first);
  EXPECT_NE(first.find("\"reason\":\"test-reason\""), std::string::npos)
      << first;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tmps
