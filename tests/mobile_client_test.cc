// The MobileClient facade: location tracking across movements, pub/sub ops
// routed to the current host, pause/resume, and the routing auditor.
#include <gtest/gtest.h>

#include "core/mobile_client.h"
#include "pubsub/workload.h"
#include "routing/auditor.h"
#include "sim/network.h"

namespace tmps {
namespace {

BrokerConfig no_covering() {
  BrokerConfig bc;
  bc.subscription_covering = false;
  bc.advertisement_covering = false;
  return bc;
}

struct Rig {
  Rig() : overlay(Overlay::chain(5)), net(overlay, no_covering()) {
    for (BrokerId b = 1; b <= 5; ++b) {
      engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
      engines.back()->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            deliveries.emplace_back(c, p.id());
          });
      directory.add(*engines.back());
    }
  }

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  EngineDirectory directory;
  std::vector<std::pair<ClientId, PublicationId>> deliveries;
};

TEST(MobileClient, ConnectAndLocate) {
  Rig r;
  MobileClient c = MobileClient::connect(7, 2, r.directory);
  EXPECT_TRUE(c.connected());
  EXPECT_EQ(c.location(), 2u);
  EXPECT_EQ(c.state(), ClientState::Started);
}

TEST(MobileClient, UnknownClientIsDisconnected) {
  Rig r;
  MobileClient ghost(999, r.directory);
  EXPECT_FALSE(ghost.connected());
  EXPECT_EQ(ghost.location(), kNoBroker);
  EXPECT_EQ(ghost.state(), ClientState::Init);
  EXPECT_EQ(ghost.move_to(3), kNoTxn);
  ghost.publish(make_publication({0, 0}, 1, 0));  // harmless no-op
}

TEST(MobileClient, EndToEndViaFacade) {
  Rig r;
  MobileClient pub = MobileClient::connect(1, 1, r.directory);
  MobileClient sub = MobileClient::connect(2, 5, r.directory);
  pub.advertise(full_space_advertisement());
  r.net.run();
  sub.subscribe(workload_filter(WorkloadKind::Covered, 1));
  r.net.run();
  pub.publish(make_publication({0, 0}, 42, 0));
  r.net.run();
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].first, 2u);
}

TEST(MobileClient, LocationFollowsMovement) {
  Rig r;
  MobileClient c = MobileClient::connect(7, 2, r.directory);
  c.subscribe(workload_filter(WorkloadKind::Covered, 1));
  r.net.run();
  const TxnId txn = c.move_to(5);
  EXPECT_NE(txn, kNoTxn);
  r.net.run();
  EXPECT_EQ(c.location(), 5u);
  EXPECT_EQ(c.state(), ClientState::Started);
  // And back again.
  c.move_to(1);
  r.net.run();
  EXPECT_EQ(c.location(), 1u);
}

TEST(MobileClient, PauseAndResume) {
  Rig r;
  MobileClient pub = MobileClient::connect(1, 1, r.directory);
  MobileClient c = MobileClient::connect(7, 3, r.directory);
  pub.advertise(full_space_advertisement());
  r.net.run();
  c.subscribe(workload_filter(WorkloadKind::Covered, 1));
  r.net.run();

  c.pause();
  EXPECT_EQ(c.state(), ClientState::PauseOper);
  pub.publish(make_publication({0, 0}, 10, 0));
  r.net.run();
  EXPECT_TRUE(r.deliveries.empty()) << "paused client must buffer";
  c.resume();
  EXPECT_EQ(c.state(), ClientState::Started);
  ASSERT_EQ(r.deliveries.size(), 1u) << "buffer flushed on resume";
}

TEST(MobileClient, MoveWhilePausedForOperation) {
  Rig r;
  MobileClient c = MobileClient::connect(7, 2, r.directory);
  c.subscribe(workload_filter(WorkloadKind::Covered, 1));
  r.net.run();
  c.pause();
  const TxnId txn = c.move_to(4);
  EXPECT_NE(txn, kNoTxn);
  r.net.run();
  EXPECT_EQ(c.location(), 4u);
}

TEST(RoutingAuditor, CleanNetworkPasses) {
  Rig r;
  MobileClient pub = MobileClient::connect(1, 1, r.directory);
  MobileClient sub = MobileClient::connect(2, 5, r.directory);
  const auto aid = pub.advertise(full_space_advertisement());
  r.net.run();
  const Filter f = workload_filter(WorkloadKind::Covered, 1);
  const auto sid = sub.subscribe(f);
  r.net.run();

  RoutingAuditor auditor(
      r.overlay, [&](BrokerId b) -> const RoutingTables& { return r.net.broker(b).tables(); });
  auditor.expect_publisher(aid, full_space_advertisement(), 1);
  auditor.expect_subscriber(sid, f, 5);
  EXPECT_TRUE(auditor.audit().empty());
  EXPECT_TRUE(auditor.audit_no_shadows().empty());
}

TEST(RoutingAuditor, ConsistentAfterManyMoves) {
  Rig r;
  MobileClient pub = MobileClient::connect(1, 1, r.directory);
  const auto aid = pub.advertise(full_space_advertisement());
  r.net.run();
  MobileClient c = MobileClient::connect(7, 2, r.directory);
  const Filter f = workload_filter(WorkloadKind::Covered, 1);
  const auto sid = c.subscribe(f);
  r.net.run();

  for (BrokerId target : {5u, 3u, 4u, 2u, 5u, 1u}) {
    c.move_to(target);
    r.net.run();
    RoutingAuditor auditor(
        r.overlay, [&](BrokerId b) -> const RoutingTables& {
          return r.net.broker(b).tables();
        });
    auditor.expect_publisher(aid, full_space_advertisement(), 1);
    auditor.expect_subscriber(sid, f, target);
    const auto violations = auditor.audit();
    EXPECT_TRUE(violations.empty())
        << "after move to B" << target << ": "
        << (violations.empty() ? "" : violations[0].to_string());
    EXPECT_TRUE(auditor.audit_no_shadows().empty());
  }
}

TEST(RoutingAuditor, DetectsBrokenPath) {
  Rig r;
  MobileClient pub = MobileClient::connect(1, 1, r.directory);
  const auto aid = pub.advertise(full_space_advertisement());
  r.net.run();
  MobileClient c = MobileClient::connect(7, 5, r.directory);
  const Filter f = workload_filter(WorkloadKind::Covered, 1);
  const auto sid = c.subscribe(f);
  r.net.run();

  // Sabotage: erase the subscription's entry at a mid-path broker.
  r.net.broker(3).tables().erase_sub(sid);

  RoutingAuditor auditor(
      r.overlay, [&](BrokerId b) -> const RoutingTables& { return r.net.broker(b).tables(); });
  auditor.expect_publisher(aid, full_space_advertisement(), 1);
  auditor.expect_subscriber(sid, f, 5);
  const auto violations = auditor.audit();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("no PRT entry at B3"),
            std::string::npos)
      << violations[0].to_string();
}

TEST(RoutingAuditor, DetectsMisdirectedEntry) {
  Rig r;
  MobileClient pub = MobileClient::connect(1, 1, r.directory);
  const auto aid = pub.advertise(full_space_advertisement());
  r.net.run();
  MobileClient c = MobileClient::connect(7, 5, r.directory);
  const Filter f = workload_filter(WorkloadKind::Covered, 1);
  const auto sid = c.subscribe(f);
  r.net.run();

  // Sabotage: point the mid-path entry back towards the publisher (loop).
  r.net.broker(3).tables().find_sub(sid)->lasthop = Hop::of_broker(2);

  RoutingAuditor auditor(
      r.overlay, [&](BrokerId b) -> const RoutingTables& { return r.net.broker(b).tables(); });
  auditor.expect_publisher(aid, full_space_advertisement(), 1);
  auditor.expect_subscriber(sid, f, 5);
  const auto violations = auditor.audit();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("loop"), std::string::npos);
}

}  // namespace
}  // namespace tmps
