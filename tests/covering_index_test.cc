// Unit tests of the covering/subsumption candidate index in isolation:
// filing rules (singleton bucket vs rest list, adaptive bucket choice),
// erase symmetry, and soundness-as-superset of every probe against brute
// force over a small filter zoo.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "routing/covering_index.h"

namespace tmps {
namespace {

EntityId id(std::uint32_t seq) { return {1, seq}; }

std::vector<EntityId> sorted(std::vector<EntityId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

bool contains_all(const std::vector<EntityId>& candidates,
                  const std::vector<EntityId>& required) {
  for (const EntityId& r : required) {
    if (std::find(candidates.begin(), candidates.end(), r) ==
        candidates.end()) {
      return false;
    }
  }
  return true;
}

TEST(CoveringIndexTest, FilesUnderEqualityAttribute) {
  CoveringIndex ix;
  ix.insert(id(1), Filter::build().attr("class").eq("STOCK").attr("x").ge(0));
  EXPECT_EQ(ix.size(), 1u);
  EXPECT_EQ(ix.rest_count(), 0u);
  EXPECT_EQ(ix.attribute_count(), 1u);
}

TEST(CoveringIndexTest, NoEqualityFallsBackToRest) {
  CoveringIndex ix;
  ix.insert(id(1), Filter::build().attr("x").ge(0).le(10));
  EXPECT_EQ(ix.size(), 1u);
  EXPECT_EQ(ix.rest_count(), 1u);
  EXPECT_EQ(ix.attribute_count(), 0u);
}

TEST(CoveringIndexTest, UnsatisfiableFilesInRest) {
  // x = 1 ∧ x = 2 admits no publication; unsatisfiable filters are covered
  // by everything, so they must appear in every probe — the rest list.
  const Filter unsat = Filter::build().attr("x").eq(1).eq(2);
  ASSERT_FALSE(unsat.satisfiable());
  CoveringIndex ix;
  ix.insert(id(1), unsat);
  EXPECT_EQ(ix.rest_count(), 1u);
}

TEST(CoveringIndexTest, AdaptiveFilingPicksSmallestBucket) {
  CoveringIndex ix;
  // Crowd the ("a", 1) bucket...
  for (std::uint32_t s = 1; s <= 3; ++s) {
    ix.insert(id(s), Filter::build().attr("a").eq(1));
  }
  // ...then a filter pinning both a=1 and b=2 prefers the empty b-bucket.
  ix.insert(id(4), Filter::build().attr("a").eq(1).attr("b").eq(2));
  EXPECT_EQ(ix.attribute_count(), 2u);
}

TEST(CoveringIndexTest, EraseIsExactInverse) {
  CoveringIndex ix;
  const Filter f1 = Filter::build().attr("a").eq(1).attr("b").eq(2);
  const Filter f2 = Filter::build().attr("x").ge(0);
  ix.insert(id(1), f1);
  ix.insert(id(2), f1);  // same filter, may land in a different bucket
  ix.insert(id(3), f2);
  ix.erase(id(1), f1);
  ix.erase(id(2), f1);
  ix.erase(id(3), f2);
  EXPECT_EQ(ix.size(), 0u);
  EXPECT_EQ(ix.rest_count(), 0u);
  EXPECT_EQ(ix.attribute_count(), 0u);
  std::vector<EntityId> ids;
  ix.all_ids(ids);
  EXPECT_TRUE(ids.empty());
}

TEST(CoveringIndexTest, AllIdsEnumeratesEveryFiling) {
  CoveringIndex ix;
  ix.insert(id(1), Filter::build().attr("a").eq(1));
  ix.insert(id(2), Filter::build().attr("b").eq("s"));
  ix.insert(id(3), Filter::build().attr("x").ge(0));
  std::vector<EntityId> ids;
  ix.all_ids(ids);
  EXPECT_EQ(sorted(ids), (std::vector<EntityId>{id(1), id(2), id(3)}));
}

TEST(CoveringIndexTest, CovererProbeForUnsatQueryReturnsEverything) {
  CoveringIndex ix;
  ix.insert(id(1), Filter::build().attr("a").eq(1));
  ix.insert(id(2), Filter::build().attr("x").ge(0));
  const Filter unsat = Filter::build().attr("y").eq(1).eq(2);
  std::vector<EntityId> out;
  ix.coverer_candidates(unsat, out);
  EXPECT_EQ(sorted(out), (std::vector<EntityId>{id(1), id(2)}));
}

TEST(CoveringIndexTest, IntersectProbeSkipsAttributesAdvDoesNotConstrain) {
  CoveringIndex ix;
  // A subscription pinning "a" cannot intersect an advertisement silent on
  // "a" — its posting list must be skipped, not scanned.
  ix.insert(id(1), Filter::build().attr("a").eq(1));
  std::vector<EntityId> out;
  ix.sub_intersect_candidates(Filter::build().attr("b").ge(0).le(9), out);
  EXPECT_TRUE(out.empty());
}

// Brute-force completeness: over a zoo of filters with mixed attributes,
// equalities, ranges, strings and an unsatisfiable member, every probe's
// candidate set must be a superset of the true answer computed with the
// exact filter relations.
TEST(CoveringIndexTest, ProbesAreCompleteAgainstBruteForce) {
  std::vector<Filter> zoo;
  zoo.push_back(Filter::build().attr("class").eq("STOCK"));
  zoo.push_back(Filter::build().attr("class").eq("STOCK").attr("x").ge(0).le(
      100));
  zoo.push_back(
      Filter::build().attr("class").eq("STOCK").attr("x").ge(10).le(20));
  zoo.push_back(Filter::build().attr("class").eq("STOCK").attr("x").eq(15));
  zoo.push_back(Filter::build().attr("x").ge(0).le(50));
  zoo.push_back(Filter::build().attr("x").gt(5).lt(25).attr("g").eq(3));
  zoo.push_back(Filter::build().attr("g").ge(0).le(9));
  zoo.push_back(Filter::build().attr("class").eq("BOND"));
  zoo.push_back(Filter::build().attr("class").prefix("STO"));
  zoo.push_back(Filter::build().attr("y").eq(1).eq(2));  // unsatisfiable
  zoo.push_back(Filter::build().attr("class").present().attr("x").ge(0));

  CoveringIndex ix;
  for (std::uint32_t s = 0; s < zoo.size(); ++s) ix.insert(id(s + 1), zoo[s]);

  for (std::uint32_t q = 0; q < zoo.size(); ++q) {
    const Filter& query = zoo[q];

    std::vector<EntityId> coverers, covered, sub_int, adv_int;
    ix.coverer_candidates(query, coverers);
    ix.covered_candidates(query, covered);
    ix.sub_intersect_candidates(query, sub_int);
    ix.adv_intersect_candidates(query, adv_int);

    std::vector<EntityId> true_coverers, true_covered, true_sub_int,
        true_adv_int;
    for (std::uint32_t s = 0; s < zoo.size(); ++s) {
      if (zoo[s].covers(query)) true_coverers.push_back(id(s + 1));
      if (query.covers(zoo[s])) true_covered.push_back(id(s + 1));
      // zoo[s] as subscription against `query` as advertisement:
      if (zoo[s].intersects_advertisement(query)) {
        true_sub_int.push_back(id(s + 1));
      }
      // `query` as subscription against zoo[s] as advertisement:
      if (query.intersects_advertisement(zoo[s])) {
        true_adv_int.push_back(id(s + 1));
      }
    }

    EXPECT_TRUE(contains_all(coverers, true_coverers)) << "query " << q;
    EXPECT_TRUE(contains_all(covered, true_covered)) << "query " << q;
    EXPECT_TRUE(contains_all(sub_int, true_sub_int)) << "query " << q;
    EXPECT_TRUE(contains_all(adv_int, true_adv_int)) << "query " << q;
  }
}

TEST(CoveringIndexTest, NumericDomainsUnifyInOnePostingList) {
  // Int 5 and Real 5.0 compare equal under Value's ordering, so an equality
  // on either must find entries filed under the other.
  CoveringIndex ix;
  ix.insert(id(1), Filter::build().attr("x").eq(std::int64_t{5}));
  std::vector<EntityId> out;
  ix.coverer_candidates(Filter::build().attr("x").eq(5.0), out);
  EXPECT_TRUE(contains_all(out, {id(1)}));
}

}  // namespace
}  // namespace tmps
