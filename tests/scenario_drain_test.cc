// The scenario's end-of-run drain and the loss-audit bookkeeping.
#include <gtest/gtest.h>

#include "core/scenario.h"

namespace tmps {
namespace {

TEST(ScenarioDrain, NoInFlightMessagesAfterRun) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = MobilityProtocol::Traditional;
  cfg.total_clients = 60;
  cfg.duration = 40.0;
  cfg.warmup = 15.0;
  cfg.pause_between_moves = 5.0;
  Scenario s(cfg);
  s.run();
  // Everything scheduled has drained: the event queue is empty.
  EXPECT_TRUE(s.net().events().empty());
  // No broker still holds unresolved movement shadow state.
  for (BrokerId b = 1; b <= 14; ++b) {
    EXPECT_FALSE(s.net().broker(b).tables().has_pending_shadows()) << b;
  }
}

TEST(ScenarioDrain, LossAuditCountsArePlausible) {
  ScenarioConfig cfg;
  cfg.total_clients = 60;
  cfg.moving_clients = 6;
  cfg.duration = 60.0;
  cfg.warmup = 20.0;
  cfg.publish_interval = 0.5;
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  Scenario s(cfg);
  s.run();
  // There are stationary and mover expectations, and reconfig loses none.
  EXPECT_GT(s.audit().stationary_expected, 0u);
  EXPECT_GT(s.audit().mover_expected, 0u);
  EXPECT_EQ(s.audit().stationary_losses, 0u);
  EXPECT_EQ(s.audit().mover_losses, 0u);
  EXPECT_EQ(s.audit().duplicates, 0u);
}

TEST(ScenarioDrain, ChurnDisablesLossAudit) {
  ScenarioConfig cfg;
  cfg.total_clients = 30;
  cfg.moving_clients = 3;
  cfg.duration = 30.0;
  cfg.background_churn_interval = 5.0;
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  Scenario s(cfg);
  s.run();
  // Churned clients' entitlement windows are ambiguous; the audit opts out.
  EXPECT_EQ(s.audit().stationary_expected, 0u);
  EXPECT_EQ(s.audit().mover_expected, 0u);
}

TEST(ScenarioDrain, PublisherMoversExcludedFromLossAudit) {
  ScenarioConfig cfg;
  cfg.total_clients = 40;
  cfg.moving_clients = 10;
  cfg.movers_are_publishers = true;
  cfg.duration = 30.0;
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  Scenario s(cfg);
  s.run();
  EXPECT_EQ(s.audit().mover_expected, 0u)
      << "publishers have no notification entitlement";
}

}  // namespace
}  // namespace tmps
