#include "pubsub/constraint.h"

#include <gtest/gtest.h>

namespace tmps {
namespace {

Constraint make(std::initializer_list<Predicate> preds, bool expect_ok = true) {
  Constraint c;
  bool ok = true;
  for (const auto& p : preds) ok = c.add(p) && ok;
  EXPECT_EQ(ok, expect_ok);
  return c;
}

TEST(Constraint, UnconstrainedSatisfiesEverything) {
  Constraint c;
  EXPECT_TRUE(c.unconstrained());
  EXPECT_TRUE(c.satisfies(Value{1}));
  EXPECT_TRUE(c.satisfies(Value{"s"}));
}

TEST(Constraint, IntervalSatisfaction) {
  const auto c = make({ge("x", 10), le("x", 20)});
  EXPECT_TRUE(c.satisfies(Value{10}));
  EXPECT_TRUE(c.satisfies(Value{15}));
  EXPECT_TRUE(c.satisfies(Value{20}));
  EXPECT_FALSE(c.satisfies(Value{9}));
  EXPECT_FALSE(c.satisfies(Value{21}));
}

TEST(Constraint, OpenBounds) {
  const auto c = make({gt("x", 10), lt("x", 20)});
  EXPECT_FALSE(c.satisfies(Value{10}));
  EXPECT_TRUE(c.satisfies(Value{11}));
  EXPECT_FALSE(c.satisfies(Value{20}));
}

TEST(Constraint, ExclusionsApply) {
  const auto c = make({ge("x", 0), le("x", 10), ne("x", 5)});
  EXPECT_TRUE(c.satisfies(Value{4}));
  EXPECT_FALSE(c.satisfies(Value{5}));
}

TEST(Constraint, ContradictionDetected) {
  make({gt("x", 5), lt("x", 3)}, /*expect_ok=*/false);
  make({eq("x", 1), eq("x", 2)}, /*expect_ok=*/false);
  make({eq("x", 5), ne("x", 5)}, /*expect_ok=*/false);
}

TEST(Constraint, MixedDomainsUnsatisfiable) {
  make({gt("x", 5), eq("x", "abc")}, /*expect_ok=*/false);
}

TEST(Constraint, EqualityTightensToPoint) {
  const auto c = make({eq("x", 7)});
  EXPECT_TRUE(c.satisfies(Value{7}));
  EXPECT_FALSE(c.satisfies(Value{8}));
}

TEST(Constraint, DomainPinRejectsOtherDomain) {
  const auto c = make({ge("x", 0)});
  EXPECT_FALSE(c.satisfies(Value{"zzz"}));
}

// --- covering ---------------------------------------------------------------

TEST(ConstraintCovers, WiderIntervalCoversNarrower) {
  const auto wide = make({ge("x", 0), le("x", 100)});
  const auto narrow = make({ge("x", 10), le("x", 20)});
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
}

TEST(ConstraintCovers, EqualIntervalsCoverMutually) {
  const auto a = make({ge("x", 0), le("x", 10)});
  const auto b = make({ge("x", 0), le("x", 10)});
  EXPECT_TRUE(a.covers(b));
  EXPECT_TRUE(b.covers(a));
}

TEST(ConstraintCovers, OpenVsClosedBoundary) {
  const auto closed = make({ge("x", 0), le("x", 10)});
  const auto open = make({gt("x", 0), lt("x", 10)});
  EXPECT_TRUE(closed.covers(open));
  EXPECT_FALSE(open.covers(closed));  // open rejects 0 and 10
}

TEST(ConstraintCovers, UnconstrainedCoversAll) {
  Constraint any;
  EXPECT_TRUE(any.covers(make({eq("x", 1)})));
  EXPECT_FALSE(make({eq("x", 1)}).covers(any));
}

TEST(ConstraintCovers, ExclusionBreaksCovering) {
  const auto holed = make({ge("x", 0), le("x", 100), ne("x", 50)});
  const auto inner = make({ge("x", 40), le("x", 60)});
  EXPECT_FALSE(holed.covers(inner));  // inner admits 50, holed rejects it
  const auto inner_with_hole = make({ge("x", 40), le("x", 60), ne("x", 50)});
  EXPECT_TRUE(holed.covers(inner_with_hole));
}

TEST(ConstraintCovers, DifferentDomainsDoNotCover) {
  const auto nums = make({ge("x", 0)});
  const auto strs = make({ge("x", "a")});
  EXPECT_FALSE(nums.covers(strs));
  EXPECT_FALSE(strs.covers(nums));
}

// --- intersection -----------------------------------------------------------

TEST(ConstraintIntersects, OverlappingIntervals) {
  const auto a = make({ge("x", 0), le("x", 10)});
  const auto b = make({ge("x", 5), le("x", 15)});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
}

TEST(ConstraintIntersects, DisjointIntervals) {
  const auto a = make({ge("x", 0), le("x", 10)});
  const auto b = make({ge("x", 11), le("x", 20)});
  EXPECT_FALSE(a.intersects(b));
}

TEST(ConstraintIntersects, TouchingAtPoint) {
  const auto a = make({ge("x", 0), le("x", 10)});
  const auto b = make({ge("x", 10), le("x", 20)});
  EXPECT_TRUE(a.intersects(b));  // x = 10
  const auto b_open = make({gt("x", 10), le("x", 20)});
  EXPECT_FALSE(a.intersects(b_open));
}

TEST(ConstraintIntersects, PointOverlapKilledByExclusion) {
  const auto a = make({ge("x", 0), le("x", 10), ne("x", 10)});
  const auto b = make({ge("x", 10), le("x", 20)});
  EXPECT_FALSE(a.intersects(b));
}

TEST(ConstraintIntersects, UnconstrainedIntersectsAll) {
  Constraint any;
  EXPECT_TRUE(any.intersects(make({eq("x", 3)})));
  EXPECT_TRUE(make({eq("x", 3)}).intersects(any));
}

TEST(ConstraintIntersects, DifferentDomainsDisjoint) {
  EXPECT_FALSE(make({ge("x", 0)}).intersects(make({eq("x", "a")})));
}

// --- prefix -----------------------------------------------------------------

TEST(ConstraintPrefix, PrefixAsInterval) {
  const auto c = make({prefix("s", "ab")});
  EXPECT_TRUE(c.satisfies(Value{"ab"}));
  EXPECT_TRUE(c.satisfies(Value{"abz"}));
  EXPECT_FALSE(c.satisfies(Value{"ac"}));
  EXPECT_FALSE(c.satisfies(Value{"aa"}));
}

TEST(ConstraintPrefix, LongerPrefixCoveredByShorter) {
  const auto shorter = make({prefix("s", "ab")});
  const auto longer = make({prefix("s", "abc")});
  EXPECT_TRUE(shorter.covers(longer));
  EXPECT_FALSE(longer.covers(shorter));
}

TEST(ConstraintPrefix, DisjointPrefixesDoNotIntersect) {
  EXPECT_FALSE(make({prefix("s", "ab")}).intersects(make({prefix("s", "cd")})));
  EXPECT_TRUE(make({prefix("s", "ab")}).intersects(make({prefix("s", "abx")})));
}

}  // namespace
}  // namespace tmps
