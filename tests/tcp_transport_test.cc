// Integration tests over real loopback TCP sockets: the full stack —
// serialization, framing, connection management, routing, movement — on an
// actual byte stream.
#include <gtest/gtest.h>

#include <atomic>

#include "pubsub/workload.h"
#include "transport/tcp_transport.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;
constexpr ClientId kPublisher = 600;

BrokerConfig no_covering() {
  BrokerConfig bc;
  bc.subscription_covering = false;
  bc.advertisement_covering = false;
  return bc;
}

class TcpTest : public ::testing::Test {
 protected:
  TcpTest() : overlay_(Overlay::chain(5)), net_(overlay_, 0, no_covering()) {
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      net_.engine(b).set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            std::lock_guard lock(mu_);
            deliveries_.emplace_back(c, p.id());
          });
    }
    started_ = net_.start();
  }
  ~TcpTest() override { net_.stop(); }

  int delivered(ClientId c, PublicationId id) {
    std::lock_guard lock(mu_);
    int n = 0;
    for (const auto& [cc, pid] : deliveries_) {
      if (cc == c && pid == id) ++n;
    }
    return n;
  }

  Overlay overlay_;
  TcpTransport net_;
  bool started_ = false;
  std::mutex mu_;
  std::vector<std::pair<ClientId, PublicationId>> deliveries_;
};

TEST_F(TcpTest, StartsAndAssignsPorts) {
  ASSERT_TRUE(started_);
  std::set<std::uint16_t> ports;
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_GT(net_.port_of(b), 0);
    ports.insert(net_.port_of(b));
  }
  EXPECT_EQ(ports.size(), 5u) << "every broker has its own port";
}

TEST_F(TcpTest, PubSubOverRealSockets) {
  ASSERT_TRUE(started_);
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  net_.drain();
  net_.run_on(5, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kMover);
    e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2), out);
  });
  net_.drain();
  const Publication p = make_publication({kPublisher, 1}, 100, 0);
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  net_.drain();
  EXPECT_EQ(delivered(kMover, p.id()), 1);
  EXPECT_EQ(net_.decode_failures(), 0u);
  // Frames were actually counted on the wire.
  EXPECT_GT(net_.stats().total_messages(), 0u);
}

TEST_F(TcpTest, MovementTransactionOverRealSockets) {
  ASSERT_TRUE(started_);
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  net_.run_on(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kMover);
    e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2), out);
  });
  net_.drain();

  std::atomic<TxnId> txn{kNoTxn};
  net_.run_on(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 5, out);
  });
  net_.drain();

  ASSERT_NE(txn.load(), kNoTxn);
  net_.run_on(2, [&](MobilityEngine& e, Broker::Outputs&) {
    EXPECT_EQ(e.source_state(txn), SourceCoordState::Commit);
    EXPECT_EQ(e.find_client(kMover), nullptr);
  });
  net_.run_on(5, [&](MobilityEngine& e, Broker::Outputs&) {
    ASSERT_NE(e.find_client(kMover), nullptr);
    EXPECT_EQ(e.find_client(kMover)->state(), ClientState::Started);
  });

  const Publication p = make_publication({kPublisher, 2}, 100, 0);
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  net_.drain();
  EXPECT_EQ(delivered(kMover, p.id()), 1);
  EXPECT_EQ(net_.decode_failures(), 0u);
}

TEST_F(TcpTest, ManyPublicationsNoLossNoDup) {
  ASSERT_TRUE(started_);
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  net_.run_on(4, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kMover);
    e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 1), out);
  });
  net_.drain();
  constexpr int kN = 200;
  for (int i = 0; i < kN; ++i) {
    net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(kPublisher,
                make_publication({kPublisher, static_cast<std::uint32_t>(
                                                  100 + i)},
                                 i % 10000, 0),
                out);
    });
  }
  net_.drain();
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(
        delivered(kMover, {kPublisher, static_cast<std::uint32_t>(100 + i)}),
        1)
        << i;
  }
}

}  // namespace
}  // namespace tmps
