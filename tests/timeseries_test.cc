// The windowed time-series ring: baseline tick, counter deltas/rates,
// gauge values, histogram windowed percentiles, capacity eviction, prefix
// selection, NDJSON serialization, and the scenario sink end-to-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/scenario.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace tmps {
namespace {

using obs::MetricKind;
using obs::MetricsRegistry;
using obs::TimeSeriesRing;
using obs::TimeWindow;

const obs::TimePoint* find_point(const TimeWindow& w, const std::string& name) {
  for (const obs::TimePoint& p : w.points) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

TEST(TimeSeries, FirstTickIsBaselineOnly) {
  MetricsRegistry mr;
  mr.counter("c_total").inc(10);
  TimeSeriesRing ring(&mr);
  ring.tick(1.0);
  EXPECT_EQ(ring.window_count(), 0u);  // baseline establishes `prev` only
  mr.counter("c_total").inc(5);
  ring.tick(2.0);
  const auto wins = ring.windows();
  ASSERT_EQ(wins.size(), 1u);
  EXPECT_DOUBLE_EQ(wins[0].t0, 1.0);
  EXPECT_DOUBLE_EQ(wins[0].t1, 2.0);
  const obs::TimePoint* p = find_point(wins[0], "c_total");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, MetricKind::Counter);
  // The window delta is the 5 new increments, not the absolute 15.
  EXPECT_DOUBLE_EQ(p->delta, 5.0);
}

TEST(TimeSeries, HistogramWindowedPercentilesUseOnlyWindowSamples) {
  MetricsRegistry mr;
  obs::Histogram& h = mr.histogram("lat_seconds");
  TimeSeriesRing ring(&mr);
  // Window 1: fast samples only.
  ring.tick(0.0);
  for (int i = 0; i < 100; ++i) h.observe(0.001);
  ring.tick(1.0);
  // Window 2: slow samples only — its p50 must reflect 0.1 s, not the 0.001 s
  // bulk accumulated before the window.
  for (int i = 0; i < 100; ++i) h.observe(0.1);
  ring.tick(2.0);

  const auto wins = ring.windows();
  ASSERT_EQ(wins.size(), 2u);
  const obs::TimePoint* w1 = find_point(wins[0], "lat_seconds");
  const obs::TimePoint* w2 = find_point(wins[1], "lat_seconds");
  ASSERT_NE(w1, nullptr);
  ASSERT_NE(w2, nullptr);
  EXPECT_DOUBLE_EQ(w1->delta, 100.0);
  EXPECT_DOUBLE_EQ(w2->delta, 100.0);
  EXPECT_NEAR(w1->p50, 0.001, 0.001 * 0.2);
  EXPECT_NEAR(w2->p50, 0.1, 0.1 * 0.2);
}

TEST(TimeSeries, GaugesReportAbsoluteValues) {
  MetricsRegistry mr;
  obs::Gauge& g = mr.gauge("depth");
  TimeSeriesRing ring(&mr);
  ring.tick(0.0);
  g.set(7.5);
  ring.tick(1.0);
  const auto wins = ring.windows();
  ASSERT_EQ(wins.size(), 1u);
  const obs::TimePoint* p = find_point(wins[0], "depth");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, MetricKind::Gauge);
  EXPECT_DOUBLE_EQ(p->value, 7.5);
}

TEST(TimeSeries, CapacityEvictsOldestWindows) {
  MetricsRegistry mr;
  mr.counter("c_total");
  TimeSeriesRing ring(&mr, /*capacity=*/3);
  for (int t = 0; t <= 10; ++t) ring.tick(t);
  const auto wins = ring.windows();
  ASSERT_EQ(wins.size(), 3u);
  EXPECT_DOUBLE_EQ(wins.front().t0, 7.0);
  EXPECT_DOUBLE_EQ(wins.back().t1, 10.0);
}

TEST(TimeSeries, PrefixSelectionFiltersSeries) {
  MetricsRegistry mr;
  mr.counter("broker_messages_total").inc();
  mr.counter("sim_messages_total").inc();
  TimeSeriesRing ring(&mr);
  ring.set_prefixes({"broker_"});
  ring.tick(0.0);
  mr.counter("broker_messages_total").inc();
  mr.counter("sim_messages_total").inc();
  ring.tick(1.0);
  const auto wins = ring.windows();
  ASSERT_EQ(wins.size(), 1u);
  EXPECT_NE(find_point(wins[0], "broker_messages_total"), nullptr);
  EXPECT_EQ(find_point(wins[0], "sim_messages_total"), nullptr);
}

TEST(TimeSeries, NdjsonCarriesRatesAndPercentiles) {
  MetricsRegistry mr;
  obs::Counter& c = mr.counter("msgs_total", {{"broker", "1"}});
  obs::Histogram& h = mr.histogram("lat_seconds");
  TimeSeriesRing ring(&mr);
  ring.tick(0.0);
  c.inc(20);
  h.observe(0.01);
  ring.tick(2.0);

  std::ostringstream os;
  ring.write_ndjson(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"t0\":0"), std::string::npos) << out;
  EXPECT_NE(out.find("\"t1\":2"), std::string::npos) << out;
  EXPECT_NE(out.find("\"name\":\"msgs_total\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"broker\":\"1\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"kind\":\"counter\""), std::string::npos) << out;
  // 20 increments over a 2 s window = rate 10/s.
  EXPECT_NE(out.find("\"rate\":10"), std::string::npos) << out;
  EXPECT_NE(out.find("\"kind\":\"histogram\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"p50\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"p99\":"), std::string::npos) << out;
  // Exactly one window line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(TimeSeriesScenario, ScenarioWritesTimeseriesSink) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "tmps_timeseries_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  ScenarioConfig cfg;
  cfg.total_clients = 20;
  cfg.moving_clients = 2;
  cfg.duration = 30.0;
  cfg.warmup = 0.0;
  cfg.broker.obs.timeseries_interval = 5.0;
  cfg.timeseries_path = dir + "/timeseries.jsonl";
  Scenario s(cfg);
  s.run();

  EXPECT_GT(s.net().timeseries().window_count(), 2u);
  std::ifstream is(cfg.timeseries_path);
  ASSERT_TRUE(is.good());
  std::string first;
  std::getline(is, first);
  EXPECT_NE(first.find("\"series\":["), std::string::npos) << first;
  EXPECT_NE(first.find("broker_publications_processed_total"),
            std::string::npos)
      << first;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace tmps
