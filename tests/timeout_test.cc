// Non-blocking (timeout-driven) movement transaction resolution, per the
// paper's bounded-delay network model (Sec. 4.1): when protocol messages
// are delayed beyond the bound, coordinators abort conservatively and the
// shadow routing state unwinds; the client always survives at the source.
#include <gtest/gtest.h>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;
constexpr ClientId kPublisher = 600;

struct TimeoutFixture {
  explicit TimeoutFixture(MobilityConfig cfg) : overlay(Overlay::chain(5)),
                                                net(overlay) {
    for (BrokerId b = 1; b <= 5; ++b) {
      engines.push_back(
          std::make_unique<MobilityEngine>(net.broker(b), net, cfg));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
      engines.back()->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            deliveries.emplace_back(c, p.id());
          });
    }
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kPublisher);
      e.advertise(kPublisher, full_space_advertisement(), out);
    });
    run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kMover);
      e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2), out);
    });
  }

  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
    net.run();
  }

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::vector<std::pair<ClientId, PublicationId>> deliveries;
};

MobilityConfig with_timeouts(double negotiate, double prepare) {
  MobilityConfig cfg;
  cfg.negotiate_timeout = negotiate;
  cfg.prepare_timeout = prepare;
  return cfg;
}

TEST(Timeout, NegotiateTimeoutAbortsAndClientResumes) {
  TimeoutFixture f(with_timeouts(0.5, 0.0));
  // The target broker is down long past the negotiate timeout.
  f.net.pause_broker(5, 2.0);
  TxnId txn = kNoTxn;
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 5, out);
  });
  EXPECT_EQ(f.engines[1]->source_state(txn), SourceCoordState::Abort);
  ASSERT_NE(f.engines[1]->find_client(kMover), nullptr);
  EXPECT_EQ(f.engines[1]->find_client(kMover)->state(), ClientState::Started);
}

TEST(Timeout, LateApproveAfterAbortIsUnwound) {
  TimeoutFixture f(with_timeouts(0.1, 0.0));
  // Delay the whole path so the approve arrives long after the source's
  // negotiate timeout fired.
  f.net.pause_broker(4, 1.0);
  TxnId txn = kNoTxn;
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 5, out);
  });
  // Source aborted; the late approve was answered with an abort that
  // unwound the shadow configuration everywhere and dismantled the target
  // copy.
  EXPECT_EQ(f.engines[1]->source_state(txn), SourceCoordState::Abort);
  EXPECT_EQ(f.engines[4]->target_state(txn), TargetCoordState::Abort);
  EXPECT_EQ(f.engines[4]->find_client(kMover), nullptr);
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_FALSE(f.net.broker(b).tables().has_pending_shadows()) << b;
  }
  // Exactly one copy of the client, started, at the source.
  int copies = 0;
  for (auto& e : f.engines) {
    if (e->find_client(kMover)) ++copies;
  }
  EXPECT_EQ(copies, 1);
  EXPECT_EQ(f.engines[1]->find_client(kMover)->state(), ClientState::Started);
}

TEST(Timeout, DeliveryIntactAfterAbortedMove) {
  TimeoutFixture f(with_timeouts(0.1, 0.0));
  f.net.pause_broker(4, 1.0);
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.initiate_move(kMover, 5, out);
  });
  const Publication p = make_publication({kPublisher, 7}, 100, 0);
  f.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  int n = 0;
  for (const auto& [c, id] : f.deliveries) {
    if (c == kMover && id == p.id()) ++n;
  }
  EXPECT_EQ(n, 1);
}

TEST(Timeout, ClientCanMoveAgainAfterAbort) {
  TimeoutFixture f(with_timeouts(0.1, 0.0));
  f.net.pause_broker(4, 1.0);
  TxnId t1 = kNoTxn;
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    t1 = e.initiate_move(kMover, 5, out);
  });
  EXPECT_EQ(f.engines[1]->source_state(t1), SourceCoordState::Abort);
  // Second attempt with a healthy network succeeds.
  TxnId t2 = kNoTxn;
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    t2 = e.initiate_move(kMover, 5, out);
  });
  EXPECT_EQ(f.engines[1]->source_state(t2), SourceCoordState::Commit);
  ASSERT_NE(f.engines[4]->find_client(kMover), nullptr);
}

TEST(Timeout, TargetPrepareTimeoutUnwindsTargetCopy) {
  // The state message is delayed past the target's prepare timeout: the
  // target aborts conservatively and tells the source, whose client
  // resumes. (Requires the bounded-delay assumption to be *violated* — this
  // is the conservative-abort safety behaviour.)
  TimeoutFixture f(with_timeouts(0.0, 0.3));
  // Pause the source broker right after it will receive the approve, so its
  // state message is held back beyond the target's prepare timeout.
  f.net.events().schedule_at(0.020, [&f] { f.net.pause_broker(2, 2.0); });
  TxnId txn = kNoTxn;
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 5, out);
  });
  // Whichever way the race resolves, safety holds: exactly one started copy
  // and no shadow leaks.
  int copies = 0;
  for (auto& e : f.engines) {
    const ClientStub* stub = e->find_client(kMover);
    if (stub) {
      ++copies;
      EXPECT_EQ(stub->state(), ClientState::Started);
    }
  }
  EXPECT_EQ(copies, 1);
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_FALSE(f.net.broker(b).tables().has_pending_shadows()) << b;
  }
  (void)txn;
}

TEST(Timeout, PrepareRetryIsIdempotentUnderDelayedAck) {
  // The ack is slow; the source retransmits the state message. Duplicates
  // must be harmless.
  TimeoutFixture f(with_timeouts(0.0, 0.2));
  // Slow the target so the ack comes back after a retry fired.
  f.net.events().schedule_at(0.025, [&f] { f.net.pause_broker(5, 0.5); });
  TxnId txn = kNoTxn;
  f.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(kMover, 5, out);
  });
  EXPECT_EQ(f.engines[1]->source_state(txn), SourceCoordState::Commit);
  ASSERT_NE(f.engines[4]->find_client(kMover), nullptr);
  EXPECT_EQ(f.engines[4]->find_client(kMover)->state(), ClientState::Started);
  // Exactly-once delivery still holds after the duplicate state/ack round.
  const Publication p = make_publication({kPublisher, 7}, 100, 0);
  f.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  int n = 0;
  for (const auto& [c, id] : f.deliveries) {
    if (c == kMover && id == p.id()) ++n;
  }
  EXPECT_EQ(n, 1);
}

}  // namespace
}  // namespace tmps
