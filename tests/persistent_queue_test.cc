#include "txn/persistent_queue.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace tmps {
namespace {

namespace fs = std::filesystem;

class PersistentQueueTest : public ::testing::Test {
 protected:
  PersistentQueueTest() {
    dir_ = fs::temp_directory_path() /
           ("tmps_pq_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  ~PersistentQueueTest() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(PersistentQueueTest, FifoOrder) {
  PersistentQueue q(dir_);
  q.push("a");
  q.push("b");
  q.push("c");
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front(), "a");
  q.pop();
  EXPECT_EQ(q.front(), "b");
  q.pop();
  EXPECT_EQ(q.front(), "c");
  q.pop();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.front(), std::nullopt);
}

TEST_F(PersistentQueueTest, PopOnEmptyThrows) {
  PersistentQueue q(dir_);
  EXPECT_THROW(q.pop(), std::out_of_range);
}

TEST_F(PersistentQueueTest, SurvivesReopen) {
  {
    PersistentQueue q(dir_);
    q.push("one");
    q.push("two");
    q.pop();
  }
  PersistentQueue q(dir_);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front(), "two");
}

TEST_F(PersistentQueueTest, EmptyRecoveryIsClean) {
  { PersistentQueue q(dir_); }
  PersistentQueue q(dir_);
  EXPECT_TRUE(q.empty());
  q.push("x");
  EXPECT_EQ(q.front(), "x");
}

TEST_F(PersistentQueueTest, BinaryPayloads) {
  std::string blob(1024, '\0');
  for (std::size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(i * 31);
  }
  {
    PersistentQueue q(dir_);
    q.push(blob);
  }
  PersistentQueue q(dir_);
  EXPECT_EQ(q.front(), blob);
}

TEST_F(PersistentQueueTest, TornTailIsDiscarded) {
  {
    PersistentQueue q(dir_);
    q.push("good-1");
    q.push("good-2");
  }
  // Simulate a crash mid-append: chop bytes off the journal tail.
  const auto journal = dir_ / "journal.log";
  const auto full = fs::file_size(journal);
  fs::resize_file(journal, full - 3);

  PersistentQueue q(dir_);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front(), "good-1");
}

TEST_F(PersistentQueueTest, CorruptRecordStopsReplay) {
  {
    PersistentQueue q(dir_);
    q.push("aaaa");
    q.push("bbbb");
  }
  // Flip a payload byte of the second record.
  const auto journal = dir_ / "journal.log";
  std::fstream f(journal, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(-2, std::ios::end);
  f.put('X');
  f.close();

  PersistentQueue q(dir_);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front(), "aaaa");
}

TEST_F(PersistentQueueTest, CompactDropsConsumed) {
  {
    PersistentQueue q(dir_);
    for (int i = 0; i < 100; ++i) q.push("record-" + std::to_string(i));
    for (int i = 0; i < 90; ++i) q.pop();
    const auto before = fs::file_size(dir_ / "journal.log");
    q.compact();
    const auto after = fs::file_size(dir_ / "journal.log");
    EXPECT_LT(after, before / 2);
    EXPECT_EQ(q.size(), 10u);
    EXPECT_EQ(q.front(), "record-90");
    q.push("post-compact");
  }
  PersistentQueue q(dir_);
  EXPECT_EQ(q.size(), 11u);
  EXPECT_EQ(q.front(), "record-90");
}

TEST_F(PersistentQueueTest, SequenceNumbersMonotonicAcrossReopen) {
  std::uint64_t first_next;
  {
    PersistentQueue q(dir_);
    q.push("a");
    q.push("b");
    first_next = q.next_seq();
  }
  PersistentQueue q(dir_);
  EXPECT_EQ(q.next_seq(), first_next);
  q.push("c");
  EXPECT_EQ(q.next_seq(), first_next + 1);
}

TEST_F(PersistentQueueTest, ManyRecordsStress) {
  {
    PersistentQueue q(dir_);
    for (int i = 0; i < 5000; ++i) q.push(std::to_string(i));
    for (int i = 0; i < 2500; ++i) q.pop();
  }
  PersistentQueue q(dir_);
  EXPECT_EQ(q.size(), 2500u);
  EXPECT_EQ(q.front(), "2500");
}

TEST(Crc32, KnownVectors) {
  // CRC-32 (IEEE) of "123456789" is 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

}  // namespace
}  // namespace tmps
