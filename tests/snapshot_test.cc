// Table snapshots and checkpoint-based recovery.
#include "txn/snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "pubsub/workload.h"
#include "txn/durable_node.h"

namespace tmps {
namespace {

namespace fs = std::filesystem;

RoutingTables populated_tables() {
  RoutingTables rt;
  for (std::uint32_t i = 1; i <= 30; ++i) {
    const Subscription s{{100 + i, 1},
                         workload_filter(WorkloadKind::Covered,
                                         static_cast<int>(i % 10) + 1, i / 10)};
    auto& e = rt.upsert_sub(s, i % 3 == 0 ? Hop::of_client(100 + i)
                                          : Hop::of_broker(1 + i % 4));
    if (i % 2 == 0) e.forwarded_to.insert(Hop::of_broker(5));
    if (i % 5 == 0) e.forwarded_to.insert(Hop::of_broker(2));
  }
  rt.upsert_adv({{1, 1}, full_space_advertisement()}, Hop::of_broker(3))
      .forwarded_to.insert(Hop::of_broker(4));
  // One entry carrying shadow state.
  rt.install_sub_shadow({{999, 1}, workload_filter(WorkloadKind::Tree, 2, 0)},
                        Hop::of_broker(2), /*txn=*/42);
  return rt;
}

bool entries_equal(const RoutingTables& a, const RoutingTables& b) {
  if (a.sub_count() != b.sub_count() || a.adv_count() != b.adv_count()) {
    return false;
  }
  for (const auto& [id, e] : a.prt()) {
    const SubEntry* o = b.find_sub(id);
    if (!o || o->lasthop != e.lasthop ||
        o->forwarded_to != e.forwarded_to ||
        o->shadow_lasthop != e.shadow_lasthop ||
        o->shadow_txn != e.shadow_txn || o->shadow_only != e.shadow_only ||
        !(o->sub == e.sub)) {
      return false;
    }
  }
  for (const auto& [id, e] : a.srt()) {
    const AdvEntry* o = b.find_adv(id);
    if (!o || o->lasthop != e.lasthop || !(o->adv == e.adv)) return false;
  }
  return true;
}

TEST(Snapshot, RoundTripPreservesEverything) {
  const RoutingTables rt = populated_tables();
  const std::string bytes = snapshot_tables(rt);
  RoutingTables back;
  ASSERT_TRUE(restore_tables(bytes, back));
  EXPECT_TRUE(entries_equal(rt, back));
}

TEST(Snapshot, RestoredTablesMatchPublications) {
  const RoutingTables rt = populated_tables();
  RoutingTables back;
  ASSERT_TRUE(restore_tables(snapshot_tables(rt), back));
  // The rebuilt match index must behave identically.
  for (std::int64_t g = 0; g <= 3; ++g) {
    for (std::int64_t x = 0; x <= 10000; x += 777) {
      const Publication p = make_publication({5, 5}, x, g);
      EXPECT_EQ(rt.matching_subs(p).size(), back.matching_subs(p).size())
          << "x=" << x << " g=" << g;
    }
  }
}

TEST(Snapshot, EmptyTables) {
  RoutingTables rt, back;
  ASSERT_TRUE(restore_tables(snapshot_tables(rt), back));
  EXPECT_EQ(back.sub_count(), 0u);
  EXPECT_EQ(back.adv_count(), 0u);
}

TEST(Snapshot, MalformedInputRejectedCleanly) {
  RoutingTables back;
  EXPECT_FALSE(restore_tables("garbage", back));
  EXPECT_EQ(back.sub_count(), 0u);
  const std::string good = snapshot_tables(populated_tables());
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, good.size() / 2,
                          good.size() - 1}) {
    EXPECT_FALSE(
        restore_tables(std::string_view(good).substr(0, cut), back))
        << cut;
    EXPECT_EQ(back.sub_count(), 0u) << "failed restore must leave empty";
  }
  // Trailing garbage rejected too.
  EXPECT_FALSE(restore_tables(good + "x", back));
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : overlay_(Overlay::chain(3)), origin_(1, &overlay_) {
    dir_ = fs::temp_directory_path() /
           ("tmps_ckpt_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    fs::remove_all(dir_);
  }
  ~CheckpointTest() override { fs::remove_all(dir_); }

  Message adv_msg() {
    Message m;
    m.id = origin_.next_message_id();
    m.payload = AdvertiseMsg{{{200, 1}, full_space_advertisement()}};
    return m;
  }
  Message sub_msg(std::uint32_t seq) {
    Message m;
    m.id = origin_.next_message_id();
    m.payload = SubscribeMsg{
        {{100, seq}, workload_filter(WorkloadKind::Covered, 2)}};
    return m;
  }

  Overlay overlay_;
  Broker origin_;
  fs::path dir_;
};

TEST_F(CheckpointTest, CheckpointShrinksJournal) {
  DurableNode node(2, &overlay_, dir_);
  node.deliver(3, adv_msg());
  for (std::uint32_t i = 1; i <= 50; ++i) node.deliver(1, sub_msg(i));
  const auto before = fs::file_size(dir_ / "journal.log");
  node.checkpoint();
  const auto after = fs::file_size(dir_ / "journal.log");
  EXPECT_LT(after, before / 4);
  EXPECT_TRUE(fs::exists(dir_ / "snapshot"));
}

TEST_F(CheckpointTest, RecoveryFromCheckpointRestoresState) {
  {
    DurableNode node(2, &overlay_, dir_);
    node.deliver(3, adv_msg());
    for (std::uint32_t i = 1; i <= 20; ++i) node.deliver(1, sub_msg(i));
    node.checkpoint();
    // Post-checkpoint activity lands in the journal tail.
    for (std::uint32_t i = 21; i <= 25; ++i) node.deliver(1, sub_msg(i));
  }
  DurableNode node(2, &overlay_, dir_);
  node.recover();
  EXPECT_EQ(node.broker().tables().sub_count(), 25u);
  EXPECT_EQ(node.broker().tables().adv_count(), 1u);
}

TEST_F(CheckpointTest, UnprocessedTailAfterCheckpointReplaysWithOutputs) {
  {
    DurableNode node(2, &overlay_, dir_);
    node.deliver(3, adv_msg());
    node.checkpoint();
    node.journal_only(1, sub_msg(1));  // crash before processing
  }
  DurableNode node(2, &overlay_, dir_);
  const auto out = node.recover();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, 3u);  // forwarded towards the advertiser
  EXPECT_EQ(node.broker().tables().sub_count(), 1u);
}

TEST_F(CheckpointTest, RepeatedCheckpointsAndRecoveries) {
  {
    DurableNode node(2, &overlay_, dir_);
    node.deliver(3, adv_msg());
    for (std::uint32_t i = 1; i <= 10; ++i) {
      node.deliver(1, sub_msg(i));
      if (i % 3 == 0) node.checkpoint();
    }
  }
  for (int round = 0; round < 3; ++round) {
    DurableNode node(2, &overlay_, dir_);
    node.recover();
    node.checkpoint();
    EXPECT_EQ(node.broker().tables().sub_count(), 10u) << round;
  }
}

TEST_F(CheckpointTest, CorruptSnapshotFallsBackToEmptyPlusTail) {
  {
    DurableNode node(2, &overlay_, dir_);
    node.deliver(3, adv_msg());
    node.checkpoint();
    node.deliver(1, sub_msg(1));
  }
  // Corrupt the snapshot.
  {
    std::ofstream f(dir_ / "snapshot",
                    std::ios::binary | std::ios::trunc);
    f << "not a snapshot";
  }
  DurableNode node(2, &overlay_, dir_);
  node.recover();  // must not crash; pre-checkpoint state is lost
  // Only the post-checkpoint subscription is recovered.
  EXPECT_EQ(node.broker().tables().sub_count(), 1u);
  EXPECT_EQ(node.broker().tables().adv_count(), 0u);
}

}  // namespace
}  // namespace tmps
