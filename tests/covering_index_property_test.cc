// Randomized equivalence test of the covering index against the full-scan
// oracles: every workload shape of Fig. 7 (plus adversarial rest-list and
// unsatisfiable filters), random table mutations through the delta API, raw
// forwarded_to flips and movement-shadow install/commit/abort — after every
// mutation the index must pass its structural consistency check, and all
// index-backed covering queries must return exactly what the `*_scan`
// reference implementations return.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>
#include <vector>

#include "core/scenario.h"
#include "pubsub/workload.h"
#include "routing/routing_tables.h"

namespace tmps {
namespace {

std::vector<EntityId> ids_of(const std::vector<SubEntry*>& es) {
  std::vector<EntityId> out;
  for (const SubEntry* e : es) out.push_back(e->sub.id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EntityId> ids_of(const std::vector<AdvEntry*>& es) {
  std::vector<EntityId> out;
  for (const AdvEntry* e : es) out.push_back(e->adv.id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EntityId> ids_of(const std::vector<const SubEntry*>& es) {
  std::vector<EntityId> out;
  for (const SubEntry* e : es) out.push_back(e->sub.id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EntityId> ids_of(const std::vector<const AdvEntry*>& es) {
  std::vector<EntityId> out;
  for (const AdvEntry* e : es) out.push_back(e->adv.id);
  std::sort(out.begin(), out.end());
  return out;
}

/// Index answers must equal the scan oracles exactly for every entry and
/// every probed link.
void expect_index_matches_scans(RoutingTables& rt) {
  ASSERT_TRUE(rt.use_cover_index());
  const std::vector<Hop> links = {Hop::of_broker(1), Hop::of_broker(2),
                                  Hop::of_broker(3), Hop::of_broker(9),
                                  Hop::of_client(1), Hop::of_client(2)};

  std::vector<EntityId> sub_ids, adv_ids;
  for (const auto& [id, e] : rt.prt()) sub_ids.push_back(id);
  for (const auto& [id, e] : rt.srt()) adv_ids.push_back(id);

  for (const EntityId& id : sub_ids) {
    SubEntry* e = rt.find_sub(id);
    ASSERT_NE(e, nullptr);
    const Filter f = e->sub.filter;
    EXPECT_EQ(ids_of(rt.intersecting_advs(f)),
              ids_of(rt.intersecting_advs_scan(f)));
    for (Hop link : links) {
      EXPECT_EQ(rt.sub_covered_on_link(id, f, link),
                rt.sub_covered_on_link_scan(id, f, link))
          << to_string(id);
      EXPECT_EQ(ids_of(rt.strictly_covered_subs_on_link(id, f, link)),
                ids_of(rt.strictly_covered_subs_on_link_scan(id, f, link)))
          << to_string(id);
      EXPECT_EQ(ids_of(rt.unquenched_subs_on_link(*e, link)),
                ids_of(rt.unquenched_subs_on_link_scan(*e, link)))
          << to_string(id);
      EXPECT_EQ(rt.link_needed_for(f, link), rt.link_needed_for_scan(f, link))
          << to_string(id);
    }
  }
  for (const EntityId& id : adv_ids) {
    AdvEntry* e = rt.find_adv(id);
    ASSERT_NE(e, nullptr);
    const Filter f = e->adv.filter;
    EXPECT_EQ(ids_of(rt.subs_intersecting(f)),
              ids_of(rt.subs_intersecting_scan(f)));
    for (Hop link : links) {
      EXPECT_EQ(rt.adv_covered_on_link(id, f, link),
                rt.adv_covered_on_link_scan(id, f, link))
          << to_string(id);
      EXPECT_EQ(ids_of(rt.strictly_covered_advs_on_link(id, f, link)),
                ids_of(rt.strictly_covered_advs_on_link_scan(id, f, link)))
          << to_string(id);
      EXPECT_EQ(ids_of(rt.unquenched_advs_on_link(*e, link)),
                ids_of(rt.unquenched_advs_on_link_scan(*e, link)))
          << to_string(id);
    }
  }
}

class CoverIndexProperty : public ::testing::TestWithParam<WorkloadKind> {};

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CoverIndexProperty,
                         ::testing::Values(WorkloadKind::Covered,
                                           WorkloadKind::Chained,
                                           WorkloadKind::Tree,
                                           WorkloadKind::Distinct,
                                           WorkloadKind::Random),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST_P(CoverIndexProperty, RandomMutationsAgreeWithScanOracles) {
  const WorkloadKind kind = GetParam();
  std::mt19937_64 rng(0xC0FEu + static_cast<std::uint64_t>(kind));
  RoutingTables rt;

  struct Live {
    EntityId id;
    Filter filter;
  };
  struct Pending {
    EntityId id;
    Filter filter;
    TxnId txn;
    bool fresh;  // entry exists only as shadow state
    bool adv;
  };
  std::vector<Live> subs, advs;
  std::vector<Pending> pending;
  std::uint32_t seq = 0;
  TxnId next_txn = 100;

  const auto rand_link = [&](bool brokers_only = false) {
    const auto r = rng() % (brokers_only ? 3 : 5);
    return r < 3 ? Hop::of_broker(static_cast<BrokerId>(1 + r))
                 : Hop::of_client(static_cast<ClientId>(r - 2));
  };
  const auto rand_filter = [&]() -> Filter {
    const auto roll = rng() % 16;
    if (roll == 0) {  // unsatisfiable
      return Filter::build().attr("x").eq(1).eq(2);
    }
    if (roll <= 2) {  // no equality predicate: exercises the rest list
      const std::int64_t lo = static_cast<std::int64_t>(rng() % 5000);
      const std::int64_t hi = lo + 1 + static_cast<std::int64_t>(rng() % 3000);
      return Filter::build().attr("x").ge(lo).le(hi);
    }
    const int i = 1 + static_cast<int>(rng() % 10);
    const std::int64_t group = static_cast<std::int64_t>(rng() % 3);
    return workload_filter_at(kind, i, group, rng());
  };

  for (int step = 0; step < 250; ++step) {
    switch (rng() % 12) {
      case 0:
      case 1:
      case 2: {  // add a subscription through the delta API
        const Subscription s{{1000 + rng() % 20, ++seq}, rand_filter()};
        rt.add_sub(s, rand_link());
        subs.push_back({s.id, s.filter});
        break;
      }
      case 3:
      case 4: {  // remove one (occasionally from the wrong hop)
        if (subs.empty()) break;
        const std::size_t k = rng() % subs.size();
        const SubEntry* e = rt.find_sub(subs[k].id);
        ASSERT_NE(e, nullptr);
        const bool wrong_hop = rng() % 8 == 0;
        const RoutingDelta d = rt.remove_sub(
            subs[k].id, wrong_hop ? Hop::of_broker(77) : e->lasthop);
        if (d.applied) subs.erase(subs.begin() + static_cast<long>(k));
        break;
      }
      case 5: {  // add an advertisement (flooded over the broker links)
        const Advertisement a{{2000 + rng() % 10, ++seq}, rand_filter()};
        rt.add_adv(a, rand_link(),
                   {Hop::of_broker(1), Hop::of_broker(2), Hop::of_broker(3)});
        advs.push_back({a.id, a.filter});
        break;
      }
      case 6: {
        if (advs.empty()) break;
        const std::size_t k = rng() % advs.size();
        const AdvEntry* e = rt.find_adv(advs[k].id);
        ASSERT_NE(e, nullptr);
        const RoutingDelta d = rt.remove_adv(advs[k].id, e->lasthop);
        if (d.applied) advs.erase(advs.begin() + static_cast<long>(k));
        break;
      }
      case 7:
      case 8: {  // raw forwarded_to flip: the index must not care
        if (subs.empty()) break;
        SubEntry* e = rt.find_sub(subs[rng() % subs.size()].id);
        ASSERT_NE(e, nullptr);
        const Hop link = rand_link(/*brokers_only=*/true);
        if (e->forwarded_to.erase(link) == 0) e->forwarded_to.insert(link);
        break;
      }
      case 9: {  // install a movement shadow (fresh or on an existing entry)
        const TxnId txn = ++next_txn;
        if (!subs.empty() && rng() % 2 == 0) {
          const Live& l = subs[rng() % subs.size()];
          if (rt.find_sub(l.id)->shadow_txn != kNoTxn) break;  // one at a time
          rt.install_sub_shadow({l.id, l.filter}, rand_link(), txn);
          pending.push_back({l.id, l.filter, txn, false, false});
        } else {
          const Subscription s{{3000 + rng() % 10, ++seq}, rand_filter()};
          rt.install_sub_shadow(s, rand_link(), txn);
          pending.push_back({s.id, s.filter, txn, true, false});
        }
        break;
      }
      case 10: {  // adv shadow
        const TxnId txn = ++next_txn;
        const Advertisement a{{4000 + rng() % 10, ++seq}, rand_filter()};
        rt.install_adv_shadow(a, rand_link(), txn);
        pending.push_back({a.id, a.filter, txn, true, true});
        break;
      }
      case 11: {  // resolve a pending shadow: commit or abort
        if (pending.empty()) break;
        const std::size_t k = rng() % pending.size();
        const Pending p = pending[k];
        pending.erase(pending.begin() + static_cast<long>(k));
        const bool commit = rng() % 2 == 0;
        if (p.adv) {
          commit ? rt.commit_adv_shadow(p.id, p.txn)
                 : rt.abort_adv_shadow(p.id, p.txn);
          if (commit && p.fresh) advs.push_back({p.id, p.filter});
        } else {
          commit ? rt.commit_shadow(p.id, p.txn)
                 : rt.abort_shadow(p.id, p.txn);
          if (commit && p.fresh) subs.push_back({p.id, p.filter});
        }
        break;
      }
    }

    const std::vector<std::string> violations = rt.check_cover_index();
    ASSERT_TRUE(violations.empty())
        << "step " << step << ": " << violations.front();
    if (step % 10 == 0) expect_index_matches_scans(rt);
    if (::testing::Test::HasFailure()) return;  // first divergence is enough
  }
  expect_index_matches_scans(rt);
}

// End-to-end: a small mobility scenario with the index enabled leaves every
// broker's covering index structurally consistent, and index answers still
// equal the scan oracles on the final tables.
TEST(CoverIndexScenarioTest, BrokersStayConsistentThroughMovements) {
  ScenarioConfig cfg;
  cfg.overlay = Overlay::paper_default();
  cfg.workload = WorkloadKind::Covered;
  cfg.total_clients = 40;
  cfg.duration = 80.0;
  cfg.warmup = 20.0;
  cfg.seed = 11;
  ASSERT_TRUE(cfg.broker.covering_index);  // default-on
  Scenario s(cfg);
  s.run();
  for (BrokerId b = 1; b <= cfg.overlay->broker_count(); ++b) {
    RoutingTables& rt = s.net().broker(b).tables();
    const std::vector<std::string> violations = rt.check_cover_index();
    EXPECT_TRUE(violations.empty())
        << "broker " << b << ": " << violations.front();
    expect_index_matches_scans(rt);
  }
}

}  // namespace
}  // namespace tmps
