// Unit tests for the control plane's estimator and planner (src/control):
// rate computation and smoothing, hysteresis, candidate filtering
// (cooldown, budget, in-flight), donor/target selection and the greedy
// stop conditions.
#include <gtest/gtest.h>

#include "control/balance_policy.h"
#include "control/load_estimator.h"
#include "routing/overlay.h"

namespace tmps::control {
namespace {

ControlConfig config() {
  ControlConfig cfg;
  cfg.enabled = true;
  cfg.ewma_alpha = 1.0;  // raw rates unless a test opts into smoothing
  cfg.imbalance_high = 1.5;
  cfg.imbalance_low = 1.1;
  cfg.client_cooldown = 30.0;
  cfg.max_moves_per_client = 2;
  cfg.max_moves_per_cycle = 4;
  cfg.path_penalty = 0.05;
  cfg.delivery_weight = 1.0;  // score = pub_rate only, easy to reason about
  cfg.pub_weight = 1.0;
  cfg.msg_weight = 0.0;
  cfg.table_weight = 0.0;
  cfg.queue_weight = 0.0;
  return cfg;
}

BrokerSignals sig(std::uint64_t pubs, std::uint64_t deliveries,
                  std::size_t clients) {
  BrokerSignals s;
  s.pubs = pubs;
  s.deliveries = deliveries;
  s.msgs = pubs;
  s.clients = clients;
  return s;
}

std::map<BrokerId, BrokerLoad> loads_of(
    std::initializer_list<std::pair<BrokerId, double>> scores,
    std::size_t clients_each = 4) {
  std::map<BrokerId, BrokerLoad> loads;
  for (const auto& [b, s] : scores) {
    BrokerLoad l;
    l.score = s;
    l.pub_rate = s;
    l.clients = clients_each;
    loads[b] = l;
  }
  return loads;
}

ClientInfo client(ClientId id, BrokerId at, bool covered = false,
                  std::size_t profile = 1) {
  ClientInfo c;
  c.id = id;
  c.at = at;
  c.profile = profile;
  c.covered = covered;
  c.movable = true;
  return c;
}

TEST(LoadEstimator, FirstSampleOnlySeedsBaselines) {
  LoadEstimator est(config());
  est.sample(0.0, {{1, sig(100, 0, 2)}});
  EXPECT_FALSE(est.ready());
  EXPECT_TRUE(est.loads().empty());
}

TEST(LoadEstimator, ComputesRatesFromCounterDeltas) {
  LoadEstimator est(config());
  est.sample(0.0, {{1, sig(100, 50, 2)}, {2, sig(0, 0, 0)}});
  est.sample(2.0, {{1, sig(140, 70, 2)}, {2, sig(10, 0, 0)}});
  ASSERT_TRUE(est.ready());
  // Broker 1: (40 pubs + 20 deliveries) / 2 s = 30/s.
  EXPECT_DOUBLE_EQ(est.loads().at(1).pub_rate, 30.0);
  EXPECT_DOUBLE_EQ(est.loads().at(1).score, 30.0);
  EXPECT_DOUBLE_EQ(est.loads().at(2).pub_rate, 5.0);
  EXPECT_EQ(est.loads().at(1).clients, 2u);
}

TEST(LoadEstimator, EwmaSmoothsRateSpikes) {
  ControlConfig cfg = config();
  cfg.ewma_alpha = 0.5;
  LoadEstimator est(cfg);
  est.sample(0.0, {{1, sig(0, 0, 1)}});
  est.sample(1.0, {{1, sig(10, 0, 1)}});   // seeds smoothed rate at 10/s
  est.sample(2.0, {{1, sig(110, 0, 1)}});  // raw spike to 100/s
  // 0.5 * 100 + 0.5 * 10 = 55: the spike is damped.
  EXPECT_DOUBLE_EQ(est.loads().at(1).pub_rate, 55.0);
}

TEST(LoadEstimator, ScoreCombinesWeightedSignals) {
  ControlConfig cfg = config();
  cfg.msg_weight = 0.5;
  cfg.table_weight = 2.0;
  cfg.queue_weight = 10.0;
  LoadEstimator est(cfg);
  BrokerSignals s0 = sig(0, 0, 1);
  BrokerSignals s1 = sig(10, 0, 1);
  s1.msgs = 20;
  s1.prt = 3;
  s1.srt = 1;
  s1.backlog_seconds = 0.25;
  est.sample(0.0, {{1, s0}});
  est.sample(1.0, {{1, s1}});
  // 10 pub/s + 0.5*20 msg/s + 2*(3+1) entries + 10*0.25 s backlog = 30.5.
  EXPECT_DOUBLE_EQ(est.loads().at(1).score, 30.5);
}

TEST(BalancePolicy, BelowHighThresholdPlansNothing) {
  const Overlay overlay = Overlay::chain(4);
  BalancePolicy policy(config(), &overlay);
  // Ratio = 1.4 < 1.5: never engages.
  const auto plan = policy.plan(loads_of({{1, 14.0}, {2, 6.0}}),
                                {client(100, 1)}, 0.0);
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(policy.engaged());
  EXPECT_NEAR(policy.last_plan().ratio, 1.4, 1e-9);
}

TEST(BalancePolicy, HysteresisKeepsPlanningUntilLowThreshold) {
  const Overlay overlay = Overlay::chain(4);
  BalancePolicy policy(config(), &overlay);
  // Engage at ratio 1.6.
  auto plan = policy.plan(loads_of({{1, 16.0}, {2, 4.0}}),
                          {client(100, 1), client(101, 1)}, 0.0);
  EXPECT_TRUE(policy.engaged());
  EXPECT_FALSE(plan.empty());
  // Ratio 1.2 is below high but above low: still engaged.
  policy.plan(loads_of({{1, 12.0}, {2, 8.0}}), {client(102, 1)}, 1.0);
  EXPECT_TRUE(policy.engaged());
  // Ratio 1.05 <= low: disengages.
  policy.plan(loads_of({{1, 10.5}, {2, 9.5}}), {client(103, 1)}, 2.0);
  EXPECT_FALSE(policy.engaged());
}

TEST(BalancePolicy, MovesClientOffHottestBrokerToLeastLoaded) {
  const Overlay overlay = Overlay::chain(4);
  BalancePolicy policy(config(), &overlay);
  const auto plan =
      policy.plan(loads_of({{1, 30.0}, {2, 6.0}, {3, 3.0}}),
                  {client(100, 1), client(200, 2)}, 0.0);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan[0].client, 100u);
  EXPECT_EQ(plan[0].from, 1u);
  EXPECT_EQ(plan[0].to, 3u);  // least loaded wins despite one extra hop
}

TEST(BalancePolicy, PathPenaltySteersToNearbyTarget) {
  const Overlay overlay = Overlay::chain(10);
  ControlConfig cfg = config();
  cfg.path_penalty = 0.2;
  BalancePolicy policy(cfg, &overlay);
  // Broker 2 (1 hop) is slightly more loaded than broker 10 (9 hops); with
  // a strong path penalty the near target wins.
  const auto plan = policy.plan(
      loads_of({{1, 40.0}, {2, 6.0}, {10, 4.0}}), {client(100, 1)}, 0.0);
  ASSERT_FALSE(plan.empty());
  EXPECT_EQ(plan[0].to, 2u);
}

TEST(BalancePolicy, PrefersCoveredThenSmallerProfile) {
  const Overlay overlay = Overlay::chain(4);
  ControlConfig cfg = config();
  cfg.max_moves_per_cycle = 1;
  BalancePolicy policy(cfg, &overlay);
  const std::vector<ClientInfo> clients = {
      client(100, 1, /*covered=*/false, /*profile=*/1),
      client(101, 1, /*covered=*/true, /*profile=*/5),
      client(102, 1, /*covered=*/true, /*profile=*/2),
  };
  const auto plan =
      policy.plan(loads_of({{1, 30.0}, {2, 3.0}}), clients, 0.0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].client, 102u);  // covered beats uncovered, then smaller
}

TEST(BalancePolicy, CooldownSuppressesRecentlyMovedClients) {
  const Overlay overlay = Overlay::chain(4);
  BalancePolicy policy(config(), &overlay);
  policy.on_move_started(100);
  policy.on_move_finished(100, /*committed=*/true, /*now=*/10.0);
  // At t=20 the client is still inside the 30 s cooldown.
  auto plan =
      policy.plan(loads_of({{1, 30.0}, {2, 3.0}}), {client(100, 1)}, 20.0);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(policy.last_plan().cooldown_suppressed, 1u);
  // After the cooldown the client is eligible again.
  plan =
      policy.plan(loads_of({{1, 30.0}, {2, 3.0}}), {client(100, 1)}, 41.0);
  EXPECT_EQ(plan.size(), 1u);
  EXPECT_EQ(policy.last_plan().cooldown_suppressed, 0u);
}

TEST(BalancePolicy, PerClientBudgetIsHard) {
  const Overlay overlay = Overlay::chain(4);
  BalancePolicy policy(config(), &overlay);
  for (int i = 0; i < 2; ++i) {
    policy.on_move_started(100);
    policy.on_move_finished(100, true, 0.0);
  }
  EXPECT_EQ(policy.moves_of(100), 2u);
  // Budget (2) exhausted: not even after cooldown.
  const auto plan =
      policy.plan(loads_of({{1, 30.0}, {2, 3.0}}), {client(100, 1)}, 1e6);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(policy.last_plan().cooldown_suppressed, 0u);
}

TEST(BalancePolicy, InFlightClientsAreNotReselected) {
  const Overlay overlay = Overlay::chain(4);
  BalancePolicy policy(config(), &overlay);
  policy.on_move_started(100);
  const auto plan =
      policy.plan(loads_of({{1, 30.0}, {2, 3.0}}), {client(100, 1)}, 0.0);
  EXPECT_TRUE(plan.empty());
}

TEST(BalancePolicy, AbortedMoveCoolsDownWithoutSpendingBudget) {
  const Overlay overlay = Overlay::chain(4);
  BalancePolicy policy(config(), &overlay);
  policy.on_move_started(100);
  policy.on_move_finished(100, /*committed=*/false, /*now=*/0.0);
  EXPECT_EQ(policy.moves_of(100), 0u);
  const auto plan =
      policy.plan(loads_of({{1, 30.0}, {2, 3.0}}), {client(100, 1)}, 10.0);
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(policy.last_plan().cooldown_suppressed, 1u);
}

TEST(BalancePolicy, StopsWhenProjectedHotspotInsideBand) {
  const Overlay overlay = Overlay::chain(4);
  ControlConfig cfg = config();
  cfg.max_moves_per_cycle = 10;
  BalancePolicy policy(cfg, &overlay);
  // Donor at 16 with 4 clients: each projected move shifts 4 units. After
  // two moves the donor sits at 8 < mean * imbalance_low, so the greedy
  // loop must stop well before the cycle budget.
  std::vector<ClientInfo> clients;
  for (ClientId id = 100; id < 104; ++id) clients.push_back(client(id, 1));
  const auto plan =
      policy.plan(loads_of({{1, 16.0}, {2, 4.0}}, /*clients_each=*/4),
                  clients, 0.0);
  EXPECT_GE(plan.size(), 1u);
  EXPECT_LT(plan.size(), 4u);
}

TEST(BalancePolicy, NeverSwapsHotspotOntoTarget) {
  const Overlay overlay = Overlay::chain(2);
  ControlConfig cfg = config();
  BalancePolicy policy(cfg, &overlay);
  // Donor has ONE client carrying everything: moving it would relocate the
  // whole hotspot to the target, so the policy must refuse.
  const auto plan = policy.plan(
      loads_of({{1, 30.0}, {2, 0.0}}, /*clients_each=*/1), {client(100, 1)},
      0.0);
  EXPECT_TRUE(plan.empty());
}

}  // namespace
}  // namespace tmps::control
