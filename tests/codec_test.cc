#include "pubsub/codec.h"

#include <gtest/gtest.h>

#include <random>

#include "obs/provenance.h"
#include "pubsub/workload.h"

namespace tmps {
namespace {

Message round_trip(Message m) {
  const std::string bytes = encode_message(m);
  auto back = decode_message(bytes);
  EXPECT_TRUE(back.has_value());
  return back.value_or(Message{});
}

TEST(Codec, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  w.str("");

  Reader r(w.bytes());
  std::uint8_t a;
  std::uint32_t b;
  std::uint64_t c;
  std::int64_t d;
  double e;
  std::string s1, s2;
  ASSERT_TRUE(r.u8(a));
  ASSERT_TRUE(r.u32(b));
  ASSERT_TRUE(r.u64(c));
  ASSERT_TRUE(r.i64(d));
  ASSERT_TRUE(r.f64(e));
  ASSERT_TRUE(r.str(s1));
  ASSERT_TRUE(r.str(s2));
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xDEADBEEFu);
  EXPECT_EQ(c, 0x0123456789ABCDEFull);
  EXPECT_EQ(d, -42);
  EXPECT_DOUBLE_EQ(e, 3.14159);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
}

TEST(Codec, ReaderStopsAtTruncation) {
  Writer w;
  w.u64(7);
  Reader r(std::string_view(w.bytes()).substr(0, 5));
  std::uint64_t v;
  EXPECT_FALSE(r.u64(v));
  EXPECT_FALSE(r.ok());
  std::uint8_t b;
  EXPECT_FALSE(r.u8(b)) << "errors must be sticky";
}

TEST(Codec, ValueRoundTrip) {
  for (const Value& v :
       {Value{std::int64_t{-123456789}}, Value{2.71828}, Value{"str"},
        Value{""}, Value{std::int64_t{0}}}) {
    Writer w;
    encode(w, v);
    Reader r(w.bytes());
    Value back;
    ASSERT_TRUE(decode(r, back));
    EXPECT_EQ(back.kind(), v.kind());
    EXPECT_TRUE(back.equals(v) || (v.is_string() && back.is_string() &&
                                   back.as_string() == v.as_string()));
  }
}

TEST(Codec, FilterRoundTripPreservesSemantics) {
  const Filter f = workload_filter(WorkloadKind::Tree, 4, 17);
  Writer w;
  encode(w, f);
  Reader r(w.bytes());
  Filter back;
  ASSERT_TRUE(decode(r, back));
  EXPECT_TRUE(f == back);
  EXPECT_TRUE(f.covers(back) && back.covers(f));
  const Publication p = make_publication({1, 1}, 7000, 17);
  EXPECT_EQ(f.matches(p), back.matches(p));
}

TEST(Codec, PublicationRoundTrip) {
  Publication p({42, 7}, {{"class", "STOCK"},
                          {"x", std::int64_t{123}},
                          {"price", 9.5},
                          {"sym", "ACME"}});
  Writer w;
  encode(w, p);
  Reader r(w.bytes());
  Publication back;
  ASSERT_TRUE(decode(r, back));
  EXPECT_TRUE(p == back);
}

TEST(Codec, RoutingMessagesRoundTrip) {
  Message m;
  m.id = 77;
  m.cause = 5;
  m.payload = SubscribeMsg{{{9, 2}, workload_filter(WorkloadKind::Covered, 1)}};
  const Message back = round_trip(m);
  EXPECT_EQ(back.id, 77u);
  EXPECT_EQ(back.cause, 5u);
  const auto* sub = std::get_if<SubscribeMsg>(&back.payload);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->sub.id, (SubscriptionId{9, 2}));
}

TEST(Codec, EveryPayloadAlternativeRoundTrips) {
  const Subscription sub{{3, 1}, workload_filter(WorkloadKind::Chained, 2)};
  const Advertisement adv{{3, 2}, full_space_advertisement()};
  const Publication pub = make_publication({3, 3}, 100, 0);

  std::vector<Payload> payloads = {
      AdvertiseMsg{adv},
      UnadvertiseMsg{adv.id},
      SubscribeMsg{sub},
      UnsubscribeMsg{sub.id},
      PublishMsg{pub},
      MoveNegotiateMsg{11, 3, 1, 5, {sub}, {adv}, 9},
      MoveApproveMsg{11, 3, 1, 5, {sub}, {adv}},
      MoveRejectMsg{11, 3, "no capacity"},
      MoveStateMsg{11, 3, 1, 5, {pub}, {pub}, {sub.id}, {adv.id}},
      MoveAckMsg{11, 3},
      MoveAbortMsg{11, 3, 1, 5, {sub.id}, {adv.id}},
      BufferedStateMsg{11, 3, {pub}, {}},
      TradMoveRequestMsg{11, 3, 1, 5, {sub}, {adv}, 9},
      TradReadyMsg{11, 3},
      TradRejectMsg{11, 3, "nope"},
      RepairDigestMsg{4, 2, {sub.id}, {adv.id}, {sub.id}, {adv.id}},
      RepairRequestMsg{4, 2, {sub.id}, {adv.id}},
      RepairProbeMsg{11, 2},
      RepairVerdictMsg{11, RepairVerdict::Committed, 1, 5, 3},
      SessionOpenMsg{9, 2, true, pub},
      SessionResumeMsg{0x0200000000000007ull, 9, 3},
      SessionAckMsg{0x0200000000000007ull, 9, SessionVerdict::Moving, 11, 2,
                    true, pub},
      SessionHeartbeatMsg{0x0200000000000007ull, 9},
      SessionCloseMsg{0x0200000000000007ull, 9, true},
      SessionForwardMsg{0x0200000000000007ull, 9, 2, {pub, pub}},
  };
  for (auto& p : payloads) {
    Message m;
    m.id = 1;
    m.unicast_dest = 5;
    m.payload = p;
    const std::string bytes = encode_message(m);
    const auto back = decode_message(bytes);
    ASSERT_TRUE(back.has_value()) << m.type_name();
    EXPECT_EQ(back->type_name(), m.type_name());
    EXPECT_EQ(back->unicast_dest, m.unicast_dest);
  }
}

TEST(Codec, SessionMessagesRoundTripFieldForField) {
  const Publication will = make_publication({0, 0}, 250, 3);
  const std::uint64_t tok = (std::uint64_t{3} << 40) | 17;

  {
    Message m;
    m.id = 2;
    m.payload = SessionOpenMsg{42, 3, true, will};
    const Message back = round_trip(m);
    const auto* b = std::get_if<SessionOpenMsg>(&back.payload);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->client, 42u);
    EXPECT_EQ(b->at, 3u);
    ASSERT_TRUE(b->has_will);
    EXPECT_TRUE(b->will == will);
  }
  {
    // Absent will stays absent — no phantom publication on decode.
    Message m;
    m.id = 2;
    m.payload = SessionOpenMsg{42, 3};
    const Message back = round_trip(m);
    const auto* b = std::get_if<SessionOpenMsg>(&back.payload);
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->has_will);
  }
  {
    Message m;
    m.id = 3;
    m.unicast_dest = 3;
    m.payload = SessionResumeMsg{tok, 42, 5};
    const Message back = round_trip(m);
    const auto* b = std::get_if<SessionResumeMsg>(&back.payload);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->token, tok);
    EXPECT_EQ(b->client, 42u);
    EXPECT_EQ(b->at, 5u);
  }
  {
    // The Moving ack carries the movement txn and the travelling will.
    Message m;
    m.id = 4;
    m.payload = SessionAckMsg{tok, 42, SessionVerdict::Moving, 77, 3, true,
                              will};
    const Message back = round_trip(m);
    const auto* b = std::get_if<SessionAckMsg>(&back.payload);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->token, tok);
    EXPECT_EQ(b->client, 42u);
    EXPECT_EQ(b->verdict, SessionVerdict::Moving);
    EXPECT_EQ(b->txn, 77u);
    EXPECT_EQ(b->home, 3u);
    ASSERT_TRUE(b->has_will);
    EXPECT_TRUE(b->will == will);
  }
  {
    Message m;
    m.id = 5;
    m.payload = SessionHeartbeatMsg{tok, 42};
    const Message back = round_trip(m);
    const auto* b = std::get_if<SessionHeartbeatMsg>(&back.payload);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->token, tok);
    EXPECT_EQ(b->client, 42u);
  }
  {
    Message m;
    m.id = 6;
    m.payload = SessionCloseMsg{tok, 42, true};
    const Message back = round_trip(m);
    const auto* b = std::get_if<SessionCloseMsg>(&back.payload);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->token, tok);
    EXPECT_TRUE(b->fire_will);
  }
  {
    const Publication p1 = make_publication({9, 1}, 100, 0);
    const Publication p2 = make_publication({9, 2}, 200, 1);
    Message m;
    m.id = 7;
    m.unicast_dest = 5;
    m.payload = SessionForwardMsg{tok, 42, 3, {p1, p2}};
    const Message back = round_trip(m);
    const auto* b = std::get_if<SessionForwardMsg>(&back.payload);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->token, tok);
    EXPECT_EQ(b->client, 42u);
    EXPECT_EQ(b->origin, 3u);
    ASSERT_EQ(b->pubs.size(), 2u);
    EXPECT_TRUE(b->pubs[0] == p1);
    EXPECT_TRUE(b->pubs[1] == p2);
  }
}

TEST(Codec, TruncatedSessionForwardRejected) {
  Message m;
  m.id = 1;
  m.unicast_dest = 2;
  m.payload = SessionForwardMsg{(std::uint64_t{1} << 40) | 5,
                                42,
                                1,
                                {make_publication({9, 1}, 100, 0),
                                 make_publication({9, 2}, 200, 1)}};
  const std::string bytes = encode_message(m);
  ASSERT_TRUE(decode_message(bytes).has_value());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(decode_message(std::string_view(bytes).substr(0, cut)),
              std::nullopt)
        << "prefix of length " << cut << " must not decode";
  }
}

TEST(Codec, SessionAckBadVerdictRejected) {
  // Hand-rolled frame: header (id, cause, no-dest flag), SessionAck tag,
  // then a verdict byte past the last enumerator. Must reject, not alias.
  Writer w;
  w.u64(1);   // id
  w.u64(0);   // cause
  w.u8(0);    // flags: no dest, no provenance
  w.u8(22);   // SessionAck tag
  w.u64(7);   // token
  w.u64(42);  // client
  w.u8(5);    // verdict: out of range (Unknown == 4)
  w.u64(0);   // txn
  w.u32(1);   // home
  w.u8(0);    // has_will
  EXPECT_EQ(decode_message(w.bytes()), std::nullopt);
}

TEST(Codec, SessionBoolBytesMustBeZeroOrOne) {
  {
    Writer w;  // SessionOpen with has_will = 2
    w.u64(1);
    w.u64(0);
    w.u8(0);
    w.u8(20);  // SessionOpen tag
    w.u64(42);
    w.u32(1);
    w.u8(2);
    EXPECT_EQ(decode_message(w.bytes()), std::nullopt);
  }
  {
    Writer w;  // SessionClose with fire_will = 0xFF
    w.u64(1);
    w.u64(0);
    w.u8(0);
    w.u8(24);  // SessionClose tag
    w.u64(7);
    w.u64(42);
    w.u8(0xFF);
    EXPECT_EQ(decode_message(w.bytes()), std::nullopt);
  }
}

TEST(Codec, ProvenanceTagRoundTrips) {
  Message m;
  m.id = 12;
  m.payload = PublishMsg{make_publication({42, 7}, 100, 0)};
  obs::ProvenanceTag tag;
  tag.trace = obs::pub_trace_id({42, 7});
  tag.origin_time = 1.5;
  tag.last_hop_time = 1.75;
  tag.hops = 3;
  tag.sampled = true;
  m.prov = tag;
  const Message back = round_trip(m);
  ASSERT_TRUE(back.prov.has_value());
  EXPECT_EQ(*back.prov, tag);
  // Absent stays absent — no phantom tag on the decode side.
  m.prov.reset();
  EXPECT_FALSE(round_trip(m).prov.has_value());
}

TEST(Codec, UnknownHeaderFlagBitsRejected) {
  Message m;
  m.id = 1;
  m.payload = PublishMsg{make_publication({1, 1}, 5, 0)};
  std::string bytes = encode_message(m);
  // The flag byte follows the two u64 header fields; setting a bit the
  // decoder doesn't know must reject the frame, not silently misparse.
  bytes[16] = static_cast<char>(bytes[16] | 0x40);
  EXPECT_EQ(decode_message(bytes), std::nullopt);
}

TEST(Codec, TruncatedProvenanceRejected) {
  Message m;
  m.id = 1;
  m.payload = PublishMsg{make_publication({1, 1}, 5, 0)};
  m.prov = obs::make_provenance({1, 1}, 2.0, 1);
  const std::string bytes = encode_message(m);
  ASSERT_TRUE(decode_message(bytes).has_value());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(decode_message(std::string_view(bytes).substr(0, cut)),
              std::nullopt)
        << "prefix of length " << cut << " must not decode";
  }
}

TEST(Codec, TruncatedMessagesRejected) {
  Message m;
  m.id = 1;
  m.payload = PublishMsg{make_publication({1, 1}, 5, 0)};
  const std::string bytes = encode_message(m);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(decode_message(std::string_view(bytes).substr(0, cut)),
              std::nullopt)
        << "prefix of length " << cut << " must not decode";
  }
}

TEST(Codec, TrailingGarbageRejected) {
  Message m;
  m.id = 1;
  m.payload = MoveAckMsg{2, 3};
  std::string bytes = encode_message(m);
  bytes += 'x';
  EXPECT_EQ(decode_message(bytes), std::nullopt);
}

TEST(Codec, RandomBytesNeverCrash) {
  std::mt19937_64 rng(1234);
  for (int round = 0; round < 2000; ++round) {
    std::uniform_int_distribution<int> len(0, 200);
    std::string junk(len(rng), '\0');
    for (auto& c : junk) c = static_cast<char>(rng());
    (void)decode_message(junk);  // must not crash or hang
  }
  SUCCEED();
}

TEST(Codec, MutatedValidMessagesNeverCrash) {
  Message m;
  m.id = 9;
  m.cause = 1;
  m.unicast_dest = 3;
  m.payload = MoveStateMsg{11,
                           3,
                           1,
                           5,
                           {make_publication({3, 3}, 100, 0)},
                           {},
                           {{3, 1}},
                           {{3, 2}}};
  const std::string bytes = encode_message(m);
  std::mt19937_64 rng(99);
  for (int round = 0; round < 2000; ++round) {
    std::string mut = bytes;
    const std::size_t at = rng() % mut.size();
    mut[at] = static_cast<char>(rng());
    (void)decode_message(mut);  // decode or reject; never UB
  }
  SUCCEED();
}

TEST(Codec, HostileLengthPrefixRejected) {
  // A string length of 0xFFFFFFFF must not cause a huge allocation.
  Writer w;
  w.u64(1);  // id
  w.u64(0);  // cause
  w.u8(0);   // no dest
  w.u8(8);   // MoveReject tag
  w.u64(1);
  w.u64(2);
  w.u32(0xFFFFFFFFu);  // reason length: hostile
  EXPECT_EQ(decode_message(w.bytes()), std::nullopt);
}

}  // namespace
}  // namespace tmps
