#include "broker/broker.h"

#include <gtest/gtest.h>

#include "pubsub/workload.h"
#include "test_util.h"

namespace tmps {
namespace {

using testing::SyncNet;

Subscription sub(ClientId c, std::uint32_t seq, Filter f) {
  return {{c, seq}, std::move(f)};
}
Advertisement adv(ClientId c, std::uint32_t seq, Filter f) {
  return {{c, seq}, std::move(f)};
}
Filter range(std::int64_t lo, std::int64_t hi) {
  return Filter::build().attr("class").eq("STOCK").attr("x").ge(lo).le(hi);
}

class BrokerChain : public ::testing::Test {
 protected:
  BrokerChain() : overlay_(Overlay::chain(5)), net_(overlay_) {}
  Overlay overlay_;
  SyncNet net_;
};

TEST_F(BrokerChain, AdvertisementFloodsEverywhere) {
  net_.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_EQ(net_.broker(b).tables().adv_count(), 1u) << b;
  }
  // One message per link: 4 links.
  EXPECT_EQ(net_.messages(), 4u);
  // Last hops point back towards broker 1.
  EXPECT_EQ(net_.broker(3).tables().srt().begin()->second.lasthop,
            Hop::of_broker(2));
}

TEST_F(BrokerChain, SubscriptionRoutesTowardAdvertiser) {
  net_.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.reset_count();
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(10, 20)));
  });
  // Subscription travels only along the path 5->4->3->2->1.
  EXPECT_EQ(net_.messages(), 4u);
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_EQ(net_.broker(b).tables().sub_count(), 1u) << b;
  }
  EXPECT_EQ(net_.broker(3).tables().prt().begin()->second.lasthop,
            Hop::of_broker(4));
}

TEST_F(BrokerChain, NonIntersectingSubscriptionStaysLocal) {
  net_.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.reset_count();
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(500, 600)));
  });
  EXPECT_EQ(net_.messages(), 0u);
  EXPECT_EQ(net_.broker(5).tables().sub_count(), 1u);
  EXPECT_EQ(net_.broker(4).tables().sub_count(), 0u);
}

TEST_F(BrokerChain, PublicationDeliveredToMatchingSubscriber) {
  std::vector<std::pair<ClientId, Publication>> delivered;
  net_.broker(5).set_notify_sink(
      [&](ClientId c, const Publication& p) { delivered.emplace_back(c, p); });

  net_.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(10, 20)));
  });
  net_.run(1, [&](Broker& b) {
    return b.client_publish(100, make_publication({100, 2}, 15, 0));
  });
  // Group attribute mismatch: our range() filter has no g predicate, so it
  // matches publications regardless of g.
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].first, 200u);

  net_.run(1, [&](Broker& b) {
    return b.client_publish(100, make_publication({100, 3}, 55, 0));
  });
  EXPECT_EQ(delivered.size(), 1u) << "non-matching publication delivered";
}

TEST_F(BrokerChain, PublicationFollowsSubscriptionPathOnly) {
  net_.run(3, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(0, 100)));
  });
  net_.reset_count();
  net_.run(3, [&](Broker& b) {
    return b.client_publish(100, make_publication({100, 2}, 50, 0));
  });
  // Publication flows 3->4->5 only, not towards 2/1.
  EXPECT_EQ(net_.messages(), 2u);
  EXPECT_EQ(net_.on_link(3, 4), 1u);
  EXPECT_EQ(net_.on_link(4, 5), 1u);
  EXPECT_EQ(net_.on_link(3, 2), 0u);
}

TEST_F(BrokerChain, UnsubscribeCleansPath) {
  net_.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(10, 20)));
  });
  net_.run(5, [&](Broker& b) {
    return b.client_unsubscribe(200, {200, 1});
  });
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_EQ(net_.broker(b).tables().sub_count(), 0u) << b;
  }
}

TEST_F(BrokerChain, UnadvertiseCleansSrt) {
  net_.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.run(1, [&](Broker& b) {
    return b.client_unadvertise(100, {100, 1});
  });
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_EQ(net_.broker(b).tables().adv_count(), 0u) << b;
  }
}

TEST_F(BrokerChain, StaleUnsubscribeIgnored) {
  net_.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(10, 20)));
  });
  // Unsubscribe with a wrong last hop (different client) is dropped.
  net_.run(5, [&](Broker& b) {
    return b.client_unsubscribe(999, {200, 1});
  });
  EXPECT_EQ(net_.broker(5).tables().sub_count(), 1u);
}

TEST_F(BrokerChain, LateAdvertiserPullsExistingSubscriptions) {
  // Subscription issued before any advertisement stays local...
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(10, 20)));
  });
  EXPECT_EQ(net_.broker(4).tables().sub_count(), 0u);
  // ...then an advertisement appears and drags the subscription to it.
  net_.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_EQ(net_.broker(b).tables().sub_count(), 1u) << b;
  }

  std::vector<Publication> got;
  net_.broker(5).set_notify_sink(
      [&](ClientId, const Publication& p) { got.push_back(p); });
  net_.run(1, [&](Broker& b) {
    return b.client_publish(100, make_publication({100, 9}, 12, 0));
  });
  EXPECT_EQ(got.size(), 1u);
}

TEST_F(BrokerChain, TwoSubscribersBothReceive) {
  std::vector<ClientId> got;
  net_.broker(1).set_notify_sink(
      [&](ClientId c, const Publication&) { got.push_back(c); });
  net_.broker(5).set_notify_sink(
      [&](ClientId c, const Publication&) { got.push_back(c); });

  net_.run(3, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.run(1, [&](Broker& b) {
    return b.client_subscribe(201, sub(201, 1, range(0, 50)));
  });
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(202, sub(202, 1, range(0, 50)));
  });
  net_.run(3, [&](Broker& b) {
    return b.client_publish(100, make_publication({100, 2}, 25, 0));
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_NE(got[0], got[1]);
}

TEST_F(BrokerChain, SelfDeliveryToLocalSubscriber) {
  std::vector<ClientId> got;
  net_.broker(3).set_notify_sink(
      [&](ClientId c, const Publication&) { got.push_back(c); });
  net_.run(3, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 100)));
  });
  net_.run(3, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(0, 100)));
  });
  net_.run(3, [&](Broker& b) {
    return b.client_publish(100, make_publication({100, 2}, 10, 0));
  });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 200u);
}

// --- covering behaviour -------------------------------------------------------

class BrokerCovering : public ::testing::Test {
 protected:
  BrokerCovering() : overlay_(Overlay::chain(5)), net_(overlay_) {
    // Advertiser at broker 1 so subscriptions from broker 5 travel the chain.
    net_.run(1, [&](Broker& b) {
      return b.client_advertise(100, adv(100, 1, range(0, 1000)));
    });
    net_.reset_count();
  }
  Overlay overlay_;
  SyncNet net_;
};

TEST_F(BrokerCovering, CoveredSubscriptionQuenched) {
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(0, 100)));
  });
  EXPECT_EQ(net_.messages(), 4u);
  net_.reset_count();
  // A narrower subscription from the same broker is quenched immediately.
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(201, sub(201, 1, range(10, 20)));
  });
  EXPECT_EQ(net_.messages(), 0u);
  EXPECT_EQ(net_.broker(4).tables().sub_count(), 1u);
}

TEST_F(BrokerCovering, IdenticalSubscriptionQuenched) {
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(0, 100)));
  });
  net_.reset_count();
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(201, sub(201, 1, range(0, 100)));
  });
  EXPECT_EQ(net_.messages(), 0u);
}

TEST_F(BrokerCovering, CoveringSubscriptionRetractsCovered) {
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(10, 20)));
  });
  net_.reset_count();
  // A wider subscription triggers forwarding plus retraction of the covered
  // one on every link it was active on (the paper's pathological pattern).
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(201, sub(201, 1, range(0, 100)));
  });
  // Per hop: subscribe(201) + unsubscribe(200) = 2 messages over 4 links.
  EXPECT_EQ(net_.messages(), 8u);
  EXPECT_EQ(net_.broker(2).tables().sub_count(), 1u);
  EXPECT_EQ(net_.broker(5).tables().sub_count(), 2u);  // origin keeps both
}

TEST_F(BrokerCovering, UnsubscribeOfCovererUnquenchesCovered) {
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(0, 100)));
  });
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(201, sub(201, 1, range(10, 20)));
  });
  net_.reset_count();
  // Removing the coverer must re-propagate the covered subscription
  // (subscribe 201 + unsubscribe 200 per link).
  net_.run(5, [&](Broker& b) {
    return b.client_unsubscribe(200, {200, 1});
  });
  EXPECT_EQ(net_.messages(), 8u);
  for (BrokerId b = 1; b <= 4; ++b) {
    ASSERT_EQ(net_.broker(b).tables().sub_count(), 1u) << b;
    EXPECT_EQ(net_.broker(b).tables().prt().begin()->first,
              (SubscriptionId{201, 1}));
  }
}

TEST_F(BrokerCovering, DeliveryStillWorksWhileQuenched) {
  std::vector<ClientId> got;
  net_.broker(5).set_notify_sink(
      [&](ClientId c, const Publication&) { got.push_back(c); });
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(0, 100)));
  });
  net_.run(5, [&](Broker& b) {
    return b.client_subscribe(201, sub(201, 1, range(10, 20)));
  });
  net_.run(1, [&](Broker& b) {
    return b.client_publish(100, make_publication({100, 2}, 15, 0));
  });
  // Both the coverer and the quenched subscription receive the publication.
  ASSERT_EQ(got.size(), 2u);
}

TEST_F(BrokerCovering, CoveringDisabledForwardsEverything) {
  Overlay o = Overlay::chain(3);
  BrokerConfig cfg;
  cfg.subscription_covering = false;
  cfg.advertisement_covering = false;
  SyncNet net(o, cfg);
  net.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(0, 1000)));
  });
  net.reset_count();
  net.run(3, [&](Broker& b) {
    return b.client_subscribe(200, sub(200, 1, range(0, 100)));
  });
  net.run(3, [&](Broker& b) {
    return b.client_subscribe(201, sub(201, 1, range(10, 20)));
  });
  // Both subscriptions propagate: 2 hops each.
  EXPECT_EQ(net.messages(), 4u);
}

TEST_F(BrokerCovering, AdvertisementCoveringQuenchesAndRetracts) {
  // adv(0..1000) from broker 1 already flooded in the fixture.
  // A covered advertisement from broker 1 is quenched.
  net_.run(1, [&](Broker& b) {
    return b.client_advertise(101, adv(101, 1, range(0, 10)));
  });
  EXPECT_EQ(net_.messages(), 0u);
  EXPECT_EQ(net_.broker(3).tables().adv_count(), 1u);

  // A covering advertisement retracts the earlier one network-wide: the
  // "both flooded, then one unadvertised" pattern from Sec. 4.4.
  Overlay o = Overlay::chain(3);
  SyncNet net(o);
  net.run(1, [&](Broker& b) {
    return b.client_advertise(100, adv(100, 1, range(50, 60)));
  });
  net.reset_count();
  net.run(1, [&](Broker& b) {
    Filter wide = Filter::build().attr("class").eq("STOCK").attr("x").ge(0).le(
        1000);
    return b.client_advertise(101, adv(101, 1, wide));
  });
  // Per link: advertise(101) + unadvertise(100) = 2 over 2 links.
  EXPECT_EQ(net.messages(), 4u);
  EXPECT_EQ(net.broker(3).tables().adv_count(), 1u);
}

}  // namespace
}  // namespace tmps
