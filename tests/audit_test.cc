// Movement-invariant auditor (obs/audit.h): synthetic feeds exercising each
// invariant check, plus end-to-end clean runs under both protocols (the
// auditor must stay silent when nothing is wrong).
#include <gtest/gtest.h>

#include <sstream>

#include "core/scenario.h"
#include "obs/audit.h"
#include "obs/trace.h"

namespace tmps {
namespace {

// The end-to-end tests reconstruct movement windows from tracer spans,
// which a -DTMPS_TRACING=OFF build compiles away.
#if TMPS_TRACING_ENABLED
#define TMPS_REQUIRE_TRACING()
#else
#define TMPS_REQUIRE_TRACING() \
  GTEST_SKIP() << "instrumentation sites compiled out (TMPS_TRACING=OFF)"
#endif

using obs::InvariantKind;

bool has_kind(const obs::AuditReport& r, InvariantKind kind) {
  for (const auto& v : r.violations) {
    if (v.kind == kind) return true;
  }
  return false;
}

const obs::InvariantViolation* find_kind(const obs::AuditReport& r,
                                         InvariantKind kind) {
  for (const auto& v : r.violations) {
    if (v.kind == kind) return &v;
  }
  return nullptr;
}

obs::TraceRecord movement_span(std::uint64_t txn, std::uint64_t client,
                               std::uint32_t source, std::uint32_t target,
                               const std::string& protocol, double t0,
                               double t1, bool open,
                               const std::string& outcome = "commit") {
  obs::TraceRecord r;
  r.is_span = true;
  r.trace = txn;
  r.span = txn * 10;
  r.name = "movement";
  r.t0 = t0;
  r.t1 = t1;
  r.open = open;
  r.attrs = {{"client", std::to_string(client)},
             {"source", std::to_string(source)},
             {"target", std::to_string(target)},
             {"protocol", protocol}};
  if (!open) r.attrs.emplace_back("outcome", outcome);
  return r;
}

obs::TraceRecord hop_event(std::uint64_t txn, const std::string& name,
                           std::uint32_t broker, double t) {
  obs::TraceRecord r;
  r.trace = txn;
  r.name = name;
  r.t0 = t;
  r.attrs = {{"broker", std::to_string(broker)}};
  return r;
}

// --- synthetic feeds --------------------------------------------------------

TEST(Auditor, CleanSyntheticMovementPasses) {
  obs::Auditor a;
  a.set_path_fn([](std::uint32_t, std::uint32_t) {
    return std::vector<std::uint32_t>{1, 2, 3};
  });
  std::vector<obs::TraceRecord> recs;
  recs.push_back(movement_span(7, 1005, 1, 3, "reconfig", 10.0, 10.4, false));
  recs.push_back(hop_event(7, "hop:approve", 2, 10.1));
  recs.push_back(hop_event(7, "hop:approve", 1, 10.2));
  recs.push_back(hop_event(7, "hop:state", 2, 10.3));
  recs.push_back(hop_event(7, "hop:state", 3, 10.4));
  a.ingest_trace(recs);
  const auto report = a.finish();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.movements_checked, 1u);
}

TEST(Auditor, MissingStateHopIsPathInconsistent) {
  obs::Auditor a;
  a.set_path_fn([](std::uint32_t, std::uint32_t) {
    return std::vector<std::uint32_t>{1, 2, 3};
  });
  std::vector<obs::TraceRecord> recs;
  recs.push_back(movement_span(7, 1005, 1, 3, "reconfig", 10.0, 10.4, false));
  recs.push_back(hop_event(7, "hop:approve", 2, 10.1));
  recs.push_back(hop_event(7, "hop:approve", 1, 10.2));
  recs.push_back(hop_event(7, "hop:state", 3, 10.4));  // broker 2 skipped
  a.ingest_trace(recs);
  const auto report = a.finish();
  const auto* v = find_kind(report, InvariantKind::PathConsistency);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->txn, 7u);
  EXPECT_EQ(v->broker, 2u);
  EXPECT_EQ(v->client, 1005u);
}

TEST(Auditor, AbortMustReachEveryApprovedBroker) {
  obs::Auditor a;
  a.set_path_fn([](std::uint32_t, std::uint32_t) {
    return std::vector<std::uint32_t>{1, 2, 3};
  });
  std::vector<obs::TraceRecord> recs;
  recs.push_back(
      movement_span(9, 1005, 1, 3, "reconfig", 10.0, 10.4, false, "abort"));
  recs.push_back(hop_event(9, "hop:approve", 2, 10.1));
  recs.push_back(hop_event(9, "hop:approve", 1, 10.2));
  // No hop:abort at broker 2 -> its shadow was never cleaned up.
  a.ingest_trace(recs);
  const auto report = a.finish();
  const auto* v = find_kind(report, InvariantKind::PathConsistency);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->txn, 9u);
  EXPECT_EQ(v->broker, 2u);
}

TEST(Auditor, OpenMovementSpanBreaksQuiescence) {
  obs::Auditor a;
  a.ingest_trace({movement_span(5, 1001, 2, 14, "reconfig", 20.0, 0, true)});
  const auto report = a.finish();
  const auto* v = find_kind(report, InvariantKind::Quiescence);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->txn, 5u);
  EXPECT_EQ(v->broker, 2u);
  EXPECT_EQ(v->client, 1001u);
}

TEST(Auditor, OutstandingMessagesAfterResolveBreakQuiescence) {
  obs::Auditor a;
  a.ingest_trace({movement_span(5, 1001, 2, 14, "reconfig", 20.0, 21.0,
                                false)});
  a.set_outstanding(5, 3);
  const auto report = a.finish();
  const auto* v = find_kind(report, InvariantKind::Quiescence);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->txn, 5u);
}

TEST(Auditor, ShadowInFinalSnapshotIsOrphanState) {
  obs::Auditor a;
  obs::BrokerSnapshot snap;
  snap.broker = 4;
  snap.time = 60.0;
  snap.final_snapshot = true;
  obs::EntrySnap e;
  e.id = "1005:2";
  e.lasthop = "B1";
  e.has_shadow = true;
  e.shadow_lasthop = "B5";
  e.shadow_txn = 42;
  snap.prt.push_back(e);
  a.ingest_snapshot(snap);
  const auto report = a.finish();
  const auto* v = find_kind(report, InvariantKind::OrphanState);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->txn, 42u);
  EXPECT_EQ(v->broker, 4u);
}

TEST(Auditor, DuplicateDeliveryIsFlagged) {
  obs::Auditor a;
  a.expect_delivery(1005, "7:3", 30.0);
  a.on_delivery(1005, "7:3", 30.1);
  a.on_delivery(1005, "7:3", 30.2);
  const auto report = a.finish();
  const auto* v = find_kind(report, InvariantKind::DuplicateDelivery);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->client, 1005u);
}

TEST(Auditor, LostDeliveryIsFlagged) {
  obs::Auditor a;
  a.expect_delivery(1005, "7:3", 30.0);
  const auto report = a.finish();
  const auto* v = find_kind(report, InvariantKind::LostDelivery);
  ASSERT_NE(v, nullptr) << report.summary();
  EXPECT_EQ(v->client, 1005u);
  EXPECT_EQ(report.deliveries_checked, 0u);
}

TEST(Auditor, CoveringWindowLossIsInformational) {
  obs::Auditor a;
  a.ingest_trace({movement_span(5, 1005, 1, 13, "covering", 29.0, 31.0,
                                false)});
  a.expect_delivery(1005, "7:3", 30.0);  // inside the hand-off window
  const auto report = a.finish();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.expected_mover_losses, 1u);
}

TEST(Auditor, CoveringWindowDuplicateIsStillAViolation) {
  obs::Auditor a;
  a.ingest_trace({movement_span(5, 1005, 1, 13, "covering", 29.0, 31.0,
                                false)});
  a.on_delivery(1005, "7:3", 29.5);
  a.on_delivery(1005, "7:3", 30.5);
  const auto report = a.finish();
  EXPECT_TRUE(has_kind(report, InvariantKind::DuplicateDelivery))
      << report.summary();
}

TEST(Auditor, StreamFeedsMatchInMemoryFeeds) {
  // The JSONL ingest path (tools/tmps_audit) must reach the same verdict as
  // the in-memory path (Scenario).
  obs::Auditor a;
  std::istringstream trace(
      "{\"kind\":\"span\",\"trace\":5,\"span\":50,\"name\":\"movement\","
      "\"t0\":20.0,\"t1\":0,\"open\":true,\"attrs\":{\"client\":\"1001\","
      "\"source\":\"2\",\"target\":\"14\",\"protocol\":\"reconfig\"}}\n"
      "{\"kind\":\"metric\",\"name\":\"ignored\"}\n");
  a.ingest_trace_stream(trace);
  obs::BrokerSnapshot snap;
  snap.broker = 4;
  snap.final_snapshot = true;
  obs::EntrySnap e;
  e.id = "1001:1";
  e.lasthop = "B1";
  e.has_shadow = true;
  e.shadow_txn = 5;
  snap.prt.push_back(e);
  std::stringstream snaps;
  snap.write_jsonl(snaps);
  a.ingest_snapshot_stream(snaps);
  const auto report = a.finish();
  EXPECT_TRUE(has_kind(report, InvariantKind::Quiescence)) << report.summary();
  EXPECT_TRUE(has_kind(report, InvariantKind::OrphanState))
      << report.summary();
  EXPECT_EQ(report.movements_checked, 1u);
  EXPECT_EQ(report.snapshots_checked, 1u);
}

// --- end-to-end clean runs --------------------------------------------------

ScenarioConfig small(MobilityProtocol proto, WorkloadKind wl) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = proto;
  cfg.broker.subscription_covering = proto == MobilityProtocol::Traditional;
  cfg.broker.advertisement_covering = proto == MobilityProtocol::Traditional;
  cfg.workload = wl;
  cfg.total_clients = 40;
  cfg.duration = 60.0;
  cfg.warmup = 20.0;
  cfg.pause_between_moves = 5.0;
  cfg.publish_interval = 2.0;
  cfg.seed = 11;
  cfg.audit = true;
  return cfg;
}

TEST(AuditorScenario, CleanReconfigRunIsGreen) {
  TMPS_REQUIRE_TRACING();
  Scenario s(small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered));
  s.run();
  const auto& report = s.audit_report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.movements_checked, 0u);
  EXPECT_EQ(report.snapshots_checked, 14u);
  EXPECT_GT(report.deliveries_checked, 0u);
}

TEST(AuditorScenario, CleanTraditionalRunIsGreen) {
  TMPS_REQUIRE_TRACING();
  Scenario s(small(MobilityProtocol::Traditional, WorkloadKind::Covered));
  s.run();
  const auto& report = s.audit_report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_GT(report.movements_checked, 0u);
}

TEST(AuditorScenario, CleanTreeWorkloadRunIsGreen) {
  TMPS_REQUIRE_TRACING();
  Scenario s(small(MobilityProtocol::Reconfiguration, WorkloadKind::Tree));
  s.run();
  EXPECT_TRUE(s.audit_report().clean()) << s.audit_report().summary();
}

}  // namespace
}  // namespace tmps
