// Edge-client session layer (src/session): token issue/routing, disconnected
// operation with bounded buffering, heartbeat liveness, the three resume
// outcomes (in place / movement / forwarding fallback), expiry with last-will
// and drop accounting, and the repair-sweep garbage collection of what an
// expired session leaves behind.
#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.h"
#include "pubsub/workload.h"
#include "repair/scenario_repair.h"
#include "session/scenario_sessions.h"
#include "session/session_manager.h"
#include "sim/network.h"

namespace tmps {
namespace {

using session::SessionManager;
using session::SessionState;
using session::SessionToken;

SessionConfig test_session_cfg() {
  SessionConfig sc;
  sc.enabled = true;
  sc.heartbeat_interval = 1.0;
  sc.miss_factor = 3.0;
  sc.grace = 5.0;
  sc.tick_interval = 0.5;
  return sc;
}

/// Four chained brokers, each with a mobility engine and a session manager
/// attached; ticks are driven manually so tests control the clock.
struct Rig {
  explicit Rig(SessionConfig sc = test_session_cfg())
      : overlay(Overlay::chain(4)), net(overlay) {
    for (BrokerId b = 1; b <= 4; ++b) {
      engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
      engines.back()->set_delivery_sink(
          [this, b](ClientId c, const Publication& p, SimTime) {
            deliveries.push_back({b, c, p.id()});
          });
      managers.push_back(
          std::make_unique<SessionManager>(*engines.back(), net, sc));
      engines.back()->set_session_handler(managers.back().get());
    }
  }

  SessionManager& mgr(BrokerId b) { return *managers[b - 1]; }
  MobilityEngine& eng(BrokerId b) { return *engines[b - 1]; }

  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(eng(b), out);
    net.transmit(b, std::move(out));
    net.run();
  }

  /// Advances simulated time to `t` (draining everything scheduled).
  void advance_to(double t) {
    net.events().schedule_at(t, [] {});
    net.run();
  }

  /// Publisher client 1 at broker 4 covers the space; subscriber at `home`
  /// holds covered-family filter #1.
  void setup_pub_sub(ClientId sub_client, BrokerId home) {
    run_op(4, [](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(1);
      e.advertise(1, full_space_advertisement(), out);
    });
    run_op(home, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(sub_client);
      e.subscribe(sub_client, workload_filter(WorkloadKind::Covered, 1), out);
    });
  }

  void publish(std::uint32_t seq) {
    run_op(4, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(1, make_publication({1, seq}, 100, 0), out);
    });
  }

  int delivered(ClientId c, PublicationId id) const {
    int n = 0;
    for (const auto& d : deliveries) {
      if (d.client == c && d.pub == id) ++n;
    }
    return n;
  }
  int delivered_at(BrokerId b, ClientId c, PublicationId id) const {
    int n = 0;
    for (const auto& d : deliveries) {
      if (d.broker == b && d.client == c && d.pub == id) ++n;
    }
    return n;
  }
  int delivered_total(ClientId c) const {
    int n = 0;
    for (const auto& d : deliveries) {
      if (d.client == c) ++n;
    }
    return n;
  }

  struct Delivery {
    BrokerId broker;
    ClientId client;
    PublicationId pub;
  };

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::vector<std::unique_ptr<SessionManager>> managers;
  std::vector<Delivery> deliveries;
};

/// Captures session acks pushed down a manager's client channel.
void capture_acks(SessionManager& mgr, std::vector<SessionAckMsg>* sink) {
  mgr.set_client_channel([sink](ClientId, const Message& m) {
    if (const auto* a = std::get_if<SessionAckMsg>(&m.payload)) {
      sink->push_back(*a);
    }
    return true;
  });
}

TEST(Session, TokenEncodesHomeBrokerAndRequiresHostedClient) {
  Rig r;
  EXPECT_EQ(r.mgr(2).open(77), session::kNoToken) << "client not hosted";
  r.eng(2).connect_client(77);
  const SessionToken tok = r.mgr(2).open(77);
  ASSERT_NE(tok, session::kNoToken);
  EXPECT_EQ(SessionManager::home_of(tok), 2u);
  EXPECT_EQ(r.mgr(2).state_of(77), SessionState::Active);
  EXPECT_EQ(r.mgr(2).token_of(77), tok);
  EXPECT_EQ(r.mgr(2).live_sessions(), 1u);
  EXPECT_EQ(r.mgr(2).stats().opened, 1u);
  // Tokens are unique per session, even for the same client.
  EXPECT_NE(r.mgr(2).open(77), tok);
}

TEST(Session, DisconnectBuffersAndHomeResumeReplaysExactlyOnce) {
  Rig r;
  r.setup_pub_sub(100, 1);
  const SessionToken tok = r.mgr(1).open(100);

  r.publish(10);
  EXPECT_EQ(r.delivered(100, {1, 10}), 1) << "live delivery while connected";

  r.mgr(1).disconnect(100);
  EXPECT_EQ(r.mgr(1).state_of(100), SessionState::Detached);
  r.publish(11);
  EXPECT_EQ(r.delivered(100, {1, 11}), 0) << "buffered while detached";
  ASSERT_NE(r.eng(1).find_client(100), nullptr);
  EXPECT_EQ(r.eng(1).find_client(100)->buffered_count(), 1u);
  EXPECT_GT(r.mgr(1).buffered_bytes(), 0u);

  // Reappearing at home resumes in place and flushes the buffer.
  r.run_op(1, [&](MobilityEngine&, Broker::Outputs& out) {
    r.mgr(1).reattach(100, tok, out);
  });
  EXPECT_EQ(r.mgr(1).state_of(100), SessionState::Active);
  EXPECT_EQ(r.delivered(100, {1, 11}), 1);
  EXPECT_EQ(r.mgr(1).stats().resumed_local, 1u);

  // The exactly-once guard survives the replay: a network duplicate of the
  // same publication id is suppressed.
  r.publish(11);
  EXPECT_EQ(r.delivered(100, {1, 11}), 1);
  EXPECT_TRUE(r.mgr(1).drop_log().empty()) << "nothing was dropped";
}

TEST(Session, SilentSessionDetachesAfterHeartbeatBudget) {
  Rig r;
  r.eng(1).connect_client(100);
  const SessionToken tok = r.mgr(1).open(100);

  r.advance_to(2.0);
  Broker::Outputs out;
  EXPECT_FALSE(r.mgr(1).heartbeat(100, tok + 1, out)) << "wrong token";
  EXPECT_TRUE(r.mgr(1).heartbeat(100, tok, out));

  r.advance_to(4.0);  // 2 s of silence < 1.0 * 3 budget
  r.mgr(1).tick();
  EXPECT_EQ(r.mgr(1).state_of(100), SessionState::Active);

  r.advance_to(8.0);  // 6 s of silence > budget: implicit disconnect
  r.mgr(1).tick();
  EXPECT_EQ(r.mgr(1).state_of(100), SessionState::Detached);
}

TEST(Session, ResumeAtAnotherBrokerTriggersMoveAndAdoption) {
  Rig r;
  r.setup_pub_sub(100, 1);
  const SessionToken tok = r.mgr(1).open(100);
  r.mgr(1).disconnect(100);
  r.publish(11);  // buffered at the home broker

  // The client reappears at broker 3 holding its token: the home turns the
  // resume into a movement transaction toward broker 3.
  r.run_op(3, [&](MobilityEngine&, Broker::Outputs& out) {
    r.mgr(3).reattach(100, tok, out);
  });
  EXPECT_EQ(r.mgr(1).stats().resumed_move, 1u);
  EXPECT_EQ(r.eng(1).find_client(100), nullptr) << "stub re-homed";
  ASSERT_NE(r.eng(3).find_client(100), nullptr);
  EXPECT_EQ(r.delivered(100, {1, 11}), 1) << "buffer travelled with the move";

  // The reattach broker adopts the session on its next sweep and re-mints
  // the token under its own home id (tokens are single-home).
  r.mgr(3).tick();
  EXPECT_EQ(r.mgr(3).stats().adopted, 1u);
  EXPECT_EQ(r.mgr(3).state_of(100), SessionState::Active);
  const SessionToken tok2 = r.mgr(3).token_of(100);
  EXPECT_EQ(SessionManager::home_of(tok2), 3u);
  EXPECT_NE(tok2, tok);

  // The old home clears its record once the stub is gone: no residue.
  r.mgr(1).tick();
  EXPECT_EQ(r.mgr(1).live_sessions(), 0u);

  // Routing followed the device: deliveries now land at broker 3.
  r.publish(12);
  EXPECT_EQ(r.delivered_at(3, 100, {1, 12}), 1);
  EXPECT_EQ(r.delivered(100, {1, 12}), 1);
}

TEST(Session, MoveDisabledFallsBackToOverlayForwarding) {
  SessionConfig sc = test_session_cfg();
  sc.move_on_resume = false;  // same fallback branch a Busy refusal takes
  Rig r(sc);
  r.setup_pub_sub(100, 1);
  const SessionToken tok = r.mgr(1).open(100);
  r.mgr(1).disconnect(100);
  r.publish(11);  // buffered

  r.run_op(3, [&](MobilityEngine&, Broker::Outputs& out) {
    r.mgr(3).reattach(100, tok, out);
  });
  EXPECT_EQ(r.mgr(1).state_of(100), SessionState::Forwarding);
  EXPECT_EQ(r.mgr(3).state_of(100), SessionState::Attached);
  EXPECT_EQ(r.mgr(1).stats().resumed_forward, 1u);
  EXPECT_NE(r.eng(1).find_client(100), nullptr) << "routing state stays home";

  // The buffered backlog flushed through the forwarder to broker 3, and new
  // matches keep following.
  EXPECT_EQ(r.delivered_at(3, 100, {1, 11}), 1);
  r.publish(12);
  EXPECT_EQ(r.delivered_at(3, 100, {1, 12}), 1);
  EXPECT_EQ(r.delivered(100, {1, 12}), 1) << "forwarded exactly once";
  EXPECT_GE(r.mgr(1).stats().forwarded_pubs, 2u);

  // Heartbeats at the attachment point relay to the home broker.
  r.advance_to(2.0);
  r.run_op(3, [&](MobilityEngine&, Broker::Outputs& out) {
    EXPECT_TRUE(r.mgr(3).heartbeat(100, tok, out));
  });
  bool refreshed = false;
  for (const auto& i : r.mgr(1).snapshot()) {
    if (i.client == 100) refreshed = i.last_heartbeat >= 2.0;
  }
  EXPECT_TRUE(refreshed) << "relayed heartbeat must reach the home";

  // The client drops the link to broker 3 and reappears at home: local
  // delivery is restored and the attachment record at 3 is gone.
  r.mgr(3).disconnect(100);
  EXPECT_EQ(r.mgr(3).live_sessions(), 0u);
  r.run_op(1, [&](MobilityEngine&, Broker::Outputs& out) {
    r.mgr(1).reattach(100, tok, out);
  });
  EXPECT_EQ(r.mgr(1).state_of(100), SessionState::Active);
  r.publish(13);
  EXPECT_EQ(r.delivered_at(1, 100, {1, 13}), 1);
}

TEST(Session, ExpiryFiresWillAccountsDropsAndPrunesTombstone) {
  Rig r;
  r.setup_pub_sub(100, 1);
  // The session owner also advertises, so its last-will can route; a
  // listener at broker 2 subscribes to the same space.
  r.run_op(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.advertise(100, full_space_advertisement(), out);
  });
  r.run_op(2, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(200);
    e.subscribe(200, workload_filter(WorkloadKind::Covered, 2), out);
  });

  const SessionToken tok =
      r.mgr(1).open(100, make_publication({0, 0}, 100, 0));
  r.mgr(1).disconnect(100);
  r.publish(11);  // buffered, will be lost with the session

  r.advance_to(6.0);  // grace is 5 s
  r.mgr(1).tick();
  r.net.run();  // routes the will

  EXPECT_EQ(r.mgr(1).stats().expired, 1u);
  EXPECT_EQ(r.mgr(1).stats().wills_fired, 1u);
  EXPECT_EQ(r.eng(1).find_client(100), nullptr) << "stub dismantled";
  int wills_seen = 0;  // the will is re-minted to {100, seq} at open
  for (const auto& d : r.deliveries) {
    if (d.client == 200 && d.pub.client == 100) ++wills_seen;
  }
  EXPECT_EQ(wills_seen, 1) << "last-will reached the listener";
  EXPECT_EQ(r.delivered_total(200), 2) << "will plus the live publication";

  // The notification still buffered at expiry is in the drop ledger,
  // exactly once, tagged expiry.
  ASSERT_EQ(r.mgr(1).drop_log().size(), 1u);
  EXPECT_EQ(r.mgr(1).drop_log()[0].pub, (PublicationId{1, 11}));
  EXPECT_EQ(r.mgr(1).drop_log()[0].reason, session::DropReason::Expiry);
  EXPECT_EQ(r.mgr(1).stats().dropped_expiry, 1u);

  // Tombstone: the repair sweeps see an expired session (fast-path retract)
  // and a stale resume is answered Expired.
  EXPECT_EQ(r.mgr(1).repair_hint(100), 2);
  EXPECT_EQ(r.mgr(1).live_sessions(), 0u);
  EXPECT_EQ(r.mgr(1).expired_sessions(), 1u);
  std::vector<SessionAckMsg> acks;
  capture_acks(r.mgr(3), &acks);
  r.run_op(3, [&](MobilityEngine&, Broker::Outputs& out) {
    r.mgr(3).reattach(100, tok, out);
  });
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].verdict, SessionVerdict::Expired);
  EXPECT_EQ(r.mgr(3).live_sessions(), 0u) << "placeholder erased on verdict";

  // The tombstone itself is pruned after 2x grace: GC leaves no residue.
  r.advance_to(12.0);
  r.mgr(1).tick();
  EXPECT_EQ(r.mgr(1).expired_sessions(), 0u);
  EXPECT_EQ(r.mgr(1).repair_hint(100), 0);
}

TEST(Session, CloseLiftsCapsKeepsStubAndOptionallyFiresWill) {
  Rig r;
  r.eng(1).connect_client(100);
  ClientStub* stub = r.eng(1).find_client(100);
  ASSERT_NE(stub, nullptr);

  const SessionToken tok =
      r.mgr(1).open(100, make_publication({0, 0}, 100, 0));
  EXPECT_GT(stub->buffer_limits().max_count, 0u);

  Broker::Outputs out;
  EXPECT_FALSE(r.mgr(1).close(100, tok + 99, false, out)) << "wrong token";
  EXPECT_TRUE(r.mgr(1).close(100, tok, false, out));
  EXPECT_EQ(r.mgr(1).stats().closed, 1u);
  EXPECT_EQ(r.mgr(1).stats().wills_fired, 0u) << "will fires only on request";
  EXPECT_EQ(r.mgr(1).live_sessions(), 0u);
  EXPECT_NE(r.eng(1).find_client(100), nullptr)
      << "closing a session is not disconnecting the client";
  EXPECT_EQ(stub->buffer_limits().max_count, 0u) << "caps lifted";

  // Close-with-will (MQTT DISCONNECT-with-will semantics).
  const SessionToken tok2 =
      r.mgr(1).open(100, make_publication({0, 0}, 100, 0));
  ASSERT_NE(tok2, session::kNoToken);
  EXPECT_NE(tok2, tok) << "re-opening mints a fresh token";
  Broker::Outputs out2;
  EXPECT_TRUE(r.mgr(1).close(100, tok2, true, out2));
  EXPECT_EQ(r.mgr(1).stats().wills_fired, 1u);
}

TEST(Session, UnknownTokenResumeIsAckedUnknown) {
  Rig r;
  std::vector<SessionAckMsg> acks;
  capture_acks(r.mgr(3), &acks);
  const SessionToken bogus = (SessionToken{1} << 40) | 777;  // home = 1
  r.run_op(3, [&](MobilityEngine&, Broker::Outputs& out) {
    r.mgr(3).reattach(55, bogus, out);
  });
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].verdict, SessionVerdict::Unknown);
  EXPECT_EQ(r.mgr(3).live_sessions(), 0u) << "no dangling placeholder";
}

TEST(Session, OpenFrameConnectsClientAndAcksOverChannel) {
  Rig r;
  std::vector<SessionAckMsg> acks;
  capture_acks(r.mgr(2), &acks);
  Message msg;
  SessionOpenMsg open;
  open.client = 300;
  open.at = 2;
  msg.payload = open;
  Broker::Outputs out;
  r.mgr(2).on_session(2, msg, out);
  r.net.transmit(2, std::move(out));
  r.net.run();

  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].verdict, SessionVerdict::Resumed);
  EXPECT_EQ(SessionManager::home_of(acks[0].token), 2u);
  EXPECT_NE(r.eng(2).find_client(300), nullptr) << "client auto-connected";
  EXPECT_EQ(r.mgr(2).state_of(300), SessionState::Active);
}

// Scenario-level: an expired session's routing state is retracted by the
// anti-entropy repair sweeps, guided by the session probe, and the
// tombstone is pruned — a crash-free fleet ends with zero residue.
TEST(Session, ScenarioExpiredSessionIsGarbageCollectedByRepair) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = MobilityProtocol::Reconfiguration;
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  cfg.workload = WorkloadKind::Covered;
  cfg.total_clients = 10;
  cfg.moving_clients = 0;
  cfg.duration = 60.0;
  cfg.warmup = 10.0;
  cfg.publish_interval = 2.0;
  cfg.seed = 7;
  cfg.broker.repair.enabled = true;
  cfg.broker.repair.sweep_interval = 0.5;
  cfg.broker.repair.stale_after = 2.0;
  cfg.broker.repair.confirm_rounds = 2;
  cfg.broker.session.enabled = true;
  cfg.broker.session.grace = 5.0;
  cfg.broker.session.heartbeat_interval = 0;  // scripted clients: no beacons

  auto repair = repair::install_repair(cfg);
  auto sessions = session::install_sessions(cfg, repair);
  const ClientId victim = Scenario::subscriber_id(0);
  auto opened = std::make_shared<bool>(false);

  // Chain after install_sessions so the managers exist when this runs.
  auto prev = std::move(cfg.post_engines);
  cfg.post_engines = [prev, sessions, victim, opened](Scenario& s) {
    if (prev) prev(s);
    s.net().events().schedule_at(15.0, [&s, sessions, victim, opened] {
      for (const auto& [b, e] : s.engines()) {
        if (!e->find_client(victim)) continue;
        session::SessionManager* m = sessions->manager_of(b);
        if (!m) continue;
        *opened = m->open(victim) != session::kNoToken;
        m->disconnect(victim);
        return;
      }
    });
  };

  Scenario s(cfg);
  s.run();

  ASSERT_TRUE(*opened) << "scripted session never opened";
  std::uint64_t expired = 0;
  for (const auto& m : sessions->managers) expired += m->stats().expired;
  EXPECT_EQ(expired, 1u);

  // Nothing of the victim's routing state survives anywhere.
  for (BrokerId b = 1; b <= s.net().overlay().broker_count(); ++b) {
    for (const auto& [id, e] : s.net().broker(b).tables().prt()) {
      EXPECT_NE(id.client, victim) << "subscription residue at broker " << b;
    }
  }
  // Tombstones pruned by the quiet tail: session GC leaves no residue.
  for (const auto& m : sessions->managers) {
    EXPECT_EQ(m->expired_sessions(), 0u);
    EXPECT_EQ(m->repair_hint(victim), 0);
  }
}

}  // namespace
}  // namespace tmps
