// GET /sessions admin view: the JSON document sessions_json renders and the
// HTTP route install_admin_routes registers.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <memory>

#include "pubsub/workload.h"
#include "session/session_admin.h"
#include "sim/network.h"
#include "transport/http_admin.h"

namespace tmps {
namespace {

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the raw
/// response, empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  for (std::size_t off = 0; off < req.size();) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

struct AdminRig {
  AdminRig() : overlay(Overlay::chain(2)), net(overlay) {
    engine = std::make_unique<MobilityEngine>(net.broker(1), net);
    engine->set_transmit(
        [this](Broker::Outputs out) { net.transmit(1, std::move(out)); });
    SessionConfig sc;
    sc.enabled = true;
    sc.grace = 5.0;
    mgr = std::make_unique<session::SessionManager>(*engine, net, sc);
    engine->set_session_handler(mgr.get());
  }

  Overlay overlay;
  SimNetwork net;
  std::unique_ptr<MobilityEngine> engine;
  std::unique_ptr<session::SessionManager> mgr;
};

TEST(SessionAdmin, JsonExposesConfigCountersAndRows) {
  AdminRig r;
  r.engine->connect_client(100);
  r.engine->connect_client(101);
  const auto tok =
      r.mgr->open(100, make_publication({0, 0}, 100, 0));
  ASSERT_NE(tok, session::kNoToken);
  ASSERT_NE(r.mgr->open(101), session::kNoToken);
  r.mgr->disconnect(101);

  const std::string json = session::sessions_json(*r.mgr);
  EXPECT_NE(json.find("\"broker\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"grace\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"live\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"opened\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"expired_tombstones\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped_overflow\":0"), std::string::npos) << json;
  // Per-session rows carry state names, tokens and the will flag.
  EXPECT_NE(json.find("\"client\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"client\":101"), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"active\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"detached\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"has_will\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"token\":" + std::to_string(tok)), std::string::npos)
      << json;
}

TEST(SessionAdmin, JsonReflectsExpiryTombstones) {
  AdminRig r;
  r.engine->connect_client(100);
  ASSERT_NE(r.mgr->open(100), session::kNoToken);
  r.mgr->disconnect(100);
  r.net.events().schedule_at(6.0, [] {});
  r.net.run();
  r.mgr->tick();

  const std::string json = session::sessions_json(*r.mgr);
  EXPECT_NE(json.find("\"live\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"expired_tombstones\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"expired\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"expired\""), std::string::npos) << json;
}

TEST(SessionAdmin, HttpRouteServesTheDocument) {
  AdminRig r;
  r.engine->connect_client(100);
  ASSERT_NE(r.mgr->open(100), session::kNoToken);

  HttpAdminServer server;
  session::install_admin_routes(server, *r.mgr);
  ASSERT_TRUE(server.start(0));
  const std::string resp = http_get(server.port(), "/sessions");
  server.stop();

  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/json"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"broker\":1"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\"client\":100"), std::string::npos) << resp;
}

}  // namespace
}  // namespace tmps
