// The equality-predicate match index: correctness against the full-scan
// reference on randomized subscription populations and mutation sequences.
#include "routing/match_index.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "pubsub/workload.h"
#include "routing/routing_tables.h"

namespace tmps {
namespace {

TEST(MatchIndex, FilesEqualitySubsInBuckets) {
  SubMatchIndex idx;
  idx.insert({1, 1}, workload_filter(WorkloadKind::Covered, 1, 0));
  idx.insert({2, 1}, workload_filter(WorkloadKind::Covered, 2, 1));
  EXPECT_EQ(idx.indexed_count(), 2u);
  EXPECT_EQ(idx.scan_count(), 0u);
}

TEST(MatchIndex, FiltersWithoutEqualityFallBackToScan) {
  SubMatchIndex idx;
  idx.insert({1, 1}, Filter::build().attr("x").ge(0).le(10));
  EXPECT_EQ(idx.indexed_count(), 0u);
  EXPECT_EQ(idx.scan_count(), 1u);
  std::vector<SubscriptionId> c;
  idx.candidates(make_publication({9, 9}, 5, 0), c);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], (SubscriptionId{1, 1}));
}

TEST(MatchIndex, CandidatesIncludeEveryTrueMatch) {
  SubMatchIndex idx;
  std::vector<std::pair<SubscriptionId, Filter>> subs;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const Filter f = workload_filter_at(
        static_cast<WorkloadKind>(i % 4), static_cast<int>(i % 10) + 1,
        i % 12, i);
    subs.push_back({{100 + i, 1}, f});
    idx.insert({100 + i, 1}, f);
  }
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::int64_t> x(kSpaceLo, kSpaceHi);
  std::uniform_int_distribution<std::int64_t> g(0, 11);
  for (int round = 0; round < 200; ++round) {
    const Publication p = make_publication({1, 1}, x(rng), g(rng));
    std::vector<SubscriptionId> cands;
    idx.candidates(p, cands);
    const std::set<SubscriptionId> cand_set(cands.begin(), cands.end());
    EXPECT_EQ(cand_set.size(), cands.size()) << "no duplicate candidates";
    for (const auto& [id, f] : subs) {
      if (f.matches(p)) {
        EXPECT_TRUE(cand_set.contains(id)) << to_string(id);
      }
    }
  }
}

TEST(MatchIndex, EraseRemovesExactEntry) {
  SubMatchIndex idx;
  const Filter f = workload_filter(WorkloadKind::Covered, 1, 3);
  idx.insert({1, 1}, f);
  idx.insert({2, 1}, f);
  idx.erase({1, 1}, f);
  std::vector<SubscriptionId> c;
  idx.candidates(make_publication({9, 9}, 100, 3), c);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0], (SubscriptionId{2, 1}));
  idx.erase({2, 1}, f);
  c.clear();
  idx.candidates(make_publication({9, 9}, 100, 3), c);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(idx.bucket_count(), 0u);
}

TEST(MatchIndex, EraseOfUnknownIdIsHarmless) {
  SubMatchIndex idx;
  idx.erase({7, 7}, workload_filter(WorkloadKind::Covered, 1, 0));
  EXPECT_EQ(idx.indexed_count(), 0u);
}

TEST(MatchIndex, AdaptiveBucketChoiceAvoidsHotAttribute) {
  // All filters share class='STOCK'; after the first few land there, new
  // subscriptions must prefer their (much smaller) per-family g buckets.
  SubMatchIndex idx;
  for (std::uint32_t i = 0; i < 100; ++i) {
    idx.insert({i, 1}, workload_filter(WorkloadKind::Distinct,
                                       static_cast<int>(i % 10) + 1, i / 10));
  }
  // Probe with one specific family: candidates must be far fewer than 100.
  std::vector<SubscriptionId> c;
  idx.candidates(make_publication({9, 9}, 100, /*group=*/3), c);
  EXPECT_LT(c.size(), 30u) << "index degenerated into one hot bucket";
}

class IndexVsScan : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexVsScan, RoutingTablesMatchingEqualsReference) {
  std::mt19937_64 rng(GetParam());
  RoutingTables rt;
  std::uniform_int_distribution<int> member(1, 10);
  std::uniform_int_distribution<std::int64_t> grp(0, 7);
  std::uniform_int_distribution<int> kindi(0, 3);
  constexpr WorkloadKind kinds[] = {WorkloadKind::Covered,
                                    WorkloadKind::Chained, WorkloadKind::Tree,
                                    WorkloadKind::Distinct};
  std::vector<Subscription> live;

  std::uniform_int_distribution<int> op(0, 9);
  std::uniform_int_distribution<std::int64_t> x(kSpaceLo, kSpaceHi);
  std::uint32_t seq = 0;
  for (int step = 0; step < 400; ++step) {
    const int o = op(rng);
    if (o < 5 || live.empty()) {
      Subscription s{{1000 + seq, ++seq},
                     workload_filter(kinds[kindi(rng)], member(rng),
                                     grp(rng))};
      rt.upsert_sub(s, Hop::of_broker(static_cast<BrokerId>(1 + seq % 5)));
      live.push_back(s);
    } else if (o < 7) {
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t i = pick(rng);
      rt.erase_sub(live[i].id);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (o == 7 && !live.empty()) {
      // Shadow churn: install and either commit or abort.
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const Subscription& s = live[pick(rng)];
      rt.install_sub_shadow(s, Hop::of_broker(3), step + 1);
      if (step % 2 == 0) {
        rt.commit_shadow(s.id, step + 1);
      } else {
        rt.abort_shadow(s.id, step + 1);
      }
    } else {
      const Publication p = make_publication({1, seq}, x(rng), grp(rng));
      auto indexed = rt.matching_subs(p);
      auto scanned = rt.matching_subs_scan(p);
      std::set<SubscriptionId> a, b;
      for (const auto* e : indexed) a.insert(e->sub.id);
      for (const auto* e : scanned) b.insert(e->sub.id);
      ASSERT_EQ(a, b) << "index/scan divergence at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexVsScan,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace tmps
