// MobilityEngine client-facing API: subscription/advertisement lifecycle,
// publishing edge cases, multi-entity movements, notification interception.
#include <gtest/gtest.h>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

struct Rig {
  Rig() : overlay(Overlay::chain(4)), net(overlay) {
    for (BrokerId b = 1; b <= 4; ++b) {
      engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
      engines.back()->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            deliveries.emplace_back(c, p.id());
          });
    }
  }
  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
    net.run();
  }
  int delivered(ClientId c) const {
    int n = 0;
    for (const auto& [cc, _] : deliveries) {
      if (cc == c) ++n;
    }
    return n;
  }

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::vector<std::pair<ClientId, PublicationId>> deliveries;
};

TEST(EngineApi, SubscribeAssignsSequentialIds) {
  Rig r;
  r.engines[0]->connect_client(5);
  Broker::Outputs out;
  const auto id1 = r.engines[0]->subscribe(
      5, workload_filter(WorkloadKind::Covered, 1), out);
  const auto id2 = r.engines[0]->subscribe(
      5, workload_filter(WorkloadKind::Covered, 2), out);
  EXPECT_EQ(id1.client, 5u);
  EXPECT_EQ(id2.seq, id1.seq + 1);
  EXPECT_EQ(r.engines[0]->find_client(5)->subscriptions().size(), 2u);
}

TEST(EngineApi, OpsOnUnknownClientAreNoops) {
  Rig r;
  Broker::Outputs out;
  EXPECT_EQ(r.engines[0]->subscribe(99, Filter{}, out), (SubscriptionId{}));
  EXPECT_EQ(r.engines[0]->advertise(99, Filter{}, out), (AdvertisementId{}));
  r.engines[0]->unsubscribe(99, {99, 1}, out);
  r.engines[0]->unadvertise(99, {99, 1}, out);
  r.engines[0]->publish(99, Publication{}, out);
  EXPECT_TRUE(out.empty());
}

TEST(EngineApi, UnsubscribeRemovesFromProfileAndNetwork) {
  Rig r;
  r.run_op(4, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(1);
    e.advertise(1, full_space_advertisement(), out);
  });
  SubscriptionId sid;
  r.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(5);
    sid = e.subscribe(5, workload_filter(WorkloadKind::Covered, 1), out);
  });
  EXPECT_EQ(r.net.broker(3).tables().sub_count(), 1u);
  r.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.unsubscribe(5, sid, out);
  });
  EXPECT_TRUE(r.engines[0]->find_client(5)->subscriptions().empty());
  for (BrokerId b = 1; b <= 4; ++b) {
    EXPECT_EQ(r.net.broker(b).tables().sub_count(), 0u) << b;
  }
  // Unsubscribing twice is harmless.
  r.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.unsubscribe(5, sid, out);
  });
}

TEST(EngineApi, UnadvertiseCleansNetwork) {
  Rig r;
  AdvertisementId aid;
  r.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(7);
    aid = e.advertise(7, full_space_advertisement(), out);
  });
  EXPECT_EQ(r.net.broker(4).tables().adv_count(), 1u);
  r.run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.unadvertise(7, aid, out);
  });
  for (BrokerId b = 1; b <= 4; ++b) {
    EXPECT_EQ(r.net.broker(b).tables().adv_count(), 0u) << b;
  }
}

TEST(EngineApi, PublishAssignsIdWhenUnset) {
  Rig r;
  r.run_op(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(7);
    e.advertise(7, full_space_advertisement(), out);
    // A *different* co-located client subscribes (a publisher never receives
    // its own publications: they share the origin hop).
    e.connect_client(8);
    e.subscribe(8, workload_filter(WorkloadKind::Covered, 1), out);
  });
  r.run_op(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(7, make_publication({0, 0}, 100, 0), out);
  });
  ASSERT_EQ(r.deliveries.size(), 1u);
  EXPECT_EQ(r.deliveries[0].first, 8u);
  EXPECT_EQ(r.deliveries[0].second.client, 7u);  // id was stamped
}

TEST(EngineApi, MoveWithMultipleSubsAndAdvs) {
  Rig r;
  r.run_op(4, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(1);
    e.advertise(1, full_space_advertisement(), out);
    e.subscribe(1, workload_filter(WorkloadKind::Covered, 1, 5), out);
  });
  // The mover holds 3 subscriptions and 1 advertisement.
  r.run_op(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(5);
    e.subscribe(5, workload_filter(WorkloadKind::Covered, 2), out);
    e.subscribe(5, workload_filter(WorkloadKind::Covered, 3), out);
    e.subscribe(5, workload_filter(WorkloadKind::Distinct, 7, 1), out);
    e.advertise(5,
                Filter::build()
                    .attr("class").eq("STOCK")
                    .attr("g").ge(5).le(5)
                    .attr("x").ge(0).le(10000),
                out);
  });
  TxnId txn = kNoTxn;
  r.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(5, 4, out);
  });
  EXPECT_EQ(r.engines[0]->source_state(txn), SourceCoordState::Commit);
  const ClientStub* stub = r.engines[3]->find_client(5);
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(stub->subscriptions().size(), 3u);
  EXPECT_EQ(stub->advertisements().size(), 1u);

  // All three subscriptions deliver at the new location.
  r.run_op(4, [](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(1, make_publication({0, 0}, 100, 0), out);    // covered #2/#3
    e.publish(1, make_publication({0, 0}, 6200, 1), out);   // distinct #7 g1
  });
  EXPECT_GE(r.delivered(5), 2);
  // The mover's advertisement still routes: a subscriber to g=5 receives
  // the mover's publications from broker 4.
  r.run_op(2, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(8);
    e.subscribe(8, workload_filter(WorkloadKind::Covered, 1, 5), out);
  });
  r.run_op(4, [](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(5, make_publication({0, 0}, 50, 5), out);
  });
  EXPECT_EQ(r.delivered(8), 1);
}

TEST(EngineApi, NotificationToDepartedClientSwallowed) {
  Rig r;
  // A straggler notification for a client this engine no longer hosts must
  // be dropped, not crash.
  EXPECT_TRUE(r.engines[0]->intercept_notification(
      999, make_publication({1, 1}, 5, 0)));
}

TEST(EngineApi, ConnectClientTwiceReplacesStub) {
  Rig r;
  ClientStub& a = r.engines[0]->connect_client(5);
  a.queue_command(make_publication({5, 99}, 1, 0));
  ClientStub& b = r.engines[0]->connect_client(5);
  EXPECT_TRUE(b.take_commands().empty()) << "fresh stub expected";
  EXPECT_EQ(r.engines[0]->hosted_clients(), 1u);
}

TEST(EngineApi, SourceMoveRecordsVisibleForIntrospection) {
  Rig r;
  r.run_op(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(5);
    e.subscribe(5, workload_filter(WorkloadKind::Covered, 1), out);
  });
  EXPECT_FALSE(r.engines[0]->has_active_transactions());
  TxnId txn = kNoTxn;
  r.run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(5, 3, out);
  });
  EXPECT_TRUE(r.engines[0]->has_active_transactions());
  EXPECT_EQ(r.engines[0]->source_state(txn), SourceCoordState::Commit);
  EXPECT_EQ(r.engines[0]->target_state(txn), std::nullopt);
  EXPECT_EQ(r.engines[2]->target_state(txn), TargetCoordState::Commit);
}

TEST(EngineApi, TryInitiateMoveReportsTypedRefusals) {
  Rig r;
  r.engines[0]->connect_client(5);
  Broker::Outputs out;
  EXPECT_EQ(r.engines[0]->try_initiate_move(99, 2, out).refusal,
            MoveRefusal::UnknownClient);
  EXPECT_EQ(r.engines[0]->try_initiate_move(5, 1, out).refusal,
            MoveRefusal::InvalidTarget);  // target = self
  EXPECT_EQ(r.engines[0]->try_initiate_move(5, 42, out).refusal,
            MoveRefusal::InvalidTarget);  // not in overlay
  EXPECT_TRUE(out.empty()) << "refusals must not emit messages";
  EXPECT_FALSE(r.engines[0]->has_active_transactions());
}

TEST(EngineApi, ConcurrentMoveRequestsOnSameClientRefusedBusy) {
  Rig r;
  r.run_op(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(5);
    e.subscribe(5, workload_filter(WorkloadKind::Covered, 1), out);
  });

  Broker::Outputs out;
  const MoveStart first = r.engines[0]->try_initiate_move(5, 3, out);
  ASSERT_TRUE(first.started());
  EXPECT_EQ(first.refusal, MoveRefusal::None);

  // Second request while the first transaction is still in flight: a typed
  // Busy refusal (not a silent kNoTxn), no second transaction, no traffic.
  Broker::Outputs out2;
  const MoveStart second = r.engines[0]->try_initiate_move(5, 4, out2);
  EXPECT_FALSE(second.started());
  EXPECT_EQ(second.refusal, MoveRefusal::Busy);
  EXPECT_TRUE(out2.empty());

  r.net.transmit(1, std::move(out));
  r.net.run();
  // The first movement committed; the client is movable again at broker 3.
  ASSERT_NE(r.engines[2]->find_client(5), nullptr);
  r.run_op(3, [](MobilityEngine& e, Broker::Outputs& out3) {
    EXPECT_TRUE(e.try_initiate_move(5, 4, out3).started());
  });
  EXPECT_NE(r.engines[3]->find_client(5), nullptr);
}

TEST(EngineApi, MoveRefusalNames) {
  EXPECT_STREQ(to_string(MoveRefusal::None), "none");
  EXPECT_STREQ(to_string(MoveRefusal::UnknownClient), "unknown-client");
  EXPECT_STREQ(to_string(MoveRefusal::InvalidTarget), "invalid-target");
  EXPECT_STREQ(to_string(MoveRefusal::Busy), "busy");
  EXPECT_STREQ(to_string(MoveRefusal::NotRunning), "not-running");
}

}  // namespace
}  // namespace tmps
