// End-to-end tests of the traditional (covering-based, end-to-end) movement
// protocol: correctness of transfer, fresh incarnations, buffering, and the
// covering pathologies the paper measures (root movement bursts).
#include <gtest/gtest.h>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;
constexpr ClientId kPublisher = 600;

class TraditionalFixture : public ::testing::Test {
 protected:
  TraditionalFixture() : overlay_(Overlay::chain(5)), net_(overlay_) {
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      MobilityConfig cfg;
      cfg.protocol = MobilityProtocol::Traditional;
      engines_.push_back(
          std::make_unique<MobilityEngine>(net_.broker(b), net_, cfg));
      auto* eng = engines_.back().get();
      eng->set_transmit(
          [this, b](Broker::Outputs out) { net_.transmit(b, std::move(out)); });
      eng->set_delivery_sink(
          [this](ClientId c, const Publication& p, SimTime) {
            deliveries_.emplace_back(c, p.id());
          });
      eng->set_move_callback(
          [this](const MovementRecord& rec) { records_.push_back(rec); });
    }
    run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kPublisher);
      e.advertise(kPublisher, full_space_advertisement(), out);
    });
    run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kMover);
      sub_id_ = e.subscribe(kMover, workload_filter(WorkloadKind::Covered, 2),
                            out);
    });
  }

  MobilityEngine& engine(BrokerId b) { return *engines_[b - 1]; }

  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(engine(b), out);
    net_.transmit(b, std::move(out));
    net_.run();
  }

  TxnId move(BrokerId from, BrokerId to) {
    TxnId txn = kNoTxn;
    run_op(from, [&](MobilityEngine& e, Broker::Outputs& out) {
      txn = e.initiate_move(kMover, to, out);
    });
    return txn;
  }

  int delivered(ClientId c, PublicationId id) const {
    int n = 0;
    for (const auto& [cc, pid] : deliveries_) {
      if (cc == c && pid == id) ++n;
    }
    return n;
  }

  Overlay overlay_;
  SimNetwork net_;
  std::vector<std::unique_ptr<MobilityEngine>> engines_;
  std::vector<std::pair<ClientId, PublicationId>> deliveries_;
  std::vector<MovementRecord> records_;
  SubscriptionId sub_id_;
};

TEST_F(TraditionalFixture, MoveTransfersClient) {
  const TxnId txn = move(2, 5);
  ASSERT_NE(txn, kNoTxn);
  EXPECT_EQ(engine(2).find_client(kMover), nullptr);
  ASSERT_NE(engine(5).find_client(kMover), nullptr);
  EXPECT_EQ(engine(5).find_client(kMover)->state(), ClientState::Started);
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_TRUE(records_[0].committed);
  EXPECT_GT(records_[0].duration(), 0.0);
}

TEST_F(TraditionalFixture, ReissuedSubscriptionHasFreshIncarnation) {
  move(2, 5);
  const ClientStub* stub = engine(5).find_client(kMover);
  ASSERT_NE(stub, nullptr);
  ASSERT_EQ(stub->subscriptions().size(), 1u);
  EXPECT_NE(stub->subscriptions()[0].id, sub_id_) << "must be re-issued";
  EXPECT_EQ(stub->subscriptions()[0].id.client, kMover);
  // The old incarnation is gone from the network.
  for (BrokerId b = 1; b <= 5; ++b) {
    EXPECT_EQ(net_.broker(b).tables().find_sub(sub_id_), nullptr) << b;
  }
}

TEST_F(TraditionalFixture, DeliveryAfterMove) {
  move(2, 5);
  Publication p = make_publication({kPublisher, 9}, 100, 0);
  run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  EXPECT_EQ(delivered(kMover, p.id()), 1);
}

TEST_F(TraditionalFixture, NoDuplicatesAcrossMove) {
  // Publications in flight while the move progresses must not be delivered
  // twice (once via the old subscription, once via the new).
  Broker::Outputs out;
  engine(2).initiate_move(kMover, 5, out);
  net_.transmit(2, std::move(out));
  std::vector<PublicationId> ids;
  for (int i = 0; i < 20; ++i) {
    net_.events().schedule_at(0.0004 * i, [this, i] {
      Broker::Outputs o;
      engine(1).publish(kPublisher,
                        make_publication({kPublisher, 100u + i}, 50, 0), o);
      net_.transmit(1, std::move(o));
    });
    ids.push_back({kPublisher, static_cast<std::uint32_t>(100 + i)});
  }
  net_.run();
  for (const auto& id : ids) {
    EXPECT_LE(delivered(kMover, id), 1) << to_string(id);
  }
}

TEST_F(TraditionalFixture, RejectedMoveResumesAtSource) {
  engine(5).mutable_config().accept_clients = false;
  move(2, 5);
  ASSERT_NE(engine(2).find_client(kMover), nullptr);
  EXPECT_EQ(engine(2).find_client(kMover)->state(), ClientState::Started);
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_FALSE(records_[0].committed);
  Publication p = make_publication({kPublisher, 9}, 100, 0);
  run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.publish(kPublisher, Publication(p), out);
  });
  EXPECT_EQ(delivered(kMover, p.id()), 1);
}

TEST_F(TraditionalFixture, MoveCompletionWaitsForCascade) {
  // Per-movement message accounting includes the (un)subscription traffic.
  net_.stats().reset_traffic();
  const TxnId txn = move(2, 5);
  // At minimum: request (3 hops) + ready (3) + buffered state (3) + the
  // re-subscription propagation and old-subscription retraction.
  EXPECT_GT(net_.stats().messages_for_cause(txn), 9u);
  EXPECT_EQ(net_.outstanding(txn), 0u);
}

// --- the covering pathology (Sec. 4.4 / Fig. 11) -----------------------------

class CoveringPathology : public ::testing::Test {
 protected:
  CoveringPathology() : overlay_(Overlay::chain(6)), net_(overlay_) {
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      MobilityConfig cfg;
      cfg.protocol = MobilityProtocol::Traditional;
      engines_.push_back(
          std::make_unique<MobilityEngine>(net_.broker(b), net_, cfg));
      engines_.back()->set_transmit([this, b](Broker::Outputs out) {
        net_.transmit(b, std::move(out));
      });
    }
    // Publisher at broker 6; covering family (root + 9 leaves) at broker 1.
    run_op(6, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kPublisher);
      e.advertise(kPublisher, full_space_advertisement(), out);
    });
    for (int i = 1; i <= 10; ++i) {
      const ClientId c = 700 + i;
      run_op(1, [&](MobilityEngine& e, Broker::Outputs& out) {
        e.connect_client(c);
        e.subscribe(c, workload_filter(WorkloadKind::Covered, i), out);
      });
    }
    net_.stats().reset_traffic();
  }

  MobilityEngine& engine(BrokerId b) { return *engines_[b - 1]; }
  void run_op(BrokerId b, const std::function<void(MobilityEngine&,
                                                   Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(engine(b), out);
    net_.transmit(b, std::move(out));
    net_.run();
  }

  std::uint64_t move_cost(ClientId c, BrokerId from, BrokerId to) {
    TxnId txn = kNoTxn;
    run_op(from, [&](MobilityEngine& e, Broker::Outputs& out) {
      txn = e.initiate_move(c, to, out);
    });
    return net_.stats().messages_for_cause(txn);
  }

  Overlay overlay_;
  SimNetwork net_;
  std::vector<std::unique_ptr<MobilityEngine>> engines_;
};

TEST_F(CoveringPathology, MovingRootCostsFarMoreThanLeaf) {
  // Moving a covered leaf: its (un)subscriptions are quenched by the root.
  const auto leaf_cost = move_cost(702, 1, 6);
  // Moving the root: re-subscribing it at the target retracts all nine
  // leaves network-wide; unsubscribing it at the source re-propagates them.
  const auto root_cost = move_cost(701, 1, 6);
  EXPECT_GT(root_cost, 3 * leaf_cost)
      << "root=" << root_cost << " leaf=" << leaf_cost;
}

TEST_F(CoveringPathology, LeafMoveIsQuenchedCheap) {
  const auto leaf_cost = move_cost(703, 1, 6);
  // Control traffic (request/ready/state over 5 links = 15) plus the
  // re-subscription up to the first broker holding the covering root — the
  // propagation itself must be quenched.
  EXPECT_LE(leaf_cost, 25u) << leaf_cost;
}

}  // namespace
}  // namespace tmps
