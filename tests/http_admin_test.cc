// Per-broker HTTP admin endpoints on the TCP transport: /healthz, /metrics
// (Prometheus text), /routing (snapshot JSONL), /flight (flight-recorder
// dump) and /timeseries (windowed metrics), loopback-only and off by
// default. Includes the TSan scrape-under-load race test.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/introspect.h"
#include "pubsub/workload.h"
#include "transport/tcp_transport.h"

namespace tmps {
namespace {

BrokerConfig no_covering() {
  BrokerConfig bc;
  bc.subscription_covering = false;
  bc.advertisement_covering = false;
  return bc;
}

BrokerConfig with_admin(std::uint16_t base_port = 0) {
  BrokerConfig bc = no_covering();
  bc.admin.enabled = true;
  bc.admin.base_port = base_port;
  return bc;
}

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the raw
/// response (status line + headers + body), empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  for (std::size_t off = 0; off < req.size();) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    off += static_cast<std::size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

TEST(HttpAdmin, DisabledByDefault) {
  const Overlay overlay = Overlay::chain(3);
  TcpTransport net(overlay, 0, no_covering());
  ASSERT_TRUE(net.start());
  for (BrokerId b = 1; b <= 3; ++b) {
    EXPECT_EQ(net.admin_port_of(b), 0);
  }
  net.stop();
}

class HttpAdminTest : public ::testing::Test {
 protected:
  HttpAdminTest()
      : overlay_(Overlay::chain(3)),
        net_(overlay_, 0, with_admin(), MobilityConfig{}) {
    started_ = net_.start();
  }
  ~HttpAdminTest() override { net_.stop(); }

  Overlay overlay_;
  TcpTransport net_;
  bool started_ = false;
};

TEST_F(HttpAdminTest, EveryBrokerServesHealthz) {
  ASSERT_TRUE(started_);
  for (BrokerId b = 1; b <= 3; ++b) {
    const std::uint16_t port = net_.admin_port_of(b);
    ASSERT_GT(port, 0) << "broker " << b;
    const std::string resp = http_get(port, "/healthz");
    EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
    EXPECT_NE(resp.find("\"status\":\"ok\""), std::string::npos) << resp;
    EXPECT_NE(resp.find("\"broker\":" + std::to_string(b)),
              std::string::npos)
        << resp;
  }
}

TEST_F(HttpAdminTest, MetricsEndpointSpeaksPrometheusText) {
  ASSERT_TRUE(started_);
  // Generate some traffic so the counters are non-trivial.
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(600);
    e.advertise(600, full_space_advertisement(), out);
  });
  net_.drain();
  const std::string resp = http_get(net_.admin_port_of(2), "/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos)
      << resp;
  const std::string body = body_of(resp);
  EXPECT_NE(body.find("# TYPE"), std::string::npos) << body;
  EXPECT_NE(body.find("tcp_frames_received_total"), std::string::npos)
      << body;
}

TEST_F(HttpAdminTest, RoutingEndpointReturnsParseableSnapshot) {
  ASSERT_TRUE(started_);
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(600);
    e.advertise(600, full_space_advertisement(), out);
  });
  net_.run_on(3, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(500);
    e.subscribe(500, workload_filter(WorkloadKind::Covered, 2), out);
  });
  net_.drain();

  const std::string resp = http_get(net_.admin_port_of(2), "/routing");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/x-ndjson"), std::string::npos) << resp;
  std::string body = body_of(resp);
  if (!body.empty() && body.back() == '\n') body.pop_back();
  const auto snap = obs::BrokerSnapshot::from_jsonl(body);
  ASSERT_TRUE(snap.has_value()) << body;
  EXPECT_EQ(snap->broker, 2u);
  EXPECT_FALSE(snap->final_snapshot);
  // Broker 2 (mid-chain) saw both the advertisement and the subscription.
  EXPECT_FALSE(snap->srt.empty());
  EXPECT_FALSE(snap->prt.empty());
}

TEST_F(HttpAdminTest, UnknownPathIs404AndWrongMethodIs405) {
  ASSERT_TRUE(started_);
  EXPECT_NE(http_get(net_.admin_port_of(1), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  // A POST to a valid path: refused without invoking the handler.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(net_.admin_port_of(1));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      "POST /healthz HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(out.find("HTTP/1.1 405"), std::string::npos) << out;
}

TEST_F(HttpAdminTest, FlightEndpointDumpsRecentEvents) {
  ASSERT_TRUE(started_);
  net_.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(600);
    e.advertise(600, full_space_advertisement(), out);
  });
  net_.run_on(3, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(500);
    e.subscribe(500, workload_filter(WorkloadKind::Covered, 2), out);
  });
  net_.drain();

  const std::string resp = http_get(net_.admin_port_of(2), "/flight");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/x-ndjson"), std::string::npos) << resp;
  const std::string body = body_of(resp);
  EXPECT_NE(body.find("\"flight\":true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"broker\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"reason\":\"http\""), std::string::npos) << body;
  // The mid-chain broker forwarded both control messages.
  EXPECT_NE(body.find("\"kind\":\"adv\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"kind\":\"sub\""), std::string::npos) << body;
}

TEST(HttpAdmin, TimeseriesEndpointServesWindows) {
  const Overlay overlay = Overlay::chain(2);
  BrokerConfig bc = with_admin();
  bc.obs.timeseries_interval = 0.1;
  TcpTransport net(overlay, 0, bc, MobilityConfig{});
  ASSERT_TRUE(net.start());
  net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(600);
    e.advertise(600, full_space_advertisement(), out);
  });
  net.drain();
  // Let the timer thread close at least one window past the baseline.
  std::this_thread::sleep_for(std::chrono::milliseconds(350));

  const std::string resp = http_get(net.admin_port_of(1), "/timeseries");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/x-ndjson"), std::string::npos) << resp;
  const std::string body = body_of(resp);
  EXPECT_NE(body.find("\"series\":["), std::string::npos) << body;
  EXPECT_NE(body.find("broker_messages_processed_total"), std::string::npos)
      << body;
  net.stop();
}

TEST(HttpAdmin, ProfileEndpointsServeStageRows) {
  const Overlay overlay = Overlay::chain(2);
  BrokerConfig bc = with_admin();
  bc.obs.profile = true;
  bc.obs.profile_rate = 1;  // sample every walk: publications below are few
  TcpTransport net(overlay, 0, bc, MobilityConfig{});
  ASSERT_TRUE(net.start());
  net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(600);
    e.advertise(600, full_space_advertisement(), out);
  });
  net.run_on(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(500);
    e.subscribe(500, workload_filter(WorkloadKind::Covered, 2), out);
  });
  net.drain();
  for (std::uint32_t seq = 1; seq <= 20; ++seq) {
    const Publication p = make_publication({600, seq}, 100, 0);
    net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(600, Publication(p), out);
    });
  }
  net.drain();

  const std::string resp = http_get(net.admin_port_of(1), "/profile");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  EXPECT_NE(resp.find("application/x-ndjson"), std::string::npos) << resp;
  const std::string body = body_of(resp);
  EXPECT_NE(body.find("\"stage\":\"publish\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"stage\":\"match\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"self_ns\":"), std::string::npos) << body;

  const std::string collapsed =
      http_get(net.admin_port_of(1), "/profile/collapsed");
  EXPECT_NE(collapsed.find("HTTP/1.1 200"), std::string::npos) << collapsed;
  const std::string stacks = body_of(collapsed);
  EXPECT_NE(stacks.find("publish;match "), std::string::npos) << stacks;
  net.stop();

  // Without profiling configured, the routes answer 404, not garbage.
  TcpTransport off(overlay, 0, with_admin(), MobilityConfig{});
  ASSERT_TRUE(off.start());
  EXPECT_NE(http_get(off.admin_port_of(1), "/profile").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_get(off.admin_port_of(1), "/profile/collapsed")
                .find("HTTP/1.1 404"),
            std::string::npos);
  off.stop();
}

// TSan target (see scripts/ci.sh): admin scrapes race against broker
// threads recording metrics/flight events and the timer thread ticking the
// time-series ring (plus, with profiling on, broker threads writing stage
// slabs that the scrape-triggered flush reads). Any locking mistake in the
// snapshot paths shows up here.
TEST(HttpAdmin, ConcurrentScrapesDuringTrafficAreRaceFree) {
  constexpr ClientId kPublisher = 600;
  constexpr ClientId kSubscriber = 500;
  const Overlay overlay = Overlay::chain(3);
  BrokerConfig bc = with_admin();
  bc.obs.timeseries_interval = 0.05;
  bc.obs.profile = true;
  bc.obs.profile_rate = 1;
  TcpTransport net(overlay, 0, bc, MobilityConfig{});
  ASSERT_TRUE(net.start());
  net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  net.run_on(3, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kSubscriber);
    e.subscribe(kSubscriber, workload_filter(WorkloadKind::Covered, 2), out);
  });
  net.drain();

  std::atomic<bool> stop{false};
  std::vector<std::thread> scrapers;
  for (BrokerId b = 1; b <= 3; ++b) {
    scrapers.emplace_back([&net, &stop, b] {
      const std::uint16_t port = net.admin_port_of(b);
      int i = 0;
      while (!stop.load()) {
        const char* path = i % 4 == 0   ? "/metrics"
                           : i % 4 == 1 ? "/timeseries"
                           : i % 4 == 2 ? "/flight"
                                        : "/profile";
        const std::string resp = http_get(port, path);
        EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos)
            << "broker " << b << " " << path;
        ++i;
      }
    });
  }
  for (std::uint32_t seq = 1; seq <= 40; ++seq) {
    const Publication p = make_publication({kPublisher, seq}, 100, 0);
    net.run_on(1, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(kPublisher, Publication(p), out);
    });
  }
  net.drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true);
  for (auto& t : scrapers) t.join();
  net.stop();
}

TEST(HttpAdmin, FixedBasePortIsHonoured) {
  // Ephemeral overlay ports, fixed admin ports: broker b listens on
  // base+b. Pick a high base to dodge collisions; skip if taken.
  const std::uint16_t base = 38650;
  const Overlay overlay = Overlay::chain(2);
  TcpTransport net(overlay, 0, with_admin(base), MobilityConfig{});
  if (!net.start()) GTEST_SKIP() << "port range unavailable";
  EXPECT_EQ(net.admin_port_of(1), base + 1);
  EXPECT_EQ(net.admin_port_of(2), base + 2);
  const std::string resp = http_get(base + 1, "/healthz");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos) << resp;
  net.stop();
}

}  // namespace
}  // namespace tmps
