// Session layer over real loopback sockets: TcpSessionClient handshake and
// delivery push, disconnect/grace/reconnect-resume, connectivity-triggered
// movement on a resume at a different broker, reconnect backoff, and the
// per-broker GET /sessions route on the live admin server.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "pubsub/workload.h"
#include "session/tcp_session_client.h"
#include "session/tcp_session_host.h"

namespace tmps {
namespace {

using session::SessionManager;
using session::TcpSessionClient;
using session::TcpSessionHost;

constexpr ClientId kEdge = 700;
constexpr ClientId kPublisher = 600;

/// Polls `pred` until it holds or `timeout_s` elapses.
bool eventually(double timeout_s, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  ::send(fd, req.data(), req.size(), 0);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

class SessionTcpTest : public ::testing::Test {
 protected:
  SessionTcpTest() : overlay_(Overlay::chain(3)) {
    BrokerConfig bc;
    bc.subscription_covering = false;
    bc.advertisement_covering = false;
    bc.admin.enabled = true;
    net_ = std::make_unique<TcpTransport>(overlay_, 0, bc);
    SessionConfig sc;
    sc.enabled = true;
    sc.heartbeat_interval = 0;  // liveness driven by socket EOF in this test
    sc.grace = 30.0;            // long grace: nothing expires mid-test
    sc.tick_interval = 0.05;    // fast sweeps so adoption is quick
    host_ = std::make_unique<TcpSessionHost>(*net_, sc);
    started_ = net_->start();
    host_->start();
  }
  ~SessionTcpTest() override {
    host_->stop();
    net_->stop();
  }

  /// Stationary publisher at broker 3 covering the whole space.
  void setup_publisher() {
    net_->run_on(3, [](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(kPublisher);
      e.advertise(kPublisher, full_space_advertisement(), out);
    });
    net_->drain();
  }

  void publish(std::uint32_t seq) {
    net_->run_on(3, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(kPublisher, make_publication({kPublisher, seq}, 100, 0), out);
    });
    net_->drain();
  }

  static int count(const std::vector<Publication>& pubs, PublicationId id) {
    int n = 0;
    for (const auto& p : pubs) {
      if (p.id() == id) ++n;
    }
    return n;
  }

  Overlay overlay_;
  std::unique_ptr<TcpTransport> net_;
  std::unique_ptr<TcpSessionHost> host_;
  bool started_ = false;
};

TEST_F(SessionTcpTest, OpenSubscribeDeliverOverSockets) {
  ASSERT_TRUE(started_);
  setup_publisher();

  TcpSessionClient c(kEdge);
  ASSERT_TRUE(c.connect(net_->port_of(1)));
  ASSERT_TRUE(c.open_session());
  ASSERT_GT(c.wait_for_ack(0, 5.0), 0u);
  ASSERT_TRUE(c.last_ack().has_value());
  EXPECT_EQ(c.last_ack()->verdict, SessionVerdict::Resumed);
  EXPECT_EQ(SessionManager::home_of(c.token()), 1u);

  ASSERT_TRUE(c.subscribe(
      {{kEdge, 1}, workload_filter(WorkloadKind::Covered, 1)}));
  net_->drain();
  ASSERT_TRUE(eventually(2.0, [&] {
    std::size_t subs = 0;
    net_->run_on(1, [&](MobilityEngine& e, Broker::Outputs&) {
      if (const ClientStub* s = e.find_client(kEdge)) {
        subs = s->subscriptions().size();
      }
    });
    return subs == 1;
  }));

  publish(10);
  EXPECT_TRUE(eventually(5.0, [&] {
    return count(c.deliveries(), {kPublisher, 10}) == 1;
  }));

  // The admin server exposes the session.
  const std::string resp = http_get(net_->admin_port_of(1), "/sessions");
  EXPECT_NE(resp.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(resp.find("\"client\":700"), std::string::npos) << resp;

  ASSERT_TRUE(c.heartbeat());
  ASSERT_TRUE(c.close_session(false));
}

TEST_F(SessionTcpTest, DropAndReconnectResumesAndReplaysBuffer) {
  ASSERT_TRUE(started_);
  setup_publisher();

  TcpSessionClient c(kEdge);
  ASSERT_TRUE(c.connect(net_->port_of(1)));
  ASSERT_TRUE(c.open_session());
  ASSERT_GT(c.wait_for_ack(0, 5.0), 0u);
  const std::uint64_t tok = c.token();
  ASSERT_NE(tok, 0u);
  ASSERT_TRUE(c.subscribe(
      {{kEdge, 1}, workload_filter(WorkloadKind::Covered, 1)}));
  net_->drain();

  // The link flakes out; the broker detaches the session and buffers.
  c.disconnect();
  ASSERT_TRUE(eventually(5.0, [&] {
    bool detached = false;
    net_->run_on(1, [&](MobilityEngine&, Broker::Outputs&) {
      detached = host_->manager_of(1)->state_of(kEdge) ==
                 session::SessionState::Detached;
    });
    return detached;
  }));
  publish(11);
  EXPECT_EQ(count(c.deliveries(), {kPublisher, 11}), 0);

  // Reconnect to the same broker and resume with the stored token: the
  // buffered notification replays down the fresh socket, exactly once.
  const std::size_t acks_before = c.acks_seen();
  ASSERT_TRUE(c.connect(net_->port_of(1)));
  ASSERT_TRUE(c.resume_session());
  ASSERT_GT(c.wait_for_ack(acks_before, 5.0), acks_before);
  EXPECT_EQ(c.last_ack()->verdict, SessionVerdict::Resumed);
  EXPECT_TRUE(eventually(5.0, [&] {
    return count(c.deliveries(), {kPublisher, 11}) == 1;
  }));
  publish(12);
  EXPECT_TRUE(eventually(5.0, [&] {
    return count(c.deliveries(), {kPublisher, 12}) == 1;
  }));
  EXPECT_EQ(count(c.deliveries(), {kPublisher, 11}), 1) << "no duplicate";
}

TEST_F(SessionTcpTest, ResumeAtAnotherBrokerMovesTheSession) {
  ASSERT_TRUE(started_);
  setup_publisher();

  TcpSessionClient c(kEdge);
  ASSERT_TRUE(c.connect(net_->port_of(1)));
  ASSERT_TRUE(c.open_session());
  ASSERT_GT(c.wait_for_ack(0, 5.0), 0u);
  const std::uint64_t tok = c.token();
  ASSERT_TRUE(c.subscribe(
      {{kEdge, 1}, workload_filter(WorkloadKind::Covered, 1)}));
  net_->drain();

  // Reappear at broker 2: the home initiates a movement, broker 2 adopts
  // the session and pushes a re-minted token down the new socket.
  c.disconnect();
  ASSERT_TRUE(c.connect(net_->port_of(2)));
  ASSERT_TRUE(c.resume_session(tok));
  ASSERT_TRUE(eventually(10.0, [&] {
    return c.token() != tok && SessionManager::home_of(c.token()) == 2;
  })) << "adoption ack with a re-homed token";

  bool moved = false;
  net_->run_on(2, [&](MobilityEngine& e, Broker::Outputs&) {
    moved = e.find_client(kEdge) != nullptr;
  });
  EXPECT_TRUE(moved) << "stub re-homed to broker 2";

  // Deliveries now reach the client through its new broker.
  publish(20);
  EXPECT_TRUE(eventually(5.0, [&] {
    return count(c.deliveries(), {kPublisher, 20}) == 1;
  }));
}

TEST(SessionTcpClient, ReconnectBackoffGivesUpAfterMaxAttempts) {
  session::ClientOptions opt;
  opt.backoff_base = 0.005;
  opt.backoff_max = 0.02;
  opt.max_attempts = 3;
  TcpSessionClient c(42, opt);
  EXPECT_GE(c.jitter(), 0.0);
  EXPECT_LT(c.jitter(), 1.0);
  // Nobody listens on port 1: every attempt fails, with backoff between.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(c.connect(1));
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(c.attempts_made(), 3u);
  EXPECT_GE(took, 0.005 * (1.0 + c.jitter())) << "backoff must actually wait";
  // Distinct clients derive distinct deterministic jitter.
  TcpSessionClient d(43, opt);
  EXPECT_NE(c.jitter(), d.jitter());
}

}  // namespace
}  // namespace tmps
