// Property test for the disconnected-operation buffer bounds (session
// layer): across randomized workloads of buffering, clock advance, age
// expiry and resume/pause cycles, the count/byte caps are never exceeded
// and every publication is accounted exactly once — delivered, still
// buffered, or in the drop ledger. A manager-level run cross-checks the
// stub's drop callbacks against the SessionManager ledger and the metrics
// counter (the soak auditor's bookkeeping).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>

#include "core/client_stub.h"
#include "core/mobility_engine.h"
#include "obs/metrics.h"
#include "pubsub/workload.h"
#include "session/session_manager.h"
#include "sim/network.h"

namespace tmps {
namespace {

Publication sized_pub(std::uint32_t seq, std::size_t pad) {
  Publication p = make_publication({9, seq}, 100, 0);
  if (pad > 0) p.set("pad", Value(std::string(pad, 'x')));
  return p;
}

TEST(SessionBufferProperty, CapsHoldAndEveryPublicationAccountedOnce) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::mt19937_64 rng(seed);
    ClientStub stub(7);
    stub.create();
    stub.start();
    stub.pause();  // detached: notifications buffer

    const BufferLimits limits{8, 600, 5.0};
    double clock = 0;
    stub.set_buffer_limits(limits);
    stub.set_buffer_clock([&clock] { return clock; });

    std::set<PublicationId> pushed, delivered, dropped;
    stub.set_delivery_fn([&](const Publication& p) {
      EXPECT_TRUE(delivered.insert(p.id()).second)
          << "duplicate delivery " << to_string(p.id()) << " seed " << seed;
    });
    stub.set_drop_fn([&](const Publication& p, const char* reason) {
      EXPECT_TRUE(std::string(reason) == "overflow" ||
                  std::string(reason) == "expiry")
          << reason;
      EXPECT_TRUE(dropped.insert(p.id()).second)
          << "publication dropped twice " << to_string(p.id()) << " seed "
          << seed;
    });

    std::uint32_t seq = 1;
    for (int op = 0; op < 400; ++op) {
      const int dice = static_cast<int>(rng() % 100);
      if (dice < 60) {
        const std::size_t pad = rng() % 120;
        const Publication p = sized_pub(seq++, pad);
        pushed.insert(p.id());
        stub.on_notification(p);
      } else if (dice < 75) {
        clock += static_cast<double>(rng() % 40) / 10.0;  // up to +4 s
        stub.expire_buffer();
      } else if (dice < 85 && stub.state() == ClientState::PauseOper) {
        stub.resume();  // flushes the buffer to the application
        stub.pause();
      }
      // Invariants hold after every operation.
      ASSERT_LE(stub.buffered_count(), limits.max_count) << "seed " << seed;
      ASSERT_LE(stub.buffered_bytes(), limits.max_bytes) << "seed " << seed;
      ASSERT_EQ(delivered.size() + dropped.size() + stub.buffered_count(),
                pushed.size())
          << "conservation violated at op " << op << " seed " << seed;
    }

    // Drops and deliveries never overlap: a publication has one fate.
    for (const PublicationId& id : dropped) {
      EXPECT_EQ(delivered.count(id), 0u) << "seed " << seed;
    }

    // Everything older than the age cap goes when the clock jumps past it.
    clock += limits.max_age + 1.0;
    stub.expire_buffer();
    EXPECT_EQ(stub.buffered_count(), 0u);
    EXPECT_EQ(stub.buffered_bytes(), 0u);
    EXPECT_EQ(delivered.size() + dropped.size(), pushed.size());
  }
}

TEST(SessionBufferProperty, OversizedSinglePublicationIsDroppedNotStuck) {
  ClientStub stub(7);
  stub.create();
  stub.start();
  stub.pause();
  stub.set_buffer_limits({0, 64, 0});
  int drops = 0;
  stub.set_drop_fn([&](const Publication&, const char* reason) {
    EXPECT_STREQ(reason, "overflow");
    ++drops;
  });
  // Larger than the whole byte budget: must not wedge the buffer.
  stub.on_notification(sized_pub(1, 500));
  EXPECT_EQ(stub.buffered_count(), 0u);
  EXPECT_EQ(stub.buffered_bytes(), 0u);
  EXPECT_EQ(drops, 1);
}

// Manager-level cross-check: the SessionManager's drop ledger, its stats
// and the tmps_session_dropped_total counter all agree with what the stub
// reported, publication by publication.
TEST(SessionBufferProperty, ManagerLedgerMatchesStubDropsExactly) {
  Overlay overlay = Overlay::chain(2);
  SimNetwork net(overlay);
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  for (BrokerId b = 1; b <= 2; ++b) {
    engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
    engines.back()->set_transmit(
        [&net, b](Broker::Outputs out) { net.transmit(b, std::move(out)); });
  }
  SessionConfig sc;
  sc.enabled = true;
  sc.buffer_max_count = 5;  // tiny cap: most of the flood overflows
  session::SessionManager mgr(*engines[0], net, sc);
  engines[0]->set_session_handler(&mgr);

  auto run_op = [&](BrokerId b, auto op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
    net.run();
  };
  run_op(2, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(1);
    e.advertise(1, full_space_advertisement(), out);
  });
  run_op(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(100);
    e.subscribe(100, workload_filter(WorkloadKind::Covered, 1), out);
  });

  ASSERT_NE(mgr.open(100), session::kNoToken);
  mgr.disconnect(100);
  constexpr int kFlood = 40;
  for (std::uint32_t i = 0; i < kFlood; ++i) {
    run_op(2, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.publish(1, make_publication({1, 10 + i}, 100, 0), out);
    });
  }

  const ClientStub* stub = engines[0]->find_client(100);
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(stub->buffered_count(), 5u);
  const std::size_t expect_dropped = kFlood - 5;
  EXPECT_EQ(mgr.stats().dropped_overflow, expect_dropped);
  EXPECT_EQ(mgr.stats().dropped_expiry, 0u);
  ASSERT_EQ(mgr.drop_log().size(), expect_dropped);

  // Ledger entries are distinct publications, all tagged overflow, all for
  // this client — and the metrics counter agrees.
  std::set<PublicationId> ids;
  for (const session::DropRecord& d : mgr.drop_log()) {
    EXPECT_TRUE(ids.insert(d.pub).second) << "double-counted drop";
    EXPECT_EQ(d.client, 100u);
    EXPECT_EQ(d.reason, session::DropReason::Overflow);
  }
  obs::MetricsRegistry* mr = net.metrics();
  ASSERT_NE(mr, nullptr);
  EXPECT_EQ(mr->counter("tmps_session_dropped_total",
                        {{"broker", "1"}, {"reason", "overflow"}})
                .value(),
            expect_dropped);

  // Oldest-first drops: the survivors are the newest five.
  std::vector<Publication> left = engines[0]->find_client(100)->take_buffer();
  ASSERT_EQ(left.size(), 5u);
  for (std::size_t i = 0; i < left.size(); ++i) {
    EXPECT_EQ(left[i].id(), (PublicationId{1, 10 + kFlood - 5 +
                                                  static_cast<std::uint32_t>(i)}));
  }
}

}  // namespace
}  // namespace tmps
