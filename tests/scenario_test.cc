// Smoke and property tests of the full experiment driver: both protocols,
// paper topology, movement patterns, audits.
#include <gtest/gtest.h>

#include "core/scenario.h"

namespace tmps {
namespace {

ScenarioConfig small(MobilityProtocol proto, WorkloadKind wl) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = proto;
  // Covering quenching is only sound under the covering (traditional)
  // protocol; reconfiguration deployments disable it (see DESIGN.md).
  cfg.broker.subscription_covering = proto == MobilityProtocol::Traditional;
  cfg.broker.advertisement_covering = proto == MobilityProtocol::Traditional;
  cfg.workload = wl;
  cfg.total_clients = 40;   // 4 covering families
  cfg.duration = 60.0;
  cfg.warmup = 20.0;
  cfg.pause_between_moves = 5.0;
  cfg.publish_interval = 2.0;
  cfg.seed = 11;
  return cfg;
}

TEST(Scenario, ReconfigSmokeCompletesMovements) {
  Scenario s(small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered));
  s.run();
  EXPECT_GT(s.movements(), 0u);
  EXPECT_GT(s.latency().count(), 0u);
  EXPECT_GT(s.latency().mean(), 0.0);
  EXPECT_GT(s.messages_per_movement(), 0.0);
}

TEST(Scenario, TraditionalSmokeCompletesMovements) {
  Scenario s(small(MobilityProtocol::Traditional, WorkloadKind::Covered));
  s.run();
  EXPECT_GT(s.movements(), 0u);
  EXPECT_GT(s.latency().mean(), 0.0);
}

TEST(Scenario, NoDuplicateDeliveriesUnderReconfig) {
  Scenario s(small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered));
  s.run();
  EXPECT_GT(s.audit().delivered, 0u);
  EXPECT_EQ(s.audit().duplicates, 0u);
}

TEST(Scenario, NoDuplicateDeliveriesUnderTraditional) {
  Scenario s(small(MobilityProtocol::Traditional, WorkloadKind::Covered));
  s.run();
  EXPECT_GT(s.audit().delivered, 0u);
  EXPECT_EQ(s.audit().duplicates, 0u);
}

TEST(Scenario, ReconfigFasterThanCoveringOnCoveredWorkload) {
  // The paper's headline: reconfiguration beats the covering protocol by
  // roughly an order of magnitude on covering-heavy workloads.
  Scenario r(small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered));
  r.run();
  Scenario t(small(MobilityProtocol::Traditional, WorkloadKind::Covered));
  t.run();
  ASSERT_GT(r.latency().count(), 0u);
  ASSERT_GT(t.latency().count(), 0u);
  EXPECT_LT(r.latency().mean(), t.latency().mean());
}

TEST(Scenario, ReconfigCostIndependentOfWorkload) {
  // Messages per movement for the reconfiguration protocol must be flat
  // across covering structures (the paper's stability claim).
  double lo = 1e300, hi = 0;
  for (auto wl : {WorkloadKind::Distinct, WorkloadKind::Chained,
                  WorkloadKind::Tree, WorkloadKind::Covered}) {
    Scenario s(small(MobilityProtocol::Reconfiguration, wl));
    s.run();
    const double mpm = s.messages_per_movement();
    ASSERT_GT(mpm, 0.0);
    lo = std::min(lo, mpm);
    hi = std::max(hi, mpm);
  }
  EXPECT_LT(hi / lo, 1.5) << "lo=" << lo << " hi=" << hi;
}

TEST(Scenario, MoversAlternateBetweenPairEnds) {
  auto cfg = small(MobilityProtocol::Reconfiguration, WorkloadKind::Distinct);
  cfg.total_clients = 10;
  cfg.moving_clients = 2;
  Scenario s(cfg);
  s.run();
  // Every committed movement of one client alternates source/target.
  std::map<ClientId, std::vector<std::pair<BrokerId, BrokerId>>> per_client;
  for (const auto& m : s.movement_records()) {
    if (m.committed) per_client[m.client].emplace_back(m.source, m.target);
  }
  ASSERT_FALSE(per_client.empty());
  for (const auto& [c, moves] : per_client) {
    for (std::size_t i = 1; i < moves.size(); ++i) {
      EXPECT_EQ(moves[i].first, moves[i - 1].second) << "client " << c;
    }
  }
}

TEST(Scenario, StationaryClientsNeverMove) {
  auto cfg = small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
  cfg.total_clients = 20;
  cfg.moving_clients = 4;
  Scenario s(cfg);
  s.run();
  for (const auto& m : s.movement_records()) {
    EXPECT_LT(m.client, Scenario::subscriber_id(4));
    EXPECT_GE(m.client, Scenario::subscriber_id(0));
  }
}

TEST(Scenario, MoverOverrideSelectsMovers) {
  auto cfg = small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
  cfg.total_clients = 20;
  cfg.mover_override = [](std::uint32_t k) { return k == 7; };
  Scenario s(cfg);
  s.run();
  ASSERT_GT(s.movements(), 0u);
  for (const auto& m : s.movement_records()) {
    EXPECT_EQ(m.client, Scenario::subscriber_id(7));
  }
}

TEST(Scenario, WarmupWindowExcludesEarlyMovements) {
  auto cfg = small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
  Scenario s(cfg);
  s.run();
  for (const auto& m : s.movement_records()) {
    if (m.start < cfg.warmup) continue;
  }
  const auto all = s.movement_records().size();
  EXPECT_GE(all, s.movements());
}

TEST(Scenario, PlanetLabProfileRuns) {
  auto cfg = small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
  cfg.net = NetworkProfile::planetlab();
  cfg.total_clients = 20;
  Scenario s(cfg);
  s.run();
  EXPECT_GT(s.movements(), 0u);
  EXPECT_EQ(s.audit().duplicates, 0u);
}

TEST(Scenario, DeterministicForFixedSeed) {
  auto cfg = small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
  Scenario a(cfg);
  a.run();
  Scenario b(cfg);
  b.run();
  EXPECT_EQ(a.movements(), b.movements());
  EXPECT_DOUBLE_EQ(a.latency().mean(), b.latency().mean());
  EXPECT_EQ(a.stats().total_messages(), b.stats().total_messages());
}

TEST(Scenario, BackgroundChurnKeepsGuarantees) {
  // Stationary clients unsubscribe/re-subscribe continuously while movers
  // move: no duplicate deliveries, and movements still complete.
  for (auto proto :
       {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
    auto cfg = small(proto, WorkloadKind::Covered);
    cfg.moving_clients = 10;
    cfg.background_churn_interval = 4.0;
    Scenario s(cfg);
    s.run();
    EXPECT_GT(s.movements(), 0u) << to_string(proto);
    EXPECT_EQ(s.audit().duplicates, 0u) << to_string(proto);
    EXPECT_GT(s.stats().messages_by_type("unsub"), 0u)
        << "churn must generate unsubscriptions";
  }
}

TEST(Scenario, PublisherMobilityMode) {
  auto cfg = small(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
  cfg.movers_are_publishers = true;
  cfg.moving_clients = 10;
  cfg.publisher_brokers.clear();
  Scenario s(cfg);
  s.run();
  EXPECT_GT(s.movements(), 0u);
  // Movers hold advertisements, not subscriptions.
  bool found_mover_adv = false;
  for (BrokerId b = 1; b <= 14; ++b) {
    const ClientStub* stub = s.engine(b).find_client(Scenario::subscriber_id(0));
    if (stub) {
      EXPECT_EQ(stub->advertisements().size(), 1u);
      EXPECT_TRUE(stub->subscriptions().empty());
      found_mover_adv = true;
    }
  }
  EXPECT_TRUE(found_mover_adv);
}

TEST(Scenario, CoveringDisabledAblation) {
  // With covering off, the traditional protocol floods everything — more
  // messages per movement than with covering on a low-covering workload.
  auto on = small(MobilityProtocol::Traditional, WorkloadKind::Distinct);
  auto off = on;
  off.broker.subscription_covering = false;
  off.broker.advertisement_covering = false;
  Scenario son(on);
  son.run();
  Scenario soff(off);
  soff.run();
  ASSERT_GT(son.movements(), 0u);
  ASSERT_GT(soff.movements(), 0u);
  EXPECT_GT(soff.messages_per_movement(), 0.0);
}

}  // namespace
}  // namespace tmps
