#include "pubsub/messages.h"

#include <gtest/gtest.h>

#include <set>

#include "pubsub/workload.h"
#include "routing/hop.h"

namespace tmps {
namespace {

TEST(Messages, TypeNamesAreDistinct) {
  const Subscription sub{{1, 1}, workload_filter(WorkloadKind::Covered, 1)};
  const Advertisement adv{{1, 2}, full_space_advertisement()};
  std::vector<Payload> payloads = {
      AdvertiseMsg{adv},         UnadvertiseMsg{adv.id},
      SubscribeMsg{sub},         UnsubscribeMsg{sub.id},
      PublishMsg{},              MoveNegotiateMsg{},
      MoveApproveMsg{},          MoveRejectMsg{},
      MoveStateMsg{},            MoveAckMsg{},
      MoveAbortMsg{},            BufferedStateMsg{},
      TradMoveRequestMsg{},      TradReadyMsg{},
      TradRejectMsg{},           RepairDigestMsg{},
      RepairRequestMsg{},        RepairProbeMsg{},
      RepairVerdictMsg{},        SessionOpenMsg{},
      SessionResumeMsg{},        SessionAckMsg{},
      SessionHeartbeatMsg{},     SessionCloseMsg{},
      SessionForwardMsg{},
  };
  std::set<std::string> names;
  for (auto& p : payloads) {
    Message m;
    m.payload = p;
    names.insert(std::string(m.type_name()));
  }
  EXPECT_EQ(names.size(), payloads.size());
}

TEST(Messages, RoutingPayloadsAreNotControl) {
  for (Payload p : std::initializer_list<Payload>{
           AdvertiseMsg{}, UnadvertiseMsg{}, SubscribeMsg{}, UnsubscribeMsg{},
           PublishMsg{}}) {
    Message m;
    m.payload = p;
    EXPECT_FALSE(m.is_control()) << m.type_name();
  }
}

TEST(Messages, MovementPayloadsAreControl) {
  for (Payload p : std::initializer_list<Payload>{
           MoveNegotiateMsg{}, MoveApproveMsg{}, MoveRejectMsg{},
           MoveStateMsg{}, MoveAckMsg{}, MoveAbortMsg{}, BufferedStateMsg{},
           TradMoveRequestMsg{}, TradReadyMsg{}, TradRejectMsg{},
           RepairDigestMsg{}, RepairRequestMsg{}, RepairProbeMsg{},
           RepairVerdictMsg{}, SessionOpenMsg{}, SessionResumeMsg{},
           SessionAckMsg{}, SessionHeartbeatMsg{}, SessionCloseMsg{},
           SessionForwardMsg{}}) {
    Message m;
    m.payload = p;
    EXPECT_TRUE(m.is_control()) << m.type_name();
  }
}

TEST(Messages, SessionVerdictNamesAreDistinct) {
  std::set<std::string> names;
  for (SessionVerdict v :
       {SessionVerdict::Resumed, SessionVerdict::Moving,
        SessionVerdict::Forwarding, SessionVerdict::Expired,
        SessionVerdict::Unknown}) {
    names.insert(to_string(v));
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(Messages, ToStringIncludesDestination) {
  Message m;
  m.id = 7;
  m.unicast_dest = 12;
  m.payload = MoveAckMsg{};
  const std::string s = to_string(m);
  EXPECT_NE(s.find("move-ack"), std::string::npos);
  EXPECT_NE(s.find("B12"), std::string::npos);
}

TEST(Ids, EntityIdOrderingAndHash) {
  const EntityId a{1, 1}, b{1, 2}, c{2, 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (EntityId{1, 1}));
  std::hash<EntityId> h;
  EXPECT_NE(h(a), h(b));
  EXPECT_NE(h(a), h(c));
  EXPECT_EQ(to_string(a), "1:1");
}

TEST(Hop, KindsAndEquality) {
  const Hop none = Hop::none();
  const Hop b = Hop::of_broker(3);
  const Hop c = Hop::of_client(9);
  EXPECT_TRUE(none.is_none());
  EXPECT_TRUE(b.is_broker());
  EXPECT_TRUE(c.is_client());
  EXPECT_NE(b, c);
  EXPECT_NE(b, Hop::of_broker(4));
  EXPECT_EQ(b, Hop::of_broker(3));
  EXPECT_EQ(b.to_string(), "B3");
  EXPECT_EQ(c.to_string(), "C9");
  std::hash<Hop> h;
  EXPECT_NE(h(b), h(c));
  // A broker and client with the same numeric id must hash differently.
  EXPECT_NE(h(Hop::of_broker(5)), h(Hop::of_client(5)));
}

}  // namespace
}  // namespace tmps
