// Randomized equivalence test of the counting forwarding index against the
// full-PRT scan oracle: every workload shape of Fig. 7 (plus adversarial
// equality-free and unsatisfiable filters), random table mutations through
// the RoutingMutation API — single applies and coalesced apply_batch bursts —
// raw forwarded_to flips and movement-shadow install/commit/abort. After
// every mutation the index must pass its structural consistency check
// (check_forward_index), and match() must return exactly what match_scan()
// returns — links, matched count and version — for a battery of random and
// boundary publications.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/scenario.h"
#include "pubsub/workload.h"
#include "routing/routing_tables.h"

namespace tmps {
namespace {

/// match() answers must equal the scan oracle exactly for every probed
/// publication: same deduped link set, same matched count, same version.
void expect_match_equals_scan(RoutingTables& rt, std::mt19937_64& rng,
                              int probes = 24) {
  ASSERT_TRUE(rt.use_forward_index());
  std::uint32_t seq = 0;
  for (int i = 0; i < probes; ++i) {
    const std::int64_t x = static_cast<std::int64_t>(rng() % 12000) - 1000;
    const std::int64_t g = static_cast<std::int64_t>(rng() % 3);
    const Publication p = make_publication({900, ++seq}, x, g);
    const MatchResult got = rt.match(p);
    const MatchResult want = rt.match_scan(p);
    ASSERT_EQ(got.links, want.links) << "x=" << x << " g=" << g;
    ASSERT_EQ(got.matched, want.matched) << "x=" << x << " g=" << g;
    ASSERT_EQ(got.version, want.version);
    ASSERT_EQ(got.version, rt.version());
  }
}

class ForwardIndexProperty : public ::testing::TestWithParam<WorkloadKind> {};

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ForwardIndexProperty,
                         ::testing::Values(WorkloadKind::Covered,
                                           WorkloadKind::Chained,
                                           WorkloadKind::Tree,
                                           WorkloadKind::Distinct,
                                           WorkloadKind::Random),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST_P(ForwardIndexProperty, RandomMutationsAgreeWithScanOracle) {
  const WorkloadKind kind = GetParam();
  std::mt19937_64 rng(0xF0D0u + static_cast<std::uint64_t>(kind));
  RoutingTables rt;

  struct Live {
    EntityId id;
    Filter filter;
  };
  struct Pending {
    EntityId id;
    Filter filter;
    TxnId txn;
    bool fresh;  // entry exists only as shadow state
    bool adv;
  };
  std::vector<Live> subs, advs;
  std::vector<Pending> pending;
  std::uint32_t seq = 0;
  TxnId next_txn = 100;

  const auto rand_link = [&](bool brokers_only = false) {
    const auto r = rng() % (brokers_only ? 3 : 5);
    return r < 3 ? Hop::of_broker(static_cast<BrokerId>(1 + r))
                 : Hop::of_client(static_cast<ClientId>(r - 2));
  };
  const auto rand_filter = [&]() -> Filter {
    const auto roll = rng() % 16;
    if (roll == 0) {  // unsatisfiable: filed nowhere, never a candidate
      return Filter::build().attr("x").eq(1).eq(2);
    }
    if (roll <= 2) {  // no equality predicate: counting-only filing
      const std::int64_t lo = static_cast<std::int64_t>(rng() % 5000);
      const std::int64_t hi = lo + 1 + static_cast<std::int64_t>(rng() % 3000);
      return Filter::build().attr("x").ge(lo).le(hi);
    }
    const int i = 1 + static_cast<int>(rng() % 10);
    const std::int64_t group = static_cast<std::int64_t>(rng() % 3);
    return workload_filter_at(kind, i, group, rng());
  };

  for (int step = 0; step < 250; ++step) {
    switch (rng() % 13) {
      case 0:
      case 1:
      case 2: {  // add a subscription through the mutation API
        const Subscription s{{1000 + rng() % 20, ++seq}, rand_filter()};
        rt.apply(RoutingMutation::add_sub(s, rand_link()));
        subs.push_back({s.id, s.filter});
        break;
      }
      case 3:
      case 4: {  // remove one (occasionally from the wrong hop)
        if (subs.empty()) break;
        const std::size_t k = rng() % subs.size();
        const SubEntry* e = rt.find_sub(subs[k].id);
        ASSERT_NE(e, nullptr);
        const bool wrong_hop = rng() % 8 == 0;
        const RoutingDelta d = rt.apply(RoutingMutation::remove_sub(
            subs[k].id, wrong_hop ? Hop::of_broker(77) : e->lasthop));
        if (d.applied) subs.erase(subs.begin() + static_cast<long>(k));
        break;
      }
      case 5: {  // add an advertisement (flooded over the broker links)
        const Advertisement a{{2000 + rng() % 10, ++seq}, rand_filter()};
        rt.apply(RoutingMutation::add_adv(
            a, rand_link(),
            {Hop::of_broker(1), Hop::of_broker(2), Hop::of_broker(3)}));
        advs.push_back({a.id, a.filter});
        break;
      }
      case 6: {
        if (advs.empty()) break;
        const std::size_t k = rng() % advs.size();
        const AdvEntry* e = rt.find_adv(advs[k].id);
        ASSERT_NE(e, nullptr);
        const RoutingDelta d =
            rt.apply(RoutingMutation::remove_adv(advs[k].id, e->lasthop));
        if (d.applied) advs.erase(advs.begin() + static_cast<long>(k));
        break;
      }
      case 7: {  // raw forwarded_to flip: membership-only filing must not care
        if (subs.empty()) break;
        SubEntry* e = rt.find_sub(subs[rng() % subs.size()].id);
        ASSERT_NE(e, nullptr);
        const Hop link = rand_link(/*brokers_only=*/true);
        if (e->forwarded_to.erase(link) == 0) e->forwarded_to.insert(link);
        break;
      }
      case 8: {  // install a movement shadow (fresh or on an existing entry)
        const TxnId txn = ++next_txn;
        if (!subs.empty() && rng() % 2 == 0) {
          const Live& l = subs[rng() % subs.size()];
          if (rt.find_sub(l.id)->shadow_txn != kNoTxn) break;  // one at a time
          rt.install_sub_shadow({l.id, l.filter}, rand_link(), txn);
          pending.push_back({l.id, l.filter, txn, false, false});
        } else {
          const Subscription s{{3000 + rng() % 10, ++seq}, rand_filter()};
          rt.install_sub_shadow(s, rand_link(), txn);
          pending.push_back({s.id, s.filter, txn, true, false});
        }
        break;
      }
      case 9: {  // adv shadow
        const TxnId txn = ++next_txn;
        const Advertisement a{{4000 + rng() % 10, ++seq}, rand_filter()};
        rt.install_adv_shadow(a, rand_link(), txn);
        pending.push_back({a.id, a.filter, txn, true, true});
        break;
      }
      case 10: {  // resolve a pending shadow: commit or abort
        if (pending.empty()) break;
        const std::size_t k = rng() % pending.size();
        const Pending p = pending[k];
        pending.erase(pending.begin() + static_cast<long>(k));
        const bool commit = rng() % 2 == 0;
        if (p.adv) {
          commit ? rt.commit_adv_shadow(p.id, p.txn)
                 : rt.abort_adv_shadow(p.id, p.txn);
          if (commit && p.fresh) advs.push_back({p.id, p.filter});
        } else {
          commit ? rt.commit_shadow(p.id, p.txn)
                 : rt.abort_shadow(p.id, p.txn);
          if (commit && p.fresh) subs.push_back({p.id, p.filter});
        }
        break;
      }
      case 11:
      case 12: {  // mobility-style burst through apply_batch: retract a few
                  // live subs and re-issue fresh ones as one coalesced batch
        std::vector<RoutingMutation> muts;
        const std::size_t retracts =
            subs.empty() ? 0 : 1 + rng() % std::min<std::size_t>(3,
                                                                 subs.size());
        for (std::size_t i = 0; i < retracts; ++i) {
          const std::size_t k = rng() % subs.size();
          muts.push_back(RoutingMutation::remove_sub(
              subs[k].id, rt.find_sub(subs[k].id)->lasthop));
          subs.erase(subs.begin() + static_cast<long>(k));
        }
        const std::size_t adds = 1 + rng() % 4;
        for (std::size_t i = 0; i < adds; ++i) {
          const Subscription s{{5000 + rng() % 20, ++seq}, rand_filter()};
          muts.push_back(RoutingMutation::add_sub(s, rand_link()));
          subs.push_back({s.id, s.filter});
        }
        if (rng() % 4 == 0) {
          const Advertisement a{{6000 + rng() % 10, ++seq}, rand_filter()};
          muts.push_back(RoutingMutation::add_adv(
              a, rand_link(), {Hop::of_broker(1), Hop::of_broker(2)}));
          advs.push_back({a.id, a.filter});
        }
        const auto deltas = rt.apply_batch(muts);
        ASSERT_EQ(deltas.size(), muts.size());
        break;
      }
    }

    const std::vector<std::string> violations = rt.check_forward_index();
    ASSERT_TRUE(violations.empty())
        << "step " << step << ": " << violations.front();
    expect_match_equals_scan(rt, rng, step % 10 == 0 ? 24 : 6);
    if (::testing::Test::HasFailure()) return;  // first divergence is enough
  }
  expect_match_equals_scan(rt, rng);
}

// Candidate queries issued while a batch is still open must stay complete:
// pending (not yet filed) insertions are still reported, with no duplicate
// links or double-counted entries.
TEST(ForwardIndexBatchTest, MatchDuringOpenBatchStaysExact) {
  RoutingTables rt;
  const Filter f = Filter::build().attr("x").ge(0).le(100);
  rt.apply(RoutingMutation::add_sub({{10, 1}, f}, Hop::of_broker(2)));
  {
    RoutingTables::MutationBatch batch(rt);
    rt.upsert_sub({{10, 2}, f}, Hop::of_broker(3));
    rt.upsert_sub({{10, 3}, f}, Hop::of_broker(3));
    rt.erase_sub({10, 1});
    const Publication p = make_publication({1, 1}, 50);
    const MatchResult got = rt.match(p);
    const MatchResult want = rt.match_scan(p);
    EXPECT_EQ(got.links, want.links);
    EXPECT_EQ(got.matched, want.matched);
    EXPECT_EQ(got.matched, 2u);
  }
  EXPECT_TRUE(rt.check_forward_index().empty());
}

// End-to-end: a small mobility scenario with the forwarding index enabled
// leaves every broker's index structurally consistent, and match() still
// equals the scan oracle on the final tables.
TEST(ForwardIndexScenarioTest, BrokersStayConsistentThroughMovements) {
  ScenarioConfig cfg;
  cfg.overlay = Overlay::paper_default();
  cfg.workload = WorkloadKind::Covered;
  cfg.total_clients = 40;
  cfg.duration = 80.0;
  cfg.warmup = 20.0;
  cfg.seed = 13;
  ASSERT_TRUE(cfg.broker.forwarding_index);  // default-on
  Scenario s(cfg);
  s.run();
  std::mt19937_64 rng(7);
  for (BrokerId b = 1; b <= cfg.overlay->broker_count(); ++b) {
    RoutingTables& rt = s.net().broker(b).tables();
    const std::vector<std::string> violations = rt.check_forward_index();
    EXPECT_TRUE(violations.empty())
        << "broker " << b << ": " << violations.front();
    expect_match_equals_scan(rt, rng);
  }
}

}  // namespace
}  // namespace tmps
