#include <gtest/gtest.h>

#include "pubsub/workload.h"
#include "routing/routing_tables.h"

namespace tmps {
namespace {

Subscription sub(std::uint32_t seq, std::int64_t lo, std::int64_t hi) {
  return {{10, seq}, Filter::build()
                         .attr("class").eq("STOCK")
                         .attr("x").ge(lo).le(hi)};
}

/// Parameterized over the decision backend: true = covering index,
/// false = full-table scan oracles. Both must agree on every answer.
class CoveringDecisionTest : public ::testing::TestWithParam<bool> {
 protected:
  CoveringDecisionTest() { rt_.set_use_cover_index(GetParam()); }

  RoutingTables rt_;
  const Hop link_ = Hop::of_broker(7);
};

INSTANTIATE_TEST_SUITE_P(IndexAndScan, CoveringDecisionTest,
                         ::testing::Values(true, false),
                         [](const auto& info) {
                           return info.param ? "index" : "scan";
                         });

TEST_P(CoveringDecisionTest, CoveredByForwardedEntry) {
  auto& wide = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  wide.forwarded_to.insert(link_);
  EXPECT_TRUE(rt_.sub_covered_on_link({10, 2}, sub(2, 10, 20).filter, link_));
  // Not covered on a different link.
  EXPECT_FALSE(rt_.sub_covered_on_link({10, 2}, sub(2, 10, 20).filter,
                                       Hop::of_broker(8)));
}

TEST_P(CoveringDecisionTest, NotCoveredByUnforwardedEntry) {
  rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));  // present, not forwarded
  EXPECT_FALSE(rt_.sub_covered_on_link({10, 2}, sub(2, 10, 20).filter, link_));
}

TEST_P(CoveringDecisionTest, SelfDoesNotCoverItself) {
  auto& e = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  e.forwarded_to.insert(link_);
  EXPECT_FALSE(rt_.sub_covered_on_link({10, 1}, e.sub.filter, link_));
}

TEST_P(CoveringDecisionTest, StrictlyCoveredExcludesEqualFilters) {
  auto& equal = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  equal.forwarded_to.insert(link_);
  auto& narrow = rt_.upsert_sub(sub(2, 10, 20), Hop::of_client(2));
  narrow.forwarded_to.insert(link_);

  const auto victims =
      rt_.strictly_covered_subs_on_link({10, 3}, sub(3, 0, 100).filter, link_);
  // Only the strictly narrower subscription is retracted; the equal one is
  // kept (mutual covering never retracts).
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0]->sub.id, (SubscriptionId{10, 2}));
}

TEST_P(CoveringDecisionTest, UnquenchFindsOrphanedSubs) {
  // Advertisement reachable over the link makes it "needed".
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  rt_.upsert_sub(sub(2, 10, 20), Hop::of_client(2));  // quenched by root

  root.forwarded_to.clear();  // simulate removal in progress
  const auto orphans = rt_.unquenched_subs_on_link(*rt_.find_sub({10, 1}),
                                                   link_);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0]->sub.id, (SubscriptionId{10, 2}));
}

TEST_P(CoveringDecisionTest, UnquenchSkipsSubsWithRemainingCoverer) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  auto& mid = rt_.upsert_sub(sub(2, 0, 50), Hop::of_client(2));
  mid.forwarded_to.insert(link_);
  rt_.upsert_sub(sub(3, 10, 20), Hop::of_client(3));  // covered by both

  root.forwarded_to.clear();
  const auto orphans = rt_.unquenched_subs_on_link(root, link_);
  // sub 3 is still covered by mid; sub 2 is already forwarded.
  EXPECT_TRUE(orphans.empty());
}

TEST_P(CoveringDecisionTest, UnquenchSkipsSubsNotNeedingLink) {
  // No advertisement over the link: nothing needs re-forwarding there.
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  rt_.upsert_sub(sub(2, 10, 20), Hop::of_client(2));
  root.forwarded_to.clear();
  EXPECT_TRUE(rt_.unquenched_subs_on_link(root, link_).empty());
}

TEST_P(CoveringDecisionTest, UnquenchSkipsEntriesOwnedByLink) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  // This subscription CAME from the link; it must not be forwarded back.
  rt_.upsert_sub(sub(2, 10, 20), link_);
  root.forwarded_to.clear();
  EXPECT_TRUE(rt_.unquenched_subs_on_link(root, link_).empty());
}

TEST_P(CoveringDecisionTest, UnquenchSkipsShadowOnlyEntries) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  rt_.install_sub_shadow(sub(2, 10, 20), Hop::of_broker(9), /*txn=*/3);
  root.forwarded_to.clear();
  EXPECT_TRUE(rt_.unquenched_subs_on_link(root, link_).empty());
}

TEST_P(CoveringDecisionTest, AdvCoveringMirrorsSubCovering) {
  Advertisement wide{{20, 1}, Filter::build()
                                  .attr("class").eq("STOCK")
                                  .attr("x").ge(0).le(100)};
  Advertisement narrow{{20, 2}, Filter::build()
                                    .attr("class").eq("STOCK")
                                    .attr("x").ge(10).le(20)};
  auto& w = rt_.upsert_adv(wide, Hop::of_client(1));
  w.forwarded_to.insert(link_);
  EXPECT_TRUE(rt_.adv_covered_on_link(narrow.id, narrow.filter, link_));

  auto& n = rt_.upsert_adv(narrow, Hop::of_client(2));
  n.forwarded_to.insert(link_);
  const auto victims =
      rt_.strictly_covered_advs_on_link({20, 3}, wide.filter, link_);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0]->adv.id, narrow.id);

  // Removal of the wide advertisement un-quenches the narrow one.
  n.forwarded_to.clear();
  w.forwarded_to.clear();
  const auto orphans = rt_.unquenched_advs_on_link(w, link_);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0]->adv.id, narrow.id);
}

// The delta-returning mutation API: forwarding, quenching, covering
// retraction and un-quench ordering, end to end on one table.
TEST_P(CoveringDecisionTest, AddSubForwardsTowardsAdvertisement) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  const RoutingDelta d = rt_.add_sub(sub(1, 0, 100), Hop::of_client(1));
  ASSERT_EQ(d.ops.size(), 1u);
  EXPECT_EQ(d.ops[0].kind, RoutingOp::Kind::kForwardSub);
  EXPECT_EQ(d.ops[0].link, link_);
  EXPECT_FALSE(d.ops[0].induced);
  EXPECT_TRUE(rt_.find_sub({10, 1})->forwarded_to.contains(link_));
}

TEST_P(CoveringDecisionTest, AddSubQuenchedByCoverer) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  ASSERT_FALSE(rt_.add_sub(sub(1, 0, 100), Hop::of_client(1)).empty());
  const RoutingDelta d = rt_.add_sub(sub(2, 10, 20), Hop::of_client(2));
  EXPECT_TRUE(d.ops.empty());
  ASSERT_EQ(d.quenched.size(), 1u);
  EXPECT_EQ(d.quenched[0], link_);
}

TEST_P(CoveringDecisionTest, AddSubRetractsStrictlyCovered) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  rt_.add_sub(sub(2, 10, 20), Hop::of_client(2));
  const RoutingDelta d = rt_.add_sub(sub(1, 0, 100), Hop::of_client(1));
  ASSERT_EQ(d.ops.size(), 2u);
  EXPECT_EQ(d.ops[0].kind, RoutingOp::Kind::kForwardSub);
  EXPECT_EQ(d.ops[0].id, (SubscriptionId{10, 1}));
  EXPECT_EQ(d.ops[1].kind, RoutingOp::Kind::kRetractSub);
  EXPECT_EQ(d.ops[1].id, (SubscriptionId{10, 2}));
  EXPECT_TRUE(d.ops[1].induced);
}

TEST_P(CoveringDecisionTest, RemoveSubEmitsUnquenchBeforeRetraction) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  rt_.add_sub(sub(1, 0, 100), Hop::of_client(1));
  rt_.add_sub(sub(2, 10, 20), Hop::of_client(2));  // quenched
  const RoutingDelta d = rt_.remove_sub({10, 1}, Hop::of_client(1));
  ASSERT_TRUE(d.applied);
  ASSERT_EQ(d.ops.size(), 2u);
  // The orphaned subscription is forwarded BEFORE the root's retraction.
  EXPECT_EQ(d.ops[0].kind, RoutingOp::Kind::kForwardSub);
  EXPECT_EQ(d.ops[0].id, (SubscriptionId{10, 2}));
  EXPECT_TRUE(d.ops[0].induced);
  EXPECT_EQ(d.ops[1].kind, RoutingOp::Kind::kRetractSub);
  EXPECT_EQ(d.ops[1].id, (SubscriptionId{10, 1}));
  EXPECT_EQ(rt_.find_sub({10, 1}), nullptr);
}

TEST_P(CoveringDecisionTest, RemoveSubFromWrongHopIsDropped) {
  rt_.add_sub(sub(1, 0, 100), Hop::of_client(1));
  const RoutingDelta d = rt_.remove_sub({10, 1}, Hop::of_client(99));
  EXPECT_FALSE(d.applied);
  EXPECT_NE(rt_.find_sub({10, 1}), nullptr);
}

TEST_P(CoveringDecisionTest, CoverIndexStaysConsistent) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  rt_.add_sub(sub(1, 0, 100), Hop::of_client(1));
  rt_.add_sub(sub(2, 10, 20), Hop::of_client(2));
  rt_.remove_sub({10, 1}, Hop::of_client(1));
  rt_.install_sub_shadow(sub(3, 5, 6), Hop::of_broker(9), /*txn=*/3);
  rt_.abort_shadow({10, 3}, /*txn=*/3);
  EXPECT_TRUE(rt_.check_cover_index().empty());
}

}  // namespace
}  // namespace tmps
