#include "routing/covering.h"

#include <gtest/gtest.h>

#include "pubsub/workload.h"

namespace tmps {
namespace {

Subscription sub(std::uint32_t seq, std::int64_t lo, std::int64_t hi) {
  return {{10, seq}, Filter{eq("class", "STOCK"), ge("x", lo), le("x", hi)}};
}

class CoveringIndexTest : public ::testing::Test {
 protected:
  RoutingTables rt_;
  const Hop link_ = Hop::of_broker(7);
};

TEST_F(CoveringIndexTest, CoveredByForwardedEntry) {
  auto& wide = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  wide.forwarded_to.insert(link_);
  EXPECT_TRUE(sub_covered_on_link(rt_, {10, 2}, sub(2, 10, 20).filter, link_));
  // Not covered on a different link.
  EXPECT_FALSE(sub_covered_on_link(rt_, {10, 2}, sub(2, 10, 20).filter,
                                   Hop::of_broker(8)));
}

TEST_F(CoveringIndexTest, NotCoveredByUnforwardedEntry) {
  rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));  // present, not forwarded
  EXPECT_FALSE(sub_covered_on_link(rt_, {10, 2}, sub(2, 10, 20).filter, link_));
}

TEST_F(CoveringIndexTest, SelfDoesNotCoverItself) {
  auto& e = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  e.forwarded_to.insert(link_);
  EXPECT_FALSE(sub_covered_on_link(rt_, {10, 1}, e.sub.filter, link_));
}

TEST_F(CoveringIndexTest, StrictlyCoveredExcludesEqualFilters) {
  auto& equal = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  equal.forwarded_to.insert(link_);
  auto& narrow = rt_.upsert_sub(sub(2, 10, 20), Hop::of_client(2));
  narrow.forwarded_to.insert(link_);

  const auto victims =
      strictly_covered_subs_on_link(rt_, {10, 3}, sub(3, 0, 100).filter, link_);
  // Only the strictly narrower subscription is retracted; the equal one is
  // kept (mutual covering never retracts).
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0]->sub.id, (SubscriptionId{10, 2}));
}

TEST_F(CoveringIndexTest, UnquenchFindsOrphanedSubs) {
  // Advertisement reachable over the link makes it "needed".
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  rt_.upsert_sub(sub(2, 10, 20), Hop::of_client(2));  // quenched by root

  root.forwarded_to.clear();  // simulate removal in progress
  const auto orphans = unquenched_subs_on_link(rt_, root, link_);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0]->sub.id, (SubscriptionId{10, 2}));
}

TEST_F(CoveringIndexTest, UnquenchSkipsSubsWithRemainingCoverer) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  auto& mid = rt_.upsert_sub(sub(2, 0, 50), Hop::of_client(2));
  mid.forwarded_to.insert(link_);
  rt_.upsert_sub(sub(3, 10, 20), Hop::of_client(3));  // covered by both

  root.forwarded_to.clear();
  const auto orphans = unquenched_subs_on_link(rt_, root, link_);
  // sub 3 is still covered by mid; sub 2 is already forwarded.
  EXPECT_TRUE(orphans.empty());
}

TEST_F(CoveringIndexTest, UnquenchSkipsSubsNotNeedingLink) {
  // No advertisement over the link: nothing needs re-forwarding there.
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  rt_.upsert_sub(sub(2, 10, 20), Hop::of_client(2));
  root.forwarded_to.clear();
  EXPECT_TRUE(unquenched_subs_on_link(rt_, root, link_).empty());
}

TEST_F(CoveringIndexTest, UnquenchSkipsEntriesOwnedByLink) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  // This subscription CAME from the link; it must not be forwarded back.
  rt_.upsert_sub(sub(2, 10, 20), link_);
  root.forwarded_to.clear();
  EXPECT_TRUE(unquenched_subs_on_link(rt_, root, link_).empty());
}

TEST_F(CoveringIndexTest, UnquenchSkipsShadowOnlyEntries) {
  rt_.upsert_adv({{20, 1}, full_space_advertisement()}, link_);
  auto& root = rt_.upsert_sub(sub(1, 0, 100), Hop::of_client(1));
  root.forwarded_to.insert(link_);
  rt_.install_sub_shadow(sub(2, 10, 20), Hop::of_broker(9), /*txn=*/3);
  root.forwarded_to.clear();
  EXPECT_TRUE(unquenched_subs_on_link(rt_, root, link_).empty());
}

TEST_F(CoveringIndexTest, AdvCoveringMirrorsSubCovering) {
  Advertisement wide{{20, 1}, Filter{eq("class", "STOCK"),
                                     ge("x", std::int64_t{0}),
                                     le("x", std::int64_t{100})}};
  Advertisement narrow{{20, 2}, Filter{eq("class", "STOCK"),
                                       ge("x", std::int64_t{10}),
                                       le("x", std::int64_t{20})}};
  auto& w = rt_.upsert_adv(wide, Hop::of_client(1));
  w.forwarded_to.insert(link_);
  EXPECT_TRUE(adv_covered_on_link(rt_, narrow.id, narrow.filter, link_));

  auto& n = rt_.upsert_adv(narrow, Hop::of_client(2));
  n.forwarded_to.insert(link_);
  const auto victims =
      strictly_covered_advs_on_link(rt_, {20, 3}, wide.filter, link_);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0]->adv.id, narrow.id);

  // Removal of the wide advertisement un-quenches the narrow one.
  n.forwarded_to.clear();
  w.forwarded_to.clear();
  const auto orphans = unquenched_advs_on_link(rt_, w, link_);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0]->adv.id, narrow.id);
}

}  // namespace
}  // namespace tmps
