// Conformance to the concurrency table embedded in the paper's Fig. 4: the
// allowed combinations of coordinator state and client state at the source
// and target sites, sampled after every simulation event during commit and
// reject runs.
//
//   source:  coord init    <-> client init/created/started/pause_oper
//            coord wait    <-> client pause_move
//            coord prepare <-> client prepare_stop
//            coord abort   <-> client started
//            coord commit  <-> client clean (we dismantle the clean copy)
//   target:  coord init    <-> client init (no copy yet)
//            coord prepare <-> client created
//            coord abort   <-> client clean (copy dismantled)
//            coord commit  <-> client started
#include <gtest/gtest.h>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {
namespace {

constexpr ClientId kMover = 500;

struct Rig {
  Rig() : overlay(Overlay::chain(4)), net(overlay) {
    for (BrokerId b = 1; b <= 4; ++b) {
      engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
      engines.back()->set_transmit([this, b](Broker::Outputs out) {
        net.transmit(b, std::move(out));
      });
    }
    engines[0]->connect_client(kMover);
    Broker::Outputs out;
    engines[0]->subscribe(kMover, workload_filter(WorkloadKind::Covered, 1),
                          out);
    net.transmit(1, std::move(out));
    net.run();
  }

  /// Client state of the copy hosted at engine `idx` (nullopt = no copy).
  std::optional<ClientState> client_at(std::size_t idx) const {
    const ClientStub* stub = engines[idx]->find_client(kMover);
    if (!stub) return std::nullopt;
    return stub->state();
  }

  Overlay overlay;
  SimNetwork net;
  std::vector<std::unique_ptr<MobilityEngine>> engines;
};

void check_source_pair(const std::optional<SourceCoordState>& coord,
                       const std::optional<ClientState>& client) {
  if (!coord) {
    // No transaction record: the client is in a stationary state (or the
    // copy is gone after a previous committed move).
    if (client) {
      EXPECT_TRUE(*client == ClientState::Started ||
                  *client == ClientState::PauseOper ||
                  *client == ClientState::Created)
          << to_string(*client);
    }
    return;
  }
  switch (*coord) {
    case SourceCoordState::Init:
      break;  // transient; any pre-move client state
    case SourceCoordState::Wait:
      ASSERT_TRUE(client.has_value());
      EXPECT_EQ(*client, ClientState::PauseMove);
      break;
    case SourceCoordState::Prepare:
      ASSERT_TRUE(client.has_value());
      EXPECT_EQ(*client, ClientState::PrepareStop);
      break;
    case SourceCoordState::Abort:
      ASSERT_TRUE(client.has_value());
      EXPECT_EQ(*client, ClientState::Started);
      break;
    case SourceCoordState::Commit:
      // Fig. 4: client clean — our engine dismantles the clean copy.
      EXPECT_FALSE(client.has_value());
      break;
  }
}

void check_target_pair(const std::optional<TargetCoordState>& coord,
                       const std::optional<ClientState>& client) {
  if (!coord) {
    EXPECT_FALSE(client.has_value());
    return;
  }
  switch (*coord) {
    case TargetCoordState::Init:
      EXPECT_FALSE(client.has_value());
      break;
    case TargetCoordState::Prepare:
      ASSERT_TRUE(client.has_value());
      EXPECT_EQ(*client, ClientState::Created);
      break;
    case TargetCoordState::Abort:
      EXPECT_FALSE(client.has_value());  // clean copy dismantled
      break;
    case TargetCoordState::Commit:
      ASSERT_TRUE(client.has_value());
      EXPECT_EQ(*client, ClientState::Started);
      break;
  }
}

TEST(Fig4Conformance, CommitRunHonoursConcurrencyTable) {
  Rig r;
  Broker::Outputs out;
  const TxnId txn = r.engines[0]->initiate_move(kMover, 4, out);
  r.net.transmit(1, std::move(out));

  check_source_pair(r.engines[0]->source_state(txn), r.client_at(0));
  while (r.net.events().step()) {
    check_source_pair(r.engines[0]->source_state(txn), r.client_at(0));
    check_target_pair(r.engines[3]->target_state(txn), r.client_at(3));
  }
  EXPECT_EQ(r.engines[0]->source_state(txn), SourceCoordState::Commit);
  EXPECT_EQ(r.engines[3]->target_state(txn), TargetCoordState::Commit);
}

TEST(Fig4Conformance, RejectRunHonoursConcurrencyTable) {
  Rig r;
  r.engines[3]->mutable_config().accept_clients = false;
  Broker::Outputs out;
  const TxnId txn = r.engines[0]->initiate_move(kMover, 4, out);
  r.net.transmit(1, std::move(out));

  while (r.net.events().step()) {
    check_source_pair(r.engines[0]->source_state(txn), r.client_at(0));
    check_target_pair(r.engines[3]->target_state(txn), r.client_at(3));
  }
  EXPECT_EQ(r.engines[0]->source_state(txn), SourceCoordState::Abort);
  EXPECT_EQ(r.engines[3]->target_state(txn), TargetCoordState::Abort);
}

TEST(Fig4Conformance, RepeatedRoundTripsStayConformant) {
  Rig r;
  for (int round = 0; round < 3; ++round) {
    const std::size_t src = (round % 2 == 0) ? 0 : 3;
    const std::size_t dst = 3 - src;
    Broker::Outputs out;
    const TxnId txn = r.engines[src]->initiate_move(
        kMover, static_cast<BrokerId>(dst + 1), out);
    r.net.transmit(static_cast<BrokerId>(src + 1), std::move(out));
    while (r.net.events().step()) {
      check_source_pair(r.engines[src]->source_state(txn), r.client_at(src));
      check_target_pair(r.engines[dst]->target_state(txn), r.client_at(dst));
    }
    EXPECT_EQ(r.engines[src]->source_state(txn), SourceCoordState::Commit)
        << round;
  }
}

}  // namespace
}  // namespace tmps
