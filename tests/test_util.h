// Shared test helpers.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "broker/broker.h"
#include "routing/overlay.h"

namespace tmps::testing {

/// A zero-latency synchronous network for routing-layer tests: outputs are
/// delivered and processed in FIFO order immediately, with per-link message
/// counting. No timing, no mobility — just the routing fabric.
class SyncNet {
 public:
  explicit SyncNet(const Overlay& overlay, BrokerConfig cfg = {})
      : overlay_(&overlay) {
    for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
      brokers_[b] = std::make_unique<Broker>(b, overlay_, cfg);
    }
  }

  Broker& broker(BrokerId b) { return *brokers_.at(b); }

  /// Runs a local operation and fully propagates the resulting traffic.
  void run(BrokerId b, const std::function<Broker::Outputs(Broker&)>& op) {
    dispatch(b, op(broker(b)));
    drain();
  }

  void dispatch(BrokerId from, Broker::Outputs outputs) {
    for (auto& [to, msg] : outputs) {
      ++messages_;
      ++link_count_[{from, to}];
      queue_.push_back({from, to, std::move(msg)});
    }
  }

  void drain() {
    while (!queue_.empty()) {
      auto [from, to, msg] = std::move(queue_.front());
      queue_.pop_front();
      dispatch(to, broker(to).on_message(from, msg));
    }
  }

  std::uint64_t messages() const { return messages_; }
  void reset_count() {
    messages_ = 0;
    link_count_.clear();
  }
  std::uint64_t on_link(BrokerId a, BrokerId b) const {
    auto it = link_count_.find({a, b});
    return it == link_count_.end() ? 0 : it->second;
  }

 private:
  struct InFlight {
    BrokerId from, to;
    Message msg;
  };

  const Overlay* overlay_;
  std::map<BrokerId, std::unique_ptr<Broker>> brokers_;
  std::deque<InFlight> queue_;
  std::uint64_t messages_ = 0;
  std::map<std::pair<BrokerId, BrokerId>, std::uint64_t> link_count_;
};

}  // namespace tmps::testing
