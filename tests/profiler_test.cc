// Stage-profiler correctness: nested self/total accounting against a fake
// clock, sampling, per-thread slab flush into the metrics registry, the
// NDJSON/collapsed exports, and end-to-end attribution through a broker
// scenario (the ISSUE's ≥95% publish-path attribution criterion).
#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "broker/broker.h"
#include "obs/metrics.h"
#include "pubsub/workload.h"
#include "routing/overlay.h"

namespace tmps::obs {
namespace {

// Fake clock: a counter the test advances explicitly between probe
// boundaries, so every elapsed/self value is exact.
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() { return g_fake_now.load(); }

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_fake_now.store(0);
    StageProfiler::set_clock_for_test(&fake_clock);
  }
  void TearDown() override { StageProfiler::set_clock_for_test(nullptr); }
};

TEST_F(ProfilerTest, NestedStagesSplitSelfAndTotalExactly) {
  StageProfiler prof("7", /*sample_rate=*/1);
  {
    StageProbe publish(&prof, Stage::kPublish);  // starts at t=0
    g_fake_now.store(100);
    {
      StageProbe match(&prof, Stage::kMatch);  // 100..400
      g_fake_now.store(250);
      {
        StageProbe probe(&prof, Stage::kCoverProbe);  // 250..300
        g_fake_now.store(300);
      }
      g_fake_now.store(400);
    }
    g_fake_now.store(1000);
  }  // publish: total 1000, children 300 -> self 700
  prof.flush();

  EXPECT_EQ(prof.calls(Stage::kPublish), 1u);
  EXPECT_EQ(prof.total_ns(Stage::kPublish), 1000u);
  EXPECT_EQ(prof.self_ns(Stage::kPublish), 700u);
  EXPECT_EQ(prof.total_ns(Stage::kMatch), 300u);
  EXPECT_EQ(prof.self_ns(Stage::kMatch), 250u);
  EXPECT_EQ(prof.total_ns(Stage::kCoverProbe), 50u);
  EXPECT_EQ(prof.self_ns(Stage::kCoverProbe), 50u);
  // Self times partition the root's wall time exactly.
  EXPECT_EQ(prof.self_ns(Stage::kPublish) + prof.self_ns(Stage::kMatch) +
                prof.self_ns(Stage::kCoverProbe),
            prof.total_ns(Stage::kPublish));
  EXPECT_DOUBLE_EQ(prof.residual_share(Stage::kPublish), 0.7);
}

TEST_F(ProfilerTest, NestedProbeOfForeignProfilerStaysInactive) {
  StageProfiler a("1", 1), b("2", 1);
  {
    StageProbe outer(&a, Stage::kPublish);
    g_fake_now.store(10);
    {
      StageProbe foreign(&b, Stage::kMatch);
      EXPECT_FALSE(foreign.active());
      g_fake_now.store(30);
    }
    g_fake_now.store(100);
  }
  a.flush();
  b.flush();
  EXPECT_EQ(a.total_ns(Stage::kPublish), 100u);
  EXPECT_EQ(a.self_ns(Stage::kPublish), 100u);  // no child charged
  EXPECT_EQ(b.calls(Stage::kMatch), 0u);
}

TEST_F(ProfilerTest, SamplingKeepsRoughlyOneInN) {
  StageProfiler prof("1", /*sample_rate=*/8);
  const int kRoots = 20000;
  for (int i = 0; i < kRoots; ++i) {
    StageProbe p(&prof, Stage::kPublish);
    g_fake_now.fetch_add(5);
  }
  prof.flush();
  const auto n = prof.calls(Stage::kPublish);
  EXPECT_GT(n, kRoots / 8 / 2);      // not starved
  EXPECT_LT(n, kRoots / 8 * 2);      // not over-sampled
}

TEST_F(ProfilerTest, PerThreadSlabsMergeOnFlush) {
  StageProfiler prof("3", 1);
  MetricsRegistry reg;
  const int kThreads = 4, kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&prof] {
      for (int i = 0; i < kPerThread; ++i) {
        StageProbe p(&prof, Stage::kDecode);
        g_fake_now.fetch_add(10);
      }
    });
  }
  for (auto& th : threads) th.join();
  prof.flush(&reg);
  EXPECT_EQ(prof.calls(Stage::kDecode),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(reg.counter_value("tmps_stage_calls_total",
                              {{"broker", "3"}, {"stage", "decode"}}),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  // Histogram count matches the sampled call count after merge.
  const auto samples = reg.snapshot();
  bool found = false;
  for (const auto& s : samples) {
    if (s.name != "tmps_stage_self_seconds") continue;
    for (const auto& [k, v] : s.labels) {
      if (k == "stage" && v == "decode") found = true;
    }
    if (found) {
      EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads * kPerThread));
      break;
    }
  }
  EXPECT_TRUE(found);
  // Second flush with nothing new: deltas are zero, totals unchanged.
  prof.flush(&reg);
  EXPECT_EQ(reg.counter_value("tmps_stage_calls_total",
                              {{"broker", "3"}, {"stage", "decode"}}),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_F(ProfilerTest, NdjsonAndCollapsedExports) {
  StageProfiler prof("5", 1);
  {
    StageProbe publish(&prof, Stage::kPublish);
    g_fake_now.store(40);
    {
      StageProbe match(&prof, Stage::kMatch);
      g_fake_now.store(100);
    }
    g_fake_now.store(160);
  }
  prof.flush();

  std::ostringstream nd;
  prof.write_ndjson(nd);
  const std::string rows = nd.str();
  EXPECT_NE(rows.find("\"stage\":\"publish\""), std::string::npos);
  EXPECT_NE(rows.find("\"stage\":\"match\""), std::string::npos);
  EXPECT_NE(rows.find("\"broker\":\"5\""), std::string::npos);
  EXPECT_NE(rows.find("\"self_ns\":100"), std::string::npos);  // publish self
  EXPECT_NE(rows.find("\"self_ns\":60"), std::string::npos);   // match self

  std::ostringstream col;
  prof.write_collapsed(col);
  const std::string stacks = col.str();
  EXPECT_NE(stacks.find("5;publish 100"), std::string::npos);
  EXPECT_NE(stacks.find("5;publish;match 60"), std::string::npos);
}

// End-to-end attribution through a real broker under the real clock: with
// every publish sampled, the named stages must explain >= 95% of the
// publish path's wall time (the residual "other" bucket stays under 5%).
TEST(ProfilerE2ETest, PublishPathAttributionCoversNinetyFivePercent) {
  Overlay overlay = Overlay::chain(2);
  BrokerConfig cfg;
  cfg.obs.profile = true;
  cfg.obs.profile_rate = 1;  // sample every publish: exact attribution
  Broker broker(1, &overlay, cfg);
  obs::MetricsRegistry metrics;
  broker.set_observability(nullptr, &metrics);
  broker.set_clock([] { return 0.25; });

  Broker::Outputs out;
  for (int g = 0; g < 20; ++g) {
    for (int i = 1; i <= 10; ++i) {
      const ClientId c = 1000 + g * 10 + i;
      const Subscription s{
          {c, 1}, workload_filter_at(WorkloadKind::Covered, i, g, 7)};
      broker.inject_subscribe(Hop::of_client(c), s, kNoTxn, out);
    }
  }
  broker.inject_advertise(Hop::of_broker(2),
                          {{1, 1}, full_space_advertisement()}, kNoTxn, out);

  const int kPublishes = 20000;
  for (int i = 0; i < kPublishes; ++i) {
    const Publication pub = make_publication(
        {static_cast<ClientId>(1), static_cast<std::uint32_t>(i + 1)},
        kSpaceLo + (i * 7919) % (kSpaceHi - kSpaceLo), i % 20);
    broker.client_publish(1, pub);
  }

  StageProfiler* prof = broker.profiler();
  ASSERT_NE(prof, nullptr);
  prof->flush(&metrics);

  EXPECT_EQ(prof->calls(Stage::kPublish),
            static_cast<std::uint64_t>(kPublishes));
  EXPECT_EQ(prof->calls(Stage::kMatch),
            static_cast<std::uint64_t>(kPublishes));
  EXPECT_GT(prof->calls(Stage::kDeliver), 0u);
  const double residual = prof->residual_share(Stage::kPublish);
  EXPECT_GT(residual, 0.0);  // some unattributed glue always exists
  std::ostringstream dump;
  prof->write_ndjson(dump);
  EXPECT_LT(residual, 0.05)
      << "publish-path attribution below 95%; stage rows:\n"
      << dump.str();
}

TEST_F(ProfilerTest, DisabledProfilerAndNullPointerAreNoOps) {
  StageProfiler prof("1", 1);
  prof.set_enabled(false);
  {
    TMPS_PROF_STAGE(&prof, Stage::kPublish);
    g_fake_now.store(50);
  }
  {
    TMPS_PROF_STAGE(static_cast<StageProfiler*>(nullptr), Stage::kPublish);
  }
  prof.flush();
  EXPECT_EQ(prof.calls(Stage::kPublish), 0u);
}

}  // namespace
}  // namespace tmps::obs
