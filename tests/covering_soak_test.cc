// Randomized soak test of the covering optimization against a golden model:
// arbitrary interleavings of subscribe/unsubscribe/advertise/publish on a
// static network (no mobility) must deliver every publication exactly once
// to exactly the clients whose subscriptions match it — with covering
// quench/retract/un-quench happening underneath.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "broker/broker.h"
#include "routing/covering.h"
#include "pubsub/workload.h"
#include "test_util.h"

namespace tmps {
namespace {

struct LiveSub {
  SubscriptionId id;
  ClientId client;
  BrokerId at;
  Filter filter;
};

class CoveringSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoveringSoak, DeliveryMatchesGoldenModel) {
  std::mt19937_64 rng(GetParam());
  const Overlay overlay =
      Overlay::random_tree(6 + GetParam() % 7, GetParam() * 31 + 1);
  BrokerConfig cfg;  // covering ON — the machinery under test
  testing::SyncNet net(overlay, cfg);

  std::map<BrokerId, std::vector<std::pair<ClientId, Publication>>> delivered;
  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    net.broker(b).set_notify_sink(
        [&delivered, b](ClientId c, const Publication& p) {
          delivered[b].emplace_back(c, p);
        });
  }
  std::uniform_int_distribution<BrokerId> broker(1, overlay.broker_count());

  // A couple of stationary full-space advertisers.
  std::vector<BrokerId> adv_at;
  const int advertisers = 2;
  for (int a = 0; a < advertisers; ++a) {
    const BrokerId at = broker(rng);
    net.run(at, [&](Broker& b) {
      return b.client_advertise(
          static_cast<ClientId>(1 + a),
          {{static_cast<ClientId>(1 + a), 1}, full_space_advertisement()});
    });
    adv_at.push_back(at);
  }

  std::vector<LiveSub> live;
  std::map<std::pair<ClientId, PublicationId>, int> got;
  std::vector<std::pair<Publication, std::vector<ClientId>>> published;

  std::uniform_int_distribution<int> op(0, 9);
  std::uniform_int_distribution<int> member(1, 10);
  std::uniform_int_distribution<int> kindi(0, 3);
  std::uniform_int_distribution<std::int64_t> x(kSpaceLo, kSpaceHi);
  std::uniform_int_distribution<std::int64_t> grp(0, 3);
  constexpr WorkloadKind kinds[] = {WorkloadKind::Covered,
                                    WorkloadKind::Chained, WorkloadKind::Tree,
                                    WorkloadKind::Distinct};
  ClientId next_client = 100;
  std::uint32_t pub_seq = 0;

  for (int step = 0; step < 300; ++step) {
    const int o = op(rng);
    if (o < 4 || live.empty()) {
      // Subscribe: a new client with a random workload filter at a random
      // broker. Filters repeat across clients (grp 0..3) so identical-filter
      // covering happens constantly.
      LiveSub s;
      s.client = next_client++;
      s.id = {s.client, 1};
      s.at = broker(rng);
      s.filter = workload_filter(kinds[kindi(rng)], member(rng), grp(rng));
      net.run(s.at, [&](Broker& b) {
        return b.client_subscribe(s.client, {s.id, s.filter});
      });
      live.push_back(s);
    } else if (o < 6) {
      // Unsubscribe a random live subscription (may be a coverer —
      // un-quench cascades fire).
      std::uniform_int_distribution<std::size_t> pick(0, live.size() - 1);
      const std::size_t i = pick(rng);
      const LiveSub s = live[i];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      net.run(s.at, [&](Broker& b) {
        return b.client_unsubscribe(s.client, s.id);
      });
    } else {
      // Publish from a random advertiser; record the golden expectation.
      std::uniform_int_distribution<int> a(0, advertisers - 1);
      const int ai = a(rng);
      Publication p = make_publication(
          {static_cast<ClientId>(1 + ai), ++pub_seq}, x(rng), grp(rng));
      std::vector<ClientId> expect;
      for (const auto& s : live) {
        if (s.filter.matches(p)) expect.push_back(s.client);
      }
      published.emplace_back(p, std::move(expect));
      net.run(adv_at[static_cast<std::size_t>(ai)], [&](Broker& b) {
        return b.client_publish(static_cast<ClientId>(1 + ai), p);
      });
    }
  }

  // The covering invariants hold at every broker after quiescing.
  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    std::vector<Hop> links;
    for (const BrokerId n : overlay.neighbors(b)) {
      links.push_back(Hop::of_broker(n));
    }
    const auto violations =
        audit_covering_invariants(net.broker(b).tables(), links);
    EXPECT_TRUE(violations.empty())
        << "broker " << b << ": " << violations.size()
        << " violations, first: "
        << (violations.empty() ? "" : violations[0]);
  }

  // Collect deliveries into (client, pub) counts.
  for (const auto& [b, list] : delivered) {
    for (const auto& [c, p] : list) ++got[{c, p.id()}];
  }

  for (const auto& [pub, expect] : published) {
    const std::set<ClientId> expected(expect.begin(), expect.end());
    // Every expected client got it exactly once.
    for (const ClientId c : expected) {
      auto it = got.find({c, pub.id()});
      EXPECT_TRUE(it != got.end() && it->second == 1)
          << "client " << c << " missed/duplicated pub "
          << to_string(pub.id()) << " (got "
          << (it == got.end() ? 0 : it->second) << ")";
    }
  }
  // No publication reached a client whose subscription did not match (and
  // was live at publish time).
  for (const auto& [key, n] : got) {
    const auto& [c, pid] = key;
    bool was_expected = false;
    for (const auto& [pub, expect] : published) {
      if (pub.id() == pid &&
          std::find(expect.begin(), expect.end(), c) != expect.end()) {
        was_expected = true;
        break;
      }
    }
    EXPECT_TRUE(was_expected)
        << "client " << c << " received unexpected pub " << to_string(pid);
    EXPECT_LE(n, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoveringSoak,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace tmps
