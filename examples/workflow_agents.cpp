// Workflow-agent redeployment on the LIVE thread transport (the paper's
// distributed process-execution motivation): task-executing agents are
// hosted by brokers, consume task events for their activity, publish
// completion events, and get redeployed between execution engines at
// runtime. Everything here runs on real threads — the same protocol code
// the simulator benchmarks.
//
//   build/examples/workflow_agents
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "transport/inproc_transport.h"

using namespace tmps;

namespace {

Filter task_filter(const std::string& activity) {
  return Filter{eq("kind", "task"), eq("activity", activity)};
}
Filter task_adv() {
  return Filter{eq("kind", "task"), present("activity"), present("case")};
}
Filter done_adv() {
  return Filter{eq("kind", "done"), present("activity"), present("case")};
}

}  // namespace

int main() {
  const Overlay overlay = Overlay::paper_default();
  // Covering quenching is unsound under reconfiguration mobility (a quenched
  // entry loses its delivery path when its coverer moves), so mobile
  // deployments run with covering disabled — see DESIGN.md.
  BrokerConfig bc;
  bc.subscription_covering = false;
  bc.advertisement_covering = false;
  InprocTransport net(overlay, bc);

  constexpr ClientId kDispatcher = 1;
  constexpr ClientId kAgentA = 10;  // executes activity "validate"
  constexpr ClientId kAgentB = 11;  // executes activity "archive"
  constexpr ClientId kMonitor = 20;

  std::atomic<int> completed{0};

  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    net.engine(b).set_delivery_sink(
        [&net, &completed](ClientId c, const Publication& p, SimTime) {
          if (c == kAgentA || c == kAgentB) {
            // Execute the task and publish its completion — from wherever
            // the agent currently runs. The publish is deferred to the timer
            // thread so no broker lock is held while locating the agent.
            Publication done({0, 0},
                             {{"kind", "done"},
                              {"activity", *p.find("activity")},
                              {"case", *p.find("case")}});
            net.schedule(0.0, [&net, c, done] {
              for (BrokerId b2 = 1; b2 <= 14; ++b2) {
                bool found = false;
                net.run_on(b2, [&](MobilityEngine& e, Broker::Outputs& out) {
                  if (e.find_client(c)) {
                    e.publish(c, Publication(done), out);
                    found = true;
                  }
                });
                if (found) break;
              }
            });
          } else if (c == kMonitor) {
            completed.fetch_add(1);
            std::printf("  monitor: case %lld activity %s done\n",
                        static_cast<long long>(p.find("case")->as_int()),
                        p.find("activity")->as_string().c_str());
          }
        });
  }
  net.start();

  // The dispatcher publishes task events; agents subscribe per activity;
  // a monitor watches completions.
  net.run_on(3, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kDispatcher);
    e.advertise(kDispatcher, task_adv(), out);
  });
  net.run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kAgentA);
    e.subscribe(kAgentA, task_filter("validate"), out);
    e.advertise(kAgentA, done_adv(), out);
  });
  net.run_on(7, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kAgentB);
    e.subscribe(kAgentB, task_filter("archive"), out);
    e.advertise(kAgentB, done_adv(), out);
  });
  net.run_on(14, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kMonitor);
    e.subscribe(kMonitor, Filter{eq("kind", "done"), present("activity"),
                                 present("case")},
                out);
  });
  net.drain();

  auto dispatch = [&](int case_id, const std::string& activity) {
    std::printf("dispatching case %d activity %s\n", case_id,
                activity.c_str());
    net.run_on(3, [&](MobilityEngine& e, Broker::Outputs& out) {
      Publication task({0, 0}, {{"kind", "task"},
                                {"activity", activity},
                                {"case", std::int64_t{case_id}}});
      e.publish(kDispatcher, std::move(task), out);
    });
    net.drain();
  };

  dispatch(1, "validate");
  dispatch(1, "archive");

  // Redeploy agent A from broker 6 to broker 11 (engine rebalancing) and
  // keep executing: the movement transaction runs live on threads.
  std::printf("redeploying agent A: broker 6 -> 11\n");
  net.run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
    e.initiate_move(kAgentA, 11, out);
  });
  net.drain();

  dispatch(2, "validate");
  dispatch(2, "archive");

  // Agent completions are published from the timer thread; wait for the
  // last one rather than racing shutdown against it.
  for (int i = 0; i < 300 && completed.load() < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  net.drain();
  net.stop();

  std::printf("\ncompleted activities: %d/4\n", completed.load());
  std::printf("movements committed: %zu\n", net.stats().movements().size());
  return completed.load() == 4 ? 0 : 1;
}
