// Game-world handover (the paper's multiplayer-game motivation): a zone
// manager subscribed to its zone's player actions migrates between data
// centres as the player population shifts. The example runs the handover
// with both movement protocols and compares transaction time and network
// cost — a miniature of the paper's evaluation.
//
//   build/examples/game_world_migration
#include <cstdio>

#include "core/mobility_engine.h"
#include "sim/network.h"

using namespace tmps;

namespace {

constexpr ClientId kZoneManager = 10;
constexpr int kZones = 4;

Filter zone_filter(int zone) {
  return Filter{eq("topic", "player-action"), eq("zone", std::int64_t{zone})};
}
Filter actions_adv() {
  return Filter{eq("topic", "player-action"), ge("zone", std::int64_t{0}),
                le("zone", std::int64_t{kZones - 1})};
}

struct HandoverResult {
  double latency_ms = 0;
  std::uint64_t messages = 0;
  std::uint64_t actions_handled = 0;
};

HandoverResult run_handover(MobilityProtocol proto) {
  const Overlay overlay = Overlay::paper_default();
  BrokerConfig bc;
  // Covering quenching is only sound under the covering protocol.
  bc.subscription_covering = proto == MobilityProtocol::Traditional;
  bc.advertisement_covering = bc.subscription_covering;
  SimNetwork net(overlay, bc);

  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::uint64_t actions_handled = 0;
  MobilityConfig mc;
  mc.protocol = proto;
  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net, mc));
    engines.back()->set_transmit(
        [&net, b](Broker::Outputs out) { net.transmit(b, std::move(out)); });
    engines.back()->set_delivery_sink(
        [&](ClientId c, const Publication&, SimTime) {
          if (c == kZoneManager) ++actions_handled;
        });
  }
  auto run_on = [&](BrokerId b,
                    const std::function<void(MobilityEngine&,
                                             Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
  };

  // Player gateways at the four corner brokers publish player actions.
  const BrokerId gateways[] = {6, 7, 10, 11};
  for (int g = 0; g < 4; ++g) {
    const ClientId gw = 100 + g;
    run_on(gateways[g], [gw](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(gw);
      e.advertise(gw, actions_adv(), out);
    });
  }
  // The zone manager for zone 0 starts in the "European data centre"
  // (broker 1). Other zones' managers are stationary background clients.
  run_on(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kZoneManager);
    e.subscribe(kZoneManager, zone_filter(0), out);
  });
  for (int z = 1; z < kZones; ++z) {
    run_on(14, [z](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(20 + z);
      e.subscribe(20 + z, zone_filter(z), out);
    });
  }
  net.run();

  // Player actions stream in from all gateways, 20/s for 10 s.
  std::uint32_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    net.events().schedule_at(0.05 * i, [&, i] {
      const int g = i % 4;
      const ClientId gw = 100 + g;
      Publication action({gw, ++seq},
                         {{"topic", "player-action"},
                          {"zone", std::int64_t{i % kZones}},
                          {"player", std::int64_t{i * 7 % 97}}});
      run_on(gateways[g], [&](MobilityEngine& e, Broker::Outputs& out) {
        e.publish(gw, std::move(action), out);
      });
    });
  }

  // At t=5s the player population shifts towards the "Asian data centre"
  // (broker 13): hand the zone over.
  net.events().schedule_at(5.0, [&] {
    run_on(1, [](MobilityEngine& e, Broker::Outputs& out) {
      e.initiate_move(kZoneManager, 13, out);
    });
  });
  net.run();

  const auto& mv = net.stats().movements().at(0);
  return HandoverResult{mv.duration() * 1e3,
                        net.stats().messages_for_cause(mv.txn),
                        actions_handled};
}

}  // namespace

int main() {
  std::printf("zone handover: broker 1 (EU) -> broker 13 (Asia), 50 player "
              "actions/s in flight\n\n");
  std::printf("%16s | %14s | %14s | %s\n", "protocol", "handover (ms)",
              "messages", "zone-0 actions handled");
  for (auto proto :
       {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
    const HandoverResult r = run_handover(proto);
    std::printf("%16s | %14.1f | %14llu | %llu/50\n", to_string(proto),
                r.latency_ms, static_cast<unsigned long long>(r.messages),
                static_cast<unsigned long long>(r.actions_handled));
  }
  std::printf("\n(zone 0 receives every 4th action; the reconfiguration "
              "protocol hands over\n faster, cheaper, and without losing "
              "in-flight actions)\n");
  return 0;
}
