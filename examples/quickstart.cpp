// Quickstart: a five-broker overlay, one publisher, one subscriber, and one
// transactional movement — the smallest end-to-end tour of the library.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/mobility_engine.h"
#include "pubsub/workload.h"
#include "sim/network.h"

using namespace tmps;

int main() {
  // 1. An acyclic broker overlay: 1-2-3-4-5.
  const Overlay overlay = Overlay::chain(5);
  SimNetwork net(overlay);

  // 2. A mobile container (coordinator + hosted clients) on every broker.
  std::vector<std::unique_ptr<MobilityEngine>> engines;
  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
    engines.back()->set_transmit(
        [&net, b](Broker::Outputs out) { net.transmit(b, std::move(out)); });
    engines.back()->set_delivery_sink(
        [&net](ClientId c, const Publication& p, SimTime t) {
          std::printf("  [t=%.3fs] client %llu <- %s\n", t,
                      static_cast<unsigned long long>(c),
                      p.to_string().c_str());
        });
  }
  auto run = [&](BrokerId b,
                 const std::function<void(MobilityEngine&, Broker::Outputs&)>&
                     op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
    net.run();
  };

  // 3. A publisher at broker 1 advertises what it will publish.
  std::printf("publisher 100 advertises at broker 1\n");
  run(1, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(100);
    e.advertise(100, Filter{eq("class", "STOCK"), ge("x", std::int64_t{0}),
                            le("x", std::int64_t{1000})},
                out);
  });

  // 4. A subscriber at broker 2 registers interest.
  std::printf("subscriber 200 subscribes at broker 2 to x in [0,500]\n");
  run(2, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(200);
    e.subscribe(200, Filter{eq("class", "STOCK"), ge("x", std::int64_t{0}),
                            le("x", std::int64_t{500})},
                out);
  });

  // 5. Publications route content-based to the subscriber.
  std::printf("publisher publishes x=42 (matches) and x=900 (does not)\n");
  run(1, [](MobilityEngine& e, Broker::Outputs& out) {
    Publication p1({0, 0}, {{"class", "STOCK"}, {"x", std::int64_t{42}}});
    Publication p2({0, 0}, {{"class", "STOCK"}, {"x", std::int64_t{900}}});
    e.publish(100, std::move(p1), out);
    e.publish(100, std::move(p2), out);
  });

  // 6. Transactional movement: the subscriber relocates to broker 5. The
  //    reconfiguration protocol updates routing state hop-by-hop along the
  //    path 2-3-4-5; no notification is lost or duplicated.
  std::printf("subscriber 200 moves from broker 2 to broker 5...\n");
  TxnId txn = kNoTxn;
  run(2, [&](MobilityEngine& e, Broker::Outputs& out) {
    txn = e.initiate_move(200, 5, out);
  });
  std::printf("movement transaction %llu: source coordinator is %s\n",
              static_cast<unsigned long long>(txn),
              to_string(*engines[1]->source_state(txn)));

  // 7. Delivery continues at the new location, transparently.
  std::printf("publisher publishes x=123 after the move\n");
  run(1, [](MobilityEngine& e, Broker::Outputs& out) {
    Publication p({0, 0}, {{"class", "STOCK"}, {"x", std::int64_t{123}}});
    e.publish(100, std::move(p), out);
  });

  std::printf("movements recorded: %zu (committed: %s, %.1f ms)\n",
              net.stats().movements().size(),
              net.stats().movements()[0].committed ? "yes" : "no",
              net.stats().movements()[0].duration() * 1e3);
  return 0;
}
