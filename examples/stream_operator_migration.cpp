// Stream-operator migration (the paper's adaptive stream-processing
// motivation): a windowed-aggregate operator consumes sensor readings via a
// subscription and publishes per-window aggregates via an advertisement.
// Mid-stream it migrates to a broker closer to the sink — both its
// subscription and its advertisement move in one transaction — and the
// example verifies the aggregate stream is gapless and duplicate-free.
//
//   build/examples/stream_operator_migration
#include <cstdio>
#include <map>
#include <set>

#include "core/mobility_engine.h"
#include "sim/network.h"

using namespace tmps;

namespace {

constexpr ClientId kSensor = 1;    // at broker 6 (edge)
constexpr ClientId kOperator = 2;  // starts at broker 5, migrates to 12
constexpr ClientId kSink = 3;      // at broker 13 (data centre)
constexpr int kWindow = 10;        // readings per aggregate window

Filter readings_filter() {
  return Filter{eq("stream", "readings"), present("value"), present("seq")};
}
Filter aggregates_filter() {
  return Filter{eq("stream", "aggregates"), present("sum"), present("window")};
}

}  // namespace

int main() {
  const Overlay overlay = Overlay::paper_default();
  SimNetwork net(overlay);
  std::vector<std::unique_ptr<MobilityEngine>> engines;

  // Operator state: running sum of the current window. This is exactly the
  // state that must move with the client.
  struct OperatorState {
    std::int64_t sum = 0;
    int count = 0;
    int window = 0;
  } op_state;
  std::set<int> windows_received;
  int duplicate_windows = 0;

  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
    auto* eng = engines.back().get();
    eng->set_transmit(
        [&net, b](Broker::Outputs out) { net.transmit(b, std::move(out)); });
    eng->set_delivery_sink([&](ClientId c, const Publication& p, SimTime t) {
      if (c == kOperator) {
        // The operator folds each reading into its window aggregate and
        // emits when the window closes. Note: this runs wherever the
        // operator currently lives.
        op_state.sum += p.find("value")->as_int();
        if (++op_state.count == kWindow) {
          Publication agg({0, 0}, {{"stream", "aggregates"},
                                   {"sum", op_state.sum},
                                   {"window", std::int64_t{op_state.window}}});
          MobilityEngine* host = nullptr;
          for (auto& e : engines) {
            if (e->find_client(kOperator)) host = e.get();
          }
          Broker::Outputs out;
          host->publish(kOperator, std::move(agg), out);
          net.transmit(host->broker_id(), std::move(out));
          op_state = {0, 0, op_state.window + 1};
        }
      } else if (c == kSink) {
        const int w = static_cast<int>(p.find("window")->as_int());
        if (!windows_received.insert(w).second) ++duplicate_windows;
        std::printf("  [t=%6.3fs] sink: window %2d sum=%lld\n", t, w,
                    static_cast<long long>(p.find("sum")->as_int()));
      }
    });
  }
  auto run_on = [&](BrokerId b,
                    const std::function<void(MobilityEngine&,
                                             Broker::Outputs&)>& op) {
    Broker::Outputs out;
    op(*engines[b - 1], out);
    net.transmit(b, std::move(out));
  };

  // Wire the dataflow: sensor -> operator -> sink.
  run_on(6, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kSensor);
    e.advertise(kSensor,
                Filter{eq("stream", "readings"),
                       ge("value", std::int64_t{0}),
                       le("value", std::int64_t{1000000}),
                       ge("seq", std::int64_t{0})},
                out);
  });
  run_on(5, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kOperator);
    e.subscribe(kOperator, readings_filter(), out);
    e.advertise(kOperator,
                Filter{eq("stream", "aggregates"),
                       ge("sum", std::int64_t{0}),
                       ge("window", std::int64_t{0})},
                out);
  });
  run_on(13, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kSink);
    e.subscribe(kSink, aggregates_filter(), out);
  });
  net.run();

  // The sensor emits a reading every 50 ms for 10 s.
  for (int i = 0; i < 200; ++i) {
    net.events().schedule_at(0.05 * i, [&, i] {
      Publication r({0, 0}, {{"stream", "readings"},
                             {"value", std::int64_t{i}},
                             {"seq", std::int64_t{i}}});
      run_on(6, [&](MobilityEngine& e, Broker::Outputs& out) {
        e.publish(kSensor, std::move(r), out);
      });
    });
  }

  // Mid-stream, at t=5s, the operator migrates from broker 5 to broker 12
  // (closer to the sink). Its subscription, advertisement and window state
  // all move in one transaction.
  net.events().schedule_at(5.0, [&] {
    std::printf("  [t= 5.000s] *** migrating operator: broker 5 -> 12 ***\n");
    run_on(5, [](MobilityEngine& e, Broker::Outputs& out) {
      e.initiate_move(kOperator, 12, out);
    });
  });

  net.run();

  std::printf("\nwindows received: %zu/20, duplicates: %d\n",
              windows_received.size(), duplicate_windows);
  const auto& moves = net.stats().movements();
  std::printf("migration: %s in %.1f ms, %llu messages\n",
              moves.at(0).committed ? "committed" : "aborted",
              moves.at(0).duration() * 1e3,
              static_cast<unsigned long long>(
                  net.stats().messages_for_cause(moves.at(0).txn)));
  const bool ok = windows_received.size() == 20 && duplicate_windows == 0;
  std::printf("%s\n", ok ? "stream is gapless and duplicate-free"
                         : "STREAM CORRUPTED");
  return ok ? 0 : 1;
}
