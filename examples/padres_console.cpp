// An interactive console over a live broker overlay: type PADRES-syntax
// commands, watch notifications arrive, move clients between brokers.
// Demonstrates the parser, the MobileClient facade and the thread transport
// together. Also scriptable:
//
//   build/examples/padres_console <<'EOF'
//   connect alice 1
//   connect bob 13
//   advertise alice [class,eq,'NEWS'],[prio,>=,0]
//   subscribe bob [class,eq,'NEWS'],[prio,>,5]
//   publish alice [class,'NEWS'],[prio,7]
//   move bob 6
//   publish alice [class,'NEWS'],[prio,9]
//   status
//   EOF
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>

#include "core/mobile_client.h"
#include "pubsub/parser.h"
#include "transport/inproc_transport.h"

using namespace tmps;

namespace {

void help() {
  std::printf(
      "commands:\n"
      "  connect NAME BROKER          host a client at a broker\n"
      "  subscribe NAME FILTER        e.g. [class,eq,'NEWS'],[prio,>,5]\n"
      "  advertise NAME FILTER\n"
      "  publish NAME PUBLICATION     e.g. [class,'NEWS'],[prio,7]\n"
      "  move NAME BROKER             transactional movement\n"
      "  where NAME                   current broker of a client\n"
      "  status                       all clients and their locations\n"
      "  help / quit\n");
}

}  // namespace

int main() {
  const Overlay overlay = Overlay::paper_default();
  BrokerConfig bc;
  bc.subscription_covering = false;  // reconfiguration mobility (DESIGN.md)
  bc.advertisement_covering = false;
  InprocTransport net(overlay, bc);

  EngineDirectory directory;
  std::map<std::string, ClientId> names;
  std::map<ClientId, std::string> ids;
  ClientId next_id = 1;

  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    directory.add(net.engine(b));
    net.engine(b).set_delivery_sink(
        [&ids](ClientId c, const Publication& p, SimTime) {
          const auto it = ids.find(c);
          std::printf("  >> %s received %s\n",
                      it == ids.end() ? "?" : it->second.c_str(),
                      format_publication(p).c_str());
          std::fflush(stdout);
        });
  }
  net.start();

  std::printf("tmps console — 14-broker overlay (Fig. 6); 'help' for "
              "commands\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      help();
      continue;
    }
    if (cmd == "status") {
      for (const auto& [name, id] : names) {
        MobileClient c(id, directory);
        std::printf("  %-10s at broker %u (%s)\n", name.c_str(),
                    c.location(), to_string(c.state()));
      }
      continue;
    }

    std::string name;
    in >> name;
    if (cmd == "connect") {
      unsigned broker = 0;
      in >> broker;
      if (!overlay.contains(broker)) {
        std::printf("  !! no such broker\n");
        continue;
      }
      if (names.contains(name)) {
        std::printf("  !! '%s' already connected\n", name.c_str());
        continue;
      }
      const ClientId id = next_id++;
      names[name] = id;
      ids[id] = name;
      MobileClient::connect(id, broker, directory);
      std::printf("  %s connected at broker %u\n", name.c_str(), broker);
      continue;
    }

    const auto it = names.find(name);
    if (it == names.end()) {
      std::printf("  !! unknown client '%s'\n", name.c_str());
      continue;
    }
    MobileClient client(it->second, directory);

    if (cmd == "where") {
      std::printf("  %s is at broker %u\n", name.c_str(), client.location());
    } else if (cmd == "subscribe" || cmd == "advertise") {
      std::string rest;
      std::getline(in, rest);
      const auto f = parse_filter(rest);
      if (!f.ok()) {
        std::printf("  !! %s\n", f.error.c_str());
        continue;
      }
      if (cmd == "subscribe") {
        client.subscribe(*f.value);
      } else {
        client.advertise(*f.value);
      }
      net.drain();
      std::printf("  ok: %s %s\n", cmd.c_str(),
                  format_filter(*f.value).c_str());
    } else if (cmd == "publish") {
      std::string rest;
      std::getline(in, rest);
      const auto p = parse_publication(rest);
      if (!p.ok()) {
        std::printf("  !! %s\n", p.error.c_str());
        continue;
      }
      client.publish(*p.value);
      net.drain();
    } else if (cmd == "move") {
      unsigned target = 0;
      in >> target;
      if (!overlay.contains(target)) {
        std::printf("  !! no such broker\n");
        continue;
      }
      const TxnId txn = client.move_to(target);
      if (txn == kNoTxn) {
        std::printf("  !! cannot move right now\n");
        continue;
      }
      net.drain();
      std::printf("  %s moved to broker %u (txn %llu committed)\n",
                  name.c_str(), client.location(),
                  static_cast<unsigned long long>(txn));
    } else {
      std::printf("  !! unknown command '%s' ('help' lists them)\n",
                  cmd.c_str());
    }
  }
  net.stop();
  return 0;
}
