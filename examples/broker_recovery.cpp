// Broker crash and recovery (the paper's Sec. 3.5 fault-masking recipe,
// end-to-end): a durable broker journals every message, checkpoints its
// routing tables, "crashes" mid-stream, and recovers — replaying the
// unprocessed tail so no message is lost.
//
//   build/examples/broker_recovery
#include <cstdio>
#include <filesystem>

#include "pubsub/workload.h"
#include "txn/durable_node.h"

using namespace tmps;

int main() {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "tmps_broker_recovery";
  fs::remove_all(dir);

  const Overlay overlay = Overlay::chain(3);
  Broker origin(1, &overlay);  // mints well-formed neighbour messages

  auto adv_msg = [&] {
    Message m;
    m.id = origin.next_message_id();
    m.payload = AdvertiseMsg{{{200, 1}, full_space_advertisement()}};
    return m;
  };
  auto sub_msg = [&](std::uint32_t seq) {
    Message m;
    m.id = origin.next_message_id();
    m.payload =
        SubscribeMsg{{{100, seq}, workload_filter(WorkloadKind::Covered, 2)}};
    return m;
  };
  auto pub_msg = [&](std::uint32_t seq) {
    Message m;
    m.id = origin.next_message_id();
    m.payload = PublishMsg{make_publication({200, seq}, 100, 0)};
    return m;
  };

  std::printf("phase 1: broker 2 processes traffic and checkpoints\n");
  {
    DurableNode node(2, &overlay, dir);
    node.deliver(3, adv_msg());
    for (std::uint32_t i = 1; i <= 100; ++i) node.deliver(1, sub_msg(i));
    std::printf("  tables: %zu subscriptions, %zu advertisements\n",
                node.broker().tables().sub_count(),
                node.broker().tables().adv_count());
    const auto before = fs::file_size(dir / "journal.log");
    node.checkpoint();
    const auto after = fs::file_size(dir / "journal.log");
    std::printf("  checkpoint: journal %zu -> %zu bytes\n",
                static_cast<std::size_t>(before),
                static_cast<std::size_t>(after));

    // More traffic lands after the checkpoint; the last publication is
    // journaled but the broker "crashes" before processing it.
    for (std::uint32_t i = 101; i <= 110; ++i) node.deliver(1, sub_msg(i));
    node.journal_only(3, pub_msg(1));
    std::printf("  CRASH with 1 unprocessed message in the journal\n");
  }

  std::printf("phase 2: restart and recover\n");
  {
    DurableNode node(2, &overlay, dir);
    std::printf("  before recovery: %zu subscriptions (fresh process)\n",
                node.broker().tables().sub_count());
    int redelivered = 0;
    node.broker().set_notify_sink(
        [&](ClientId, const Publication&) { ++redelivered; });
    const auto outputs = node.recover();
    std::printf("  after recovery: %zu subscriptions, %zu advertisements\n",
                node.broker().tables().sub_count(),
                node.broker().tables().adv_count());
    std::printf("  tail replay emitted %zu forwarded message(s)\n",
                outputs.size());
    const bool ok = node.broker().tables().sub_count() == 110 &&
                    node.broker().tables().adv_count() == 1 &&
                    !outputs.empty();
    std::printf("%s\n", ok ? "recovery complete: no state or messages lost"
                           : "RECOVERY FAILED");
    fs::remove_all(dir);
    return ok ? 0 : 1;
  }
}
