file(REMOVE_RECURSE
  "CMakeFiles/mobile_client_test.dir/mobile_client_test.cc.o"
  "CMakeFiles/mobile_client_test.dir/mobile_client_test.cc.o.d"
  "mobile_client_test"
  "mobile_client_test.pdb"
  "mobile_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
