file(REMOVE_RECURSE
  "CMakeFiles/duplication_test.dir/duplication_test.cc.o"
  "CMakeFiles/duplication_test.dir/duplication_test.cc.o.d"
  "duplication_test"
  "duplication_test.pdb"
  "duplication_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duplication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
