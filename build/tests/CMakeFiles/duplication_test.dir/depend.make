# Empty dependencies file for duplication_test.
# This may be replaced when dependencies are built.
