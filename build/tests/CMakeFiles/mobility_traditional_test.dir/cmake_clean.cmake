file(REMOVE_RECURSE
  "CMakeFiles/mobility_traditional_test.dir/mobility_traditional_test.cc.o"
  "CMakeFiles/mobility_traditional_test.dir/mobility_traditional_test.cc.o.d"
  "mobility_traditional_test"
  "mobility_traditional_test.pdb"
  "mobility_traditional_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_traditional_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
