# Empty dependencies file for mobility_traditional_test.
# This may be replaced when dependencies are built.
