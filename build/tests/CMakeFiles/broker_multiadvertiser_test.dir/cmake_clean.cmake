file(REMOVE_RECURSE
  "CMakeFiles/broker_multiadvertiser_test.dir/broker_multiadvertiser_test.cc.o"
  "CMakeFiles/broker_multiadvertiser_test.dir/broker_multiadvertiser_test.cc.o.d"
  "broker_multiadvertiser_test"
  "broker_multiadvertiser_test.pdb"
  "broker_multiadvertiser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_multiadvertiser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
