# Empty compiler generated dependencies file for broker_multiadvertiser_test.
# This may be replaced when dependencies are built.
