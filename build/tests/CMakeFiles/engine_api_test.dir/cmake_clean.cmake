file(REMOVE_RECURSE
  "CMakeFiles/engine_api_test.dir/engine_api_test.cc.o"
  "CMakeFiles/engine_api_test.dir/engine_api_test.cc.o.d"
  "engine_api_test"
  "engine_api_test.pdb"
  "engine_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
