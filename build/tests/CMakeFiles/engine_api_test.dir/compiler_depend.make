# Empty compiler generated dependencies file for engine_api_test.
# This may be replaced when dependencies are built.
