file(REMOVE_RECURSE
  "CMakeFiles/covering_mobility_interaction_test.dir/covering_mobility_interaction_test.cc.o"
  "CMakeFiles/covering_mobility_interaction_test.dir/covering_mobility_interaction_test.cc.o.d"
  "covering_mobility_interaction_test"
  "covering_mobility_interaction_test.pdb"
  "covering_mobility_interaction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covering_mobility_interaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
