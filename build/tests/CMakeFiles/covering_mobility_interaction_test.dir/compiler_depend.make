# Empty compiler generated dependencies file for covering_mobility_interaction_test.
# This may be replaced when dependencies are built.
