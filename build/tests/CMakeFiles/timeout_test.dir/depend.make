# Empty dependencies file for timeout_test.
# This may be replaced when dependencies are built.
