file(REMOVE_RECURSE
  "CMakeFiles/timeout_test.dir/timeout_test.cc.o"
  "CMakeFiles/timeout_test.dir/timeout_test.cc.o.d"
  "timeout_test"
  "timeout_test.pdb"
  "timeout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
