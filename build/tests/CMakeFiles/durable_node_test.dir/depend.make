# Empty dependencies file for durable_node_test.
# This may be replaced when dependencies are built.
