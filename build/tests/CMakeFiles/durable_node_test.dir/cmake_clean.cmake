file(REMOVE_RECURSE
  "CMakeFiles/durable_node_test.dir/durable_node_test.cc.o"
  "CMakeFiles/durable_node_test.dir/durable_node_test.cc.o.d"
  "durable_node_test"
  "durable_node_test.pdb"
  "durable_node_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
