file(REMOVE_RECURSE
  "CMakeFiles/global_states_test.dir/global_states_test.cc.o"
  "CMakeFiles/global_states_test.dir/global_states_test.cc.o.d"
  "global_states_test"
  "global_states_test.pdb"
  "global_states_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_states_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
