# Empty compiler generated dependencies file for match_index_test.
# This may be replaced when dependencies are built.
