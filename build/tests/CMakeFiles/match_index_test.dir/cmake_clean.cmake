file(REMOVE_RECURSE
  "CMakeFiles/match_index_test.dir/match_index_test.cc.o"
  "CMakeFiles/match_index_test.dir/match_index_test.cc.o.d"
  "match_index_test"
  "match_index_test.pdb"
  "match_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
