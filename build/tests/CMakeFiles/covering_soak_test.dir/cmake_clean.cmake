file(REMOVE_RECURSE
  "CMakeFiles/covering_soak_test.dir/covering_soak_test.cc.o"
  "CMakeFiles/covering_soak_test.dir/covering_soak_test.cc.o.d"
  "covering_soak_test"
  "covering_soak_test.pdb"
  "covering_soak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covering_soak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
