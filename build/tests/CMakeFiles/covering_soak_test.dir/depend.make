# Empty dependencies file for covering_soak_test.
# This may be replaced when dependencies are built.
