# Empty compiler generated dependencies file for three_pc_test.
# This may be replaced when dependencies are built.
