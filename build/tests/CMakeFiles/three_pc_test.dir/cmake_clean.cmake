file(REMOVE_RECURSE
  "CMakeFiles/three_pc_test.dir/three_pc_test.cc.o"
  "CMakeFiles/three_pc_test.dir/three_pc_test.cc.o.d"
  "three_pc_test"
  "three_pc_test.pdb"
  "three_pc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_pc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
