# Empty compiler generated dependencies file for inproc_transport_test.
# This may be replaced when dependencies are built.
