# Empty dependencies file for three_pc_distributed_test.
# This may be replaced when dependencies are built.
