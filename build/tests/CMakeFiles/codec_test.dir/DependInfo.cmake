
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codec_test.cc" "tests/CMakeFiles/codec_test.dir/codec_test.cc.o" "gcc" "tests/CMakeFiles/codec_test.dir/codec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tmps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/tmps_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/tmps_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/tmps_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/tmps_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/failure/CMakeFiles/tmps_failure.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tmps_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
