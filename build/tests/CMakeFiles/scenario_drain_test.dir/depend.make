# Empty dependencies file for scenario_drain_test.
# This may be replaced when dependencies are built.
