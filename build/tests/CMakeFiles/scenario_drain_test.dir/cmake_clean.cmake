file(REMOVE_RECURSE
  "CMakeFiles/scenario_drain_test.dir/scenario_drain_test.cc.o"
  "CMakeFiles/scenario_drain_test.dir/scenario_drain_test.cc.o.d"
  "scenario_drain_test"
  "scenario_drain_test.pdb"
  "scenario_drain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_drain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
