# Empty dependencies file for fig4_conformance_test.
# This may be replaced when dependencies are built.
