file(REMOVE_RECURSE
  "CMakeFiles/fig4_conformance_test.dir/fig4_conformance_test.cc.o"
  "CMakeFiles/fig4_conformance_test.dir/fig4_conformance_test.cc.o.d"
  "fig4_conformance_test"
  "fig4_conformance_test.pdb"
  "fig4_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
