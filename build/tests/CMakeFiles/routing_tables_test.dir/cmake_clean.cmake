file(REMOVE_RECURSE
  "CMakeFiles/routing_tables_test.dir/routing_tables_test.cc.o"
  "CMakeFiles/routing_tables_test.dir/routing_tables_test.cc.o.d"
  "routing_tables_test"
  "routing_tables_test.pdb"
  "routing_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
