# Empty compiler generated dependencies file for routing_tables_test.
# This may be replaced when dependencies are built.
