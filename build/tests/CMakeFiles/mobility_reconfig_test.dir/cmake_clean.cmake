file(REMOVE_RECURSE
  "CMakeFiles/mobility_reconfig_test.dir/mobility_reconfig_test.cc.o"
  "CMakeFiles/mobility_reconfig_test.dir/mobility_reconfig_test.cc.o.d"
  "mobility_reconfig_test"
  "mobility_reconfig_test.pdb"
  "mobility_reconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_reconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
