file(REMOVE_RECURSE
  "CMakeFiles/tmps_pubsub.dir/codec.cc.o"
  "CMakeFiles/tmps_pubsub.dir/codec.cc.o.d"
  "CMakeFiles/tmps_pubsub.dir/constraint.cc.o"
  "CMakeFiles/tmps_pubsub.dir/constraint.cc.o.d"
  "CMakeFiles/tmps_pubsub.dir/filter.cc.o"
  "CMakeFiles/tmps_pubsub.dir/filter.cc.o.d"
  "CMakeFiles/tmps_pubsub.dir/messages.cc.o"
  "CMakeFiles/tmps_pubsub.dir/messages.cc.o.d"
  "CMakeFiles/tmps_pubsub.dir/parser.cc.o"
  "CMakeFiles/tmps_pubsub.dir/parser.cc.o.d"
  "CMakeFiles/tmps_pubsub.dir/predicate.cc.o"
  "CMakeFiles/tmps_pubsub.dir/predicate.cc.o.d"
  "CMakeFiles/tmps_pubsub.dir/value.cc.o"
  "CMakeFiles/tmps_pubsub.dir/value.cc.o.d"
  "CMakeFiles/tmps_pubsub.dir/workload.cc.o"
  "CMakeFiles/tmps_pubsub.dir/workload.cc.o.d"
  "libtmps_pubsub.a"
  "libtmps_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
