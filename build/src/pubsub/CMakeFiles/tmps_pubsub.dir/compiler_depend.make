# Empty compiler generated dependencies file for tmps_pubsub.
# This may be replaced when dependencies are built.
