file(REMOVE_RECURSE
  "libtmps_pubsub.a"
)
