
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pubsub/codec.cc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/codec.cc.o" "gcc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/codec.cc.o.d"
  "/root/repo/src/pubsub/constraint.cc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/constraint.cc.o" "gcc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/constraint.cc.o.d"
  "/root/repo/src/pubsub/filter.cc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/filter.cc.o" "gcc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/filter.cc.o.d"
  "/root/repo/src/pubsub/messages.cc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/messages.cc.o" "gcc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/messages.cc.o.d"
  "/root/repo/src/pubsub/parser.cc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/parser.cc.o" "gcc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/parser.cc.o.d"
  "/root/repo/src/pubsub/predicate.cc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/predicate.cc.o" "gcc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/predicate.cc.o.d"
  "/root/repo/src/pubsub/value.cc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/value.cc.o" "gcc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/value.cc.o.d"
  "/root/repo/src/pubsub/workload.cc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/workload.cc.o" "gcc" "src/pubsub/CMakeFiles/tmps_pubsub.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
