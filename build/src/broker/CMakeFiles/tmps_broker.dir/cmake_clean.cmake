file(REMOVE_RECURSE
  "CMakeFiles/tmps_broker.dir/broker.cc.o"
  "CMakeFiles/tmps_broker.dir/broker.cc.o.d"
  "libtmps_broker.a"
  "libtmps_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
