file(REMOVE_RECURSE
  "libtmps_broker.a"
)
