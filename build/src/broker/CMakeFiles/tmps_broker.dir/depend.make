# Empty dependencies file for tmps_broker.
# This may be replaced when dependencies are built.
