file(REMOVE_RECURSE
  "libtmps_routing.a"
)
