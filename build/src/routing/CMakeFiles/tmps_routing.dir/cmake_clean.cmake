file(REMOVE_RECURSE
  "CMakeFiles/tmps_routing.dir/auditor.cc.o"
  "CMakeFiles/tmps_routing.dir/auditor.cc.o.d"
  "CMakeFiles/tmps_routing.dir/covering.cc.o"
  "CMakeFiles/tmps_routing.dir/covering.cc.o.d"
  "CMakeFiles/tmps_routing.dir/match_index.cc.o"
  "CMakeFiles/tmps_routing.dir/match_index.cc.o.d"
  "CMakeFiles/tmps_routing.dir/overlay.cc.o"
  "CMakeFiles/tmps_routing.dir/overlay.cc.o.d"
  "CMakeFiles/tmps_routing.dir/routing_tables.cc.o"
  "CMakeFiles/tmps_routing.dir/routing_tables.cc.o.d"
  "libtmps_routing.a"
  "libtmps_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
