# Empty dependencies file for tmps_routing.
# This may be replaced when dependencies are built.
