
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/auditor.cc" "src/routing/CMakeFiles/tmps_routing.dir/auditor.cc.o" "gcc" "src/routing/CMakeFiles/tmps_routing.dir/auditor.cc.o.d"
  "/root/repo/src/routing/covering.cc" "src/routing/CMakeFiles/tmps_routing.dir/covering.cc.o" "gcc" "src/routing/CMakeFiles/tmps_routing.dir/covering.cc.o.d"
  "/root/repo/src/routing/match_index.cc" "src/routing/CMakeFiles/tmps_routing.dir/match_index.cc.o" "gcc" "src/routing/CMakeFiles/tmps_routing.dir/match_index.cc.o.d"
  "/root/repo/src/routing/overlay.cc" "src/routing/CMakeFiles/tmps_routing.dir/overlay.cc.o" "gcc" "src/routing/CMakeFiles/tmps_routing.dir/overlay.cc.o.d"
  "/root/repo/src/routing/routing_tables.cc" "src/routing/CMakeFiles/tmps_routing.dir/routing_tables.cc.o" "gcc" "src/routing/CMakeFiles/tmps_routing.dir/routing_tables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pubsub/CMakeFiles/tmps_pubsub.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
