file(REMOVE_RECURSE
  "libtmps_core.a"
)
