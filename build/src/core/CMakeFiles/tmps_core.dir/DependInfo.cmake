
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client_stub.cc" "src/core/CMakeFiles/tmps_core.dir/client_stub.cc.o" "gcc" "src/core/CMakeFiles/tmps_core.dir/client_stub.cc.o.d"
  "/root/repo/src/core/mobile_client.cc" "src/core/CMakeFiles/tmps_core.dir/mobile_client.cc.o" "gcc" "src/core/CMakeFiles/tmps_core.dir/mobile_client.cc.o.d"
  "/root/repo/src/core/mobility_engine.cc" "src/core/CMakeFiles/tmps_core.dir/mobility_engine.cc.o" "gcc" "src/core/CMakeFiles/tmps_core.dir/mobility_engine.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/tmps_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/tmps_core.dir/scenario.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/tmps_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tmps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/tmps_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/tmps_pubsub.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
