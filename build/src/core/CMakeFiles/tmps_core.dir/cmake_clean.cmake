file(REMOVE_RECURSE
  "CMakeFiles/tmps_core.dir/client_stub.cc.o"
  "CMakeFiles/tmps_core.dir/client_stub.cc.o.d"
  "CMakeFiles/tmps_core.dir/mobile_client.cc.o"
  "CMakeFiles/tmps_core.dir/mobile_client.cc.o.d"
  "CMakeFiles/tmps_core.dir/mobility_engine.cc.o"
  "CMakeFiles/tmps_core.dir/mobility_engine.cc.o.d"
  "CMakeFiles/tmps_core.dir/scenario.cc.o"
  "CMakeFiles/tmps_core.dir/scenario.cc.o.d"
  "libtmps_core.a"
  "libtmps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
