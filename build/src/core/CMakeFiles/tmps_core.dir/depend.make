# Empty dependencies file for tmps_core.
# This may be replaced when dependencies are built.
