file(REMOVE_RECURSE
  "libtmps_sim.a"
)
