file(REMOVE_RECURSE
  "CMakeFiles/tmps_sim.dir/event_queue.cc.o"
  "CMakeFiles/tmps_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tmps_sim.dir/network.cc.o"
  "CMakeFiles/tmps_sim.dir/network.cc.o.d"
  "CMakeFiles/tmps_sim.dir/stats.cc.o"
  "CMakeFiles/tmps_sim.dir/stats.cc.o.d"
  "libtmps_sim.a"
  "libtmps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
