# Empty compiler generated dependencies file for tmps_sim.
# This may be replaced when dependencies are built.
