file(REMOVE_RECURSE
  "CMakeFiles/tmps_failure.dir/failure_injector.cc.o"
  "CMakeFiles/tmps_failure.dir/failure_injector.cc.o.d"
  "libtmps_failure.a"
  "libtmps_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
