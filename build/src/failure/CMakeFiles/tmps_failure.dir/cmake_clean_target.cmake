file(REMOVE_RECURSE
  "libtmps_failure.a"
)
