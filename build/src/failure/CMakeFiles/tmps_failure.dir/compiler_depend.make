# Empty compiler generated dependencies file for tmps_failure.
# This may be replaced when dependencies are built.
