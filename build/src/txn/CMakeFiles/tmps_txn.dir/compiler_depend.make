# Empty compiler generated dependencies file for tmps_txn.
# This may be replaced when dependencies are built.
