
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/durable_node.cc" "src/txn/CMakeFiles/tmps_txn.dir/durable_node.cc.o" "gcc" "src/txn/CMakeFiles/tmps_txn.dir/durable_node.cc.o.d"
  "/root/repo/src/txn/persistent_queue.cc" "src/txn/CMakeFiles/tmps_txn.dir/persistent_queue.cc.o" "gcc" "src/txn/CMakeFiles/tmps_txn.dir/persistent_queue.cc.o.d"
  "/root/repo/src/txn/snapshot.cc" "src/txn/CMakeFiles/tmps_txn.dir/snapshot.cc.o" "gcc" "src/txn/CMakeFiles/tmps_txn.dir/snapshot.cc.o.d"
  "/root/repo/src/txn/three_pc.cc" "src/txn/CMakeFiles/tmps_txn.dir/three_pc.cc.o" "gcc" "src/txn/CMakeFiles/tmps_txn.dir/three_pc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pubsub/CMakeFiles/tmps_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/tmps_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/tmps_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
