file(REMOVE_RECURSE
  "libtmps_txn.a"
)
