file(REMOVE_RECURSE
  "CMakeFiles/tmps_txn.dir/durable_node.cc.o"
  "CMakeFiles/tmps_txn.dir/durable_node.cc.o.d"
  "CMakeFiles/tmps_txn.dir/persistent_queue.cc.o"
  "CMakeFiles/tmps_txn.dir/persistent_queue.cc.o.d"
  "CMakeFiles/tmps_txn.dir/snapshot.cc.o"
  "CMakeFiles/tmps_txn.dir/snapshot.cc.o.d"
  "CMakeFiles/tmps_txn.dir/three_pc.cc.o"
  "CMakeFiles/tmps_txn.dir/three_pc.cc.o.d"
  "libtmps_txn.a"
  "libtmps_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
