# Empty dependencies file for tmps_transport.
# This may be replaced when dependencies are built.
