file(REMOVE_RECURSE
  "libtmps_transport.a"
)
