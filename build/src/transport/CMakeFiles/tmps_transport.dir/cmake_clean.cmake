file(REMOVE_RECURSE
  "CMakeFiles/tmps_transport.dir/inproc_transport.cc.o"
  "CMakeFiles/tmps_transport.dir/inproc_transport.cc.o.d"
  "CMakeFiles/tmps_transport.dir/tcp_transport.cc.o"
  "CMakeFiles/tmps_transport.dir/tcp_transport.cc.o.d"
  "libtmps_transport.a"
  "libtmps_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
