# Empty dependencies file for fig09_workload_sweep.
# This may be replaced when dependencies are built.
