file(REMOVE_RECURSE
  "CMakeFiles/fig11_single_client.dir/fig11_single_client.cc.o"
  "CMakeFiles/fig11_single_client.dir/fig11_single_client.cc.o.d"
  "fig11_single_client"
  "fig11_single_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_single_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
