file(REMOVE_RECURSE
  "CMakeFiles/fig12_incremental.dir/fig12_incremental.cc.o"
  "CMakeFiles/fig12_incremental.dir/fig12_incremental.cc.o.d"
  "fig12_incremental"
  "fig12_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
