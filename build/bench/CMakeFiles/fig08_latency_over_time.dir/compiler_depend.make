# Empty compiler generated dependencies file for fig08_latency_over_time.
# This may be replaced when dependencies are built.
