# Empty dependencies file for ablation_protocol_variants.
# This may be replaced when dependencies are built.
