file(REMOVE_RECURSE
  "CMakeFiles/ablation_protocol_variants.dir/ablation_protocol_variants.cc.o"
  "CMakeFiles/ablation_protocol_variants.dir/ablation_protocol_variants.cc.o.d"
  "ablation_protocol_variants"
  "ablation_protocol_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protocol_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
