# Empty dependencies file for ext_publisher_mobility.
# This may be replaced when dependencies are built.
