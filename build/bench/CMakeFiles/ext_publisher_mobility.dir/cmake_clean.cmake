file(REMOVE_RECURSE
  "CMakeFiles/ext_publisher_mobility.dir/ext_publisher_mobility.cc.o"
  "CMakeFiles/ext_publisher_mobility.dir/ext_publisher_mobility.cc.o.d"
  "ext_publisher_mobility"
  "ext_publisher_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_publisher_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
