# Empty compiler generated dependencies file for fig13_topology_size.
# This may be replaced when dependencies are built.
