file(REMOVE_RECURSE
  "CMakeFiles/ext_guarantees.dir/ext_guarantees.cc.o"
  "CMakeFiles/ext_guarantees.dir/ext_guarantees.cc.o.d"
  "ext_guarantees"
  "ext_guarantees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_guarantees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
