# Empty dependencies file for ext_guarantees.
# This may be replaced when dependencies are built.
