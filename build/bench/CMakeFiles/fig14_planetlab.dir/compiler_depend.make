# Empty compiler generated dependencies file for fig14_planetlab.
# This may be replaced when dependencies are built.
