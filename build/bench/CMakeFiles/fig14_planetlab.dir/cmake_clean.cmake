file(REMOVE_RECURSE
  "CMakeFiles/fig14_planetlab.dir/fig14_planetlab.cc.o"
  "CMakeFiles/fig14_planetlab.dir/fig14_planetlab.cc.o.d"
  "fig14_planetlab"
  "fig14_planetlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
