# Empty compiler generated dependencies file for fig10_client_count.
# This may be replaced when dependencies are built.
