file(REMOVE_RECURSE
  "CMakeFiles/fig10_client_count.dir/fig10_client_count.cc.o"
  "CMakeFiles/fig10_client_count.dir/fig10_client_count.cc.o.d"
  "fig10_client_count"
  "fig10_client_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_client_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
