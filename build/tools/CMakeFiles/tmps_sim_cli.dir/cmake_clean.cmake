file(REMOVE_RECURSE
  "CMakeFiles/tmps_sim_cli.dir/tmps_sim.cc.o"
  "CMakeFiles/tmps_sim_cli.dir/tmps_sim.cc.o.d"
  "tmps_sim"
  "tmps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmps_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
