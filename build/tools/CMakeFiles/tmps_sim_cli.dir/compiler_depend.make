# Empty compiler generated dependencies file for tmps_sim_cli.
# This may be replaced when dependencies are built.
