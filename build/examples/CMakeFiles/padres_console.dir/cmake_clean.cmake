file(REMOVE_RECURSE
  "CMakeFiles/padres_console.dir/padres_console.cpp.o"
  "CMakeFiles/padres_console.dir/padres_console.cpp.o.d"
  "padres_console"
  "padres_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/padres_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
