# Empty dependencies file for padres_console.
# This may be replaced when dependencies are built.
