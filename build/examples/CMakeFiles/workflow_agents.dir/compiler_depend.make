# Empty compiler generated dependencies file for workflow_agents.
# This may be replaced when dependencies are built.
