file(REMOVE_RECURSE
  "CMakeFiles/workflow_agents.dir/workflow_agents.cpp.o"
  "CMakeFiles/workflow_agents.dir/workflow_agents.cpp.o.d"
  "workflow_agents"
  "workflow_agents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_agents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
