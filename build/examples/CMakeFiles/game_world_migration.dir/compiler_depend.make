# Empty compiler generated dependencies file for game_world_migration.
# This may be replaced when dependencies are built.
