file(REMOVE_RECURSE
  "CMakeFiles/game_world_migration.dir/game_world_migration.cpp.o"
  "CMakeFiles/game_world_migration.dir/game_world_migration.cpp.o.d"
  "game_world_migration"
  "game_world_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_world_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
