file(REMOVE_RECURSE
  "CMakeFiles/stream_operator_migration.dir/stream_operator_migration.cpp.o"
  "CMakeFiles/stream_operator_migration.dir/stream_operator_migration.cpp.o.d"
  "stream_operator_migration"
  "stream_operator_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_operator_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
