# Empty compiler generated dependencies file for stream_operator_migration.
# This may be replaced when dependencies are built.
