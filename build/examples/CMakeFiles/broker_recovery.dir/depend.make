# Empty dependencies file for broker_recovery.
# This may be replaced when dependencies are built.
