file(REMOVE_RECURSE
  "CMakeFiles/broker_recovery.dir/broker_recovery.cpp.o"
  "CMakeFiles/broker_recovery.dir/broker_recovery.cpp.o.d"
  "broker_recovery"
  "broker_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/broker_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
