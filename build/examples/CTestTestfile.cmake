# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_migration "/root/repo/build/examples/stream_operator_migration")
set_tests_properties(example_stream_migration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_game_world "/root/repo/build/examples/game_world_migration")
set_tests_properties(example_game_world PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_workflow_agents "/root/repo/build/examples/workflow_agents")
set_tests_properties(example_workflow_agents PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_broker_recovery "/root/repo/build/examples/broker_recovery")
set_tests_properties(example_broker_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
