// Extension: mobility-driven load balancing (src/control).
//
// A Zipf-skewed stationary population on the paper's 14-broker overlay
// concentrates publication load on a few brokers. The control plane samples
// per-broker load, detects the imbalance and migrates clients off the hot
// brokers through real movement transactions (Sec. 4) — the same protocol
// the paper built for client mobility, driven here by the system itself.
//
// Expected: the steady-window max/mean delivery-load ratio — the
// client-serving fan-out work migration actually relocates; transit
// forwarding through overlay hubs is topology-bound — drops by at least 2x
// with the balancer on, every client stays within its move budget
// (convergence, no oscillation), and the movement-invariant audit stays
// clean (run with TMPS_AUDIT=1). The bench exits nonzero if any of these
// fail, so CI can gate on it.
#include <algorithm>
#include <map>
#include <memory>

#include "bench_util.h"
#include "control/scenario_control.h"
#include "pubsub/workload.h"

using namespace tmps;
using namespace tmps::bench;

namespace {

struct BalanceResult {
  LoadSkew skew;       // deliveries: the load the balancer controls
  LoadSkew pub_skew;   // pubs processed + deliveries (incl. transit)
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t refused = 0;
  std::uint64_t max_moves = 0;  // per-client maximum (convergence)
  std::uint64_t stationary_losses = 0;
  std::uint64_t duplicates = 0;
};

constexpr std::uint32_t kBrokers = 14;

ScenarioConfig base_config(std::uint32_t clients, double skew) {
  ScenarioConfig cfg;
  // Reconfiguration mobility runs without covering (quenching is unsound
  // when a coverer can move away).
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  cfg.workload = WorkloadKind::Distinct;
  cfg.total_clients = clients;
  cfg.mover_override = [](std::uint32_t) { return false; };  // all stationary
  const auto homes = zipf_broker_placement(clients, kBrokers, skew, 5);
  cfg.home_override = [homes](std::uint32_t k) { return homes[k]; };
  cfg.publish_interval = 0.25;
  cfg.duration = full_run() ? 600.0 : 150.0;
  cfg.warmup = 40.0;
  cfg.seed = 7;
  return cfg;
}

BalanceResult run_one(ScenarioConfig cfg, const std::string& run_label) {
  apply_tracing(cfg, run_label);
  auto handle = control::install_balancer(cfg);

  // Baseline the per-broker loads at warmup; the steady window is the
  // difference against the final counters.
  auto base_deliv = std::make_shared<std::map<BrokerId, std::uint64_t>>();
  auto base_pub = std::make_shared<std::map<BrokerId, std::uint64_t>>();
  const double warmup = cfg.warmup;
  const auto prev_post_build = cfg.post_build;
  cfg.post_build = [=](SimNetwork& net) {
    if (prev_post_build) prev_post_build(net);
    net.events().schedule_at(warmup, [=, &net] {
      *base_deliv = net.stats().broker_delivery_loads();
      *base_pub = net.stats().broker_pub_loads();
    });
  };

  Scenario s(std::move(cfg));
  s.run();
  check_audit(s, run_label);

  const auto window_of = [](std::map<BrokerId, std::uint64_t> final_loads,
                            const std::map<BrokerId, std::uint64_t>& base) {
    for (auto& [b, n] : final_loads) {
      const auto it = base.find(b);
      if (it != base.end()) n -= std::min(n, it->second);
    }
    return final_loads;
  };

  BalanceResult r;
  r.skew =
      load_skew(window_of(s.stats().broker_delivery_loads(), *base_deliv),
                kBrokers);
  r.pub_skew =
      load_skew(window_of(s.stats().broker_pub_loads(), *base_pub), kBrokers);
  r.stationary_losses = s.audit().stationary_losses;
  r.duplicates = s.audit().duplicates;
  if (handle->balancer) {
    r.committed = handle->balancer->state().committed;
    r.aborted = handle->balancer->state().aborted;
    r.refused = handle->balancer->state().refused;
    for (const auto& [client, moves] : handle->balancer->moves_per_client()) {
      r.max_moves = std::max<std::uint64_t>(r.max_moves, moves);
    }
  }
  return r;
}

}  // namespace

int main() {
  print_header("Extension — mobility-driven load balancing",
               "Sec. 4 movement transactions as a control-plane actuator");

  BenchJson json = json_out("ext_load_balance");
  const std::uint32_t clients = 60;
  const double zipf = 1.5;
  json.config()
      .field("brokers", kBrokers)
      .field("clients", clients)
      .field("zipf_skew", zipf);

  std::printf("%12s | %8s %8s %8s %9s | %9s %7s %9s | %6s %4s\n", "run",
              "max", "mean", "ratio", "pub ratio", "committed", "aborted",
              "max moves", "losses", "dups");

  struct Variant {
    const char* label;
    bool balance;
    double churn;
  };
  const Variant variants[] = {
      {"static", false, 0.0},
      {"balanced", true, 0.0},
      {"bal+churn", true, 15.0},
  };

  std::map<std::string, BalanceResult> results;
  for (const Variant& v : variants) {
    ScenarioConfig cfg = base_config(clients, zipf);
    cfg.background_churn_interval = v.churn;
    cfg.broker.control.enabled = v.balance;
    cfg.broker.control.sample_interval = 1.0;
    cfg.broker.control.start_delay = 8.0;
    cfg.broker.control.imbalance_high = 1.3;
    cfg.broker.control.imbalance_low = 1.1;
    cfg.broker.control.client_cooldown = 10.0;
    cfg.broker.control.max_moves_per_client = 2;
    // Balance purely on the client-serving signal: delivery fan-out moves
    // with the client; publication transit through hubs does not.
    cfg.broker.control.delivery_weight = 1.0;
    cfg.broker.control.pub_weight = 0.1;
    cfg.broker.control.msg_weight = 0.0;

    const std::string run = std::string("extlb:") + v.label;
    const BalanceResult r = run_one(std::move(cfg), run);
    results[v.label] = r;

    std::printf("%12s | %8llu %8.1f %8.2f %9.2f | %9llu %7llu %9llu | "
                "%6llu %4llu\n",
                v.label, static_cast<unsigned long long>(r.skew.max),
                r.skew.mean, r.skew.ratio(), r.pub_skew.ratio(),
                static_cast<unsigned long long>(r.committed),
                static_cast<unsigned long long>(r.aborted),
                static_cast<unsigned long long>(r.max_moves),
                static_cast<unsigned long long>(r.stationary_losses),
                static_cast<unsigned long long>(r.duplicates));
    json.add_row()
        .field("run", v.label)
        .field("balance", v.balance)
        .field("churn_interval", v.churn)
        .field("load_max", r.skew.max)
        .field("load_mean", r.skew.mean)
        .field("load_ratio", r.skew.ratio())
        .field("pub_load_ratio", r.pub_skew.ratio())
        .field("moves_committed", r.committed)
        .field("moves_aborted", r.aborted)
        .field("moves_refused", r.refused)
        .field("max_moves_per_client", r.max_moves)
        .field("stationary_losses", r.stationary_losses)
        .field("duplicates", r.duplicates);
  }

  // Gates: >= 2x skew reduction, convergence, transactional safety.
  const BalanceResult& off = results.at("static");
  const BalanceResult& on = results.at("balanced");
  bool ok = true;
  if (on.skew.ratio() * 2.0 > off.skew.ratio()) {
    std::fprintf(stderr,
                 "GATE FAILED: balancer reduced max/mean only %.2f -> %.2f "
                 "(need >= 2x)\n",
                 off.skew.ratio(), on.skew.ratio());
    ok = false;
  }
  for (const auto& [label, r] : results) {
    if (r.max_moves > 2) {
      std::fprintf(stderr,
                   "GATE FAILED: run '%s' moved a client %llu times "
                   "(budget 2) — no convergence\n",
                   label.c_str(),
                   static_cast<unsigned long long>(r.max_moves));
      ok = false;
    }
  }
  if (on.stationary_losses != 0 || on.duplicates != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: balanced run lost %llu / duplicated %llu "
                 "deliveries\n",
                 static_cast<unsigned long long>(on.stationary_losses),
                 static_cast<unsigned long long>(on.duplicates));
    ok = false;
  }
  std::printf("\n%s: static ratio %.2f -> balanced %.2f (%.1fx reduction)\n",
              ok ? "PASS" : "FAIL", off.skew.ratio(), on.skew.ratio(),
              on.skew.ratio() > 0 ? off.skew.ratio() / on.skew.ratio() : 0.0);
  return ok ? 0 : 1;
}
