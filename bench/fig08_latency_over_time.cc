// Fig. 8 — movement latency over time.
//
// 400 clients (covered workload) repeatedly move between brokers 1<->13 and
// 2<->14 with a 10 s pause. The paper's scatter plot is rendered as
// time-bucketed statistics per movement pair, one block per protocol.
//
// Expected shape (paper): the reconfiguration protocol is more than an order
// of magnitude faster than the covering protocol; early movements are slower
// (join load); with the covering protocol the 1<->13 pair (which hosts the
// odd-numbered subscriptions, including the covering roots) is slower than
// the 2<->14 pair.
#include <algorithm>
#include <map>
#include <vector>

#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

int main() {
  print_header("Fig. 8 — movement latency over time",
               "Fig. 8(a) reconfiguration protocol, Fig. 8(b) covering "
               "protocol");
  BenchJson json = json_out("fig08_latency_over_time");
  {
    ScenarioConfig tpl =
        paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
    tpl.warmup = 0;  // this figure *shows* the setup phase
    scenario_config_fields(json.config(), tpl).field("workload", "covered");
  }

  for (auto proto :
       {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
    ScenarioConfig cfg = paper_config(proto, WorkloadKind::Covered);
    cfg.warmup = 0;  // this figure *shows* the setup phase
    apply_tracing(cfg, std::string("fig08:") + label(proto));
    Scenario s(cfg);
    s.run();
    check_audit(s, std::string("fig08:") + label(proto));

    const double bucket = cfg.duration / 10.0;
    // pair 0 = brokers 1<->13 (odd subscriptions), pair 1 = 2<->14 (even).
    std::map<int, std::array<Summary, 2>> buckets;
    for (const auto& m : s.movement_records()) {
      if (!m.committed) continue;
      const int b = static_cast<int>(m.start / bucket);
      const int pair = (m.source == 1 || m.source == 13 || m.target == 13 ||
                        m.target == 1)
                           ? 0
                           : 1;
      buckets[b][pair].add(m.duration() * 1e3);
    }

    std::printf("\n[%s protocol]\n", label(proto));
    std::printf("%10s  %22s  %22s\n", "time(s)", "brokers 1<->13 (ms)",
                "brokers 2<->14 (ms)");
    std::printf("%10s  %10s %11s  %10s %11s\n", "", "mean", "max", "mean",
                "max");
    for (const auto& [b, pairs] : buckets) {
      std::printf("%4.0f-%-5.0f  %10.1f %11.1f  %10.1f %11.1f\n", b * bucket,
                  (b + 1) * bucket, pairs[0].mean(), pairs[0].max(),
                  pairs[1].mean(), pairs[1].max());
      json.add_row()
          .field("protocol", label(proto))
          .field("t0_s", b * bucket)
          .field("t1_s", (b + 1) * bucket)
          .field("pair13_mean_ms", pairs[0].mean())
          .field("pair13_max_ms", pairs[0].max())
          .field("pair14_mean_ms", pairs[1].mean())
          .field("pair14_max_ms", pairs[1].max());
    }
    const Summary all = s.stats().latency_summary(cfg.warmup, cfg.duration);
    std::printf("overall: mean=%.1f ms  max=%.1f ms  movements=%llu\n",
                all.mean() * 1e3, all.max() * 1e3,
                static_cast<unsigned long long>(all.count()));

    // End-to-end publication delivery latency from provenance: histogram
    // percentiles and the Stats summary over the same samples (they agree
    // within log-bucket quantization).
    RunResult dlv;
    fill_delivery_latency(s, dlv);
    std::printf(
        "delivery latency (n=%llu): p50=%.2f/%.2f ms  p95=%.2f/%.2f ms  "
        "p99=%.2f/%.2f ms  (histogram/summary)\n",
        static_cast<unsigned long long>(dlv.deliveries), dlv.dlv_p50_ms,
        dlv.dlv_sum_p50_ms, dlv.dlv_p95_ms, dlv.dlv_sum_p95_ms, dlv.dlv_p99_ms,
        dlv.dlv_sum_p99_ms);
    json.add_row()
        .field("protocol", label(proto))
        .field("row_kind", "delivery_latency")
        .field("deliveries", dlv.deliveries)
        .field("dlv_p50_ms", dlv.dlv_p50_ms)
        .field("dlv_p95_ms", dlv.dlv_p95_ms)
        .field("dlv_p99_ms", dlv.dlv_p99_ms)
        .field("dlv_sum_p50_ms", dlv.dlv_sum_p50_ms)
        .field("dlv_sum_p95_ms", dlv.dlv_sum_p95_ms)
        .field("dlv_sum_p99_ms", dlv.dlv_sum_p99_ms);

    // Congestion evidence: the busiest brokers' utilization. The covering
    // protocol's latency comes from saturating the spine brokers.
    std::vector<std::pair<double, BrokerId>> util;
    for (BrokerId b = 1; b <= 14; ++b) {
      util.push_back({s.net().broker_busy_seconds(b) / cfg.duration, b});
    }
    std::sort(util.rbegin(), util.rend());
    std::printf("busiest brokers:");
    for (int i = 0; i < 3; ++i) {
      std::printf("  B%u %.0f%%", util[i].second, util[i].first * 100);
    }
    std::printf("\n");
  }
  return 0;
}
