// Covering-index micro-benchmark (the tentpole measurement): covering-check
// and strict-cover-set queries on routing tables populated with the Fig. 7
// workload shapes, index-backed vs full-table scan, at 1k..50k
// subscriptions. Every timed query is also checked for exact agreement
// between the index and the scan oracle — any divergence fails the binary
// (exit 1), so the CI perf-smoke leg doubles as a correctness gate.
//
// Writes BENCH_micro_covering.json (one row per workload × size with
// ns/query for both backends and the speedup). Usage:
//   micro_covering [max_subscriptions]
// The optional cap trims the size sweep (CI runs `micro_covering 2000`);
// TMPS_FULL=1 extends the sweep to 50k subscriptions.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_json.h"
#include "pubsub/workload.h"
#include "routing/routing_tables.h"

namespace tmps {
namespace {

bool full_run() {
  const char* v = std::getenv("TMPS_FULL");
  return v && *v && std::string(v) != "0";
}

constexpr int kQueries = 64;

RoutingTables make_tables(WorkloadKind k, int n, std::uint64_t seed) {
  RoutingTables rt;
  const int families = n / 10;
  for (int g = 0; g < families; ++g) {
    for (int i = 1; i <= 10; ++i) {
      const Subscription s{{static_cast<ClientId>(1000 + g * 10 + i), 1},
                           workload_filter_at(k, i, g, seed)};
      auto& e = rt.upsert_sub(s, Hop::of_broker(2));
      e.forwarded_to.insert(Hop::of_broker(3));
    }
  }
  rt.upsert_adv({{1, 1}, full_space_advertisement()}, Hop::of_broker(3));
  return rt;
}

/// ns per query of `f` (which runs `ops` queries per call), repeated until
/// the sample window exceeds ~5 ms for a stable reading.
template <typename F>
double ns_per_query(F&& f, int ops) {
  using clock = std::chrono::steady_clock;
  f();  // warm caches
  long iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (long i = 0; i < iters; ++i) f();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    if (ns > 5e6 || iters >= (1L << 22)) {
      return ns / (static_cast<double>(iters) * ops);
    }
    iters *= 4;
  }
}

std::vector<EntityId> ids_of(const std::vector<SubEntry*>& es) {
  std::vector<EntityId> out;
  for (const SubEntry* e : es) out.push_back(e->sub.id);
  std::sort(out.begin(), out.end());
  return out;
}

void die_on_mismatch(bool ok, const char* what, WorkloadKind k, int n,
                     int q) {
  if (ok) return;
  std::fprintf(stderr,
               "FATAL: covering index disagrees with scan oracle (%s, "
               "workload=%s, n=%d, query=%d)\n",
               what, to_string(k), n, q);
  std::exit(1);
}

struct Timings {
  double covered_index_ns = 0, covered_scan_ns = 0;
  double strict_index_ns = 0, strict_scan_ns = 0;
};

Timings measure(RoutingTables& rt, WorkloadKind k, int n,
                std::uint64_t seed) {
  const Hop link = Hop::of_broker(3);
  std::mt19937_64 rng(seed ^ 0xBEEF);
  const int families = n / 10;

  // Probe filters: fresh subscriptions drawn from random families —
  // narrow members (usually covered) for the covered-check, the family
  // root (covers its family) for the strict-cover-set query.
  std::vector<Filter> narrow, wide;
  for (int q = 0; q < kQueries; ++q) {
    const auto g = static_cast<std::int64_t>(rng() % families);
    narrow.push_back(
        workload_filter_at(k, 2 + static_cast<int>(rng() % 9), g, seed));
    wide.push_back(workload_filter_at(k, 1, g, seed));
  }

  // Correctness gate first: every timed query must agree with its oracle.
  for (int q = 0; q < kQueries; ++q) {
    const SubscriptionId probe{9999, static_cast<std::uint32_t>(q + 1)};
    die_on_mismatch(rt.sub_covered_on_link(probe, narrow[q], link) ==
                        rt.sub_covered_on_link_scan(probe, narrow[q], link),
                    "sub_covered_on_link", k, n, q);
    die_on_mismatch(
        ids_of(rt.strictly_covered_subs_on_link(probe, wide[q], link)) ==
            ids_of(rt.strictly_covered_subs_on_link_scan(probe, wide[q],
                                                         link)),
        "strictly_covered_subs_on_link", k, n, q);
  }

  Timings t;
  t.covered_index_ns = ns_per_query(
      [&] {
        for (int q = 0; q < kQueries; ++q) {
          volatile bool r = rt.sub_covered_on_link(
              {9999, static_cast<std::uint32_t>(q + 1)}, narrow[q], link);
          (void)r;
        }
      },
      kQueries);
  t.covered_scan_ns = ns_per_query(
      [&] {
        for (int q = 0; q < kQueries; ++q) {
          volatile bool r = rt.sub_covered_on_link_scan(
              {9999, static_cast<std::uint32_t>(q + 1)}, narrow[q], link);
          (void)r;
        }
      },
      kQueries);
  t.strict_index_ns = ns_per_query(
      [&] {
        for (int q = 0; q < kQueries; ++q) {
          auto r = rt.strictly_covered_subs_on_link(
              {9999, static_cast<std::uint32_t>(q + 1)}, wide[q], link);
          (void)r;
        }
      },
      kQueries);
  t.strict_scan_ns = ns_per_query(
      [&] {
        for (int q = 0; q < kQueries; ++q) {
          auto r = rt.strictly_covered_subs_on_link_scan(
              {9999, static_cast<std::uint32_t>(q + 1)}, wide[q], link);
          (void)r;
        }
      },
      kQueries);
  return t;
}

}  // namespace
}  // namespace tmps

int main(int argc, char** argv) {
  using namespace tmps;

  std::vector<int> sizes = {1000, 5000, 10000};
  if (full_run()) sizes.push_back(50000);
  if (argc > 1) {
    const int cap = std::atoi(argv[1]);
    if (cap > 0) {
      std::erase_if(sizes, [&](int n) { return n > cap; });
      if (sizes.empty()) sizes.push_back(cap);
    }
  }

  constexpr WorkloadKind kKinds[] = {WorkloadKind::Covered,
                                     WorkloadKind::Chained, WorkloadKind::Tree,
                                     WorkloadKind::Distinct,
                                     WorkloadKind::Random};
  constexpr std::uint64_t kSeed = 42;

  bench::BenchJson json("micro_covering",
                        full_run() ? "full" : "quick");
  json.config().field("queries", kQueries).field("seed", kSeed);

  std::printf("%-9s %7s | %12s %12s %8s | %12s %12s %8s\n", "workload",
              "subs", "covered ix", "covered scan", "speedup", "strict ix",
              "strict scan", "speedup");
  for (WorkloadKind k : kKinds) {
    for (int n : sizes) {
      RoutingTables rt = make_tables(k, n, kSeed);
      // Structural cross-check of the index against the table (skipped at
      // 50k: the per-entry self-candidacy sweep is quadratic-ish).
      if (n <= 10000) {
        const auto violations = rt.check_cover_index();
        if (!violations.empty()) {
          std::fprintf(stderr, "FATAL: check_cover_index: %s\n",
                       violations.front().c_str());
          return 1;
        }
      }
      const Timings t = measure(rt, k, n, kSeed);
      const double covered_speedup = t.covered_scan_ns / t.covered_index_ns;
      const double strict_speedup = t.strict_scan_ns / t.strict_index_ns;
      std::printf("%-9s %7d | %10.0fns %10.0fns %7.1fx | %10.0fns %10.0fns "
                  "%7.1fx\n",
                  to_string(k), n, t.covered_index_ns, t.covered_scan_ns,
                  covered_speedup, t.strict_index_ns, t.strict_scan_ns,
                  strict_speedup);
      json.add_row()
          .field("workload", to_string(k))
          .field("n", n)
          .field("queries", kQueries)
          .field("covered_index_ns", t.covered_index_ns)
          .field("covered_scan_ns", t.covered_scan_ns)
          .field("strict_index_ns", t.strict_index_ns)
          .field("strict_scan_ns", t.strict_scan_ns)
          .field("speedup", covered_speedup)
          .field("strict_speedup", strict_speedup);
    }
  }
  return 0;
}
