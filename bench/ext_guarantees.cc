// Extension: quantifying the transactional guarantees (Sec. 3.4).
//
// The paper proves the reconfiguration protocol delivers notifications to a
// moving client exactly once and argues traditional protocols cannot. This
// bench measures it: the covering-family roots move continuously while
// publishers stream; every (subscriber, matching publication) pair is
// audited for loss and duplication.
//
// Expected: zero loss and zero duplicates for the reconfiguration protocol;
// a measurable hand-off loss rate for the moving clients under the
// traditional protocol (stationary clients stay loss-free under both — the
// un-quench-before-unsubscribe ordering hands their paths over seamlessly).
#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

int main() {
  print_header("Extension — notification guarantees under movement",
               "Sec. 3.4 atomicity/consistency, measured");

  BenchJson json = json_out("ext_guarantees");
  {
    ScenarioConfig tpl =
        paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
    tpl.publish_interval = 0.25;
    scenario_config_fields(json.config(), tpl)
        .field("movers", "covering roots (k mod 10 == 0)");
  }
  std::printf("%9s %9s | %18s %20s | %10s\n", "workload", "protocol",
              "mover loss", "stationary loss", "duplicates");
  for (auto wl : {WorkloadKind::Covered, WorkloadKind::Tree,
                  WorkloadKind::Distinct}) {
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      ScenarioConfig cfg = paper_config(proto, wl);
      // The covering roots (member 1 of every family) move; the covered
      // members stay and depend on them wherever quenching applied.
      cfg.mover_override = [](std::uint32_t k) { return k % 10 == 0; };
      cfg.publish_interval = 0.25;
      const std::string run =
          std::string("extg:") + to_string(wl) + ":" + label(proto);
      apply_tracing(cfg, run);

      Scenario s(cfg);
      s.run();
      check_audit(s, run);
      const auto& a = s.audit();
      std::printf("%9s %9s | %8llu / %-8llu %9llu / %-8llu | %10llu\n",
                  to_string(wl), label(proto),
                  static_cast<unsigned long long>(a.mover_losses),
                  static_cast<unsigned long long>(a.mover_expected),
                  static_cast<unsigned long long>(a.stationary_losses),
                  static_cast<unsigned long long>(a.stationary_expected),
                  static_cast<unsigned long long>(a.duplicates));
      json.add_row()
          .field("workload", to_string(wl))
          .field("protocol", label(proto))
          .field("mover_losses", a.mover_losses)
          .field("mover_expected", a.mover_expected)
          .field("stationary_losses", a.stationary_losses)
          .field("stationary_expected", a.stationary_expected)
          .field("duplicates", a.duplicates);
    }
  }
  return 0;
}
