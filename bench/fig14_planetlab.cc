// Fig. 14 — wide-area (PlanetLab) deployment.
//
// The WAN profile substitutes for PlanetLab: heterogeneous per-link delays
// (log-normal), heavy per-message jitter and slower (shared) nodes. 14
// brokers, 100 moving clients.
//
// Expected shape (paper): the same trends as the local testbed — the
// reconfiguration protocol moves faster and with less message overhead —
// but all latencies are longer and vary more than on the LAN.
#include <array>
#include <map>

#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

namespace {

ScenarioConfig wan_config(MobilityProtocol proto, WorkloadKind wl) {
  ScenarioConfig cfg = paper_config(proto, wl);
  cfg.net = NetworkProfile::planetlab();
  cfg.total_clients = 100;
  return cfg;
}

}  // namespace

int main() {
  print_header("Fig. 14 — wide-area PlanetLab deployment",
               "Fig. 14(a,b) latency over time, Fig. 14(c) latency per "
               "workload, Fig. 14(d) message load");

  BenchJson json = json_out("fig14_planetlab");
  scenario_config_fields(json.config(),
                         wan_config(MobilityProtocol::Reconfiguration,
                                    WorkloadKind::Covered))
      .field("net_profile", "planetlab");

  // (a) + (b): latency over time, covered workload.
  for (auto proto :
       {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
    ScenarioConfig cfg = wan_config(proto, WorkloadKind::Covered);
    cfg.warmup = 0;
    apply_tracing(cfg, std::string("fig14:time:") + label(proto));
    Scenario s(cfg);
    s.run();
    check_audit(s, std::string("fig14:time:") + label(proto));
    const double bucket = cfg.duration / 8.0;
    std::map<int, Summary> buckets;
    for (const auto& m : s.movement_records()) {
      if (m.committed) {
        buckets[static_cast<int>(m.start / bucket)].add(m.duration());
      }
    }
    std::printf("\n[%s protocol, latency over time]\n", label(proto));
    std::printf("%12s  %10s %10s\n", "time(s)", "mean(s)", "max(s)");
    for (const auto& [b, sum] : buckets) {
      std::printf("%5.0f-%-6.0f  %10.2f %10.2f\n", b * bucket,
                  (b + 1) * bucket, sum.mean(), sum.max());
    }
  }

  // (c) + (d): workload sweep under WAN conditions.
  std::printf("\n[workload sweep]\n");
  std::printf("%9s %7s %9s | %11s %11s | %10s %11s\n", "workload", "cover°",
              "protocol", "lat mean(s)", "lat max(s)", "msgs/move",
              "movements");
  for (auto wl :
       {WorkloadKind::Chained, WorkloadKind::Tree, WorkloadKind::Covered}) {
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      const std::string run =
          std::string("fig14:") + to_string(wl) + ":" + label(proto);
      const RunResult r = run_scenario(wan_config(proto, wl), run);
      std::printf("%9s %7d %9s | %11.2f %11.2f | %10.1f %11llu\n",
                  to_string(wl), covering_degree(wl), label(proto),
                  r.latency_ms / 1e3, r.latency_max_ms / 1e3,
                  r.msgs_per_movement,
                  static_cast<unsigned long long>(r.movements));
      auto& row = json.add_row()
                      .field("workload", to_string(wl))
                      .field("protocol", label(proto));
      result_fields(row, r);
    }
  }
  return 0;
}
