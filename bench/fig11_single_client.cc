// Fig. 11 — moving a single client: the covering root.
//
// 400 clients with the covered workload; only the client holding the
// covering-root subscription of family 0 moves.
//
// Expected shape (paper): even with a single mover the covering protocol has
// much worse movement latency and message load — every root movement
// re-propagates (at the source) and retracts (at the target) all the
// subscriptions it covers, while the reconfiguration protocol stays at
// path-length cost.
#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

int main() {
  print_header("Fig. 11 — single moving client (covering root)",
               "Fig. 11(a) movement latency, Fig. 11(b) message load");

  BenchJson json = json_out("fig11_single_client");
  {
    ScenarioConfig tpl =
        paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
    tpl.moving_clients = 1;
    scenario_config_fields(json.config(), tpl).field("workload", "covered");
  }
  std::printf("%9s | %12s %12s | %10s %11s\n", "protocol", "lat mean(ms)",
              "lat max(ms)", "msgs/move", "movements");
  for (auto proto :
       {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
    ScenarioConfig cfg = paper_config(proto, WorkloadKind::Covered);
    cfg.moving_clients = 1;  // client 0 holds subscription 1 of family 0
    const RunResult r =
        run_scenario(cfg, std::string("fig11:") + label(proto));
    std::printf("%9s | %12.1f %12.1f | %10.1f %11llu\n", label(proto),
                r.latency_ms, r.latency_max_ms, r.msgs_per_movement,
                static_cast<unsigned long long>(r.movements));
    auto& row = json.add_row().field("protocol", label(proto));
    result_fields(row, r);
  }
  return 0;
}
