// Extension: publisher mobility at scale.
//
// The paper formalizes the Sec. 4.4 reconfiguration rules for a moving
// *advertisement* (SRT flip along the path plus the three PRT cases for
// other clients' subscriptions) but evaluates only subscriber movement.
// This bench runs the paper's movement scenario with the movers being
// publishers: every mover advertises its family filter and moves between
// the broker pairs; stationary clients subscribe as usual.
//
// Expected shape: the same story as subscriber mobility — the
// reconfiguration protocol's latency and per-movement message count stay
// flat across workloads (cost ~ path length plus the local PRT fixes),
// while the traditional protocol pays end-to-end unadvertise/re-advertise
// flooding, amplified by advertisement covering on covering-heavy
// workloads.
#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

int main() {
  print_header("Extension — publisher mobility",
               "Sec. 4.4 advertisement reconfiguration (not evaluated in "
               "the paper)");

  BenchJson json = json_out("ext_publisher_mobility");
  {
    ScenarioConfig tpl =
        paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
    tpl.moving_clients = 100;
    scenario_config_fields(json.config(), tpl)
        .field("movers_are_publishers", true);
  }
  std::printf("%9s %7s %9s | %12s %12s | %10s %11s\n", "workload", "cover°",
              "protocol", "lat mean(ms)", "lat max(ms)", "msgs/move",
              "movements");
  for (auto wl : {WorkloadKind::Distinct, WorkloadKind::Chained,
                  WorkloadKind::Tree, WorkloadKind::Covered}) {
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      ScenarioConfig cfg = paper_config(proto, wl);
      cfg.movers_are_publishers = true;
      cfg.moving_clients = 100;      // 100 moving publishers (families 0-9),
      cfg.total_clients = 400;       // 300 stationary subscribers
      cfg.publisher_brokers.clear(); // the movers are the publishers
      // Stationary subscribers subscribe into the movers' families so every
      // moving advertisement has interested subscriptions to re-route.
      cfg.filter_override = [wl, &cfg](std::uint32_t k) {
        if (k < cfg.moving_clients) {  // moving publisher: family k/10
          return workload_filter_at(wl, static_cast<int>(k % 10) + 1, k / 10,
                                    7 + k / 10);
        }
        const std::uint32_t s = k - cfg.moving_clients;
        return workload_filter_at(wl, static_cast<int>((s / 10) % 10) + 1,
                                  s % 10, 7 + s % 10);
      };
      const RunResult r = run_scenario(
          cfg, std::string("extpub:") + to_string(wl) + ":" + label(proto));
      std::printf("%9s %7d %9s | %12.1f %12.1f | %10.1f %11llu\n",
                  to_string(wl), covering_degree(wl), label(proto),
                  r.latency_ms, r.latency_max_ms, r.msgs_per_movement,
                  static_cast<unsigned long long>(r.movements));
      auto& row = json.add_row()
                      .field("workload", to_string(wl))
                      .field("protocol", label(proto));
      result_fields(row, r);
    }
  }
  return 0;
}
