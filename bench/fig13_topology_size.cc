// Fig. 13 — sensitivity to topology size.
//
// The overlay grows from 14 to 26 brokers while the path length between the
// movement endpoints (1<->12 and 2<->14) stays constant; the covered
// workload is used "to try to induce an exaggerated effect".
//
// Expected shape (paper): neither protocol's latency nor message load is
// drastically affected by topology size — the reconfiguration protocol only
// touches the source-target path, and the covering protocol is dominated by
// congestion on that same path.
#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

int main() {
  print_header("Fig. 13 — topology size",
               "Fig. 13(a) movement latency, Fig. 13(b) message load");

  BenchJson json = json_out("fig13_topology_size");
  // Topology size is the sweep axis: rows carry it.
  scenario_config_fields(
      json.config(),
      paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered))
      .field("workload", "covered");
  std::printf("%8s %9s | %12s %12s | %10s %11s\n", "brokers", "protocol",
              "lat mean(ms)", "lat max(ms)", "msgs/move", "movements");
  for (std::uint32_t n = 14; n <= 26; n += 2) {
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      ScenarioConfig cfg = paper_config(proto, WorkloadKind::Covered);
      cfg.overlay = Overlay::fig13_topology(n);
      cfg.move_pairs = {{1, 12}, {2, 14}};
      const RunResult r = run_scenario(
          cfg, "fig13:" + std::to_string(n) + ":" + label(proto));
      std::printf("%8u %9s | %12.1f %12.1f | %10.1f %11llu\n", n, label(proto),
                  r.latency_ms, r.latency_max_ms, r.msgs_per_movement,
                  static_cast<unsigned long long>(r.movements));
      auto& row =
          json.add_row().field("brokers", n).field("protocol", label(proto));
      result_fields(row, r);
    }
  }
  std::printf(
      "\nnote: the paper sweeps 12..26 brokers; the family here starts at 14\n"
      "because the fixed movement endpoints (brokers 13/14) must exist.\n");
  return 0;
}
