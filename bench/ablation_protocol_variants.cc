// Ablations on the design choices DESIGN.md calls out.
//
// (1) Covering optimization on/off for the traditional protocol — the
//     paper's "surprising observation" is that covering can *hurt* under
//     mobility; with covering off the traditional protocol floods every
//     (un)subscription but never pays quench/retract cascades.
// (2) Path-length sweep for the reconfiguration protocol on a chain —
//     its per-movement message count must be exactly 4 legs x path length,
//     demonstrating the hop-by-hop cost model of Sec. 4.4.
// (3) Processing-cost sensitivity — how the covering protocol's saturation
//     regime depends on the broker's (un)subscription processing cost, while
//     the reconfiguration protocol is insensitive.
#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

int main() {
  print_header("Ablations — protocol variants",
               "design-choice ablations (not a paper figure)");
  static BenchJson json = json_out("ablation_protocol_variants");
  // Sections vary topology and population per row; the config records the
  // shared paper-default schedule the variants start from.
  scenario_config_fields(
      json.config(),
      paper_config(MobilityProtocol::Traditional, WorkloadKind::Covered));

  // --- (1) covering on/off under the traditional protocol -------------------
  std::printf("[1] traditional protocol, covering optimization on/off "
              "(covered workload)\n");
  std::printf("%10s | %12s %12s | %10s %11s\n", "covering", "lat mean(ms)",
              "lat max(ms)", "msgs/move", "movements");
  for (bool covering : {true, false}) {
    ScenarioConfig cfg =
        paper_config(MobilityProtocol::Traditional, WorkloadKind::Covered);
    cfg.broker.subscription_covering = covering;
    cfg.broker.advertisement_covering = covering;
    const RunResult r = run_scenario(
        cfg, std::string("ablation:covering:") + (covering ? "on" : "off"));
    std::printf("%10s | %12.1f %12.1f | %10.1f %11llu\n",
                covering ? "on" : "off", r.latency_ms, r.latency_max_ms,
                r.msgs_per_movement,
                static_cast<unsigned long long>(r.movements));
    auto& row = json.add_row()
                    .field("section", "covering_toggle")
                    .field("covering", covering);
    result_fields(row, r);
  }

  // --- (2) reconfiguration cost is linear in path length --------------------
  std::printf("\n[2] reconfiguration protocol message cost vs path length "
              "(chain overlay, single mover)\n");
  std::printf("%6s %10s | %10s %12s\n", "hops", "brokers", "msgs/move",
              "lat mean(ms)");
  for (std::uint32_t n : {4u, 6u, 8u, 12u, 16u}) {
    ScenarioConfig cfg =
        paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered);
    cfg.overlay = Overlay::chain(n);
    cfg.move_pairs = {{1, n}};
    cfg.total_clients = 10;
    cfg.moving_clients = 1;
    cfg.publisher_brokers = {n / 2};
    const RunResult r =
        run_scenario(cfg, "ablation:chain:" + std::to_string(n));
    std::printf("%6u %10u | %10.1f %12.1f\n", n - 1, n, r.msgs_per_movement,
                r.latency_ms);
    auto& row = json.add_row()
                    .field("section", "path_length")
                    .field("brokers", n)
                    .field("hops", n - 1);
    result_fields(row, r);
  }
  std::printf("(expected: msgs/move = 4 legs x hops)\n");

  // --- (4 — printed after (3)) movement throughput vs offered rate ----------
  // The paper's third metric: "movement throughput measures the number of
  // movement transactions the system can process in a given time". Shrinking
  // the pause between moves raises the offered movement rate until the
  // protocol saturates.
  const auto throughput_section = [] {
    std::printf("\n[4] movement throughput vs pause between moves "
                "(covered workload, 400 clients)\n");
    std::printf("%10s %9s | %14s %12s\n", "pause(s)", "protocol",
                "moves/s (done)", "lat mean(ms)");
    for (double pause : {10.0, 5.0, 2.0, 1.0}) {
      for (auto proto : {MobilityProtocol::Reconfiguration,
                         MobilityProtocol::Traditional}) {
        ScenarioConfig cfg = paper_config(proto, WorkloadKind::Covered);
        cfg.pause_between_moves = pause;
        const double window = cfg.duration - cfg.warmup;
        const RunResult r = run_scenario(
            cfg, "ablation:throughput:" + std::to_string(pause) + ":" +
                     label(proto));
        std::printf("%10.1f %9s | %14.1f %12.1f\n", pause, label(proto),
                    static_cast<double>(r.movements) / window, r.latency_ms);
        auto& row = json.add_row()
                        .field("section", "throughput")
                        .field("pause_s", pause)
                        .field("protocol", label(proto))
                        .field("moves_per_s",
                               static_cast<double>(r.movements) / window);
        result_fields(row, r);
      }
    }
  };

  // --- (3) broker (un)subscription processing-cost sensitivity --------------
  std::printf("\n[3] sensitivity to (un)subscription processing cost "
              "(covered workload)\n");
  std::printf("%12s %9s | %12s %12s\n", "sub_proc(ms)", "protocol",
              "lat mean(ms)", "lat max(ms)");
  for (double scale : {0.5, 1.0, 2.0}) {
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      ScenarioConfig cfg = paper_config(proto, WorkloadKind::Covered);
      cfg.net.sub_proc *= scale;
      const RunResult r = run_scenario(
          cfg, "ablation:subproc:" + std::to_string(scale) + ":" +
                   label(proto));
      std::printf("%12.1f %9s | %12.1f %12.1f\n", cfg.net.sub_proc * 1e3,
                  label(proto), r.latency_ms, r.latency_max_ms);
      auto& row = json.add_row()
                      .field("section", "sub_proc")
                      .field("sub_proc_ms", cfg.net.sub_proc * 1e3)
                      .field("protocol", label(proto));
      result_fields(row, r);
    }
  }

  throughput_section();

  // --- (5) background pub/sub churn by stationary clients -------------------
  // The paper's conclusion: "background pub/sub activity, such as
  // unsubscriptions by non-mobile clients, hardly affect the performance of
  // the reconfiguration protocol, whereas the traditional mobility
  // protocol's performance varies greatly."
  std::printf("\n[5] background (un)subscription churn by stationary clients "
              "(covered workload, 100 of 400 clients moving)\n");
  std::printf("%10s %9s | %12s %12s\n", "churn", "protocol", "lat mean(ms)",
              "lat max(ms)");
  for (double churn : {0.0, 10.0, 5.0}) {
    char churn_label[16];
    if (churn == 0) {
      std::snprintf(churn_label, sizeof(churn_label), "off");
    } else {
      std::snprintf(churn_label, sizeof(churn_label), "every %.0fs", churn);
    }
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      ScenarioConfig cfg = paper_config(proto, WorkloadKind::Covered);
      cfg.moving_clients = 100;
      cfg.background_churn_interval = churn;
      const RunResult r = run_scenario(
          cfg,
          "ablation:churn:" + std::to_string(churn) + ":" + label(proto));
      std::printf("%10s %9s | %12.1f %12.1f\n", churn_label, label(proto),
                  r.latency_ms, r.latency_max_ms);
      auto& row = json.add_row()
                      .field("section", "churn")
                      .field("churn_interval_s", churn)
                      .field("protocol", label(proto));
      result_fields(row, r);
    }
  }
  return 0;
}
