// Extension: flaky edge-fleet soak for the session layer (src/session).
//
// A fleet of edge clients on the paper's 14-broker overlay churns through
// Zipf-distributed connect/disconnect cycles while a stationary publisher
// streams matching publications. Each dropped link either resumes at the
// home broker, resumes at a different broker (connectivity-triggered
// mobility: the session moves), or — for two scripted laggards — outlives
// the grace window, firing the registered last-will and leaving a tombstone
// for the sweeps to prune.
//
// Run A ("sessions") exercises the session layer; run B ("cold") replays
// the identical churn with no sessions: a vanished client's stub keeps
// routing into the void and every reappearance is a cold re-subscribe under
// a fresh identity. Gates, sessions run: zero duplicate deliveries; every
// matched publication for the regular fleet is either delivered or present
// in a drop ledger (delivered + dropped == expected, cross-checked against
// the tmps_session_dropped_total counters); both last-wills fire; after a
// quiet tail longer than twice the grace window no broker holds a tombstone
// and the live-session census equals the fleet. Negative control, cold run:
// unattributed losses and abandoned stubs must remain — and the sessions
// run must beat it on delivery locality (fraction of matched publications
// that reach the client at its current attachment).
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"
#include "pubsub/workload.h"
#include "session/session_manager.h"
#include "sim/network.h"

using namespace tmps;
using namespace tmps::bench;
using session::SessionManager;
using session::SessionState;
using session::SessionToken;

namespace {

constexpr ClientId kPublisher = 9000;
constexpr BrokerId kPubBroker = 14;
constexpr int kRegular = 20;
constexpr int kLapsing = 2;  // scripted grace-window laggards with wills
constexpr double kGrace = 6.0;
constexpr double kTail = 20.0;  // quiet tail, > 2 * kGrace

ClientId regular_id(int k) { return 100 + k; }      // k in [0, kRegular)
ClientId lapsing_id(int k) { return 500 + k; }      // k in [0, kLapsing)

struct ChurnEvent {
  double at = 0;
  ClientId client = kNoClient;
  bool disconnect = false;  // else reattach
  BrokerId to = kNoBroker;  // reattach destination
};

/// Deterministic LCG so both runs replay the identical churn tape.
struct Lcg {
  std::uint64_t x;
  explicit Lcg(std::uint64_t seed) : x(seed) {}
  std::uint64_t next() {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    return x >> 17;
  }
  double unit() { return static_cast<double>(next() % 100000) / 100000.0; }
};

/// Zipf-weighted pick over ranks 0..n-1 (weight 1/(rank+1)): a few clients
/// flap constantly, the long tail barely at all.
int zipf_pick(Lcg& rng, int n) {
  double total = 0;
  for (int r = 0; r < n; ++r) total += 1.0 / (r + 1);
  double target = rng.unit() * total;
  for (int r = 0; r < n; ++r) {
    target -= 1.0 / (r + 1);
    if (target <= 0) return r;
  }
  return n - 1;
}

/// Paired disconnect/reattach tape for the regular fleet: every detachment
/// reattaches within the grace window, at a Zipf-chosen broker (biased walk
/// toward the publisher's side of the overlay for half the moves).
std::vector<ChurnEvent> build_tape(double churn_until, std::uint64_t seed) {
  Lcg rng(seed);
  std::vector<ChurnEvent> tape;
  std::vector<double> busy_until(kRegular, 0.0);
  for (double t = 12.0; t < churn_until; t += 1.5) {
    const int k = zipf_pick(rng, kRegular);
    if (busy_until[k] > t) continue;
    const double back = t + 1.0 + rng.unit() * (kGrace - 2.5);
    BrokerId dest;
    if (rng.unit() < 0.5) {
      // Move toward the publisher's cluster (brokers 12..13 side).
      dest = static_cast<BrokerId>(9 + rng.next() % 5);  // 9..13
    } else {
      dest = static_cast<BrokerId>(1 + rng.next() % 13);  // anywhere but 14
    }
    tape.push_back({t, regular_id(k), true, kNoBroker});
    tape.push_back({back, regular_id(k), false, dest});
    // Cooldown: let movement adoption settle before this client flaps again.
    busy_until[k] = back + 8.0;
  }
  return tape;
}

struct FleetResult {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;    // unique matched pubs at the attachment
  std::uint64_t duplicates = 0;
  std::uint64_t dropped_ledger = 0;  // regular-fleet drop-log entries (A)
  std::uint64_t dropped_ledger_total = 0;  // drop-log entries, every client
  std::uint64_t dropped_counters = 0;      // tmps_session_dropped_total sum
  std::uint64_t unattributed = 0;       // losses with no ledger entry
  std::uint64_t moves = 0;              // resume-became-movement count
  std::uint64_t adoptions = 0;
  std::uint64_t expired = 0;
  std::uint64_t wills_fired = 0;
  std::uint64_t will_deliveries = 0;
  std::uint64_t disconnects = 0;
  std::size_t residual_tombstones = 0;
  std::size_t residual_stale_stubs = 0;
  std::size_t live_sessions = 0;
  double locality = 0;       // delivered / expected over the regular fleet
  double mean_distance = 0;  // publisher->delivery broker overlay hops
  bool fleet_all_active = false;
};

/// One soak over the shared churn tape. `with_sessions` selects run A
/// (session layer drives disconnected operation and mobility) or run B
/// (cold re-subscribe under a fresh identity on every reappearance).
FleetResult run_one(bool with_sessions, double duration,
                    const std::vector<ChurnEvent>& tape) {
  Overlay overlay = Overlay::paper_default();
  // Covering quenching is unsound when subscriptions move (a quenched
  // subscription loses its path when its coverer departs) — mobility
  // deployments run with it off, as do the Scenario-based soaks.
  BrokerConfig bc;
  bc.subscription_covering = false;
  bc.advertisement_covering = false;
  SimNetwork net(overlay, bc);

  SessionConfig sc;
  sc.enabled = true;
  sc.heartbeat_interval = 0;  // the tape, not beacons, drives liveness
  sc.grace = kGrace;
  sc.buffer_max_count = 5;  // small enough that hot flappers overflow
  sc.tick_interval = 0.5;

  std::vector<std::unique_ptr<MobilityEngine>> engines;
  std::vector<std::unique_ptr<SessionManager>> managers;

  struct Delivery {
    BrokerId broker;
    ClientId client;
    PublicationId pub;
    double at;
  };
  std::vector<Delivery> deliveries;
  // Cold run: the sim-time window each alias identity was the client's live
  // ear. A delivery only counts if it landed inside its alias's window.
  std::map<ClientId, std::pair<double, double>> alias_window;

  // Bench-side fleet ledger. In run B `alias` is the cold identity a
  // logical client currently subscribes under; in run A it equals the id.
  struct Edge {
    BrokerId at = kNoBroker;
    bool online = true;
    SessionToken token = session::kNoToken;
    ClientId alias = kNoClient;
    int generation = 0;
  };
  std::map<ClientId, Edge> fleet;

  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    engines.push_back(std::make_unique<MobilityEngine>(net.broker(b), net));
    MobilityEngine* eng = engines.back().get();
    eng->set_transmit(
        [&net, b](Broker::Outputs out) { net.transmit(b, std::move(out)); });
    eng->set_delivery_sink(
        [&deliveries, b](ClientId c, const Publication& p, SimTime t) {
          deliveries.push_back({b, c, p.id(), t});
        });
    if (with_sessions) {
      managers.push_back(std::make_unique<SessionManager>(*eng, net, sc));
      SessionManager* mgr = managers.back().get();
      eng->set_session_handler(mgr);
      // Acks reach the bench the way they reach a real edge device: tokens
      // re-mint on movement adoption, so the tape always resumes with the
      // latest one.
      mgr->set_client_channel([&fleet](ClientId c, const Message& m) {
        if (const auto* a = std::get_if<SessionAckMsg>(&m.payload)) {
          auto it = fleet.find(c);
          if (it != fleet.end() && a->token != session::kNoToken) {
            it->second.token = a->token;
          }
        }
        return true;
      });
    }
  }
  auto eng = [&](BrokerId b) -> MobilityEngine& { return *engines[b - 1]; };
  auto mgr = [&](BrokerId b) -> SessionManager& { return *managers[b - 1]; };
  auto op = [&](BrokerId b,
                const std::function<void(MobilityEngine&, Broker::Outputs&)>&
                    fn) {
    Broker::Outputs out;
    fn(eng(b), out);
    net.transmit(b, std::move(out));
  };

  // --- initial placement ---------------------------------------------------
  op(kPubBroker, [](MobilityEngine& e, Broker::Outputs& out) {
    e.connect_client(kPublisher);
    e.advertise(kPublisher, full_space_advertisement(), out);
  });
  const Filter sub_filter = workload_filter(WorkloadKind::Covered, 1);
  auto place = [&](ClientId c, BrokerId b) {
    fleet[c] = {b, true, session::kNoToken, c, 0};
    alias_window[c] = {0.0, 1e18};
    op(b, [&](MobilityEngine& e, Broker::Outputs& out) {
      e.connect_client(c);
      e.subscribe(c, sub_filter, out);
    });
    if (with_sessions) {
      std::optional<Publication> will;
      if (c >= lapsing_id(0)) {
        // The laggards advertise so their last-will publications can route.
        op(b, [&](MobilityEngine& e, Broker::Outputs& out) {
          e.advertise(c, full_space_advertisement(), out);
        });
        will = make_publication({0, 0}, 100, 0);
      }
      fleet[c].token = mgr(b).open(c, will);
    }
  };
  for (int k = 0; k < kRegular; ++k) {
    place(regular_id(k), static_cast<BrokerId>(1 + k % 13));
  }
  place(lapsing_id(0), 1);
  place(lapsing_id(1), 2);

  if (with_sessions) {
    for (auto& m : managers) m->start(duration);
  }

  // --- publication stream --------------------------------------------------
  std::uint64_t published = 0;
  for (double t = 5.0; t < duration - 2.0; t += 0.5) {
    const std::uint32_t seq = ++published;
    net.events().schedule_at(t, [&net, &op, seq] {
      op(kPubBroker, [seq](MobilityEngine& e, Broker::Outputs& out) {
        e.publish(kPublisher, make_publication({kPublisher, seq}, 100, 0),
                  out);
      });
    });
  }

  // --- the churn tape ------------------------------------------------------
  std::uint64_t disconnects = 0;
  auto do_disconnect = [&](ClientId c, double now) {
    Edge& e = fleet[c];
    if (!e.online) return;
    e.online = false;
    ++disconnects;
    if (with_sessions) {
      mgr(e.at).disconnect(c);
    } else {
      // Cold run: the broker never learns; the stub keeps routing into the
      // void until the client re-subscribes as somebody else.
      alias_window[e.alias].second = now;
    }
  };
  auto cold_alias = [&](ClientId c, BrokerId to, double now) {
    Edge& e = fleet[c];
    e.at = to;
    e.generation++;
    e.alias = c + static_cast<ClientId>(100000) * e.generation;
    alias_window[e.alias] = {now, 1e18};
    op(to, [&](MobilityEngine& eng2, Broker::Outputs& out) {
      eng2.connect_client(e.alias);
      eng2.subscribe(e.alias, sub_filter, out);
    });
  };
  auto do_reattach = [&](ClientId c, BrokerId to, double now) {
    Edge& e = fleet[c];
    if (e.online) return;
    e.online = true;
    if (with_sessions) {
      e.at = to;
      op(to, [&](MobilityEngine&, Broker::Outputs& out) {
        mgr(to).reattach(c, e.token, out);
      });
    } else {
      cold_alias(c, to, now);
    }
  };
  for (const ChurnEvent& ev : tape) {
    net.events().schedule_at(ev.at, [&, ev] {
      if (ev.disconnect) {
        do_disconnect(ev.client, ev.at);
      } else {
        do_reattach(ev.client, ev.to, ev.at);
      }
    });
  }
  // The scripted laggards: vanish, outlive the grace window (their sessions
  // expire and the wills fire), then come back cold and re-open.
  for (int k = 0; k < kLapsing; ++k) {
    const ClientId c = lapsing_id(k);
    const double gone = 30.0 + 25.0 * k;
    const double back = gone + kGrace + 6.0;
    net.events().schedule_at(gone, [&, c, gone] { do_disconnect(c, gone); });
    net.events().schedule_at(back, [&, c, k, back] {
      Edge& e = fleet[c];
      e.online = true;
      const BrokerId to = static_cast<BrokerId>(5 + k);
      if (with_sessions) {
        e.at = to;
        op(to, [&](MobilityEngine& eng2, Broker::Outputs& out) {
          eng2.connect_client(c);
          e.token = mgr(to).open(c);
          (void)out;
        });
        op(to, [&](MobilityEngine& eng2, Broker::Outputs& out) {
          eng2.subscribe(c, sub_filter, out);
        });
      } else {
        cold_alias(c, to, back);
      }
    });
  }

  net.events().schedule_at(duration, [] {});
  net.run();

  // --- accounting ----------------------------------------------------------
  FleetResult r;
  r.published = published;
  r.disconnects = disconnects;

  // Unique matched deliveries per logical regular client, plus duplicates.
  std::map<ClientId, std::set<std::uint32_t>> got;     // publisher pubs
  std::map<ClientId, ClientId> alias_to_logical;
  for (int k = 0; k < kRegular; ++k) {
    const ClientId c = regular_id(k);
    for (int g = 0; g <= fleet[c].generation; ++g) {
      alias_to_logical[c + static_cast<ClientId>(100000) * g] = c;
    }
  }
  double distance_sum = 0;
  std::uint64_t distance_n = 0;
  std::set<std::pair<ClientId, std::uint64_t>> seen;
  for (const auto& d : deliveries) {
    const auto logical = alias_to_logical.find(d.client);
    if (d.pub.client == kPublisher) {
      const std::uint64_t key = d.pub.seq;
      if (logical != alias_to_logical.end()) {
        // Cold aliases only count while they are the client's live identity.
        if (!with_sessions) {
          const auto w = alias_window.find(d.client);
          if (w == alias_window.end() || d.at < w->second.first ||
              d.at >= w->second.second) {
            continue;
          }
        }
        if (!seen.insert({logical->second, key}).second) {
          ++r.duplicates;
          continue;
        }
        got[logical->second].insert(d.pub.seq);
        distance_sum += overlay.distance(kPubBroker, d.broker);
        ++distance_n;
      }
    } else if (d.pub.client >= lapsing_id(0) &&
               d.pub.client < lapsing_id(kLapsing)) {
      ++r.will_deliveries;
    }
  }
  r.mean_distance = distance_n ? distance_sum / distance_n : 0;

  std::uint64_t expected = 0;
  for (int k = 0; k < kRegular; ++k) {
    expected += published;
    r.delivered += got[regular_id(k)].size();
  }

  std::set<std::pair<ClientId, std::uint64_t>> ledgered;
  if (with_sessions) {
    for (const auto& m : managers) {
      for (const auto& d : m->drop_log()) {
        ++r.dropped_ledger_total;
        if (d.client >= regular_id(0) && d.client < regular_id(kRegular)) {
          ++r.dropped_ledger;
          if (d.pub.client == kPublisher) {
            ledgered.insert({d.client, d.pub.seq});
          }
        }
      }
      const std::string b = std::to_string(m->broker_id());
      for (const char* reason : {"overflow", "expiry"}) {
        r.dropped_counters += net.metrics()
                                  ->counter("tmps_session_dropped_total",
                                            {{"broker", b}, {"reason", reason}})
                                  .value();
      }
      r.moves += m->stats().resumed_move;
      r.adoptions += m->stats().adopted;
      r.expired += m->stats().expired;
      r.wills_fired += m->stats().wills_fired;
      r.residual_tombstones += m->expired_sessions();
      r.live_sessions += m->live_sessions();
    }
    // Exact loss attribution, per publication: a matched publication the
    // client never received must sit in some broker's drop ledger. (A
    // ledger entry for a pub that also arrived is fine — the stale buffered
    // copy of a delivery the movement machinery completed was discarded.)
    for (int k = 0; k < kRegular; ++k) {
      const ClientId c = regular_id(k);
      for (std::uint64_t seq = 1; seq <= published; ++seq) {
        if (!got[c].count(static_cast<std::uint32_t>(seq)) &&
            !ledgered.count({c, seq})) {
          ++r.unattributed;
        }
      }
    }
    r.fleet_all_active = true;
    for (const auto& [c, e] : fleet) {
      if (mgr(e.at).state_of(c) != SessionState::Active) {
        r.fleet_all_active = false;
      }
    }
  } else {
    r.unattributed = expected - r.delivered;
    for (const auto& [c, e] : fleet) r.residual_stale_stubs += e.generation;
  }
  r.locality = expected ? static_cast<double>(r.delivered) / expected : 0;
  return r;
}

}  // namespace

int main() {
  print_header("Extension — flaky edge-fleet session soak",
               "Zipf connect/disconnect churn vs. the src/session layer");

  const double duration = full_run() ? 600.0 : 140.0;
  const std::vector<ChurnEvent> tape = build_tape(duration - kTail, 42);

  BenchJson json = json_out("ext_flaky_fleet");
  json.config()
      .field("brokers", 14)
      .field("fleet", kRegular + kLapsing)
      .field("grace_s", kGrace)
      .field("tail_s", kTail)
      .field("churn_events", tape.size())
      .field("duration_s", duration);

  std::printf("%10s | %6s %7s %6s | %5s %6s %7s | %6s %6s | %8s %6s\n",
              "run", "pubs", "dlv", "drop", "dups", "unattr", "moves",
              "wills", "resid", "locality", "dist");

  std::map<bool, FleetResult> results;
  for (const bool sessions : {true, false}) {
    const FleetResult r = run_one(sessions, duration, tape);
    results[sessions] = r;
    const char* label = sessions ? "sessions" : "cold";
    std::printf(
        "%10s | %6llu %7llu %6llu | %5llu %6llu %7llu | %6llu %6zu | %8.4f "
        "%6.2f\n",
        label, static_cast<unsigned long long>(r.published),
        static_cast<unsigned long long>(r.delivered),
        static_cast<unsigned long long>(r.dropped_ledger),
        static_cast<unsigned long long>(r.duplicates),
        static_cast<unsigned long long>(r.unattributed),
        static_cast<unsigned long long>(r.moves),
        static_cast<unsigned long long>(r.wills_fired),
        r.residual_tombstones + r.residual_stale_stubs, r.locality,
        r.mean_distance);
    json.add_row()
        .field("run", label)
        .field("published", r.published)
        .field("delivered", r.delivered)
        .field("duplicates", r.duplicates)
        .field("dropped_ledger", r.dropped_ledger)
        .field("dropped_ledger_total", r.dropped_ledger_total)
        .field("dropped_counters", r.dropped_counters)
        .field("unattributed", r.unattributed)
        .field("disconnects", r.disconnects)
        .field("moves", r.moves)
        .field("adoptions", r.adoptions)
        .field("expired", r.expired)
        .field("wills_fired", r.wills_fired)
        .field("will_deliveries", r.will_deliveries)
        .field("residual_tombstones", r.residual_tombstones)
        .field("residual_stale_stubs", r.residual_stale_stubs)
        .field("live_sessions", r.live_sessions)
        .field("locality", r.locality)
        .field("mean_distance_hops", r.mean_distance);
  }

  const FleetResult& a = results.at(true);
  const FleetResult& b = results.at(false);
  bool ok = true;

  if (a.moves == 0 || a.adoptions == 0) {
    std::fprintf(stderr,
                 "GATE FAILED: churn produced no connectivity-triggered "
                 "movements (moves=%llu adoptions=%llu)\n",
                 static_cast<unsigned long long>(a.moves),
                 static_cast<unsigned long long>(a.adoptions));
    ok = false;
  }
  if (a.duplicates != 0) {
    std::fprintf(stderr, "GATE FAILED: %llu duplicate deliveries\n",
                 static_cast<unsigned long long>(a.duplicates));
    ok = false;
  }
  if (a.unattributed != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: %llu losses with no drop-ledger entry "
                 "(delivered %llu + dropped %llu != expected)\n",
                 static_cast<unsigned long long>(a.unattributed),
                 static_cast<unsigned long long>(a.delivered),
                 static_cast<unsigned long long>(a.dropped_ledger));
    ok = false;
  }
  if (a.dropped_counters != a.dropped_ledger_total) {
    std::fprintf(stderr,
                 "GATE FAILED: drop ledger (%llu) and "
                 "tmps_session_dropped_total (%llu) disagree\n",
                 static_cast<unsigned long long>(a.dropped_ledger_total),
                 static_cast<unsigned long long>(a.dropped_counters));
    ok = false;
  }
  if (a.wills_fired != kLapsing) {
    std::fprintf(stderr,
                 "GATE FAILED: %llu wills fired, expected %d laggard "
                 "expiries\n",
                 static_cast<unsigned long long>(a.wills_fired), kLapsing);
    ok = false;
  }
  if (a.will_deliveries == 0) {
    std::fprintf(stderr, "GATE FAILED: no last-will reached the fleet\n");
    ok = false;
  }
  if (a.residual_tombstones != 0 || !a.fleet_all_active ||
      a.live_sessions != kRegular + kLapsing) {
    std::fprintf(stderr,
                 "GATE FAILED: residual state after the quiet tail "
                 "(tombstones=%zu live=%zu all_active=%d)\n",
                 a.residual_tombstones, a.live_sessions,
                 a.fleet_all_active ? 1 : 0);
    ok = false;
  }
  if (a.locality <= b.locality) {
    std::fprintf(stderr,
                 "GATE FAILED: session resume (%.4f) does not beat cold "
                 "re-subscribe (%.4f) on delivery locality\n",
                 a.locality, b.locality);
    ok = false;
  }
  // Negative control: without sessions the same tape must visibly leak.
  if (b.unattributed == 0 || b.residual_stale_stubs == 0) {
    std::fprintf(stderr,
                 "GATE FAILED: cold run shows no damage — the churn tape is "
                 "too weak to validate the session layer\n");
    ok = false;
  }

  std::printf("\n%s: %llu disconnects, %llu session moves; sessions "
              "delivered %.2f%% vs cold %.2f%%; cold leaked %llu losses and "
              "%zu stale stubs\n",
              ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(a.disconnects),
              static_cast<unsigned long long>(a.moves), 100.0 * a.locality,
              100.0 * b.locality,
              static_cast<unsigned long long>(b.unattributed),
              b.residual_stale_stubs);
  return ok ? 0 : 1;
}
