// Observability-overhead gate: the data-plane cost of publication
// provenance *sampling* and of the stage profiler must be negligible.
//
// ONE broker processes the same publish workload under four observability
// phases, reconfigured at runtime between passes:
//
//   base      provenance stamped, nothing sampled, no profiler
//   prov64    provenance sampled at 1/64 (recommended production rate)
//   prof_off  stage profiler constructed but disabled (runtime toggle off)
//   prof_on   stage profiler at the default 1-in-16 root sampling rate
//
// A single instance matters: separate per-phase brokers were observed to
// differ by ±10% from heap/cache layout luck alone, drowning the effects
// being gated. Repetitions are also *interleaved* — every rep times each
// phase once before the next rep starts — so the min-of-k for every phase
// is drawn from the same quiet periods of the machine.
//
// Gates (relative to base, each with a small absolute ns floor so sub-ns
// jitter on fast machines cannot trip a percentage threshold):
//
//   prov64   <= 2% slower   (TMPS_GATE_PCT overrides)
//   prof_off <= 1% slower   (TMPS_GATE_PROF_OFF_PCT overrides)
//   prof_on  <= 3% slower   (TMPS_GATE_PROF_PCT overrides)
//
// A final profiled pass also reports publish-path attribution (the
// residual "other" share) into the bench JSON, advisory here — the hard
// <5% bound is asserted by profiler_test's end-to-end case.
//
// Writes BENCH_obs_overhead_gate.json with all timings and deltas.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "broker/broker.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "pubsub/workload.h"
#include "routing/overlay.h"

namespace tmps {
namespace {

constexpr int kSubscribers = 200;
constexpr int kPublishes = 20000;
constexpr int kReps = 7;
constexpr std::uint32_t kProfileRate = 16;

/// A broker hosting `kSubscribers` local subscriptions spread over the
/// covered workload's families, with a neighbour advertising upstream —
/// every publish runs a realistic matching pass plus local deliveries.
struct Fixture {
  Overlay overlay = Overlay::chain(2);
  obs::MetricsRegistry metrics;
  Broker broker;

  Fixture()
      : broker(1, &overlay, [] {
          BrokerConfig cfg;
          cfg.obs.pub_provenance = true;
          cfg.obs.pub_trace_rate = 0;
          return cfg;
        }()) {
    broker.set_observability(nullptr, &metrics);
    broker.set_clock([] { return 0.25; });
    Broker::Outputs out;
    for (int g = 0; g < kSubscribers / 10; ++g) {
      for (int i = 1; i <= 10; ++i) {
        const ClientId c = 1000 + g * 10 + i;
        const Subscription s{
            {c, 1}, workload_filter_at(WorkloadKind::Covered, i, g, 7)};
        broker.inject_subscribe(Hop::of_client(c), s, kNoTxn, out);
      }
    }
    broker.inject_advertise(Hop::of_broker(2), {{1, 1},
                                                full_space_advertisement()},
                            kNoTxn, out);
  }
};

/// Mean ns per publish over one pass of kPublishes.
double one_pass_ns(Fixture& f) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (int i = 0; i < kPublishes; ++i) {
    const Publication pub = make_publication(
        {static_cast<ClientId>(1), static_cast<std::uint32_t>(i + 1)},
        kSpaceLo + (i * 7919) % (kSpaceHi - kSpaceLo), i % 20);
    Broker::Outputs out = f.broker.client_publish(1, pub);
  }
  return std::chrono::duration<double, std::nano>(clock::now() - t0).count() /
         kPublishes;
}

enum Phase { kBase = 0, kProv64, kProfOff, kProfOn, kPhaseCount };

void configure_phase(Fixture& f, int phase) {
  switch (phase) {
    case kBase:
      f.broker.disable_profiling();
      f.broker.set_provenance_rate(0);
      break;
    case kProv64:
      f.broker.disable_profiling();
      f.broker.set_provenance_rate(64);
      break;
    case kProfOff:
      f.broker.enable_profiling(kProfileRate);
      f.broker.profiler()->set_enabled(false);
      f.broker.set_provenance_rate(0);
      break;
    case kProfOn:
      f.broker.enable_profiling(kProfileRate);
      f.broker.set_provenance_rate(0);
      break;
  }
}

double env_pct(const char* name, double dflt) {
  if (const char* t = std::getenv(name)) return std::atof(t);
  return dflt;
}

}  // namespace
}  // namespace tmps

int main() {
  using namespace tmps;
  const double prov_pct = env_pct("TMPS_GATE_PCT", 2.0);
  const double prof_off_pct = env_pct("TMPS_GATE_PROF_OFF_PCT", 1.0);
  const double prof_on_pct = env_pct("TMPS_GATE_PROF_PCT", 3.0);

  Fixture f;

  // Warm-up pass per phase (page-in, branch predictors), then interleaved
  // min-of-k: rep r times every phase before rep r+1 starts.
  for (int p = 0; p < kPhaseCount; ++p) {
    configure_phase(f, p);
    one_pass_ns(f);
  }
  double best[kPhaseCount];
  std::fill(best, best + kPhaseCount, 1e300);
  for (int rep = 0; rep < kReps; ++rep) {
    for (int p = 0; p < kPhaseCount; ++p) {
      configure_phase(f, p);
      best[p] = std::min(best[p], one_pass_ns(f));
    }
  }
  const double ns_base = best[kBase], ns_prov = best[kProv64];
  const double ns_prof_off = best[kProfOff], ns_prof_on = best[kProfOn];

  struct Gate {
    const char* name;
    double ns;
    double threshold_pct;
  };
  const Gate gates[] = {
      {"provenance 1/64", ns_prov, prov_pct},
      {"profiler disabled", ns_prof_off, prof_off_pct},
      {"profiler 1/16", ns_prof_on, prof_on_pct},
  };

  std::printf("observability overhead gate (interleaved min-of-%d)\n", kReps);
  std::printf("  base              : %8.1f ns/publish\n", ns_base);
  bool failed = false;
  for (const Gate& g : gates) {
    const double delta_ns = g.ns - ns_base;
    const double delta_pct = delta_ns / ns_base * 100.0;
    std::printf(
        "  %-18s: %8.1f ns/publish  %+7.1f ns (%+.2f%%), limit %.1f%%\n",
        g.name, g.ns, delta_ns, delta_pct, g.threshold_pct);
    if (delta_pct > g.threshold_pct && delta_ns > 10.0) {
      std::fprintf(stderr, "GATE FAILED: %s costs %+.2f%% (> %.1f%%)\n",
                   g.name, delta_pct, g.threshold_pct);
      failed = true;
    }
  }

  // Attribution report from a final profiled pass (advisory; the hard
  // bound lives in profiler_test's end-to-end case).
  configure_phase(f, kProfOn);
  one_pass_ns(f);
  obs::StageProfiler* prof = f.broker.profiler();
  prof->flush(&f.metrics);
  const double residual = prof->residual_share(obs::Stage::kPublish);
  const auto sampled = prof->calls(obs::Stage::kPublish);
  std::printf(
      "  attribution       : %.1f%% of publish path named "
      "(%llu sampled walks, residual %.2f%%)\n",
      (1.0 - residual) * 100.0, static_cast<unsigned long long>(sampled),
      residual * 100.0);

  bench::BenchJson json("obs_overhead_gate");
  json.config()
      .field("subscribers", kSubscribers)
      .field("publishes", kPublishes)
      .field("reps", kReps)
      .field("profile_rate", static_cast<double>(kProfileRate))
      .field("threshold_pct", prov_pct)
      .field("prof_off_threshold_pct", prof_off_pct)
      .field("prof_on_threshold_pct", prof_on_pct);
  json.add_row()
      .field("ns_per_publish_rate0", ns_base)
      .field("ns_per_publish_rate64", ns_prov)
      .field("ns_per_publish_prof_off", ns_prof_off)
      .field("ns_per_publish_prof_on", ns_prof_on)
      .field("delta_ns", ns_prov - ns_base)
      .field("delta_pct", (ns_prov - ns_base) / ns_base * 100.0)
      .field("prof_off_delta_pct", (ns_prof_off - ns_base) / ns_base * 100.0)
      .field("prof_on_delta_pct", (ns_prof_on - ns_base) / ns_base * 100.0)
      .field("publish_residual_share", residual)
      .field("profiled_walks", static_cast<double>(sampled));

  if (failed) return 1;
  std::printf("gate passed\n");
  return 0;
}
