// Provenance-overhead gate: the data-plane cost of publication provenance
// *sampling* must be negligible.
//
// Two identically configured brokers process the same publish workload —
// one with the trace-sampling rate at 0 (tags stamped, nothing sampled),
// one at 1/64 (the recommended production rate) — with tracing disabled, as
// in production. Both runs stamp tags, update the latency histograms and
// record flight events; the only difference is the sampling decision and
// the (tracer-off, short-circuited) event emission on sampled publications.
// The gate fails (exit 1) when the sampled run is more than 2% slower,
// using min-of-k timing to shave scheduler noise.
//
// Writes BENCH_obs_overhead_gate.json with both timings and the delta.
// TMPS_GATE_PCT overrides the threshold (CI debugging).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "broker/broker.h"
#include "obs/metrics.h"
#include "pubsub/workload.h"
#include "routing/overlay.h"

namespace tmps {
namespace {

constexpr int kSubscribers = 200;
constexpr int kPublishes = 20000;
constexpr int kReps = 7;

/// A broker hosting `kSubscribers` local subscriptions spread over the
/// covered workload's families, with a neighbour advertising upstream —
/// every publish runs a realistic matching pass plus local deliveries.
struct Fixture {
  Overlay overlay = Overlay::chain(2);
  obs::MetricsRegistry metrics;
  Broker broker;

  explicit Fixture(std::uint32_t trace_rate)
      : broker(1, &overlay, [trace_rate] {
          BrokerConfig cfg;
          cfg.obs.pub_provenance = true;
          cfg.obs.pub_trace_rate = trace_rate;
          return cfg;
        }()) {
    broker.set_observability(nullptr, &metrics);
    broker.set_clock([] { return 0.25; });
    Broker::Outputs out;
    for (int g = 0; g < kSubscribers / 10; ++g) {
      for (int i = 1; i <= 10; ++i) {
        const ClientId c = 1000 + g * 10 + i;
        const Subscription s{
            {c, 1}, workload_filter_at(WorkloadKind::Covered, i, g, 7)};
        broker.inject_subscribe(Hop::of_client(c), s, kNoTxn, out);
      }
    }
    broker.inject_advertise(Hop::of_broker(2), {{1, 1},
                                                full_space_advertisement()},
                            kNoTxn, out);
  }
};

/// Mean ns per publish over kPublishes, minimum of kReps repetitions.
double min_ns_per_publish(Fixture& f) {
  using clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = clock::now();
    for (int i = 0; i < kPublishes; ++i) {
      const Publication pub = make_publication(
          {static_cast<ClientId>(1), static_cast<std::uint32_t>(i + 1)},
          kSpaceLo + (i * 7919) % (kSpaceHi - kSpaceLo), i % 20);
      Broker::Outputs out = f.broker.client_publish(1, pub);
    }
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count() /
        kPublishes;
    best = std::min(best, ns);
  }
  return best;
}

}  // namespace
}  // namespace tmps

int main() {
  using namespace tmps;
  double threshold_pct = 2.0;
  if (const char* t = std::getenv("TMPS_GATE_PCT")) {
    threshold_pct = std::atof(t);
  }

  Fixture off(0);    // provenance on, sampling off
  Fixture on(64);    // provenance on, 1/64 sampling
  min_ns_per_publish(off);  // warm-up pass (page-in, branch predictors)
  min_ns_per_publish(on);
  const double ns_off = min_ns_per_publish(off);
  const double ns_on = min_ns_per_publish(on);
  const double delta_ns = ns_on - ns_off;
  const double delta_pct = delta_ns / ns_off * 100.0;

  std::printf("provenance sampling overhead gate\n");
  std::printf("  rate 0    : %8.1f ns/publish\n", ns_off);
  std::printf("  rate 1/64 : %8.1f ns/publish\n", ns_on);
  std::printf("  delta     : %+8.1f ns (%+.2f%%), threshold %.1f%%\n",
              delta_ns, delta_pct, threshold_pct);

  bench::BenchJson json("obs_overhead_gate");
  json.config()
      .field("subscribers", kSubscribers)
      .field("publishes", kPublishes)
      .field("reps", kReps)
      .field("threshold_pct", threshold_pct);
  json.add_row()
      .field("ns_per_publish_rate0", ns_off)
      .field("ns_per_publish_rate64", ns_on)
      .field("delta_ns", delta_ns)
      .field("delta_pct", delta_pct);

  // Gate on the relative delta, with a small absolute floor so sub-ns jitter
  // on very fast machines cannot trip a 2% threshold spuriously.
  if (delta_pct > threshold_pct && delta_ns > 10.0) {
    std::fprintf(stderr,
                 "GATE FAILED: 1/64 provenance sampling costs %+.2f%% "
                 "(> %.1f%%)\n",
                 delta_pct, threshold_pct);
    return 1;
  }
  std::printf("gate passed\n");
  return 0;
}
