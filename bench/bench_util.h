// Shared helpers for the figure-reproduction benchmarks.
//
// Every binary regenerates one table/figure of the paper's evaluation
// (Sec. 5) and prints the series the paper plots. Default runs use a
// shortened steady-state window so the full suite finishes in minutes; set
// TMPS_FULL=1 to run the paper's 1000-second experiments.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_json.h"
#include "core/scenario.h"

namespace tmps::bench {

inline bool full_run() {
  const char* v = std::getenv("TMPS_FULL");
  return v && *v && std::string(v) != "0";
}

/// TMPS_AUDIT=1 runs the embedded movement-invariant auditor over every
/// scenario; any violation prints the report and aborts the bench with a
/// nonzero exit, so a CI leg can fail on the first broken invariant.
/// (Env parsing lives in BrokerConfig::from_env; this is the bench-side
/// convenience view.)
inline bool audit_run() { return BrokerConfig::from_env().obs.audit; }

inline BenchJson json_out(std::string name) {
  return BenchJson(std::move(name), full_run() ? "full" : "quick");
}

/// The paper's default experiment setup (Sec. 5): 14-broker overlay of
/// Fig. 6, 400 clients moving between brokers 1<->13 and 2<->14 with a 10 s
/// pause, publishers at the leaf-corner brokers.
inline ScenarioConfig paper_config(MobilityProtocol proto, WorkloadKind wl) {
  ScenarioConfig cfg;
  cfg.mobility.protocol = proto;
  // Covering is the traditional protocol's optimization (and its measured
  // liability). Under reconfiguration mobility quenching is unsound — a
  // quenched subscription loses its delivery path when its coverer moves —
  // so reconfiguration deployments run with covering disabled.
  cfg.broker.subscription_covering = proto == MobilityProtocol::Traditional;
  cfg.broker.advertisement_covering = proto == MobilityProtocol::Traditional;
  cfg.workload = wl;
  cfg.total_clients = 400;
  cfg.pause_between_moves = 10.0;
  cfg.publish_interval = 1.0;
  cfg.duration = full_run() ? 1000.0 : 150.0;
  cfg.warmup = full_run() ? 100.0 : 40.0;
  cfg.seed = 7;
  return cfg;
}

inline const char* label(MobilityProtocol p) {
  return p == MobilityProtocol::Reconfiguration ? "reconfig" : "covering";
}

struct RunResult {
  double latency_ms = 0;
  double latency_max_ms = 0;
  double latency_stddev_ms = 0;
  double latency_p50_ms = 0;
  double latency_p95_ms = 0;
  double latency_p99_ms = 0;
  double msgs_per_movement = 0;
  std::uint64_t movements = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t mover_losses = 0;
  std::uint64_t mover_expected = 0;
  /// Provenance-derived end-to-end delivery latency (publish at the origin
  /// broker to delivery at the edge broker), reported twice from the same
  /// samples: bucket-interpolated percentiles of the
  /// pub_delivery_latency_seconds histogram, and the Stats Summary fed by
  /// the broker latency sink. The pair must agree within log-bucket
  /// quantization — a live cross-check that both pipelines see every sample.
  std::uint64_t deliveries = 0;
  double dlv_p50_ms = 0, dlv_p95_ms = 0, dlv_p99_ms = 0;
  double dlv_sum_p50_ms = 0, dlv_sum_p95_ms = 0, dlv_sum_p99_ms = 0;
};

/// Fills the delivery-latency fields of `r` from a finished scenario.
inline void fill_delivery_latency(Scenario& s, RunResult& r) {
  for (const obs::MetricSample& ms : s.net().metrics()->snapshot()) {
    if (ms.name == "pub_delivery_latency_seconds" && ms.labels.empty()) {
      r.deliveries = ms.count;
      r.dlv_p50_ms = obs::sample_percentile(ms, 0.50) * 1e3;
      r.dlv_p95_ms = obs::sample_percentile(ms, 0.95) * 1e3;
      r.dlv_p99_ms = obs::sample_percentile(ms, 0.99) * 1e3;
    }
  }
  const Summary& d = s.stats().delivery_latency_summary();
  r.dlv_sum_p50_ms = d.p50() * 1e3;
  r.dlv_sum_p95_ms = d.p95() * 1e3;
  r.dlv_sum_p99_ms = d.p99() * 1e3;
}

/// Wires the observability sinks when TMPS_TRACE is set: "1" writes
/// trace.jsonl / metrics.jsonl into the working directory, any other value
/// is used as the output directory. The first traced run of the process
/// truncates the files; later runs append, so a sweep lands in one file and
/// `tools/trace_inspect` can group it by run label. Env parsing is
/// BrokerConfig::from_env; the Scenario expands broker.obs.trace_dir into
/// the individual sink paths.
inline void apply_tracing(ScenarioConfig& cfg, const std::string& run_label) {
  cfg.broker = BrokerConfig::from_env(cfg.broker);
  if (!cfg.broker.obs.tracing && !cfg.broker.obs.audit) return;
  cfg.run_label = run_label;
  static bool first = true;
  cfg.trace_append = !first;
  first = false;
}

/// Enforces the auditor's verdict after a run: clean prints one stderr line,
/// any violation prints the full report and exits nonzero (so the CI audit
/// leg fails on the first broken invariant). No-op when auditing is off.
inline void check_audit(const Scenario& s, const std::string& run_label) {
  if (!s.config().audit) return;
  const obs::AuditReport& report = s.audit_report();
  if (!report.clean()) {
    std::fprintf(stderr, "AUDIT FAILED for run '%s':\n%s", run_label.c_str(),
                 report.summary().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "audit '%s': clean (%zu movements, %zu snapshots)\n",
               run_label.c_str(), report.movements_checked,
               report.snapshots_checked);
}

inline RunResult run_scenario(ScenarioConfig cfg,
                              const std::string& run_label = {}) {
  apply_tracing(cfg, run_label);
  Scenario s(cfg);
  s.run();
  check_audit(s, run_label);
  const Summary lat = s.latency();
  RunResult r;
  r.latency_ms = lat.mean() * 1e3;
  r.latency_max_ms = lat.max() * 1e3;
  r.latency_stddev_ms = lat.stddev() * 1e3;
  r.latency_p50_ms = lat.p50() * 1e3;
  r.latency_p95_ms = lat.p95() * 1e3;
  r.latency_p99_ms = lat.p99() * 1e3;
  r.msgs_per_movement = s.messages_per_movement();
  r.movements = s.movements();
  r.total_messages = s.stats().total_messages();
  r.duplicates = s.audit().duplicates;
  r.mover_losses = s.audit().mover_losses;
  r.mover_expected = s.audit().mover_expected;
  fill_delivery_latency(s, r);
  return r;
}

/// Appends the scenario parameters a regression diff must match on to a
/// bench's config object: topology size, population, schedule, seed. Call
/// with the bench's *template* config — per-row sweep axes (client count,
/// topology size, ...) belong in the rows, where tmps_benchdiff keys on
/// them. The moving-clients default (-1 = everyone) is reported as the
/// client count.
inline BenchJson::Row& scenario_config_fields(BenchJson::Row& row,
                                              const ScenarioConfig& cfg) {
  const std::uint32_t movers =
      cfg.moving_clients == static_cast<std::uint32_t>(-1)
          ? cfg.total_clients
          : cfg.moving_clients;
  return row
      .field("brokers",
             cfg.overlay ? cfg.overlay->broker_count()
                         : Overlay::paper_default().broker_count())
      .field("clients", cfg.total_clients)
      .field("moving_clients", movers)
      .field("pause_s", cfg.pause_between_moves)
      .field("publish_interval_s", cfg.publish_interval)
      .field("duration_s", cfg.duration)
      .field("warmup_s", cfg.warmup)
      .field("seed", cfg.seed);
}

/// Appends the standard result columns of a RunResult to a JSON row (after
/// the caller's own x-axis fields). `samples` is the committed-movement
/// count behind the lat_* percentiles — tmps_benchdiff treats rows with few
/// samples as advisory (a single-movement quick run has p50 == p99 == max,
/// which says nothing about regressions).
inline BenchJson::Row& result_fields(BenchJson::Row& row, const RunResult& r) {
  return row.field("samples", r.movements)
      .field("lat_mean_ms", r.latency_ms)
      .field("lat_p50_ms", r.latency_p50_ms)
      .field("lat_p95_ms", r.latency_p95_ms)
      .field("lat_p99_ms", r.latency_p99_ms)
      .field("lat_max_ms", r.latency_max_ms)
      .field("lat_stddev_ms", r.latency_stddev_ms)
      .field("msgs_per_movement", r.msgs_per_movement)
      .field("movements", r.movements)
      .field("total_messages", r.total_messages)
      .field("duplicates", r.duplicates)
      .field("mover_losses", r.mover_losses)
      .field("mover_expected", r.mover_expected)
      .field("deliveries", r.deliveries)
      .field("dlv_p50_ms", r.dlv_p50_ms)
      .field("dlv_p95_ms", r.dlv_p95_ms)
      .field("dlv_p99_ms", r.dlv_p99_ms)
      .field("dlv_sum_p50_ms", r.dlv_sum_p50_ms)
      .field("dlv_sum_p95_ms", r.dlv_sum_p95_ms)
      .field("dlv_sum_p99_ms", r.dlv_sum_p99_ms);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("mode: %s\n", full_run() ? "full (paper-scale, TMPS_FULL=1)"
                                        : "quick (set TMPS_FULL=1 for 1000s runs)");
  std::printf("==============================================================\n");
}

}  // namespace tmps::bench
