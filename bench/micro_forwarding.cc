// Forwarding-core micro-benchmark (the tentpole measurement): publication
// matching through the redesigned RoutingTables::match() API, counting-index
// backed vs full-PRT scan, on tables populated with the Fig. 7 workload
// shapes at 10k..1M subscriptions — plus a sustained publish-rate soak with
// subscription churn through apply_batch. Every timed query is also checked
// for exact agreement (links, matched count) between the index and the
// match_scan oracle — any divergence fails the binary (exit 1), so the CI
// perf-smoke leg doubles as a correctness gate. At the gate size the index
// must beat the scan by TMPS_GATE x (default 10; 0 disables).
//
// Writes BENCH_micro_forwarding.json (one row per workload × size with
// ns/match for both backends and the speedup, plus one soak row). Usage:
//   micro_forwarding [max_subscriptions]
// The optional cap trims the size sweep (CI runs `micro_forwarding 100000`);
// TMPS_FULL=1 extends the sweep to 1M subscriptions.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_json.h"
#include "pubsub/workload.h"
#include "routing/routing_tables.h"

namespace tmps {
namespace {

bool full_run() {
  const char* v = std::getenv("TMPS_FULL");
  return v && *v && std::string(v) != "0";
}

constexpr int kQueries = 64;
constexpr int kGateSubs = 100000;

double gate_speedup() {
  if (const char* v = std::getenv("TMPS_GATE"); v && *v) {
    return std::atof(v);
  }
  return 10.0;
}

RoutingTables make_tables(WorkloadKind k, int n, std::uint64_t seed) {
  RoutingTables rt;
  const int families = n / 10;
  for (int g = 0; g < families; ++g) {
    for (int i = 1; i <= 10; ++i) {
      const Subscription s{{static_cast<ClientId>(1000 + g * 10 + i), 1},
                           workload_filter_at(k, i, g, seed)};
      // Spread last hops over a few links so matches produce real fan-out.
      rt.upsert_sub(s, Hop::of_broker(static_cast<BrokerId>(2 + (g + i) % 4)));
    }
  }
  rt.upsert_adv({{1, 1}, full_space_advertisement()}, Hop::of_broker(3));
  return rt;
}

/// ns per query of `f` (which runs `ops` queries per call), repeated until
/// the sample window exceeds ~5 ms for a stable reading.
template <typename F>
double ns_per_query(F&& f, int ops) {
  using clock = std::chrono::steady_clock;
  f();  // warm caches
  long iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (long i = 0; i < iters; ++i) f();
    const double ns =
        std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    if (ns > 5e6 || iters >= (1L << 22)) {
      return ns / (static_cast<double>(iters) * ops);
    }
    iters *= 4;
  }
}

void die_on_mismatch(bool ok, const char* what, WorkloadKind k, int n,
                     int q) {
  if (ok) return;
  std::fprintf(stderr,
               "FATAL: forwarding index disagrees with scan oracle (%s, "
               "workload=%s, n=%d, query=%d)\n",
               what, to_string(k), n, q);
  std::exit(1);
}

struct Timings {
  double match_index_ns = 0, match_scan_ns = 0;
  double matched_mean = 0;
};

Timings measure(RoutingTables& rt, WorkloadKind k, int n,
                std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0xF00D);
  const int families = n / 10;

  std::vector<Publication> pubs;
  for (int q = 0; q < kQueries; ++q) {
    pubs.push_back(make_publication(
        {1, static_cast<std::uint32_t>(q + 1)},
        static_cast<std::int64_t>(rng() % 10000),
        static_cast<std::int64_t>(rng() % families)));
  }

  // Correctness gate first: every timed publication must match identically
  // through the index and the scan oracle.
  Timings t;
  for (int q = 0; q < kQueries; ++q) {
    const MatchResult ix = rt.match(pubs[q]);
    const MatchResult sc = rt.match_scan(pubs[q]);
    die_on_mismatch(ix.links == sc.links, "links", k, n, q);
    die_on_mismatch(ix.matched == sc.matched, "matched", k, n, q);
    die_on_mismatch(ix.version == sc.version, "version", k, n, q);
    t.matched_mean += static_cast<double>(ix.matched) / kQueries;
  }

  t.match_index_ns = ns_per_query(
      [&] {
        for (const Publication& p : pubs) {
          const MatchResult r = rt.match(p);
          volatile std::size_t sink = r.links.size();
          (void)sink;
        }
      },
      kQueries);
  t.match_scan_ns = ns_per_query(
      [&] {
        for (const Publication& p : pubs) {
          const MatchResult r = rt.match_scan(p);
          volatile std::size_t sink = r.links.size();
          (void)sink;
        }
      },
      kQueries);
  return t;
}

/// Sustained publish-rate soak: continuous match() against the largest
/// table with periodic subscription churn applied through apply_batch, a
/// 1-in-1024 cross-check against the scan oracle throughout.
void soak(bench::BenchJson& json, int n, std::uint64_t seed,
          double seconds) {
  RoutingTables rt = make_tables(WorkloadKind::Covered, n, seed);
  std::mt19937_64 rng(seed ^ 0x50AC);
  const int families = n / 10;
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  std::uint64_t pubs = 0, churn_batches = 0;
  std::uint32_t seq = 0;
  double elapsed = 0;
  while ((elapsed = std::chrono::duration<double>(clock::now() - t0)
                        .count()) < seconds) {
    const Publication p = make_publication(
        {2, ++seq}, static_cast<std::int64_t>(rng() % 10000),
        static_cast<std::int64_t>(rng() % families));
    const MatchResult r = rt.match(p);
    volatile std::size_t sink = r.links.size();
    (void)sink;
    ++pubs;
    if (pubs % 1024 == 0) {
      const MatchResult sc = rt.match_scan(p);
      die_on_mismatch(r.links == sc.links && r.matched == sc.matched,
                      "soak", WorkloadKind::Covered, n,
                      static_cast<int>(pubs));
    }
    if (pubs % 4096 == 0) {  // churn: retract + re-issue one family's subs
      const auto g = static_cast<std::int64_t>(rng() % families);
      std::vector<RoutingMutation> muts;
      for (int i = 1; i <= 10; ++i) {
        const EntityId id{static_cast<ClientId>(1000 + g * 10 + i), 1};
        if (const SubEntry* e = rt.find_sub(id)) {
          muts.push_back(RoutingMutation::remove_sub(id, e->lasthop));
        }
        muts.push_back(RoutingMutation::add_sub(
            {id, workload_filter_at(WorkloadKind::Covered, i, g, seed)},
            Hop::of_broker(static_cast<BrokerId>(2 + (g + i) % 4))));
      }
      rt.apply_batch(muts);
      ++churn_batches;
    }
  }
  const double rate = static_cast<double>(pubs) / elapsed;
  std::printf("%-9s %7d | %10.0f pubs/s over %.2fs (%llu pubs, %llu churn "
              "batches)\n",
              "soak", n, rate, elapsed,
              static_cast<unsigned long long>(pubs),
              static_cast<unsigned long long>(churn_batches));
  json.add_row()
      .field("workload", "soak")
      .field("subs", n)
      .field("pubs", static_cast<std::uint64_t>(pubs))
      .field("churn_batches", static_cast<std::uint64_t>(churn_batches))
      .field("pubs_per_sec", rate);
}

}  // namespace
}  // namespace tmps

int main(int argc, char** argv) {
  using namespace tmps;

  std::vector<int> sizes = {10000, 100000};
  if (full_run()) sizes.push_back(1000000);
  if (argc > 1) {
    const int cap = std::atoi(argv[1]);
    if (cap > 0) {
      std::erase_if(sizes, [&](int n) { return n > cap; });
      if (sizes.empty()) sizes.push_back(cap);
    }
  }

  constexpr WorkloadKind kKinds[] = {WorkloadKind::Covered,
                                     WorkloadKind::Chained, WorkloadKind::Tree,
                                     WorkloadKind::Distinct,
                                     WorkloadKind::Random};
  constexpr std::uint64_t kSeed = 42;
  const double gate = gate_speedup();
  bool gate_failed = false;

  bench::BenchJson json("micro_forwarding",
                        full_run() ? "full" : "quick");
  json.config().field("queries", kQueries).field("seed", kSeed);

  std::printf("%-9s %7s | %12s %12s %8s | %10s\n", "workload", "subs",
              "match ix", "match scan", "speedup", "mean match");
  for (WorkloadKind k : kKinds) {
    for (int n : sizes) {
      RoutingTables rt = make_tables(k, n, kSeed);
      // Structural cross-check of the index against the table (skipped at
      // 1M: the per-entry witness sweep dominates the run).
      if (n <= kGateSubs) {
        const auto violations = rt.check_forward_index();
        if (!violations.empty()) {
          std::fprintf(stderr, "FATAL: check_forward_index: %s\n",
                       violations.front().c_str());
          return 1;
        }
      }
      const Timings t = measure(rt, k, n, kSeed);
      const double speedup = t.match_scan_ns / t.match_index_ns;
      std::printf("%-9s %7d | %10.0fns %10.0fns %7.1fx | %10.1f\n",
                  to_string(k), n, t.match_index_ns, t.match_scan_ns,
                  speedup, t.matched_mean);
      json.add_row()
          .field("workload", to_string(k))
          .field("subs", n)
          .field("queries", kQueries)
          .field("match_index_ns", t.match_index_ns)
          .field("match_scan_ns", t.match_scan_ns)
          .field("speedup", speedup)
          .field("matched_mean", t.matched_mean);
      if (n == kGateSubs && gate > 0 && speedup < gate) {
        std::fprintf(stderr,
                     "FATAL: speedup gate missed (workload=%s, n=%d): "
                     "%.1fx < %.1fx\n",
                     to_string(k), n, speedup, gate);
        gate_failed = true;
      }
    }
  }

  const int soak_n = *std::max_element(sizes.begin(), sizes.end());
  soak(json, soak_n, kSeed, full_run() ? 2.0 : 0.25);

  return gate_failed ? 1 : 0;
}
