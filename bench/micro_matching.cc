// Micro-benchmarks of the routing fabric (google-benchmark): matching,
// covering checks, intersection queries and table operations. These support
// the simulator's processing-cost model (publications are cheap to match;
// (un)subscription covering checks scale with table size).
#include <benchmark/benchmark.h>

#include <random>

#include "bench_json.h"
#include "pubsub/workload.h"
#include "routing/overlay.h"
#include "routing/routing_tables.h"

namespace tmps {
namespace {

RoutingTables make_tables(std::int64_t families) {
  RoutingTables rt;
  for (std::int64_t g = 0; g < families; ++g) {
    for (int i = 1; i <= 10; ++i) {
      const Subscription s{{static_cast<ClientId>(1000 + g * 10 + i),
                            1},
                           workload_filter(WorkloadKind::Covered, i, g)};
      auto& e = rt.upsert_sub(s, Hop::of_broker(2));
      e.forwarded_to.insert(Hop::of_broker(3));
    }
  }
  rt.upsert_adv({{1, 1}, full_space_advertisement()}, Hop::of_broker(3));
  return rt;
}

void BM_PublicationMatching(benchmark::State& state) {
  const auto rt = make_tables(state.range(0));
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::int64_t> x(0, 10000);
  std::uniform_int_distribution<std::int64_t> g(0, state.range(0) - 1);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    const Publication p = make_publication({1, ++seq}, x(rng), g(rng));
    benchmark::DoNotOptimize(rt.match(p).links);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PublicationMatching)->Arg(1)->Arg(10)->Arg(40)->Arg(100);

// Indexed vs full-scan matching: the equality-predicate index should keep
// per-publication cost near-flat in the number of covering families, while
// the scan grows linearly.
void BM_MatchingIndexed(benchmark::State& state) {
  const auto rt = make_tables(state.range(0));
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::int64_t> x(0, 10000);
  std::uniform_int_distribution<std::int64_t> g(0, state.range(0) - 1);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    const Publication p = make_publication({1, ++seq}, x(rng), g(rng));
    benchmark::DoNotOptimize(rt.matching_subs(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchingIndexed)->Arg(10)->Arg(100)->Arg(400);

void BM_MatchingScan(benchmark::State& state) {
  const auto rt = make_tables(state.range(0));
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::int64_t> x(0, 10000);
  std::uniform_int_distribution<std::int64_t> g(0, state.range(0) - 1);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    const Publication p = make_publication({1, ++seq}, x(rng), g(rng));
    benchmark::DoNotOptimize(rt.matching_subs_scan(p));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatchingScan)->Arg(10)->Arg(100)->Arg(400);

void BM_CoveringCheck(benchmark::State& state) {
  auto rt = make_tables(state.range(0));
  const Filter probe = workload_filter(WorkloadKind::Covered, 5, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.sub_covered_on_link({9999, 1}, probe, Hop::of_broker(3)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CoveringCheck)->Arg(1)->Arg(10)->Arg(40)->Arg(100);

void BM_UnquenchScan(benchmark::State& state) {
  auto rt = make_tables(state.range(0));
  // Remove the root of family 0's forwarding and scan for orphans — the
  // expensive step of covering-based unsubscription.
  SubEntry* root = rt.find_sub({1001, 1});
  root->forwarded_to.clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rt.unquenched_subs_on_link(*root, Hop::of_broker(3)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnquenchScan)->Arg(1)->Arg(10)->Arg(40)->Arg(100);

void BM_FilterCovers(benchmark::State& state) {
  const Filter wide = workload_filter(WorkloadKind::Covered, 1, 0);
  const Filter narrow = workload_filter(WorkloadKind::Covered, 5, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wide.covers(narrow));
  }
}
BENCHMARK(BM_FilterCovers);

void BM_FilterIntersectsAdv(benchmark::State& state) {
  const Filter sub = workload_filter(WorkloadKind::Tree, 4, 3);
  const Filter adv = full_space_advertisement();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sub.intersects_advertisement(adv));
  }
}
BENCHMARK(BM_FilterIntersectsAdv);

void BM_FilterMatch(benchmark::State& state) {
  const Filter f = workload_filter(WorkloadKind::Covered, 1, 0);
  const Publication p = make_publication({1, 1}, 5000, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.matches(p));
  }
}
BENCHMARK(BM_FilterMatch);

void BM_OverlayNextHop(benchmark::State& state) {
  const Overlay o = Overlay::paper_default();
  BrokerId from = 1;
  for (auto _ : state) {
    from = (from % 14) + 1;
    const BrokerId to = (from % 14) + 1;
    if (from != to) benchmark::DoNotOptimize(o.next_hop(from, to));
  }
}
BENCHMARK(BM_OverlayNextHop);

void BM_OverlayPath(benchmark::State& state) {
  const Overlay o = Overlay::paper_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(o.path(1, 13));
  }
}
BENCHMARK(BM_OverlayPath);

void BM_ShadowInstallCommit(benchmark::State& state) {
  auto rt = make_tables(4);
  const Subscription s{{1001, 1},
                       workload_filter(WorkloadKind::Covered, 1, 0)};
  TxnId txn = 100;
  for (auto _ : state) {
    rt.install_sub_shadow(s, Hop::of_broker(4), ++txn);
    rt.commit_shadow(s.id, txn);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowInstallCommit);

// Mirrors every run into BENCH_micro_matching.json (one row per benchmark)
// alongside google-benchmark's console table, so the micro benches land in
// the same artifact format as the figure benches. Extends the console
// reporter rather than registering as a file reporter: a file reporter
// would require --benchmark_out, which this binary manages itself.
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRowReporter(bench::BenchJson& json) : json_(&json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      auto& row = json_->add_row();
      row.field("name", run.benchmark_name())
          .field("iterations", static_cast<std::uint64_t>(run.iterations))
          .field("real_time", run.GetAdjustedRealTime())
          .field("cpu_time", run.GetAdjustedCPUTime())
          .field("time_unit", benchmark::GetTimeUnitString(run.time_unit));
      if (auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        row.field("items_per_second", static_cast<double>(it->second));
      }
    }
  }

 private:
  bench::BenchJson* json_;
};

}  // namespace
}  // namespace tmps

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  tmps::bench::BenchJson json("micro_matching", "benchmark");
  json.config()
      .field("workload", "covered")
      .field("reporter", "google-benchmark");
  tmps::JsonRowReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
