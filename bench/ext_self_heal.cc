// Extension: anti-entropy self-healing under phase-targeted crashes
// (src/repair).
//
// A mobile population moves across the paper's 14-broker overlay while a
// staggered schedule of phase-targeted crashes (failure/failure_injector.h
// PhaseCrash) wipes the volatile 3PC conversation of source, target and
// intermediate brokers at every movement phase — with all coordinator
// timeouts disabled, so the repair sweeps are the only healer.
//
// Expected, with repair on: the run ends auditor-clean (run under
// TMPS_AUDIT=1), with zero duplicate deliveries, zero losses, zero residual
// shadow state on any broker, and the repair loop goes quiet once the chaos
// stops (no corrective ops in the final tail window — bounded-round
// convergence). With repair off, the same crash schedule must demonstrably
// strand state: attributed audit violations and pending shadows remain. The
// bench exits nonzero if either side fails, so CI can gate on it.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "failure/failure_injector.h"
#include "repair/scenario_repair.h"

using namespace tmps;
using namespace tmps::bench;

namespace {

struct HealResult {
  std::uint64_t movements = 0;
  std::uint64_t crashes = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t mover_losses = 0;
  std::uint64_t stationary_losses = 0;
  std::size_t audit_violations = 0;
  std::size_t shadow_brokers = 0;  // brokers with residual shadow state
  std::uint64_t repair_rounds = 0;     // max over brokers
  std::uint64_t repair_ops = 0;        // summed over brokers
  std::uint64_t tail_ops = 0;          // ops in the final quiet window
  bool audit_clean = false;
};

constexpr double kTailWindow = 20.0;

ScenarioConfig chaos_config() {
  ScenarioConfig cfg;
  cfg.mobility.protocol = MobilityProtocol::Reconfiguration;
  // Reconfiguration mobility runs without covering (quenching is unsound
  // when a coverer can move away); the repair loop's quench reconciliation
  // still runs, guarding the plain forwarding invariant.
  cfg.broker.subscription_covering = false;
  cfg.broker.advertisement_covering = false;
  cfg.workload = WorkloadKind::Covered;
  cfg.total_clients = 40;
  cfg.moving_clients = 8;
  cfg.duration = full_run() ? 600.0 : 180.0;
  cfg.warmup = 30.0;
  cfg.pause_between_moves = 6.0;
  cfg.publish_interval = 1.0;
  cfg.seed = 13;
  cfg.audit = true;  // the whole point: gate on the auditor's verdict
  // Coordinator timeouts stay 0 (blocking variant): only repair heals.
  cfg.broker.repair.sweep_interval = 1.0;
  cfg.broker.repair.stale_after = 2.5;
  cfg.broker.repair.confirm_rounds = 2;
  return cfg;
}

// One crash per (role, phase) pair, staggered so each outage-and-repair
// episode completes before the next begins. Path 1-3-4-8-12-13: broker 1 is
// a source end, 13 a target end, 4/8/12 intermediates.
std::vector<PhaseCrash> crash_schedule() {
  const struct {
    BrokerId victim;
    const char* phase;
    double after;
  } plan[] = {
      {1, "move-negotiate", 35}, {13, "move-approve", 55},
      {8, "move-state", 75},     {12, "move-ack", 95},
      {1, "move-state", 115},    {13, "move-ack", 135},
  };
  std::vector<PhaseCrash> crashes;
  for (const auto& p : plan) {
    PhaseCrash c;
    c.victim = p.victim;
    c.phase = p.phase;
    c.after = p.after;
    c.outage = 1.5;
    c.count = 1;
    crashes.push_back(std::move(c));
  }
  return crashes;
}

HealResult run_one(bool repair_on, const std::string& run_label) {
  ScenarioConfig cfg = chaos_config();
  apply_tracing(cfg, run_label);
  cfg.broker.repair.enabled = repair_on;
  auto repair = repair::install_repair(cfg);

  std::unique_ptr<FailureInjector> inj;
  auto tail_base = std::make_shared<std::uint64_t>(0);
  const double tail_start = cfg.duration - kTailWindow;
  cfg.post_build = [&, tail_base, tail_start](SimNetwork& net) {
    FailurePlan plan;
    plan.seed = cfg.seed;  // one seed reproduces workload and faults
    inj = std::make_unique<FailureInjector>(net, plan);
    for (PhaseCrash& c : crash_schedule()) inj->crash_at_phase(c);
    net.events().schedule_at(tail_start, [repair, tail_base] {
      for (const auto& e : repair->engines) {
        *tail_base += e->stats().ops_total;
      }
    });
  };

  Scenario s(cfg);
  s.run();

  HealResult r;
  r.movements = s.movements();
  r.crashes = inj->fault_hits().size();
  r.duplicates = s.audit().duplicates;
  r.mover_losses = s.audit().mover_losses;
  r.stationary_losses = s.audit().stationary_losses;
  r.audit_clean = s.audit_report().clean();
  r.audit_violations = s.audit_report().violations.size();
  for (const auto& [b, engine] : s.engines()) {
    if (engine->broker().tables().has_pending_shadows()) ++r.shadow_brokers;
  }
  std::uint64_t final_ops = 0;
  for (const auto& e : repair->engines) {
    r.repair_rounds = std::max(r.repair_rounds, e->stats().rounds);
    final_ops += e->stats().ops_total;
  }
  r.repair_ops = final_ops;
  r.tail_ops = final_ops - *tail_base;
  return r;
}

}  // namespace

int main() {
  print_header("Extension — anti-entropy self-healing chaos soak",
               "phase-targeted crash-restart vs. the src/repair sweeps");

  BenchJson json = json_out("ext_self_heal");
  json.config()
      .field("brokers", 14)
      .field("crashes_scheduled", crash_schedule().size())
      .field("tail_window", kTailWindow);

  std::printf("%10s | %6s %7s | %5s %6s %6s | %7s %9s %8s | %6s\n", "run",
              "moves", "crashes", "dups", "losses", "shadow", "rounds",
              "repair_op", "tail_op", "audit");

  std::map<bool, HealResult> results;
  for (const bool repair_on : {true, false}) {
    const std::string label = repair_on ? "repair" : "no-repair";
    const HealResult r = run_one(repair_on, "extsh:" + label);
    results[repair_on] = r;
    std::printf("%10s | %6llu %7llu | %5llu %6llu %6zu | %7llu %9llu %8llu "
                "| %6s\n",
                label.c_str(), static_cast<unsigned long long>(r.movements),
                static_cast<unsigned long long>(r.crashes),
                static_cast<unsigned long long>(r.duplicates),
                static_cast<unsigned long long>(r.mover_losses +
                                                r.stationary_losses),
                r.shadow_brokers,
                static_cast<unsigned long long>(r.repair_rounds),
                static_cast<unsigned long long>(r.repair_ops),
                static_cast<unsigned long long>(r.tail_ops),
                r.audit_clean ? "clean" : "DIRTY");
    json.add_row()
        .field("run", label)
        .field("repair", repair_on)
        .field("movements", r.movements)
        .field("crashes", r.crashes)
        .field("duplicates", r.duplicates)
        .field("mover_losses", r.mover_losses)
        .field("stationary_losses", r.stationary_losses)
        .field("audit_clean", r.audit_clean)
        .field("audit_violations", r.audit_violations)
        .field("shadow_brokers", r.shadow_brokers)
        .field("repair_rounds", r.repair_rounds)
        .field("repair_ops_total", r.repair_ops)
        .field("tail_ops", r.tail_ops);
  }

  const HealResult& on = results.at(true);
  const HealResult& off = results.at(false);
  bool ok = true;

  if (on.crashes == 0) {
    std::fprintf(stderr, "GATE FAILED: no phase crash ever triggered\n");
    ok = false;
  }
  if (!on.audit_clean) {
    std::fprintf(stderr,
                 "GATE FAILED: repair-on run is not auditor-clean (%zu "
                 "violations)\n",
                 on.audit_violations);
    ok = false;
  }
  if (on.duplicates != 0 || on.mover_losses != 0 ||
      on.stationary_losses != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: repair-on run duplicated %llu / lost %llu "
                 "deliveries\n",
                 static_cast<unsigned long long>(on.duplicates),
                 static_cast<unsigned long long>(on.mover_losses +
                                                 on.stationary_losses));
    ok = false;
  }
  if (on.shadow_brokers != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: %zu brokers end with residual shadow state "
                 "despite repair\n",
                 on.shadow_brokers);
    ok = false;
  }
  if (on.repair_ops == 0) {
    std::fprintf(stderr,
                 "GATE FAILED: repair loop performed no corrective ops — the "
                 "chaos never exercised it\n");
    ok = false;
  }
  if (on.tail_ops != 0) {
    std::fprintf(stderr,
                 "GATE FAILED: %llu corrective ops in the final %.0fs — "
                 "repair did not converge\n",
                 static_cast<unsigned long long>(on.tail_ops), kTailWindow);
    ok = false;
  }
  // The negative control: without the healer the same chaos must visibly
  // strand state, or the repair-on gates above prove nothing.
  if (off.audit_clean && off.shadow_brokers == 0) {
    std::fprintf(stderr,
                 "GATE FAILED: repair-off run shows no damage — the crash "
                 "schedule is too weak to validate repair\n");
    ok = false;
  }

  std::printf("\n%s: repair healed %llu crashes across %llu movements "
              "(%llu corrective ops); without repair: %zu violations, %zu "
              "shadow brokers\n",
              ok ? "PASS" : "FAIL",
              static_cast<unsigned long long>(on.crashes),
              static_cast<unsigned long long>(on.movements),
              static_cast<unsigned long long>(on.repair_ops),
              off.audit_violations, off.shadow_brokers);
  return ok ? 0 : 1;
}
