// Fig. 9 — sensitivity to the subscription workload.
//
// The x-axis is the covering fan-out of the workload (chained=1, tree=3,
// covered=9); distinct (0) and random are included as extra rows.
//
// Expected shape (paper):
//  (a) the reconfiguration protocol's latency is flat across workloads; the
//      covering protocol degrades as covering increases (worst at covered);
//  (b) the reconfiguration protocol's per-movement message count is flat and
//      it completes the same number of movements everywhere; the covering
//      protocol's message overhead varies with the workload and it completes
//      fewer movements on covering-heavy workloads.
#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

int main() {
  print_header("Fig. 9 — subscription workload sweep",
               "Fig. 9(a) movement latency, Fig. 9(b) message load");

  BenchJson json = json_out("fig09_workload_sweep");
  scenario_config_fields(
      json.config(),
      paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered));
  std::printf("%9s %7s %9s | %12s %8s %8s %8s %12s | %10s %11s\n", "workload",
              "cover°", "protocol", "lat mean(ms)", "p50", "p95", "p99",
              "lat max(ms)", "msgs/move", "movements");
  for (auto wl : {WorkloadKind::Distinct, WorkloadKind::Chained,
                  WorkloadKind::Tree, WorkloadKind::Covered,
                  WorkloadKind::Random}) {
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      const std::string run =
          std::string("fig09:") + to_string(wl) + ":" + label(proto);
      const RunResult r = run_scenario(paper_config(proto, wl), run);
      std::printf(
          "%9s %7d %9s | %12.1f %8.1f %8.1f %8.1f %12.1f | %10.1f %11llu\n",
          to_string(wl), covering_degree(wl), label(proto), r.latency_ms,
          r.latency_p50_ms, r.latency_p95_ms, r.latency_p99_ms,
          r.latency_max_ms, r.msgs_per_movement,
          static_cast<unsigned long long>(r.movements));
      auto& row = json.add_row()
                      .field("workload", to_string(wl))
                      .field("covering_degree", covering_degree(wl))
                      .field("protocol", label(proto));
      result_fields(row, r);
    }
  }
  std::printf(
      "\nnote: the paper's x-axis carries chained(1), tree(3), covered(9).\n"
      "distinct and random are extra rows; random has mixed covering.\n");
  return 0;
}
