// Machine-readable benchmark output: every bench binary writes one
// BENCH_<name>.json next to its stdout table so sweeps can be archived and
// diffed by CI without scraping text.
//
// File shape:
//   {"bench":"fig09","mode":"quick","config":{...},"rows":[
//   {"workload":"covered","protocol":"reconfig","lat_mean_ms":12.3,...},
//   ...
//   ]}
//
// Output directory: $TMPS_BENCH_OUT when set, else the working directory.
// Header-only and dependency-free so micro benchmarks (which do not link the
// scenario stack) can use it too.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tmps::bench {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

class BenchJson {
 public:
  class Row {
   public:
    Row& field(std::string_view key, std::string_view v) {
      return raw(key, "\"" + json_escape(v) + "\"");
    }
    Row& field(std::string_view key, const char* v) {
      return field(key, std::string_view(v));
    }
    Row& field(std::string_view key, double v) {
      return raw(key, json_number(v));
    }
    Row& field(std::string_view key, std::uint64_t v) {
      return raw(key, std::to_string(v));
    }
    Row& field(std::string_view key, std::int64_t v) {
      return raw(key, std::to_string(v));
    }
    Row& field(std::string_view key, int v) {
      return raw(key, std::to_string(v));
    }
    Row& field(std::string_view key, unsigned v) {
      return raw(key, std::to_string(v));
    }
    Row& field(std::string_view key, bool v) {
      return raw(key, v ? "true" : "false");
    }

   private:
    friend class BenchJson;
    Row& raw(std::string_view key, const std::string& value) {
      if (!body_.empty()) body_ += ',';
      body_ += '"';
      body_ += json_escape(key);
      body_ += "\":";
      body_ += value;
      return *this;
    }
    std::string body_;
  };

  explicit BenchJson(std::string name, std::string mode = "quick")
      : name_(std::move(name)), mode_(std::move(mode)) {}

  ~BenchJson() { write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  /// Top-level config fields ({"config":{...}}), e.g. duration or seed.
  Row& config() { return config_; }
  Row& add_row() { return rows_.emplace_back(); }

  /// Writes BENCH_<name>.json; called by the destructor, idempotent.
  void write() {
    if (written_) return;
    written_ = true;
    const char* dir = std::getenv("TMPS_BENCH_OUT");
    const std::string path = (dir && *dir ? std::string(dir) + "/" : "") +
                             "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return;
    }
    os << "{\"bench\":\"" << json_escape(name_) << "\",\"mode\":\""
       << json_escape(mode_) << "\",\"config\":{" << config_.body_
       << "},\"rows\":[\n";
    bool first = true;
    for (const Row& r : rows_) {
      if (!first) os << ",\n";
      first = false;
      os << '{' << r.body_ << '}';
    }
    os << "\n]}\n";
  }

 private:
  std::string name_;
  std::string mode_;
  Row config_;
  std::deque<Row> rows_;  // deque: add_row references stay valid
  bool written_ = false;
};

}  // namespace tmps::bench
