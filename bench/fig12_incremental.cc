// Fig. 12 — incremental movement.
//
// 400 clients (40 families: 10 covered, 10 tree, 10 chained, 10 distinct);
// the number of movers grows in increments of ten chosen exactly as the
// paper describes: covering roots from the covered workload, covering roots
// from the tree workload, covering subscriptions from the chained workload,
// covered leaves drawn from the previous three, and finally distinct
// subscriptions.
//
// Expected shape (paper): the reconfiguration protocol's latency is flat.
// The covering protocol's average latency climbs while covering-heavy
// subscriptions are added (first three increments, with the tree increment
// steeper than the chained one) and *drops* when leaf/distinct movers —
// whose propagation is quenched or burst-free — are added.
#include <random>

#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

namespace {

WorkloadKind family_kind(std::uint32_t family) {
  if (family < 10) return WorkloadKind::Covered;
  if (family < 20) return WorkloadKind::Tree;
  if (family < 30) return WorkloadKind::Chained;
  return WorkloadKind::Distinct;
}

Filter mixed_filter(std::uint32_t k) {
  const std::uint32_t family = k / 10;
  const int member = static_cast<int>(k % 10) + 1;
  return workload_filter(family_kind(family), member,
                         static_cast<std::int64_t>(family));
}

/// The k-indices that move for a given mover count (10..60), following the
/// paper's increment order.
std::vector<std::uint32_t> movers_for(std::uint32_t count) {
  std::vector<std::uint32_t> movers;
  // Increment 1-3: the roots (member 1 => k%10==0) of the covered, tree and
  // chained families in turn.
  for (std::uint32_t family = 0; family < 30 && movers.size() < count;
       ++family) {
    movers.push_back(family * 10);
  }
  // Increment 4: ten covered (leaf) subscriptions chosen randomly from the
  // previous three workloads.
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<std::uint32_t> fam(0, 29);
  std::uniform_int_distribution<std::uint32_t> mem(1, 9);
  while (movers.size() < std::min<std::uint32_t>(count, 40)) {
    const std::uint32_t k = fam(rng) * 10 + mem(rng);
    if (std::find(movers.begin(), movers.end(), k) == movers.end()) {
      movers.push_back(k);
    }
  }
  // Increment 5-6: subscriptions from the distinct families.
  for (std::uint32_t k = 300; k < 400 && movers.size() < count; ++k) {
    movers.push_back(k);
  }
  movers.resize(std::min<std::size_t>(movers.size(), count));
  return movers;
}

}  // namespace

int main() {
  print_header("Fig. 12 — incremental movement",
               "Fig. 12(a) movement latency, Fig. 12(b) message load");

  BenchJson json = json_out("fig12_incremental");
  // Mover count is the sweep axis: rows carry it.
  scenario_config_fields(
      json.config(),
      paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered))
      .field("workload", "mixed");
  std::printf("%7s %9s | %12s %12s | %10s %11s\n", "movers", "protocol",
              "lat mean(ms)", "lat max(ms)", "msgs/move", "movements");
  for (std::uint32_t count = 10; count <= 60; count += 10) {
    const auto movers = movers_for(count);
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      ScenarioConfig cfg = paper_config(proto, WorkloadKind::Covered);
      cfg.filter_override = mixed_filter;
      cfg.mover_override = [movers](std::uint32_t k) {
        return std::find(movers.begin(), movers.end(), k) != movers.end();
      };
      const RunResult r = run_scenario(
          cfg, "fig12:" + std::to_string(count) + ":" + label(proto));
      std::printf("%7u %9s | %12.1f %12.1f | %10.1f %11llu\n", count,
                  label(proto), r.latency_ms, r.latency_max_ms,
                  r.msgs_per_movement,
                  static_cast<unsigned long long>(r.movements));
      auto& row =
          json.add_row().field("movers", count).field("protocol", label(proto));
      result_fields(row, r);
    }
  }
  return 0;
}
