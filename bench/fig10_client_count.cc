// Fig. 10 — scalability in the number of moving clients (400..1000).
//
// Expected shape (paper): the reconfiguration protocol's latency and message
// overhead stay flat as clients increase; the covering protocol's latency
// degrades sharply with more clients while the reconfiguration protocol
// completes proportionally more movements.
#include "bench_util.h"

using namespace tmps;
using namespace tmps::bench;

int main() {
  print_header("Fig. 10 — number of moving clients",
               "Fig. 10(a) movement latency, Fig. 10(b) message load");

  BenchJson json = json_out("fig10_client_count");
  // Client count is the sweep axis: rows carry it, the config holds the
  // shared schedule/topology.
  scenario_config_fields(
      json.config(),
      paper_config(MobilityProtocol::Reconfiguration, WorkloadKind::Covered));
  std::printf("%8s %9s | %12s %12s | %10s %11s\n", "clients", "protocol",
              "lat mean(ms)", "lat max(ms)", "msgs/move", "movements");
  for (std::uint32_t n = 400; n <= 1000; n += 200) {
    for (auto proto :
         {MobilityProtocol::Reconfiguration, MobilityProtocol::Traditional}) {
      ScenarioConfig cfg = paper_config(proto, WorkloadKind::Covered);
      cfg.total_clients = n;
      const RunResult r = run_scenario(
          cfg, "fig10:" + std::to_string(n) + ":" + label(proto));
      std::printf("%8u %9s | %12.1f %12.1f | %10.1f %11llu\n", n, label(proto),
                  r.latency_ms, r.latency_max_ms, r.msgs_per_movement,
                  static_cast<unsigned long long>(r.movements));
      auto& row =
          json.add_row().field("clients", n).field("protocol", label(proto));
      result_fields(row, r);
    }
  }
  return 0;
}
