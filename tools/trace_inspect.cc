// Trace inspector for the movement-transaction JSONL traces emitted by the
// observability layer (src/obs). Loads trace.jsonl (and optionally
// metrics.jsonl) and prints:
//
//  * a per-movement waterfall — the movement span, its phase child spans,
//    per-hop reconfiguration events and covering-induced (un)subscription
//    events, joined to the movement's message attribution by TxnId;
//  * phase-latency percentiles (p50/p95/p99) across all movements, grouped
//    by phase name;
//  * the top-N hottest overlay links by message count (from the
//    link_messages_total counters in metrics.jsonl).
//
// The rendering lives in obs/trace_report.h so tests can drive it over
// in-memory streams; this is the command-line shell around it.
//
// Usage:  trace_inspect <trace.jsonl> [metrics.jsonl] [--top N] [--limit N]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/trace_report.h"

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  tmps::obs::TraceReportOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      opts.top_links = std::atoi(argv[++i]);
    } else if (arg == "--limit" && i + 1 < argc) {
      opts.waterfall_limit = std::atoi(argv[++i]);
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_inspect <trace.jsonl> [metrics.jsonl] "
                 "[--top N] [--limit N]\n");
    return 2;
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
    return 1;
  }
  std::ifstream metrics;
  if (!metrics_path.empty()) {
    metrics.open(metrics_path);
    if (!metrics) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 1;
    }
  }

  const std::size_t movements = tmps::obs::write_trace_report(
      in, metrics_path.empty() ? nullptr : &metrics, std::cout, opts);
  if (movements == 0) {
    std::fprintf(stderr, "no movement spans found in %s\n",
                 trace_path.c_str());
  }
  return 0;
}
