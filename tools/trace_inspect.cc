// Trace inspector for the movement-transaction JSONL traces emitted by the
// observability layer (src/obs). Loads trace.jsonl (and optionally
// metrics.jsonl) and prints:
//
//  * a per-movement waterfall — the movement span, its phase child spans,
//    per-hop reconfiguration events and covering-induced (un)subscription
//    events, joined to the movement's message attribution by TxnId;
//  * phase-latency percentiles (p50/p95/p99 via the shared log-bucket
//    Summary) across all movements, grouped by phase name;
//  * the top-N hottest overlay links by message count (from the
//    link_messages_total counters in metrics.jsonl).
//
// The parser handles exactly the flat JSON the tracer/registry emit: one
// object per line, string/number values, one level of nesting for "attrs" /
// "labels" / "buckets". It is not a general JSON parser.
//
// Usage:  trace_inspect <trace.jsonl> [metrics.jsonl] [--top N] [--limit N]
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace {

using tmps::Summary;

// --- minimal JSONL parsing ---------------------------------------------------

struct JsonObject {
  std::map<std::string, std::string> fields;  // scalar values, unescaped
  std::map<std::string, std::map<std::string, std::string>> objects;

  const std::string* get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
  std::string str(const std::string& key, std::string def = "") const {
    const std::string* v = get(key);
    return v ? *v : def;
  }
  double num(const std::string& key, double def = 0) const {
    const std::string* v = get(key);
    return v ? std::strtod(v->c_str(), nullptr) : def;
  }
  std::uint64_t u64(const std::string& key, std::uint64_t def = 0) const {
    const std::string* v = get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : def;
  }
};

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

std::optional<std::string> parse_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return std::nullopt;
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          // \u00XX escapes (the writer only emits control characters this
          // way); decode the low byte, good enough for display.
          if (i + 4 < s.size()) {
            out += static_cast<char>(
                std::strtoul(s.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
    ++i;
  }
  if (i >= s.size()) return std::nullopt;
  ++i;  // closing quote
  return out;
}

std::optional<std::string> parse_scalar(const std::string& s, std::size_t& i) {
  skip_ws(s, i);
  if (i < s.size() && s[i] == '"') return parse_string(s, i);
  // Bare token: number / true / false / null.
  std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         !std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  if (i == start) return std::nullopt;
  return s.substr(start, i - start);
}

// Parses {"k":"v",...} with string/number values into `out`.
bool parse_flat_object(const std::string& s, std::size_t& i,
                       std::map<std::string, std::string>& out) {
  skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  while (true) {
    skip_ws(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    auto key = parse_string(s, i);
    if (!key) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    auto val = parse_scalar(s, i);
    if (!val) return false;
    out[*key] = *val;
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') ++i;
  }
}

// Skips a [...] value (histogram bucket arrays), tracking nesting depth.
void skip_array(const std::string& s, std::size_t& i) {
  int depth = 0;
  while (i < s.size()) {
    if (s[i] == '[') ++depth;
    if (s[i] == ']' && --depth == 0) {
      ++i;
      return;
    }
    ++i;
  }
}

std::optional<JsonObject> parse_line(const std::string& line) {
  JsonObject obj;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  while (true) {
    skip_ws(line, i);
    if (i < line.size() && line[i] == '}') break;
    auto key = parse_string(line, i);
    if (!key) return std::nullopt;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skip_ws(line, i);
    if (i < line.size() && line[i] == '{') {
      std::map<std::string, std::string> nested;
      if (!parse_flat_object(line, i, nested)) return std::nullopt;
      obj.objects[*key] = std::move(nested);
    } else if (i < line.size() && line[i] == '[') {
      skip_array(line, i);
    } else {
      auto val = parse_scalar(line, i);
      if (!val) return std::nullopt;
      obj.fields[*key] = *val;
    }
    skip_ws(line, i);
    if (i < line.size() && line[i] == ',') ++i;
  }
  return obj;
}

// --- trace model -------------------------------------------------------------

struct Record {
  bool is_span = false;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::string run;
  std::string name;
  double t0 = 0, t1 = 0;
  std::map<std::string, std::string> attrs;

  std::string attr(const std::string& key) const {
    auto it = attrs.find(key);
    return it == attrs.end() ? "" : it->second;
  }
};

struct Movement {
  std::uint64_t txn = 0;
  std::string run;
  const Record* root = nullptr;           // the source-side "movement" span
  std::vector<const Record*> spans;       // all spans of the trace
  std::vector<const Record*> events;      // all events of the trace
  std::uint64_t messages = 0;             // from movement:stats
  bool have_stats = false;
};

std::string bar(double frac, int width) {
  const int n = std::clamp(static_cast<int>(frac * width + 0.5), 0, width);
  return std::string(n, '#');
}

void print_waterfall(const Movement& m) {
  const Record& root = *m.root;
  const double span_len = std::max(root.t1 - root.t0, 1e-9);
  std::printf(
      "movement txn=%llu %s: %s -> %s client=%s protocol=%s outcome=%s\n",
      static_cast<unsigned long long>(m.txn),
      m.run.empty() ? "" : ("[" + m.run + "]").c_str(),
      root.attr("source").c_str(), root.attr("target").c_str(),
      root.attr("client").c_str(), root.attr("protocol").c_str(),
      root.attr("outcome").c_str());
  std::printf("  start=%.6fs duration=%.3fms", root.t0, span_len * 1e3);
  if (m.have_stats) {
    std::printf(" messages=%llu", static_cast<unsigned long long>(m.messages));
  }
  std::printf("\n");

  // Spans sorted by start time; indent children of the movement root.
  std::vector<const Record*> spans = m.spans;
  std::sort(spans.begin(), spans.end(),
            [](const Record* a, const Record* b) { return a->t0 < b->t0; });
  for (const Record* s : spans) {
    const double off = s->t0 - root.t0;
    const double len = std::max(s->t1 - s->t0, 0.0);
    const int lead = std::clamp(
        static_cast<int>(off / span_len * 40 + 0.5), 0, 40);
    const bool child = s->parent != 0;
    std::printf("  %-18s %8.3fms +%8.3fms |%*s%s\n",
                ((child ? "  " : "") + s->name).c_str(), len * 1e3, off * 1e3,
                lead, "", bar(len / span_len, 40 - lead).c_str());
  }

  // Events in time order, grouped visually under the spans.
  std::vector<const Record*> events = m.events;
  std::sort(events.begin(), events.end(),
            [](const Record* a, const Record* b) { return a->t0 < b->t0; });
  std::size_t covering = 0;
  const Record* prev_hop = nullptr;
  for (const Record* e : events) {
    if (e->name.rfind("covering:", 0) == 0) {
      ++covering;
      continue;
    }
    if (e->name == "movement:stats") continue;
    std::string extra;
    if (e->name.rfind("hop:", 0) == 0) {
      if (prev_hop && prev_hop->name == e->name) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "  (+%.3fms since prev hop)",
                      (e->t0 - prev_hop->t0) * 1e3);
        extra = buf;
      }
      prev_hop = e;
    }
    std::printf("    @%8.3fms %-14s broker=%s%s\n", (e->t0 - root.t0) * 1e3,
                e->name.c_str(), e->attr("broker").c_str(), extra.c_str());
  }
  if (covering > 0) {
    std::printf("    covering-induced (un)subscription events: %zu\n",
                covering);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  int top_n = 10;
  int waterfall_limit = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
    } else if (arg == "--limit" && i + 1 < argc) {
      waterfall_limit = std::atoi(argv[++i]);
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else if (metrics_path.empty()) {
      metrics_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_inspect <trace.jsonl> [metrics.jsonl] "
                 "[--top N] [--limit N]\n");
    return 2;
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
    return 1;
  }

  std::vector<Record> records;
  std::string line;
  std::size_t bad_lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto obj = parse_line(line);
    if (!obj) {
      ++bad_lines;
      continue;
    }
    Record r;
    r.is_span = obj->str("kind") == "span";
    r.trace = obj->u64("trace");
    r.span = obj->u64("span");
    r.parent = obj->u64("parent");
    r.run = obj->str("run");
    r.name = obj->str("name");
    r.t0 = obj->num("t0");
    r.t1 = obj->num("t1");
    auto at = obj->objects.find("attrs");
    if (at != obj->objects.end()) r.attrs = at->second;
    records.push_back(std::move(r));
  }
  if (bad_lines > 0) {
    std::fprintf(stderr, "warning: %zu unparseable lines skipped\n",
                 bad_lines);
  }

  // Group by (run, txn): a sweep appends several runs into one file and txn
  // ids may repeat across runs.
  std::map<std::pair<std::string, std::uint64_t>, Movement> movements;
  for (const Record& r : records) {
    if (r.trace == 0) continue;
    Movement& m = movements[{r.run, r.trace}];
    m.txn = r.trace;
    m.run = r.run;
    if (r.is_span) {
      m.spans.push_back(&r);
      if (r.name == "movement") m.root = &r;
    } else {
      m.events.push_back(&r);
      if (r.name == "movement:stats") {
        m.have_stats = true;
        m.messages = std::strtoull(r.attr("messages").c_str(), nullptr, 10);
      }
    }
  }

  // --- per-movement waterfalls ----------------------------------------------
  std::vector<const Movement*> with_root;
  for (const auto& [key, m] : movements) {
    if (m.root) with_root.push_back(&m);
  }
  std::sort(with_root.begin(), with_root.end(),
            [](const Movement* a, const Movement* b) {
              return a->root->t0 < b->root->t0;
            });
  std::printf("=== %zu movement(s) in %s ===\n\n", with_root.size(),
              trace_path.c_str());
  int shown = 0;
  for (const Movement* m : with_root) {
    if (waterfall_limit >= 0 && shown >= waterfall_limit) break;
    print_waterfall(*m);
    ++shown;
  }
  if (shown < static_cast<int>(with_root.size())) {
    std::printf("... %zu more movement(s); rerun with --limit N to see "
                "them\n\n",
                with_root.size() - shown);
  }

  // --- phase latency percentiles --------------------------------------------
  std::map<std::string, Summary> phases;
  for (const auto& [key, m] : movements) {
    for (const Record* s : m.spans) {
      if (s->t1 >= s->t0) phases[s->name].add(s->t1 - s->t0);
    }
  }
  if (!phases.empty()) {
    std::printf("=== phase latency (ms) ===\n");
    std::printf("%-18s %8s %8s %8s %8s %8s %8s\n", "phase", "count", "mean",
                "p50", "p95", "p99", "max");
    for (const auto& [name, s] : phases) {
      std::printf("%-18s %8llu %8.3f %8.3f %8.3f %8.3f %8.3f\n", name.c_str(),
                  static_cast<unsigned long long>(s.count()), s.mean() * 1e3,
                  s.p50() * 1e3, s.p95() * 1e3, s.p99() * 1e3, s.max() * 1e3);
    }
    std::printf("\n");
  }

  // --- hot links from metrics.jsonl -----------------------------------------
  if (!metrics_path.empty()) {
    std::ifstream min(metrics_path);
    if (!min) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    // Sum across runs (a sweep appends one snapshot per run).
    std::map<std::string, std::uint64_t> links;
    while (std::getline(min, line)) {
      if (line.empty()) continue;
      auto obj = parse_line(line);
      if (!obj || obj->str("metric") != "link_messages_total") continue;
      auto lt = obj->objects.find("labels");
      if (lt == obj->objects.end()) continue;
      const std::string key = lt->second["from"] + " -> " + lt->second["to"];
      links[key] = std::max(links[key], obj->u64("value"));
    }
    std::vector<std::pair<std::uint64_t, std::string>> order;
    for (const auto& [key, n] : links) order.emplace_back(n, key);
    std::sort(order.rbegin(), order.rend());
    std::printf("=== top %d hot links (messages) ===\n", top_n);
    for (int i = 0; i < top_n && i < static_cast<int>(order.size()); ++i) {
      std::printf("%-12s %12llu\n", order[i].second.c_str(),
                  static_cast<unsigned long long>(order[i].first));
    }
  }
  return 0;
}
