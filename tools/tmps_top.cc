// tmps_top — a `top`-style live view over broker admin endpoints.
//
// Polls each given endpoint's GET /healthz (liveness, hosted clients,
// in-flight movement transactions) and GET /timeseries (the host's windowed
// metrics ring) and renders one line per broker: publication and delivery
// rates plus windowed delivery-latency percentiles from the per-broker
// provenance histograms, and the anti-entropy repair loop's latest-window
// activity (tmps_repair_rounds / tmps_repair_ops_total — a nonzero REPOPS
// column is a broker actively healing routing-state damage).
//
// With --stages it also polls GET /profile (the stage profiler's NDJSON
// dump) and renders a per-broker pane of the hottest publish-path stages by
// self-time share. Brokers running without the profiler show "profiler
// off" — the pane degrades, the table does not.
//
// Usage:
//   tmps_top [--once] [--stages] [--interval SECONDS] HOST:PORT [...]
//
// Each HOST:PORT is one broker's admin endpoint (TcpTransport assigns one
// per broker). --once polls a single round and exits (scripting / smoke
// tests); the default is a 2-second refresh loop. Exits nonzero when every
// endpoint is unreachable.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
  std::string spec;  // original HOST:PORT for display
};

/// Blocking loopback HTTP/1.0-style GET; returns the response body, empty on
/// any failure.
std::string http_get(const Endpoint& ep, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: " + ep.host +
                          "\r\nConnection: close\r\n\r\n";
  if (::send(fd, req.data(), req.size(), 0) < 0) {
    ::close(fd);
    return {};
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t k = ::recv(fd, buf, sizeof(buf), 0);
    if (k <= 0) break;
    resp.append(buf, static_cast<std::size_t>(k));
  }
  ::close(fd);
  const auto hdr_end = resp.find("\r\n\r\n");
  return hdr_end == std::string::npos ? std::string{}
                                      : resp.substr(hdr_end + 4);
}

/// First number following `"key":` in `s`, or `fallback`.
double json_num(const std::string& s, const std::string& key,
                double fallback = 0.0) {
  const auto pos = s.find("\"" + key + "\":");
  if (pos == std::string::npos) return fallback;
  return std::strtod(s.c_str() + pos + key.size() + 3, nullptr);
}

struct BrokerRow {
  bool alive = false;
  long broker = 0;
  long clients = 0;
  long txns = 0;
  double pub_rate = 0, dlv_rate = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  bool have_rates = false;
  // Anti-entropy repair activity in the latest window (src/repair counters
  // tmps_repair_rounds / tmps_repair_ops_total). A healthy steady state is
  // sweeps ticking with zero corrective ops; a nonzero REPOPS column is a
  // broker actively healing routing-state damage.
  long repair_rounds = 0, repair_ops = 0;
  bool have_repair = false;
  // Session-layer gauges (src/session): live edge sessions hosted here and
  // bytes parked in detached-client buffers. A growing SBUF with flat SESS
  // is a fleet that disconnected and never came back.
  long sessions = 0;
  double session_buf_kib = 0;
  bool have_sessions = false;
};

/// Series objects of the latest /timeseries window, split at `{"name":`.
std::vector<std::string> latest_window_series(const std::string& body) {
  // Last non-empty line is the most recent window.
  auto end = body.find_last_not_of('\n');
  if (end == std::string::npos) return {};
  auto start = body.rfind('\n', end);
  const std::string line =
      body.substr(start == std::string::npos ? 0 : start + 1, end - start);
  std::vector<std::string> out;
  std::size_t pos = 0;
  while ((pos = line.find("{\"name\":", pos)) != std::string::npos) {
    const std::size_t next = line.find("{\"name\":", pos + 1);
    out.push_back(line.substr(pos, next == std::string::npos ? std::string::npos
                                                             : next - pos));
    pos += 1;
  }
  return out;
}

bool series_is(const std::string& chunk, const std::string& name,
               long broker) {
  if (chunk.find("\"" + name + "\"") == std::string::npos) return false;
  return chunk.find("\"broker\":\"" + std::to_string(broker) + "\"") !=
         std::string::npos;
}

/// One stage row of a broker's /profile dump, reduced to what the pane
/// shows: self-time share of the walk and the self-latency tail.
struct StageRow {
  std::string stage;
  double share = 0;    // share_self: fraction of all recorded self time
  double p95_us = 0;   // self_p95_ns / 1e3
  std::uint64_t calls = 0;
};

/// Parses the /profile NDJSON body into stage rows sorted hottest-first.
/// Empty when the profiler is off (404 body) or the dump has no rows yet.
std::vector<StageRow> parse_stage_rows(const std::string& body) {
  std::vector<StageRow> rows;
  std::size_t pos = 0;
  while (pos < body.size()) {
    const std::size_t eol = body.find('\n', pos);
    const std::string line =
        body.substr(pos, eol == std::string::npos ? std::string::npos
                                                  : eol - pos);
    pos = eol == std::string::npos ? body.size() : eol + 1;
    const auto tag = line.find("\"stage\":\"");
    if (tag == std::string::npos) continue;
    const std::size_t name_at = tag + 9;
    const std::size_t name_end = line.find('"', name_at);
    if (name_end == std::string::npos) continue;
    StageRow r;
    r.stage = line.substr(name_at, name_end - name_at);
    r.share = json_num(line, "share_self");
    r.p95_us = json_num(line, "self_p95_ns") / 1e3;
    r.calls = static_cast<std::uint64_t>(json_num(line, "calls"));
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end(),
            [](const StageRow& a, const StageRow& b) {
              return a.share > b.share;
            });
  return rows;
}

BrokerRow poll(const Endpoint& ep) {
  BrokerRow row;
  const std::string health = http_get(ep, "/healthz");
  if (health.empty()) return row;
  row.alive = true;
  row.broker = static_cast<long>(json_num(health, "broker"));
  row.clients = static_cast<long>(json_num(health, "hosted_clients"));
  row.txns = static_cast<long>(json_num(health, "in_flight_txns"));

  const std::string ts = http_get(ep, "/timeseries");
  for (const std::string& s : latest_window_series(ts)) {
    if (series_is(s, "broker_publications_processed_total", row.broker)) {
      row.pub_rate = json_num(s, "rate");
      row.have_rates = true;
    } else if (series_is(s, "broker_deliveries_total", row.broker)) {
      row.dlv_rate = json_num(s, "rate");
      row.have_rates = true;
    } else if (series_is(s, "broker_delivery_latency_seconds", row.broker)) {
      row.p50_ms = json_num(s, "p50") * 1e3;
      row.p95_ms = json_num(s, "p95") * 1e3;
      row.p99_ms = json_num(s, "p99") * 1e3;
      row.have_rates = true;
    } else if (series_is(s, "tmps_repair_rounds", row.broker)) {
      row.repair_rounds = static_cast<long>(json_num(s, "delta"));
      row.have_repair = true;
    } else if (series_is(s, "tmps_repair_ops_total", row.broker)) {
      row.repair_ops = static_cast<long>(json_num(s, "delta"));
      row.have_repair = true;
    } else if (series_is(s, "tmps_sessions_active", row.broker)) {
      row.sessions = static_cast<long>(json_num(s, "value"));
      row.have_sessions = true;
    } else if (series_is(s, "tmps_session_buffered_bytes", row.broker)) {
      row.session_buf_kib = json_num(s, "value") / 1024.0;
      row.have_sessions = true;
    }
  }
  return row;
}

void render(const std::vector<Endpoint>& eps,
            const std::vector<BrokerRow>& rows, bool once) {
  if (!once) std::printf("\033[2J\033[H");
  std::printf("tmps_top — %zu endpoint(s)\n", eps.size());
  std::printf("%-21s %6s %7s %5s %8s %8s %7s %7s %7s %6s %6s %5s %8s\n",
              "ENDPOINT", "BROKER", "CLIENTS", "TXNS", "PUB/S", "DLV/S",
              "P50ms", "P95ms", "P99ms", "REPRND", "REPOPS", "SESS",
              "SBUFkib");
  for (std::size_t i = 0; i < eps.size(); ++i) {
    const BrokerRow& r = rows[i];
    if (!r.alive) {
      std::printf("%-21s %s\n", eps[i].spec.c_str(), "unreachable");
      continue;
    }
    if (r.have_rates) {
      std::printf("%-21s %6ld %7ld %5ld %8.1f %8.1f %7.2f %7.2f %7.2f",
                  eps[i].spec.c_str(), r.broker, r.clients, r.txns, r.pub_rate,
                  r.dlv_rate, r.p50_ms, r.p95_ms, r.p99_ms);
    } else {
      // Timeseries ring disabled (or no window yet): liveness columns only.
      std::printf("%-21s %6ld %7ld %5ld %8s %8s %7s %7s %7s",
                  eps[i].spec.c_str(), r.broker, r.clients, r.txns, "-", "-",
                  "-", "-", "-");
    }
    if (r.have_repair) {
      // Latest-window deltas: sweeps run and corrective ops applied.
      std::printf(" %6ld %6ld", r.repair_rounds, r.repair_ops);
    } else {
      // Repair loop disabled on this broker (or no window yet).
      std::printf(" %6s %6s", "-", "-");
    }
    if (r.have_sessions) {
      std::printf(" %5ld %8.1f\n", r.sessions, r.session_buf_kib);
    } else {
      // Session layer disabled on this broker (or no window yet).
      std::printf(" %5s %8s\n", "-", "-");
    }
  }
  std::fflush(stdout);
}

/// The --stages pane: per broker, the hottest stages by self-time share.
void render_stages(const std::vector<Endpoint>& eps,
                   const std::vector<BrokerRow>& rows) {
  std::printf("\nSTAGES (self-time share of the profiled walks, p95 self "
              "latency)\n");
  for (std::size_t i = 0; i < eps.size(); ++i) {
    if (!rows[i].alive) continue;
    const std::string body = http_get(eps[i], "/profile");
    const std::vector<StageRow> stages = parse_stage_rows(body);
    std::printf("  B%-4ld", rows[i].broker);
    if (stages.empty()) {
      std::printf(" profiler off\n");
      continue;
    }
    int shown = 0;
    for (const StageRow& s : stages) {
      if (shown == 5) break;
      if (s.share < 0.005) break;  // tail stages below half a percent
      std::printf("  %s %4.1f%% (p95 %.1fus, %llu calls)", s.stage.c_str(),
                  s.share * 100.0, s.p95_us,
                  static_cast<unsigned long long>(s.calls));
      ++shown;
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool stages = false;
  double interval = 2.0;
  std::vector<Endpoint> eps;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--stages") {
      stages = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval = std::atof(argv[++i]);
    } else {
      const auto colon = arg.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "bad endpoint '%s' (want HOST:PORT)\n",
                     arg.c_str());
        return 2;
      }
      Endpoint ep;
      ep.host = arg.substr(0, colon);
      ep.port = static_cast<std::uint16_t>(std::atoi(arg.c_str() + colon + 1));
      ep.spec = arg;
      eps.push_back(std::move(ep));
    }
  }
  if (eps.empty()) {
    std::fprintf(
        stderr,
        "usage: tmps_top [--once] [--stages] [--interval SECONDS] "
        "HOST:PORT ...\n");
    return 2;
  }

  for (;;) {
    std::vector<BrokerRow> rows;
    bool any_alive = false;
    for (const Endpoint& ep : eps) {
      rows.push_back(poll(ep));
      any_alive = any_alive || rows.back().alive;
    }
    render(eps, rows, once);
    if (stages && any_alive) render_stages(eps, rows);
    if (once) return any_alive ? 0 : 1;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}
