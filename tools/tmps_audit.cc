// Offline movement-invariant auditor: replays the observability streams a
// run left behind — trace JSONL (movement spans + per-hop events) and,
// optionally, routing snapshots — through obs::Auditor and reports every
// invariant violation with the offending TxnId and broker.
//
// Bench sweeps append multiple runs into one file (each record carries a
// "run" label and TxnIds repeat across runs), so lines are grouped by run
// and each run gets its own Auditor.
//
// Usage:  tmps_audit <trace.jsonl> [--snapshots snaps.jsonl] [--quiet]
//
// Exit status: 0 when every run is clean, 1 when any invariant was violated,
// 2 on usage/IO errors.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit.h"
#include "obs/json_read.h"

namespace {

// Buckets a JSONL file's lines by their "run" label (empty = unlabeled).
bool bucket_by_run(const std::string& path,
                   std::map<std::string, std::string>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string run;
    if (auto obj = tmps::obs::parse_json_line(line)) run = obj->str("run");
    out[run] += line;
    out[run] += '\n';
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string snapshot_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--snapshots" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: tmps_audit <trace.jsonl> [--snapshots snaps.jsonl] "
                 "[--quiet]\n");
    return 2;
  }

  std::map<std::string, std::string> trace_runs;
  std::map<std::string, std::string> snap_runs;
  if (!bucket_by_run(trace_path, trace_runs)) return 2;
  if (!snapshot_path.empty() && !bucket_by_run(snapshot_path, snap_runs))
    return 2;
  // Runs that only produced snapshots still get audited.
  for (const auto& [run, lines] : snap_runs) trace_runs.try_emplace(run);

  std::size_t total_violations = 0;
  std::size_t total_movements = 0;
  for (const auto& [run, lines] : trace_runs) {
    tmps::obs::Auditor auditor;
    std::istringstream trace(lines);
    auditor.ingest_trace_stream(trace);
    if (auto it = snap_runs.find(run); it != snap_runs.end()) {
      std::istringstream snaps(it->second);
      auditor.ingest_snapshot_stream(snaps);
    }
    const tmps::obs::AuditReport report = auditor.finish();
    total_violations += report.violations.size();
    total_movements += report.movements_checked;
    if (!quiet || !report.clean()) {
      std::printf("== run %s ==\n", run.empty() ? "(unlabeled)" : run.c_str());
      std::fputs(report.summary().c_str(), stdout);
    }
  }

  std::printf("audited %zu movement(s) across %zu run(s): %zu violation(s)\n",
              total_movements, trace_runs.size(), total_violations);
  return total_violations == 0 ? 0 : 1;
}
