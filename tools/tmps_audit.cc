// Offline movement-invariant auditor: replays the observability streams a
// run left behind — trace JSONL (movement spans + per-hop events) and,
// optionally, routing snapshots — through obs::Auditor and reports every
// invariant violation with the offending TxnId and broker.
//
// Bench sweeps append multiple runs into one file (each record carries a
// "run" label and TxnIds repeat across runs), so lines are grouped by run
// and each run gets its own Auditor.
//
// Usage:  tmps_audit <trace.jsonl> [--snapshots snaps.jsonl]
//                    [--repair-rounds] [--quiet]
//
// --repair-rounds additionally aggregates the anti-entropy repair loop's
// `repair:round` trace events into a per-broker activity table (sweep
// rounds run, corrective ops applied) per run — the offline counterpart of
// the live `GET /repair` admin endpoint.
//
// Exit status: 0 when every run is clean, 1 when any invariant was violated,
// 2 on usage/IO errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/audit.h"
#include "obs/json_read.h"

namespace {

// Buckets a JSONL file's lines by their "run" label (empty = unlabeled).
bool bucket_by_run(const std::string& path,
                   std::map<std::string, std::string>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string run;
    if (auto obj = tmps::obs::parse_json_line(line)) run = obj->str("run");
    out[run] += line;
    out[run] += '\n';
  }
  return true;
}

// Per-broker repair-loop activity, aggregated from `repair:round` events.
struct RepairActivity {
  std::uint64_t rounds = 0;  // highest sweep round seen
  std::uint64_t ops = 0;     // corrective ops summed across rounds
};

// Folds one run's trace lines into broker -> activity; empty when the run
// had no repair loop (or tracing compiled out).
std::map<std::uint64_t, RepairActivity> repair_rounds_of(
    const std::string& lines) {
  std::map<std::uint64_t, RepairActivity> out;
  std::istringstream in(lines);
  std::string line;
  while (std::getline(in, line)) {
    auto obj = tmps::obs::parse_json_line(line);
    if (!obj || obj->str("name") != "repair:round") continue;
    auto attrs = obj->objects.find("attrs");
    if (attrs == obj->objects.end()) continue;
    const auto& a = attrs->second;
    auto field = [&a](const char* k) -> std::uint64_t {
      auto it = a.find(k);
      return it == a.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
    };
    RepairActivity& act = out[field("broker")];
    act.rounds = std::max(act.rounds, field("round") + 1);
    act.ops += field("ops");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string snapshot_path;
  bool quiet = false;
  bool repair_rounds = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--snapshots" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--repair-rounds") {
      repair_rounds = true;
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (trace_path.empty()) {
      trace_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (trace_path.empty()) {
    std::fprintf(stderr,
                 "usage: tmps_audit <trace.jsonl> [--snapshots snaps.jsonl] "
                 "[--repair-rounds] [--quiet]\n");
    return 2;
  }

  std::map<std::string, std::string> trace_runs;
  std::map<std::string, std::string> snap_runs;
  if (!bucket_by_run(trace_path, trace_runs)) return 2;
  if (!snapshot_path.empty() && !bucket_by_run(snapshot_path, snap_runs))
    return 2;
  // Runs that only produced snapshots still get audited.
  for (const auto& [run, lines] : snap_runs) trace_runs.try_emplace(run);

  std::size_t total_violations = 0;
  std::size_t total_movements = 0;
  for (const auto& [run, lines] : trace_runs) {
    tmps::obs::Auditor auditor;
    std::istringstream trace(lines);
    auditor.ingest_trace_stream(trace);
    if (auto it = snap_runs.find(run); it != snap_runs.end()) {
      std::istringstream snaps(it->second);
      auditor.ingest_snapshot_stream(snaps);
    }
    const tmps::obs::AuditReport report = auditor.finish();
    total_violations += report.violations.size();
    total_movements += report.movements_checked;
    if (!quiet || !report.clean()) {
      std::printf("== run %s ==\n", run.empty() ? "(unlabeled)" : run.c_str());
      std::fputs(report.summary().c_str(), stdout);
    }
    if (repair_rounds) {
      const auto activity = repair_rounds_of(lines);
      if (quiet && report.clean()) continue;
      if (activity.empty()) {
        std::printf("repair: no repair:round events in run %s\n",
                    run.empty() ? "(unlabeled)" : run.c_str());
        continue;
      }
      std::printf("repair rounds (run %s):\n",
                  run.empty() ? "(unlabeled)" : run.c_str());
      std::printf("  %6s %8s %8s\n", "BROKER", "ROUNDS", "OPS");
      for (const auto& [broker, act] : activity) {
        std::printf("  %6llu %8llu %8llu\n",
                    static_cast<unsigned long long>(broker),
                    static_cast<unsigned long long>(act.rounds),
                    static_cast<unsigned long long>(act.ops));
      }
    }
  }

  std::printf("audited %zu movement(s) across %zu run(s): %zu violation(s)\n",
              total_movements, trace_runs.size(), total_violations);
  return total_violations == 0 ? 0 : 1;
}
