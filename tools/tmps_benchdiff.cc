// tmps_benchdiff — the perf-regression observatory's comparator.
//
// Diffs BENCH_*.json files (bench_json.h shape) metric by metric and exits
// nonzero when a gated metric regressed beyond its noise floor, so a CI leg
// can hold the line against committed baselines:
//
//   tmps_benchdiff BASELINE.json CURRENT.json
//   tmps_benchdiff --baselines DIR CURRENT.json...   (baseline = DIR/<name>)
//
// Rows are keyed by their identity fields (every string field plus the
// known sweep axes like clients/brokers/hops), so sweeps pair up row by row
// regardless of order. Each metric carries a direction and a noise floor:
//
//   * simulation metrics (lat_*_ms, dlv_*_ms, msgs_per_movement, message
//     and loss counts) run on the simulated clock and are deterministic per
//     seed — they gate, with small floors for log-bucket interpolation;
//   * wall-clock metrics (ns_per_*, real/cpu time, speedups, shares) vary
//     with the machine — reported as advisory, never failing;
//   * loss/duplicate counts gate with a zero floor: any increase fails.
//
// Latency percentiles of a row whose `samples` count is below
// --min-samples (default 20) are advisory too: a single-movement quick run
// has p50 == p99 == max, which says nothing about a regression.
//
// The two files must agree on mode and config (the run parameters recorded
// by the bench); a mismatch is a usage error (exit 2) unless --force, so a
// quick-mode run is never judged against a full-mode baseline.
//
// Exit: 0 clean, 1 regression, 2 usage/parse/config-mismatch.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json_read.h"

namespace {

using tmps::obs::JsonObject;
using Flat = JsonObject::Flat;

struct BenchFile {
  std::string path;
  std::string bench;
  std::string mode;
  Flat config;
  std::vector<Flat> rows;
};

std::optional<BenchFile> load(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "tmps_benchdiff: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream joined;
  std::string line;
  while (std::getline(is, line)) joined << line;
  const auto obj = tmps::obs::parse_json_line(joined.str());
  if (!obj) {
    std::fprintf(stderr, "tmps_benchdiff: %s: malformed JSON\n", path.c_str());
    return std::nullopt;
  }
  BenchFile f;
  f.path = path;
  f.bench = obj->str("bench");
  f.mode = obj->str("mode");
  if (auto it = obj->objects.find("config"); it != obj->objects.end()) {
    f.config = it->second;
  }
  if (auto it = obj->object_arrays.find("rows");
      it != obj->object_arrays.end()) {
    f.rows = it->second;
  }
  return f;
}

bool is_number(const std::string& s) {
  if (s.empty() || s == "true" || s == "false" || s == "null") return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Numeric fields that are sweep axes (row identity), not metrics.
const char* const kAxisKeys[] = {
    "clients",    "movers",     "brokers",       "hops",
    "subs",       "queries",    "t0_s",          "t1_s",
    "pause_s",    "seed",       "churn_interval", "churn_interval_s",
    "sub_proc_ms", "rate",      "family",        "iterations_requested",
};

bool is_axis(const std::string& key) {
  for (const char* a : kAxisKeys) {
    if (key == a) return true;
  }
  return false;
}

/// The identity of a row: every string/bool field plus the known axes.
std::string row_key(const Flat& row) {
  std::string key;
  for (const auto& [k, v] : row) {
    if (!is_number(v) || is_axis(k)) {
      key += k;
      key += '=';
      key += v;
      key += ';';
    }
  }
  return key;
}

bool has_suffix(const std::string& s, const char* suf) {
  const std::size_t n = std::strlen(suf);
  return s.size() >= n && s.compare(s.size() - n, n, suf) == 0;
}
bool has_prefix(const std::string& s, const char* pre) {
  return s.rfind(pre, 0) == 0;
}

enum class Direction { kHigherIsWorse, kLowerIsWorse, kAnyChange };

struct Rule {
  Direction dir = Direction::kHigherIsWorse;
  double rel_floor = 0.02;  ///< ignore |delta| below this fraction of base
  double abs_floor = 0.0;   ///< ...and below this absolute amount
  bool advisory = false;    ///< report but never fail
};

/// Metric classification. Wall-clock metrics never gate — only the
/// deterministic simulation outputs hold the line.
Rule rule_for(const std::string& key) {
  // Wall-clock / machine-dependent: advisory.
  if (has_prefix(key, "ns_per_") || has_suffix(key, "_us") ||
      key == "real_time" || key == "cpu_time" || key == "items_per_second" ||
      key == "iterations" || key == "speedup" || has_suffix(key, "_pct") ||
      has_suffix(key, "_share") || key == "profiled_walks") {
    return {Direction::kHigherIsWorse, 0.10, 0.0, true};
  }
  // Spread of a latency population: advisory (informative, noisy).
  if (has_suffix(key, "_stddev_ms")) {
    return {Direction::kHigherIsWorse, 0.10, 0.0, true};
  }
  // Violation counts: any increase is a failure.
  if (key == "duplicates" || has_suffix(key, "_losses")) {
    return {Direction::kHigherIsWorse, 0.0, 0.0, false};
  }
  // Throughput-ish: losing work is the regression.
  if (key == "movements" || key == "deliveries" || key == "samples" ||
      has_suffix(key, "_committed") || has_suffix(key, "_expected")) {
    return {Direction::kLowerIsWorse, 0.02, 0.999, false};
  }
  // Latency / message-cost metrics (simulated clock: deterministic).
  if (has_prefix(key, "lat_") || has_prefix(key, "dlv_")) {
    return {Direction::kHigherIsWorse, 0.02, 0.01, false};
  }
  if (key == "msgs_per_movement") {
    return {Direction::kHigherIsWorse, 0.02, 0.5, false};
  }
  if (key == "total_messages") {
    return {Direction::kHigherIsWorse, 0.02, 10.0, false};
  }
  // Load-balance ratios and anything unrecognised: gate gently in both
  // directions — an unexplained change in a deterministic output deserves
  // a look, but new metric columns should not hard-fail old baselines.
  return {Direction::kAnyChange, 0.05, 0.01, true};
}

struct Options {
  double min_samples = 20;
  bool force = false;
  bool verbose = false;
};

struct Counters {
  int gated_regressions = 0;
  int advisories = 0;
  int metrics_compared = 0;
};

void diff_rows(const std::string& key, const Flat& base, const Flat& cur,
               const Options& opt, Counters& c) {
  // Population sizes behind the percentile metrics: movement latencies
  // (lat_*) are computed over `samples` movements, delivery latencies
  // (dlv_*) over `deliveries` publications. Rows that omit the count are
  // assumed well-powered.
  const auto population = [&](const char* field) {
    auto it = cur.find(field);
    return it != cur.end() ? std::strtod(it->second.c_str(), nullptr) : 1e18;
  };
  const double lat_samples = population("samples");
  const double dlv_samples = population("deliveries");
  for (const auto& [k, bv] : base) {
    if (!is_number(bv) || is_axis(k)) continue;
    auto it = cur.find(k);
    if (it == cur.end()) {
      std::printf("  [advisory] %s%s: metric missing in current run\n",
                  key.c_str(), k.c_str());
      ++c.advisories;
      continue;
    }
    if (!is_number(it->second)) continue;
    const double b = std::strtod(bv.c_str(), nullptr);
    const double v = std::strtod(it->second.c_str(), nullptr);
    ++c.metrics_compared;
    Rule rule = rule_for(k);
    // Percentiles from an underpowered population say nothing — advisory.
    const double samples = has_prefix(k, "dlv_") ? dlv_samples : lat_samples;
    const bool underpowered = (has_prefix(k, "lat_") || has_prefix(k, "dlv_")) &&
                              samples < opt.min_samples;
    if (underpowered) rule.advisory = true;
    const double delta = v - b;
    const double rel = b != 0.0 ? std::fabs(delta) / std::fabs(b)
                                : (delta == 0.0 ? 0.0 : 1e18);
    const bool beyond_floor =
        rel > rule.rel_floor && std::fabs(delta) > rule.abs_floor;
    if (!beyond_floor) {
      if (opt.verbose) {
        std::printf("  [ok]       %s%s: %g -> %g\n", key.c_str(), k.c_str(),
                    b, v);
      }
      continue;
    }
    const bool worse = rule.dir == Direction::kAnyChange ||
                       (rule.dir == Direction::kHigherIsWorse ? delta > 0
                                                              : delta < 0);
    if (!worse) {
      if (opt.verbose) {
        std::printf("  [improved] %s%s: %g -> %g (%+.1f%%)\n", key.c_str(),
                    k.c_str(), b, v, b != 0 ? delta / b * 100.0 : 0.0);
      }
      continue;
    }
    const char* tag = rule.advisory ? "[advisory]" : "[REGRESSION]";
    std::printf("  %s %s%s: %g -> %g (%+.1f%%)%s\n", tag, key.c_str(),
                k.c_str(), b, v, b != 0 ? delta / b * 100.0 : 0.0,
                underpowered ? "  (underpowered: samples < min)" : "");
    if (rule.advisory) {
      ++c.advisories;
    } else {
      ++c.gated_regressions;
    }
  }
}

/// Diffs one (baseline, current) pair. Returns exit code contribution.
int diff_files(const BenchFile& base, const BenchFile& cur,
               const Options& opt, Counters& c) {
  std::printf("%s: %s vs %s\n", cur.bench.c_str(), base.path.c_str(),
              cur.path.c_str());
  if (!opt.force && (base.mode != cur.mode || base.config != cur.config)) {
    std::fprintf(stderr,
                 "tmps_benchdiff: %s: config/mode mismatch (baseline mode "
                 "'%s', current '%s') — results are not comparable; rerun "
                 "with matching parameters or pass --force\n",
                 cur.bench.c_str(), base.mode.c_str(), cur.mode.c_str());
    for (const auto& [k, v] : base.config) {
      auto it = cur.config.find(k);
      if (it == cur.config.end() || it->second != v) {
        std::fprintf(stderr, "  config %s: baseline %s, current %s\n",
                     k.c_str(), v.c_str(),
                     it == cur.config.end() ? "<missing>" : it->second.c_str());
      }
    }
    for (const auto& [k, v] : cur.config) {
      if (!base.config.count(k)) {
        std::fprintf(stderr, "  config %s: baseline <missing>, current %s\n",
                     k.c_str(), v.c_str());
      }
    }
    return 2;
  }

  std::map<std::string, const Flat*> base_rows;
  for (const Flat& r : base.rows) base_rows[row_key(r)] = &r;
  std::set<std::string> seen;
  int rc = 0;
  for (const Flat& r : cur.rows) {
    const std::string key = row_key(r);
    seen.insert(key);
    auto it = base_rows.find(key);
    if (it == base_rows.end()) {
      std::printf("  [advisory] new row not in baseline: %s\n", key.c_str());
      ++c.advisories;
      continue;
    }
    diff_rows(key, *it->second, r, opt, c);
  }
  for (const auto& [key, row] : base_rows) {
    (void)row;
    if (!seen.count(key)) {
      std::printf("  [REGRESSION] baseline row missing from current run: %s\n",
                  key.c_str());
      ++c.gated_regressions;
      rc = 1;
    }
  }
  return rc;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: tmps_benchdiff [options] BASELINE.json CURRENT.json\n"
      "       tmps_benchdiff [options] --baselines DIR CURRENT.json...\n"
      "options:\n"
      "  --baselines DIR   compare each CURRENT against DIR/<basename>\n"
      "  --min-samples N   lat/dlv percentiles gate only with >= N samples "
      "(default 20)\n"
      "  --force           diff despite config/mode mismatch\n"
      "  --verbose         also print unchanged/improved metrics\n"
      "exit: 0 clean, 1 regression, 2 usage/parse/config mismatch\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string baselines_dir;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--baselines" && i + 1 < argc) {
      baselines_dir = argv[++i];
    } else if (a == "--min-samples" && i + 1 < argc) {
      opt.min_samples = std::atof(argv[++i]);
    } else if (a == "--force") {
      opt.force = true;
    } else if (a == "--verbose") {
      opt.verbose = true;
    } else if (a == "--help" || a[0] == '-') {
      return usage();
    } else {
      files.push_back(a);
    }
  }

  std::vector<std::pair<std::string, std::string>> pairs;  // baseline, current
  if (!baselines_dir.empty()) {
    if (files.empty()) return usage();
    for (const std::string& f : files) {
      pairs.emplace_back(baselines_dir + "/" + basename_of(f), f);
    }
  } else {
    if (files.size() != 2) return usage();
    pairs.emplace_back(files[0], files[1]);
  }

  Counters c;
  int rc = 0;
  for (const auto& [bpath, cpath] : pairs) {
    const auto base = load(bpath);
    const auto cur = load(cpath);
    if (!base || !cur) return 2;
    const int r = diff_files(*base, *cur, opt, c);
    rc = std::max(rc, r);
  }
  if (c.gated_regressions > 0) rc = std::max(rc, 1);
  std::printf(
      "benchdiff: %d metrics compared, %d regression(s), %d advisory note(s)"
      " -> %s\n",
      c.metrics_compared, c.gated_regressions, c.advisories,
      rc == 0 ? "clean" : rc == 1 ? "REGRESSED" : "NOT COMPARABLE");
  return rc;
}
