// tmps_sim — command-line experiment runner.
//
// Runs one movement-scenario simulation with the paper's experimental setup
// and prints the metrics its figures report. Useful for exploring parameter
// combinations the bundled figure benches do not cover.
//
//   tmps_sim [--protocol reconfig|covering] [--workload covered|chained|
//            tree|distinct|random] [--clients N] [--movers N]
//            [--duration SECONDS] [--pause SECONDS] [--wan]
//            [--no-covering-opt] [--balance] [--seed N] [--csv]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "control/scenario_control.h"
#include "core/scenario.h"

using namespace tmps;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --protocol reconfig|covering   movement protocol (default reconfig)\n"
      "  --workload covered|chained|tree|distinct|random (default covered)\n"
      "  --clients N                    total subscribers (default 400)\n"
      "  --movers N                     moving subscribers (default all)\n"
      "  --duration SECONDS             simulated time (default 150)\n"
      "  --warmup SECONDS               excluded from summaries (default 40)\n"
      "  --pause SECONDS                pause between moves (default 10)\n"
      "  --wan                          PlanetLab-like network profile\n"
      "  --no-covering-opt              disable the covering optimization\n"
      "  --balance                      run the load balancer (TMPS_BALANCE=1)\n"
      "  --seed N                       RNG seed (default 7)\n"
      "  --csv                          machine-readable one-line output\n",
      argv0);
  std::exit(2);
}

WorkloadKind parse_workload(const std::string& s, const char* argv0) {
  if (s == "covered") return WorkloadKind::Covered;
  if (s == "chained") return WorkloadKind::Chained;
  if (s == "tree") return WorkloadKind::Tree;
  if (s == "distinct") return WorkloadKind::Distinct;
  if (s == "random") return WorkloadKind::Random;
  usage(argv0);
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig cfg;
  cfg.duration = 150.0;
  cfg.warmup = 40.0;
  bool csv = false;
  bool covering_opt_forced_off = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--protocol") {
      const std::string v = next();
      if (v == "reconfig") {
        cfg.mobility.protocol = MobilityProtocol::Reconfiguration;
      } else if (v == "covering") {
        cfg.mobility.protocol = MobilityProtocol::Traditional;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--workload") {
      cfg.workload = parse_workload(next(), argv[0]);
    } else if (arg == "--clients") {
      cfg.total_clients = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--movers") {
      cfg.moving_clients = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (arg == "--duration") {
      cfg.duration = std::atof(next());
    } else if (arg == "--warmup") {
      cfg.warmup = std::atof(next());
    } else if (arg == "--pause") {
      cfg.pause_between_moves = std::atof(next());
    } else if (arg == "--wan") {
      cfg.net = NetworkProfile::planetlab();
    } else if (arg == "--no-covering-opt") {
      covering_opt_forced_off = true;
    } else if (arg == "--balance") {
      cfg.broker.control.enabled = true;
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--csv") {
      csv = true;
    } else {
      usage(argv[0]);
    }
  }

  // Covering quenching is only sound under the covering protocol (see
  // DESIGN.md §5a).
  const bool covering_opt =
      cfg.mobility.protocol == MobilityProtocol::Traditional &&
      !covering_opt_forced_off;
  cfg.broker.subscription_covering = covering_opt;
  cfg.broker.advertisement_covering = covering_opt;

  // Env switches (TMPS_BALANCE / TMPS_TRACE / TMPS_AUDIT) on top of flags.
  cfg.broker = BrokerConfig::from_env(cfg.broker);
  const auto balancer = control::install_balancer(cfg);

  Scenario s(cfg);
  s.run();

  const Summary lat = s.latency();
  const char* proto = to_string(cfg.mobility.protocol);
  if (csv) {
    std::printf(
        "protocol,workload,clients,movers,duration_s,lat_mean_ms,lat_max_ms,"
        "lat_stddev_ms,msgs_per_move,movements,total_msgs,duplicates\n");
    std::printf("%s,%s,%u,%u,%.0f,%.3f,%.3f,%.3f,%.2f,%llu,%llu,%llu\n",
                proto, to_string(cfg.workload), cfg.total_clients,
                std::min(cfg.moving_clients, cfg.total_clients), cfg.duration,
                lat.mean() * 1e3, lat.max() * 1e3, lat.stddev() * 1e3,
                s.messages_per_movement(),
                static_cast<unsigned long long>(s.movements()),
                static_cast<unsigned long long>(s.stats().total_messages()),
                static_cast<unsigned long long>(s.audit().duplicates));
    return 0;
  }

  std::printf("tmps_sim: %s protocol, %s workload, %u clients (%u moving)\n",
              proto, to_string(cfg.workload), cfg.total_clients,
              std::min(cfg.moving_clients, cfg.total_clients));
  std::printf("  simulated %.0f s (warmup %.0f s), covering optimization %s\n",
              cfg.duration, cfg.warmup, covering_opt ? "on" : "off");
  std::printf("  movement latency: mean %.1f ms, max %.1f ms, stddev %.1f ms\n",
              lat.mean() * 1e3, lat.max() * 1e3, lat.stddev() * 1e3);
  std::printf("  movements completed: %llu (%.1f msgs per movement)\n",
              static_cast<unsigned long long>(s.movements()),
              s.messages_per_movement());
  std::printf("  network traffic: %llu messages, deliveries: %llu, "
              "duplicates: %llu\n",
              static_cast<unsigned long long>(s.stats().total_messages()),
              static_cast<unsigned long long>(s.audit().delivered),
              static_cast<unsigned long long>(s.audit().duplicates));
  std::printf("  notification losses: movers %llu/%llu, stationary %llu/%llu\n",
              static_cast<unsigned long long>(s.audit().mover_losses),
              static_cast<unsigned long long>(s.audit().mover_expected),
              static_cast<unsigned long long>(s.audit().stationary_losses),
              static_cast<unsigned long long>(s.audit().stationary_expected));
  if (balancer->balancer) {
    const auto& st = balancer->balancer->state();
    std::printf("  balancer: ratio %.2f, movements %llu committed / %llu "
                "aborted / %llu refused\n",
                st.imbalance_ratio,
                static_cast<unsigned long long>(st.committed),
                static_cast<unsigned long long>(st.aborted),
                static_cast<unsigned long long>(st.refused));
  }
  return 0;
}
