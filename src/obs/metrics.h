// Lock-cheap metrics primitives and the per-process registry brokers,
// transports and the mobility engine register into.
//
// Registration (name + labels -> metric object) takes a mutex and returns a
// stable reference; instrumented code caches that reference once and then
// records through plain atomic operations — no lock, no allocation, no map
// lookup on the hot path. Histograms use the fixed log-bucketing of
// log_buckets.h so p50/p95/p99 fall out of the bucket counts without storing
// samples.
//
// Everything is safe for concurrent recording (tcp/inproc transports run one
// thread per broker); `write_jsonl` takes a consistent-enough snapshot for
// reporting (counters may be mid-burst, which is fine for monitoring data).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/log_buckets.h"

namespace tmps::obs {

/// Label set attached to a metric, e.g. {{"broker", "3"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    // CAS loop instead of fetch_add(double): portable across libstdc++
    // versions and clean under TSan.
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over the fixed log-bucket grid. `observe` is wait-free: one
/// bucket increment plus count/sum updates.
class Histogram {
 public:
  void observe(double v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }
  std::uint64_t bucket_count(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Bulk-merge pre-bucketed observations (e.g. a profiler slab flush):
  /// adds `n` to bucket `i` for every (i, n) pair, bumps the count by the
  /// pair total and the sum by `sum_delta`. Same relaxed-atomic discipline
  /// as observe(), so merging concurrently with recording is safe.
  void merge(const std::vector<std::pair<int, std::uint64_t>>& bucket_deltas,
             double sum_delta);

  /// Bucket-interpolated quantile (see log_buckets.h for error bounds).
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { Counter, Gauge, Histogram };

/// Point-in-time copy of one metric, decoupled from the registry lock so
/// formatting/serving can happen without blocking hot-path registration.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;  ///< counter value, or histogram count
  double value = 0.0;       ///< gauge value, or histogram sum
  /// Non-empty histogram buckets as (bucket index, count), ascending.
  std::vector<std::pair<int, std::uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference is stable for the registry's
  /// lifetime; repeated calls with equal (name, labels) return the same
  /// object, so concurrent registration from several brokers is safe.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name, Labels labels = {});

  /// Copies every registered metric (name/labels + current atomic values)
  /// under the lock and returns; callers format, diff or serve the samples
  /// without blocking registration. Samples arrive in registry (name, label)
  /// order.
  std::vector<MetricSample> snapshot() const;

  /// One JSON object per metric. `run` labels the emitting experiment so a
  /// multi-run bench can append into one file.
  void write_jsonl(std::ostream& os, std::string_view run = {}) const;

  /// Prometheus text exposition format (the `/metrics` endpoint). Counters
  /// and gauges emit one sample; histograms emit cumulative `_bucket{le=}`
  /// samples over the log-bucket grid plus `_sum`/`_count`.
  void write_prometheus(std::ostream& os) const;

  /// Snapshot of a counter's value; 0 when never registered (test helper).
  std::uint64_t counter_value(std::string_view name, Labels labels = {}) const;

  std::size_t size() const;

 private:
  using Kind = MetricKind;
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static std::string key_of(std::string_view name, const Labels& labels);
  Entry& find_or_create(std::string_view name, Labels labels, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Bucket-interpolated quantile over a histogram MetricSample (0 for
/// counters/gauges/empty histograms).
double sample_percentile(const MetricSample& s, double q);

}  // namespace tmps::obs
