// Minimal JSON-lines writing helpers shared by the trace and metrics sinks.
//
// The observability layer emits flat objects (strings, numbers, one nested
// string->string map), so a full JSON library is unnecessary; these helpers
// only guarantee valid escaping and locale-independent number formatting.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace tmps::obs {

/// Appends `s` to `out` as a quoted, escaped JSON string.
inline void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Formats a double with enough digits to round-trip, without locale
/// surprises ("%.17g" is exact but noisy; 12 significant digits are plenty
/// for second-scale timestamps with nanosecond resolution).
inline void append_json_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

inline void append_json_number(std::string& out, std::uint64_t v) {
  out += std::to_string(v);
}

}  // namespace tmps::obs
