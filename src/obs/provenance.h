// Publication provenance: a compact tag stamped on a publication at its
// origin broker and carried hop-by-hop through the overlay, so the data
// plane the paper measures (end-to-end delivery latency, figs 8-13) can be
// attributed per hop instead of observed only at the edges.
//
// The tag travels inside Message (pubsub/messages.h) and over the wire
// (pubsub/codec.cc), so this header is deliberately free of any obs-library
// dependency: tmps_pubsub includes it without linking tmps_obs.
//
// Sampling is deterministic: the trace id is a hash of the PublicationId,
// and a publication is sampled iff `hash % rate == 0` — every broker (and
// every rerun of a deterministic scenario) agrees on which publications are
// traced, without coordination or per-message randomness. The per-hop trace
// events are additionally gated on the host tracer being enabled, so the
// always-on cost of a non-zero rate is one hash and one modulo at origin.
#pragma once

#include <cstdint>

#include "common/ids.h"

namespace tmps::obs {

/// Publication trace ids live in the upper half of the TxnId space so they
/// can share the Tracer (and trace_inspect waterfalls) with movement
/// transactions without collision: movement TxnIds are small sequence
/// numbers and never have the top bit set.
inline constexpr std::uint64_t kPubTraceBit = 1ull << 63;

/// splitmix64 finalizer: cheap, well-mixed, stable across platforms.
inline constexpr std::uint64_t pub_hash(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Trace id of a publication (top bit forced on, see kPubTraceBit).
inline constexpr std::uint64_t pub_trace_id(PublicationId id) {
  return pub_hash(id.client * 0x100000001B3ull + id.seq) | kPubTraceBit;
}

/// Deterministic 1-in-`rate` sampling decision. rate == 0 never samples;
/// rate == 1 samples everything.
inline constexpr bool pub_sampled(std::uint64_t trace_id, std::uint32_t rate) {
  return rate != 0 && (trace_id & ~kPubTraceBit) % rate == 0;
}

/// The provenance a publication carries through the overlay. ~26 bytes on
/// the wire; stamped once at the origin broker, updated at each forwarding
/// hop.
struct ProvenanceTag {
  /// Trace id (pub_trace_id of the publication).
  std::uint64_t trace = 0;
  /// Host-clock time at the origin broker (simulated or wall seconds);
  /// end-to-end delivery latency is delivery time minus this.
  double origin_time = 0.0;
  /// Host-clock time of the previous forwarding hop, so each hop can report
  /// its own queue+link+match share of the end-to-end latency.
  double last_hop_time = 0.0;
  /// Broker hops traversed so far (0 at the origin broker).
  std::uint8_t hops = 0;
  /// Whether this publication emits per-hop trace events (see pub_sampled).
  bool sampled = false;

  friend bool operator==(const ProvenanceTag&,
                         const ProvenanceTag&) = default;
};

/// Stamps a fresh tag at the origin broker.
inline ProvenanceTag make_provenance(PublicationId id, double now,
                                     std::uint32_t sample_rate) {
  ProvenanceTag t;
  t.trace = pub_trace_id(id);
  t.origin_time = now;
  t.last_hop_time = now;
  t.hops = 0;
  t.sampled = pub_sampled(t.trace, sample_rate);
  return t;
}

}  // namespace tmps::obs
