#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <utility>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define TMPS_PROF_HAVE_RDTSC 1
#endif

#include "obs/metrics.h"

namespace tmps::obs {

namespace {

std::atomic<StageProfiler::TickFn> g_clock_override{nullptr};

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Probe timestamps are raw TSC ticks on x86-64 (~3x cheaper than a
// steady_clock read, and the walk cost is clock-dominated), converted to ns
// at record time with a factor calibrated once per process against
// steady_clock. Elsewhere, and under a test clock override, ticks are ns
// and the factor is 1.
double g_calibrated_ns_per_tick = 1.0;
std::once_flag g_calibrate_once;

void calibrate_ticks() {
#ifdef TMPS_PROF_HAVE_RDTSC
  const std::uint64_t t0 = steady_now_ns();
  const std::uint64_t c0 = __rdtsc();
  // ~1 ms window: calibration error well under the scheduler noise any
  // wall-clock profile carries anyway.
  while (steady_now_ns() - t0 < 1000000) {
  }
  const std::uint64_t t1 = steady_now_ns();
  const std::uint64_t c1 = __rdtsc();
  if (c1 > c0) {
    g_calibrated_ns_per_tick =
        static_cast<double>(t1 - t0) / static_cast<double>(c1 - c0);
  }
#endif
}

inline std::uint64_t probe_ticks() {
  if (StageProfiler::TickFn f =
          g_clock_override.load(std::memory_order_relaxed)) {
    return f();
  }
#ifdef TMPS_PROF_HAVE_RDTSC
  return __rdtsc();
#else
  return steady_now_ns();
#endif
}

inline double ns_per_tick() {
  return g_clock_override.load(std::memory_order_relaxed) != nullptr
             ? 1.0
             : g_calibrated_ns_per_tick;
}

// The probe currently timing on this thread (null outside sampled walks).
// Global — not per profiler — so the common "am I inside a sampled walk?"
// check is one TLS load, no slab lookup.
thread_local StageProbe* t_current = nullptr;

// The unsampled root probe currently suppressing its walk on this thread
// (null when no walk, or the walk is sampled). Nested probes under it stay
// inactive instead of rolling their own sampling dice — otherwise inner
// stages would be sampled more often than roots and per-stage shares would
// skew.
thread_local StageProbe* t_suppressor = nullptr;

// Root-sampling xorshift state. Seeded with a fixed constant: the sequence
// is deterministic per thread, and profiler output never feeds back into
// simulation results, so cross-thread correlation is harmless.
thread_local std::uint64_t t_rng = 0x9e3779b97f4a7c15ULL;

// (profiler id -> slab) cache so sampled roots skip the profiler mutex.
// Keyed by the process-unique profiler id: a destroyed profiler's id is
// never reused, so a stale entry can never match (it is only dead weight
// until evicted). Linear scan — a thread touches few profilers.
struct SlabCacheEntry {
  std::uint64_t id;
  detail::StageSlab* slab;
};
thread_local std::vector<SlabCacheEntry> t_slab_cache;
constexpr std::size_t kSlabCacheCap = 128;

std::atomic<std::uint64_t> g_next_profiler_id{1};

std::uint32_t pow2_mask(std::uint32_t rate) {
  if (rate <= 1) return 0;
  std::uint32_t m = 1;
  while (m < rate && m < (1u << 30)) m <<= 1;
  return m - 1;
}

int self_ns_bucket(std::uint64_t self_ns) {
  return bucket_index(static_cast<double>(self_ns) * 1e-9);
}

}  // namespace

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kPublish: return "publish";
    case Stage::kDecode: return "decode";
    case Stage::kMatch: return "match";
    case Stage::kCoverProbe: return "cover_probe";
    case Stage::kDeltaApply: return "delta_apply";
    case Stage::kEncode: return "encode";
    case Stage::kEnqueue: return "enqueue";
    case Stage::kDeliver: return "deliver";
    case Stage::kFanout: return "fanout";
    case Stage::kRouteUpdate: return "route_update";
    case Stage::kControl: return "control";
  }
  return "unknown";
}

/// Cached MetricsRegistry references, resolved on first flush with a
/// registry so later flushes are lock-free on the registry side.
struct StageProfiler::StageMetrics {
  MetricsRegistry* reg = nullptr;
  struct PerStage {
    Counter* calls = nullptr;
    Counter* self_ns = nullptr;
    Histogram* self_seconds = nullptr;
  };
  std::array<PerStage, kStageCount> stages{};
};

void StageProfiler::set_clock_for_test(TickFn fn) {
  g_clock_override.store(fn, std::memory_order_relaxed);
}

std::uint64_t StageProfiler::now_ns() {
  if (TickFn f = g_clock_override.load(std::memory_order_relaxed)) return f();
  return steady_now_ns();
}

StageProfiler::StageProfiler(std::string broker, std::uint32_t sample_rate)
    : broker_(std::move(broker)),
      id_(g_next_profiler_id.fetch_add(1, std::memory_order_relaxed)),
      sample_mask_(pow2_mask(sample_rate)) {
  std::call_once(g_calibrate_once, calibrate_ticks);
  paths_.push_back(PathInfo{});  // id 0: root sentinel
}

StageProfiler::~StageProfiler() = default;

detail::StageSlab* StageProfiler::slab_for_current_thread() {
  for (const SlabCacheEntry& e : t_slab_cache) {
    if (e.id == id_) return e.slab;
  }
  detail::StageSlab* slab = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    SlabEntry& entry = slabs_[std::this_thread::get_id()];
    if (!entry.slab) entry.slab = std::make_unique<detail::StageSlab>();
    slab = entry.slab.get();
  }
  if (t_slab_cache.size() >= kSlabCacheCap) {
    t_slab_cache.erase(t_slab_cache.begin());
  }
  t_slab_cache.push_back(SlabCacheEntry{id_, slab});
  return slab;
}

bool StageProfiler::sample_hit() {
  if (sample_mask_ == 0) return true;
  std::uint64_t s = t_rng;
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  t_rng = s;
  return (s & sample_mask_) == 0;
}

std::uint16_t StageProfiler::intern_path(std::uint16_t parent, Stage s) {
  const std::size_t key =
      static_cast<std::size_t>(parent) * kStageCount +
      static_cast<std::size_t>(s);
  const std::uint16_t cached =
      path_lookup_[key].load(std::memory_order_acquire);
  if (cached != 0) return static_cast<std::uint16_t>(cached - 1);
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint16_t again = path_lookup_[key].load(std::memory_order_relaxed);
  if (again != 0) return static_cast<std::uint16_t>(again - 1);
  if (paths_.size() >= detail::StageSlab::kMaxPaths) return 0;  // clamp: root
  const auto id = static_cast<std::uint16_t>(paths_.size());
  paths_.push_back(PathInfo{parent, s});
  path_lookup_[key].store(static_cast<std::uint16_t>(id + 1),
                          std::memory_order_release);
  return id;
}

void StageProbe::begin(StageProfiler* prof, Stage stage) {
  StageProbe* cur = t_current;
  std::uint16_t parent_path = 0;
  detail::StageSlab* slab;
  if (cur != nullptr) {
    // Nested probe: timed iff it belongs to the same profiler as the walk
    // in progress. A different profiler's probe under a foreign root stays
    // inactive — attributing its time across books would corrupt both.
    if (cur->prof_ != prof) return;
    slab = cur->slab_;
    parent_ = cur;
    parent_path = cur->path_;
  } else {
    if (t_suppressor != nullptr) return;  // walk declined at its root
    if (!prof->sample_hit()) {
      t_suppressor = this;
      suppressing_ = true;
      return;
    }
    slab = prof->slab_for_current_thread();
  }
  // Timestamp before the remaining bookkeeping: probe machinery is charged
  // to this probe's own window (and, via the parent's child_ticks, excluded
  // from the parent's self time), so the residual "other" bucket of an
  // outer stage measures unprobed code, not the profiler itself.
  start_ticks_ = probe_ticks();
  prof_ = prof;
  slab_ = slab;
  stage_ = stage;
  path_ = prof->intern_path(parent_path, stage);
  t_current = this;
}

void StageProbe::finish() {
  const std::uint64_t end = probe_ticks();
  const std::uint64_t elapsed_t = end > start_ticks_ ? end - start_ticks_ : 0;
  const std::uint64_t self_t =
      elapsed_t > child_ticks_ ? elapsed_t - child_ticks_ : 0;
  const double f = ns_per_tick();
  const auto elapsed =
      static_cast<std::uint64_t>(static_cast<double>(elapsed_t) * f);
  const auto self = static_cast<std::uint64_t>(static_cast<double>(self_t) * f);
  auto& st = slab_->stages[static_cast<std::size_t>(stage_)];
  st.count.fetch_add(1, std::memory_order_relaxed);
  st.total_ns.fetch_add(elapsed, std::memory_order_relaxed);
  st.self_ns.fetch_add(self, std::memory_order_relaxed);
  st.hist[self_ns_bucket(self)].fetch_add(1, std::memory_order_relaxed);
  slab_->path_self_ns[path_].fetch_add(self, std::memory_order_relaxed);
  slab_->path_count[path_].fetch_add(1, std::memory_order_relaxed);
  t_current = parent_;
  if (parent_ != nullptr) {
    // Charge the parent for this probe's full footprint — window plus the
    // recording above (a second clock read) — so probe machinery cannot
    // leak into the parent's self time. The recording tail is charged to
    // nobody's self (under a fake test clock it is zero, so the exact
    // self-partition property still holds in tests).
    parent_->child_ticks_ += probe_ticks() - start_ticks_;
  }
}

void StageProbe::end_suppression() {
  if (t_suppressor == this) t_suppressor = nullptr;
}

void StageProfiler::flush_one_locked(detail::StageSlab& slab,
                                     detail::StageTotals& shadow,
                                     MetricsRegistry* reg) {
  for (int si = 0; si < kStageCount; ++si) {
    auto& cur = slab.stages[si];
    auto& old = shadow.stages[si];
    const std::uint64_t count = cur.count.load(std::memory_order_relaxed);
    const std::uint64_t total = cur.total_ns.load(std::memory_order_relaxed);
    const std::uint64_t self = cur.self_ns.load(std::memory_order_relaxed);
    const std::uint64_t d_count = count - old.count;
    const std::uint64_t d_total = total - old.total_ns;
    const std::uint64_t d_self = self - old.self_ns;
    if (d_count == 0 && d_total == 0) continue;
    old.count = count;
    old.total_ns = total;
    old.self_ns = self;
    auto& agg = aggregate_.stages[si];
    agg.count += d_count;
    agg.total_ns += d_total;
    agg.self_ns += d_self;
    std::vector<std::pair<int, std::uint64_t>> bucket_deltas;
    for (int b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t h = cur.hist[b].load(std::memory_order_relaxed);
      const std::uint64_t d = h - old.hist[b];
      if (d == 0) continue;
      old.hist[b] = h;
      agg.hist[b] += d;
      bucket_deltas.emplace_back(b, d);
    }
    if (reg != nullptr) {
      auto& m = metrics_->stages[si];
      m.calls->inc(d_count);
      m.self_ns->inc(d_self);
      m.self_seconds->merge(bucket_deltas,
                            static_cast<double>(d_self) * 1e-9);
    }
  }
  for (int p = 0; p < detail::StageSlab::kMaxPaths; ++p) {
    const std::uint64_t s = slab.path_self_ns[p].load(std::memory_order_relaxed);
    const std::uint64_t c = slab.path_count[p].load(std::memory_order_relaxed);
    aggregate_.path_self_ns[p] += s - shadow.path_self_ns[p];
    aggregate_.path_count[p] += c - shadow.path_count[p];
    shadow.path_self_ns[p] = s;
    shadow.path_count[p] = c;
  }
}

void StageProfiler::flush(MetricsRegistry* reg) {
  std::lock_guard<std::mutex> lk(mu_);
  if (reg != nullptr && (!metrics_ || metrics_->reg != reg)) {
    metrics_ = std::make_unique<StageMetrics>();
    metrics_->reg = reg;
    for (int si = 0; si < kStageCount; ++si) {
      const Labels labels = {{"broker", broker_},
                             {"stage", stage_name(static_cast<Stage>(si))}};
      auto& m = metrics_->stages[si];
      m.calls = &reg->counter("tmps_stage_calls_total", labels);
      m.self_ns = &reg->counter("tmps_stage_self_ns_total", labels);
      m.self_seconds = &reg->histogram("tmps_stage_self_seconds", labels);
    }
  }
  for (auto& [tid, entry] : slabs_) {
    (void)tid;
    flush_one_locked(*entry.slab, entry.shadow, reg);
  }
}

std::uint64_t StageProfiler::calls(Stage s) const {
  std::lock_guard<std::mutex> lk(mu_);
  return aggregate_.stages[static_cast<std::size_t>(s)].count;
}

std::uint64_t StageProfiler::total_ns(Stage s) const {
  std::lock_guard<std::mutex> lk(mu_);
  return aggregate_.stages[static_cast<std::size_t>(s)].total_ns;
}

std::uint64_t StageProfiler::self_ns(Stage s) const {
  std::lock_guard<std::mutex> lk(mu_);
  return aggregate_.stages[static_cast<std::size_t>(s)].self_ns;
}

double StageProfiler::residual_share(Stage s) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto& st = aggregate_.stages[static_cast<std::size_t>(s)];
  if (st.total_ns == 0) return 0.0;
  return static_cast<double>(st.self_ns) / static_cast<double>(st.total_ns);
}

void StageProfiler::write_ndjson(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t all_self = 0;
  for (const auto& st : aggregate_.stages) all_self += st.self_ns;
  for (int si = 0; si < kStageCount; ++si) {
    const auto& st = aggregate_.stages[si];
    if (st.count == 0) continue;
    const double p50 =
        percentile_from_counts(st.hist.data(), st.count, 0.50) * 1e9;
    const double p95 =
        percentile_from_counts(st.hist.data(), st.count, 0.95) * 1e9;
    const double p99 =
        percentile_from_counts(st.hist.data(), st.count, 0.99) * 1e9;
    os << "{\"broker\":\"" << broker_ << "\",\"stage\":\""
       << stage_name(static_cast<Stage>(si)) << "\",\"calls\":" << st.count
       << ",\"total_ns\":" << st.total_ns << ",\"self_ns\":" << st.self_ns
       << ",\"self_p50_ns\":" << p50 << ",\"self_p95_ns\":" << p95
       << ",\"self_p99_ns\":" << p99 << ",\"share_self\":"
       << (all_self ? static_cast<double>(st.self_ns) /
                          static_cast<double>(all_self)
                    : 0.0)
       << ",\"residual_share\":"
       << (st.total_ns ? static_cast<double>(st.self_ns) /
                             static_cast<double>(st.total_ns)
                       : 0.0)
       << ",\"sample_rate\":" << (sample_mask_ + 1) << "}\n";
  }
}

void StageProfiler::write_collapsed(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t p = 1; p < paths_.size(); ++p) {
    if (aggregate_.path_count[p] == 0) continue;
    // Rebuild root;...;leaf by walking parent links.
    std::vector<const char*> names;
    for (std::uint16_t id = static_cast<std::uint16_t>(p); id != 0;
         id = paths_[id].parent) {
      names.push_back(stage_name(paths_[id].stage));
    }
    os << broker_;
    for (auto it = names.rbegin(); it != names.rend(); ++it) {
      os << ';' << *it;
    }
    os << ' ' << aggregate_.path_self_ns[p] << '\n';
  }
}

}  // namespace tmps::obs
