// Windowed time-series over the metrics registry: a bounded ring of
// fixed-cadence windows, each holding per-series deltas (counters,
// histogram counts and windowed bucket percentiles) and gauge levels.
//
// The cumulative counters in MetricsRegistry answer "how much since start";
// operators watching a live system (tools/tmps_top, GET /timeseries) need
// "how much per second right now". The host ticks the ring on its own
// cadence (simulated or wall clock); each tick snapshots the registry,
// diffs against the previous snapshot, and appends one window. Serving and
// ticking are serialized by a mutex — neither is hot-path.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace tmps::obs {

struct TimePoint {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::Counter;
  /// Counter/histogram-count increment within the window; gauges: 0.
  std::uint64_t delta = 0;
  /// Gauge level at the end of the window; histograms: sum increment.
  double value = 0.0;
  /// Windowed quantiles from the histogram bucket deltas (0 when no
  /// observations fell in the window).
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

struct TimeWindow {
  double t0 = 0;
  double t1 = 0;
  std::vector<TimePoint> points;
};

class TimeSeriesRing {
 public:
  /// Keeps the most recent `capacity` windows over `registry` (borrowed;
  /// must outlive the ring).
  explicit TimeSeriesRing(const MetricsRegistry* registry,
                          std::size_t capacity = 120);

  /// Restricts windows to series whose name starts with one of `prefixes`
  /// (empty = keep everything). Applies to future ticks.
  void set_prefixes(std::vector<std::string> prefixes);

  /// Closes the window [last tick, now) and appends it. The first call only
  /// establishes the baseline snapshot and records no window.
  void tick(double now);

  /// Copy of the buffered windows, oldest first.
  std::vector<TimeWindow> windows() const;
  std::size_t window_count() const;

  /// One JSON object per window (NDJSON; the GET /timeseries body):
  /// {"t0":..,"t1":..,"series":[{"name":..,"labels":{..},"kind":..,
  ///  "delta":..,"rate":..,...},..]}
  void write_ndjson(std::ostream& os) const;

 private:
  struct PrevSeries {
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<std::pair<int, std::uint64_t>> buckets;
  };

  bool selected(const std::string& name) const;

  const MetricsRegistry* registry_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::string> prefixes_;
  bool have_baseline_ = false;
  double last_tick_ = 0;
  std::map<std::string, PrevSeries> prev_;
  std::deque<TimeWindow> windows_;
};

}  // namespace tmps::obs
