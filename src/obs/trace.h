// Structured tracing for movement transactions.
//
// A *span* is a named interval inside a trace (a movement transaction,
// identified by its TxnId); spans nest via parent ids. An *event* is an
// instantaneous record (a reconfiguration hop processed, a covering-induced
// (un)subscription forwarded). Every record carries the TxnId cause tag, so
// traces join against the Stats message attribution by TxnId.
//
// Cost model: tracing is off by default. The TMPS_* macros below check a
// relaxed atomic before doing anything, so a disabled tracer costs one load
// per site; a null tracer costs a pointer compare. Compile with
// -DTMPS_TRACING_ENABLED=0 (CMake: -DTMPS_TRACING=OFF) to remove the sites
// entirely.
//
// Records buffer in memory (the hosts flush them to trace.jsonl at the end
// of a run); the tracer is thread-safe for the multi-threaded transports.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"

namespace tmps::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// Key-value annotations on spans and events; values are pre-formatted.
using Attrs = std::vector<std::pair<std::string, std::string>>;

struct TraceRecord {
  bool is_span = false;
  TxnId trace = kNoTxn;
  SpanId span = kNoSpan;    // 0 for events
  SpanId parent = kNoSpan;  // 0 = root of its trace
  std::string name;
  double t0 = 0;  // events: the timestamp
  double t1 = 0;  // spans: end time; < t0 while still open
  bool open = false;
  Attrs attrs;
};

class Tracer {
 public:
  /// Supplies timestamps (simulated or wall-clock seconds). Defaults to a
  /// constant 0 until the host installs its clock.
  using Clock = std::function<double()>;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_clock(Clock clock);
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Opens a span; returns its id (kNoSpan when tracing is disabled, which
  /// end_span ignores, so callers may store the result unconditionally).
  SpanId begin_span(TxnId trace, std::string_view name,
                    SpanId parent = kNoSpan, Attrs attrs = {});
  /// Closes a span; `extra` attributes are appended (e.g. the outcome).
  /// Unknown or kNoSpan ids are ignored (span opened while disabled).
  void end_span(SpanId span, Attrs extra = {});

  /// Records an instantaneous event in `trace`.
  void event(TxnId trace, std::string_view name, Attrs attrs = {},
             SpanId parent = kNoSpan);

  /// Copy of the buffered records (tests, inspection).
  std::vector<TraceRecord> records() const;
  std::size_t record_count() const;

  /// Writes one JSON object per record and clears the buffer. Spans still
  /// open are emitted with "open":true. `run` labels the emitting
  /// experiment so multi-run benches can append into one file.
  void write_jsonl(std::ostream& os, std::string_view run = {});

  /// Drops all buffered records (e.g. to exclude a setup phase).
  void clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Clock clock_;
  SpanId next_span_ = 0;
  std::vector<TraceRecord> records_;
  /// Open span id -> index into records_.
  std::unordered_map<SpanId, std::size_t> open_spans_;
};

}  // namespace tmps::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. Attrs go last so brace-enclosed initializer lists
// (which the preprocessor would otherwise split at commas) ride in through
// __VA_ARGS__.
// ---------------------------------------------------------------------------

#ifndef TMPS_TRACING_ENABLED
#define TMPS_TRACING_ENABLED 1
#endif

#if TMPS_TRACING_ENABLED
#define TMPS_SPAN_BEGIN(tracer, trace, name, parent, ...)                   \
  ((tracer) != nullptr && (tracer)->enabled()                               \
       ? (tracer)->begin_span((trace), (name),                              \
                              (parent)__VA_OPT__(, ) __VA_ARGS__)           \
       : ::tmps::obs::kNoSpan)
#define TMPS_SPAN_END(tracer, span, ...)                                    \
  do {                                                                      \
    if ((tracer) != nullptr && (span) != ::tmps::obs::kNoSpan) {            \
      (tracer)->end_span((span)__VA_OPT__(, ) __VA_ARGS__);                 \
    }                                                                       \
  } while (0)
#define TMPS_EVENT(tracer, trace, name, ...)                                \
  do {                                                                      \
    if ((tracer) != nullptr && (tracer)->enabled()) {                       \
      (tracer)->event((trace), (name)__VA_OPT__(, ) __VA_ARGS__);           \
    }                                                                       \
  } while (0)
#else
#define TMPS_SPAN_BEGIN(tracer, trace, name, parent, ...) (::tmps::obs::kNoSpan)
#define TMPS_SPAN_END(tracer, span, ...) \
  do {                                   \
  } while (0)
#define TMPS_EVENT(tracer, trace, name, ...) \
  do {                                       \
  } while (0)
#endif
