// Renders the human-readable report tools/trace_inspect prints: per-movement
// waterfalls, phase-latency percentiles, and the hottest overlay links.
// Lives in the obs library (instead of the tool) so tests can drive it over
// in-memory streams.
#pragma once

#include <cstddef>
#include <iosfwd>

namespace tmps::obs {

struct TraceReportOptions {
  /// Max movements to render as waterfalls; negative = all.
  int waterfall_limit = 10;
  /// Rows in the hot-link table.
  int top_links = 10;
};

/// Reads trace JSONL from `trace` (and, when non-null, metrics JSONL from
/// `metrics`) and writes the report to `os`. Returns the number of movement
/// transactions found (0 also when the stream held no trace records at all).
std::size_t write_trace_report(std::istream& trace, std::istream* metrics,
                               std::ostream& os,
                               const TraceReportOptions& opts = {});

}  // namespace tmps::obs
