// Routing-state introspection: a versioned, serializable snapshot of one
// broker's live routing state — SRT/PRT entries with their (shadow) last
// hops, in-flight movement transactions, and hosted clients with parked
// publications/commands.
//
// The snapshot is the observable the paper's safety arguments quantify
// over: "no orphaned routing state after commit/abort" and "every broker on
// RouteS2T agrees on the moved subscription's direction" are statements
// about exactly this data. Hosts expose it three ways: in-process via
// `RuntimeEnv::snapshot_routing`, as JSONL files next to the trace/metrics
// streams, and over HTTP (`/routing`) on the TCP transport.
//
// Everything here is plain strings/integers so the obs layer stays free of
// routing/sim dependencies; hop values use Hop::to_string notation
// ("B3", "C42", "none") and entry ids use EntityId notation ("client:seq").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace tmps::obs {

/// Bumped whenever the JSONL shape changes; readers reject newer versions.
inline constexpr int kSnapshotVersion = 1;

/// One SRT or PRT entry.
struct EntrySnap {
  std::string id;       // EntityId notation "client:seq"
  std::string filter;   // human-readable filter text
  std::string lasthop;  // pre-move hop, Hop notation
  std::vector<std::string> forwarded_to;
  bool has_shadow = false;      // a movement txn installed a post-move hop
  std::string shadow_lasthop;   // empty unless has_shadow
  std::uint64_t shadow_txn = 0;
  bool shadow_only = false;     // entry exists only as shadow state
};

/// One in-flight movement transaction this broker coordinates (as the
/// source or target endpoint of the move).
struct TxnSnap {
  std::uint64_t txn = 0;
  std::string role;   // "source" | "target"
  std::string state;  // protocol-state name, e.g. "Prepare", "Commit"
  std::uint64_t client = 0;
  std::uint32_t peer = 0;  // the other endpoint broker
};

/// One client hosted in this broker's mobile container.
struct ClientSnap {
  std::uint64_t id = 0;
  std::string state;  // ClientState name, e.g. "Started", "PauseMove"
  std::uint64_t buffered_notifications = 0;  // parked during a move
  std::uint64_t queued_commands = 0;
  std::uint64_t subscriptions = 0;
  std::uint64_t advertisements = 0;
};

struct BrokerSnapshot {
  int version = kSnapshotVersion;
  std::string run;  // experiment label, same convention as trace records
  std::uint32_t broker = 0;
  double time = 0;  // host clock when taken
  /// True when taken after the host fully drained (end of run); the
  /// auditor's orphan/quiescence checks only bind on final snapshots.
  bool final_snapshot = false;
  /// Covering optimizations active at this broker; the auditor's
  /// entry-existence checks only bind when covering cannot have pruned
  /// the entry.
  bool sub_covering = false;
  bool adv_covering = false;
  std::vector<std::uint32_t> neighbors;  // overlay links, for topology recovery
  std::vector<EntrySnap> prt;
  std::vector<EntrySnap> srt;
  std::vector<TxnSnap> txns;
  std::vector<ClientSnap> clients;

  /// Any entry (PRT or SRT) still carrying shadow state?
  bool has_pending_shadows() const;

  /// One JSON object, no trailing newline.
  std::string to_jsonl() const;
  void write_jsonl(std::ostream& os) const;  // to_jsonl + '\n'

  /// Parses a line produced by to_jsonl; nullopt on malformed input or a
  /// version newer than kSnapshotVersion.
  static std::optional<BrokerSnapshot> from_jsonl(const std::string& line);
};

/// Loads every parseable snapshot line from a JSONL stream (non-snapshot
/// lines are skipped, so snapshots may share a file with other records).
std::vector<BrokerSnapshot> read_snapshots(std::istream& is);

}  // namespace tmps::obs
