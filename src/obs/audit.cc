#include "obs/audit.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <istream>
#include <sstream>

#include "obs/json_read.h"

namespace tmps::obs {

namespace {

const std::string* attr(const Attrs& attrs, std::string_view key) {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t attr_u64(const Attrs& attrs, std::string_view key) {
  const std::string* v = attr(attrs, key);
  return v ? std::strtoull(v->c_str(), nullptr, 10) : 0;
}

/// Client id from an EntityId string ("client:seq"); 0 when unparseable.
std::uint64_t client_of_entity(const std::string& id) {
  return std::strtoull(id.c_str(), nullptr, 10);
}

/// Parses Hop notation: returns true and sets broker/client for "B3"/"C42";
/// false for "none" or garbage.
bool parse_hop(const std::string& hop, bool& is_client, std::uint64_t& value) {
  if (hop.size() < 2) return false;
  if (hop[0] == 'B') {
    is_client = false;
  } else if (hop[0] == 'C') {
    is_client = true;
  } else {
    return false;
  }
  value = std::strtoull(hop.c_str() + 1, nullptr, 10);
  return true;
}

std::string broker_hop(std::uint32_t b) { return "B" + std::to_string(b); }
std::string client_hop(std::uint64_t c) { return "C" + std::to_string(c); }

}  // namespace

const char* to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::PathConsistency: return "path-consistency";
    case InvariantKind::OrphanState: return "orphan-state";
    case InvariantKind::DuplicateDelivery: return "duplicate-delivery";
    case InvariantKind::LostDelivery: return "lost-delivery";
    case InvariantKind::Quiescence: return "quiescence";
  }
  return "?";
}

std::string InvariantViolation::to_string() const {
  std::string out = "[";
  out += obs::to_string(kind);
  out += "] txn=" + std::to_string(txn);
  out += " broker=" + std::to_string(broker);
  if (client != 0) out += " client=" + std::to_string(client);
  out += ": " + detail;
  return out;
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  for (const InvariantViolation& v : violations) {
    os << v.to_string() << '\n';
  }
  os << "audit: " << violations.size() << " violation(s) over "
     << movements_checked << " movement(s), " << snapshots_checked
     << " snapshot(s), " << deliveries_checked << " delivery record(s)";
  if (expected_mover_losses) {
    os << " (covering hand-off, expected: " << expected_mover_losses
       << " lost)";
  }
  os << '\n';
  return os.str();
}

void Auditor::ingest_trace(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    if (r.is_span) {
      if (r.name != "movement") continue;
      Movement& m = movement(r.trace);
      m.txn = r.trace;
      m.client = attr_u64(r.attrs, "client");
      m.source = static_cast<std::uint32_t>(attr_u64(r.attrs, "source"));
      m.target = static_cast<std::uint32_t>(attr_u64(r.attrs, "target"));
      if (const std::string* p = attr(r.attrs, "protocol")) m.protocol = *p;
      m.t0 = r.t0;
      if (!r.open && r.t1 >= r.t0) {
        m.resolved = true;
        m.t1 = r.t1;
        const std::string* outcome = attr(r.attrs, "outcome");
        m.committed = outcome && *outcome == "commit";
      }
    } else {
      std::set<std::uint32_t>* hops = nullptr;
      if (r.name == "hop:approve") {
        hops = &movement(r.trace).approve_hops;
      } else if (r.name == "hop:state") {
        hops = &movement(r.trace).state_hops;
      } else if (r.name == "hop:abort") {
        hops = &movement(r.trace).abort_hops;
      }
      if (hops) {
        hops->insert(static_cast<std::uint32_t>(attr_u64(r.attrs, "broker")));
      }
    }
  }
}

void Auditor::ingest_trace_stream(std::istream& is) {
  std::vector<TraceRecord> records;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto obj = parse_json_line(line);
    if (!obj) continue;
    const std::string kind = obj->str("kind");
    if (kind != "span" && kind != "event") continue;
    TraceRecord r;
    r.is_span = kind == "span";
    r.trace = obj->u64("trace");
    r.span = obj->u64("span");
    r.parent = obj->u64("parent");
    r.name = obj->str("name");
    r.t0 = obj->num("t0");
    r.t1 = obj->num("t1");
    r.open = obj->boolean("open");
    if (auto it = obj->objects.find("attrs"); it != obj->objects.end()) {
      for (const auto& [k, v] : it->second) r.attrs.emplace_back(k, v);
    }
    records.push_back(std::move(r));
  }
  ingest_trace(records);
}

void Auditor::ingest_snapshot(const BrokerSnapshot& snap) {
  snapshots_.push_back(snap);
}

void Auditor::ingest_snapshot_stream(std::istream& is) {
  for (BrokerSnapshot& snap : read_snapshots(is)) {
    snapshots_.push_back(std::move(snap));
  }
}

void Auditor::expect_delivery(std::uint64_t client, const std::string& pub,
                              double t_pub) {
  expectations_.emplace(std::make_pair(client, pub), t_pub);
}

void Auditor::on_delivery(std::uint64_t client, const std::string& pub,
                          double t) {
  Delivery& d = deliveries_[std::make_pair(client, pub)];
  if (d.count == 0) d.first_t = t;
  d.last_t = t;
  ++d.count;
}

void Auditor::set_outstanding(std::uint64_t cause, std::uint64_t count) {
  outstanding_[cause] = count;
}

const Auditor::Movement* Auditor::window_for(std::uint64_t client,
                                             double t) const {
  const Movement* best = nullptr;
  double best_dist = 0;
  for (const auto& [txn, m] : movements_) {
    if (m.client != client) continue;
    const double t1 = m.resolved ? m.t1 : std::max(m.t0, t);
    const double dist = t < m.t0 ? m.t0 - t : (t > t1 ? t - t1 : 0);
    if (!best || dist < best_dist) {
      best = &m;
      best_dist = dist;
    }
  }
  return best;
}

std::vector<std::uint32_t> Auditor::path_between(std::uint32_t a,
                                                 std::uint32_t b) const {
  if (path_fn_) return path_fn_(a, b);
  if (adjacency_.empty()) {
    for (const BrokerSnapshot& snap : snapshots_) {
      for (std::uint32_t n : snap.neighbors) {
        adjacency_[snap.broker].insert(n);
        adjacency_[n].insert(snap.broker);
      }
    }
  }
  if (!adjacency_.count(a) || !adjacency_.count(b)) return {};
  // BFS; the overlay is a tree, so the first route found is the unique path.
  std::map<std::uint32_t, std::uint32_t> parent;
  std::deque<std::uint32_t> queue{a};
  parent[a] = a;
  while (!queue.empty()) {
    const std::uint32_t cur = queue.front();
    queue.pop_front();
    if (cur == b) break;
    for (std::uint32_t n : adjacency_.at(cur)) {
      if (parent.emplace(n, cur).second) queue.push_back(n);
    }
  }
  if (!parent.count(b)) return {};
  std::vector<std::uint32_t> path;
  for (std::uint32_t cur = b; cur != a; cur = parent[cur]) path.push_back(cur);
  path.push_back(a);
  std::reverse(path.begin(), path.end());
  return path;
}

void Auditor::check_path_consistency(AuditReport& report) const {
  for (const auto& [txn, m] : movements_) {
    if (!m.resolved || m.protocol != "reconfig") continue;
    const std::vector<std::uint32_t> path = path_between(m.source, m.target);
    if (m.committed) {
      if (!path.empty()) {
        // Approve installs shadows target→source and is recorded at every
        // path broker except the target; state commits source→target and is
        // recorded everywhere except the source.
        for (std::uint32_t b : path) {
          if (b != m.target && !m.approve_hops.count(b)) {
            report.violations.push_back(
                {InvariantKind::PathConsistency, txn, b, m.client,
                 "committed movement missing hop:approve on the source->target "
                 "path"});
          }
          if (b != m.source && !m.state_hops.count(b)) {
            report.violations.push_back(
                {InvariantKind::PathConsistency, txn, b, m.client,
                 "committed movement missing hop:state on the source->target "
                 "path"});
          }
        }
        for (std::uint32_t b : m.approve_hops) {
          if (std::find(path.begin(), path.end(), b) == path.end()) {
            report.violations.push_back(
                {InvariantKind::PathConsistency, txn, b, m.client,
                 "hop:approve at a broker off the source->target path"});
          }
        }
        for (std::uint32_t b : m.state_hops) {
          if (std::find(path.begin(), path.end(), b) == path.end()) {
            report.violations.push_back(
                {InvariantKind::PathConsistency, txn, b, m.client,
                 "hop:state at a broker off the source->target path"});
          }
        }
      } else {
        // No topology available: the two traversals must still cover the
        // same brokers (approve skips the target, state skips the source).
        std::set<std::uint32_t> approve = m.approve_hops;
        approve.insert(m.target);
        std::set<std::uint32_t> state = m.state_hops;
        state.insert(m.source);
        if (approve != state) {
          std::uint32_t odd = 0;
          for (std::uint32_t b : approve) {
            if (!state.count(b)) odd = b;
          }
          for (std::uint32_t b : state) {
            if (!approve.count(b)) odd = b;
          }
          report.violations.push_back(
              {InvariantKind::PathConsistency, txn, odd, m.client,
               "approve and state traversals cover different brokers"});
        }
      }
    } else {
      // Abort must reach every broker that installed shadow state; the
      // source learns of the abort as the coordinator, not via a hop.
      for (std::uint32_t b : m.approve_hops) {
        if (b != m.source && !m.abort_hops.count(b)) {
          report.violations.push_back(
              {InvariantKind::PathConsistency, txn, b, m.client,
               "aborted movement left a broker that approved without an "
               "abort hop"});
        }
      }
    }
  }
}

void Auditor::check_snapshots(AuditReport& report) const {
  // Latest final snapshot per broker.
  std::map<std::uint32_t, const BrokerSnapshot*> finals;
  for (const BrokerSnapshot& snap : snapshots_) {
    if (!snap.final_snapshot) {
      // Mid-run snapshot: shadow state is legitimate while its transaction
      // is in flight, a leak once the transaction resolved.
      for (const std::vector<EntrySnap> BrokerSnapshot::* table :
           {&BrokerSnapshot::prt, &BrokerSnapshot::srt}) {
        for (const EntrySnap& e : snap.*table) {
          if (!e.has_shadow) continue;
          auto it = movements_.find(e.shadow_txn);
          if (it != movements_.end() && it->second.resolved &&
              snap.time > it->second.t1) {
            report.violations.push_back(
                {InvariantKind::OrphanState, e.shadow_txn, snap.broker,
                 it->second.client,
                 "entry " + e.id + " still carries shadow state after its "
                 "transaction resolved"});
          }
        }
      }
      continue;
    }
    const BrokerSnapshot*& slot = finals[snap.broker];
    if (!slot || snap.time >= slot->time) slot = &snap;
  }
  if (finals.empty()) return;

  // Where every client ended up, per the brokers' own client containers.
  std::map<std::uint64_t, std::uint32_t> hosted_at;
  for (const auto& [b, snap] : finals) {
    for (const ClientSnap& c : snap->clients) hosted_at[c.id] = b;
  }

  for (const auto& [b, snap] : finals) {
    for (const TxnSnap& t : snap->txns) {
      report.violations.push_back(
          {InvariantKind::Quiescence, t.txn, b, t.client,
           "movement transaction still parked on the broker (" + t.role +
               " in state " + t.state + ") after the run drained"});
    }
    for (const std::vector<EntrySnap> BrokerSnapshot::* table :
         {&BrokerSnapshot::prt, &BrokerSnapshot::srt}) {
      for (const EntrySnap& e : snap->*table) {
        if (e.has_shadow) {
          std::uint64_t client = 0;
          if (auto it = movements_.find(e.shadow_txn); it != movements_.end())
            client = it->second.client;
          report.violations.push_back(
              {InvariantKind::OrphanState, e.shadow_txn, b, client,
               "entry " + e.id + " still carries shadow state in the final "
               "snapshot"});
        }
        bool hop_is_client = false;
        std::uint64_t hop_value = 0;
        if (parse_hop(e.lasthop, hop_is_client, hop_value) && hop_is_client) {
          auto it = hosted_at.find(hop_value);
          if (it != hosted_at.end() && it->second != b) {
            const Movement* w = window_for(hop_value, snap->time);
            report.violations.push_back(
                {InvariantKind::OrphanState, w ? w->txn : 0, b, hop_value,
                 "entry " + e.id + " points at client hop " + e.lasthop +
                     " but the client is hosted at broker " +
                     std::to_string(it->second)});
          }
        }
      }
    }
  }

  // Path-direction: after a client's last resolved reconfiguration movement,
  // every broker on RouteS2T must agree on the direction of the client's
  // entries. (Covering-protocol moves re-issue fresh subscriptions, so the
  // path property does not apply to them.)
  std::map<std::uint64_t, const Movement*> last_move;
  for (const auto& [txn, m] : movements_) {
    if (!m.resolved || m.protocol != "reconfig") continue;
    const Movement*& slot = last_move[m.client];
    if (!slot || m.t1 >= slot->t1) slot = &m;
  }
  for (const auto& [client, m] : last_move) {
    const std::vector<std::uint32_t> path = path_between(m->source, m->target);
    if (path.empty()) continue;
    const std::uint32_t host = m->committed ? m->target : m->source;
    for (std::size_t i = 0; i < path.size(); ++i) {
      const std::uint32_t b = path[i];
      auto fit = finals.find(b);
      if (fit == finals.end()) continue;
      const BrokerSnapshot& snap = *fit->second;
      // The hop this broker should route the client's traffic towards.
      std::string expected;
      if (b == host) {
        expected = client_hop(client);
      } else if (m->committed) {
        expected = broker_hop(path[i + 1]);  // next towards the target
      } else {
        expected = broker_hop(path[i - 1]);  // back towards the source
      }
      for (const std::vector<EntrySnap> BrokerSnapshot::* table :
           {&BrokerSnapshot::prt, &BrokerSnapshot::srt}) {
        const bool covering = table == &BrokerSnapshot::prt
                                  ? snap.sub_covering
                                  : snap.adv_covering;
        bool found = false;
        for (const EntrySnap& e : snap.*table) {
          if (client_of_entity(e.id) != client) continue;
          found = true;
          if (e.lasthop != expected) {
            report.violations.push_back(
                {InvariantKind::PathConsistency, m->txn, b, client,
                 "entry " + e.id + " has lasthop " + e.lasthop +
                     " but the client's last movement requires " + expected});
          }
        }
        // Commit materializes the moved entries at every path broker; their
        // absence means the transfer lost state. Only provable when covering
        // cannot have pruned the entry, and only for clients that hold state
        // in this table at all (check the host broker's own tables).
        if (m->committed && !covering && !found && b != host) {
          bool host_has = false;
          if (auto hit = finals.find(host); hit != finals.end()) {
            for (const EntrySnap& e : hit->second->*table) {
              if (client_of_entity(e.id) == client) host_has = true;
            }
          }
          if (host_has) {
            report.violations.push_back(
                {InvariantKind::OrphanState, m->txn, b, client,
                 "committed movement left no entry for the client on the "
                 "source->target path"});
          }
        }
      }
    }
  }
}

void Auditor::check_deliveries(AuditReport& report) {
  for (const auto& [key, d] : deliveries_) {
    if (d.count < 2) continue;
    const auto& [client, pub] = key;
    // Duplicates are violations under both protocols: the client stubs
    // de-duplicate, so a duplicate reaching the sink means incarnation
    // state was lost across a hand-off.
    const Movement* w = window_for(client, d.last_t);
    report.violations.push_back(
        {InvariantKind::DuplicateDelivery, w ? w->txn : 0,
         w ? w->target : 0, client,
         "publication " + pub + " delivered " + std::to_string(d.count) +
             " times"});
  }
  for (const auto& [key, t_pub] : expectations_) {
    if (deliveries_.count(key)) continue;
    const auto& [client, pub] = key;
    const Movement* w = window_for(client, t_pub);
    if (w && w->protocol == "covering") {
      // Expected hand-off loss of the traditional protocol (Sec. 2).
      ++report.expected_mover_losses;
      continue;
    }
    report.violations.push_back(
        {InvariantKind::LostDelivery, w ? w->txn : 0, w ? w->source : 0,
         client, "publication " + pub + " (t=" + std::to_string(t_pub) +
                     ") was never delivered"});
  }
}

void Auditor::check_quiescence(AuditReport& report) const {
  for (const auto& [txn, m] : movements_) {
    if (!m.resolved) {
      report.violations.push_back(
          {InvariantKind::Quiescence, txn, m.source, m.client,
           "movement span never closed (transaction neither committed nor "
           "aborted)"});
    }
  }
  for (const auto& [cause, count] : outstanding_) {
    if (count == 0) continue;
    auto it = movements_.find(cause);
    if (it == movements_.end()) continue;
    report.violations.push_back(
        {InvariantKind::Quiescence, cause, it->second.source,
         it->second.client,
         std::to_string(count) + " message(s) still attributed to the "
         "transaction after the run drained"});
  }
}

AuditReport Auditor::finish() {
  AuditReport report;
  report.movements_checked = movements_.size();
  report.snapshots_checked = snapshots_.size();
  report.deliveries_checked = deliveries_.size();
  check_path_consistency(report);
  check_snapshots(report);
  check_deliveries(report);
  check_quiescence(report);
  return report;
}

}  // namespace tmps::obs
