#include "obs/introspect.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "obs/json_read.h"
#include "obs/jsonl.h"

namespace tmps::obs {

namespace {

void append_entry(std::string& out, const EntrySnap& e) {
  out += "{\"id\":";
  append_json_string(out, e.id);
  out += ",\"filter\":";
  append_json_string(out, e.filter);
  out += ",\"lasthop\":";
  append_json_string(out, e.lasthop);
  // Space-joined so the entry stays a flat object for the line parser.
  std::string fwd;
  for (const std::string& h : e.forwarded_to) {
    if (!fwd.empty()) fwd += ' ';
    fwd += h;
  }
  out += ",\"forwarded_to\":";
  append_json_string(out, fwd);
  if (e.has_shadow) {
    out += ",\"shadow_lasthop\":";
    append_json_string(out, e.shadow_lasthop);
    out += ",\"shadow_txn\":";
    append_json_number(out, e.shadow_txn);
    out += ",\"shadow_only\":";
    out += e.shadow_only ? "true" : "false";
  }
  out += '}';
}

void append_entries(std::string& out, const char* key,
                    const std::vector<EntrySnap>& entries) {
  out += ",\"";
  out += key;
  out += "\":[";
  bool first = true;
  for (const EntrySnap& e : entries) {
    if (!first) out += ',';
    first = false;
    append_entry(out, e);
  }
  out += ']';
}

EntrySnap entry_from_flat(const JsonObject::Flat& f) {
  EntrySnap e;
  auto get = [&](const char* k) -> std::string {
    auto it = f.find(k);
    return it == f.end() ? std::string() : it->second;
  };
  e.id = get("id");
  e.filter = get("filter");
  e.lasthop = get("lasthop");
  std::istringstream fwd(get("forwarded_to"));
  std::string hop;
  while (fwd >> hop) e.forwarded_to.push_back(hop);
  if (auto it = f.find("shadow_txn"); it != f.end()) {
    e.has_shadow = true;
    e.shadow_txn = std::strtoull(it->second.c_str(), nullptr, 10);
    e.shadow_lasthop = get("shadow_lasthop");
    e.shadow_only = get("shadow_only") == "true";
  }
  return e;
}

}  // namespace

bool BrokerSnapshot::has_pending_shadows() const {
  for (const EntrySnap& e : prt) {
    if (e.has_shadow) return true;
  }
  for (const EntrySnap& e : srt) {
    if (e.has_shadow) return true;
  }
  return false;
}

std::string BrokerSnapshot::to_jsonl() const {
  std::string out = "{\"kind\":\"snapshot\",\"v\":";
  append_json_number(out, static_cast<std::uint64_t>(version));
  if (!run.empty()) {
    out += ",\"run\":";
    append_json_string(out, run);
  }
  out += ",\"broker\":";
  append_json_number(out, static_cast<std::uint64_t>(broker));
  out += ",\"time\":";
  append_json_number(out, time);
  out += ",\"final\":";
  out += final_snapshot ? "true" : "false";
  out += ",\"sub_covering\":";
  out += sub_covering ? "true" : "false";
  out += ",\"adv_covering\":";
  out += adv_covering ? "true" : "false";
  out += ",\"neighbors\":[";
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (i) out += ',';
    append_json_number(out, static_cast<std::uint64_t>(neighbors[i]));
  }
  out += ']';
  append_entries(out, "prt", prt);
  append_entries(out, "srt", srt);
  out += ",\"txns\":[";
  for (std::size_t i = 0; i < txns.size(); ++i) {
    if (i) out += ',';
    const TxnSnap& t = txns[i];
    out += "{\"txn\":";
    append_json_number(out, t.txn);
    out += ",\"role\":";
    append_json_string(out, t.role);
    out += ",\"state\":";
    append_json_string(out, t.state);
    out += ",\"client\":";
    append_json_number(out, t.client);
    out += ",\"peer\":";
    append_json_number(out, static_cast<std::uint64_t>(t.peer));
    out += '}';
  }
  out += "],\"clients\":[";
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (i) out += ',';
    const ClientSnap& c = clients[i];
    out += "{\"id\":";
    append_json_number(out, c.id);
    out += ",\"state\":";
    append_json_string(out, c.state);
    out += ",\"buffered\":";
    append_json_number(out, c.buffered_notifications);
    out += ",\"queued\":";
    append_json_number(out, c.queued_commands);
    out += ",\"subs\":";
    append_json_number(out, c.subscriptions);
    out += ",\"advs\":";
    append_json_number(out, c.advertisements);
    out += '}';
  }
  out += "]}";
  return out;
}

void BrokerSnapshot::write_jsonl(std::ostream& os) const {
  os << to_jsonl() << '\n';
}

std::optional<BrokerSnapshot> BrokerSnapshot::from_jsonl(
    const std::string& line) {
  auto obj = parse_json_line(line);
  if (!obj || obj->str("kind") != "snapshot") return std::nullopt;
  const int v = static_cast<int>(obj->num("v", -1));
  if (v < 1 || v > kSnapshotVersion) return std::nullopt;
  BrokerSnapshot snap;
  snap.version = v;
  snap.run = obj->str("run");
  snap.broker = static_cast<std::uint32_t>(obj->u64("broker"));
  snap.time = obj->num("time");
  snap.final_snapshot = obj->boolean("final");
  snap.sub_covering = obj->boolean("sub_covering");
  snap.adv_covering = obj->boolean("adv_covering");
  if (auto it = obj->arrays.find("neighbors"); it != obj->arrays.end()) {
    for (const std::string& n : it->second) {
      snap.neighbors.push_back(
          static_cast<std::uint32_t>(std::strtoul(n.c_str(), nullptr, 10)));
    }
  }
  if (auto it = obj->object_arrays.find("prt"); it != obj->object_arrays.end()) {
    for (const auto& f : it->second) snap.prt.push_back(entry_from_flat(f));
  }
  if (auto it = obj->object_arrays.find("srt"); it != obj->object_arrays.end()) {
    for (const auto& f : it->second) snap.srt.push_back(entry_from_flat(f));
  }
  if (auto it = obj->object_arrays.find("txns");
      it != obj->object_arrays.end()) {
    for (const auto& f : it->second) {
      TxnSnap t;
      auto get = [&](const char* k) -> std::string {
        auto fit = f.find(k);
        return fit == f.end() ? std::string() : fit->second;
      };
      t.txn = std::strtoull(get("txn").c_str(), nullptr, 10);
      t.role = get("role");
      t.state = get("state");
      t.client = std::strtoull(get("client").c_str(), nullptr, 10);
      t.peer =
          static_cast<std::uint32_t>(std::strtoul(get("peer").c_str(), nullptr, 10));
      snap.txns.push_back(std::move(t));
    }
  }
  if (auto it = obj->object_arrays.find("clients");
      it != obj->object_arrays.end()) {
    for (const auto& f : it->second) {
      ClientSnap c;
      auto get = [&](const char* k) -> std::string {
        auto fit = f.find(k);
        return fit == f.end() ? std::string() : fit->second;
      };
      c.id = std::strtoull(get("id").c_str(), nullptr, 10);
      c.state = get("state");
      c.buffered_notifications =
          std::strtoull(get("buffered").c_str(), nullptr, 10);
      c.queued_commands = std::strtoull(get("queued").c_str(), nullptr, 10);
      c.subscriptions = std::strtoull(get("subs").c_str(), nullptr, 10);
      c.advertisements = std::strtoull(get("advs").c_str(), nullptr, 10);
      snap.clients.push_back(std::move(c));
    }
  }
  return snap;
}

std::vector<BrokerSnapshot> read_snapshots(std::istream& is) {
  std::vector<BrokerSnapshot> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (auto snap = BrokerSnapshot::from_jsonl(line)) {
      out.push_back(std::move(*snap));
    }
  }
  return out;
}

}  // namespace tmps::obs
