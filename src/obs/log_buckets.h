// Fixed logarithmic bucketing shared by obs::Histogram (atomic counters) and
// sim::Summary (plain counters).
//
// Buckets follow a base-2^(1/4) geometric grid anchored at 2^-30 (~0.93 ns
// when values are seconds): bucket i covers [2^-30 * 2^(i/4), 2^-30 *
// 2^((i+1)/4)). Four sub-buckets per octave bound the relative quantization
// error of bucket-derived percentiles at ~±9%. 256 buckets reach 2^34
// (~1.7e10), far beyond any latency or count this system records; values at
// or below the anchor land in bucket 0, values beyond the grid in the last
// bucket.
#pragma once

#include <cmath>
#include <cstdint>

namespace tmps::obs {

inline constexpr int kNumBuckets = 256;
inline constexpr int kSubBucketsPerOctave = 4;
inline constexpr double kBucketAnchor = 0x1p-30;
// log2 of the anchor, hoisted so the hot-path observe does a single log2.
// 2^-30 is a power of two, so this is exact (no rounding drift vs the old
// per-call std::log2(kBucketAnchor)).
inline constexpr double kBucketAnchorLog2 = -30.0;

/// Bucket index for a value (values <= anchor, NaN and negatives -> 0).
inline int bucket_index(double v) {
  if (!(v > kBucketAnchor)) return 0;
  // log2(v) - log2(anchor), not log2(v / anchor): the division overflows to
  // inf for v within ~2^30 of DBL_MAX, and casting inf to int is UB.
  const int i = static_cast<int>(std::floor(
      kSubBucketsPerOctave * (std::log2(v) - kBucketAnchorLog2)));
  if (i < 0) return 0;
  if (i >= kNumBuckets) return kNumBuckets - 1;
  return i;
}

/// Inclusive lower bound of bucket `i` (bucket 0 starts at 0: it also
/// collects every value at or below the anchor).
inline double bucket_lower(int i) {
  if (i <= 0) return 0.0;
  return kBucketAnchor *
         std::exp2(static_cast<double>(i) / kSubBucketsPerOctave);
}

/// Exclusive upper bound of bucket `i`.
inline double bucket_upper(int i) {
  return kBucketAnchor *
         std::exp2(static_cast<double>(i + 1) / kSubBucketsPerOctave);
}

/// Quantile estimate from per-bucket counts: finds the bucket holding the
/// rank-`q` observation and interpolates linearly within it. `counts` must
/// have kNumBuckets entries summing to `total`. Returns 0 for empty data.
inline double percentile_from_counts(const std::uint64_t* counts,
                                     std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cum;
    cum += counts[i];
    if (static_cast<double>(cum) >= rank) {
      const double lo = bucket_lower(i);
      const double hi = bucket_upper(i);
      const double frac =
          (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * (frac < 0 ? 0 : frac);
    }
  }
  return bucket_upper(kNumBuckets - 1);
}

}  // namespace tmps::obs
