#include "obs/flight_recorder.h"

#include <cstring>

#include "obs/jsonl.h"

namespace tmps::obs {

std::string_view flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::kAdvertise: return "adv";
    case FlightKind::kUnadvertise: return "unadv";
    case FlightKind::kSubscribe: return "sub";
    case FlightKind::kUnsubscribe: return "unsub";
    case FlightKind::kPublish: return "pub";
    case FlightKind::kMoveNegotiate: return "move-negotiate";
    case FlightKind::kMoveApprove: return "move-approve";
    case FlightKind::kMoveReject: return "move-reject";
    case FlightKind::kMoveState: return "move-state";
    case FlightKind::kMoveAck: return "move-ack";
    case FlightKind::kMoveAbort: return "move-abort";
    case FlightKind::kBufferedState: return "buffered-state";
    case FlightKind::kTradMoveRequest: return "trad-move-request";
    case FlightKind::kTradReady: return "trad-ready";
    case FlightKind::kTradReject: return "trad-reject";
    case FlightKind::kRepairDigest: return "repair-digest";
    case FlightKind::kRepairRequest: return "repair-request";
    case FlightKind::kRepairProbe: return "repair-probe";
    case FlightKind::kRepairVerdict: return "repair-verdict";
    case FlightKind::kSessionOpen: return "session-open";
    case FlightKind::kSessionResume: return "session-resume";
    case FlightKind::kSessionAck: return "session-ack";
    case FlightKind::kSessionHeartbeat: return "session-heartbeat";
    case FlightKind::kSessionClose: return "session-close";
    case FlightKind::kSessionForward: return "session-forward";
    case FlightKind::kDeliver: return "deliver";
    case FlightKind::kClientOp: return "client-op";
  }
  return "unknown";
}

namespace {

std::uint64_t bits_of(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double double_of(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(round_up_pow2(capacity)),
      slots_(std::make_unique<Slot[]>(capacity_)) {}

void FlightRecorder::record(FlightKind kind, double time, std::uint32_t from,
                            std::uint64_t cause, std::uint64_t detail) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& s = slots_[ticket & (capacity_ - 1)];
  // Invalidate, fill, publish: a reader either sees the old generation's
  // ticket twice (consistent old event), the new ticket twice (consistent
  // new event), or a mismatch / 0 and skips the slot.
  s.seq.store(0, std::memory_order_release);
  s.time_bits.store(bits_of(time), std::memory_order_relaxed);
  s.meta.store(static_cast<std::uint64_t>(kind) |
                   (static_cast<std::uint64_t>(from) << 8),
               std::memory_order_relaxed);
  s.cause.store(cause, std::memory_order_relaxed);
  s.detail.store(detail, std::memory_order_relaxed);
  s.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<Event> out;
  out.reserve(n);
  // Oldest slot first: tickets head-n .. head-1.
  for (std::uint64_t t = head - n; t != head; ++t) {
    const Slot& s = slots_[t & (capacity_ - 1)];
    const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
    if (seq1 == 0) continue;  // being written right now
    Event e;
    e.time = double_of(s.time_bits.load(std::memory_order_relaxed));
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    e.kind = static_cast<FlightKind>(meta & 0xff);
    e.from = static_cast<std::uint32_t>(meta >> 8);
    e.cause = s.cause.load(std::memory_order_relaxed);
    e.detail = s.detail.load(std::memory_order_relaxed);
    const std::uint64_t seq2 = s.seq.load(std::memory_order_acquire);
    if (seq1 != seq2) continue;  // overwritten mid-copy
    out.push_back(e);
  }
  return out;
}

void FlightRecorder::write_jsonl(std::ostream& os, std::uint32_t broker,
                                 std::string_view reason) const {
  const std::vector<Event> events = snapshot();
  std::string line = "{\"flight\":true,\"broker\":";
  append_json_number(line, static_cast<std::uint64_t>(broker));
  line += ",\"reason\":";
  append_json_string(line, reason);
  line += ",\"events\":";
  append_json_number(line, static_cast<std::uint64_t>(events.size()));
  line += ",\"recorded\":";
  append_json_number(line, recorded());
  line += "}\n";
  os << line;
  for (const Event& e : events) {
    line.clear();
    line += "{\"broker\":";
    append_json_number(line, static_cast<std::uint64_t>(broker));
    line += ",\"t\":";
    append_json_number(line, e.time);
    line += ",\"kind\":";
    append_json_string(line, flight_kind_name(e.kind));
    line += ",\"from\":";
    append_json_number(line, static_cast<std::uint64_t>(e.from));
    line += ",\"cause\":";
    append_json_number(line, e.cause);
    line += ",\"detail\":";
    append_json_number(line, e.detail);
    line += "}\n";
    os << line;
  }
}

}  // namespace tmps::obs
