#include "obs/trace.h"

#include "obs/jsonl.h"

namespace tmps::obs {

void Tracer::set_clock(Clock clock) {
  std::lock_guard lock(mu_);
  clock_ = std::move(clock);
}

SpanId Tracer::begin_span(TxnId trace, std::string_view name, SpanId parent,
                          Attrs attrs) {
  if (!enabled()) return kNoSpan;
  std::lock_guard lock(mu_);
  const SpanId id = ++next_span_;
  TraceRecord rec;
  rec.is_span = true;
  rec.trace = trace;
  rec.span = id;
  rec.parent = parent;
  rec.name = std::string(name);
  rec.t0 = clock_ ? clock_() : 0.0;
  rec.t1 = rec.t0 - 1;  // sentinel until ended
  rec.open = true;
  rec.attrs = std::move(attrs);
  open_spans_[id] = records_.size();
  records_.push_back(std::move(rec));
  return id;
}

void Tracer::end_span(SpanId span, Attrs extra) {
  if (span == kNoSpan) return;
  std::lock_guard lock(mu_);
  auto it = open_spans_.find(span);
  if (it == open_spans_.end()) return;
  TraceRecord& rec = records_[it->second];
  rec.t1 = clock_ ? clock_() : 0.0;
  rec.open = false;
  for (auto& kv : extra) rec.attrs.push_back(std::move(kv));
  open_spans_.erase(it);
}

void Tracer::event(TxnId trace, std::string_view name, Attrs attrs,
                   SpanId parent) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  TraceRecord rec;
  rec.trace = trace;
  rec.parent = parent;
  rec.name = std::string(name);
  rec.t0 = clock_ ? clock_() : 0.0;
  rec.t1 = rec.t0;
  rec.attrs = std::move(attrs);
  records_.push_back(std::move(rec));
}

std::vector<TraceRecord> Tracer::records() const {
  std::lock_guard lock(mu_);
  return records_;
}

std::size_t Tracer::record_count() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  records_.clear();
  open_spans_.clear();
}

void Tracer::write_jsonl(std::ostream& os, std::string_view run) {
  std::lock_guard lock(mu_);
  std::string line;
  for (const TraceRecord& rec : records_) {
    line.clear();
    line += "{\"kind\":";
    line += rec.is_span ? "\"span\"" : "\"event\"";
    if (!run.empty()) {
      line += ",\"run\":";
      append_json_string(line, run);
    }
    line += ",\"trace\":";
    append_json_number(line, static_cast<std::uint64_t>(rec.trace));
    line += ",\"span\":";
    append_json_number(line, rec.span);
    line += ",\"parent\":";
    append_json_number(line, rec.parent);
    line += ",\"name\":";
    append_json_string(line, rec.name);
    line += ",\"t0\":";
    append_json_number(line, rec.t0);
    line += ",\"t1\":";
    append_json_number(line, rec.open ? rec.t0 : rec.t1);
    if (rec.open) line += ",\"open\":true";
    line += ",\"attrs\":{";
    bool first = true;
    for (const auto& [k, v] : rec.attrs) {
      if (!first) line += ',';
      first = false;
      append_json_string(line, k);
      line += ':';
      append_json_string(line, v);
    }
    line += "}}\n";
    os << line;
  }
  records_.clear();
  open_spans_.clear();
}

}  // namespace tmps::obs
