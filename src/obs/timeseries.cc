#include "obs/timeseries.h"

#include <algorithm>

#include "obs/jsonl.h"
#include "obs/log_buckets.h"

namespace tmps::obs {

namespace {

/// Same key scheme as the registry: name + sorted labels, unambiguous via
/// control-character separators.
std::string series_key(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "unknown";
}

}  // namespace

TimeSeriesRing::TimeSeriesRing(const MetricsRegistry* registry,
                               std::size_t capacity)
    : registry_(registry), capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeriesRing::set_prefixes(std::vector<std::string> prefixes) {
  std::lock_guard lock(mu_);
  prefixes_ = std::move(prefixes);
}

bool TimeSeriesRing::selected(const std::string& name) const {
  if (prefixes_.empty()) return true;
  return std::any_of(prefixes_.begin(), prefixes_.end(),
                     [&](const std::string& p) {
                       return name.compare(0, p.size(), p) == 0;
                     });
}

void TimeSeriesRing::tick(double now) {
  const std::vector<MetricSample> samples = registry_->snapshot();
  std::lock_guard lock(mu_);

  TimeWindow win;
  win.t0 = last_tick_;
  win.t1 = now;
  std::map<std::string, PrevSeries> next;

  for (const MetricSample& s : samples) {
    if (!selected(s.name)) continue;
    const std::string key = series_key(s.name, s.labels);
    const auto prev_it = prev_.find(key);
    const PrevSeries* prev =
        prev_it == prev_.end() ? nullptr : &prev_it->second;

    PrevSeries cur;
    TimePoint pt;
    pt.name = s.name;
    pt.labels = s.labels;
    pt.kind = s.kind;
    switch (s.kind) {
      case MetricKind::Counter:
        cur.count = s.count;
        pt.delta = s.count - (prev ? prev->count : 0);
        break;
      case MetricKind::Gauge:
        pt.value = s.value;
        break;
      case MetricKind::Histogram: {
        cur.count = s.count;
        cur.sum = s.value;
        cur.buckets = s.buckets;
        pt.delta = s.count - (prev ? prev->count : 0);
        pt.value = s.value - (prev ? prev->sum : 0.0);
        // Windowed percentiles from the bucket deltas.
        if (pt.delta > 0) {
          std::uint64_t counts[kNumBuckets] = {};
          std::uint64_t total = 0;
          for (const auto& [i, n] : s.buckets) counts[i] = n;
          if (prev) {
            for (const auto& [i, n] : prev->buckets) counts[i] -= n;
          }
          for (int i = 0; i < kNumBuckets; ++i) total += counts[i];
          pt.p50 = percentile_from_counts(counts, total, 0.50);
          pt.p95 = percentile_from_counts(counts, total, 0.95);
          pt.p99 = percentile_from_counts(counts, total, 0.99);
        }
        break;
      }
    }
    next[key] = std::move(cur);
    if (have_baseline_) win.points.push_back(std::move(pt));
  }

  prev_ = std::move(next);
  if (have_baseline_) {
    windows_.push_back(std::move(win));
    while (windows_.size() > capacity_) windows_.pop_front();
  }
  have_baseline_ = true;
  last_tick_ = now;
}

std::vector<TimeWindow> TimeSeriesRing::windows() const {
  std::lock_guard lock(mu_);
  return {windows_.begin(), windows_.end()};
}

std::size_t TimeSeriesRing::window_count() const {
  std::lock_guard lock(mu_);
  return windows_.size();
}

void TimeSeriesRing::write_ndjson(std::ostream& os) const {
  const std::vector<TimeWindow> wins = windows();
  std::string line;
  for (const TimeWindow& w : wins) {
    line.clear();
    line += "{\"t0\":";
    append_json_number(line, w.t0);
    line += ",\"t1\":";
    append_json_number(line, w.t1);
    line += ",\"series\":[";
    const double dt = w.t1 - w.t0;
    bool first = true;
    for (const TimePoint& p : w.points) {
      if (!first) line += ',';
      first = false;
      line += "{\"name\":";
      append_json_string(line, p.name);
      line += ",\"labels\":{";
      bool first_l = true;
      for (const auto& [k, v] : p.labels) {
        if (!first_l) line += ',';
        first_l = false;
        append_json_string(line, k);
        line += ':';
        append_json_string(line, v);
      }
      line += "},\"kind\":\"";
      line += kind_name(p.kind);
      line += '"';
      switch (p.kind) {
        case MetricKind::Counter:
          line += ",\"delta\":";
          append_json_number(line, p.delta);
          line += ",\"rate\":";
          append_json_number(line, dt > 0 ? p.delta / dt : 0.0);
          break;
        case MetricKind::Gauge:
          line += ",\"value\":";
          append_json_number(line, p.value);
          break;
        case MetricKind::Histogram:
          line += ",\"delta\":";
          append_json_number(line, p.delta);
          line += ",\"rate\":";
          append_json_number(line, dt > 0 ? p.delta / dt : 0.0);
          line += ",\"sum\":";
          append_json_number(line, p.value);
          line += ",\"p50\":";
          append_json_number(line, p.p50);
          line += ",\"p95\":";
          append_json_number(line, p.p95);
          line += ",\"p99\":";
          append_json_number(line, p.p99);
          break;
      }
      line += '}';
    }
    line += "]}\n";
    os << line;
  }
}

}  // namespace tmps::obs
