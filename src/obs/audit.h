// Online movement-invariant auditor.
//
// Consumes the three observability streams — movement traces (trace.h),
// routing snapshots (introspect.h), and live delivery accounting — and
// mechanically checks the paper's safety properties per movement
// transaction:
//
//   PathConsistency   every broker on RouteS2T processed the approve/state
//                     hops it should have (Sec. 4.4: the shadow routing is
//                     installed target→source and committed source→target),
//                     and after the run each path broker's entry for the
//                     moved client points toward the client's final host.
//   OrphanState       no SRT/PRT entry still carries shadow state after its
//                     transaction resolved, and no entry names a client hop
//                     at a broker that does not host that client
//                     (Sec. 4.2: commit/abort leaves exactly one
//                     configuration).
//   DuplicateDelivery exactly-once inside the movement window: a moving
//   LostDelivery      subscriber receives every entitled publication exactly
//                     once under the reconfiguration protocol (Sec. 4.3).
//                     Covering (traditional) hand-off *losses* are expected
//                     per the paper and reported as an informational count,
//                     not violations; duplicates are violations under both
//                     protocols (the client stubs de-duplicate, so a
//                     duplicate reaching the sink means incarnation state
//                     was lost). Stationary subscribers must be loss-free
//                     under both.
//   Quiescence        after commit/abort the network settles: no movement
//                     span left open, no messages still attributed to a
//                     resolved transaction, no coordinator state parked on
//                     a broker (Sec. 4.5's message-cost accounting assumes
//                     the covering cascade terminates).
//
// The Auditor is embeddable (Scenario feeds it live) and file-driven
// (tools/tmps_audit replays the JSONL streams); both paths share this class.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/introspect.h"
#include "obs/trace.h"

namespace tmps::obs {

enum class InvariantKind {
  PathConsistency,
  OrphanState,
  DuplicateDelivery,
  LostDelivery,
  Quiescence,
};

const char* to_string(InvariantKind kind);

struct InvariantViolation {
  InvariantKind kind;
  std::uint64_t txn = 0;    // offending transaction (0 = none attributable)
  std::uint32_t broker = 0; // offending broker (0 = none attributable)
  std::uint64_t client = 0;
  std::string detail;

  std::string to_string() const;
};

struct AuditReport {
  std::vector<InvariantViolation> violations;
  std::size_t movements_checked = 0;
  std::size_t snapshots_checked = 0;
  std::size_t deliveries_checked = 0;
  /// Covering-protocol hand-off losses inside movement windows: expected
  /// per the paper (Sec. 2), counted but not violations.
  std::size_t expected_mover_losses = 0;

  bool clean() const { return violations.empty(); }
  /// Multi-line human-readable report (one line per violation + totals).
  std::string summary() const;
};

class Auditor {
 public:
  /// Returns the unique overlay path between two brokers, inclusive of both
  /// endpoints; empty when unknown. Injected so the obs layer needs no
  /// routing dependency; when absent, the auditor recovers the topology
  /// from snapshot neighbor lists (or degrades to set-consistency checks).
  using PathFn =
      std::function<std::vector<std::uint32_t>(std::uint32_t, std::uint32_t)>;

  void set_path_fn(PathFn fn) { path_fn_ = std::move(fn); }

  // --- feeds ---------------------------------------------------------------

  /// In-memory trace records (embedded mode; call before the tracer flushes).
  void ingest_trace(const std::vector<TraceRecord>& records);
  /// trace.jsonl lines (file mode). Non-trace lines are skipped.
  void ingest_trace_stream(std::istream& is);

  void ingest_snapshot(const BrokerSnapshot& snap);
  /// snapshots.jsonl lines (file mode).
  void ingest_snapshot_stream(std::istream& is);

  /// The host owes `client` this publication (it matched a subscription the
  /// client held when the publication entered the network at `t_pub`).
  void expect_delivery(std::uint64_t client, const std::string& pub,
                       double t_pub);
  /// The host delivered `pub` to `client` at time `t`.
  void on_delivery(std::uint64_t client, const std::string& pub, double t);

  /// End-of-run count of messages still attributed to `cause`
  /// (SimNetwork::outstanding_causes); nonzero for a resolved movement
  /// transaction breaks quiescence.
  void set_outstanding(std::uint64_t cause, std::uint64_t count);

  // --- verdict -------------------------------------------------------------

  /// Runs every check over everything ingested. Idempotent per feed state.
  AuditReport finish();

 private:
  struct Movement {
    std::uint64_t txn = 0;
    std::uint64_t client = 0;
    std::uint32_t source = 0;
    std::uint32_t target = 0;
    std::string protocol;  // "reconfig" | "covering"
    double t0 = 0;
    double t1 = 0;
    bool resolved = false;
    bool committed = false;
    std::set<std::uint32_t> approve_hops;
    std::set<std::uint32_t> state_hops;
    std::set<std::uint32_t> abort_hops;
  };

  struct Delivery {
    double first_t = 0;
    double last_t = 0;
    std::uint64_t count = 0;
  };

  Movement& movement(std::uint64_t txn) { return movements_[txn]; }
  /// The movement window of `client` containing `t`, else the nearest one;
  /// nullptr when the client never moved.
  const Movement* window_for(std::uint64_t client, double t) const;
  std::vector<std::uint32_t> path_between(std::uint32_t a,
                                          std::uint32_t b) const;

  void check_path_consistency(AuditReport& report) const;
  void check_snapshots(AuditReport& report) const;
  void check_deliveries(AuditReport& report);
  void check_quiescence(AuditReport& report) const;

  PathFn path_fn_;
  std::map<std::uint64_t, Movement> movements_;
  std::vector<BrokerSnapshot> snapshots_;
  std::map<std::pair<std::uint64_t, std::string>, double> expectations_;
  std::map<std::pair<std::uint64_t, std::string>, Delivery> deliveries_;
  std::map<std::uint64_t, std::uint64_t> outstanding_;
  /// Adjacency recovered from snapshot neighbor lists (used when no PathFn).
  mutable std::map<std::uint32_t, std::set<std::uint32_t>> adjacency_;
};

}  // namespace tmps::obs
