#include "obs/trace_report.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json_read.h"
#include "obs/metrics.h"

namespace tmps::obs {

namespace {

struct Record {
  bool is_span = false;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::string run;
  std::string name;
  double t0 = 0, t1 = 0;
  JsonObject::Flat attrs;

  std::string attr(const std::string& key) const {
    auto it = attrs.find(key);
    return it == attrs.end() ? "" : it->second;
  }
};

struct Movement {
  std::uint64_t txn = 0;
  std::string run;
  const Record* root = nullptr;       // the source-side "movement" span
  std::vector<const Record*> spans;   // all spans of the trace
  std::vector<const Record*> events;  // all events of the trace
  std::uint64_t messages = 0;         // from movement:stats
  bool have_stats = false;
};

/// printf-into-stream helper; report lines are short and fixed-format.
template <typename... Args>
void outf(std::ostream& os, const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  os << buf;
}

std::string bar(double frac, int width) {
  const int n = std::clamp(static_cast<int>(frac * width + 0.5), 0, width);
  return std::string(n, '#');
}

void print_waterfall(std::ostream& os, const Movement& m) {
  const Record& root = *m.root;
  const double span_len = std::max(root.t1 - root.t0, 1e-9);
  outf(os, "movement txn=%llu %s: %s -> %s client=%s protocol=%s outcome=%s\n",
       static_cast<unsigned long long>(m.txn),
       m.run.empty() ? "" : ("[" + m.run + "]").c_str(),
       root.attr("source").c_str(), root.attr("target").c_str(),
       root.attr("client").c_str(), root.attr("protocol").c_str(),
       root.attr("outcome").c_str());
  outf(os, "  start=%.6fs duration=%.3fms", root.t0, span_len * 1e3);
  if (m.have_stats) {
    outf(os, " messages=%llu", static_cast<unsigned long long>(m.messages));
  }
  os << '\n';

  // Spans sorted by start time; indent children of the movement root.
  std::vector<const Record*> spans = m.spans;
  std::sort(spans.begin(), spans.end(),
            [](const Record* a, const Record* b) { return a->t0 < b->t0; });
  for (const Record* s : spans) {
    const double off = s->t0 - root.t0;
    const double len = std::max(s->t1 - s->t0, 0.0);
    const int lead =
        std::clamp(static_cast<int>(off / span_len * 40 + 0.5), 0, 40);
    const bool child = s->parent != 0;
    outf(os, "  %-18s %8.3fms +%8.3fms |%*s%s\n",
         ((child ? "  " : "") + s->name).c_str(), len * 1e3, off * 1e3, lead,
         "", bar(len / span_len, 40 - lead).c_str());
  }

  // Events in time order, grouped visually under the spans.
  std::vector<const Record*> events = m.events;
  std::sort(events.begin(), events.end(),
            [](const Record* a, const Record* b) { return a->t0 < b->t0; });
  std::size_t covering = 0;
  const Record* prev_hop = nullptr;
  for (const Record* e : events) {
    if (e->name.rfind("covering:", 0) == 0) {
      ++covering;
      continue;
    }
    if (e->name == "movement:stats") continue;
    std::string extra;
    if (e->name.rfind("hop:", 0) == 0) {
      if (prev_hop && prev_hop->name == e->name) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "  (+%.3fms since prev hop)",
                      (e->t0 - prev_hop->t0) * 1e3);
        extra = buf;
      }
      prev_hop = e;
    }
    outf(os, "    @%8.3fms %-14s broker=%s%s\n", (e->t0 - root.t0) * 1e3,
         e->name.c_str(), e->attr("broker").c_str(), extra.c_str());
  }
  if (covering > 0) {
    outf(os, "    covering-induced (un)subscription events: %zu\n", covering);
  }
  os << '\n';
}

}  // namespace

std::size_t write_trace_report(std::istream& trace, std::istream* metrics,
                               std::ostream& os,
                               const TraceReportOptions& opts) {
  std::vector<Record> records;
  std::string line;
  std::size_t bad_lines = 0;
  while (std::getline(trace, line)) {
    if (line.empty()) continue;
    auto obj = parse_json_line(line);
    if (!obj) {
      ++bad_lines;
      continue;
    }
    if (!obj->get("kind")) continue;  // snapshot or foreign record
    Record r;
    r.is_span = obj->str("kind") == "span";
    r.trace = obj->u64("trace");
    r.span = obj->u64("span");
    r.parent = obj->u64("parent");
    r.run = obj->str("run");
    r.name = obj->str("name");
    r.t0 = obj->num("t0");
    r.t1 = obj->num("t1");
    auto at = obj->objects.find("attrs");
    if (at != obj->objects.end()) r.attrs = at->second;
    records.push_back(std::move(r));
  }
  if (bad_lines > 0) {
    outf(os, "warning: %zu unparseable lines skipped\n", bad_lines);
  }

  // Group by (run, txn): a sweep appends several runs into one file and txn
  // ids may repeat across runs.
  std::map<std::pair<std::string, std::uint64_t>, Movement> movements;
  for (const Record& r : records) {
    if (r.trace == 0) continue;
    Movement& m = movements[{r.run, r.trace}];
    m.txn = r.trace;
    m.run = r.run;
    if (r.is_span) {
      m.spans.push_back(&r);
      if (r.name == "movement") m.root = &r;
    } else {
      m.events.push_back(&r);
      if (r.name == "movement:stats") {
        m.have_stats = true;
        m.messages = std::strtoull(r.attr("messages").c_str(), nullptr, 10);
      }
    }
  }

  // --- per-movement waterfalls ----------------------------------------------
  std::vector<const Movement*> with_root;
  for (const auto& [key, m] : movements) {
    if (m.root) with_root.push_back(&m);
  }
  std::sort(with_root.begin(), with_root.end(),
            [](const Movement* a, const Movement* b) {
              return a->root->t0 < b->root->t0;
            });
  outf(os, "=== %zu movement(s) ===\n\n", with_root.size());
  int shown = 0;
  for (const Movement* m : with_root) {
    if (opts.waterfall_limit >= 0 && shown >= opts.waterfall_limit) break;
    print_waterfall(os, *m);
    ++shown;
  }
  if (shown < static_cast<int>(with_root.size())) {
    outf(os,
         "... %zu more movement(s); rerun with --limit N to see them\n\n",
         with_root.size() - shown);
  }

  // --- phase latency percentiles --------------------------------------------
  struct PhaseStats {
    Histogram hist;
    double max = 0;
  };
  std::map<std::string, PhaseStats> phases;
  for (const auto& [key, m] : movements) {
    for (const Record* s : m.spans) {
      if (s->t1 >= s->t0) {
        PhaseStats& p = phases[s->name];
        p.hist.observe(s->t1 - s->t0);
        p.max = std::max(p.max, s->t1 - s->t0);
      }
    }
  }
  if (!phases.empty()) {
    outf(os, "=== phase latency (ms) ===\n");
    outf(os, "%-18s %8s %8s %8s %8s %8s %8s\n", "phase", "count", "mean",
         "p50", "p95", "p99", "max");
    for (const auto& [name, p] : phases) {
      outf(os, "%-18s %8llu %8.3f %8.3f %8.3f %8.3f %8.3f\n", name.c_str(),
           static_cast<unsigned long long>(p.hist.count()),
           p.hist.mean() * 1e3, p.hist.p50() * 1e3, p.hist.p95() * 1e3,
           p.hist.p99() * 1e3, p.max * 1e3);
    }
    os << '\n';
  }

  // --- hot links from metrics.jsonl -----------------------------------------
  if (metrics != nullptr) {
    // A sweep appends one registry snapshot per run and the counters are
    // cumulative, so take the max across runs, not the sum.
    std::map<std::string, std::uint64_t> links;
    while (std::getline(*metrics, line)) {
      if (line.empty()) continue;
      auto obj = parse_json_line(line);
      if (!obj || obj->str("metric") != "link_messages_total") continue;
      auto lt = obj->objects.find("labels");
      if (lt == obj->objects.end()) continue;
      const std::string key = lt->second["from"] + " -> " + lt->second["to"];
      links[key] = std::max(links[key], obj->u64("value"));
    }
    std::vector<std::pair<std::uint64_t, std::string>> order;
    for (const auto& [key, n] : links) order.emplace_back(n, key);
    std::sort(order.rbegin(), order.rend());
    outf(os, "=== top %d hot links (messages) ===\n", opts.top_links);
    for (int i = 0; i < opts.top_links && i < static_cast<int>(order.size());
         ++i) {
      outf(os, "%-12s %12llu\n", order[i].second.c_str(),
           static_cast<unsigned long long>(order[i].first));
    }
  }
  return with_root.size();
}

}  // namespace tmps::obs
