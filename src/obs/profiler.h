// Publish-path stage profiler: low-overhead RAII probes attributing broker
// wall time to named pipeline stages (decode, match, covering probe, delta
// apply, encode, enqueue, deliver, ...).
//
// Design constraints, in order:
//   1. ~zero cost when off. Hosts only construct a StageProfiler when
//      BrokerConfig::obs.profile is set, so the disabled path is a null
//      check in the TMPS_PROF_STAGE macro.
//   2. Bounded cost when on. The publish path is ~2 µs; unconditional
//      clock reads on every probe would not fit the <3% gate. Probes are
//      therefore *sampled at the root*: 1-in-N outermost probes run with
//      full timing, and every probe nested under a sampled root is timed
//      too (so nested attribution stays exact within a sampled walk).
//      Unsampled roots cost one xorshift step and *suppress* their walk —
//      probes nested under them cost one thread-local load and compare
//      rather than rolling their own dice (which would skew per-stage
//      shares: inner stages would be sampled more often than roots).
//   3. Thread safety without hot-path locks. Counters live in per-thread
//      slabs of relaxed atomics (single writer: the probing thread);
//      flush() diffs each slab against a shadow copy and merges the deltas
//      into the profiler aggregate and, optionally, MetricsRegistry
//      histograms — so /metrics, /timeseries and tmps_top pick stages up
//      with no extra wiring.
//
// Accounting model: a probe records *inclusive* time (total_ns) and
// *exclusive* time (self_ns = elapsed minus time spent in nested probes).
// Within one sampled walk the self times of all probes sum exactly to the
// root's inclusive time, which makes the residual "other" bucket of a stage
// directly measurable as self(root)/total(root). Probes also intern their
// stage path (root;child;...;leaf) so write_collapsed() can emit
// flamegraph.pl-compatible collapsed stacks.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log_buckets.h"

namespace tmps::obs {

class MetricsRegistry;

/// Pipeline stages. Keep in sync with stage_name(); docs/OBSERVABILITY.md
/// carries the catalog.
enum class Stage : std::uint8_t {
  kPublish = 0,  ///< outer publish-path span (self time = unattributed rest)
  kDecode,       ///< wire decode (transport reader)
  kMatch,        ///< PRT match: RoutingTables::match (counting index + verify)
  kCoverProbe,   ///< covering-index / scan-oracle queries
  kDeltaApply,   ///< RoutingDelta application
  kEncode,       ///< wire encode (codec)
  kEnqueue,      ///< output-message construction / socket write
  kDeliver,      ///< local client delivery callbacks
  kFanout,       ///< publish fan-out loop (hop dispatch glue)
  kRouteUpdate,  ///< subscribe/unsubscribe/advertise/unadvertise handling
  kControl,      ///< mobility-protocol and other control handling
};
inline constexpr int kStageCount = 11;

const char* stage_name(Stage s);

namespace detail {

/// Per-(profiler, thread) accumulation slab. All counters are relaxed
/// atomics with a single writer (the probing thread); flush() reads them
/// from any thread.
struct StageSlab {
  struct PerStage {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> self_ns{0};
    /// Self-time distribution on the shared log-bucket (seconds) grid.
    std::array<std::atomic<std::uint64_t>, kNumBuckets> hist{};
  };
  std::array<PerStage, kStageCount> stages{};

  /// Interned stage-path accounting for collapsed-stack output.
  static constexpr int kMaxPaths = 64;
  std::array<std::atomic<std::uint64_t>, kMaxPaths> path_self_ns{};
  std::array<std::atomic<std::uint64_t>, kMaxPaths> path_count{};
};

/// Plain (non-atomic) mirror of a slab used both as the flush shadow and as
/// the profiler-level aggregate.
struct StageTotals {
  struct PerStage {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t self_ns = 0;
    std::array<std::uint64_t, kNumBuckets> hist{};
  };
  std::array<PerStage, kStageCount> stages{};
  std::array<std::uint64_t, StageSlab::kMaxPaths> path_self_ns{};
  std::array<std::uint64_t, StageSlab::kMaxPaths> path_count{};
};

}  // namespace detail

class StageProbe;

class StageProfiler {
 public:
  /// `broker` labels every exported metric/row; `sample_rate` is the 1-in-N
  /// root-probe sampling rate (rounded up to a power of two; <=1 samples
  /// every root).
  explicit StageProfiler(std::string broker, std::uint32_t sample_rate = 16);
  ~StageProfiler();
  StageProfiler(const StageProfiler&) = delete;
  StageProfiler& operator=(const StageProfiler&) = delete;

  const std::string& broker() const { return broker_; }
  std::uint32_t sample_rate() const { return sample_mask_ + 1; }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Diffs every thread slab against its shadow and merges the deltas into
  /// the profiler aggregate; with a registry, also into
  /// `tmps_stage_calls_total` / `tmps_stage_self_ns_total` counters and the
  /// `tmps_stage_self_seconds{broker,stage}` histogram. Safe to call from
  /// any thread, concurrently with probing.
  void flush(MetricsRegistry* reg = nullptr);

  /// One JSON object per stage with nonzero calls (flush first):
  /// {"broker","stage","calls","total_ns","self_ns","self_p50_ns",
  ///  "self_p95_ns","self_p99_ns","share_self","residual_share",
  ///  "sample_rate"}. share_self is this stage's fraction of all attributed
  /// (self) time; residual_share is self/total for the stage — for an
  /// outermost stage like "publish" this is the unattributed "other"
  /// fraction of the publish path.
  void write_ndjson(std::ostream& os) const;

  /// flamegraph.pl collapsed-stack format, one interned stage path per
  /// line: `broker;publish;match 123456` (value = accumulated self ns).
  void write_collapsed(std::ostream& os) const;

  /// Aggregate readbacks for tests and gates (flush first).
  std::uint64_t calls(Stage s) const;
  std::uint64_t total_ns(Stage s) const;
  std::uint64_t self_ns(Stage s) const;
  /// self/total for `s`; 0 when the stage never ran.
  double residual_share(Stage s) const;

  /// Test hook: replace the probe clock for every profiler in the process
  /// (nullptr restores the real clock). Override ticks are taken as ns
  /// verbatim (the tick->ns calibration factor becomes 1).
  using TickFn = std::uint64_t (*)();
  static void set_clock_for_test(TickFn fn);
  static std::uint64_t now_ns();

 private:
  friend class StageProbe;

  detail::StageSlab* slab_for_current_thread();
  bool sample_hit();
  std::uint16_t intern_path(std::uint16_t parent, Stage s);
  void flush_one_locked(detail::StageSlab& slab, detail::StageTotals& shadow,
                        MetricsRegistry* reg);

  const std::string broker_;
  const std::uint64_t id_;  ///< process-unique, never reused (TLS cache key)
  std::uint32_t sample_mask_ = 0;  ///< pow2(rate) - 1; 0 = sample every root
  std::atomic<bool> enabled_{true};

  /// parent-path × stage -> interned id (+1; 0 = not yet interned). Written
  /// under mu_, read with a relaxed load on the probe path.
  std::array<std::atomic<std::uint16_t>,
             detail::StageSlab::kMaxPaths * kStageCount>
      path_lookup_{};

  struct PathInfo {
    std::uint16_t parent = 0;
    Stage stage = Stage::kPublish;
  };

  struct SlabEntry {
    std::unique_ptr<detail::StageSlab> slab;
    detail::StageTotals shadow;  ///< flushed-so-far marks (flusher-owned)
  };

  mutable std::mutex mu_;
  std::map<std::thread::id, SlabEntry> slabs_;
  std::vector<PathInfo> paths_;      ///< [0] is the root sentinel
  detail::StageTotals aggregate_;    ///< sum of all flushed deltas
  struct StageMetrics;
  std::unique_ptr<StageMetrics> metrics_;  ///< cached registry references
};

/// RAII stage probe. Constructed inactive when `prof` is null/disabled or
/// the walk is not sampled; otherwise records on destruction.
class StageProbe {
 public:
  StageProbe(StageProfiler* prof, Stage stage) {
    if (prof != nullptr && prof->enabled()) begin(prof, stage);
  }
  ~StageProbe() {
    if (prof_ != nullptr) {
      finish();
    } else if (suppressing_) {
      end_suppression();
    }
  }
  StageProbe(const StageProbe&) = delete;
  StageProbe& operator=(const StageProbe&) = delete;

  /// True when this probe is actually timing (sampled walk).
  bool active() const { return prof_ != nullptr; }

 private:
  void begin(StageProfiler* prof, Stage stage);
  void finish();
  void end_suppression();

  StageProfiler* prof_ = nullptr;
  detail::StageSlab* slab_ = nullptr;
  StageProbe* parent_ = nullptr;
  /// Raw clock ticks (TSC on x86-64, ns elsewhere / under a test clock);
  /// converted to ns with the calibrated factor when recording.
  std::uint64_t start_ticks_ = 0;
  std::uint64_t child_ticks_ = 0;
  std::uint16_t path_ = 0;
  Stage stage_ = Stage::kPublish;
  /// This probe is an unsampled root: nested probes stay inactive until it
  /// goes out of scope.
  bool suppressing_ = false;
};

// Scoped stage probe over a `StageProfiler*` expression (null => no-op).
// Mirrors the TMPS_SPAN null-check idiom from obs/trace.h.
#define TMPS_PROF_CAT2(a, b) a##b
#define TMPS_PROF_CAT(a, b) TMPS_PROF_CAT2(a, b)
#define TMPS_PROF_STAGE(prof, stage)                 \
  ::tmps::obs::StageProbe TMPS_PROF_CAT(tmps_prof_, __LINE__) { \
    (prof), (stage)                                  \
  }

}  // namespace tmps::obs
