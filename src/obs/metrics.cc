#include "obs/metrics.h"

#include <algorithm>

#include "obs/jsonl.h"

namespace tmps::obs {

void Histogram::merge(
    const std::vector<std::pair<int, std::uint64_t>>& bucket_deltas,
    double sum_delta) {
  std::uint64_t n = 0;
  for (const auto& [i, d] : bucket_deltas) {
    if (i < 0 || i >= kNumBuckets || d == 0) continue;
    buckets_[i].fetch_add(d, std::memory_order_relaxed);
    n += d;
  }
  if (n != 0) count_.fetch_add(n, std::memory_order_relaxed);
  if (sum_delta != 0.0) {
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + sum_delta,
                                       std::memory_order_relaxed)) {
    }
  }
}

double Histogram::percentile(double q) const {
  std::uint64_t counts[kNumBuckets];
  std::uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return percentile_from_counts(counts, total, q);
}

std::string MetricsRegistry::key_of(std::string_view name,
                                    const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        Labels labels,
                                                        Kind kind) {
  // Canonical label order so {{a},{b}} and {{b},{a}} are one metric.
  std::sort(labels.begin(), labels.end());
  std::lock_guard lock(mu_);
  auto [it, inserted] = entries_.try_emplace(key_of(name, labels));
  Entry& e = it->second;
  if (inserted) {
    e.name = std::string(name);
    e.labels = std::move(labels);
    e.kind = kind;
    switch (kind) {
      case Kind::Counter: e.counter = std::make_unique<Counter>(); break;
      case Kind::Gauge: e.gauge = std::make_unique<Gauge>(); break;
      case Kind::Histogram: e.histogram = std::make_unique<Histogram>(); break;
    }
  }
  return e;
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::Counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::Gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels) {
  return *find_or_create(name, std::move(labels), Kind::Histogram).histogram;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name,
                                             Labels labels) const {
  std::sort(labels.begin(), labels.end());
  std::lock_guard lock(mu_);
  auto it = entries_.find(key_of(name, labels));
  if (it == entries_.end() || it->second.kind != Kind::Counter) return 0;
  return it->second.counter->value();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  std::lock_guard lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case Kind::Counter: s.count = e.counter->value(); break;
      case Kind::Gauge: s.value = e.gauge->value(); break;
      case Kind::Histogram: {
        const Histogram& h = *e.histogram;
        s.count = h.count();
        s.value = h.sum();
        for (int i = 0; i < kNumBuckets; ++i) {
          const std::uint64_t n = h.bucket_count(i);
          if (n != 0) s.buckets.emplace_back(i, n);
        }
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

double sample_percentile(const MetricSample& s, double q) {
  std::uint64_t counts[kNumBuckets] = {};
  std::uint64_t total = 0;
  for (const auto& [i, n] : s.buckets) {
    counts[i] = n;
    total += n;
  }
  return percentile_from_counts(counts, total, q);
}

void MetricsRegistry::write_jsonl(std::ostream& os,
                                  std::string_view run) const {
  // Snapshot under the lock, format and write outside it: a slow ostream
  // (HTTP scrape, cold disk) must not block hot-path find_or_create.
  const std::vector<MetricSample> samples = snapshot();
  std::string line;
  for (const MetricSample& e : samples) {
    line.clear();
    line += "{\"metric\":";
    append_json_string(line, e.name);
    if (!run.empty()) {
      line += ",\"run\":";
      append_json_string(line, run);
    }
    line += ",\"labels\":{";
    bool first = true;
    for (const auto& [k, v] : e.labels) {
      if (!first) line += ',';
      first = false;
      append_json_string(line, k);
      line += ':';
      append_json_string(line, v);
    }
    line += '}';
    switch (e.kind) {
      case Kind::Counter:
        line += ",\"type\":\"counter\",\"value\":";
        append_json_number(line, e.count);
        break;
      case Kind::Gauge:
        line += ",\"type\":\"gauge\",\"value\":";
        append_json_number(line, e.value);
        break;
      case Kind::Histogram: {
        line += ",\"type\":\"histogram\",\"count\":";
        append_json_number(line, e.count);
        line += ",\"sum\":";
        append_json_number(line, e.value);
        line += ",\"p50\":";
        append_json_number(line, sample_percentile(e, 0.50));
        line += ",\"p95\":";
        append_json_number(line, sample_percentile(e, 0.95));
        line += ",\"p99\":";
        append_json_number(line, sample_percentile(e, 0.99));
        line += ",\"buckets\":[";
        bool first_b = true;
        for (const auto& [i, n] : e.buckets) {
          if (!first_b) line += ',';
          first_b = false;
          line += '[';
          append_json_number(line, bucket_upper(i));
          line += ',';
          append_json_number(line, n);
          line += ']';
        }
        line += ']';
        break;
      }
    }
    line += "}\n";
    os << line;
  }
}

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void append_prom_labels(std::string& out, const Labels& labels,
                        const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k + "=\"" + prom_escape(v) + '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += std::string(extra_key) + "=\"" + extra_value + '"';
  }
  out += '}';
}

std::string prom_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  // Same lock discipline as write_jsonl: copy first, serialize after.
  const std::vector<MetricSample> samples = snapshot();
  // TYPE comments must precede the first sample of each metric name; the
  // registry map is keyed by name-then-labels, so names arrive grouped.
  std::string last_typed;
  std::string line;
  for (const MetricSample& e : samples) {
    const char* type = e.kind == Kind::Counter ? "counter"
                       : e.kind == Kind::Gauge ? "gauge"
                                               : "histogram";
    if (e.name != last_typed) {
      os << "# TYPE " << e.name << ' ' << type << '\n';
      last_typed = e.name;
    }
    line.clear();
    switch (e.kind) {
      case Kind::Counter:
        line = e.name;
        append_prom_labels(line, e.labels);
        line += ' ' + std::to_string(e.count);
        break;
      case Kind::Gauge:
        line = e.name;
        append_prom_labels(line, e.labels);
        line += ' ' + prom_number(e.value);
        break;
      case Kind::Histogram: {
        std::uint64_t cum = 0;
        for (const auto& [i, n] : e.buckets) {
          cum += n;
          line += e.name + "_bucket";
          append_prom_labels(line, e.labels, "le",
                             prom_number(bucket_upper(i)));
          line += ' ' + std::to_string(cum) + '\n';
        }
        line += e.name + "_bucket";
        append_prom_labels(line, e.labels, "le", "+Inf");
        line += ' ' + std::to_string(e.count) + '\n';
        line += e.name + "_sum";
        append_prom_labels(line, e.labels);
        line += ' ' + prom_number(e.value) + '\n';
        line += e.name + "_count";
        append_prom_labels(line, e.labels);
        line += ' ' + std::to_string(e.count);
        break;
      }
    }
    os << line << '\n';
  }
}

}  // namespace tmps::obs
