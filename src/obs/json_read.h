// Minimal JSONL reading, the counterpart of jsonl.h: parses exactly the flat
// shape the observability writers emit — one object per line whose values
// are scalars, one-level string->scalar objects, arrays of scalars, or
// arrays of flat objects. Shared by tools/trace_inspect, tools/tmps_audit
// and the snapshot loader (introspect.cc). It is not a general JSON parser.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tmps::obs {

/// One parsed JSONL line. Scalars keep their source text (numbers, true,
/// false, null) or the unescaped string value.
struct JsonObject {
  using Flat = std::map<std::string, std::string>;

  Flat fields;                                  // scalar values
  std::map<std::string, Flat> objects;          // {"labels":{"k":"v"}}
  std::map<std::string, std::vector<std::string>> arrays;  // scalar arrays
  std::map<std::string, std::vector<Flat>> object_arrays;  // [{...},{...}]

  const std::string* get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
  std::string str(const std::string& key, std::string def = "") const {
    const std::string* v = get(key);
    return v ? *v : def;
  }
  double num(const std::string& key, double def = 0) const {
    const std::string* v = get(key);
    return v ? std::strtod(v->c_str(), nullptr) : def;
  }
  std::uint64_t u64(const std::string& key, std::uint64_t def = 0) const {
    const std::string* v = get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : def;
  }
  bool boolean(const std::string& key, bool def = false) const {
    const std::string* v = get(key);
    return v ? *v == "true" : def;
  }
};

namespace json_detail {

inline void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

inline std::optional<std::string> parse_string(const std::string& s,
                                               std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return std::nullopt;
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          // \u00XX escapes (the writer only emits control characters this
          // way); decode the low byte, good enough for display.
          if (i + 4 < s.size()) {
            out += static_cast<char>(
                std::strtoul(s.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
    ++i;
  }
  if (i >= s.size()) return std::nullopt;
  ++i;  // closing quote
  return out;
}

inline std::optional<std::string> parse_scalar(const std::string& s,
                                               std::size_t& i) {
  skip_ws(s, i);
  if (i < s.size() && s[i] == '"') return parse_string(s, i);
  // Bare token: number / true / false / null.
  std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         !std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  if (i == start) return std::nullopt;
  return s.substr(start, i - start);
}

/// Parses {"k":"v",...} with scalar values into `out`; nested containers
/// inside a flat object are rejected.
inline bool parse_flat_object(const std::string& s, std::size_t& i,
                              JsonObject::Flat& out) {
  skip_ws(s, i);
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  while (true) {
    skip_ws(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    auto key = parse_string(s, i);
    if (!key) return false;
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    auto val = parse_scalar(s, i);
    if (!val) return false;
    out[*key] = *val;
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') ++i;
  }
}

}  // namespace json_detail

/// Parses one JSONL line into a JsonObject; nullopt on malformed input.
inline std::optional<JsonObject> parse_json_line(const std::string& line) {
  using namespace json_detail;
  JsonObject obj;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return std::nullopt;
  ++i;
  while (true) {
    skip_ws(line, i);
    if (i >= line.size()) return std::nullopt;
    if (line[i] == '}') break;
    auto key = parse_string(line, i);
    if (!key) return std::nullopt;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return std::nullopt;
    ++i;
    skip_ws(line, i);
    if (i < line.size() && line[i] == '{') {
      JsonObject::Flat nested;
      if (!parse_flat_object(line, i, nested)) return std::nullopt;
      obj.objects[*key] = std::move(nested);
    } else if (i < line.size() && line[i] == '[') {
      ++i;
      std::vector<std::string> scalars;
      std::vector<JsonObject::Flat> flats;
      while (true) {
        skip_ws(line, i);
        if (i >= line.size()) return std::nullopt;
        if (line[i] == ']') {
          ++i;
          break;
        }
        if (line[i] == '{') {
          JsonObject::Flat nested;
          if (!parse_flat_object(line, i, nested)) return std::nullopt;
          flats.push_back(std::move(nested));
        } else {
          auto val = parse_scalar(line, i);
          if (!val) return std::nullopt;
          scalars.push_back(std::move(*val));
        }
        skip_ws(line, i);
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (!flats.empty()) {
        obj.object_arrays[*key] = std::move(flats);
      } else {
        obj.arrays[*key] = std::move(scalars);
      }
    } else {
      auto val = parse_scalar(line, i);
      if (!val) return std::nullopt;
      obj.fields[*key] = *val;
    }
    skip_ws(line, i);
    if (i < line.size() && line[i] == ',') ++i;
  }
  return obj;
}

}  // namespace tmps::obs
