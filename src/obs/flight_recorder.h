// Per-broker flight recorder: a fixed-size lock-free ring holding the last N
// protocol and data events, recorded unconditionally (independent of trace
// sampling) and dumped only when something goes wrong — movement abort,
// audit violation — or on demand via GET /flight.
//
// This is the post-mortem context the movement-invariant auditor lacks: the
// auditor can say *that* an invariant broke; the flight recorder says what
// the broker was doing in the moments before.
//
// Concurrency: writers claim a slot with one fetch_add and publish it with a
// per-slot sequence word (release store); readers validate the sequence
// before and after copying and drop slots that were overwritten mid-read.
// Every field is a relaxed atomic, so concurrent dump-while-recording is
// data-race-free under TSan without any lock on the record path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tmps::obs {

/// What happened. Values 0..18 mirror the Message payload variant order
/// (pubsub/messages.h) so recording from on_message is a single index copy.
enum class FlightKind : std::uint8_t {
  kAdvertise = 0,
  kUnadvertise = 1,
  kSubscribe = 2,
  kUnsubscribe = 3,
  kPublish = 4,
  kMoveNegotiate = 5,
  kMoveApprove = 6,
  kMoveReject = 7,
  kMoveState = 8,
  kMoveAck = 9,
  kMoveAbort = 10,
  kBufferedState = 11,
  kTradMoveRequest = 12,
  kTradReady = 13,
  kTradReject = 14,
  kRepairDigest = 15,
  kRepairRequest = 16,
  kRepairProbe = 17,
  kRepairVerdict = 18,
  kSessionOpen = 19,
  kSessionResume = 20,
  kSessionAck = 21,
  kSessionHeartbeat = 22,
  kSessionClose = 23,
  kSessionForward = 24,
  kDeliver = 25,    ///< local delivery to a client (detail = client id)
  kClientOp = 26,   ///< local client operation (detail = client id)
};

std::string_view flight_kind_name(FlightKind k);

class FlightRecorder {
 public:
  struct Event {
    double time = 0;
    FlightKind kind = FlightKind::kPublish;
    std::uint32_t from = 0;  ///< peer broker the message arrived from; 0 local
    std::uint64_t cause = 0;
    std::uint64_t detail = 0;  ///< message id, client id — kind-dependent
  };

  /// `capacity` is rounded up to a power of two (cheap wrap); minimum 8.
  explicit FlightRecorder(std::size_t capacity = 256);

  void record(FlightKind kind, double time, std::uint32_t from,
              std::uint64_t cause, std::uint64_t detail);

  /// Consistent-slot copy of the buffered events, oldest first. Slots being
  /// overwritten during the copy are skipped.
  std::vector<Event> snapshot() const;

  /// One JSON object per event plus a header line naming the broker and the
  /// dump reason (NDJSON, matching the other obs sinks).
  void write_jsonl(std::ostream& os, std::uint32_t broker,
                   std::string_view reason) const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    /// 0 = never written; otherwise 1 + the claim ticket of the writer.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> time_bits{0};
    std::atomic<std::uint64_t> meta{0};  ///< kind | from<<8
    std::atomic<std::uint64_t> cause{0};
    std::atomic<std::uint64_t> detail{0};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace tmps::obs
