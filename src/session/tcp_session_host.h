// Binds the session layer to a TcpTransport: one SessionManager per broker,
// edge-client frames routed into it, acks and deliveries pushed back down
// the client sockets, socket EOFs turned into session disconnects, and a
// GET /sessions admin route per broker.
//
// All session-manager entry points run under the owning broker's state lock
// (via TcpTransport::run_on), mirroring how overlay frames are processed —
// the managers themselves stay single-threaded.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "session/session_manager.h"
#include "transport/tcp_transport.h"

namespace tmps::session {

class TcpSessionHost {
 public:
  /// Call before transport.start(). Creates the managers, attaches them to
  /// the engines and registers the frame/disconnect handlers and admin
  /// routes. `cfg` usually is the transport's BrokerConfig::Session section.
  TcpSessionHost(TcpTransport& transport, SessionConfig cfg);
  ~TcpSessionHost();

  /// Starts the per-broker timer sweeps (call after transport.start()).
  void start();
  /// Stops scheduling new sweeps (the transport's stop() drops pending
  /// timers; this makes an explicit early stop possible too).
  void stop() { stopped_.store(true); }

  SessionManager* manager_of(BrokerId b) const;

 private:
  void on_client_frame(BrokerId b, ClientId client, const Message& msg);
  void schedule_tick(BrokerId b);

  TcpTransport* transport_;
  SessionConfig cfg_;
  std::vector<std::unique_ptr<SessionManager>> managers_;
  std::atomic<bool> stopped_{false};
};

}  // namespace tmps::session
