#include "session/scenario_sessions.h"

namespace tmps::session {

std::shared_ptr<SessionHandle> install_sessions(
    ScenarioConfig& cfg, std::shared_ptr<repair::RepairHandle> repair) {
  auto handle = std::make_shared<SessionHandle>();
  auto prev_engines = std::move(cfg.post_engines);
  cfg.post_engines = [handle, prev_engines, repair](Scenario& s) {
    if (prev_engines) prev_engines(s);
    const SessionConfig& sc = s.config().broker.session;
    if (!sc.enabled) return;
    std::size_t idx = 0;
    for (const auto& [b, engine] : s.engines()) {
      SessionConfig per = sc;
      // Stagger the first tick per broker so the fleet does not sweep in
      // lockstep.
      per.start_delay =
          (sc.start_delay > 0 ? sc.start_delay : sc.tick_interval) +
          0.03 * static_cast<double>(idx);
      auto mgr = std::make_unique<SessionManager>(*engine, s.net(), per);
      engine->set_session_handler(mgr.get());
      mgr->start(s.config().duration);
      if (repair) {
        if (repair::RepairEngine* re = repair->engine_of(b)) {
          SessionManager* raw = mgr.get();
          re->set_session_probe(
              [raw](ClientId client) { return raw->repair_hint(client); });
        }
      }
      handle->managers.push_back(std::move(mgr));
      ++idx;
    }
  };
  return handle;
}

}  // namespace tmps::session
