#include "session/session_manager.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tmps::session {

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::Active: return "active";
    case SessionState::Detached: return "detached";
    case SessionState::Moving: return "moving";
    case SessionState::Forwarding: return "forwarding";
    case SessionState::Attached: return "attached";
    case SessionState::Expired: return "expired";
  }
  return "?";
}

SessionManager::SessionManager(MobilityEngine& engine, RuntimeEnv& env,
                               SessionConfig cfg)
    : engine_(&engine),
      broker_(&engine.broker()),
      env_(&env),
      tracer_(env.tracer()),
      cfg_(cfg) {
  if (obs::MetricsRegistry* mr = env_->metrics()) {
    const std::string id = std::to_string(broker_->id());
    dropped_overflow_ctr_ = &mr->counter(
        "tmps_session_dropped_total", {{"broker", id}, {"reason", "overflow"}});
    dropped_expiry_ctr_ = &mr->counter(
        "tmps_session_dropped_total", {{"broker", id}, {"reason", "expiry"}});
    resumes_ctr_ =
        &mr->counter("tmps_session_resumes_total", {{"broker", id}});
    sessions_gauge_ = &mr->gauge("tmps_sessions_active", {{"broker", id}});
    buffered_bytes_gauge_ =
        &mr->gauge("tmps_session_buffered_bytes", {{"broker", id}});
  }
}

BrokerId SessionManager::broker_id() const { return broker_->id(); }

double SessionManager::now() const { return env_->now(); }

void SessionManager::start(double until) {
  until_ = until;
  schedule_next(cfg_.start_delay > 0 ? cfg_.start_delay : cfg_.tick_interval);
}

void SessionManager::schedule_next(double delay) {
  env_->schedule(delay, [this] {
    if (env_->now() > until_) return;
    tick();
    schedule_next(cfg_.tick_interval);
  });
}

// --- client-facing API -------------------------------------------------------

SessionToken SessionManager::open(ClientId client,
                                  std::optional<Publication> will) {
  ClientStub* stub = engine_->find_client(client);
  if (!stub) return kNoToken;
  Session s;
  s.token = (static_cast<SessionToken>(broker_->id()) << 40) | ++nonce_;
  s.client = client;
  s.state = SessionState::Active;
  s.opened_at = s.last_heartbeat = now();
  if (will) {
    // The will gets its publication id up front so it can fire even after
    // the stub is dismantled.
    if (will->id().client == kNoClient) will->set_id(stub->allocate_id());
    s.will = std::move(will);
  }
  configure_stub(*stub);
  expired_.erase(client);
  sessions_[client] = std::move(s);
  ++stats_.opened;
  TMPS_EVENT(tracer_, kNoTxn, "session:open",
             {{"broker", std::to_string(broker_->id())},
              {"client", std::to_string(client)}});
  return sessions_[client].token;
}

bool SessionManager::heartbeat(ClientId client, SessionToken token,
                               Outputs& out) {
  auto it = sessions_.find(client);
  if (it == sessions_.end() || it->second.token != token) {
    // No local record: relay toward the token's home broker (the client may
    // be talking to a forwarding attachment point).
    const BrokerId home = home_of(token);
    if (home != kNoBroker && home != broker_->id()) {
      broker_->send_unicast(home, SessionHeartbeatMsg{token, client}, kNoTxn,
                            out);
      return true;
    }
    return false;
  }
  Session& s = it->second;
  s.last_heartbeat = now();
  if (s.state == SessionState::Attached && home_of(s.token) != broker_->id()) {
    broker_->send_unicast(home_of(s.token),
                          SessionHeartbeatMsg{s.token, client}, kNoTxn, out);
  }
  return true;
}

bool SessionManager::close(ClientId client, SessionToken token, bool fire,
                           Outputs& out) {
  auto it = sessions_.find(client);
  if (it == sessions_.end() || it->second.token != token) return false;
  Session& s = it->second;
  if (fire) fire_will(s, out);
  if (ClientStub* stub = engine_->find_client(client)) {
    if (s.state == SessionState::Forwarding) deliver_locally(*stub);
    if (stub->state() == ClientState::PauseOper) stub->resume();
    // Closing the session lifts the caps: the stub reverts to plain
    // movement-buffering semantics.
    stub->set_buffer_limits({});
    stub->set_drop_fn(nullptr);
  }
  ++stats_.closed;
  TMPS_EVENT(tracer_, kNoTxn, "session:close",
             {{"broker", std::to_string(broker_->id())},
              {"client", std::to_string(client)}});
  sessions_.erase(it);
  return true;
}

void SessionManager::disconnect(ClientId client) {
  auto it = sessions_.find(client);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.state == SessionState::Detached || s.state == SessionState::Expired) {
    return;
  }
  if (s.state == SessionState::Attached &&
      home_of(s.token) != broker_->id()) {
    // Remote-homed attachment: no stub here. Dropping the local record stops
    // the heartbeat relay, so the home's liveness sweep detaches the session
    // within its beat budget and buffering resumes there.
    sessions_.erase(it);
    return;
  }
  if (ClientStub* stub = engine_->find_client(client)) {
    if (s.state == SessionState::Forwarding) deliver_locally(*stub);
    if (stub->state() == ClientState::Started) stub->pause();
    // A stub mid-movement (PauseMove/PrepareStop) already buffers; the
    // session just starts its grace clock.
  }
  s.state = SessionState::Detached;
  s.detached_at = now();
  s.peer = kNoBroker;
  s.move_txn = kNoTxn;
  TMPS_EVENT(tracer_, kNoTxn, "session:detach",
             {{"broker", std::to_string(broker_->id())},
              {"client", std::to_string(client)}});
}

void SessionManager::reattach(ClientId client, SessionToken token,
                              Outputs& out) {
  const BrokerId home = home_of(token);
  if (home != broker_->id()) {
    // Pending attachment record; the home's SessionAck resolves its fate.
    Session& s = sessions_[client];
    s.token = token;
    s.client = client;
    s.state = SessionState::Attached;
    s.peer = home;
    s.attach_since = s.last_heartbeat = now();
    if (s.opened_at == 0) s.opened_at = now();
  }
  broker_->send_unicast(home, SessionResumeMsg{token, client, broker_->id()},
                        kNoTxn, out);
}

// --- SessionHandler ----------------------------------------------------------

void SessionManager::on_session(BrokerId from, const Message& msg,
                                Outputs& out) {
  if (const auto* m = std::get_if<SessionResumeMsg>(&msg.payload)) {
    on_resume(from, *m, out);
  } else if (const auto* m = std::get_if<SessionAckMsg>(&msg.payload)) {
    on_ack(*m, out);
  } else if (const auto* m = std::get_if<SessionForwardMsg>(&msg.payload)) {
    on_forward(*m);
  } else if (const auto* m = std::get_if<SessionOpenMsg>(&msg.payload)) {
    on_open_frame(*m, out);
  } else if (const auto* m = std::get_if<SessionHeartbeatMsg>(&msg.payload)) {
    heartbeat(m->client, m->token, out);
  } else if (const auto* m = std::get_if<SessionCloseMsg>(&msg.payload)) {
    close(m->client, m->token, m->fire_will, out);
  }
}

void SessionManager::on_resume(BrokerId from, const SessionResumeMsg& m,
                               Outputs& out) {
  (void)from;  // overlay previous hop; the reattach broker is m.at
  SessionAckMsg ack;
  ack.token = m.token;
  ack.client = m.client;
  ack.home = broker_->id();
  TMPS_EVENT(tracer_, kNoTxn, "session:resume",
             {{"broker", std::to_string(broker_->id())},
              {"client", std::to_string(m.client)},
              {"at", std::to_string(m.at)}});

  auto it = sessions_.find(m.client);
  if (it == sessions_.end() || it->second.token != m.token) {
    ack.verdict = expired_.count(m.client) ? SessionVerdict::Expired
                                           : SessionVerdict::Unknown;
    answer(m.at, std::move(ack), out);
    return;
  }
  Session& s = it->second;
  s.last_heartbeat = now();
  ClientStub* stub = engine_->find_client(m.client);
  if (!stub) {
    ack.verdict = SessionVerdict::Unknown;
    answer(m.at, std::move(ack), out);
    return;
  }

  if (m.at == broker_->id()) {
    // The client reappeared at home: resume in place.
    if (s.state == SessionState::Forwarding) deliver_locally(*stub);
    if (stub->state() == ClientState::PauseOper) stub->resume();
    s.state = SessionState::Active;
    s.peer = kNoBroker;
    s.move_txn = kNoTxn;
    ++stats_.resumed_local;
    if (resumes_ctr_) resumes_ctr_->inc();
    ack.verdict = SessionVerdict::Resumed;
    answer(m.at, std::move(ack), out);
    return;
  }

  if (s.state == SessionState::Moving) {
    // A movement is already in flight; re-answer idempotently.
    ack.verdict = SessionVerdict::Moving;
    ack.txn = s.move_txn;
    answer(m.at, std::move(ack), out);
    return;
  }

  if (cfg_.move_on_resume) {
    const MoveStart ms = engine_->try_initiate_move(m.client, m.at, out);
    if (ms.started()) {
      s.state = SessionState::Moving;
      s.peer = m.at;
      s.move_txn = ms.txn;
      ++stats_.resumed_move;
      if (resumes_ctr_) resumes_ctr_->inc();
      ack.verdict = SessionVerdict::Moving;
      ack.txn = ms.txn;
      if (s.will) {
        // The will re-homes with the session.
        ack.has_will = true;
        ack.will = *s.will;
      }
      answer(m.at, std::move(ack), out);
      return;
    }
  }

  if (cfg_.forward_on_refusal) {
    begin_forwarding(s, *stub, m.at);
    ++stats_.resumed_forward;
    if (resumes_ctr_) resumes_ctr_->inc();
    ack.verdict = SessionVerdict::Forwarding;
    answer(m.at, std::move(ack), out);
    return;
  }

  // No mobility and no forwarding: the stub resumes at home and deliveries
  // wait there (the poor-locality baseline).
  if (stub->state() == ClientState::PauseOper) stub->resume();
  s.state = SessionState::Active;
  ++stats_.resumed_local;
  if (resumes_ctr_) resumes_ctr_->inc();
  ack.verdict = SessionVerdict::Resumed;
  answer(m.at, std::move(ack), out);
}

void SessionManager::on_ack(const SessionAckMsg& m, Outputs& out) {
  (void)out;
  if (client_channel_) {
    Message msg;
    msg.id = broker_->next_message_id();
    msg.payload = m;
    client_channel_(m.client, msg);
  }
  auto it = sessions_.find(m.client);
  const bool pending =
      it != sessions_.end() && (it->second.state == SessionState::Attached ||
                                it->second.state == SessionState::Moving) &&
      home_of(it->second.token) != broker_->id();
  switch (m.verdict) {
    case SessionVerdict::Resumed:
      // The session lives at its home; a reattach placeholder here is moot.
      if (pending) sessions_.erase(it);
      break;
    case SessionVerdict::Moving: {
      if (home_of(m.token) == broker_->id()) break;
      Session& s = sessions_[m.client];
      s.token = m.token;
      s.client = m.client;
      s.state = SessionState::Moving;
      s.peer = m.home;
      s.move_txn = m.txn;
      if (s.attach_since == 0) s.attach_since = now();
      if (s.opened_at == 0) s.opened_at = now();
      if (m.has_will) s.will = m.will;
      break;
    }
    case SessionVerdict::Forwarding: {
      if (home_of(m.token) == broker_->id()) break;
      Session& s = sessions_[m.client];
      s.token = m.token;
      s.client = m.client;
      s.state = SessionState::Attached;
      s.peer = m.home;
      if (s.attach_since == 0) s.attach_since = now();
      if (s.opened_at == 0) s.opened_at = now();
      break;
    }
    case SessionVerdict::Expired:
    case SessionVerdict::Unknown:
      if (pending) sessions_.erase(it);
      break;
  }
}

void SessionManager::on_forward(const SessionForwardMsg& m) {
  for (const Publication& pub : m.pubs) {
    engine_->deliver_direct(m.client, pub);
    if (client_channel_) {
      Message msg;
      msg.id = broker_->next_message_id();
      msg.payload = PublishMsg{pub};
      client_channel_(m.client, msg);
    }
  }
}

void SessionManager::on_open_frame(const SessionOpenMsg& m, Outputs& out) {
  if (!engine_->find_client(m.client)) engine_->connect_client(m.client);
  std::optional<Publication> will;
  if (m.has_will) will = m.will;
  const SessionToken token = open(m.client, std::move(will));
  SessionAckMsg ack;
  ack.token = token;
  ack.client = m.client;
  ack.verdict =
      token == kNoToken ? SessionVerdict::Unknown : SessionVerdict::Resumed;
  ack.home = broker_->id();
  answer(broker_->id(), std::move(ack), out);
}

// --- timers ------------------------------------------------------------------

void SessionManager::tick() {
  const double t = now();
  Outputs out;

  std::vector<ClientId> ids;
  ids.reserve(sessions_.size());
  for (const auto& [c, s] : sessions_) ids.push_back(c);

  for (const ClientId c : ids) {
    auto it = sessions_.find(c);
    if (it == sessions_.end()) continue;
    Session& s = it->second;
    switch (s.state) {
      case SessionState::Active:
      case SessionState::Forwarding:
        // Heartbeat liveness: a session silent past its beat budget is
        // implicitly disconnected.
        if (cfg_.heartbeat_interval > 0 && cfg_.miss_factor > 0 &&
            t - s.last_heartbeat > cfg_.heartbeat_interval * cfg_.miss_factor) {
          disconnect(c);
        }
        break;
      case SessionState::Detached: {
        if (ClientStub* stub = engine_->find_client(c)) {
          // A stub that landed here via a movement that committed after the
          // client already vanished again arrives Started: park it.
          if (stub->state() == ClientState::Started) stub->pause();
          const std::size_t aged = stub->expire_buffer();
          (void)aged;  // accounted via the drop callback
          // A stub mid-movement must resolve before the session can be
          // dismantled.
          if (t - s.detached_at > cfg_.grace &&
              (stub->state() == ClientState::PauseOper ||
               stub->state() == ClientState::Started)) {
            expire(s, out);
          }
        } else if (t - s.detached_at > cfg_.grace) {
          expire(s, out);
        }
        break;
      }
      case SessionState::Moving: {
        if (home_of(s.token) == broker_->id()) {
          // Home side: the movement either committed (stub gone — the
          // session re-homed) or aborted (fall back to forwarding).
          if (!engine_->find_client(c)) {
            sessions_.erase(it);
            break;
          }
          const auto st = engine_->source_state(s.move_txn);
          if (st && *st == SourceCoordState::Abort) {
            ClientStub* stub = engine_->find_client(c);
            SessionAckMsg ack;
            ack.token = s.token;
            ack.client = c;
            ack.home = broker_->id();
            if (cfg_.forward_on_refusal && stub) {
              const BrokerId to = s.peer;
              begin_forwarding(s, *stub, to);
              ack.verdict = SessionVerdict::Forwarding;
              answer(to, std::move(ack), out);
            } else {
              s.state = SessionState::Active;
              s.move_txn = kNoTxn;
              ack.verdict = SessionVerdict::Resumed;
              answer(s.peer, std::move(ack), out);
              s.peer = kNoBroker;
            }
          }
        } else {
          // Reattach side: adopt once the movement installs the stub here.
          ClientStub* stub = engine_->find_client(c);
          if (stub && stub->state() == ClientState::Started) {
            s.token =
                (static_cast<SessionToken>(broker_->id()) << 40) | ++nonce_;
            s.state = SessionState::Active;
            s.peer = kNoBroker;
            s.move_txn = kNoTxn;
            s.last_heartbeat = t;
            if (s.will && s.will->id().client == kNoClient) {
              s.will->set_id(stub->allocate_id());
            }
            configure_stub(*stub);
            ++stats_.adopted;
            TMPS_EVENT(tracer_, kNoTxn, "session:adopt",
                       {{"broker", std::to_string(broker_->id())},
                        {"client", std::to_string(c)}});
            if (client_channel_) {
              SessionAckMsg ack;
              ack.token = s.token;
              ack.client = c;
              ack.verdict = SessionVerdict::Resumed;
              ack.home = broker_->id();
              Message msg;
              msg.id = broker_->next_message_id();
              msg.payload = ack;
              client_channel_(c, msg);
            }
          } else if (t - s.attach_since > 5 * cfg_.tick_interval) {
            // The movement stalled or aborted remotely; retry the resume
            // (idempotent — the home re-answers with its current mode).
            s.attach_since = t;
            broker_->send_unicast(
                home_of(s.token),
                SessionResumeMsg{s.token, c, broker_->id()}, kNoTxn, out);
          }
        }
        break;
      }
      case SessionState::Attached:
      case SessionState::Expired:
        break;
    }
  }

  // Tombstones outlive the grace window long enough for the repair sweeps
  // to retract the expired client's routing state, then go away — session
  // GC leaves no residue.
  std::erase_if(expired_, [&](const auto& kv) {
    return t - kv.second.detached_at > 2 * cfg_.grace;
  });

  refresh_gauges();
  engine_->emit(std::move(out));
}

void SessionManager::expire(Session& s, Outputs& out) {
  const ClientId client = s.client;
  fire_will(s, out);
  if (ClientStub* stub = engine_->find_client(client)) {
    // Notifications still buffered at expiry are lost with the session;
    // every one lands in the drop ledger before the stub goes away.
    for (const Publication& p : stub->take_buffer()) {
      note_drop(client, p, "expiry");
    }
  }
  engine_->remove_client(client);
  ++stats_.expired;
  TMPS_EVENT(tracer_, kNoTxn, "session:expire",
             {{"broker", std::to_string(broker_->id())},
              {"client", std::to_string(client)}});
  Session tomb = s;
  tomb.state = SessionState::Expired;
  expired_[client] = std::move(tomb);
  sessions_.erase(client);
}

void SessionManager::fire_will(Session& s, Outputs& out) {
  if (!s.will) return;
  Publication will = *s.will;
  if (will.id().client == kNoClient) {
    will.set_id({s.client, 0xFFFFFF});  // stub already gone; synthetic seq
  }
  for (auto& o : broker_->client_publish(s.client, will)) {
    out.push_back(std::move(o));
  }
  ++stats_.wills_fired;
  TMPS_EVENT(tracer_, kNoTxn, "session:will",
             {{"broker", std::to_string(broker_->id())},
              {"client", std::to_string(s.client)}});
  s.will.reset();
}

// --- forwarding --------------------------------------------------------------

void SessionManager::begin_forwarding(Session& s, ClientStub& stub,
                                      BrokerId to) {
  s.state = SessionState::Forwarding;
  s.peer = to;
  s.move_txn = kNoTxn;
  const ClientId client = s.client;
  stub.set_delivery_fn(
      [this, client](const Publication& pub) { forward_pub(client, pub); });
  TMPS_EVENT(tracer_, kNoTxn, "session:forward-begin",
             {{"broker", std::to_string(broker_->id())},
              {"client", std::to_string(client)},
              {"to", std::to_string(to)}});
  // Resuming flushes the detached-operation buffer through the forwarder.
  if (stub.state() == ClientState::PauseOper) stub.resume();
}

void SessionManager::forward_pub(ClientId client, const Publication& pub) {
  auto it = sessions_.find(client);
  if (it == sessions_.end() || it->second.state != SessionState::Forwarding) {
    engine_->deliver_direct(client, pub);
    return;
  }
  Outputs out;
  SessionForwardMsg f;
  f.token = it->second.token;
  f.client = client;
  f.origin = broker_->id();
  f.pubs.push_back(pub);
  broker_->send_unicast(it->second.peer, std::move(f), kNoTxn, out);
  engine_->emit(std::move(out));
  ++stats_.forwarded_pubs;
}

void SessionManager::deliver_locally(ClientStub& stub) {
  const ClientId client = stub.id();
  stub.set_delivery_fn([this, client](const Publication& pub) {
    engine_->deliver_direct(client, pub);
  });
}

// --- plumbing ----------------------------------------------------------------

void SessionManager::configure_stub(ClientStub& stub) {
  stub.set_buffer_limits(
      {cfg_.buffer_max_count, cfg_.buffer_max_bytes, cfg_.buffer_max_age});
  stub.set_buffer_clock([this] { return now(); });
  const ClientId client = stub.id();
  stub.set_drop_fn([this, client](const Publication& pub, const char* reason) {
    note_drop(client, pub, reason);
  });
}

void SessionManager::note_drop(ClientId client, const Publication& pub,
                               const char* reason) {
  const bool overflow = std::strcmp(reason, "overflow") == 0;
  if (overflow) {
    ++stats_.dropped_overflow;
    if (dropped_overflow_ctr_) dropped_overflow_ctr_->inc();
  } else {
    ++stats_.dropped_expiry;
    if (dropped_expiry_ctr_) dropped_expiry_ctr_->inc();
  }
  drop_log_.push_back(
      {pub.id(), client, overflow ? DropReason::Overflow : DropReason::Expiry});
}

void SessionManager::answer(BrokerId dest, SessionAckMsg ack, Outputs& out) {
  broker_->send_unicast(dest, std::move(ack), kNoTxn, out);
}

void SessionManager::refresh_gauges() {
  if (sessions_gauge_) {
    sessions_gauge_->set(static_cast<double>(sessions_.size()));
  }
  if (buffered_bytes_gauge_) {
    buffered_bytes_gauge_->set(static_cast<double>(buffered_bytes()));
  }
}

std::size_t SessionManager::buffered_bytes() const {
  std::size_t total = 0;
  for (const auto& [c, s] : sessions_) {
    if (const ClientStub* stub = engine_->find_client(c)) {
      total += stub->buffered_bytes();
    }
  }
  return total;
}

SessionToken SessionManager::token_of(ClientId client) const {
  auto it = sessions_.find(client);
  return it == sessions_.end() ? kNoToken : it->second.token;
}

SessionState SessionManager::state_of(ClientId client) const {
  auto it = sessions_.find(client);
  if (it != sessions_.end()) return it->second.state;
  if (expired_.count(client)) return SessionState::Expired;
  return SessionState::Expired;  // unknown reads as terminal
}

int SessionManager::repair_hint(ClientId client) const {
  if (expired_.count(client)) return 2;
  if (sessions_.count(client)) return 1;
  return 0;
}

std::vector<SessionInfo> SessionManager::snapshot() const {
  std::vector<SessionInfo> out;
  out.reserve(sessions_.size() + expired_.size());
  const auto fill = [&](const Session& s) {
    SessionInfo i;
    i.token = s.token;
    i.client = s.client;
    i.state = s.state;
    i.opened_at = s.opened_at;
    i.last_heartbeat = s.last_heartbeat;
    i.detached_at = s.detached_at;
    i.peer = s.peer;
    i.move_txn = s.move_txn;
    i.has_will = s.will.has_value();
    if (const ClientStub* stub = engine_->find_client(s.client)) {
      i.buffered = stub->buffered_count();
      i.buffered_bytes = stub->buffered_bytes();
    }
    out.push_back(i);
  };
  for (const auto& [c, s] : sessions_) fill(s);
  for (const auto& [c, s] : expired_) fill(s);
  return out;
}

}  // namespace tmps::session
