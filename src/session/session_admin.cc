#include "session/session_admin.h"

#include <sstream>

namespace tmps::session {

std::string sessions_json(const SessionManager& manager) {
  const SessionStats& s = manager.stats();
  const SessionConfig& c = manager.config();
  std::ostringstream os;
  os << "{\"broker\":" << manager.broker_id()
     << ",\"heartbeat_interval\":" << c.heartbeat_interval
     << ",\"grace\":" << c.grace << ",\"live\":" << manager.live_sessions()
     << ",\"expired_tombstones\":" << manager.expired_sessions()
     << ",\"buffered_bytes\":" << manager.buffered_bytes()
     << ",\"opened\":" << s.opened
     << ",\"resumed_local\":" << s.resumed_local
     << ",\"resumed_move\":" << s.resumed_move
     << ",\"resumed_forward\":" << s.resumed_forward
     << ",\"adopted\":" << s.adopted << ",\"expired\":" << s.expired
     << ",\"closed\":" << s.closed << ",\"wills_fired\":" << s.wills_fired
     << ",\"dropped_overflow\":" << s.dropped_overflow
     << ",\"dropped_expiry\":" << s.dropped_expiry
     << ",\"forwarded_pubs\":" << s.forwarded_pubs << ",\"sessions\":[";
  bool first = true;
  for (const SessionInfo& i : manager.snapshot()) {
    if (!first) os << ',';
    first = false;
    os << "{\"client\":" << i.client << ",\"token\":" << i.token
       << ",\"state\":\"" << to_string(i.state) << "\""
       << ",\"peer\":" << i.peer << ",\"move_txn\":" << i.move_txn
       << ",\"buffered\":" << i.buffered
       << ",\"buffered_bytes\":" << i.buffered_bytes
       << ",\"last_heartbeat\":" << i.last_heartbeat
       << ",\"has_will\":" << (i.has_will ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

void install_admin_routes(HttpAdminServer& server,
                          const SessionManager& manager) {
  server.add_route("/sessions", [&manager] {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = sessions_json(manager);
    return resp;
  });
}

}  // namespace tmps::session
