// Edge-client side of the session layer over TCP: a small client that dials
// a broker's listener (transport/tcp_transport.h), identifies itself with
// the kClientHello sentinel, and speaks session frames — open / resume /
// heartbeat / close upstream, acks and publications downstream.
//
// Reconnection is built in: connect() retries with exponential backoff plus
// deterministic per-client jitter (derived from the client id, so fleets of
// clients desynchronize without a randomness source), and resume() replays
// the stored resumption token at whichever broker the client reaches.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "pubsub/messages.h"

namespace tmps::session {

/// Reconnect policy of a TcpSessionClient.
struct ClientOptions {
  double backoff_base = 0.05;  ///< first retry delay, seconds
  double backoff_max = 2.0;    ///< backoff ceiling
  std::uint32_t max_attempts = 8;
};

class TcpSessionClient {
 public:
  using Options = ClientOptions;

  explicit TcpSessionClient(ClientId id, Options opt = {});
  ~TcpSessionClient();

  TcpSessionClient(const TcpSessionClient&) = delete;
  TcpSessionClient& operator=(const TcpSessionClient&) = delete;

  /// Dials 127.0.0.1:port, retrying with exponential backoff + jitter.
  /// Returns false when max_attempts are exhausted.
  bool connect(std::uint16_t port);
  /// Drops the socket without closing the session (a flaky link, not a
  /// goodbye). The broker sees EOF and starts the grace timer.
  void disconnect();
  bool connected() const { return fd_.load() >= 0; }

  bool open_session(const std::optional<Publication>& will = {});
  bool resume_session(std::uint64_t token);
  /// Re-sends the stored token (set by the last ack) — the reconnect path.
  bool resume_session() { return resume_session(token()); }
  bool heartbeat();
  bool close_session(bool fire_will);
  bool publish(const Publication& pub);
  bool subscribe(const Subscription& sub);
  bool advertise(const Advertisement& adv);

  /// Resumption token from the most recent ack (0 before the first ack).
  std::uint64_t token() const;
  /// Most recent session ack, if any.
  std::optional<SessionAckMsg> last_ack() const;
  /// Blocks until an ack newer than `than_acks` arrives or `timeout_s`
  /// elapses; returns the total acks seen.
  std::size_t wait_for_ack(std::size_t than_acks, double timeout_s) const;
  std::size_t acks_seen() const;
  /// Publications pushed down the connection so far.
  std::vector<Publication> deliveries() const;
  /// Connect attempts made over this client's lifetime (backoff telemetry).
  std::uint32_t attempts_made() const { return attempts_.load(); }
  /// The deterministic jitter fraction in [0,1) this client applies.
  double jitter() const { return jitter_; }

 private:
  bool send_frame(const Payload& payload);
  void reader_loop(int fd);
  void join_reader();

  ClientId id_;
  Options opt_;
  double jitter_;
  std::atomic<int> fd_{-1};
  std::thread reader_;
  std::atomic<std::uint32_t> attempts_{0};
  mutable std::mutex mu_;
  std::uint64_t token_ = 0;
  std::optional<SessionAckMsg> last_ack_;
  std::size_t acks_ = 0;
  std::vector<Publication> deliveries_;
  std::uint32_t next_msg_ = 1;
};

}  // namespace tmps::session
