// HTTP admin surface of the session layer: a `/sessions` route for the
// per-host HttpAdminServer (transport/http_admin.h) returning one JSON
// object with this broker's session activity — lifecycle counters, the
// per-session table (state, buffered backlog, peers, wills) and the drop
// accounting split by reason.
//
// The numeric series (tmps_sessions_active, tmps_session_dropped_total,
// tmps_session_buffered_bytes) already land in the host's MetricsRegistry,
// so /metrics and /timeseries expose them without extra wiring; this route
// adds the structured at-a-glance view probes and tests want.
#pragma once

#include <string>

#include "session/session_manager.h"
#include "transport/http_admin.h"

namespace tmps::session {

/// Registers GET /sessions on `server`. Call before server.start(); the
/// manager must outlive the server.
void install_admin_routes(HttpAdminServer& server,
                          const SessionManager& manager);

/// The /sessions response body (exposed for tests).
std::string sessions_json(const SessionManager& manager);

}  // namespace tmps::session
