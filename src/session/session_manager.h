// Edge-client session layer (the ROADMAP's intermittently-connected-device
// item): durable sessions over the raw ClientStub/MobileClient attachment.
//
// A session is opened by a hosted client and identified by an opaque
// resumption token that encodes the home broker (like TxnId encodes its
// coordinator), so any broker a client reappears at can route the resume.
// While the client is away the home broker keeps its stub paused: matched
// notifications buffer under byte/count/age caps (drops are accounted in
// tmps_session_dropped_total, never silent), and the exactly-once guard in
// ClientStub dedups the replay on resume.
//
// Connectivity-triggered mobility: a resume arriving from a broker other
// than the home turns into MobilityEngine::try_initiate_move toward that
// broker — the 3PC movement transaction carries the buffered notifications
// and the routing state follows the device. If the movement is refused the
// home falls back to resuming the stub in place and forwarding deliveries
// over the overlay (SessionForwardMsg) to wherever the client sits.
//
// Liveness is heartbeat-based; a session silent past the heartbeat budget is
// detached, and one detached past the grace window expires: its last-will
// publication fires, the stub is dismantled, and the routing entries left
// behind are retracted by the anti-entropy repair sweeps (which this layer
// hints via a session probe — see repair::RepairEngine::set_session_probe).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "broker/broker_config.h"
#include "core/mobility_engine.h"

namespace tmps::session {

using SessionToken = std::uint64_t;
constexpr SessionToken kNoToken = 0;

/// Home-broker view of a session's lifecycle.
enum class SessionState {
  Active,      ///< client connected, stub started
  Detached,    ///< client gone; grace timer running, notifications buffer
  Moving,      ///< resume elsewhere turned into a movement transaction
  Forwarding,  ///< movement refused; deliveries forwarded to the client
  Attached,    ///< (reattach broker) fed by a remote home via forwarding
  Expired,     ///< grace elapsed; will fired; tombstone for repair GC
};

const char* to_string(SessionState s);

/// Monotonic per-broker session activity counters (the drop counters mirror
/// into tmps_session_dropped_total in the metrics registry).
struct SessionStats {
  std::uint64_t opened = 0;
  std::uint64_t resumed_local = 0;    ///< resumed at the home broker
  std::uint64_t resumed_move = 0;     ///< resume became a movement txn
  std::uint64_t resumed_forward = 0;  ///< resume fell back to forwarding
  std::uint64_t adopted = 0;          ///< sessions adopted after a move
  std::uint64_t expired = 0;
  std::uint64_t closed = 0;
  std::uint64_t wills_fired = 0;
  std::uint64_t dropped_overflow = 0;  ///< buffer count/byte cap drops
  std::uint64_t dropped_expiry = 0;    ///< buffer age-cap + expiry drops
  std::uint64_t forwarded_pubs = 0;    ///< deliveries sent via forwarding
};

/// Why a buffered notification never reached the client. The drop log is
/// the manager's half of the soak auditor's expected-loss ledger.
enum class DropReason : std::uint8_t { Overflow = 0, Expiry = 1 };

struct DropRecord {
  PublicationId pub;
  ClientId client = kNoClient;
  DropReason reason = DropReason::Overflow;
};

/// One row of the GET /sessions admin view.
struct SessionInfo {
  SessionToken token = kNoToken;
  ClientId client = kNoClient;
  SessionState state = SessionState::Active;
  double opened_at = 0;
  double last_heartbeat = 0;
  double detached_at = 0;
  BrokerId peer = kNoBroker;  ///< forward/move destination (or home)
  TxnId move_txn = kNoTxn;
  std::size_t buffered = 0;
  std::size_t buffered_bytes = 0;
  bool has_will = false;
};

class SessionManager final : public SessionHandler {
 public:
  using Outputs = MobilityEngine::Outputs;
  /// Direct channel to a locally connected client (tcp_transport session
  /// connections); returns false when the client has no live channel.
  using ClientChannel = std::function<bool(ClientId, const Message&)>;

  /// Attach with engine.set_session_handler(&mgr). `env` must be the
  /// runtime the engine runs on; `cfg` is this broker's Session section.
  SessionManager(MobilityEngine& engine, RuntimeEnv& env, SessionConfig cfg);

  /// Schedules recurring timer sweeps until simulated time `until`.
  void start(double until);

  /// One timer sweep: heartbeat liveness, grace expiry, buffer-age caps,
  /// movement-adoption progress, gauge refresh. Public so tests can drive
  /// rounds manually. Emits via the engine's transmit hook.
  void tick();

  // --- client-facing API (invoked at the broker the client talks to) -------

  /// Opens a durable session for a client hosted here; registers the
  /// optional last-will. Returns kNoToken when the client is not hosted.
  SessionToken open(ClientId client, std::optional<Publication> will = {});

  /// Liveness beacon. Relays to the home broker when the session is
  /// remotely homed (forwarding attachment). Returns false for an unknown
  /// session.
  bool heartbeat(ClientId client, SessionToken token, Outputs& out);

  /// Graceful close: optionally fires the will, then dismantles the session
  /// without waiting out the grace window. The stub (and routing state)
  /// stays — closing a session is not disconnecting the client.
  bool close(ClientId client, SessionToken token, bool fire_will,
             Outputs& out);

  /// The transport noticed the client vanished: pause the stub (buffering
  /// starts) and arm the grace timer.
  void disconnect(ClientId client);

  /// The client reappeared *here* holding `token`. Routes a SessionResume
  /// to the token's home broker (self included — the local resume flows
  /// through the same path), answering with a SessionAck that this manager
  /// acts on (adopt / deliver forwarded traffic / report expiry).
  void reattach(ClientId client, SessionToken token, Outputs& out);

  // --- SessionHandler -------------------------------------------------------

  void on_session(BrokerId from, const Message& msg, Outputs& out) override;

  // --- introspection --------------------------------------------------------

  static BrokerId home_of(SessionToken token) {
    return static_cast<BrokerId>(token >> 40);
  }

  const SessionStats& stats() const { return stats_; }
  const SessionConfig& config() const { return cfg_; }
  BrokerId broker_id() const;
  /// Sessions in any non-tombstone state.
  std::size_t live_sessions() const { return sessions_.size(); }
  std::size_t expired_sessions() const { return expired_.size(); }
  SessionState state_of(ClientId client) const;
  /// Current resumption token for a client's session here (kNoToken when
  /// unknown). Movement adoption reissues tokens, so callers re-read this.
  SessionToken token_of(ClientId client) const;
  std::vector<SessionInfo> snapshot() const;
  /// Every buffered notification this broker dropped, with its reason —
  /// consumed by the flaky-fleet soak's loss auditor.
  const std::vector<DropRecord>& drop_log() const { return drop_log_; }
  /// Total bytes buffered across this broker's detached sessions.
  std::size_t buffered_bytes() const;

  void set_client_channel(ClientChannel ch) { client_channel_ = std::move(ch); }

  /// Repair-sweep hint for a client-hop routing entry: 0 = no session
  /// knowledge (default aging), 1 = live session (veto retraction while the
  /// grace window runs), 2 = expired session (retract immediately).
  int repair_hint(ClientId client) const;

 private:
  struct Session {
    SessionToken token = kNoToken;
    ClientId client = kNoClient;
    SessionState state = SessionState::Active;
    double opened_at = 0;
    double last_heartbeat = 0;
    double detached_at = 0;
    std::optional<Publication> will;
    BrokerId peer = kNoBroker;  ///< move/forward destination, or home when
                                ///< Attached at a reattach broker
    TxnId move_txn = kNoTxn;
    double attach_since = 0;  ///< reattach-broker adoption wait start
  };

  void on_resume(BrokerId from, const SessionResumeMsg& m, Outputs& out);
  void on_ack(const SessionAckMsg& m, Outputs& out);
  void on_forward(const SessionForwardMsg& m);
  void on_open_frame(const SessionOpenMsg& m, Outputs& out);

  /// Wires the stub's buffer caps, clock and drop accounting to this
  /// session.
  void configure_stub(ClientStub& stub);
  /// Restores the stub's plain local delivery (undoes forwarding).
  void deliver_locally(ClientStub& stub);
  void begin_forwarding(Session& s, ClientStub& stub, BrokerId to);
  void forward_pub(ClientId client, const Publication& pub);
  void fire_will(Session& s, Outputs& out);
  void expire(Session& s, Outputs& out);
  void answer(BrokerId dest, SessionAckMsg ack, Outputs& out);
  void note_drop(ClientId client, const Publication& pub, const char* reason);
  void refresh_gauges();
  void schedule_next(double delay);
  double now() const;

  MobilityEngine* engine_;
  Broker* broker_;
  RuntimeEnv* env_;
  obs::Tracer* tracer_;
  SessionConfig cfg_;
  double until_ = 0;
  std::uint64_t nonce_ = 0;
  SessionStats stats_;
  std::map<ClientId, Session> sessions_;
  /// Tombstones: expired sessions the repair sweeps still need to know
  /// about (fast-path orphan retraction). Pruned once the client's routing
  /// state is gone from this broker.
  std::map<ClientId, Session> expired_;
  std::vector<DropRecord> drop_log_;
  ClientChannel client_channel_;
  obs::Counter* dropped_overflow_ctr_ = nullptr;
  obs::Counter* dropped_expiry_ctr_ = nullptr;
  obs::Counter* resumes_ctr_ = nullptr;
  obs::Gauge* sessions_gauge_ = nullptr;
  obs::Gauge* buffered_bytes_gauge_ = nullptr;
};

}  // namespace tmps::session
