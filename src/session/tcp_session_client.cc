#include "session/tcp_session_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "pubsub/codec.h"
#include "transport/tcp_transport.h"

namespace tmps::session {

namespace {

bool write_full(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

bool read_full(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t k = ::recv(fd, p, n, 0);
    if (k <= 0) {
      if (k < 0 && errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

constexpr std::uint32_t kMaxFrame = 16u << 20;

}  // namespace

TcpSessionClient::TcpSessionClient(ClientId id, Options opt)
    : id_(id),
      opt_(opt),
      // Knuth multiplicative hash of the client id: a stable, well-spread
      // jitter fraction without a randomness source.
      jitter_(static_cast<double>((id * 2654435761u) % 1024u) / 1024.0) {}

TcpSessionClient::~TcpSessionClient() {
  disconnect();
  join_reader();
}

bool TcpSessionClient::connect(std::uint16_t port) {
  disconnect();
  join_reader();
  double delay = opt_.backoff_base;
  for (std::uint32_t attempt = 0; attempt < opt_.max_attempts; ++attempt) {
    attempts_.fetch_add(1);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const std::uint32_t hello = TcpTransport::kClientHello;
        const std::uint64_t id64 = id_;
        if (write_full(fd, &hello, sizeof(hello)) &&
            write_full(fd, &id64, sizeof(id64))) {
          fd_.store(fd);
          reader_ = std::thread([this, fd] { reader_loop(fd); });
          return true;
        }
      }
      ::close(fd);
    }
    // Exponential backoff with the per-client jitter fraction on top.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(delay * (1.0 + jitter_)));
    delay = std::min(delay * 2.0, opt_.backoff_max);
  }
  return false;
}

void TcpSessionClient::disconnect() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void TcpSessionClient::join_reader() {
  if (reader_.joinable()) reader_.join();
}

bool TcpSessionClient::send_frame(const Payload& payload) {
  const int fd = fd_.load();
  if (fd < 0) return false;
  Message msg;
  {
    std::lock_guard lock(mu_);
    msg.id = next_msg_++;
  }
  msg.payload = payload;
  const std::string body = encode_message(msg);
  const std::uint32_t len = static_cast<std::uint32_t>(body.size()) + 4;
  std::string frame;
  frame.reserve(4 + len);
  frame.append(reinterpret_cast<const char*>(&len), 4);
  const std::uint32_t sender = 0;  // clients have no broker id
  frame.append(reinterpret_cast<const char*>(&sender), 4);
  frame.append(body);
  return write_full(fd, frame.data(), frame.size());
}

bool TcpSessionClient::open_session(const std::optional<Publication>& will) {
  SessionOpenMsg m;
  m.client = id_;
  if (will) {
    m.has_will = true;
    m.will = *will;
  }
  return send_frame(m);
}

bool TcpSessionClient::resume_session(std::uint64_t token) {
  if (token == 0) return false;
  SessionResumeMsg m;
  m.token = token;
  m.client = id_;
  return send_frame(m);
}

bool TcpSessionClient::heartbeat() {
  SessionHeartbeatMsg m;
  m.token = token();
  m.client = id_;
  return send_frame(m);
}

bool TcpSessionClient::close_session(bool fire_will) {
  SessionCloseMsg m;
  m.token = token();
  m.client = id_;
  m.fire_will = fire_will;
  return send_frame(m);
}

bool TcpSessionClient::publish(const Publication& pub) {
  return send_frame(PublishMsg{pub});
}

bool TcpSessionClient::subscribe(const Subscription& sub) {
  return send_frame(SubscribeMsg{sub});
}

bool TcpSessionClient::advertise(const Advertisement& adv) {
  return send_frame(AdvertiseMsg{adv});
}

std::uint64_t TcpSessionClient::token() const {
  std::lock_guard lock(mu_);
  return token_;
}

std::optional<SessionAckMsg> TcpSessionClient::last_ack() const {
  std::lock_guard lock(mu_);
  return last_ack_;
}

std::size_t TcpSessionClient::acks_seen() const {
  std::lock_guard lock(mu_);
  return acks_;
}

std::size_t TcpSessionClient::wait_for_ack(std::size_t than_acks,
                                           double timeout_s) const {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard lock(mu_);
      if (acks_ > than_acks) return acks_;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::lock_guard lock(mu_);
  return acks_;
}

std::vector<Publication> TcpSessionClient::deliveries() const {
  std::lock_guard lock(mu_);
  return deliveries_;
}

void TcpSessionClient::reader_loop(int fd) {
  while (true) {
    std::uint32_t len = 0;
    if (!read_full(fd, &len, sizeof(len))) break;
    if (len < 4 || len > kMaxFrame) break;
    std::string frame(len, '\0');
    if (!read_full(fd, frame.data(), len)) break;
    const std::optional<Message> msg =
        decode_message(std::string_view(frame).substr(4));
    if (!msg) continue;
    std::lock_guard lock(mu_);
    if (const auto* ack = std::get_if<SessionAckMsg>(&msg->payload)) {
      last_ack_ = *ack;
      ++acks_;
      if (ack->token != 0) token_ = ack->token;
    } else if (const auto* pub = std::get_if<PublishMsg>(&msg->payload)) {
      deliveries_.push_back(pub->pub);
    }
  }
  // Only clear fd_ if nobody replaced the socket already.
  int expected = fd;
  fd_.compare_exchange_strong(expected, -1);
}

}  // namespace tmps::session
