#include "session/tcp_session_host.h"

#include "session/session_admin.h"

namespace tmps::session {

TcpSessionHost::TcpSessionHost(TcpTransport& transport, SessionConfig cfg)
    : transport_(&transport), cfg_(cfg) {
  for (BrokerId b = 1; b <= transport.overlay().broker_count(); ++b) {
    MobilityEngine& engine = transport.engine(b);
    auto mgr = std::make_unique<SessionManager>(engine, transport, cfg_);
    engine.set_session_handler(mgr.get());
    // Deliveries (stub flushes, forwarded publications) go down the client's
    // socket; a dead socket just drops the frame — the session layer's
    // buffering only covers the *detached* state, matching push semantics.
    engine.set_delivery_sink(
        [this, b](ClientId c, const Publication& pub, SimTime) {
          Message m;
          m.payload = PublishMsg{pub};
          transport_->send_to_client(b, c, m);
        });
    mgr->set_client_channel([this, b](ClientId c, const Message& m) {
      return transport_->send_to_client(b, c, m);
    });
    transport.add_admin_route(b, "/sessions",
                              [raw = mgr.get()]() -> HttpResponse {
                                return {200, "application/json",
                                        sessions_json(*raw)};
                              });
    managers_.push_back(std::move(mgr));
  }
  transport.set_session_frame_handler(
      [this](BrokerId b, ClientId client, const Message& msg) {
        on_client_frame(b, client, msg);
      });
  transport.set_client_gone_handler([this](BrokerId b, ClientId client) {
    transport_->run_on(b, [this, b, client](MobilityEngine&,
                                            Broker::Outputs&) {
      if (SessionManager* m = manager_of(b)) m->disconnect(client);
    });
  });
}

TcpSessionHost::~TcpSessionHost() { stop(); }

SessionManager* TcpSessionHost::manager_of(BrokerId b) const {
  for (const auto& m : managers_) {
    if (m->broker_id() == b) return m.get();
  }
  return nullptr;
}

void TcpSessionHost::start() {
  for (const auto& m : managers_) schedule_tick(m->broker_id());
}

void TcpSessionHost::schedule_tick(BrokerId b) {
  transport_->schedule(cfg_.tick_interval, [this, b] {
    if (stopped_.load()) return;
    transport_->run_on(b, [this, b](MobilityEngine&, Broker::Outputs&) {
      if (SessionManager* m = manager_of(b)) m->tick();
    });
    schedule_tick(b);
  });
}

void TcpSessionHost::on_client_frame(BrokerId b, ClientId client,
                                     const Message& msg) {
  transport_->run_on(b, [this, b, client, &msg](MobilityEngine& engine,
                                                Broker::Outputs& out) {
    SessionManager* m = manager_of(b);
    if (!m) return;
    if (std::holds_alternative<SessionOpenMsg>(msg.payload)) {
      m->on_session(b, msg, out);
    } else if (const auto* r = std::get_if<SessionResumeMsg>(&msg.payload)) {
      m->reattach(client, r->token, out);
    } else if (const auto* h = std::get_if<SessionHeartbeatMsg>(&msg.payload)) {
      m->heartbeat(client, h->token, out);
    } else if (const auto* c = std::get_if<SessionCloseMsg>(&msg.payload)) {
      m->close(client, c->token, c->fire_will, out);
    } else if (const auto* p = std::get_if<PublishMsg>(&msg.payload)) {
      engine.publish(client, p->pub, out);
    } else if (const auto* s = std::get_if<SubscribeMsg>(&msg.payload)) {
      engine.subscribe(client, s->sub.filter, out);
    } else if (const auto* a = std::get_if<AdvertiseMsg>(&msg.payload)) {
      engine.advertise(client, a->adv.filter, out);
    }
  });
}

}  // namespace tmps::session
