// Scenario glue for the session layer, mirroring repair/scenario_repair:
// chains onto ScenarioConfig::post_engines so that when
// `cfg.broker.session.enabled` is set (or TMPS_SESSION=1), every broker gets
// a SessionManager attached to its mobility engine with timer sweeps running
// for the scenario's duration.
#pragma once

#include <memory>
#include <vector>

#include "core/scenario.h"
#include "repair/scenario_repair.h"
#include "session/session_manager.h"

namespace tmps::session {

/// Owns the per-broker session managers for one Scenario run. Keep the
/// handle alive for the lifetime of the Scenario; it is also how benches and
/// tests drive session churn (open/disconnect/reattach) and read stats.
struct SessionHandle {
  std::vector<std::unique_ptr<SessionManager>> managers;

  SessionManager* manager_of(BrokerId b) const {
    for (const auto& m : managers) {
      if (m->broker_id() == b) return m.get();
    }
    return nullptr;
  }
};

/// Installs the session layer into `cfg` (composable with install_repair and
/// any existing post_engines hook). No-op at run time unless
/// cfg.broker.session.enabled. When `repair` is passed (install_repair's
/// handle from the same cfg), each broker's repair engine gets its session
/// probe wired to the co-located manager, so orphan retraction defers to
/// live grace windows and fast-tracks expired sessions.
std::shared_ptr<SessionHandle> install_sessions(
    ScenarioConfig& cfg, std::shared_ptr<repair::RepairHandle> repair = {});

}  // namespace tmps::session
