// The mobile container attached to each broker (Sec. 4.1): hosts client
// stubs and runs the movement protocols.
//
// Two protocols are implemented:
//
//  * Reconfiguration (the paper's contribution, Sec. 4.2-4.4): a 3PC-style
//    conversation between source and target coordinators — negotiate /
//    approve / reject / state / ack (Fig. 3) — in which the `approve`
//    message installs the post-move (shadow) routing configuration hop-by-
//    hop from target to source and the `state` message commits it hop-by-hop
//    from source to target. Movement cost is proportional to the path
//    length, independent of covering structure.
//
//  * Traditional (the covering-based baseline, Sec. 2/4.4): the target
//    re-issues the client's subscriptions/advertisements as ordinary pub/sub
//    operations (fresh incarnations) and the source then unsubscribes/
//    unadvertises the old ones — both of which trigger end-to-end
//    propagation and, with covering enabled, quench/retract/un-quench
//    cascades.
//
// The engine is the broker's ControlHandler: it processes movement messages
// (including their hop-by-hop legs) and intercepts notifications destined
// for hosted clients so paused/moving clients buffer instead of receiving.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "broker/broker.h"
#include "core/client_stub.h"
#include "obs/trace.h"
#include "sim/runtime_env.h"

namespace tmps {

enum class MobilityProtocol { Reconfiguration, Traditional };

const char* to_string(MobilityProtocol p);

/// Source-coordinator states (Fig. 4). Abort/Commit are terminal.
enum class SourceCoordState { Init, Wait, Prepare, Abort, Commit };
/// Target-coordinator states (Fig. 4).
enum class TargetCoordState { Init, Prepare, Abort, Commit };

const char* to_string(SourceCoordState s);
const char* to_string(TargetCoordState s);

/// Why initiate_move refused to even start a transaction (local admission;
/// distinct from a remote reject/abort, which starts and then resolves).
enum class MoveRefusal {
  None,          ///< the movement started
  UnknownClient, ///< no such client hosted here
  InvalidTarget, ///< target is this broker or not in the overlay
  Busy,          ///< a movement transaction is already in flight
  NotRunning,    ///< client exists but is not in a movable state
};

const char* to_string(MoveRefusal r);

/// Result of a movement-initiation attempt: either a live transaction id or
/// a typed refusal. Callers that only retry on Busy (the balancer, tests
/// exercising concurrent moves) need the distinction kNoTxn used to erase.
struct MoveStart {
  TxnId txn = kNoTxn;
  MoveRefusal refusal = MoveRefusal::None;
  bool started() const { return txn != kNoTxn; }
};

struct MobilityConfig {
  MobilityProtocol protocol = MobilityProtocol::Reconfiguration;
  /// Target-side admission: refuse incoming clients (tests the reject path).
  bool accept_clients = true;
  /// Refuse incoming clients beyond this many hosted ones.
  std::size_t max_hosted_clients = static_cast<std::size_t>(-1);
  /// Source coordinator timeout awaiting approve/reject (wait state); 0
  /// disables (blocking variant, for unbounded-delay networks).
  double negotiate_timeout = 0;
  /// Coordinator timeout in prepare states; 0 disables (blocking variant).
  double prepare_timeout = 0;
};

/// Attachment point for the anti-entropy repair subsystem (src/repair).
/// The engine answers transaction-resolution probes itself (it owns the
/// coordinator records); digests, re-forward requests and verdicts arriving
/// at this broker are handed to the attached handler.
class RepairHandler {
 public:
  virtual ~RepairHandler() = default;
  virtual void on_repair(BrokerId from, const Message& msg,
                         std::vector<std::pair<BrokerId, Message>>& out) = 0;
};

/// Attachment point for the edge-client session layer (src/session).
/// Session wire messages (open / resume / ack / heartbeat / close /
/// forward) arriving at this broker are handed to the attached handler.
class SessionHandler {
 public:
  virtual ~SessionHandler() = default;
  virtual void on_session(BrokerId from, const Message& msg,
                          std::vector<std::pair<BrokerId, Message>>& out) = 0;
};

class MobilityEngine final : public ControlHandler {
 public:
  using Outputs = Broker::Outputs;
  /// Application-level delivery observer: (client, publication, time).
  using DeliverySink =
      std::function<void(ClientId, const Publication&, SimTime)>;
  /// Movement-completion observer (fires at the broker where the movement
  /// resolves: source on commit/reject, target on traditional completion).
  using MoveCallback = std::function<void(const MovementRecord&)>;

  MobilityEngine(Broker& broker, RuntimeEnv& env, MobilityConfig cfg = {});

  Broker& broker() { return *broker_; }
  const MobilityConfig& config() const { return cfg_; }
  /// Runtime-adjustable knobs (admission control, timeouts) for tests and
  /// adaptive deployments.
  MobilityConfig& mutable_config() { return cfg_; }
  BrokerId broker_id() const;

  /// How the engine emits messages outside a broker processing context
  /// (timer callbacks). Must be set before timeouts are enabled.
  void set_transmit(std::function<void(Outputs)> fn) {
    transmit_ = std::move(fn);
  }

  /// Hands messages to the configured transmit hook (used by client facades
  /// driving the engine from outside a processing context).
  void emit(Outputs out) {
    if (transmit_ && !out.empty()) transmit_(std::move(out));
  }
  void set_delivery_sink(DeliverySink sink) { delivery_ = std::move(sink); }
  void set_move_callback(MoveCallback cb) { move_cb_ = std::move(cb); }

  // --- client hosting & operations -----------------------------------------

  /// Creates and starts a stationary client at this broker.
  ClientStub& connect_client(ClientId id);
  ClientStub* find_client(ClientId id);
  const ClientStub* find_client(ClientId id) const;
  std::size_t hosted_clients() const { return clients_.size(); }

  /// Dismantles a hosted stub outside the movement protocol (session expiry
  /// GC). The client's routing entries are left behind as orphans for the
  /// repair sweeps to retract. Returns false when the client is not hosted.
  bool remove_client(ClientId id);

  /// Feeds a publication straight to the delivery sink, bypassing stub
  /// routing — the reattachment broker's half of session forwarding, where
  /// exactly-once is already enforced by the forwarding stub's guard.
  void deliver_direct(ClientId client, const Publication& pub) {
    if (delivery_) delivery_(client, pub, env_->now());
  }

  /// Issues a subscription/advertisement for a hosted client. Returns the
  /// assigned id; messages to transmit are appended to `out`.
  SubscriptionId subscribe(ClientId client, const Filter& f, Outputs& out);
  AdvertisementId advertise(ClientId client, const Filter& f, Outputs& out);
  void unsubscribe(ClientId client, const SubscriptionId& id, Outputs& out);
  void unadvertise(ClientId client, const AdvertisementId& id, Outputs& out);

  /// Publishes on behalf of a client. While the client cannot publish
  /// (paused or moving) the command is queued and replayed on resume,
  /// as the stub layer must "queue commands from the application".
  void publish(ClientId client, Publication pub, Outputs& out);

  /// Starts a movement transaction for a hosted client towards `target`.
  /// Returns the transaction id plus a typed refusal when nothing started.
  MoveStart try_initiate_move(ClientId client, BrokerId target, Outputs& out);

  /// Convenience form of try_initiate_move for callers that only need the
  /// transaction id (kNoTxn on any refusal).
  TxnId initiate_move(ClientId client, BrokerId target, Outputs& out) {
    return try_initiate_move(client, target, out).txn;
  }

  /// Ids of the clients hosted in this container (balancer candidate
  /// enumeration; pair with find_client for the profile).
  std::vector<ClientId> client_ids() const;

  // --- ControlHandler --------------------------------------------------------

  void on_control(BrokerId from, const Message& msg,
                  std::vector<std::pair<BrokerId, Message>>& out) override;
  bool intercept_notification(ClientId client, const Publication& pub) override;
  void snapshot_into(obs::BrokerSnapshot& snap) const override;
  /// Publication provenance marks hops taken while this broker coordinates
  /// an in-flight movement (the latency the paper's Fig. 8 attributes to
  /// reconfiguration windows).
  bool movement_window_open() const override {
    return has_active_transactions();
  }

  // --- introspection (tests, global-state-graph checks) ---------------------

  std::optional<SourceCoordState> source_state(TxnId txn) const;
  std::optional<TargetCoordState> target_state(TxnId txn) const;
  bool has_active_transactions() const {
    return !source_moves_.empty() || !target_moves_.empty();
  }

  // --- anti-entropy repair support (src/repair) ------------------------------

  /// Repair messages other than probes (digest / request / verdict) arriving
  /// at this broker are dispatched to `handler` (not owned; may be null).
  void set_repair_handler(RepairHandler* handler) { repair_ = handler; }

  /// Session wire messages arriving at this broker are dispatched to
  /// `handler` (not owned; may be null).
  void set_session_handler(SessionHandler* handler) { session_ = handler; }

  /// Coordinator-side verdict for `txn` from this broker's transaction
  /// records. A transaction this coordinator has no record of can never
  /// commit, so it resolves to Aborted — safe for the asker to unwind.
  RepairVerdictMsg resolve_txn(TxnId txn) const;

  /// Applies a terminal repair verdict to this broker's state for `txn`:
  /// Committed re-runs the hop-local commit hand-off over whatever shadow
  /// entries remain; Aborted unwinds them and dismantles a parked target-
  /// coordinator precommit (including a traditional target's re-issued
  /// profile). InFlight is a no-op.
  void repair_resolve_txn(const RepairVerdictMsg& v, Outputs& out);

  /// Sweeps this coordinator's parked transactions older than `stale_after`:
  /// a source stuck awaiting approve aborts (nothing downstream can have
  /// committed); a source past its commit point retransmits the idempotent
  /// state message (never aborts); a target stuck in precommit probes the
  /// source coordinator for the outcome (never aborts unilaterally — the
  /// source may have passed its commit point with the state message lost).
  /// Returns the number of corrective actions taken.
  std::size_t repair_sweep_parked(double stale_after, Outputs& out);

 private:
  struct SourceMove {
    TxnId txn = kNoTxn;
    ClientId client = kNoClient;
    BrokerId target = kNoBroker;
    SimTime start = 0;
    SourceCoordState state = SourceCoordState::Init;
    MobilityProtocol protocol = MobilityProtocol::Reconfiguration;
    std::uint64_t timer_gen = 0;
    /// Copy of the state message for idempotent retry on prepare timeout.
    std::optional<MoveStateMsg> pending_state;
    /// Trace spans: the whole movement, and the currently running phase
    /// (prepare while awaiting approve/ready, commit while awaiting ack).
    obs::SpanId move_span = obs::kNoSpan;
    obs::SpanId phase_span = obs::kNoSpan;
  };
  struct TargetMove {
    TxnId txn = kNoTxn;
    ClientId client = kNoClient;
    BrokerId source = kNoBroker;
    SimTime start = 0;
    TargetCoordState state = TargetCoordState::Init;
    std::vector<SubscriptionId> sub_ids;
    std::vector<AdvertisementId> adv_ids;
    std::uint64_t timer_gen = 0;
    /// Target-side precommit span (negotiate accepted -> state/abort).
    obs::SpanId span = obs::kNoSpan;
  };

  // Reconfiguration-protocol handlers.
  void on_negotiate(const MoveNegotiateMsg& m, TxnId cause, Outputs& out);
  void on_approve_hop(BrokerId from, const Message& msg, Outputs& out);
  void on_reject(const MoveRejectMsg& m, Outputs& out);
  void on_state_hop(BrokerId from, const Message& msg, Outputs& out);
  void on_ack(const MoveAckMsg& m, Outputs& out);
  void on_abort_hop(BrokerId from, const Message& msg, Outputs& out);

  // Traditional-protocol handlers.
  void on_trad_request(const TradMoveRequestMsg& m, Outputs& out);
  void on_trad_ready(const TradReadyMsg& m, Outputs& out);
  void on_trad_reject(const TradRejectMsg& m, Outputs& out);
  void on_buffered_state(const BufferedStateMsg& m, Outputs& out);

  // Anti-entropy repair.
  void on_repair_probe(const RepairProbeMsg& p, TxnId cause, Outputs& out);
  void retransmit_pending_state(const SourceMove& m, Outputs& out);
  /// Aborts a source coordinator stuck in Wait (re-issuing a traditional
  /// mover's retracted profile first) and resumes the client at the source.
  void abort_parked_source(SourceMove& m, Outputs& out);

  // Hop-by-hop routing reconfiguration (Sec. 4.4).
  void install_shadows(const MoveApproveMsg& m);
  void commit_shadows_here(const MoveStateMsg& m, Outputs& out);
  void abort_shadows_here(const MoveAbortMsg& m);
  /// Applies the paper's three PRT cases after a moved advertisement's
  /// configuration commits at this broker.
  void fix_prt_for_moved_adv(const Advertisement& adv, BrokerId target,
                             TxnId cause, Outputs& out);

  void finish_source_move(SourceMove& m, bool committed, Outputs& out);
  void source_timeout(TxnId txn, SourceCoordState expected);
  void target_timeout(TxnId txn);
  void arm_source_timer(SourceMove& m, double delay);
  void arm_target_timer(TargetMove& m, double delay);

  /// Replays publish commands a client queued while it could not publish.
  void drain_commands(ClientStub& stub, Outputs& out);

  TxnId next_txn_id();
  Hop client_hop(ClientId c) const { return Hop::of_client(c); }
  Hop toward(BrokerId other) const;

  Broker* broker_;
  RuntimeEnv* env_;
  obs::Tracer* tracer_;  // the host's tracer (may be null)
  MobilityConfig cfg_;
  std::function<void(Outputs)> transmit_;
  DeliverySink delivery_;
  MoveCallback move_cb_;
  RepairHandler* repair_ = nullptr;
  SessionHandler* session_ = nullptr;
  std::map<ClientId, std::unique_ptr<ClientStub>> clients_;
  std::map<TxnId, SourceMove> source_moves_;
  std::map<TxnId, TargetMove> target_moves_;
  std::uint64_t txn_seq_ = 0;
};

}  // namespace tmps
