// Experiment driver: wires an overlay, simulated network, mobility engines,
// publishers and subscriber populations into the movement scenarios of the
// paper's evaluation (Sec. 5), and exposes the metrics its figures plot.
//
// Population model (matching the paper's description):
//  * subscribers connect to the ends of "move pairs" (default: brokers 1 and
//    2, moving to 13 and 14 respectively; Fig. 6 topology);
//  * each group of 10 subscribers forms an independent covering family drawn
//    from the configured Fig. 7 workload — subscription number i of a family
//    is held by one client; odd-numbered subscriptions sit on the first move
//    pair, even-numbered on the second (as in Fig. 8);
//  * stationary publishers at the leaf brokers advertise the full content
//    space and publish periodically (background pub/sub activity);
//  * moving clients pause at each broker (default 10 s) and move back and
//    forth between the ends of their pair.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/mobility_engine.h"
#include "obs/audit.h"
#include "pubsub/workload.h"
#include "sim/network.h"

namespace tmps {

class Scenario;

struct ScenarioConfig {
  // Network.
  std::optional<Overlay> overlay;  // default: Overlay::paper_default()
  /// Per-broker options (covering, covering index, admin, observability).
  /// broker.obs supplies defaults for the sink paths below; populate it via
  /// BrokerConfig::from_env to honour TMPS_TRACE / TMPS_AUDIT.
  BrokerConfig broker;
  NetworkProfile net = NetworkProfile::lan();
  MobilityConfig mobility;

  // Subscriber population.
  WorkloadKind workload = WorkloadKind::Covered;
  std::uint32_t total_clients = 400;
  /// Only the first `moving_clients` clients move; the rest are stationary.
  std::uint32_t moving_clients = static_cast<std::uint32_t>(-1);
  std::vector<std::pair<BrokerId, BrokerId>> move_pairs = {{1, 13}, {2, 14}};
  double pause_between_moves = 10.0;
  double join_window = 5.0;

  /// Moving clients are *publishers* (they advertise their family filter
  /// instead of subscribing): exercises the advertisement-reconfiguration
  /// machinery of Sec. 4.4 at scale. Stationary clients still subscribe.
  bool movers_are_publishers = false;

  /// Overrides the filter of client k (0-based); default is the family
  /// workload assignment described above.
  std::function<Filter(std::uint32_t)> filter_override;
  /// Overrides which clients move: return true if client k moves. Takes
  /// precedence over `moving_clients`.
  std::function<bool(std::uint32_t)> mover_override;
  /// Overrides the home (join) broker of client k; default is the first end
  /// of the client's move pair. Skewed-placement experiments use this with
  /// zipf_broker_placement to concentrate clients on a few brokers.
  std::function<BrokerId(std::uint32_t)> home_override;

  // Publishers.
  std::vector<BrokerId> publisher_brokers = {6, 7, 10, 11};
  /// Seconds between publications per publisher; 0 disables publishing.
  double publish_interval = 1.0;

  /// Background pub/sub activity by *stationary* clients (the paper's
  /// conclusion: "unsubscriptions by non-mobile clients hardly affect the
  /// performance of the reconfiguration protocol"): every stationary client
  /// unsubscribes and re-subscribes (fresh incarnation) at this period.
  /// 0 disables churn.
  double background_churn_interval = 0.0;

  // Schedule.
  double duration = 200.0;
  /// Movements starting before this time are excluded from summaries (the
  /// paper ignores the join/setup phase).
  double warmup = 40.0;
  std::uint64_t seed = 1;

  // Observability. When `trace_path` is set the run records movement spans,
  // per-hop events and covering events, then flushes them as JSONL (joined
  // to message counts via per-movement "movement:stats" events). When
  // `metrics_path` is set the metrics registry snapshot (including per-link
  // message counters) is written alongside. `run_label` tags every record so
  // a bench sweep can append multiple runs into one file.
  std::string trace_path;
  std::string metrics_path;
  /// Windowed time-series sink (NDJSON, one object per window). Ticks run at
  /// broker.obs.timeseries_interval; defaults to trace_dir/timeseries.jsonl
  /// when a trace_dir is configured and the interval is positive.
  std::string timeseries_path;
  /// Stage-profiler sink: per-broker stage rows land in `profile_path`
  /// (NDJSON) and collapsed stacks in `profile_path + ".collapsed"`.
  /// Defaults to trace_dir/profile.ndjson when broker.obs.profile is on.
  std::string profile_path;
  std::string run_label;
  /// Append to existing files instead of truncating (multi-run sweeps).
  bool trace_append = false;

  /// Run the embedded movement-invariant auditor (obs/audit.h) over the
  /// finished run: trace + final routing snapshots + delivery accounting.
  /// Read the verdict via Scenario::audit_report(). Implies tracing (the
  /// auditor needs the movement spans), even without a trace_path sink.
  bool audit = false;
  /// Write one final obs::BrokerSnapshot JSONL line per broker here
  /// (honours trace_append / run_label like the other sinks).
  std::string snapshot_path;

  /// Called after the network and engines are built, before any events run.
  /// Tests use this to attach a FailureInjector or arm message faults.
  std::function<void(SimNetwork&)> post_build;

  /// Called once the mobility engines exist (end of build, before events).
  /// The load-balancing control plane (src/control) attaches here — it
  /// layers *above* the engines, so the glue lives in the hook rather than
  /// in the scenario itself.
  std::function<void(Scenario&)> post_engines;
  /// Observes every finished movement (after the scenario's own
  /// bookkeeping). The balancer uses this to learn commit/abort outcomes.
  std::function<void(const MovementRecord&)> movement_observer;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);
  ~Scenario();

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Builds the system and runs the schedule until `cfg.duration`.
  void run();

  SimNetwork& net() { return *net_; }
  Stats& stats() { return net_->stats(); }
  MobilityEngine& engine(BrokerId b) { return *engines_[b]; }
  const std::map<BrokerId, MobilityEngine*>& engines() const {
    return engines_;
  }
  const ScenarioConfig& config() const { return cfg_; }

  /// Client ids are 1000 + k for subscriber k, 1 + p for publisher p.
  static ClientId subscriber_id(std::uint32_t k) { return 1000 + k; }
  static ClientId publisher_id(std::uint32_t p) { return 1 + p; }

  // --- result series (the quantities the paper's figures plot) -------------

  /// Committed-movement latency over the steady-state window.
  Summary latency() const;
  /// Mean messages per committed movement in the window.
  double messages_per_movement() const;
  /// Committed movements in the window.
  std::uint64_t movements() const;
  /// All movement records (for scatter plots like Fig. 8).
  const std::vector<MovementRecord>& movement_records() const;

  // --- delivery audit --------------------------------------------------------

  struct Audit {
    std::uint64_t delivered = 0;
    std::uint64_t duplicates = 0;  // same publication twice to one client
    /// Matching publications never delivered to *stationary* subscribers
    /// (computed at the end of run()). Stationary clients are entitled to
    /// every match: any loss here is collateral damage from other clients'
    /// movements — the transient inconsistency of the traditional protocol.
    std::uint64_t stationary_losses = 0;
    /// Matching (stationary client, publication) pairs checked.
    std::uint64_t stationary_expected = 0;
    /// Matching publications never delivered to *moving* subscribers — the
    /// traditional protocol's hand-off window loses these; the
    /// reconfiguration protocol guarantees zero (Sec. 3.4 consistency).
    std::uint64_t mover_losses = 0;
    std::uint64_t mover_expected = 0;
  };
  const Audit& audit() const { return audit_; }

  /// Verdict of the embedded invariant auditor; empty unless cfg.audit.
  const obs::AuditReport& audit_report() const { return audit_report_; }

  /// The filter assigned to client k (for tests).
  Filter filter_of(std::uint32_t k) const;
  /// Whether client k is a mover.
  bool is_mover(std::uint32_t k) const;

 private:
  void build();
  void timeseries_tick();
  void flush_profilers();
  void dump_observability();
  void schedule_joins();
  void schedule_publishers();
  void publish_tick(BrokerId b, ClientId id);
  void churn_tick(BrokerId b, ClientId id, Filter f);
  void schedule_move(std::uint32_t k, BrokerId from, BrokerId to,
                     double when);
  void on_movement(const MovementRecord& rec);
  void account_losses();
  const std::pair<BrokerId, BrokerId>& pair_of(std::uint32_t k) const;
  BrokerId other_end(std::uint32_t k, BrokerId at) const;

  void run_audit();

  ScenarioConfig cfg_;
  Overlay overlay_;
  std::unique_ptr<SimNetwork> net_;
  obs::Auditor auditor_;
  obs::AuditReport audit_report_;
  std::vector<std::unique_ptr<MobilityEngine>> engines_by_index_;
  std::map<BrokerId, MobilityEngine*> engines_;
  std::unordered_map<ClientId, std::uint32_t> mover_index_;
  Audit audit_;
  std::unordered_map<ClientId, std::unordered_set<PublicationId>> seen_;
  /// Clients with a committed movement: their background churn has ended.
  std::unordered_set<ClientId> moved_clients_;
  std::mt19937_64 rng_;
  std::uint32_t pub_seq_ = 0;
  /// Publications issued after this sequence number are audited for loss
  /// (earlier ones may legitimately race subscription propagation at join).
  std::uint32_t settle_seq_ = 0;
  std::vector<std::pair<Publication, SimTime>> published_;
};

}  // namespace tmps
