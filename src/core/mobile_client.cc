#include "core/mobile_client.h"

namespace tmps {

MobileClient MobileClient::connect(ClientId id, BrokerId home,
                                   const EngineDirectory& directory) {
  MobilityEngine* eng = directory.at_broker(home);
  if (eng) eng->connect_client(id);
  return MobileClient(id, directory);
}

BrokerId MobileClient::location() const {
  MobilityEngine* eng = host();
  return eng ? eng->broker_id() : kNoBroker;
}

ClientState MobileClient::state() const {
  MobilityEngine* eng = host();
  if (!eng) return ClientState::Init;
  const ClientStub* stub = eng->find_client(id_);
  return stub ? stub->state() : ClientState::Init;
}

SubscriptionId MobileClient::subscribe(const Filter& f) {
  MobilityEngine* eng = host();
  if (!eng) return {};
  Broker::Outputs out;
  const SubscriptionId id = eng->subscribe(id_, f, out);
  eng->emit(std::move(out));
  return id;
}

AdvertisementId MobileClient::advertise(const Filter& f) {
  MobilityEngine* eng = host();
  if (!eng) return {};
  Broker::Outputs out;
  const AdvertisementId id = eng->advertise(id_, f, out);
  eng->emit(std::move(out));
  return id;
}

void MobileClient::unsubscribe(const SubscriptionId& id) {
  MobilityEngine* eng = host();
  if (!eng) return;
  Broker::Outputs out;
  eng->unsubscribe(id_, id, out);
  eng->emit(std::move(out));
}

void MobileClient::unadvertise(const AdvertisementId& id) {
  MobilityEngine* eng = host();
  if (!eng) return;
  Broker::Outputs out;
  eng->unadvertise(id_, id, out);
  eng->emit(std::move(out));
}

void MobileClient::publish(Publication pub) {
  MobilityEngine* eng = host();
  if (!eng) return;
  Broker::Outputs out;
  eng->publish(id_, std::move(pub), out);
  eng->emit(std::move(out));
}

TxnId MobileClient::move_to(BrokerId target) {
  MobilityEngine* eng = host();
  if (!eng) return kNoTxn;
  Broker::Outputs out;
  const TxnId txn = eng->initiate_move(id_, target, out);
  eng->emit(std::move(out));
  return txn;
}

void MobileClient::pause() {
  MobilityEngine* eng = host();
  if (!eng) return;
  ClientStub* stub = eng->find_client(id_);
  if (stub && stub->state() == ClientState::Started) stub->pause();
}

void MobileClient::resume() {
  MobilityEngine* eng = host();
  if (!eng) return;
  ClientStub* stub = eng->find_client(id_);
  if (stub && stub->state() == ClientState::PauseOper) stub->resume();
}

}  // namespace tmps
