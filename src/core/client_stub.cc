#include "core/client_stub.h"

#include <algorithm>

#include "pubsub/codec.h"

namespace tmps {

namespace {

std::size_t wire_size(const Publication& pub) {
  Writer w;
  encode(w, pub);
  return w.bytes().size();
}

}  // namespace

const char* to_string(ClientState s) {
  switch (s) {
    case ClientState::Init: return "init";
    case ClientState::Created: return "created";
    case ClientState::Started: return "started";
    case ClientState::PauseOper: return "pause_oper";
    case ClientState::PauseMove: return "pause_move";
    case ClientState::PrepareStop: return "prepare_stop";
    case ClientState::Clean: return "clean";
  }
  return "?";
}

IllegalTransition::IllegalTransition(ClientState from, const char* op)
    : std::logic_error(std::string("illegal client transition: ") + op +
                       " from state " + to_string(from)) {}

ClientStub::ClientStub(ClientId id) : id_(id) {}

void ClientStub::remember_subscription(const Subscription& sub) {
  forget_subscription(sub.id);
  subs_.push_back(sub);
}

void ClientStub::remember_advertisement(const Advertisement& adv) {
  forget_advertisement(adv.id);
  advs_.push_back(adv);
}

bool ClientStub::forget_subscription(const SubscriptionId& id) {
  auto it = std::find_if(subs_.begin(), subs_.end(),
                         [&](const Subscription& s) { return s.id == id; });
  if (it == subs_.end()) return false;
  subs_.erase(it);
  return true;
}

bool ClientStub::forget_advertisement(const AdvertisementId& id) {
  auto it = std::find_if(advs_.begin(), advs_.end(),
                         [&](const Advertisement& a) { return a.id == id; });
  if (it == advs_.end()) return false;
  advs_.erase(it);
  return true;
}

void ClientStub::create() {
  if (state_ != ClientState::Init) throw IllegalTransition(state_, "create");
  state_ = ClientState::Created;
}

void ClientStub::start() {
  if (state_ != ClientState::Created) throw IllegalTransition(state_, "start");
  state_ = ClientState::Started;
  flush_buffer();
}

void ClientStub::pause() {
  if (state_ != ClientState::Started) throw IllegalTransition(state_, "pause");
  state_ = ClientState::PauseOper;
}

void ClientStub::resume() {
  if (state_ != ClientState::PauseOper) {
    throw IllegalTransition(state_, "resume");
  }
  state_ = ClientState::Started;
  flush_buffer();
}

void ClientStub::begin_move() {
  if (state_ != ClientState::Started && state_ != ClientState::PauseOper) {
    throw IllegalTransition(state_, "begin_move");
  }
  state_ = ClientState::PauseMove;
}

void ClientStub::resume_from_reject() {
  if (state_ != ClientState::PauseMove) {
    throw IllegalTransition(state_, "resume_from_reject");
  }
  state_ = ClientState::Started;
  flush_buffer();
}

void ClientStub::resume_from_abort() {
  if (state_ != ClientState::PauseMove && state_ != ClientState::PrepareStop) {
    throw IllegalTransition(state_, "resume_from_abort");
  }
  state_ = ClientState::Started;
  flush_buffer();
}

void ClientStub::prepare_stop() {
  if (state_ != ClientState::PauseMove) {
    throw IllegalTransition(state_, "prepare_stop");
  }
  state_ = ClientState::PrepareStop;
}

void ClientStub::clean() {
  if (state_ != ClientState::PrepareStop && state_ != ClientState::Created &&
      state_ != ClientState::PauseMove) {
    throw IllegalTransition(state_, "clean");
  }
  state_ = ClientState::Clean;
  buffer_.clear();
  buffered_bytes_ = 0;
}

void ClientStub::on_notification(const Publication& pub) {
  if (state_ == ClientState::Clean || state_ == ClientState::Init) return;
  if (!seen_.insert(pub.id()).second) return;  // duplicate suppressed
  if (state_ == ClientState::Started) {
    deliver(pub);
  } else {
    buffer_push(pub);
  }
}

std::vector<Publication> ClientStub::take_buffer() {
  std::vector<Publication> out;
  out.reserve(buffer_.size());
  for (auto& b : buffer_) out.push_back(std::move(b.pub));
  buffer_.clear();
  buffered_bytes_ = 0;
  return out;
}

void ClientStub::merge_notifications(const std::vector<Publication>& shipped) {
  // Shipped notifications precede locally buffered ones: they were matched
  // at the source strictly before the hand-off point.
  std::deque<Buffered> local;
  local.swap(buffer_);
  buffered_bytes_ = 0;
  for (const auto& pub : shipped) {
    if (seen_.count(pub.id()) == 0) buffer_push(pub);
    seen_.insert(pub.id());
  }
  for (auto& b : local) buffer_push(std::move(b.pub));
  if (state_ == ClientState::Started) flush_buffer();
}

void ClientStub::buffer_push(Publication pub) {
  Buffered b;
  b.at = clock_now();
  b.bytes = limits_.max_bytes ? wire_size(pub) : 0;
  b.pub = std::move(pub);
  buffered_bytes_ += b.bytes;
  buffer_.push_back(std::move(b));
  enforce_limits();
}

void ClientStub::enforce_limits() {
  while (limits_.max_count && buffer_.size() > limits_.max_count) {
    drop_front("overflow");
  }
  while (limits_.max_bytes && buffered_bytes_ > limits_.max_bytes &&
         !buffer_.empty()) {
    drop_front("overflow");
  }
}

std::size_t ClientStub::expire_buffer() {
  if (limits_.max_age <= 0) return 0;
  const double cutoff = clock_now() - limits_.max_age;
  std::size_t dropped = 0;
  while (!buffer_.empty() && buffer_.front().at < cutoff) {
    drop_front("expiry");
    ++dropped;
  }
  return dropped;
}

void ClientStub::drop_front(const char* reason) {
  Buffered b = std::move(buffer_.front());
  buffer_.pop_front();
  buffered_bytes_ -= b.bytes;
  if (drop_) drop_(b.pub, reason);
}

std::vector<Publication> ClientStub::take_commands() {
  std::vector<Publication> out(pending_pubs_.begin(), pending_pubs_.end());
  pending_pubs_.clear();
  return out;
}

void ClientStub::deliver(const Publication& pub) {
  delivered_.push_back(pub);
  if (deliver_) deliver_(pub);
}

void ClientStub::flush_buffer() {
  while (!buffer_.empty()) {
    Publication pub = std::move(buffer_.front().pub);
    buffered_bytes_ -= buffer_.front().bytes;
    buffer_.pop_front();
    deliver(pub);
  }
}

}  // namespace tmps
