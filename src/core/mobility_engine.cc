#include "core/mobility_engine.h"

#include <cassert>

namespace tmps {

const char* to_string(MobilityProtocol p) {
  switch (p) {
    case MobilityProtocol::Reconfiguration: return "reconfig";
    case MobilityProtocol::Traditional: return "covering";
  }
  return "?";
}

const char* to_string(SourceCoordState s) {
  switch (s) {
    case SourceCoordState::Init: return "init";
    case SourceCoordState::Wait: return "wait";
    case SourceCoordState::Prepare: return "prepare";
    case SourceCoordState::Abort: return "abort";
    case SourceCoordState::Commit: return "commit";
  }
  return "?";
}

const char* to_string(TargetCoordState s) {
  switch (s) {
    case TargetCoordState::Init: return "init";
    case TargetCoordState::Prepare: return "prepare";
    case TargetCoordState::Abort: return "abort";
    case TargetCoordState::Commit: return "commit";
  }
  return "?";
}

const char* to_string(MoveRefusal r) {
  switch (r) {
    case MoveRefusal::None: return "none";
    case MoveRefusal::UnknownClient: return "unknown-client";
    case MoveRefusal::InvalidTarget: return "invalid-target";
    case MoveRefusal::Busy: return "busy";
    case MoveRefusal::NotRunning: return "not-running";
  }
  return "?";
}

MobilityEngine::MobilityEngine(Broker& broker, RuntimeEnv& env,
                               MobilityConfig cfg)
    : broker_(&broker), env_(&env), tracer_(env.tracer()), cfg_(cfg) {
  broker_->set_control_handler(this);
}

BrokerId MobilityEngine::broker_id() const { return broker_->id(); }

TxnId MobilityEngine::next_txn_id() {
  return (static_cast<TxnId>(broker_->id()) << 40) | ++txn_seq_;
}

Hop MobilityEngine::toward(BrokerId other) const {
  return Hop::of_broker(broker_->overlay().next_hop(broker_->id(), other));
}

// --- client hosting ----------------------------------------------------------

ClientStub& MobilityEngine::connect_client(ClientId id) {
  auto stub = std::make_unique<ClientStub>(id);
  stub->set_delivery_fn([this, id](const Publication& pub) {
    if (delivery_) delivery_(id, pub, env_->now());
  });
  stub->create();
  stub->start();
  auto [it, inserted] = clients_.insert_or_assign(id, std::move(stub));
  (void)inserted;
  return *it->second;
}

ClientStub* MobilityEngine::find_client(ClientId id) {
  auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : it->second.get();
}

bool MobilityEngine::remove_client(ClientId id) {
  return clients_.erase(id) > 0;
}

const ClientStub* MobilityEngine::find_client(ClientId id) const {
  auto it = clients_.find(id);
  return it == clients_.end() ? nullptr : it->second.get();
}

SubscriptionId MobilityEngine::subscribe(ClientId client, const Filter& f,
                                         Outputs& out) {
  ClientStub* stub = find_client(client);
  if (!stub) return {};
  Subscription s{stub->allocate_id(), f};
  stub->remember_subscription(s);
  for (auto& o : broker_->client_subscribe(client, s)) {
    out.push_back(std::move(o));
  }
  return s.id;
}

AdvertisementId MobilityEngine::advertise(ClientId client, const Filter& f,
                                          Outputs& out) {
  ClientStub* stub = find_client(client);
  if (!stub) return {};
  Advertisement a{stub->allocate_id(), f};
  stub->remember_advertisement(a);
  for (auto& o : broker_->client_advertise(client, a)) {
    out.push_back(std::move(o));
  }
  return a.id;
}

void MobilityEngine::unsubscribe(ClientId client, const SubscriptionId& id,
                                 Outputs& out) {
  ClientStub* stub = find_client(client);
  if (!stub || !stub->forget_subscription(id)) return;
  for (auto& o : broker_->client_unsubscribe(client, id)) {
    out.push_back(std::move(o));
  }
}

void MobilityEngine::unadvertise(ClientId client, const AdvertisementId& id,
                                 Outputs& out) {
  ClientStub* stub = find_client(client);
  if (!stub || !stub->forget_advertisement(id)) return;
  for (auto& o : broker_->client_unadvertise(client, id)) {
    out.push_back(std::move(o));
  }
}

void MobilityEngine::publish(ClientId client, Publication pub, Outputs& out) {
  ClientStub* stub = find_client(client);
  if (!stub) return;
  if (pub.id().client == kNoClient) pub.set_id(stub->allocate_id());
  if (!stub->can_publish()) {
    // The stub layer queues application commands while the client moves.
    stub->queue_command(std::move(pub));
    return;
  }
  for (auto& o : broker_->client_publish(client, pub)) {
    out.push_back(std::move(o));
  }
}

void MobilityEngine::drain_commands(ClientStub& stub, Outputs& out) {
  for (auto& pub : stub.take_commands()) {
    for (auto& o : broker_->client_publish(stub.id(), pub)) {
      out.push_back(std::move(o));
    }
  }
}

// --- movement initiation (source side) ----------------------------------------

MoveStart MobilityEngine::try_initiate_move(ClientId client, BrokerId target,
                                            Outputs& out) {
  ClientStub* stub = find_client(client);
  if (!stub) return {kNoTxn, MoveRefusal::UnknownClient};
  if (target == broker_->id() || !broker_->overlay().contains(target)) {
    return {kNoTxn, MoveRefusal::InvalidTarget};
  }
  if (stub->state() != ClientState::Started &&
      stub->state() != ClientState::PauseOper) {
    // Distinguish "mid-movement" from "exists but never started / already
    // dismantled": a balancer retries the former and drops the latter.
    const bool moving = stub->state() == ClientState::PauseMove ||
                        stub->state() == ClientState::PrepareStop;
    return {kNoTxn, moving ? MoveRefusal::Busy : MoveRefusal::NotRunning};
  }

  const TxnId txn = next_txn_id();
  stub->begin_move();

  SourceMove sm;
  sm.txn = txn;
  sm.client = client;
  sm.target = target;
  sm.start = env_->now();
  sm.state = SourceCoordState::Wait;
  sm.protocol = cfg_.protocol;
  sm.move_span =
      TMPS_SPAN_BEGIN(tracer_, txn, "movement", obs::kNoSpan,
                      {{"client", std::to_string(client)},
                       {"source", std::to_string(broker_->id())},
                       {"target", std::to_string(target)},
                       {"protocol", to_string(cfg_.protocol)}});
  // Prepare phase: negotiate sent -> approve/ready (or reject) received.
  sm.phase_span =
      TMPS_SPAN_BEGIN(tracer_, txn, "phase:prepare", sm.move_span);

  if (cfg_.protocol == MobilityProtocol::Reconfiguration) {
    MoveNegotiateMsg m;
    m.txn = txn;
    m.client = client;
    m.source = broker_->id();
    m.target = target;
    m.subs = stub->subscriptions();
    m.advs = stub->advertisements();
    m.next_seq = stub->next_seq();
    broker_->send_unicast(target, std::move(m), txn, out);
  } else {
    // Traditional protocol (Sec. 4.4): the client "disconnects from its
    // source broker after unadvertising and unsubscribing its history, and
    // these messages propagate through the network" — with covering enabled
    // this un-quenches everything the removed subscriptions covered. Only
    // then does the target re-issue the profile.
    TradMoveRequestMsg m;
    m.txn = txn;
    m.client = client;
    m.source = broker_->id();
    m.target = target;
    m.subs = stub->subscriptions();
    m.advs = stub->advertisements();
    m.next_seq = stub->next_seq();

    // The whole profile retracts as one batch: the covering cascade is
    // computed per mutation as before, but forwarding-index maintenance is
    // coalesced across the burst (RoutingTables::apply_batch).
    const Hop ch = client_hop(client);
    std::vector<RoutingMutation> muts;
    muts.reserve(stub->subscriptions().size() +
                 stub->advertisements().size());
    for (const auto& s : stub->subscriptions()) {
      muts.push_back(RoutingMutation::remove_sub(s.id, ch));
    }
    for (const auto& a : stub->advertisements()) {
      muts.push_back(RoutingMutation::remove_adv(a.id, ch));
    }
    broker_->inject_batch(std::move(muts), txn, out);
    broker_->send_unicast(target, std::move(m), txn, out);
  }
  if (cfg_.negotiate_timeout > 0) arm_source_timer(sm, cfg_.negotiate_timeout);
  source_moves_.emplace(txn, std::move(sm));
  return {txn, MoveRefusal::None};
}

std::vector<ClientId> MobilityEngine::client_ids() const {
  std::vector<ClientId> ids;
  ids.reserve(clients_.size());
  for (const auto& [id, stub] : clients_) ids.push_back(id);
  return ids;
}

// --- ControlHandler ------------------------------------------------------------

void MobilityEngine::on_control(BrokerId from, const Message& msg,
                                std::vector<std::pair<BrokerId, Message>>& out) {
  const BrokerId self = broker_->id();

  // Hop-processed movement messages: every broker on the path participates.
  if (std::holds_alternative<MoveApproveMsg>(msg.payload)) {
    on_approve_hop(from, msg, out);
    return;
  }
  if (std::holds_alternative<MoveStateMsg>(msg.payload)) {
    on_state_hop(from, msg, out);
    return;
  }
  if (std::holds_alternative<MoveAbortMsg>(msg.payload)) {
    on_abort_hop(from, msg, out);
    return;
  }

  // Pure unicasts: relay until the destination.
  if (msg.unicast_dest && *msg.unicast_dest != self) {
    broker_->forward_unicast(msg, out);
    return;
  }

  if (const auto* p = std::get_if<MoveNegotiateMsg>(&msg.payload)) {
    on_negotiate(*p, msg.cause, out);
  } else if (const auto* p = std::get_if<MoveRejectMsg>(&msg.payload)) {
    on_reject(*p, out);
  } else if (const auto* p = std::get_if<MoveAckMsg>(&msg.payload)) {
    on_ack(*p, out);
  } else if (const auto* p = std::get_if<TradMoveRequestMsg>(&msg.payload)) {
    on_trad_request(*p, out);
  } else if (const auto* p = std::get_if<TradReadyMsg>(&msg.payload)) {
    on_trad_ready(*p, out);
  } else if (const auto* p = std::get_if<TradRejectMsg>(&msg.payload)) {
    on_trad_reject(*p, out);
  } else if (const auto* p = std::get_if<BufferedStateMsg>(&msg.payload)) {
    on_buffered_state(*p, out);
  } else if (const auto* p = std::get_if<RepairProbeMsg>(&msg.payload)) {
    on_repair_probe(*p, msg.cause, out);
  } else if (std::holds_alternative<RepairDigestMsg>(msg.payload) ||
             std::holds_alternative<RepairRequestMsg>(msg.payload) ||
             std::holds_alternative<RepairVerdictMsg>(msg.payload)) {
    if (repair_) repair_->on_repair(from, msg, out);
  } else if (std::holds_alternative<SessionOpenMsg>(msg.payload) ||
             std::holds_alternative<SessionResumeMsg>(msg.payload) ||
             std::holds_alternative<SessionAckMsg>(msg.payload) ||
             std::holds_alternative<SessionHeartbeatMsg>(msg.payload) ||
             std::holds_alternative<SessionCloseMsg>(msg.payload) ||
             std::holds_alternative<SessionForwardMsg>(msg.payload)) {
    if (session_) session_->on_session(from, msg, out);
  }
}

bool MobilityEngine::intercept_notification(ClientId client,
                                            const Publication& pub) {
  ClientStub* stub = find_client(client);
  if (!stub) return true;  // stale routing straggler; swallow
  stub->on_notification(pub);
  return true;
}

void MobilityEngine::snapshot_into(obs::BrokerSnapshot& snap) const {
  // Only in-flight transactions: terminal coordinator records stay in the
  // maps for post-mortem introspection but are not parked protocol state.
  for (const auto& [txn, m] : source_moves_) {
    if (m.state == SourceCoordState::Abort ||
        m.state == SourceCoordState::Commit) {
      continue;
    }
    snap.txns.push_back({txn, "source", to_string(m.state), m.client,
                         m.target});
  }
  for (const auto& [txn, m] : target_moves_) {
    if (m.state == TargetCoordState::Abort ||
        m.state == TargetCoordState::Commit) {
      continue;
    }
    snap.txns.push_back({txn, "target", to_string(m.state), m.client,
                         m.source});
  }
  for (const auto& [id, stub] : clients_) {
    snap.clients.push_back({id, to_string(stub->state()),
                            stub->buffered_count(), stub->queued_commands(),
                            stub->subscriptions().size(),
                            stub->advertisements().size()});
  }
}

// --- reconfiguration protocol ---------------------------------------------------

void MobilityEngine::on_negotiate(const MoveNegotiateMsg& m, TxnId cause,
                                  Outputs& out) {
  // Admission control: the target may refuse the client (overload,
  // authorization, ...), in which case the client stays at the source.
  if (!cfg_.accept_clients || clients_.size() >= cfg_.max_hosted_clients ||
      find_client(m.client) != nullptr) {
    TargetMove tm;
    tm.txn = m.txn;
    tm.client = m.client;
    tm.source = m.source;
    tm.state = TargetCoordState::Abort;  // Fig. 4: init -> abort on reject
    target_moves_.emplace(m.txn, std::move(tm));
    TMPS_EVENT(tracer_, m.txn, "movement:reject",
               {{"broker", std::to_string(broker_->id())},
                {"reason", "admission refused"}});
    MoveRejectMsg r;
    r.txn = m.txn;
    r.client = m.client;
    r.reason = "admission refused";
    broker_->send_unicast(m.source, std::move(r), cause, out);
    return;
  }

  // Create the (inactive) client copy at the target.
  auto stub = std::make_unique<ClientStub>(m.client);
  stub->set_delivery_fn([this, id = m.client](const Publication& pub) {
    if (delivery_) delivery_(id, pub, env_->now());
  });
  stub->create();
  for (const auto& s : m.subs) stub->remember_subscription(s);
  for (const auto& a : m.advs) stub->remember_advertisement(a);
  stub->set_next_seq(m.next_seq);
  clients_[m.client] = std::move(stub);

  TargetMove tm;
  tm.txn = m.txn;
  tm.client = m.client;
  tm.source = m.source;
  tm.start = env_->now();
  tm.state = TargetCoordState::Prepare;
  for (const auto& s : m.subs) tm.sub_ids.push_back(s.id);
  for (const auto& a : m.advs) tm.adv_ids.push_back(a.id);
  // Target-side precommit: shadow configuration installed and approve on its
  // way; ends when the state message (or an abort) arrives.
  tm.span = TMPS_SPAN_BEGIN(tracer_, m.txn, "phase:precommit", obs::kNoSpan,
                            {{"broker", std::to_string(broker_->id())}});

  // Approve: install the shadow configuration here, then send it hop-by-hop
  // towards the source (message (2) of Fig. 3).
  MoveApproveMsg ap;
  ap.txn = m.txn;
  ap.client = m.client;
  ap.source = m.source;
  ap.target = broker_->id();
  ap.subs = m.subs;
  ap.advs = m.advs;
  install_shadows(ap);

  Message wire;
  wire.id = broker_->next_message_id();
  wire.cause = cause;
  wire.unicast_dest = m.source;
  wire.payload = std::move(ap);
  out.emplace_back(broker_->overlay().next_hop(broker_->id(), m.source),
                   std::move(wire));

  if (cfg_.prepare_timeout > 0) arm_target_timer(tm, cfg_.prepare_timeout);
  target_moves_.emplace(m.txn, std::move(tm));
}

void MobilityEngine::install_shadows(const MoveApproveMsg& m) {
  const BrokerId self = broker_->id();
  const Hop new_hop = (self == m.target)
                          ? Hop::of_client(m.client)
                          : toward(m.target);
  // Shadow installs for fresh entries file into the forwarding index; batch
  // the whole profile's worth.
  RoutingTables::MutationBatch batch(broker_->tables());
  for (const auto& s : m.subs) {
    broker_->tables().install_sub_shadow(s, new_hop, m.txn);
  }
  for (const auto& a : m.advs) {
    broker_->tables().install_adv_shadow(a, new_hop, m.txn);
  }
}

void MobilityEngine::on_approve_hop(BrokerId from, const Message& msg,
                                    Outputs& out) {
  (void)from;
  const auto& m = std::get<MoveApproveMsg>(msg.payload);
  const BrokerId self = broker_->id();

  if (self != m.source) {
    install_shadows(m);
    // One hop of the target->source approve leg of the reconfiguration path.
    TMPS_EVENT(tracer_, m.txn, "hop:approve",
               {{"broker", std::to_string(self)}});
    broker_->forward_unicast(msg, out);
    return;
  }

  // Source coordinator.
  auto it = source_moves_.find(m.txn);
  if (it == source_moves_.end() ||
      it->second.state != SourceCoordState::Wait) {
    // The transaction was aborted here (e.g. negotiate timeout). Unwind the
    // shadow configuration the approve installed along the path.
    MoveAbortMsg ab;
    ab.txn = m.txn;
    ab.client = m.client;
    ab.source = m.source;
    ab.target = m.target;
    for (const auto& s : m.subs) ab.sub_ids.push_back(s.id);
    for (const auto& a : m.advs) ab.adv_ids.push_back(a.id);
    broker_->send_unicast(m.target, std::move(ab), msg.cause, out);
    return;
  }
  SourceMove& sm = it->second;
  ++sm.timer_gen;  // cancel the negotiate timeout

  TMPS_EVENT(tracer_, m.txn, "hop:approve",
             {{"broker", std::to_string(self)}});
  TMPS_SPAN_END(tracer_, sm.phase_span, {{"outcome", "approved"}});
  // Commit phase: state sent hop-by-hop towards the target -> ack received.
  sm.phase_span =
      TMPS_SPAN_BEGIN(tracer_, m.txn, "phase:commit", sm.move_span);

  install_shadows(m);

  ClientStub* stub = find_client(m.client);
  assert(stub);
  stub->prepare_stop();

  MoveStateMsg st;
  st.txn = m.txn;
  st.client = m.client;
  st.source = m.source;
  st.target = m.target;
  st.queued_notifications = stub->take_buffer();
  st.queued_commands = stub->take_commands();
  for (const auto& s : m.subs) st.sub_ids.push_back(s.id);
  for (const auto& a : m.advs) st.adv_ids.push_back(a.id);

  // Commit at the source immediately: from this instant publications route
  // towards the target, and anything that arrived earlier is in the buffer
  // we just took.
  commit_shadows_here(st, out);

  sm.state = SourceCoordState::Prepare;
  sm.pending_state = st;  // kept for idempotent retry on prepare timeout

  Message wire;
  wire.id = broker_->next_message_id();
  wire.cause = msg.cause;
  wire.unicast_dest = m.target;
  wire.payload = std::move(st);
  out.emplace_back(broker_->overlay().next_hop(self, m.target),
                   std::move(wire));
  if (cfg_.prepare_timeout > 0) arm_source_timer(sm, cfg_.prepare_timeout);
}

void MobilityEngine::commit_shadows_here(const MoveStateMsg& m, Outputs& out) {
  const BrokerId self = broker_->id();
  RoutingTables& rt = broker_->tables();
  const bool at_source = (self == m.source);

  for (const auto& id : m.sub_ids) {
    SubEntry* e = rt.find_sub(id);
    if (!e || e->shadow_txn != m.txn) continue;
    rt.commit_shadow(id, m.txn);
    // Post-move the subscription arrives from the target side, so it is no
    // longer "forwarded" in that direction — and it now flows towards the
    // source side instead.
    e->forwarded_to.erase(e->lasthop);
    if (!at_source) e->forwarded_to.insert(toward(m.source));
  }
  for (const auto& id : m.adv_ids) {
    AdvEntry* e = rt.find_adv(id);
    if (!e || e->shadow_txn != m.txn) continue;
    rt.commit_adv_shadow(id, m.txn);
    e->forwarded_to.erase(e->lasthop);
    if (!at_source) e->forwarded_to.insert(toward(m.source));
    // Sec. 4.4's three PRT cases: other clients' subscriptions must now be
    // routed towards the advertisement's new position.
    fix_prt_for_moved_adv(e->adv, m.target, m.txn, out);
  }
}

void MobilityEngine::fix_prt_for_moved_adv(const Advertisement& adv,
                                           BrokerId target, TxnId cause,
                                           Outputs& out) {
  const BrokerId self = broker_->id();
  RoutingTables& rt = broker_->tables();
  const Hop suc = (self == target) ? Hop::of_client(adv.id.client)
                                   : toward(target);
  const ClientId mover = adv.id.client;

  // Collect first: case 2 erases entries while we iterate. The candidate
  // set comes from the covering index (subs_intersecting) instead of a PRT
  // scan — this hand-off runs once per moved advertisement per path broker,
  // squarely on the movement hot path.
  std::vector<SubscriptionId> intersecting;
  for (const SubEntry* s : rt.subs_intersecting(adv.filter)) {
    if (s->shadow_only) continue;
    if (s->sub.id.client == mover) continue;  // the mover's own subscriptions
                                              // have their own shadow
                                              // reconfiguration
    intersecting.push_back(s->sub.id);
  }

  for (const auto& sid : intersecting) {
    SubEntry* s = rt.find_sub(sid);
    if (!s) continue;
    if (s->lasthop == suc) {
      // Case 2: the subscription came from the target direction; it is
      // satisfied closer to the new publisher position. Drop it here unless
      // some other advertisement still needs it (index-backed SRT probe).
      bool needed = false;
      for (const AdvEntry* a : rt.intersecting_advs(s->sub.filter)) {
        if (a->adv.id != adv.id) {
          needed = true;
          break;
        }
      }
      if (!needed) rt.erase_sub(sid);
      continue;
    }
    // Cases 1 and 3: the subscription must reach the advertisement's new
    // last hop if it has not been forwarded there already.
    if (suc.is_broker() && !s->forwarded_to.contains(suc)) {
      s->forwarded_to.insert(suc);
      Message wire;
      wire.id = broker_->next_message_id();
      wire.cause = cause;
      wire.payload = SubscribeMsg{s->sub};
      out.emplace_back(suc.broker, std::move(wire));
    }
  }
}

void MobilityEngine::on_state_hop(BrokerId from, const Message& msg,
                                  Outputs& out) {
  (void)from;
  const auto& m = std::get<MoveStateMsg>(msg.payload);
  const BrokerId self = broker_->id();

  commit_shadows_here(m, out);
  // One hop of the source->target state (commit) leg.
  TMPS_EVENT(tracer_, m.txn, "hop:state", {{"broker", std::to_string(self)}});

  if (self != m.target) {
    broker_->forward_unicast(msg, out);
    return;
  }

  // Target coordinator: hand-off complete; activate the client copy.
  auto it = target_moves_.find(m.txn);
  if (it == target_moves_.end()) return;  // duplicate state (retry); ignore
  TargetMove& tm = it->second;
  if (tm.state == TargetCoordState::Prepare) {
    ++tm.timer_gen;
    ClientStub* stub = find_client(m.client);
    assert(stub);
    stub->merge_notifications(m.queued_notifications);
    stub->start();
    for (const auto& cmd : m.queued_commands) stub->queue_command(cmd);
    drain_commands(*stub, out);
    tm.state = TargetCoordState::Commit;
    TMPS_SPAN_END(tracer_, tm.span, {{"outcome", "commit"}});
    tm.span = obs::kNoSpan;
  }
  MoveAckMsg ack;
  ack.txn = m.txn;
  ack.client = m.client;
  broker_->send_unicast(m.source, std::move(ack), msg.cause, out);
}

void MobilityEngine::on_ack(const MoveAckMsg& m, Outputs& out) {
  auto it = source_moves_.find(m.txn);
  if (it == source_moves_.end() ||
      it->second.state != SourceCoordState::Prepare) {
    return;  // duplicate ack
  }
  SourceMove& sm = it->second;
  ClientStub* stub = find_client(m.client);
  if (stub) {
    // Commands issued between the prepare-time state snapshot and this ack
    // queued into the lingering source stub; ship them to the (already
    // started) target incarnation instead of dropping them with the stub.
    std::vector<Publication> late = stub->take_commands();
    if (!late.empty()) {
      BufferedStateMsg bs;
      bs.txn = m.txn;
      bs.client = m.client;
      bs.queued_commands = std::move(late);
      broker_->send_unicast(sm.target, std::move(bs), m.txn, out);
    }
    stub->clean();
    clients_.erase(m.client);
  }
  finish_source_move(sm, /*committed=*/true, out);
}

void MobilityEngine::on_reject(const MoveRejectMsg& m, Outputs& out) {
  auto it = source_moves_.find(m.txn);
  if (it == source_moves_.end() || it->second.state != SourceCoordState::Wait) {
    return;
  }
  SourceMove& sm = it->second;
  ClientStub* stub = find_client(m.client);
  if (stub) {
    stub->resume_from_reject();
    drain_commands(*stub, out);
  }
  finish_source_move(sm, /*committed=*/false, out);
}

void MobilityEngine::on_abort_hop(BrokerId from, const Message& msg,
                                  Outputs& out) {
  (void)from;
  const auto& m = std::get<MoveAbortMsg>(msg.payload);
  const BrokerId self = broker_->id();

  abort_shadows_here(m);
  TMPS_EVENT(tracer_, m.txn, "hop:abort", {{"broker", std::to_string(self)}});

  if (msg.unicast_dest && *msg.unicast_dest != self) {
    broker_->forward_unicast(msg, out);
    return;
  }

  if (self == m.target) {
    auto it = target_moves_.find(m.txn);
    if (it != target_moves_.end() &&
        it->second.state == TargetCoordState::Prepare) {
      ++it->second.timer_gen;
      it->second.state = TargetCoordState::Abort;
      TMPS_SPAN_END(tracer_, it->second.span, {{"outcome", "abort"}});
      it->second.span = obs::kNoSpan;
      ClientStub* stub = find_client(m.client);
      if (stub && stub->state() == ClientState::Created) {
        stub->clean();
        clients_.erase(m.client);
      }
    }
  } else if (self == m.source) {
    auto it = source_moves_.find(m.txn);
    if (it != source_moves_.end() &&
        (it->second.state == SourceCoordState::Wait ||
         it->second.state == SourceCoordState::Prepare)) {
      ClientStub* stub = find_client(m.client);
      if (stub) {
        stub->resume_from_abort();
        drain_commands(*stub, out);
      }
      finish_source_move(it->second, /*committed=*/false, out);
    }
  }
}

void MobilityEngine::abort_shadows_here(const MoveAbortMsg& m) {
  RoutingTables& rt = broker_->tables();
  // Aborting shadow-only entries erases them from the forwarding index too;
  // coalesce the burst.
  RoutingTables::MutationBatch batch(rt);
  for (const auto& id : m.sub_ids) rt.abort_shadow(id, m.txn);
  for (const auto& id : m.adv_ids) rt.abort_adv_shadow(id, m.txn);
}

void MobilityEngine::finish_source_move(SourceMove& sm, bool committed,
                                        Outputs& out) {
  (void)out;
  ++sm.timer_gen;
  sm.state = committed ? SourceCoordState::Commit : SourceCoordState::Abort;

  MovementRecord rec;
  rec.txn = sm.txn;
  rec.client = sm.client;
  rec.source = broker_->id();
  rec.target = sm.target;
  rec.start = sm.start;
  rec.end = env_->now();
  rec.committed = committed;

  const char* outcome = committed ? "commit" : "abort";
  TMPS_SPAN_END(tracer_, sm.phase_span);  // whichever phase was running
  sm.phase_span = obs::kNoSpan;
  TMPS_SPAN_END(tracer_, sm.move_span, {{"outcome", outcome}});
  sm.move_span = obs::kNoSpan;
  if (obs::MetricsRegistry* mr = env_->metrics()) {
    mr->histogram("movement_latency_seconds",
                  {{"protocol", to_string(sm.protocol)}, {"outcome", outcome}})
        .observe(rec.duration());
    mr->counter("movements_total",
                {{"protocol", to_string(sm.protocol)}, {"outcome", outcome}})
        .inc();
  }

  if (!committed) {
    // Post-mortem context for the abort: the source broker's last-N events.
    broker_->dump_flight("movement-abort txn=" + std::to_string(sm.txn));
  }

  env_->movement_finished(rec);
  if (move_cb_) move_cb_(rec);
}

// --- timeouts (non-blocking variant; requires the bounded-delay network
// assumption the paper states for 3PC) ------------------------------------------

void MobilityEngine::arm_source_timer(SourceMove& sm, double delay) {
  const std::uint64_t gen = ++sm.timer_gen;
  const TxnId txn = sm.txn;
  const SourceCoordState expected = sm.state;
  env_->schedule(delay, [this, txn, gen, expected] {
    auto it = source_moves_.find(txn);
    if (it == source_moves_.end() || it->second.timer_gen != gen) return;
    if (it->second.state != expected) return;
    source_timeout(txn, expected);
  });
}

void MobilityEngine::source_timeout(TxnId txn, SourceCoordState expected) {
  auto it = source_moves_.find(txn);
  if (it == source_moves_.end()) return;
  SourceMove& sm = it->second;
  Outputs out;
  TMPS_EVENT(tracer_, txn, "timeout",
             {{"broker", std::to_string(broker_->id())},
              {"state", to_string(expected)}});
  if (expected == SourceCoordState::Wait) {
    // Negotiate/approve lost or slow: abort; if an approve arrives later the
    // source answers it with an abort that unwinds the shadow state.
    ClientStub* stub = find_client(sm.client);
    if (stub) {
      stub->resume_from_abort();
      drain_commands(*stub, out);
    }
    finish_source_move(sm, /*committed=*/false, out);
  } else if (expected == SourceCoordState::Prepare && sm.pending_state) {
    // Ack lost or slow: retransmit the (idempotent) state message.
    retransmit_pending_state(sm, out);
    arm_source_timer(sm, cfg_.prepare_timeout);
  }
  if (transmit_ && !out.empty()) transmit_(std::move(out));
}

void MobilityEngine::arm_target_timer(TargetMove& tm, double delay) {
  const std::uint64_t gen = ++tm.timer_gen;
  const TxnId txn = tm.txn;
  env_->schedule(delay, [this, txn, gen] {
    auto it = target_moves_.find(txn);
    if (it == target_moves_.end() || it->second.timer_gen != gen) return;
    if (it->second.state != TargetCoordState::Prepare) return;
    target_timeout(txn);
  });
}

void MobilityEngine::target_timeout(TxnId txn) {
  auto it = target_moves_.find(txn);
  if (it == target_moves_.end()) return;
  TargetMove& tm = it->second;
  Outputs out;

  // Conservative resolution: abort towards the source, unwinding shadow
  // state along the path. The client is never lost: its primary copy is
  // still at the source.
  TMPS_EVENT(tracer_, txn, "timeout",
             {{"broker", std::to_string(broker_->id())},
              {"state", "prepare"}});
  tm.state = TargetCoordState::Abort;
  TMPS_SPAN_END(tracer_, tm.span, {{"outcome", "abort"}});
  tm.span = obs::kNoSpan;
  ClientStub* stub = find_client(tm.client);
  if (stub && stub->state() == ClientState::Created) {
    stub->clean();
    clients_.erase(tm.client);
  }
  MoveAbortMsg ab;
  ab.txn = tm.txn;
  ab.client = tm.client;
  ab.source = tm.source;
  ab.target = broker_->id();
  ab.sub_ids = tm.sub_ids;
  ab.adv_ids = tm.adv_ids;
  abort_shadows_here(ab);
  Message wire;
  wire.id = broker_->next_message_id();
  wire.cause = tm.txn;
  wire.unicast_dest = tm.source;
  wire.payload = std::move(ab);
  out.emplace_back(broker_->overlay().next_hop(broker_->id(), tm.source),
                   std::move(wire));
  if (transmit_) transmit_(std::move(out));
}

// --- traditional (covering-based) protocol ---------------------------------------

void MobilityEngine::on_trad_request(const TradMoveRequestMsg& m,
                                     Outputs& out) {
  if (!cfg_.accept_clients || clients_.size() >= cfg_.max_hosted_clients ||
      find_client(m.client) != nullptr) {
    TargetMove tm;
    tm.txn = m.txn;
    tm.client = m.client;
    tm.source = m.source;
    tm.state = TargetCoordState::Abort;
    target_moves_.emplace(m.txn, std::move(tm));
    TMPS_EVENT(tracer_, m.txn, "movement:reject",
               {{"broker", std::to_string(broker_->id())},
                {"reason", "admission refused"}});
    TradRejectMsg r;
    r.txn = m.txn;
    r.client = m.client;
    r.reason = "admission refused";
    broker_->send_unicast(m.source, std::move(r), m.txn, out);
    return;
  }

  auto stub = std::make_unique<ClientStub>(m.client);
  stub->set_delivery_fn([this, id = m.client](const Publication& pub) {
    if (delivery_) delivery_(id, pub, env_->now());
  });
  stub->create();
  stub->set_next_seq(m.next_seq);
  ClientStub& ref = *stub;
  clients_[m.client] = std::move(stub);

  TargetMove tm;
  tm.txn = m.txn;
  tm.client = m.client;
  tm.source = m.source;
  tm.start = env_->now();
  tm.state = TargetCoordState::Prepare;
  // Target-side work of the traditional protocol: re-issuing the profile
  // (and its covering cascade) until the buffered state arrives.
  tm.span = TMPS_SPAN_BEGIN(tracer_, m.txn, "phase:precommit", obs::kNoSpan,
                            {{"broker", std::to_string(broker_->id())}});
  target_moves_.emplace(m.txn, std::move(tm));

  // Re-issue the client's profile as ordinary pub/sub operations with fresh
  // incarnations — the end-to-end propagation (and, with covering enabled,
  // its quench/retract cascades) is the cost the paper measures.
  const Hop ch = Hop::of_client(m.client);
  std::vector<RoutingMutation> muts;
  muts.reserve(m.advs.size() + m.subs.size());
  for (const auto& a : m.advs) {
    Advertisement na{ref.allocate_id(), a.filter};
    ref.remember_advertisement(na);
    muts.push_back(RoutingMutation::add_adv(na, ch));
  }
  for (const auto& s : m.subs) {
    Subscription ns{ref.allocate_id(), s.filter};
    ref.remember_subscription(ns);
    muts.push_back(RoutingMutation::add_sub(ns, ch));
  }
  broker_->inject_batch(std::move(muts), m.txn, out);

  TradReadyMsg rdy;
  rdy.txn = m.txn;
  rdy.client = m.client;
  broker_->send_unicast(m.source, std::move(rdy), m.txn, out);
}

void MobilityEngine::on_trad_ready(const TradReadyMsg& m, Outputs& out) {
  auto it = source_moves_.find(m.txn);
  if (it == source_moves_.end() || it->second.state != SourceCoordState::Wait) {
    return;
  }
  SourceMove& sm = it->second;
  ClientStub* stub = find_client(m.client);
  assert(stub);

  stub->prepare_stop();

  // The old incarnations were already retracted when the movement started;
  // ship the buffered notifications and dismantle the source copy.
  BufferedStateMsg bs;
  bs.txn = m.txn;
  bs.client = m.client;
  bs.queued_notifications = stub->take_buffer();
  bs.queued_commands = stub->take_commands();
  broker_->send_unicast(sm.target, std::move(bs), m.txn, out);

  stub->clean();
  clients_.erase(m.client);
  sm.state = SourceCoordState::Prepare;
  TMPS_SPAN_END(tracer_, sm.phase_span, {{"outcome", "ready"}});
  // Commit phase of the traditional protocol: waiting for the movement's
  // entire causal message chain (covering cascade included) to drain.
  sm.phase_span =
      TMPS_SPAN_BEGIN(tracer_, m.txn, "phase:commit", sm.move_span);

  // The movement completes when every message it caused — including the
  // covering cascade — has been processed network-wide.
  const TxnId txn = m.txn;
  env_->on_cause_drained(txn, [this, txn] {
    auto sit = source_moves_.find(txn);
    if (sit == source_moves_.end() ||
        sit->second.state != SourceCoordState::Prepare) {
      return;
    }
    Outputs none;
    finish_source_move(sit->second, /*committed=*/true, none);
  });
}

void MobilityEngine::on_trad_reject(const TradRejectMsg& m, Outputs& out) {
  auto it = source_moves_.find(m.txn);
  if (it == source_moves_.end() || it->second.state != SourceCoordState::Wait) {
    return;
  }
  ClientStub* stub = find_client(m.client);
  if (stub) {
    // The source already retracted the client's profile when the movement
    // started; the end-to-end protocol must re-issue everything to undo.
    const Hop ch = client_hop(m.client);
    std::vector<RoutingMutation> muts;
    muts.reserve(stub->advertisements().size() +
                 stub->subscriptions().size());
    for (const auto& a : stub->advertisements()) {
      muts.push_back(RoutingMutation::add_adv(a, ch));
    }
    for (const auto& s : stub->subscriptions()) {
      muts.push_back(RoutingMutation::add_sub(s, ch));
    }
    broker_->inject_batch(std::move(muts), m.txn, out);
    stub->resume_from_reject();
    drain_commands(*stub, out);
  }
  finish_source_move(it->second, /*committed=*/false, out);
}

void MobilityEngine::on_buffered_state(const BufferedStateMsg& m,
                                       Outputs& out) {
  auto it = target_moves_.find(m.txn);
  if (it == target_moves_.end()) return;
  TargetMove& tm = it->second;
  ClientStub* stub = find_client(m.client);
  if (!stub) return;
  if (tm.state == TargetCoordState::Commit) {
    // Late commands the source absorbed between its prepare-time snapshot
    // and our ack (reconfiguration path): replay them here.
    for (const auto& cmd : m.queued_commands) stub->queue_command(cmd);
    drain_commands(*stub, out);
    return;
  }
  if (tm.state != TargetCoordState::Prepare) return;
  stub->merge_notifications(m.queued_notifications);
  stub->start();
  for (const auto& cmd : m.queued_commands) stub->queue_command(cmd);
  drain_commands(*stub, out);
  tm.state = TargetCoordState::Commit;
  TMPS_SPAN_END(tracer_, tm.span, {{"outcome", "commit"}});
  tm.span = obs::kNoSpan;
}

// --- anti-entropy repair ---------------------------------------------------------

RepairVerdictMsg MobilityEngine::resolve_txn(TxnId txn) const {
  RepairVerdictMsg v;
  v.txn = txn;
  v.source = broker_->id();
  auto it = source_moves_.find(txn);
  if (it == source_moves_.end()) {
    // No coordinator record: the transaction never started here (or this is
    // not its coordinator). Nothing can ever commit it, so residual state
    // elsewhere is safe to unwind.
    v.verdict = RepairVerdict::Aborted;
    return v;
  }
  const SourceMove& sm = it->second;
  v.target = sm.target;
  v.client = sm.client;
  switch (sm.state) {
    case SourceCoordState::Init:
    case SourceCoordState::Wait:
    case SourceCoordState::Prepare:
      // Prepare is past the commit point (the source already committed its
      // shadows); the retransmission path, not a verdict, resolves it.
      v.verdict = RepairVerdict::InFlight;
      break;
    case SourceCoordState::Commit:
      v.verdict = RepairVerdict::Committed;
      break;
    case SourceCoordState::Abort:
      v.verdict = RepairVerdict::Aborted;
      break;
  }
  return v;
}

void MobilityEngine::retransmit_pending_state(const SourceMove& sm,
                                              Outputs& out) {
  Message wire;
  wire.id = broker_->next_message_id();
  wire.cause = sm.txn;
  wire.unicast_dest = sm.target;
  wire.payload = *sm.pending_state;
  out.emplace_back(broker_->overlay().next_hop(broker_->id(), sm.target),
                   std::move(wire));
}

void MobilityEngine::on_repair_probe(const RepairProbeMsg& p, TxnId cause,
                                     Outputs& out) {
  RepairVerdictMsg v = resolve_txn(p.txn);
  // A coordinator parked past its commit point holds the idempotent state
  // message; the probe doubles as a retransmission request, re-driving the
  // lost commit leg end-to-end (the target re-acks when it lands).
  auto it = source_moves_.find(p.txn);
  if (it != source_moves_.end() &&
      it->second.state == SourceCoordState::Prepare &&
      it->second.pending_state) {
    retransmit_pending_state(it->second, out);
  }
  TMPS_EVENT(tracer_, p.txn, "repair:probe",
             {{"broker", std::to_string(broker_->id())},
              {"asker", std::to_string(p.asker)},
              {"verdict", to_string(v.verdict)}});
  if (p.asker != kNoBroker && p.asker != broker_->id()) {
    broker_->send_unicast(p.asker, std::move(v), cause, out);
  }
}

void MobilityEngine::repair_resolve_txn(const RepairVerdictMsg& v,
                                        Outputs& out) {
  if (v.verdict == RepairVerdict::InFlight) return;
  RoutingTables& rt = broker_->tables();
  std::vector<SubscriptionId> subs;
  std::vector<AdvertisementId> advs;
  for (const auto& [id, e] : rt.prt()) {
    if (e.shadow_txn == v.txn) subs.push_back(id);
  }
  for (const auto& [id, e] : rt.srt()) {
    if (e.shadow_txn == v.txn) advs.push_back(id);
  }

  if (v.verdict == RepairVerdict::Committed) {
    // Re-run the hop-local commit hand-off over whatever shadows remain.
    MoveStateMsg m;
    m.txn = v.txn;
    m.client = v.client;
    m.source = v.source;
    m.target = v.target;
    m.sub_ids = std::move(subs);
    m.adv_ids = std::move(advs);
    commit_shadows_here(m, out);
    // A target parked in precommit with a Committed verdict is the
    // traditional protocol's lost buffered-state hand-off: the source
    // already dismantled its copy, so activate the target copy without the
    // buffered notifications (bounded loss; the routing state is whole).
    auto it = target_moves_.find(v.txn);
    if (it != target_moves_.end() &&
        it->second.state == TargetCoordState::Prepare) {
      TargetMove& tm = it->second;
      ++tm.timer_gen;
      tm.state = TargetCoordState::Commit;
      TMPS_SPAN_END(tracer_, tm.span, {{"outcome", "repair-commit"}});
      tm.span = obs::kNoSpan;
      ClientStub* stub = find_client(tm.client);
      if (stub && stub->state() == ClientState::Created) {
        stub->start();
        drain_commands(*stub, out);
      }
    }
    return;
  }

  // Aborted: unwind residual shadows, then dismantle a parked target-side
  // precommit (reconfig: drop the inactive client copy; traditional: also
  // retract the re-issued profile, which lives as primary entries).
  MoveAbortMsg ab;
  ab.txn = v.txn;
  ab.client = v.client;
  ab.source = v.source;
  ab.target = v.target;
  ab.sub_ids = std::move(subs);
  ab.adv_ids = std::move(advs);
  abort_shadows_here(ab);
  auto it = target_moves_.find(v.txn);
  if (it != target_moves_.end() &&
      it->second.state == TargetCoordState::Prepare) {
    TargetMove& tm = it->second;
    ++tm.timer_gen;
    tm.state = TargetCoordState::Abort;
    TMPS_SPAN_END(tracer_, tm.span, {{"outcome", "repair-abort"}});
    tm.span = obs::kNoSpan;
    ClientStub* stub = find_client(tm.client);
    if (stub && stub->state() == ClientState::Created) {
      const Hop ch = client_hop(tm.client);
      std::vector<RoutingMutation> muts;
      for (const auto& s : stub->subscriptions()) {
        muts.push_back(RoutingMutation::remove_sub(s.id, ch));
      }
      for (const auto& a : stub->advertisements()) {
        muts.push_back(RoutingMutation::remove_adv(a.id, ch));
      }
      if (!muts.empty()) broker_->inject_batch(std::move(muts), v.txn, out);
      stub->clean();
      clients_.erase(tm.client);
    }
  }
}

void MobilityEngine::abort_parked_source(SourceMove& sm, Outputs& out) {
  TMPS_EVENT(tracer_, sm.txn, "repair:parked-abort",
             {{"broker", std::to_string(broker_->id())},
              {"state", to_string(sm.state)}});
  ClientStub* stub = find_client(sm.client);
  if (stub) {
    if (sm.protocol == MobilityProtocol::Traditional) {
      // The profile was retracted when the movement started; the end-to-end
      // protocol must re-issue everything to undo (on_trad_reject's path).
      const Hop ch = client_hop(sm.client);
      std::vector<RoutingMutation> muts;
      muts.reserve(stub->advertisements().size() +
                   stub->subscriptions().size());
      for (const auto& a : stub->advertisements()) {
        muts.push_back(RoutingMutation::add_adv(a, ch));
      }
      for (const auto& s : stub->subscriptions()) {
        muts.push_back(RoutingMutation::add_sub(s, ch));
      }
      broker_->inject_batch(std::move(muts), sm.txn, out);
    } else {
      // Unwind whatever part of the approve leg did land: the abort is
      // hop-processed towards the target and a no-op where nothing is
      // installed. Brokers the abort cannot reach heal via their own
      // probes (this coordinator now answers Aborted).
      MoveAbortMsg ab;
      ab.txn = sm.txn;
      ab.client = sm.client;
      ab.source = broker_->id();
      ab.target = sm.target;
      for (const auto& s : stub->subscriptions()) ab.sub_ids.push_back(s.id);
      for (const auto& a : stub->advertisements()) {
        ab.adv_ids.push_back(a.id);
      }
      broker_->send_unicast(sm.target, std::move(ab), sm.txn, out);
    }
    stub->resume_from_abort();
    drain_commands(*stub, out);
  }
  finish_source_move(sm, /*committed=*/false, out);
}

std::size_t MobilityEngine::repair_sweep_parked(double stale_after,
                                                Outputs& out) {
  const SimTime now = env_->now();
  std::size_t ops = 0;
  for (auto& [txn, sm] : source_moves_) {
    if (now - sm.start < stale_after) continue;
    if (sm.state == SourceCoordState::Wait) {
      // Negotiate / approve / ready lost while this coordinator blocks
      // (timeouts disabled): nothing downstream can have committed, so
      // abort and resume the client at the source.
      abort_parked_source(sm, out);
      ++ops;
    } else if (sm.state == SourceCoordState::Prepare && sm.pending_state) {
      // Past the commit point with the ack missing: retransmit the
      // idempotent state message — never abort.
      TMPS_EVENT(tracer_, txn, "repair:retransmit-state",
                 {{"broker", std::to_string(broker_->id())}});
      retransmit_pending_state(sm, out);
      ++ops;
    }
  }
  for (auto& [txn, tm] : target_moves_) {
    if (tm.state != TargetCoordState::Prepare) continue;
    if (now - tm.start < stale_after) continue;
    // Parked precommit: ask the source coordinator how the transaction
    // resolved. Never abort unilaterally — the source may be past its
    // commit point with the state message lost in flight.
    TMPS_EVENT(tracer_, txn, "repair:probe-parked",
               {{"broker", std::to_string(broker_->id())},
                {"source", std::to_string(tm.source)}});
    RepairProbeMsg p;
    p.txn = txn;
    p.asker = broker_->id();
    broker_->send_unicast(tm.source, p, txn, out);
    ++ops;
  }
  return ops;
}

// --- introspection ---------------------------------------------------------------

std::optional<SourceCoordState> MobilityEngine::source_state(TxnId txn) const {
  auto it = source_moves_.find(txn);
  if (it == source_moves_.end()) return std::nullopt;
  return it->second.state;
}

std::optional<TargetCoordState> MobilityEngine::target_state(TxnId txn) const {
  auto it = target_moves_.find(txn);
  if (it == target_moves_.end()) return std::nullopt;
  return it->second.state;
}

}  // namespace tmps
