// The pub/sub stub layer of a client (Sec. 3.2/4.2 of the paper): its state
// machine (Fig. 4), its subscription/advertisement profile, the notification
// buffer used while moving, and the exactly-once delivery guard.
//
// Client states (source side):
//   init -> created -> started <-> pause_oper
//   started|pause_oper --[move]--> pause_move
//   pause_move --reject--> started          (movement refused; resume)
//   pause_move --approve--> prepare_stop    (hand-off in progress)
//   prepare_stop --ack--> clean             (copy destroyed)
// Target side: init -> created -> started (commit) | clean (abort).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "pubsub/publication.h"
#include "pubsub/subscription.h"

namespace tmps {

enum class ClientState {
  Init,
  Created,
  Started,
  PauseOper,    // paused by the application; notifications buffer
  PauseMove,    // movement initiated; notifications buffer
  PrepareStop,  // approve received; stopped, buffer ready for hand-off
  Clean,        // copy dismantled
};

const char* to_string(ClientState s);

/// Thrown on a transition Fig. 4 does not allow — protocol bugs surface
/// loudly instead of corrupting client state.
class IllegalTransition : public std::logic_error {
 public:
  IllegalTransition(ClientState from, const char* op);
};

/// Caps on the disconnected-operation buffer (session layer). Zero means
/// unlimited — the default, preserving plain movement-buffering semantics.
/// Byte accounting uses the publication's encoded wire size.
struct BufferLimits {
  std::size_t max_count = 0;
  std::size_t max_bytes = 0;
  double max_age = 0;  ///< seconds a notification may sit buffered
};

class ClientStub {
 public:
  /// Application-level delivery callback.
  using DeliveryFn = std::function<void(const Publication&)>;
  /// Invoked for every buffered notification discarded to honour the caps;
  /// `reason` is "overflow" (count/byte cap) or "expiry" (age cap). Each
  /// dropped publication is reported exactly once.
  using DropFn = std::function<void(const Publication&, const char* reason)>;
  using ClockFn = std::function<double()>;

  explicit ClientStub(ClientId id);

  ClientId id() const { return id_; }
  ClientState state() const { return state_; }

  void set_delivery_fn(DeliveryFn fn) { deliver_ = std::move(fn); }

  /// Bounds the notification buffer; entries beyond the caps are dropped
  /// oldest-first and reported through the drop callback. The clock stamps
  /// buffered entries for the age cap (defaults to 0 when unset).
  void set_buffer_limits(BufferLimits limits) { limits_ = limits; }
  void set_buffer_clock(ClockFn clock) { clock_ = std::move(clock); }
  void set_drop_fn(DropFn fn) { drop_ = std::move(fn); }
  const BufferLimits& buffer_limits() const { return limits_; }

  /// Drops buffered notifications older than the age cap. Called
  /// periodically by the session layer; returns how many were dropped.
  std::size_t expire_buffer();

  // --- profile -------------------------------------------------------------

  /// Allocates the next entity id for this client (subscriptions,
  /// advertisements and publications share the sequence).
  EntityId allocate_id() { return {id_, next_seq_++}; }
  std::uint32_t next_seq() const { return next_seq_; }
  void set_next_seq(std::uint32_t s) { next_seq_ = s; }

  void remember_subscription(const Subscription& sub);
  void remember_advertisement(const Advertisement& adv);
  bool forget_subscription(const SubscriptionId& id);
  bool forget_advertisement(const AdvertisementId& id);
  /// Replaces a subscription's id in the profile (traditional protocol
  /// re-issues with fresh incarnations).
  const std::vector<Subscription>& subscriptions() const { return subs_; }
  const std::vector<Advertisement>& advertisements() const { return advs_; }

  // --- Fig. 4 transitions ----------------------------------------------------

  void create();              // Init -> Created
  void start();               // Created -> Started
  void pause();               // Started -> PauseOper (application pause)
  void resume();              // PauseOper -> Started
  void begin_move();          // Started|PauseOper -> PauseMove
  void resume_from_reject();  // PauseMove -> Started (movement refused)
  void resume_from_abort();   // PauseMove|PrepareStop -> Started (txn abort)
  void prepare_stop();        // PauseMove -> PrepareStop (approve received)
  void clean();               // PrepareStop|Created|PauseMove -> Clean

  bool can_publish() const { return state_ == ClientState::Started; }

  // --- notifications ---------------------------------------------------------

  /// Routes a notification: delivered to the application when Started,
  /// buffered in any paused/forming state, dropped when Clean. Duplicates
  /// (same publication id) are suppressed — the exactly-once guard.
  void on_notification(const Publication& pub);

  /// Hands over and clears the buffered notifications (source side, sent in
  /// the `state` message).
  std::vector<Publication> take_buffer();

  /// Merges notifications shipped from the peer copy with those buffered
  /// locally, preserving exactly-once, then delivers everything if Started.
  void merge_notifications(const std::vector<Publication>& shipped);

  /// Queues an application publish command while the client cannot publish;
  /// drained by the engine on resume/start.
  void queue_command(Publication pub) { pending_pubs_.push_back(std::move(pub)); }
  std::vector<Publication> take_commands();

  const std::vector<Publication>& delivered_log() const { return delivered_; }
  std::size_t buffered_count() const { return buffer_.size(); }
  std::size_t buffered_bytes() const { return buffered_bytes_; }
  std::size_t queued_commands() const { return pending_pubs_.size(); }

 private:
  struct Buffered {
    Publication pub;
    double at = 0;          ///< buffering time (clock), for the age cap
    std::size_t bytes = 0;  ///< encoded wire size (0 unless byte-capped)
  };

  void deliver(const Publication& pub);
  void flush_buffer();
  void buffer_push(Publication pub);
  void enforce_limits();
  void drop_front(const char* reason);
  double clock_now() const { return clock_ ? clock_() : 0.0; }

  ClientId id_;
  ClientState state_ = ClientState::Init;
  std::uint32_t next_seq_ = 1;
  std::vector<Subscription> subs_;
  std::vector<Advertisement> advs_;
  DeliveryFn deliver_;
  DropFn drop_;
  ClockFn clock_;
  BufferLimits limits_;
  std::deque<Buffered> buffer_;
  std::size_t buffered_bytes_ = 0;
  std::unordered_set<PublicationId> seen_;
  std::vector<Publication> delivered_;
  std::deque<Publication> pending_pubs_;
};

}  // namespace tmps
