// A convenience handle over a mobile pub/sub client: tracks the client as it
// moves between brokers and forwards API calls to whichever mobility engine
// currently hosts it. This is the public-facing "client library" view; the
// lower-level MobilityEngine API remains available for host integrations.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "core/mobility_engine.h"

namespace tmps {

/// Directory of the mobility engines in one deployment; resolves which one
/// currently hosts a client.
///
/// find_host memoizes ClientId -> engine: the full engines x clients scan
/// only runs on a cache miss (first sight of a client, or its cached host no
/// longer holding it after a movement/expiry). Callers that observe
/// movements (Scenario's movement_observer, session adoption) can keep the
/// cache warm with note_moved, but correctness never depends on it — a stale
/// entry is re-validated against the engine before being trusted.
class EngineDirectory {
 public:
  void add(MobilityEngine& engine) { engines_.push_back(&engine); }

  MobilityEngine* find_host(ClientId id) const {
    if (auto it = host_cache_.find(id); it != host_cache_.end()) {
      if (it->second->find_client(id)) return it->second;
      host_cache_.erase(it);
    }
    for (auto* e : engines_) {
      if (e->find_client(id)) {
        host_cache_.emplace(id, e);
        return e;
      }
    }
    return nullptr;
  }

  MobilityEngine* at_broker(BrokerId b) const {
    for (auto* e : engines_) {
      if (e->broker_id() == b) return e;
    }
    return nullptr;
  }

  /// Points the cache at the client's new host (no-op for unknown brokers).
  void note_moved(ClientId id, BrokerId now_at) {
    if (MobilityEngine* e = at_broker(now_at)) {
      host_cache_[id] = e;
    } else {
      host_cache_.erase(id);
    }
  }

 private:
  std::vector<MobilityEngine*> engines_;
  mutable std::unordered_map<ClientId, MobilityEngine*> host_cache_;
};

class MobileClient {
 public:
  MobileClient(ClientId id, const EngineDirectory& directory)
      : id_(id), directory_(&directory) {}

  /// Creates and starts the client at `home`.
  static MobileClient connect(ClientId id, BrokerId home,
                              const EngineDirectory& directory);

  ClientId id() const { return id_; }

  /// Broker currently hosting the client, or kNoBroker if it is unknown
  /// (e.g. mid-hand-off from an external perspective).
  BrokerId location() const;
  ClientState state() const;
  bool connected() const { return directory_->find_host(id_) != nullptr; }

  /// Pub/sub operations, executed at the current host.
  SubscriptionId subscribe(const Filter& f);
  AdvertisementId advertise(const Filter& f);
  void unsubscribe(const SubscriptionId& id);
  void unadvertise(const AdvertisementId& id);
  void publish(Publication pub);

  /// Starts a movement transaction towards `target`. Returns kNoTxn if the
  /// client cannot move right now.
  TxnId move_to(BrokerId target);

  /// Application-level pause/resume (Fig. 4 pause_oper state).
  void pause();
  void resume();

 private:
  MobilityEngine* host() const { return directory_->find_host(id_); }

  ClientId id_;
  const EngineDirectory* directory_;
};

}  // namespace tmps
