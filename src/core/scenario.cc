#include "core/scenario.h"

#include <algorithm>
#include <cassert>
#include <fstream>

namespace tmps {

Scenario::Scenario(ScenarioConfig cfg)
    : cfg_(std::move(cfg)),
      overlay_(cfg_.overlay ? *cfg_.overlay : Overlay::paper_default()),
      rng_(cfg_.seed) {
  assert(!cfg_.move_pairs.empty());
}

Scenario::~Scenario() = default;

Filter Scenario::filter_of(std::uint32_t k) const {
  if (cfg_.filter_override) return cfg_.filter_override(k);
  const int member = static_cast<int>(k % 10) + 1;  // subscription number
  const auto family = static_cast<std::int64_t>(k / 10);
  return workload_filter_at(cfg_.workload, member, family, cfg_.seed + k / 10);
}

bool Scenario::is_mover(std::uint32_t k) const {
  if (cfg_.mover_override) return cfg_.mover_override(k);
  return k < cfg_.moving_clients;
}

const std::pair<BrokerId, BrokerId>& Scenario::pair_of(
    std::uint32_t k) const {
  // Odd-numbered subscriptions (member = k%10+1 odd) use the first pair,
  // even-numbered the second — the Fig. 8 assignment.
  const std::size_t idx = (k % 10) % 2;
  return cfg_.move_pairs[idx % cfg_.move_pairs.size()];
}

BrokerId Scenario::other_end(std::uint32_t k, BrokerId at) const {
  const auto& p = pair_of(k);
  return at == p.first ? p.second : p.first;
}

void Scenario::build() {
  // The consolidated BrokerConfig carries the observability toggles
  // (programmatic or via BrokerConfig::from_env); the scenario-level sink
  // paths remain as per-run overrides.
  const BrokerConfig::Obs& obs = cfg_.broker.obs;
  if (obs.audit) cfg_.audit = true;
  if (!obs.trace_dir.empty()) {
    if (cfg_.trace_path.empty()) {
      cfg_.trace_path = obs.trace_dir + "/trace.jsonl";
    }
    if (cfg_.metrics_path.empty()) {
      cfg_.metrics_path = obs.trace_dir + "/metrics.jsonl";
    }
    if (cfg_.snapshot_path.empty()) {
      cfg_.snapshot_path = obs.trace_dir + "/snapshots.jsonl";
    }
    if (cfg_.timeseries_path.empty() && obs.timeseries_interval > 0) {
      cfg_.timeseries_path = obs.trace_dir + "/timeseries.jsonl";
    }
    if (cfg_.profile_path.empty() && obs.profile) {
      cfg_.profile_path = obs.trace_dir + "/profile.ndjson";
    }
  }
  net_ = std::make_unique<SimNetwork>(overlay_, cfg_.broker, cfg_.net);
  // The auditor reconstructs movement windows from spans, so auditing
  // implies tracing even when no trace file is requested.
  if (!cfg_.trace_path.empty() || cfg_.audit || obs.tracing) {
    net_->tracer()->set_enabled(true);
  }

  for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
    auto engine =
        std::make_unique<MobilityEngine>(net_->broker(b), *net_, cfg_.mobility);
    engine->set_transmit(
        [this, b](Broker::Outputs out) { net_->transmit(b, std::move(out)); });
    engine->set_delivery_sink(
        [this, b](ClientId c, const Publication& pub, SimTime t) {
          ++audit_.delivered;
          if (!seen_[c].insert(pub.id()).second) ++audit_.duplicates;
          if (cfg_.audit) auditor_.on_delivery(c, to_string(pub.id()), t);
          stats().count_delivery(b, c);
        });
    engine->set_move_callback([this](const MovementRecord& rec) {
      on_movement(rec);
      if (rec.committed) moved_clients_.insert(rec.client);
      if (cfg_.movement_observer) cfg_.movement_observer(rec);
    });
    engines_[b] = engine.get();
    engines_by_index_.push_back(std::move(engine));
  }
  if (cfg_.post_engines) cfg_.post_engines(*this);
}

void Scenario::publish_tick(BrokerId b, ClientId id) {
  // The balancer may migrate publishers (advertisement reconfiguration);
  // follow the client so it keeps publishing from its current broker. Issuing
  // the publish at the stale home would silently no-op.
  if (!engines_[b]->find_client(id)) {
    for (const auto& [nb, eng] : engines_) {
      if (eng->find_client(id)) {
        b = nb;
        break;
      }
    }
  }
  MobilityEngine& eng = *engines_[b];
  if (eng.find_client(id)) {
    std::uniform_int_distribution<std::int64_t> x(kSpaceLo, kSpaceHi);
    const auto groups =
        static_cast<std::int64_t>((cfg_.total_clients + 9) / 10);
    std::uniform_int_distribution<std::int64_t> g(
        0, groups > 0 ? groups - 1 : 0);
    Publication pub = make_publication({id, ++pub_seq_}, x(rng_), g(rng_));
    published_.emplace_back(pub, net_->now());
    Broker::Outputs out;
    eng.publish(id, std::move(pub), out);
    net_->transmit(b, std::move(out));
  }
  if (net_->now() + cfg_.publish_interval < cfg_.duration) {
    net_->events().schedule_in(cfg_.publish_interval,
                               [this, b, id] { publish_tick(b, id); });
  }
}

void Scenario::account_losses() {
  // Stationary subscribers (no movement, no churn of their own unless
  // churn is enabled — then skip the audit, re-subscription windows blur
  // entitlement) must receive every matching publication issued after
  // their join settled.
  if (cfg_.background_churn_interval > 0) return;
  for (std::uint32_t k = 0; k < cfg_.total_clients; ++k) {
    const bool mover = is_mover(k);
    if (mover && cfg_.movers_are_publishers) continue;  // no subscription
    const ClientId id = subscriber_id(k);
    const Filter f = filter_of(k);
    const auto seen = seen_.find(id);
    for (const auto& [pub, t_pub] : published_) {
      if (pub.id().seq <= settle_seq_) continue;
      if (!f.matches(pub)) continue;
      auto& expected =
          mover ? audit_.mover_expected : audit_.stationary_expected;
      auto& losses = mover ? audit_.mover_losses : audit_.stationary_losses;
      ++expected;
      if (cfg_.audit) auditor_.expect_delivery(id, to_string(pub.id()), t_pub);
      if (seen == seen_.end() || !seen->second.contains(pub.id())) {
        ++losses;
      }
    }
  }
}

void Scenario::schedule_publishers() {
  for (std::uint32_t p = 0; p < cfg_.publisher_brokers.size(); ++p) {
    const BrokerId b = cfg_.publisher_brokers[p];
    const ClientId id = publisher_id(p);
    // Advertisements go out first so joining subscriptions have somewhere to
    // route towards.
    net_->events().schedule_at(0.001 + 0.001 * p, [this, b, id] {
      MobilityEngine& eng = *engines_[b];
      eng.connect_client(id);
      Broker::Outputs out;
      eng.advertise(id, full_space_advertisement(), out);
      net_->transmit(b, std::move(out));
    });
    if (cfg_.publish_interval > 0) {
      const double first =
          cfg_.join_window + cfg_.publish_interval * (p + 1) /
                                 (cfg_.publisher_brokers.size() + 1.0);
      net_->events().schedule_at(first, [this, b, id] { publish_tick(b, id); });
    }
  }
}

void Scenario::churn_tick(BrokerId b, ClientId id, Filter f) {
  MobilityEngine& eng = *engines_[b];
  ClientStub* stub = eng.find_client(id);
  // Skip (don't abandon) the churn while the client is paused or mid-move —
  // the balancer may migrate "stationary" clients, and profile churn during
  // a movement transaction would race the state hand-off. A client that has
  // completed a movement stops churning for good (even if a later movement
  // returns it home): re-issuing the profile would retract the moved
  // entries along the movement path and fail the orphan-state audit.
  if (stub && stub->state() == ClientState::Started &&
      !moved_clients_.contains(id)) {
    Broker::Outputs out;
    // Retract the current incarnation, re-subscribe a fresh one: the
    // "background pub/sub activity" of the paper's conclusions.
    for (const auto& s : std::vector<Subscription>(stub->subscriptions())) {
      eng.unsubscribe(id, s.id, out);
    }
    eng.subscribe(id, f, out);
    net_->transmit(b, std::move(out));
  }
  if (net_->now() + cfg_.background_churn_interval < cfg_.duration) {
    net_->events().schedule_in(
        cfg_.background_churn_interval,
        [this, b, id, f] { churn_tick(b, id, f); });
  }
}

void Scenario::schedule_joins() {
  std::uniform_real_distribution<double> jitter(0.0, cfg_.join_window);
  std::uniform_real_distribution<double> churn_stagger(
      0.0, std::max(cfg_.background_churn_interval, 1e-9));
  for (std::uint32_t k = 0; k < cfg_.total_clients; ++k) {
    const BrokerId home =
        cfg_.home_override ? cfg_.home_override(k) : pair_of(k).first;
    const double at = 0.05 + jitter(rng_);
    const ClientId id = subscriber_id(k);
    const Filter f = filter_of(k);
    const bool mover = is_mover(k);
    const double churn_at =
        cfg_.background_churn_interval > 0 && !mover
            ? cfg_.join_window + churn_stagger(rng_)
            : -1.0;
    net_->events().schedule_at(at, [this, home, id, f, k, mover, churn_at] {
      MobilityEngine& eng = *engines_[home];
      eng.connect_client(id);
      Broker::Outputs out;
      if (mover && cfg_.movers_are_publishers) {
        eng.advertise(id, f, out);
      } else {
        eng.subscribe(id, f, out);
      }
      net_->transmit(home, std::move(out));
      if (mover) {
        mover_index_[id] = k;
        schedule_move(k, home, other_end(k, home),
                      net_->now() + cfg_.pause_between_moves);
      } else if (churn_at > 0) {
        net_->events().schedule_at(
            churn_at, [this, home, id, f] { churn_tick(home, id, f); });
      }
    });
  }
}

void Scenario::schedule_move(std::uint32_t k, BrokerId from, BrokerId to,
                             double when) {
  if (when >= cfg_.duration) return;
  const ClientId id = subscriber_id(k);
  net_->events().schedule_at(when, [this, id, from, to] {
    MobilityEngine& eng = *engines_[from];
    if (!eng.find_client(id)) return;
    Broker::Outputs out;
    eng.initiate_move(id, to, out);
    net_->transmit(from, std::move(out));
  });
}

void Scenario::on_movement(const MovementRecord& rec) {
  auto it = mover_index_.find(rec.client);
  if (it == mover_index_.end()) return;
  const std::uint32_t k = it->second;
  const BrokerId at = rec.committed ? rec.target : rec.source;
  schedule_move(k, at, other_end(k, at),
                net_->now() + cfg_.pause_between_moves);
}

void Scenario::flush_profilers() {
  for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
    if (obs::StageProfiler* prof = net_->broker(b).profiler()) {
      prof->flush(net_->metrics());
    }
  }
}

void Scenario::timeseries_tick() {
  flush_profilers();  // stage histograms land in the same windows
  net_->timeseries().tick(net_->now());
  if (net_->now() + cfg_.broker.obs.timeseries_interval < cfg_.duration) {
    net_->events().schedule_in(cfg_.broker.obs.timeseries_interval,
                               [this] { timeseries_tick(); });
  }
}

void Scenario::run() {
  build();
  if (cfg_.post_build) cfg_.post_build(*net_);
  schedule_publishers();
  schedule_joins();
  if (cfg_.broker.obs.timeseries_interval > 0) {
    // First tick establishes the baseline window at t=0.
    net_->events().schedule_at(0.0, [this] { timeseries_tick(); });
  }
  // Publications before this point may legitimately race join propagation;
  // everything later is audited for stationary loss.
  net_->events().schedule_at(cfg_.join_window + 2.0,
                             [this] { settle_seq_ = pub_seq_; });
  net_->run_until(cfg_.duration);
  // Drain in-flight traffic (no new work is scheduled past `duration`) so
  // the loss audit does not count undelivered-yet publications.
  net_->run();
  account_losses();
  run_audit();  // must precede dump_observability(): the flush clears traces
  dump_observability();
}

void Scenario::run_audit() {
  if (!cfg_.audit && cfg_.snapshot_path.empty()) return;

  std::vector<obs::BrokerSnapshot> snaps;
  net_->snapshot_routing(snaps, /*final_snapshot=*/true);
  for (auto& s : snaps) s.run = cfg_.run_label;

  if (!cfg_.snapshot_path.empty()) {
    const auto mode = cfg_.trace_append ? std::ios::app : std::ios::trunc;
    std::ofstream os(cfg_.snapshot_path, mode);
    for (const auto& s : snaps) s.write_jsonl(os);
  }

  if (!cfg_.audit) return;
  auditor_.set_path_fn([this](std::uint32_t a, std::uint32_t b) {
    return overlay_.path(a, b);
  });
  auditor_.ingest_trace(net_->tracer()->records());
  for (const auto& s : snaps) auditor_.ingest_snapshot(s);
  for (const auto& [cause, n] : net_->outstanding_causes()) {
    auditor_.set_outstanding(cause, n);
  }
  audit_report_ = auditor_.finish();
  if (!audit_report_.clean()) {
    // Post-mortem context: every broker's last-N protocol/data events.
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      net_->broker(b).dump_flight("audit-violation");
    }
  }
}

void Scenario::dump_observability() {
  if (cfg_.trace_path.empty() && cfg_.metrics_path.empty() &&
      cfg_.timeseries_path.empty() && cfg_.profile_path.empty()) {
    return;
  }
  flush_profilers();
  const auto mode = cfg_.trace_append ? std::ios::app : std::ios::trunc;

  if (!cfg_.profile_path.empty()) {
    std::ofstream os(cfg_.profile_path, mode);
    std::ofstream cos(cfg_.profile_path + ".collapsed", mode);
    for (BrokerId b = 1; b <= overlay_.broker_count(); ++b) {
      if (const obs::StageProfiler* prof = net_->broker(b).profiler()) {
        if (os) prof->write_ndjson(os);
        if (cos) prof->write_collapsed(cos);
      }
    }
  }

  if (!cfg_.trace_path.empty()) {
    obs::Tracer& tracer = *net_->tracer();
    // Join record per movement: lets the trace inspector attach the final
    // message attribution (Stats cause counts) to each waterfall by TxnId.
    for (const MovementRecord& m : stats().movements()) {
      tracer.event(m.txn, "movement:stats",
                   {{"messages", std::to_string(m.messages)},
                    {"committed", m.committed ? "true" : "false"},
                    {"duration", std::to_string(m.duration())}});
    }
    std::ofstream os(cfg_.trace_path, mode);
    if (os) tracer.write_jsonl(os, cfg_.run_label);
  }

  if (!cfg_.metrics_path.empty()) {
    obs::MetricsRegistry& mr = *net_->metrics();
    // Expose the per-link traffic totals: the inspector's hot-link report
    // reads these counters.
    for (const auto& [link, n] : stats().link_counts()) {
      obs::Counter& c =
          mr.counter("link_messages_total",
                     {{"from", std::to_string(link.first)},
                      {"to", std::to_string(link.second)}});
      c.inc(n - std::min(n, c.value()));  // idempotent if called twice
    }
    std::ofstream os(cfg_.metrics_path, mode);
    if (os) mr.write_jsonl(os, cfg_.run_label);
  }

  if (!cfg_.timeseries_path.empty() &&
      net_->timeseries().window_count() > 0) {
    std::ofstream os(cfg_.timeseries_path, mode);
    if (os) net_->timeseries().write_ndjson(os);
  }
}

Summary Scenario::latency() const {
  return net_->stats().latency_summary(cfg_.warmup, cfg_.duration);
}

double Scenario::messages_per_movement() const {
  return net_->stats().messages_per_movement(cfg_.warmup, cfg_.duration);
}

std::uint64_t Scenario::movements() const {
  return net_->stats().committed_movements(cfg_.warmup, cfg_.duration);
}

const std::vector<MovementRecord>& Scenario::movement_records() const {
  return net_->stats().movements();
}

}  // namespace tmps
